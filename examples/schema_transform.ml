(* The paper's motivating use case for structural information (§3.2):
   "XSLT transformation is used to transform a set of XML documents
   conforming to schema S1 to another XML documents conforming to schema
   S2 due to non-compatible XML schema."

   Here S1 (a supplier's purchase-order format) is registered as a
   DTD-lite schema; the stylesheet converts documents into S2 (the
   consumer's format).  The structural information comes from the
   registered DTD — no representative document is needed — and the
   translation runs in full inline mode.  The static type of the
   *generated query* is then derived (paper §3.2 bullet 4) and shown to
   describe S2.

   Run with: dune exec examples/schema_transform.exe *)

let s1_dtd =
  {|<!ELEMENT purchaseOrder (orderDate, customer, items)>
<!ELEMENT customer (name, address)>
<!ELEMENT items (item*)>
<!ELEMENT item (sku, qty, price)>
<!ELEMENT orderDate (#PCDATA)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT address (#PCDATA)>
<!ELEMENT sku (#PCDATA)>
<!ELEMENT qty (#PCDATA)>
<!ELEMENT price (#PCDATA)>|}

(* S1 → S2: flatten customer, rename elements, compute a line total *)
let stylesheet =
  {|<?xml version="1.0"?>
<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
<xsl:template match="purchaseOrder">
<order date="{orderDate}">
  <buyer><xsl:value-of select="customer/name"/> / <xsl:value-of select="customer/address"/></buyer>
  <lines count="{count(items/item)}">
    <xsl:apply-templates select="items/item"/>
  </lines>
  <grand><xsl:value-of select="sum(items/item/price)"/></grand>
</order>
</xsl:template>
<xsl:template match="item">
<line sku="{sku}"><xsl:value-of select="qty"/> x <xsl:value-of select="price"/></line>
</xsl:template>
<xsl:template match="text()"/>
</xsl:stylesheet>|}

let sample_order =
  {|<purchaseOrder>
<orderDate>2006-09-12</orderDate>
<customer><name>VLDB</name><address>Seoul</address></customer>
<items>
<item><sku>A-1</sku><qty>2</qty><price>30</price></item>
<item><sku>B-9</sku><qty>1</qty><price>45</price></item>
</items>
</purchaseOrder>|}

let () =
  (* register S1 from its DTD — the §3.2 "XML schema or DTD" source *)
  let s1 = Xdb_schema.Dtd.parse s1_dtd in
  print_endline "== registered schema S1:";
  print_string (Xdb_schema.Types.to_string s1);

  let prog = Xdb_xslt.Compile.compile (Xdb_xslt.Parser.parse stylesheet) in
  let result = Xdb_core.Xslt2xquery.translate prog ~schema:s1 in
  Printf.printf "\n== translation mode: %s\n"
    (Xdb_core.Pipeline.mode_name result.Xdb_core.Xslt2xquery.mode);
  print_endline "== generated XQuery:";
  print_endline (Xdb_xquery.Pretty.prog_syntax result.Xdb_core.Xslt2xquery.query);

  (* derive the structural information of the OUTPUT (schema S2) from the
     static type of the generated query — §3.2 bullet 4 *)
  let s2 = Xdb_xquery.Typing.result_schema ~input:s1 result.Xdb_core.Xslt2xquery.query in
  print_endline "\n== derived output schema S2 (static typing of the query):";
  print_string (Xdb_schema.Types.to_string s2);

  (* run on a document conforming to S1 *)
  let doc = Xdb_xml.Parser.parse sample_order in
  let out = Xdb_xquery.Eval.run_to_nodes result.Xdb_core.Xslt2xquery.query ~context:doc in
  print_endline "\n== transformed document (conforms to S2):";
  print_endline (Xdb_xml.Serializer.node_list_to_string ~indent:true out);

  (* cross-check with the functional baseline *)
  let vm = Xdb_xslt.Vm.transform prog doc in
  Printf.printf "\nrewrite ≡ functional: %b\n"
    (Xdb_xml.Serializer.node_list_to_string vm.Xdb_xml.Types.children
    = Xdb_xml.Serializer.node_list_to_string out)
