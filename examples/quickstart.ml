(* Quickstart: transform an XML document with XSLT, two ways.

   1. Functional evaluation — the XSLTVM walks the DOM (the paper's
      baseline, what Oracle's XMLTransform() did before the rewrite);
   2. XSLT rewrite — the stylesheet is partially evaluated over the
      document's structural information and compiled into an XQuery,
      which is then evaluated (over a database the same XQuery would be
      pushed further down to a SQL/XML plan; see dept_emp.ml).

   Run with: dune exec examples/quickstart.exe *)

let stylesheet =
  {|<?xml version="1.0"?>
<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
  <xsl:template match="library">
    <catalog><xsl:apply-templates select="book[year &gt; 2000]"/></catalog>
  </xsl:template>
  <xsl:template match="book">
    <entry isbn="{@isbn}">
      <xsl:value-of select="title"/> (<xsl:value-of select="year"/>)
    </entry>
  </xsl:template>
  <xsl:template match="text()"/>
</xsl:stylesheet>|}

let document =
  {|<library>
  <book isbn="0-13-110362-8"><title>The C Programming Language</title><year>1988</year></book>
  <book isbn="0-596-00128-9"><title>Programming Web Services</title><year>2002</year></book>
  <book isbn="1-56592-580-7"><title>XSLT</title><year>2001</year></book>
</library>|}

let () =
  let doc = Xdb_xml.Parser.parse document in

  (* 1. functional evaluation *)
  let frag = Xdb_xslt.Vm.run_stylesheet stylesheet doc in
  print_endline "== functional (XSLTVM over the DOM):";
  print_endline (Xdb_xml.Serializer.node_list_to_string ~indent:true frag.Xdb_xml.Types.children);

  (* 2. XSLT rewrite: stylesheet -> XQuery via partial evaluation *)
  let compiled = Xdb_core.Pipeline.compile_for_document stylesheet ~example_doc:doc in
  print_endline "\n== generated XQuery (XSLT rewrite):";
  print_endline
    (Xdb_xquery.Pretty.prog_syntax
       compiled.Xdb_core.Pipeline.d_translation.Xdb_core.Xslt2xquery.query);

  print_endline "\n== rewrite output:";
  let out = Xdb_core.Pipeline.transform_via_xquery compiled doc in
  print_endline out;

  let functional = Xdb_core.Pipeline.transform_functional compiled doc in
  Printf.printf "\nrewrite output identical to functional: %b\n" (functional = out)
