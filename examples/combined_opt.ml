(* Paper Example 2 (§2.2, Tables 9–11): combined cross-language
   optimisation.

   An XSLT view wraps the Example 1 transformation; a further XQuery
   selects `./table/tr` from the view's result.  The combined optimiser
   (1) rewrites the XSLT to XQuery, (2) statically composes the outer
   path over the generated constructor tree, and (3) rewrites the
   composition to a single relational plan — paper Table 11: only the emp
   rows that contribute to the final result are ever touched, through the
   B-tree index on sal.

   Run with: dune exec examples/combined_opt.exe *)

module XP = Xdb_xpath.Ast

(* Example 1's database/view/stylesheet, shared via the benchmark library *)
let () =
  let dv = Xdb_xsltmark.Data.dept_emp_db 3 4 in
  let db = dv.Xdb_xsltmark.Data.db and view = dv.Xdb_xsltmark.Data.view in
  let stylesheet =
    {|<?xml version="1.0"?><xsl:stylesheet version="1.0"
xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
<xsl:template match="dept">
<H1>REPORT</H1>
<xsl:apply-templates/>
</xsl:template>
<xsl:template match="dname"><H2><xsl:value-of select="."/></H2></xsl:template>
<xsl:template match="loc"/>
<xsl:template match="employees">
<table>
<xsl:apply-templates select="emp[sal &gt; 2000]"/>
</table>
</xsl:template>
<xsl:template match="emp">
<tr><td><xsl:value-of select="ename"/></td><td><xsl:value-of select="sal"/></td></tr>
</xsl:template>
<xsl:template match="text()"/>
</xsl:stylesheet>|}
  in
  (* the XSLT view (paper Table 9) *)
  let c = Xdb_core.Pipeline.compile db view stylesheet in

  (* the XQuery over the view result (paper Table 10):
       for $tr in ./table/tr return $tr *)
  let steps = [ XP.child_step "table"; XP.child_step "tr" ] in

  let plan_opt, composed = Xdb_core.Pipeline.compose db c steps in

  print_endline "== composed XQuery (input of the final rewrite):";
  print_endline (Xdb_xquery.Pretty.prog_syntax composed);

  (match plan_opt with
  | Some plan ->
      print_endline "\n== final relational plan (paper Table 11):";
      print_endline (Xdb_rel.Algebra.explain plan);
      print_endline "== results (one row set per dept):";
      List.iter
        (fun row ->
          print_endline (Xdb_rel.Value.to_string (List.assoc "result" row)))
        (Xdb_rel.Exec.run db plan)
  | None -> print_endline "composition not SQL-rewritable (fell back to dynamic evaluation)");

  (* differential check: combined optimisation ≡ naive evaluate-then-query *)
  let naive =
    List.map
      (fun out ->
        let frag = Xdb_xml.Parser.parse_fragment out in
        let wrapper = Xdb_xml.Parser.document_element frag in
        let ctx = Xdb_xpath.Eval.make_context wrapper in
        Xdb_xpath.Eval.select ctx "table/tr"
        |> List.map (Xdb_xml.Serializer.to_string ~meth:Xdb_xml.Serializer.Xml)
        |> String.concat "")
      (Xdb_core.Pipeline.run_functional db c)
  in
  let combined =
    match plan_opt with
    | Some plan ->
        List.map
          (fun row -> Xdb_rel.Value.to_string (List.assoc "result" row))
          (Xdb_rel.Exec.run db plan)
    | None -> Xdb_core.Pipeline.run_composed_dynamic db c composed
  in
  Printf.printf "\ncombined ≡ naive (materialise + query): %b\n" (naive = combined)
