(* The whole paper through its own SQL interface.

   This example sets up the dept/emp database with the dept_emp publishing
   view (paper Tables 1-3) and then executes the paper's SQL statements
   verbatim: Table 5's XMLTransform (rewritten to the Table 7 plan),
   Table 9's CREATE VIEW, and Table 10's XMLQuery over the XSLT view
   (combined-optimised to the Table 11 plan) — plus DML: updates flow
   through the engine's data versioning, so the same XMLTransform
   re-executed after an UPDATE reflects the write.

   Run with: dune exec examples/sql_session.exe *)

module Engine = Xdb_core.Engine

let engine () =
  let dv = Xdb_xsltmark.Data.dept_emp_db 2 3 in
  let eng = Engine.create dv.Xdb_xsltmark.Data.db in
  Engine.register_view eng dv.Xdb_xsltmark.Data.view;
  eng

let run eng sql =
  Printf.printf "SQL> %s\n" (String.trim sql);
  (match Engine.execute eng sql with
  | r -> print_string (Xdb_sql.Engine.render r)
  | exception Xdb_core.Xdb_error.Error e ->
      Printf.printf "error: %s\n" (Xdb_core.Xdb_error.to_string e));
  print_newline ()

let stylesheet_literal =
  (* a compact variant of paper Table 5, quoted for SQL string syntax *)
  {|'<?xml version="1.0"?><xsl:stylesheet version="1.0"
xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
<xsl:template match="dept">
<H1>REPORT</H1><xsl:apply-templates/>
</xsl:template>
<xsl:template match="dname"><H2><xsl:value-of select="."/></H2></xsl:template>
<xsl:template match="loc"/>
<xsl:template match="employees">
<table><xsl:apply-templates select="emp[sal &gt; 2000]"/></table>
</xsl:template>
<xsl:template match="emp">
<tr><td><xsl:value-of select="ename"/></td><td><xsl:value-of select="sal"/></td></tr>
</xsl:template>
<xsl:template match="text()"/>
</xsl:stylesheet>'|}

let () =
  let eng = engine () in

  (* plain relational access with index selection *)
  run eng "SELECT ename, sal FROM emp WHERE sal > 4000";

  (* paper Table 5: XSLT through XMLTransform — the XSLT rewrite kicks in *)
  run eng
    (Printf.sprintf "SELECT XMLTransform(dept_emp.dept_content, %s) FROM dept_emp"
       stylesheet_literal);

  (* XQuery directly over the publishing view *)
  run eng
    {|SELECT dname, XMLQuery('fn:string(sum(./dept/employees/emp/sal))'
PASSING dept_emp.dept_content RETURNING CONTENT) AS payroll FROM dept_emp|};

  (* paper Table 9: wrap the transformation as an XSLT view *)
  run eng
    (Printf.sprintf
       "CREATE VIEW xslt_vu AS SELECT XMLTransform(dept_emp.dept_content, %s) AS xslt_rslt FROM dept_emp"
       stylesheet_literal);

  (* paper Table 10: query the XSLT view — combined optimisation (Table 11) *)
  run eng
    {|SELECT XMLQuery('for $tr in ./table/tr return $tr'
PASSING xslt_vu.xslt_rslt RETURNING CONTENT) FROM xslt_vu|};

  (* DML: a raise for one employee, then the same transform again — the
     data-version bump invalidates the cached result and the re-executed
     plan sees the new salary *)
  run eng "UPDATE emp SET sal = 5200 WHERE ename = 'EMP00002'";
  run eng "SELECT ename, sal FROM emp WHERE sal > 4000";
  run eng
    (Printf.sprintf "SELECT XMLTransform(dept_emp.dept_content, %s) FROM dept_emp"
       stylesheet_literal);

  (* failed statements are atomic: nothing changed, same data version *)
  run eng "UPDATE emp SET sal = 'not a number'";
  run eng "DELETE FROM emp WHERE sal > 5000";
  run eng "SELECT ename, sal FROM emp"
