(* Paper §7.3: schema evolution with automated recompilation.

   A stylesheet is compiled once against the dept_emp view.  The view then
   evolves — the published shape changes — and the registry notices the new
   structural fingerprint on the next use and recompiles the stylesheet
   against the evolved schema, exactly the dependency-tracked recompilation
   the paper describes.

   Run with: dune exec examples/evolution.exe *)

module P = Xdb_rel.Publish
module R = Xdb_core.Registry

let stylesheet =
  {|<?xml version="1.0"?>
<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
<xsl:template match="dept">
<card>
<xsl:apply-templates/>
</card>
</xsl:template>
<xsl:template match="dname"><title><xsl:value-of select="."/></title></xsl:template>
<xsl:template match="loc"><where><xsl:value-of select="."/></where></xsl:template>
<xsl:template match="employees"><staff><xsl:value-of select="count(emp)"/></staff></xsl:template>
<xsl:template match="text()"/>
</xsl:stylesheet>|}

let () =
  let dv = Xdb_xsltmark.Data.dept_emp_db 2 3 in
  let db = dv.Xdb_xsltmark.Data.db in
  let v1 = dv.Xdb_xsltmark.Data.view in

  let reg = R.create db in
  R.register_view reg v1;

  print_endline "== version 1 of the view (dname, loc, employees):";
  List.iter print_endline (R.run reg ~view_name:"dept_emp" ~stylesheet);
  Printf.printf "compilations so far: %d\n\n" (R.recompilations reg);

  print_endline "== same query again (served from the compilation cache):";
  ignore (R.run reg ~view_name:"dept_emp" ~stylesheet);
  Printf.printf "compilations so far: %d\n\n" (R.recompilations reg);

  (* evolve the schema: the view no longer publishes <loc>, and dname is
     renamed upstream — here we simply drop loc from the published shape *)
  let v2 =
    match v1.P.spec with
    | P.Elem ({ content = dname :: _loc :: rest; _ } as e) ->
        { v1 with P.spec = P.Elem { e with content = dname :: rest } }
    | _ -> failwith "unexpected spec"
  in
  R.register_view reg v2;

  print_endline "== after schema evolution (loc dropped): automatic recompile";
  List.iter print_endline (R.run reg ~view_name:"dept_emp" ~stylesheet);
  Printf.printf "compilations so far: %d\n" (R.recompilations reg)
