(** Benchmark harness reproducing the paper's evaluation (§5).

    Targets (run all with [dune exec bench/main.exe], or select one by name):

    - [fig2]        — Figure 2: dbonerow, rewrite vs no-rewrite, at four
                      input sizes (8k/16k/32k/64k rows standing in for the
                      paper's 8M–64M documents; see DESIGN.md §2);
    - [fig3]        — Figure 3: avts / chart / metric / total, rewrite vs
                      no-rewrite at a fixed size;
    - [inline-stat] — the "23 of 40 test cases compile in full inline mode"
                      statistic;
    - [ablation]    — each §3.3–3.7 optimisation toggled off individually:
                      generated-query size and dynamic evaluation time;
    - [pubstream]   — DOM vs streamed output events on publishing and the
                      SQL/XML rewrite, wall time and GC allocation
                      (BENCH_PR4.json);
    - [parscale]    — domain-parallel rewrite execution at 1/2/4 domains,
                      many-documents sharding, byte-identity asserted
                      (BENCH_PR5.json);
    - [shredscale]  — DOM tree walk vs interval-encoded shredded storage
                      with axis range scans, 8k/64k-node documents,
                      descendant and value-predicate lookups, byte-identity
                      asserted (BENCH_PR6.json); each leg also timed
                      through the correlated per-context plans vs the
                      set-at-a-time batch evaluator (BENCH_PR8.json);
    - [joinscale]   — hash join vs forced nested loop (non-indexed
                      dimension) and vs index nested loop (indexed
                      dimension) on a join-heavy publishing shape at
                      100k/1M outer rows, byte-identity asserted per leg,
                      planner choice recorded (BENCH_PR9.json);
    - [servebench]  — closed-loop concurrent serving: N client domains ×
                      a mixed case set over one shared Engine through
                      Xdb.Server sessions, throughput + p50/p95/p99, an
                      admission-control overload scenario, byte-identity
                      asserted (BENCH_PR7.json);
    - [rwbench]     — mixed read/write workload: DML through
                      [Engine.execute] interleaved with transform reads,
                      95/5 and 50/50 mixes, cached-read vs recompute
                      speedup, every read byte-compared against a forced
                      recompute — zero stale reads asserted
                      (BENCH_PR10.json);
    - [micro]       — Bechamel micro-benchmarks of the pipeline stages
                      (one [Test.make] per reproduced figure leg).

    Absolute numbers differ from the paper (Oracle testbed vs this
    simulator); the reproduced property is the *shape*: who wins, by what
    factor, and how each side scales. *)

module M = Xdb_xsltmark.Cases
module D = Xdb_xsltmark.Data
module PL = Xdb_core.Pipeline

let time_once f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let t1 = Unix.gettimeofday () in
  (r, (t1 -. t0) *. 1000.0)

(* median-of-k wall clock, milliseconds *)
let time_ms ?(repeat = 3) f =
  let samples = List.init repeat (fun _ -> snd (time_once f)) in
  let sorted = List.sort compare samples in
  List.nth sorted (repeat / 2)

let hrule = String.make 72 '-'

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Host metadata stamped into every BENCH_*.json artifact, so
   self-skipping CI gates (e.g. the parallel-speedup gates that only
   apply when enough cores exist) are visible in the artifact instead of
   silent.  The timestamp is passed in by the harness (XDB_BENCH_TS) —
   benchmarks themselves stay deterministic. *)
let host_json () =
  Printf.sprintf {|{"nproc":%d,"ocaml":"%s","timestamp":"%s"}|}
    (Xdb_core.Parallel.default_jobs ())
    (json_escape Sys.ocaml_version)
    (json_escape (Option.value (Sys.getenv_opt "XDB_BENCH_TS") ~default:""))

(* ------------------------------------------------------------------ *)
(* Figure 2                                                            *)
(* ------------------------------------------------------------------ *)

(* CSV artifact support: bench results also land in bench/results/ *)
let csv_out name header rows =
  (try Unix.mkdir "bench/results" 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> () | _ -> ());
  let path = Filename.concat "bench/results" name in
  let oc = open_out path in
  output_string oc (header ^ "\n");
  List.iter (fun r -> output_string oc (r ^ "\n")) rows;
  close_out oc;
  Printf.printf "(written %s)\n" path

(* BENCH_PR1.json accumulator: one JSON object per (figure, leg) with the
   pipeline stage timings, end-to-end leg times and operator stats *)
let bench_records : string list ref = ref []

let record_leg ~figure ~case ~rows ~rewrite_ms ~norewrite_ms ~compile_json ~operators_json =
  bench_records :=
    Printf.sprintf
      {|{"figure":"%s","case":"%s","rows":%d,"rewrite_ms":%.4f,"norewrite_ms":%.4f,"speedup":%.2f,"pipeline":%s,"operators":%s}|}
      figure case rows rewrite_ms norewrite_ms
      (norewrite_ms /. rewrite_ms)
      compile_json operators_json
    :: !bench_records

let write_bench_json () =
  if !bench_records <> [] then begin
    let oc = open_out "BENCH_PR1.json" in
    Printf.fprintf oc "{\"bench\":\"BENCH_PR1\",\"host\":%s,\"legs\":[\n  " (host_json ());
    output_string oc (String.concat ",\n  " (List.rev !bench_records));
    output_string oc "\n]}\n";
    close_out oc;
    print_endline "(written BENCH_PR1.json)"
  end

(* one dbonerow leg: compile with metrics, verify functional ≡ rewrite,
   time both, and capture the instrumented operator stats *)
let fig2_leg ~figure n =
  let case = M.dbonerow_for n in
  let dv = M.dbview_for case n in
  let metrics = Xdb_core.Metrics.create () in
  let comp = PL.compile ~metrics dv.D.db dv.D.view case.M.stylesheet in
  assert (comp.PL.sql_plan <> None);
  (* correctness check once before timing *)
  let f0 = PL.run_functional dv.D.db comp in
  let r0, stats = PL.run_rewrite_analyzed ~metrics dv.D.db comp in
  assert (f0 = r0);
  let rewrite_ms = time_ms (fun () -> PL.run_rewrite dv.D.db comp) in
  let norewrite_ms = time_ms (fun () -> PL.run_functional dv.D.db comp) in
  Printf.printf "%8d %14.3f %14.3f %9.1fx\n" n rewrite_ms norewrite_ms
    (norewrite_ms /. rewrite_ms);
  record_leg ~figure ~case:case.M.name ~rows:n ~rewrite_ms ~norewrite_ms
    ~compile_json:(Xdb_core.Metrics.to_json metrics)
    ~operators_json:
      (match stats with Some s -> Xdb_rel.Stats.to_json s | None -> "[]");
  Printf.sprintf "%d,%.4f,%.4f" n rewrite_ms norewrite_ms

let fig2 ?(figure = "fig2") ?(sizes = [ 8_000; 16_000; 32_000; 64_000 ]) () =
  Printf.printf "%s\nFigure 2 — dbonerow: XSLT rewrite vs no-rewrite (value predicate)\n%s\n"
    hrule hrule;
  Printf.printf "%8s %14s %14s %10s\n" "rows" "rewrite(ms)" "no-rewrite(ms)" "speedup";
  let rows = List.map (fun n -> fig2_leg ~figure n) sizes in
  csv_out
    (if figure = "fig2" then "fig2.csv" else figure ^ ".csv")
    "rows,rewrite_ms,norewrite_ms" rows;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Figure 3                                                            *)
(* ------------------------------------------------------------------ *)

let fig3 ?(n = 8_000) () =
  Printf.printf
    "%s\nFigure 3 — no-value-predicate cases: rewrite vs no-rewrite (%d rows)\n%s\n" hrule n
    hrule;
  Printf.printf "%12s %14s %14s %10s\n" "case" "rewrite(ms)" "no-rewrite(ms)" "speedup";
  let rows =
    List.map
      (fun name ->
        let case = Option.get (M.find name) in
        let dv = M.dbview_for case n in
        let metrics = Xdb_core.Metrics.create () in
        let comp = PL.compile ~metrics dv.D.db dv.D.view case.M.stylesheet in
        assert (comp.PL.sql_plan <> None);
        let f0 = PL.run_functional dv.D.db comp in
        let r0, stats = PL.run_rewrite_analyzed ~metrics dv.D.db comp in
        assert (f0 = r0);
        let rewrite_ms = time_ms (fun () -> PL.run_rewrite dv.D.db comp) in
        let norewrite_ms = time_ms (fun () -> PL.run_functional dv.D.db comp) in
        Printf.printf "%12s %14.3f %14.3f %9.1fx\n" name rewrite_ms norewrite_ms
          (norewrite_ms /. rewrite_ms);
        record_leg ~figure:"fig3" ~case:name ~rows:n ~rewrite_ms ~norewrite_ms
          ~compile_json:(Xdb_core.Metrics.to_json metrics)
          ~operators_json:
            (match stats with Some s -> Xdb_rel.Stats.to_json s | None -> "[]");
        Printf.sprintf "%s,%.4f,%.4f" name rewrite_ms norewrite_ms)
      [ "avts"; "chart"; "metric"; "total" ]
  in
  csv_out "fig3.csv" "case,rewrite_ms,norewrite_ms" rows;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Inline statistic                                                    *)
(* ------------------------------------------------------------------ *)

let inline_stat () =
  Printf.printf "%s\nInline statistic — full-inline XSLT→XQuery compilations (paper: 23/40)\n%s\n"
    hrule hrule;
  let inline = ref 0 and noninline = ref 0 in
  List.iter
    (fun (c : M.case) ->
      let doc = M.doc_for c 100 in
      let dc = PL.compile_for_document c.M.stylesheet ~example_doc:doc in
      let mode = dc.PL.d_translation.Xdb_core.Xslt2xquery.mode in
      let is_inline =
        match mode with
        | Xdb_core.Xslt2xquery.Mode_inline | Xdb_core.Xslt2xquery.Mode_builtin_compact -> true
        | Xdb_core.Xslt2xquery.Mode_partial_inline | Xdb_core.Xslt2xquery.Mode_functions -> false
      in
      if is_inline then incr inline else incr noninline;
      Printf.printf "  %-14s %-16s %s\n" c.M.name (PL.mode_name mode) c.M.category)
    M.all;
  Printf.printf "\ninline: %d / %d   (paper reports 23/40)\n\n" !inline (!inline + !noninline)

(* ------------------------------------------------------------------ *)
(* Ablation (§3.3–3.7 options)                                         *)
(* ------------------------------------------------------------------ *)

let ablation ?(n = 2_000) () =
  Printf.printf
    "%s\nAblation — §3.3–3.7 techniques toggled off individually (%d rows)\n%s\n" hrule n hrule;
  let base = Xdb_core.Options.default in
  let variants =
    [
      ("all-on (paper)", base);
      ("no-inlining (3.3)", { base with Xdb_core.Options.inline_templates = false });
      ("no-model-groups (3.4)", { base with Xdb_core.Options.use_model_groups = false });
      ("no-cardinality (3.4)", { base with Xdb_core.Options.use_cardinality = false });
      ("no-backward-removal (3.5)", { base with Xdb_core.Options.remove_backward_tests = false });
      ("no-dead-removal (3.7)", { base with Xdb_core.Options.remove_dead_templates = false });
      ("straightforward [9]", Xdb_core.Options.straightforward);
    ]
  in
  let cases = List.filter_map M.find [ "dbonerow"; "patterns"; "decoy"; "inventory"; "metric" ] in
  Printf.printf "%-28s %12s %12s %12s\n" "configuration" "qsize(avg)" "eval(ms)" "sql-capable";
  List.iter
    (fun (label, options) ->
      let sizes = ref 0 and times = ref 0.0 and sqlable = ref 0 in
      List.iter
        (fun (c : M.case) ->
          let c = if c.M.name = "dbonerow" then M.dbonerow_for n else c in
          let doc = M.doc_for c n in
          let dc = PL.compile_for_document ~options c.M.stylesheet ~example_doc:doc in
          let q = dc.PL.d_translation.Xdb_core.Xslt2xquery.query in
          sizes := !sizes + Xdb_xquery.Ast.size q.Xdb_xquery.Ast.body;
          times := !times +. time_ms ~repeat:3 (fun () -> PL.transform_via_xquery dc doc);
          if c.M.db_capable then
            let dv = M.dbview_for c n in
            match Xdb_xquery.Sql_rewrite.rewrite_view_plan dv.D.db dv.D.view q with
            | _ -> incr sqlable
            | exception Xdb_xquery.Sql_rewrite.Not_rewritable _ -> ())
        cases;
      Printf.printf "%-28s %12d %12.2f %9d/%d\n" label
        (!sizes / List.length cases)
        !times !sqlable (List.length cases))
    variants;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Storage-model study (paper §7.4)                                    *)
(* ------------------------------------------------------------------ *)

let storage ?(n = 8_000) () =
  Printf.printf
    "%s\nStorage models (paper §7.4) — dbonerow at %d rows\n%s\n" hrule n hrule;
  let case = M.dbonerow_for n in
  let dv = M.dbview_for case n in
  let comp = PL.compile dv.D.db dv.D.view case.M.stylesheet in
  (* object-relational: publish from tables, then transform *)
  let or_ms = time_ms (fun () -> PL.run_functional dv.D.db comp) in
  (* CLOB: serialized text parsed on access, then transform *)
  let docs = Xdb_rel.Publish.materialize dv.D.db dv.D.view in
  let clob_tbl = Xdb_rel.Clob.store dv.D.db ~table:"clob_docs" docs in
  ignore clob_tbl;
  let clob_ms =
    time_ms (fun () ->
        List.iter
          (fun doc -> ignore (Xdb_xslt.Vm.transform comp.PL.vm_prog doc))
          (Xdb_rel.Clob.load dv.D.db ~table:"clob_docs"))
  in
  (* tree storage: the DOM is already resident; transformation only *)
  let tree_ms =
    time_ms (fun () ->
        List.iter (fun doc -> ignore (Xdb_xslt.Vm.transform comp.PL.vm_prog doc)) docs)
  in
  (* rewrite (object-relational only: structural info required) *)
  let rewrite_ms = time_ms (fun () -> PL.run_rewrite dv.D.db comp) in
  Printf.printf "%-34s %12s\n" "storage model" "time(ms)";
  Printf.printf "%-34s %12.3f\n" "object-relational, no rewrite" or_ms;
  Printf.printf "%-34s %12.3f\n" "CLOB (parse on access)" clob_ms;
  Printf.printf "%-34s %12.3f\n" "tree (resident DOM)" tree_ms;
  Printf.printf "%-34s %12.3f\n" "rewrite (B-tree probe)" rewrite_ms;
  print_newline ();
  (* multi-document scenario: one document per record, select-and-transform
     the single matching document (paper's "CLOB with path/value index") *)
  let n_docs = 2_000 in
  Printf.printf "%s\nStorage models, many-document scenario (%d single-record docs)\n%s\n"
    hrule n_docs hrule;
  let docs =
    List.init n_docs (fun i ->
        let d = D.records_doc 1 in
        (* make ids unique across documents *)
        (match Xdb_xml.Parser.document_element d with
        | { Xdb_xml.Types.children = [ row ]; _ } -> (
            match row.Xdb_xml.Types.children with
            | idel :: _ -> Xdb_xml.Types.set_children idel [ Xdb_xml.Builder.text (string_of_int (i + 1)) ]
            | [] -> ())
        | _ -> ());
        Xdb_xml.Types.reindex d;
        (i + 1, d))
  in
  let target = n_docs / 2 in
  let wanted = string_of_int target in
  let clob_db = Xdb_rel.Database.create () in
  let _tbl = Xdb_rel.Clob.store clob_db ~table:"docs" (List.map snd docs) in
  let t_scan =
    time_ms (fun () ->
        (* no index: parse every stored document and test the predicate *)
        List.iter
          (fun doc ->
            let root = Xdb_xml.Parser.document_element doc in
            ignore (Xdb_xml.Types.string_value root = wanted))
          (Xdb_rel.Clob.load clob_db ~table:"docs"))
  in
  let pidx = Xdb_rel.Pathindex.build docs in
  let t_indexed =
    time_ms (fun () ->
        match Xdb_rel.Pathindex.lookup pidx ~path:"/table/row/id" ~value:wanted with
        | docid :: _ ->
            ignore (Xdb_rel.Clob.load_one clob_db ~table:"docs" ~docid)
        | [] -> ())
  in
  Printf.printf "%-34s %12.3f\n" "CLOB scan (parse all, test)" t_scan;
  Printf.printf "%-34s %12.3f\n" "CLOB + path/value index" t_indexed;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Partial-inline extension (§7.2)                                     *)
(* ------------------------------------------------------------------ *)

let partial_inline ?(n = 400) () =
  Printf.printf
    "%s\nPartial inline (§7.2 extension) — recursive cases at size %d\n%s\n" hrule n hrule;
  Printf.printf "%-14s %16s %16s %10s %10s\n" "case" "non-inline(ms)" "partial(ms)" "funs(ni)"
    "funs(pi)";
  List.iter
    (fun (c : M.case) ->
      if not c.M.expect_inline then begin
        let doc = M.doc_for c n in
        let ni =
          PL.compile_for_document ~options:Xdb_core.Options.default c.M.stylesheet
            ~example_doc:doc
        in
        let pi =
          PL.compile_for_document ~options:Xdb_core.Options.with_partial_inline c.M.stylesheet
            ~example_doc:doc
        in
        (* correctness first *)
        assert (PL.transform_via_xquery ni doc = PL.transform_via_xquery pi doc);
        let t_ni = time_ms (fun () -> ignore (PL.transform_via_xquery ni doc)) in
        let t_pi = time_ms (fun () -> ignore (PL.transform_via_xquery pi doc)) in
        Printf.printf "%-14s %16.3f %16.3f %10d %10d\n" c.M.name t_ni t_pi
          (List.length ni.PL.d_translation.Xdb_core.Xslt2xquery.query.Xdb_xquery.Ast.funs)
          (List.length pi.PL.d_translation.Xdb_core.Xslt2xquery.query.Xdb_xquery.Ast.funs)
      end)
    M.all;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Plan quality (PR 2): per-operator q-error with vs without ANALYZE   *)
(* ------------------------------------------------------------------ *)

(* q-error = max(est/actual, actual/est), both clamped to >= 1 row *)
let qerror est actual =
  let est = Float.max 1.0 est and actual = Float.max 1.0 actual in
  Float.max (est /. actual) (actual /. est)

let median = function
  | [] -> 0.0
  | xs ->
      let a = List.sort compare xs in
      let k = List.length a in
      if k mod 2 = 1 then List.nth a (k / 2)
      else (List.nth a ((k / 2) - 1) +. List.nth a (k / 2)) /. 2.0

(* one leg: compile pre-ANALYZE, collect stats, recompile (cost-based),
   run instrumented, and compare per-operator estimates — System-R
   defaults vs statistics — against the actual row counts *)
let planquality ?(n = 2_000) () =
  Printf.printf
    "%s\nPlan quality — per-operator q-error, System-R defaults vs ANALYZE stats (%d rows)\n%s\n"
    hrule n hrule;
  Printf.printf "%12s %5s %14s %14s %6s %14s\n" "case" "ops" "qerr(default)" "qerr(stats)" "wins"
    "plan-changed";
  let legs = ref [] in
  let all_qerr_stats = ref [] and all_qerr_default = ref [] in
  let csv_rows =
    List.map
      (fun name ->
        let case = Option.get (M.find name) in
        let case = if name = "dbonerow" then M.dbonerow_for n else case in
        let dv = M.dbview_for case n in
        let db = dv.D.db in
        (* pre-ANALYZE plan: rule-based, default selectivities *)
        let comp_default = PL.compile db dv.D.view case.M.stylesheet in
        let plan_default = Option.get comp_default.PL.sql_plan in
        (* collect statistics and recompile: cost-based plan *)
        ignore (Xdb_rel.Analyze.all db);
        let comp_stats = PL.compile db dv.D.view case.M.stylesheet in
        let plan_stats = Option.get comp_stats.PL.sql_plan in
        let plan_changed =
          Xdb_rel.Algebra.plan_sql plan_stats <> Xdb_rel.Algebra.plan_sql plan_default
        in
        let _rows, stats_opt = PL.run_rewrite_analyzed db comp_stats in
        let st = Option.get stats_opt in
        let ops =
          List.filter_map
            (fun (e : Xdb_rel.Stats.entry) ->
              let op = e.Xdb_rel.Stats.op in
              if op.Xdb_rel.Stats.loops = 0 then None
              else
                let actual =
                  float_of_int op.Xdb_rel.Stats.rows /. float_of_int op.Xdb_rel.Stats.loops
                in
                let est_stats = Xdb_rel.Cost.estimate_rows db e.Xdb_rel.Stats.node in
                let est_default = Xdb_rel.Cost.estimate_rows_default db e.Xdb_rel.Stats.node in
                Some
                  ( e.Xdb_rel.Stats.label,
                    est_default,
                    est_stats,
                    actual,
                    qerror est_default actual,
                    qerror est_stats actual ))
            (Xdb_rel.Stats.entries st)
        in
        let qd = List.map (fun (_, _, _, _, q, _) -> q) ops in
        let qs = List.map (fun (_, _, _, _, _, q) -> q) ops in
        let wins =
          List.length (List.filter (fun (_, _, _, _, d, s) -> s < d) ops)
        in
        all_qerr_stats := qs @ !all_qerr_stats;
        all_qerr_default := qd @ !all_qerr_default;
        Printf.printf "%12s %5d %14.2f %14.2f %6d %14b\n" name (List.length ops) (median qd)
          (median qs) wins plan_changed;
        let ops_json =
          String.concat ","
            (List.map
               (fun (label, ed, es, a, qd, qs) ->
                 Printf.sprintf
                   {|{"op":"%s","est_default":%.2f,"est_stats":%.2f,"actual":%.2f,"qerr_default":%.3f,"qerr_stats":%.3f}|}
                   (json_escape label) ed es a qd qs)
               ops)
        in
        legs :=
          Printf.sprintf
            {|{"case":"%s","rows":%d,"operators":%d,"median_qerr_default":%.3f,"median_qerr_stats":%.3f,"wins":%d,"plan_changed":%b,"per_operator":[%s]}|}
            name n (List.length ops) (median qd) (median qs) wins plan_changed ops_json
          :: !legs;
        Printf.sprintf "%s,%d,%.3f,%.3f,%d,%b" name (List.length ops) (median qd) (median qs)
          wins plan_changed)
      [ "dbonerow"; "avts"; "chart"; "metric"; "total" ]
  in
  let med_stats = median !all_qerr_stats and med_default = median !all_qerr_default in
  Printf.printf "%12s %5s %14.2f %14.2f\n" "OVERALL" "" med_default med_stats;
  csv_out "planquality.csv" "case,operators,median_qerr_default,median_qerr_stats,wins,plan_changed"
    csv_rows;
  let oc = open_out "BENCH_PR2.json" in
  Printf.fprintf oc
    "{\"bench\":\"BENCH_PR2\",\"host\":%s,\"rows\":%d,\"median_qerror\":%.3f,\"median_qerror_default\":%.3f,\"legs\":[\n  %s\n]}\n"
    (host_json ()) n med_stats med_default
    (String.concat ",\n  " (List.rev !legs));
  close_out oc;
  print_endline "(written BENCH_PR2.json)";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* execscale: interpreted vs compiled executor (BENCH_PR3)             *)
(* ------------------------------------------------------------------ *)

(* Scan-heavy leg timing the executor itself (no XSLT pipeline around
   it): Project(expressions incl. CASE) over Filter over Seq_scan, at
   three sizes.  The same plan runs through the interpreted reference
   executor and the compiled layout/batch executor; rows must match
   row-for-row and the per-operator actual-row counts (EXPLAIN ANALYZE)
   must be identical, then the two are timed. *)
let execscale ?(sizes = [ 2_000; 20_000; 100_000 ]) () =
  let module R = Xdb_rel in
  let module A = R.Algebra in
  let module V = R.Value in
  let build n =
    let db = R.Database.create () in
    let tbl =
      R.Database.create_table db "items"
        [
          { R.Table.col_name = "id"; col_type = V.Tint };
          { R.Table.col_name = "name"; col_type = V.Tstr };
          { R.Table.col_name = "value"; col_type = V.Tint };
          { R.Table.col_name = "category"; col_type = V.Tstr };
          { R.Table.col_name = "qty"; col_type = V.Tint };
        ]
    in
    let seed = ref 42 in
    let rand m =
      seed := ((!seed * 1103515245) + 12345) land 0x3FFFFFFF;
      !seed mod m
    in
    for i = 0 to n - 1 do
      R.Table.insert_values tbl
        [
          V.Int i;
          V.Str (Printf.sprintf "item-%05d" i);
          V.Int (rand 1000);
          V.Str (String.make 1 (Char.chr (Char.code 'A' + rand 5)));
          V.Int (1 + rand 9);
        ]
    done;
    db
  in
  let plan =
    A.Project
      ( [
          (A.Col (Some "i", "id"), "id");
          (A.Col (None, "name"), "name");
          (A.Binop (A.Mul, A.Col (None, "value"), A.Col (None, "qty")), "total");
          ( A.Case
              ( [
                  ( A.Binop (A.Gt, A.Col (None, "value"), A.Const (V.Int 900)),
                    A.Const (V.Str "hot") );
                  ( A.Binop (A.Gt, A.Col (None, "value"), A.Const (V.Int 500)),
                    A.Const (V.Str "warm") );
                ],
                Some (A.Const (V.Str "cold")) ),
            "band" );
          (A.Col (Some "i", "category"), "category");
        ],
        A.Filter
          ( A.Binop
              ( A.And,
                A.Binop (A.Gt, A.Col (None, "value"), A.Const (V.Int 100)),
                A.Binop (A.Neq, A.Col (None, "category"), A.Const (V.Str "E")) ),
            A.Seq_scan { table = "items"; alias = "i" } ) )
  in
  Printf.printf "%s\nexecscale: interpreted vs compiled executor (batch=%d)\n%s\n" hrule
    R.Exec.default_batch_size hrule;
  Printf.printf "%8s %15s %13s %8s %10s %9s\n" "rows" "interpreted_ms" "compiled_ms" "speedup"
    "rows_same" "ops_same";
  let legs = ref [] and csv_rows = ref [] in
  List.iter
    (fun n ->
      let db = build n in
      (* correctness first: row-for-row identical results… *)
      let irows = R.Exec.run_interpreted db plan in
      let layout, arows = R.Exec.run_arrays db plan in
      let rows_ok = List.map (R.Layout.to_assoc layout) arows = irows in
      (* …and identical per-operator actual-row counts under ANALYZE *)
      let _, st_i = R.Exec.run_interpreted_analyzed db plan in
      let (_, _), st_c = R.Exec.run_arrays_analyzed db plan in
      let ops_ok = R.Stats.rows_signature st_i = R.Stats.rows_signature st_c in
      let interpreted_ms = time_ms (fun () -> ignore (R.Exec.run_interpreted db plan)) in
      (* compiled time includes the column-resolution/compile pass *)
      let compiled_ms = time_ms (fun () -> ignore (R.Exec.run_arrays db plan)) in
      let speedup = interpreted_ms /. compiled_ms in
      Printf.printf "%8d %15.2f %13.2f %7.2fx %10b %9b\n" n interpreted_ms compiled_ms speedup
        rows_ok ops_ok;
      legs :=
        Printf.sprintf
          {|{"rows":%d,"interpreted_ms":%.4f,"compiled_ms":%.4f,"speedup":%.2f,"rows_identical":%b,"operators_identical":%b,"batch_size":%d}|}
          n interpreted_ms compiled_ms speedup rows_ok ops_ok R.Exec.default_batch_size
        :: !legs;
      csv_rows :=
        Printf.sprintf "%d,%.4f,%.4f,%.2f,%b,%b" n interpreted_ms compiled_ms speedup rows_ok
          ops_ok
        :: !csv_rows)
    sizes;
  csv_out "execscale.csv"
    "rows,interpreted_ms,compiled_ms,speedup,rows_identical,operators_identical"
    (List.rev !csv_rows);
  let oc = open_out "BENCH_PR3.json" in
  Printf.fprintf oc "{\"bench\":\"BENCH_PR3\",\"host\":%s,\"legs\":[\n  %s\n]}\n" (host_json ())
    (String.concat ",\n  " (List.rev !legs));
  close_out oc;
  print_endline "(written BENCH_PR3.json)";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* joinscale: hash join vs (index) nested loop (BENCH_PR9)             *)
(* ------------------------------------------------------------------ *)

(* Join-heavy publishing shape: a fact table of orders against two
   dimension tables — one with an index on its key (the index-NL-friendly
   join) and one without (where a nested loop has to rescan the dimension
   per probe row).  Each join runs as a hash join and as the nested-loop
   alternatives over the *same* outer side; results must be byte-identical
   across physical operators before anything is timed.  The planner's own
   post-ANALYZE choice for each join region is recorded alongside. *)
let joinscale ?(sizes = [ 100_000; 1_000_000 ]) () =
  let module R = Xdb_rel in
  let module A = R.Algebra in
  let module V = R.Value in
  let n_cust = 1_000 and n_tag = 200 in
  let build n =
    let db = R.Database.create () in
    let orders =
      R.Database.create_table db "orders"
        [
          { R.Table.col_name = "oid"; col_type = V.Tint };
          { R.Table.col_name = "cust"; col_type = V.Tint };
          { R.Table.col_name = "tag"; col_type = V.Tint };
          { R.Table.col_name = "amt"; col_type = V.Tint };
        ]
    in
    let dim_cust =
      R.Database.create_table db "dim_cust"
        [
          { R.Table.col_name = "cid"; col_type = V.Tint };
          { R.Table.col_name = "cname"; col_type = V.Tstr };
        ]
    in
    let dim_tag =
      R.Database.create_table db "dim_tag"
        [
          { R.Table.col_name = "tid"; col_type = V.Tint };
          { R.Table.col_name = "tname"; col_type = V.Tstr };
        ]
    in
    let seed = ref 7 in
    let rand m =
      seed := ((!seed * 1103515245) + 12345) land 0x3FFFFFFF;
      !seed mod m
    in
    for i = 0 to n - 1 do
      R.Table.insert_values orders
        [ V.Int i; V.Int (rand n_cust); V.Int (rand n_tag); V.Int (rand 10_000) ]
    done;
    for c = 0 to n_cust - 1 do
      R.Table.insert_values dim_cust [ V.Int c; V.Str (Printf.sprintf "cust-%04d" c) ]
    done;
    for t = 0 to n_tag - 1 do
      R.Table.insert_values dim_tag [ V.Int t; V.Str (Printf.sprintf "tag-%03d" t) ]
    done;
    ignore (R.Table.create_index dim_cust ~name:"dim_cust_cid" ~column:"cid");
    db
  in
  let outer = A.Seq_scan { table = "orders"; alias = "o" } in
  let hash_plan ~dim ~dalias ~okey ~dkey =
    A.Hash_join
      {
        outer;
        inner = A.Seq_scan { table = dim; alias = dalias };
        keys = [ (A.qcol "o" okey, A.qcol dalias dkey) ];
        kind = A.Inner;
      }
  in
  let nl_plan ~dim ~dalias ~okey ~dkey =
    A.Nested_loop
      {
        outer;
        inner = A.Seq_scan { table = dim; alias = dalias };
        join_cond = Some A.(qcol "o" okey =. qcol dalias dkey);
      }
  in
  let indexnl_plan ~dim ~dalias ~okey ~dkey ~index =
    A.Nested_loop
      {
        outer;
        inner =
          A.Index_scan
            {
              table = dim;
              alias = dalias;
              index_column = index;
              lo = A.Incl (A.qcol "o" okey);
              hi = A.Incl (A.qcol "o" okey);
            };
        join_cond = Some A.(qcol "o" okey =. qcol dalias dkey);
      }
  in
  (* (oid, dimension name) rows in output order: equality across the
     physical operators is the byte-identity assertion of the CI gate *)
  let norm db name_col plan =
    let layout, rows = R.Exec.run_arrays db plan in
    let so = Option.get (R.Layout.slot_opt layout "oid") in
    let sn = Option.get (R.Layout.slot_opt layout name_col) in
    List.map (fun (r : V.t array) -> (V.to_int r.(so), V.to_string r.(sn))) rows
  in
  Printf.printf "%s\njoinscale: hash join vs (index) nested loop\n%s\n" hrule hrule;
  Printf.printf "%8s %8s %10s %12s %12s %9s %10s\n" "rows" "dim" "hash_ms" "nl_ms" "indexnl_ms"
    "identical" "planner";
  let legs = ref [] and csv_rows = ref [] in
  List.iter
    (fun n ->
      let db = build n in
      (* planner choice for the same join region, post-ANALYZE *)
      let planner dim dalias okey dkey =
        let region =
          A.Filter
            ( A.(qcol "o" okey =. qcol dalias dkey),
              A.Nested_loop
                {
                  outer;
                  inner = A.Seq_scan { table = dim; alias = dalias };
                  join_cond = None;
                } )
        in
        match R.Optimizer.optimize db region with
        | A.Hash_join _ -> "hash"
        | A.Nested_loop { inner = A.Index_scan _; _ } -> "index-nl"
        | A.Nested_loop _ -> "nested-loop"
        | A.Filter _ -> "filter(unjoined)"
        | _ -> "other"
      in
      ignore (R.Analyze.all db);
      (* non-indexable dimension: hash vs forced nested loop *)
      let tag_hash = hash_plan ~dim:"dim_tag" ~dalias:"t" ~okey:"tag" ~dkey:"tid" in
      let tag_nl = nl_plan ~dim:"dim_tag" ~dalias:"t" ~okey:"tag" ~dkey:"tid" in
      let hash_rows = norm db "tname" tag_hash in
      let tag_planner = planner "dim_tag" "t" "tag" "tid" in
      (* the nested loop rescans the 200-row dimension n times: time it
         once, and only at the smaller sizes *)
      let run_nl = n <= 100_000 in
      let tag_identical = if run_nl then norm db "tname" tag_nl = hash_rows else true in
      let tag_hash_ms = time_ms (fun () -> ignore (R.Exec.run_arrays db tag_hash)) in
      let tag_nl_ms =
        if run_nl then Some (time_ms ~repeat:1 (fun () -> ignore (R.Exec.run_arrays db tag_nl)))
        else None
      in
      (* indexed dimension: hash vs index nested loop *)
      let cust_hash = hash_plan ~dim:"dim_cust" ~dalias:"c" ~okey:"cust" ~dkey:"cid" in
      let cust_inl =
        indexnl_plan ~dim:"dim_cust" ~dalias:"c" ~okey:"cust" ~dkey:"cid" ~index:"cid"
      in
      let cust_identical = norm db "cname" cust_hash = norm db "cname" cust_inl in
      let cust_planner = planner "dim_cust" "c" "cust" "cid" in
      let cust_hash_ms = time_ms (fun () -> ignore (R.Exec.run_arrays db cust_hash)) in
      let cust_inl_ms = time_ms (fun () -> ignore (R.Exec.run_arrays db cust_inl)) in
      let fmt_opt = function Some ms -> Printf.sprintf "%.2f" ms | None -> "-" in
      Printf.printf "%8d %8s %10.2f %12s %12s %9b %10s\n" n "tag" tag_hash_ms (fmt_opt tag_nl_ms)
        "-" tag_identical tag_planner;
      Printf.printf "%8d %8s %10.2f %12s %12.2f %9b %10s\n" n "cust" cust_hash_ms "-" cust_inl_ms
        cust_identical cust_planner;
      let leg ~dim ~hash_ms ~nl_ms ~indexnl_ms ~identical ~planner =
        let opt = function Some ms -> Printf.sprintf "%.4f" ms | None -> "null" in
        legs :=
          Printf.sprintf
            {|{"rows":%d,"dim":"%s","hash_ms":%.4f,"nl_ms":%s,"indexnl_ms":%s,"speedup_hash_vs_nl":%s,"identical":%b,"planner":"%s"}|}
            n dim hash_ms (opt nl_ms) (opt indexnl_ms)
            (match nl_ms with Some ms -> Printf.sprintf "%.2f" (ms /. hash_ms) | None -> "null")
            identical planner
          :: !legs;
        csv_rows :=
          Printf.sprintf "%d,%s,%.4f,%s,%s,%b,%s" n dim hash_ms (opt nl_ms) (opt indexnl_ms)
            identical planner
          :: !csv_rows
      in
      leg ~dim:"tag" ~hash_ms:tag_hash_ms ~nl_ms:tag_nl_ms ~indexnl_ms:None
        ~identical:tag_identical ~planner:tag_planner;
      leg ~dim:"cust" ~hash_ms:cust_hash_ms ~nl_ms:None ~indexnl_ms:(Some cust_inl_ms)
        ~identical:cust_identical ~planner:cust_planner)
    sizes;
  csv_out "joinscale.csv" "rows,dim,hash_ms,nl_ms,indexnl_ms,identical,planner"
    (List.rev !csv_rows);
  let oc = open_out "BENCH_PR9.json" in
  Printf.fprintf oc "{\"bench\":\"BENCH_PR9\",\"host\":%s,\"legs\":[\n  %s\n]}\n" (host_json ())
    (String.concat ",\n  " (List.rev !legs));
  close_out oc;
  print_endline "(written BENCH_PR9.json)";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* pubstream: DOM vs streaming result construction (BENCH_PR4)         *)
(* ------------------------------------------------------------------ *)

let alloc_bytes f =
  let a0 = Gc.allocated_bytes () in
  ignore (f ());
  Gc.allocated_bytes () -. a0

(* Every db-capable bench case, publish and rewrite, with result
   construction through the DOM vs streamed output events.  Outputs are
   asserted byte-identical first; then wall time (median of 3) and
   allocation (Gc.allocated_bytes delta over one run) per leg.  The
   per-size totals are what CI gates on: streaming must not be slower
   and must allocate strictly less at the large size. *)
let pubstream ?(sizes = [ 8_000; 64_000 ]) () =
  Printf.printf "%s\npubstream: DOM vs streamed output events (publish + rewrite)\n%s\n" hrule
    hrule;
  Printf.printf "%8s %10s %8s %11s %11s %11s %11s\n" "rows" "case" "leg" "dom_ms" "stream_ms"
    "dom_MB" "stream_MB";
  let legs = ref [] and csv_rows = ref [] in
  let summaries =
    List.map
      (fun n ->
        let tot = Array.make 4 0.0 in
        (* dom_ms, stream_ms, dom_alloc, stream_alloc *)
        List.iter
          (fun name ->
            let case = Option.get (M.find name) in
            let case = if name = "dbonerow" then M.dbonerow_for n else case in
            let dv = M.dbview_for case n in
            let db = dv.D.db and view = dv.D.view in
            let comp = PL.compile db view case.M.stylesheet in
            assert (comp.PL.sql_plan <> None);
            let publish_dom () =
              List.map
                (fun d -> Xdb_xml.Serializer.node_list_to_string d.Xdb_xml.Types.children)
                (Xdb_rel.Publish.materialize db view)
            in
            let publish_stream () = Xdb_rel.Publish.materialize_serialized db view in
            let rewrite_dom () = PL.run_rewrite ~streaming:false db comp in
            let rewrite_stream () = PL.run_rewrite ~streaming:true db comp in
            let leg label dom stream =
              assert (dom () = stream ());
              let dom_ms = time_ms dom and stream_ms = time_ms stream in
              let dom_alloc = alloc_bytes dom and stream_alloc = alloc_bytes stream in
              tot.(0) <- tot.(0) +. dom_ms;
              tot.(1) <- tot.(1) +. stream_ms;
              tot.(2) <- tot.(2) +. dom_alloc;
              tot.(3) <- tot.(3) +. stream_alloc;
              Printf.printf "%8d %10s %8s %11.3f %11.3f %11.2f %11.2f\n" n name label dom_ms
                stream_ms
                (dom_alloc /. 1048576.0)
                (stream_alloc /. 1048576.0);
              legs :=
                Printf.sprintf
                  {|{"rows":%d,"case":"%s","leg":"%s","dom_ms":%.4f,"stream_ms":%.4f,"dom_alloc_bytes":%.0f,"stream_alloc_bytes":%.0f}|}
                  n name label dom_ms stream_ms dom_alloc stream_alloc
                :: !legs;
              csv_rows :=
                Printf.sprintf "%d,%s,%s,%.4f,%.4f,%.0f,%.0f" n name label dom_ms stream_ms
                  dom_alloc stream_alloc
                :: !csv_rows
            in
            leg "publish" publish_dom publish_stream;
            leg "rewrite" rewrite_dom rewrite_stream)
          [ "dbonerow"; "avts"; "chart"; "metric"; "total" ];
        Printf.printf "%8d %10s %8s %11.3f %11.3f %11.2f %11.2f\n" n "TOTAL" "" tot.(0) tot.(1)
          (tot.(2) /. 1048576.0)
          (tot.(3) /. 1048576.0);
        Printf.sprintf
          {|{"rows":%d,"dom_ms":%.4f,"stream_ms":%.4f,"dom_alloc_bytes":%.0f,"stream_alloc_bytes":%.0f}|}
          n tot.(0) tot.(1) tot.(2) tot.(3))
      sizes
  in
  csv_out "pubstream.csv" "rows,case,leg,dom_ms,stream_ms,dom_alloc_bytes,stream_alloc_bytes"
    (List.rev !csv_rows);
  let oc = open_out "BENCH_PR4.json" in
  Printf.fprintf oc
    "{\"bench\":\"BENCH_PR4\",\"host\":%s,\"legs\":[\n  %s\n],\"summary\":[\n  %s\n]}\n"
    (host_json ())
    (String.concat ",\n  " (List.rev !legs))
    (String.concat ",\n  " summaries);
  close_out oc;
  print_endline "(written BENCH_PR4.json)";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* parscale: domain-parallel transform execution (BENCH_PR5)           *)
(* ------------------------------------------------------------------ *)

(* Every db-capable case, sharded into ~100-row documents (the paper's
   many-documents-in-an-XMLType-column scenario), run through the SQL/XML
   rewrite path with 1, 2 and 4 domains.  Byte-identity against the
   sequential run is asserted on every leg — correctness holds at any
   core count — then wall time (median of 3) per leg and per-size totals
   land in BENCH_PR5.json.  CI gates the 4-domain 64k-row total at
   >= 1.5x, skipped when the machine has fewer than 4 cores (a pool can
   only oversubscribe there). *)
let parscale ?(sizes = [ 8_000; 64_000 ]) ?(jobs_list = [ 1; 2; 4 ]) () =
  let nproc = Xdb_core.Parallel.default_jobs () in
  Printf.printf "%s\nparscale: domain-parallel rewrite execution (recommended domains: %d)\n%s\n"
    hrule nproc hrule;
  Printf.printf "%8s %10s %6s %5s %12s %8s %10s\n" "rows" "case" "docs" "jobs" "time(ms)"
    "speedup" "identical";
  let legs = ref [] and csv_rows = ref [] in
  let summaries =
    List.map
      (fun n ->
        let docs = max 4 (n / 100) in
        let totals = List.map (fun j -> (j, ref 0.0)) jobs_list in
        List.iter
          (fun name ->
            let case = Option.get (M.find name) in
            let case = if name = "dbonerow" then M.dbonerow_for n else case in
            let dv = M.dbview_for ~docs case n in
            let comp = PL.compile dv.D.db dv.D.view case.M.stylesheet in
            assert (comp.PL.sql_plan <> None);
            let partitionable = PL.partition_table comp <> None in
            let seq = PL.run_rewrite dv.D.db comp in
            let base_ms = ref 0.0 in
            List.iter
              (fun jobs ->
                Xdb_core.Parallel.with_pool ~jobs (fun pool ->
                    let out = PL.run_rewrite_parallel ~pool dv.D.db comp in
                    let identical = out = seq in
                    assert identical;
                    let ms =
                      time_ms (fun () -> ignore (PL.run_rewrite_parallel ~pool dv.D.db comp))
                    in
                    if jobs = List.hd jobs_list then base_ms := ms;
                    let tot = List.assoc jobs totals in
                    tot := !tot +. ms;
                    let speedup = !base_ms /. ms in
                    Printf.printf "%8d %10s %6d %5d %12.3f %7.2fx %10b\n" n name docs jobs ms
                      speedup identical;
                    legs :=
                      Printf.sprintf
                        {|{"rows":%d,"case":"%s","docs":%d,"jobs":%d,"ms":%.4f,"speedup":%.3f,"identical":%b,"partitionable":%b}|}
                        n name docs jobs ms speedup identical partitionable
                      :: !legs;
                    csv_rows :=
                      Printf.sprintf "%d,%s,%d,%d,%.4f,%.3f,%b,%b" n name docs jobs ms speedup
                        identical partitionable
                      :: !csv_rows))
              jobs_list)
          [ "dbonerow"; "avts"; "chart"; "metric"; "total" ];
        let base_total = !(List.assoc (List.hd jobs_list) totals) in
        let jobs_json =
          String.concat ","
            (List.map
               (fun (j, tot) ->
                 Printf.sprintf {|{"jobs":%d,"total_ms":%.4f,"speedup":%.3f}|} j !tot
                   (base_total /. !tot))
               totals)
        in
        List.iter
          (fun (j, tot) ->
            Printf.printf "%8d %10s %6d %5d %12.3f %7.2fx\n" n "TOTAL" docs j !tot
              (base_total /. !tot))
          totals;
        Printf.sprintf {|{"rows":%d,"docs":%d,"jobs":[%s]}|} n docs jobs_json)
      sizes
  in
  csv_out "parscale.csv" "rows,case,docs,jobs,ms,speedup,identical,partitionable"
    (List.rev !csv_rows);
  let oc = open_out "BENCH_PR5.json" in
  Printf.fprintf oc
    "{\"bench\":\"BENCH_PR5\",\"host\":%s,\"nproc\":%d,\"legs\":[\n  %s\n],\"summary\":[\n  %s\n]}\n"
    (host_json ()) nproc
    (String.concat ",\n  " (List.rev !legs))
    (String.concat ",\n  " summaries);
  close_out oc;
  print_endline "(written BENCH_PR5.json)";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* shredscale: DOM walk vs shredded index range scan (BENCH_PR6)       *)
(* ------------------------------------------------------------------ *)

(* The records document shredded into interval-encoded node rows
   (Xdb_rel.Shred), then XPath lookups answered two ways: the DOM
   interpreter walking the resident tree vs axis range scans over the
   B-tree indexed rows.  Byte-identity (through the common attribute
   rendering of Shred.serialize/serialize_dom) is asserted on every leg
   before timing.  CI gates the large-size descendant lookups: the
   shredded range scan must beat the DOM walk. *)
let shredscale ?(sizes = [ 800; 6_400 ]) () =
  let module SH = Xdb_rel.Shred in
  Printf.printf "%s\nshredscale: DOM tree walk vs shredded index range scan\n%s\n" hrule hrule;
  Printf.printf "%8s %12s %12s %12s %12s %8s %10s\n" "nodes" "query" "dom_ms" "perctx_ms"
    "batch_ms" "speedup" "identical";
  let legs = ref [] and csv_rows = ref [] in
  (* per-probe vs batched legs for BENCH_PR8: same query shapes, the
     set-at-a-time evaluator against the correlated per-context plans
     and the DOM walk *)
  let legs8 = ref [] and summaries8 = ref [] in
  let summaries =
    List.map
      (fun n ->
        let doc = D.records_doc n in
        let t = SH.create (Xdb_rel.Database.create ()) in
        let docid = SH.shred t doc in
        let _, nodes = SH.stats t in
        let ctx = Xdb_xpath.Eval.make_context doc in
        (* a second document where the looked-up name is rare (one <name>
           per region, ~1/500 nodes): the descendant lookup the dnk index
           exists for, vs a full DOM walk *)
        let sales = D.sales_doc (n / 50) 100 in
        let ts = SH.create (Xdb_rel.Database.create ()) in
        let sales_docid = SH.shred ts sales in
        let sales_ctx = Xdb_xpath.Eval.make_context sales in
        let target = string_of_int (n / 2) in
        (* broad name-tested descendant fetch (every 10th node matches),
           selective descendant lookup, and two value-predicate forms *)
        let queries =
          [
            ("descendant", t, docid, ctx, "descendant::name");
            ("lookup", ts, sales_docid, sales_ctx, "descendant::name");
            ("desc-value", t, docid, ctx, Printf.sprintf "descendant::id[.='%s']" target);
            ("child-value", t, docid, ctx, Printf.sprintf "descendant::row[id='%s']" target);
          ]
        in
        let tot_dom = ref 0.0 and tot_shred = ref 0.0 and lookup_speedup = ref 0.0 in
        let all_identical = ref true in
        let by_label = ref [] in
        List.iter
          (fun (label, t, docid, ctx, q) ->
            let _, nodes = SH.stats t in
            let shred_out = SH.serialize t (SH.select t ~docid q) in
            let pc_out = SH.serialize t (SH.select t ~batch:false ~docid q) in
            let dom_out = SH.serialize_dom (Xdb_xpath.Eval.select ctx q) in
            let identical = shred_out = dom_out && pc_out = dom_out in
            all_identical := !all_identical && identical;
            assert identical;
            let dom_ms = time_ms (fun () -> ignore (Xdb_xpath.Eval.select ctx q)) in
            let pc_ms = time_ms (fun () -> ignore (SH.select t ~batch:false ~docid q)) in
            let shred_ms = time_ms (fun () -> ignore (SH.select t ~docid q)) in
            let speedup = dom_ms /. shred_ms in
            if label = "lookup" then lookup_speedup := speedup;
            by_label := (label, speedup) :: !by_label;
            tot_dom := !tot_dom +. dom_ms;
            tot_shred := !tot_shred +. shred_ms;
            Printf.printf "%8d %12s %12.4f %12.4f %12.4f %7.2fx %10b\n" nodes label dom_ms
              pc_ms shred_ms speedup identical;
            legs :=
              Printf.sprintf
                {|{"nodes":%d,"query":"%s","xpath":"%s","dom_ms":%.4f,"shred_ms":%.4f,"speedup":%.3f,"identical":%b}|}
                nodes label (json_escape q) dom_ms shred_ms speedup identical
              :: !legs;
            legs8 :=
              Printf.sprintf
                {|{"nodes":%d,"query":"%s","xpath":"%s","dom_ms":%.4f,"percontext_ms":%.4f,"batch_ms":%.4f,"speedup_vs_dom":%.3f,"speedup_vs_percontext":%.3f,"identical":%b}|}
                nodes label (json_escape q) dom_ms pc_ms shred_ms speedup (pc_ms /. shred_ms)
                identical
              :: !legs8;
            csv_rows :=
              Printf.sprintf "%d,%s,%.4f,%.4f,%.4f,%.3f,%b" nodes label dom_ms pc_ms shred_ms
                speedup identical
              :: !csv_rows)
          queries;
        Printf.printf "%8d %12s %12.4f %25.4f %7.2fx\n" nodes "TOTAL" !tot_dom !tot_shred
          (!tot_dom /. !tot_shred);
        let sp l = try List.assoc l !by_label with Not_found -> 0.0 in
        summaries8 :=
          Printf.sprintf
            {|{"nodes":%d,"descendant_speedup":%.3f,"child_value_speedup":%.3f,"lookup_speedup":%.3f,"all_identical":%b}|}
            nodes (sp "descendant") (sp "child-value") !lookup_speedup !all_identical
          :: !summaries8;
        Printf.sprintf
          {|{"nodes":%d,"dom_ms":%.4f,"shred_ms":%.4f,"total_speedup":%.3f,"lookup_speedup":%.3f,"all_identical":%b}|}
          nodes !tot_dom !tot_shred
          (!tot_dom /. !tot_shred)
          !lookup_speedup !all_identical)
      sizes
  in
  csv_out "shredscale.csv" "nodes,query,dom_ms,percontext_ms,batch_ms,speedup,identical"
    (List.rev !csv_rows);
  let oc = open_out "BENCH_PR6.json" in
  Printf.fprintf oc
    "{\"bench\":\"BENCH_PR6\",\"host\":%s,\"legs\":[\n  %s\n],\"summary\":[\n  %s\n]}\n"
    (host_json ())
    (String.concat ",\n  " (List.rev !legs))
    (String.concat ",\n  " summaries);
  close_out oc;
  print_endline "(written BENCH_PR6.json)";
  let oc = open_out "BENCH_PR8.json" in
  Printf.fprintf oc
    "{\"bench\":\"BENCH_PR8\",\"host\":%s,\"legs\":[\n  %s\n],\"summary\":[\n  %s\n]}\n"
    (host_json ())
    (String.concat ",\n  " (List.rev !legs8))
    (String.concat ",\n  " (List.rev !summaries8));
  close_out oc;
  print_endline "(written BENCH_PR8.json)";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* servebench: closed-loop concurrent serving workload (BENCH_PR7)     *)
(* ------------------------------------------------------------------ *)

module SV = Xdb_core.Server
module EN = Xdb_core.Engine

(* nearest-rank percentile over an unsorted sample list, ms *)
let pct samples q =
  match samples with
  | [] -> 0.0
  | _ ->
      let a = Array.of_list samples in
      Array.sort compare a;
      let n = Array.length a in
      a.(min (n - 1) (max 0 (int_of_float (ceil (q *. float_of_int n)) - 1)))

(* Closed-loop workload: N client domains over one Xdb.Server, each
   looping a mixed stylesheet set (the three Records-shape cases, so one
   shared engine/view serves all of them) back-to-back for a fixed total
   request count per leg.  Per (clients, case): throughput and
   p50/p95/p99 latency; every response is checked byte-identical to the
   single-client reference.  A final deterministic overload scenario
   (max_in_flight 1, queue 2, five concurrent requests) demonstrates
   that admission control rejects with Overloaded instead of
   deadlocking.  CI gates: all responses identical, rejections > 0 with
   everything accounted for, and — when the host has ≥ 2 cores —
   concurrent throughput at the highest client count no worse than the
   single-client run. *)
let servebench ?(size = 2_000) ?(clients_list = [ 1; 2; 4 ]) ?(per_case = 24) () =
  let nproc = Xdb_core.Parallel.default_jobs () in
  Printf.printf "%s\nservebench: closed-loop serving over one shared Engine (nproc %d)\n%s\n"
    hrule nproc hrule;
  let dv = D.records_db size in
  let engine = EN.create dv.D.db in
  EN.register_view engine dv.D.view;
  let view_name = dv.D.view.Xdb_rel.Publish.view_name in
  let cases =
    List.map
      (fun name ->
        let c =
          if name = "dbonerow" then M.dbonerow_for size
          else Option.get (M.find name)
        in
        (name, c.M.stylesheet))
      [ "dbonerow"; "avts"; "metric" ]
  in
  (* single-client reference outputs (and plan-cache warmup) *)
  let reference =
    List.map
      (fun (name, ss) ->
        (name, (EN.transform engine ~view_name ~stylesheet:ss).EN.output))
      cases
  in
  Printf.printf "%8s %10s %9s %12s %9s %9s %9s %10s\n" "clients" "case" "requests"
    "thrpt(r/s)" "p50(ms)" "p95(ms)" "p99(ms)" "identical";
  let legs = ref [] and csv_rows = ref [] in
  let summaries =
    List.map
      (fun clients ->
        (* in-flight bounded to the core count: admission control's job is
           to keep offered load from oversubscribing domains (running more
           mutating domains than cores collapses under the stop-the-world
           GC); excess clients wait in the queue, descheduled *)
        let server = SV.create ~max_in_flight:nproc ~max_queue:256 engine in
        let iters = max 1 (per_case / clients) in
        (* each client: its own session, [iters] closed-loop passes over
           the mixed case set, per-request latency + identity checks *)
        let run_client i =
          let sess = SV.open_session ~name:(Printf.sprintf "c%d" i) server in
          let out = ref [] in
          for _ = 1 to iters do
            List.iter
              (fun (name, ss) ->
                let t0 = Unix.gettimeofday () in
                let r = SV.transform sess ~view_name ~stylesheet:ss in
                let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
                out := (name, ms, r.EN.output = List.assoc name reference) :: !out)
              cases
          done;
          SV.close_session sess;
          !out
        in
        let t0 = Unix.gettimeofday () in
        let per_client =
          if clients = 1 then [ run_client 0 ]
          else
            List.map Domain.join
              (List.init clients (fun i -> Domain.spawn (fun () -> run_client i)))
        in
        let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
        let snap = SV.snapshot server in
        SV.shutdown server;
        let samples = List.concat per_client in
        let total = List.length samples in
        List.iter
          (fun (case, _) ->
            let ours = List.filter (fun (n, _, _) -> n = case) samples in
            let lats = List.map (fun (_, ms, _) -> ms) ours in
            let identical = List.for_all (fun (_, _, ok) -> ok) ours in
            assert identical;
            let k = List.length ours in
            let thrpt = float_of_int k /. (wall_ms /. 1000.0) in
            let p50 = pct lats 0.50 and p95 = pct lats 0.95 and p99 = pct lats 0.99 in
            Printf.printf "%8d %10s %9d %12.1f %9.3f %9.3f %9.3f %10b\n" clients case k
              thrpt p50 p95 p99 identical;
            legs :=
              Printf.sprintf
                {|{"clients":%d,"case":"%s","requests":%d,"throughput_rps":%.3f,"p50_ms":%.4f,"p95_ms":%.4f,"p99_ms":%.4f,"identical":%b}|}
                clients case k thrpt p50 p95 p99 identical
              :: !legs;
            csv_rows :=
              Printf.sprintf "%d,%s,%d,%.3f,%.4f,%.4f,%.4f,%b" clients case k thrpt p50
                p95 p99 identical
              :: !csv_rows)
          cases;
        let thrpt = float_of_int total /. (wall_ms /. 1000.0) in
        Printf.printf "%8d %10s %9d %12.1f   (wall %.1fms, queued %d, rejected %d)\n"
          clients "TOTAL" total thrpt wall_ms snap.SV.queued snap.SV.rejected;
        Printf.sprintf
          {|{"clients":%d,"requests":%d,"wall_ms":%.4f,"throughput_rps":%.3f,"queued":%d,"rejected":%d}|}
          clients total wall_ms thrpt snap.SV.queued snap.SV.rejected)
      clients_list
  in
  (* deterministic overload: one slot, a queue of two, five concurrent
     requests — two must be rejected with Overloaded, none may hang *)
  let overload_json =
    let server = SV.create ~max_in_flight:1 ~max_queue:2 engine in
    let blocker = Mutex.create () in
    Mutex.lock blocker;
    let sess = SV.open_session ~name:"hot" server in
    let blocked () =
      Domain.spawn (fun () ->
          SV.submit sess (fun _ ->
              Mutex.lock blocker;
              Mutex.unlock blocker))
    in
    let wait_for what cond =
      let deadline = Unix.gettimeofday () +. 10.0 in
      while not (cond (SV.snapshot server)) do
        if Unix.gettimeofday () > deadline then failwith ("servebench overload: " ^ what);
        Unix.sleepf 0.002
      done
    in
    let d1 = blocked () in
    wait_for "first request never started" (fun s -> s.SV.in_flight = 1);
    let d2 = blocked () and d3 = blocked () in
    wait_for "queue never filled" (fun s -> s.SV.queue_depth = 2);
    let rejections = ref 0 in
    for _ = 1 to 2 do
      match SV.submit sess (fun _ -> ()) with
      | () -> ()
      | exception Xdb_core.Xdb_error.Error (Xdb_core.Xdb_error.Overloaded _) ->
          incr rejections
    done;
    Mutex.unlock blocker;
    List.iter Domain.join [ d1; d2; d3 ];
    let snap = SV.snapshot server in
    SV.shutdown server;
    Printf.printf
      "overload: attempted 5, accepted %d, queued %d, rejected %d (no deadlock)\n"
      snap.SV.accepted snap.SV.queued snap.SV.rejected;
    Printf.sprintf
      {|{"max_in_flight":1,"max_queue":2,"attempted":5,"accepted":%d,"queued":%d,"rejected":%d,"completed":%d,"deadlock_free":true}|}
      snap.SV.accepted snap.SV.queued snap.SV.rejected snap.SV.completed
  in
  EN.shutdown engine;
  csv_out "servebench.csv" "clients,case,requests,throughput_rps,p50_ms,p95_ms,p99_ms,identical"
    (List.rev !csv_rows);
  let oc = open_out "BENCH_PR7.json" in
  Printf.fprintf oc
    "{\"bench\":\"BENCH_PR7\",\"host\":%s,\"rows\":%d,\"legs\":[\n  %s\n],\"summary\":[\n  \
     %s\n],\"overload\":%s}\n"
    (host_json ()) size
    (String.concat ",\n  " (List.rev !legs))
    (String.concat ",\n  " summaries)
    overload_json;
  close_out oc;
  print_endline "(written BENCH_PR7.json)";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* rwbench: mixed read/write workload over the result cache (BENCH_PR10) *)
(* ------------------------------------------------------------------ *)

(* The DML payoff measured end to end.  Three parts:

   1. cached-read speedup: the same transform served from the result
      cache vs forced recompute ([result_cache = false]) — the cache hit
      is a hash probe plus per-table version compares, so the gap is the
      whole plan execution (CI gates >= 20x);
   2. mixed legs (95/5 and 50/50 read/write): a deterministic LCG
      interleaves UPDATEs through [Engine.execute] with transform reads.
      EVERY read is recomputed with the cache off and compared
      byte-for-byte against the cached answer — [stale_reads] counts
      mismatches and must be zero (asserted here and gated in CI);
   3. per-leg hit ratio from the engine's result-cache counters, showing
      how write frequency degrades cacheability (95/5 should still hit
      on most reads, 50/50 mostly misses). *)
let rwbench ?(size = 2_000) ?(requests = 400) () =
  Printf.printf "%s\nrwbench: DML + data-versioned result cache (rows %d)\n%s\n" hrule size
    hrule;
  let fresh_engine () =
    let dv = D.records_db size in
    let engine = EN.create dv.D.db in
    EN.register_view engine dv.D.view;
    (engine, dv.D.view.Xdb_rel.Publish.view_name)
  in
  (* avts touches every row (recompute is O(n)), and its output renders
     [name] but not [value] — so name-writes move the published bytes
     while value-writes only invalidate, trapping any cache that checks
     output identity instead of data versions *)
  let stylesheet = (Option.get (M.find "avts")).M.stylesheet in
  let nocache = { EN.default_run_options with EN.result_cache = false } in
  (* part 1: cached read vs recompute, same request *)
  let engine, view_name = fresh_engine () in
  let read ?options () =
    (EN.transform ?options engine ~view_name ~stylesheet).EN.output
  in
  let reference = read () (* populates the cache *) in
  let cached_ms = time_ms ~repeat:9 (fun () -> ignore (read ())) in
  let recompute_ms = time_ms ~repeat:9 (fun () -> ignore (read ~options:nocache ())) in
  let speedup = recompute_ms /. cached_ms in
  assert (read () = reference);
  EN.shutdown engine;
  Printf.printf "cached read %.4fms   recompute %.4fms   speedup %.1fx\n\n" cached_ms
    recompute_ms speedup;
  (* parts 2+3: mixed legs *)
  Printf.printf "%10s %9s %8s %8s %9s %10s %12s %12s %11s\n" "mix" "requests" "reads"
    "writes" "hits" "hit_ratio" "read_ms(p50)" "write_ms(p50)" "stale_reads";
  let csv_rows = ref [] in
  let legs =
    List.map
      (fun write_pct ->
        let engine, view_name = fresh_engine () in
        let rand = D.lcg (size + (97 * write_pct)) in
        let hits0 () = List.assoc "result_cache_hits" (EN.result_cache_counters engine) in
        let reads = ref 0 and writes = ref 0 and stale = ref 0 in
        let read_lat = ref [] and write_lat = ref [] in
        let t0 = Unix.gettimeofday () in
        for i = 1 to requests do
          if rand 100 < write_pct then begin
            (* alternate output-visible (name) and invalidate-only
               (value) writes *)
            let id = 1 + rand size in
            let stmt =
              if i mod 2 = 0 then
                Printf.sprintf "UPDATE rows SET name = 'write%06d' WHERE id = %d" i id
              else Printf.sprintf "UPDATE rows SET value = %d WHERE id = %d" (rand 10_000) id
            in
            let _, ms = time_once (fun () -> ignore (EN.execute engine stmt)) in
            incr writes;
            write_lat := ms :: !write_lat
          end
          else begin
            let out, ms =
              time_once (fun () -> (EN.transform engine ~view_name ~stylesheet).EN.output)
            in
            let recomputed =
              (EN.transform ~options:nocache engine ~view_name ~stylesheet).EN.output
            in
            incr reads;
            read_lat := ms :: !read_lat;
            if out <> recomputed then incr stale
          end
        done;
        let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
        let hits = hits0 () in
        EN.shutdown engine;
        (* staleness is a correctness bug, not a performance number *)
        assert (!stale = 0);
        let mix = Printf.sprintf "%d/%d" (100 - write_pct) write_pct in
        let hit_ratio = float_of_int hits /. float_of_int (max 1 !reads) in
        let rp50 = pct !read_lat 0.50 and wp50 = pct !write_lat 0.50 in
        Printf.printf "%10s %9d %8d %8d %9d %10.2f %12.4f %12.4f %11d\n" mix requests
          !reads !writes hits hit_ratio rp50 wp50 !stale;
        csv_rows :=
          Printf.sprintf "%s,%d,%d,%d,%d,%.4f,%d" mix requests !reads !writes hits
            hit_ratio !stale
          :: !csv_rows;
        Printf.sprintf
          {|{"mix":"%s","write_pct":%d,"requests":%d,"reads":%d,"writes":%d,"cache_hits":%d,"hit_ratio":%.4f,"read_p50_ms":%.4f,"write_p50_ms":%.4f,"wall_ms":%.4f,"stale_reads":%d}|}
          mix write_pct requests !reads !writes hits hit_ratio rp50 wp50 wall_ms !stale)
      [ 5; 50 ]
  in
  csv_out "rwbench.csv" "mix,requests,reads,writes,cache_hits,hit_ratio,stale_reads"
    (List.rev !csv_rows);
  let oc = open_out "BENCH_PR10.json" in
  Printf.fprintf oc
    "{\"bench\":\"BENCH_PR10\",\"host\":%s,\"rows\":%d,\"cached_read\":{\"cached_ms\":%.4f,\"recompute_ms\":%.4f,\"speedup\":%.2f},\"legs\":[\n  %s\n]}\n"
    (host_json ()) size cached_ms recompute_ms speedup
    (String.concat ",\n  " legs);
  close_out oc;
  print_endline "(written BENCH_PR10.json)";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  let n = 4_000 in
  let case = M.dbonerow_for n in
  let dv = M.dbview_for case n in
  let comp = PL.compile dv.D.db dv.D.view case.M.stylesheet in
  let docs = Xdb_rel.Publish.materialize dv.D.db dv.D.view in
  let doc = List.hd docs in
  let avts = Option.get (M.find "avts") in
  let dv_avts = M.dbview_for avts n in
  let comp_avts = PL.compile dv_avts.D.db dv_avts.D.view avts.M.stylesheet in
  let tests =
    [
      (* Figure 2 legs *)
      Test.make ~name:"fig2/dbonerow/rewrite"
        (Staged.stage (fun () -> ignore (PL.run_rewrite dv.D.db comp)));
      Test.make ~name:"fig2/dbonerow/no-rewrite"
        (Staged.stage (fun () -> ignore (PL.run_functional dv.D.db comp)));
      (* Figure 3 representative *)
      Test.make ~name:"fig3/avts/rewrite"
        (Staged.stage (fun () -> ignore (PL.run_rewrite dv_avts.D.db comp_avts)));
      Test.make ~name:"fig3/avts/no-rewrite"
        (Staged.stage (fun () -> ignore (PL.run_functional dv_avts.D.db comp_avts)));
      (* pipeline stages *)
      Test.make ~name:"stage/materialize"
        (Staged.stage (fun () -> ignore (Xdb_rel.Publish.materialize dv.D.db dv.D.view)));
      Test.make ~name:"stage/vm-transform"
        (Staged.stage (fun () -> ignore (Xdb_xslt.Vm.transform comp.PL.vm_prog doc)));
      Test.make ~name:"stage/compile-translate"
        (Staged.stage (fun () -> ignore (PL.compile dv.D.db dv.D.view case.M.stylesheet)));
    ]
  in
  Printf.printf "%s\nBechamel micro-benchmarks (ns/run, monotonic clock)\n%s\n" hrule hrule;
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) ~kde:(Some 100) () in
  let results = Benchmark.all cfg instances (Test.make_grouped ~name:"xdb" tests) in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let res = Analyze.all ols Instance.monotonic_clock results in
  Hashtbl.iter
    (fun name est ->
      match Bechamel.Analyze.OLS.estimates est with
      | Some [ e ] -> Printf.printf "  %-34s %14.0f ns/run\n" name e
      | _ -> Printf.printf "  %-34s (no estimate)\n" name)
    res;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let () =
  let targets = List.tl (Array.to_list Sys.argv) in
  let run name = targets = [] || List.mem name targets in
  if run "inline-stat" then inline_stat ();
  if run "fig2" then fig2 ();
  (* CI smoke leg: one small fig2 size, still exercising the full
     instrumented pipeline and the BENCH_PR1.json artifact *)
  if List.mem "fig2-smoke" targets then fig2 ~figure:"fig2-smoke" ~sizes:[ 2_000 ] ();
  if run "fig3" then fig3 ();
  if run "planquality" then planquality ();
  if run "execscale" then execscale ();
  if run "joinscale" then joinscale ();
  (* CI gate leg: 100k rows only, so the forced nested loop stays cheap *)
  if List.mem "joinscale-smoke" targets then joinscale ~sizes:[ 100_000 ] ();
  if run "pubstream" then pubstream ();
  if run "parscale" then parscale ();
  if run "shredscale" then shredscale ();
  if run "servebench" then servebench ();
  if run "rwbench" then rwbench ();
  (* CI gate leg: fewer requests, same mixes, same artifact *)
  if List.mem "rwbench-smoke" targets then rwbench ~size:1_000 ~requests:120 ();
  if run "ablation" then ablation ();
  if run "storage" then storage ();
  if run "partial" then partial_inline ();
  if List.mem "micro" targets then micro ();
  write_bench_json ();
  if targets = [] then
    print_endline "(micro-benchmarks skipped by default: run `dune exec bench/main.exe -- micro`)"
