(** [xdb] — command-line front end.

    Subcommands:
    - [transform]  — apply a stylesheet to an XML document file
                     (functional VM, generated XQuery, or both with a
                     differential check);
    - [translate]  — print the XQuery generated from a stylesheet
                     (optionally against a DTD-lite schema file);
    - [explain]    — run one of the built-in XSLTMark-style cases against
                     its generated database and print the full pipeline
                     explanation (execution graph, XQuery, SQL plan);
    - [publish]    — print a case's XMLType view documents, either by
                     materializing trees or streaming output events
                     straight into the serializer;
    - [serve]      — run a closed-loop concurrent workload (N client
                     domains × a mixed case set) through [Xdb.Server]
                     sessions over one shared engine, with admission
                     control, and report throughput, latency
                     percentiles and the server metrics;
    - [shell]/[sql] — the SQL/XML statement surface over a demo
                     database: selects, XMLTransform/XMLQuery, CREATE
                     VIEW, ANALYZE and INSERT/UPDATE/DELETE, all through
                     [Engine.execute];
    - [cases]      — list the built-in benchmark cases. *)

open Cmdliner

let verbose =
  let doc = "Enable debug logging of the rewrite pipeline." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let setup_logs v =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if v then Logs.Debug else Logs.Warning))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Shared run options (transform / explain / publish)                  *)
(* ------------------------------------------------------------------ *)

(* one flag set, one record, identical semantics in every subcommand *)
let run_options_term =
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print the pipeline metrics record (per-stage timings and counters) as JSON.")
  in
  let stream =
    Arg.(
      value & flag
      & info [ "stream" ]
          ~doc:
            "Stream XML result construction through output events straight into the output \
             buffer (no intermediate DOM).  Output is byte-identical either way.")
  in
  let interpreted =
    Arg.(
      value & flag
      & info [ "interpreted" ]
          ~doc:
            "Use the reference paths: the functional VM evaluation for transforms, the \
             interpreted assoc-row executor for $(b,--explain-analyze) (per-operator \
             actual-row counts are identical; timings differ).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Number of domains for parallel execution (default 1 = sequential).  The base \
             table is partitioned into row ranges executed concurrently; output is \
             byte-identical to the sequential run.")
  in
  let no_result_cache =
    Arg.(
      value & flag
      & info [ "no-result-cache" ]
          ~doc:
            "Bypass the data-versioned result cache: always recompute the output instead of \
             serving cached bytes when the dependency tables are unchanged.")
  in
  let mk metrics stream interpreted jobs no_result_cache =
    {
      Xdb_core.Engine.streaming = stream;
      jobs = max 1 jobs;
      collect_metrics = metrics;
      interpreted;
      result_cache = not no_result_cache;
      indent = false;
    }
  in
  Term.(const mk $ metrics $ stream $ interpreted $ jobs $ no_result_cache)

(* run [f], rendering facade errors as one line instead of a backtrace *)
let with_engine_errors f =
  try f () with
  | Xdb_core.Xdb_error.Error e ->
      Printf.eprintf "xdb: %s\n" (Xdb_core.Xdb_error.to_string e);
      exit 1

let print_metrics = function
  | None -> ()
  | Some m ->
      print_endline "-- pipeline metrics:";
      print_endline (Xdb_core.Metrics.to_json m)

(* resolve a db-capable built-in case to an engine + registered view *)
let engine_for_case name size =
  match Xdb_xsltmark.Cases.find name with
  | None ->
      Printf.eprintf "unknown case %S (see `xdb_cli cases`)\n" name;
      exit 2
  | Some case ->
      let case =
        if case.Xdb_xsltmark.Cases.name = "dbonerow" then Xdb_xsltmark.Cases.dbonerow_for size
        else case
      in
      if not case.Xdb_xsltmark.Cases.db_capable then None
      else (
        let dv = Xdb_xsltmark.Cases.dbview_for case size in
        let engine = Xdb_core.Engine.create dv.Xdb_xsltmark.Data.db in
        Xdb_core.Engine.register_view engine dv.Xdb_xsltmark.Data.view;
        Some
          ( engine,
            dv.Xdb_xsltmark.Data.view.Xdb_rel.Publish.view_name,
            case.Xdb_xsltmark.Cases.stylesheet,
            case ))

(* ------------------------------------------------------------------ *)
(* transform                                                           *)
(* ------------------------------------------------------------------ *)

let transform_cmd =
  let stylesheet = Arg.(value & pos 0 (some file) None & info [] ~docv:"STYLESHEET") in
  let document = Arg.(value & pos 1 (some file) None & info [] ~docv:"DOCUMENT") in
  let mode =
    Arg.(
      value
      & opt (enum [ ("vm", `Vm); ("xquery", `Xquery); ("both", `Both) ]) `Vm
      & info [ "m"; "mode" ] ~doc:"File mode evaluation: vm (functional), xquery (rewrite), both")
  in
  let case =
    Arg.(
      value
      & opt (some string) None
      & info [ "case" ] ~docv:"CASE"
          ~doc:
            "Transform a built-in db-capable benchmark case through the engine instead of a \
             stylesheet/document file pair ($(b,--metrics)/$(b,--stream)/\
             $(b,--interpreted)/$(b,--jobs) apply).")
  in
  let size = Arg.(value & opt int 100 & info [ "n"; "size" ] ~doc:"Workload size (rows), with --case") in
  let shredded =
    Arg.(
      value & flag
      & info [ "shredded" ]
          ~doc:
            "Store the input document interval-encoded (one node row per XML node, see \
             $(b,shred)) and transform through the shredded path: the XSLTVM running \
             template match and select as relational scans over the node rows.  Output is \
             byte-identical to the direct paths.")
  in
  (* shred [doc] into a fresh engine and transform through the store *)
  let run_shredded opts stylesheet doc =
    with_engine_errors (fun () ->
        let engine = Xdb_core.Engine.create (Xdb_rel.Database.create ()) in
        ignore (Xdb_core.Engine.store_shredded engine doc);
        let r = Xdb_core.Engine.transform_shredded ~options:opts engine ~stylesheet in
        List.iter print_endline r.Xdb_core.Engine.output;
        print_metrics r.Xdb_core.Engine.metrics;
        Xdb_core.Engine.shutdown engine)
  in
  let run verbose stylesheet document mode case size shredded opts =
    setup_logs verbose;
    match case with
    | Some name when shredded -> (
        match Xdb_xsltmark.Cases.find name with
        | None ->
            Printf.eprintf "unknown case %S (see `xdb_cli cases`)\n" name;
            exit 2
        | Some case ->
            (* dbonerow's selected id is baked into the stylesheet per size *)
            let case =
              if case.Xdb_xsltmark.Cases.name = "dbonerow" then
                Xdb_xsltmark.Cases.dbonerow_for size
              else case
            in
            run_shredded opts case.Xdb_xsltmark.Cases.stylesheet
              (Xdb_xsltmark.Cases.doc_for case size))
    | Some name ->
        with_engine_errors (fun () ->
            match engine_for_case name size with
            | None ->
                Printf.eprintf "case %S has no database form\n" name;
                exit 2
            | Some (engine, view_name, stylesheet, _) ->
                let r = Xdb_core.Engine.transform ~options:opts engine ~view_name ~stylesheet in
                List.iter print_endline r.Xdb_core.Engine.output;
                print_metrics r.Xdb_core.Engine.metrics;
                Xdb_core.Engine.shutdown engine)
    | None -> (
        match (stylesheet, document) with
        | Some stylesheet, Some document when shredded ->
            run_shredded opts (read_file stylesheet)
              (Xdb_xml.Parser.parse (read_file document))
        | Some stylesheet, Some document ->
            let ss_text = read_file stylesheet in
            let doc = Xdb_xml.Parser.parse (read_file document) in
            (match mode with
            | `Vm ->
                let frag = Xdb_xslt.Vm.run_stylesheet ss_text doc in
                print_endline (Xdb_xml.Serializer.node_list_to_string frag.Xdb_xml.Types.children)
            | `Xquery ->
                let dc = Xdb_core.Pipeline.compile_for_document ss_text ~example_doc:doc in
                print_endline (Xdb_core.Pipeline.transform_via_xquery dc doc)
            | `Both ->
                let dc = Xdb_core.Pipeline.compile_for_document ss_text ~example_doc:doc in
                let f = Xdb_core.Pipeline.transform_functional dc doc in
                let x = Xdb_core.Pipeline.transform_via_xquery dc doc in
                print_endline f;
                if f = x then prerr_endline "(rewrite output identical)"
                else (
                  prerr_endline "!! rewrite output DIFFERS:";
                  print_endline x;
                  exit 1))
        | _ ->
            prerr_endline "transform: provide STYLESHEET DOCUMENT files, or --case NAME";
            exit 2)
  in
  Cmd.v
    (Cmd.info "transform" ~doc:"Apply an XSLT stylesheet to a document or a built-in case")
    Term.(
      const run $ verbose $ stylesheet $ document $ mode $ case $ size $ shredded
      $ run_options_term)

(* ------------------------------------------------------------------ *)
(* shred                                                               *)
(* ------------------------------------------------------------------ *)

let shred_cmd =
  let files = Arg.(value & pos_all file [] & info [] ~docv:"XMLFILE") in
  let case =
    Arg.(
      value
      & opt (some string) None
      & info [ "case" ] ~docv:"CASE"
          ~doc:"Shred a built-in benchmark case's document instead of XML files.")
  in
  let size = Arg.(value & opt int 100 & info [ "n"; "size" ] ~doc:"Workload size (rows), with --case") in
  let query =
    Arg.(
      value
      & opt (some string) None
      & info [ "q"; "query" ] ~docv:"XPATH"
          ~doc:
            "Evaluate an XPath expression over each stored document by relational axis range \
             scans, print the serialized result nodes, and differential-check them against \
             the DOM interpreter.")
  in
  let explain_steps =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:"With $(b,--query), print the access path each location step compiles to.")
  in
  let run verbose files case size query explain_steps =
    setup_logs verbose;
    let docs =
      match case with
      | Some name -> (
          match Xdb_xsltmark.Cases.find name with
          | None ->
              Printf.eprintf "unknown case %S (see `xdb_cli cases`)\n" name;
              exit 2
          | Some c -> [ Xdb_xsltmark.Cases.doc_for c size ])
      | None -> List.map (fun f -> Xdb_xml.Parser.parse (read_file f)) files
    in
    if docs = [] then (
      prerr_endline "shred: provide XML files or --case NAME";
      exit 2);
    with_engine_errors (fun () ->
        let engine = Xdb_core.Engine.create (Xdb_rel.Database.create ()) in
        let ids = List.map (Xdb_core.Engine.store_shredded engine) docs in
        let s = Xdb_core.Engine.shred_store engine in
        let ndocs, nrows = Xdb_rel.Shred.stats s in
        Printf.printf "shredded %d document(s) into %d node row(s) (table %s)\n" ndocs nrows
          (Xdb_rel.Shred.table_name s);
        match query with
        | None -> ()
        | Some q ->
            List.iter2
              (fun docid doc ->
                let out = Xdb_rel.Shred.serialize s (Xdb_rel.Shred.select s ~docid q) in
                Printf.printf "-- doc %d: %d node(s)\n" docid (List.length out);
                List.iter print_endline out;
                let dom =
                  Xdb_rel.Shred.serialize_dom
                    (Xdb_xpath.Eval.select (Xdb_xpath.Eval.make_context doc) q)
                in
                if out <> dom then (
                  prerr_endline "!! shredded result DIFFERS from the DOM interpreter";
                  exit 1))
              ids docs;
            let c = Xdb_rel.Shred.counters s in
            Printf.printf
              "-- %d batched step(s), %d per-context step(s), %d DOM fallback(s)\n"
              c.Xdb_rel.Shred.batch_steps c.Xdb_rel.Shred.rel_steps
              c.Xdb_rel.Shred.dom_fallbacks;
            if explain_steps then (
              match Xdb_xpath.Parser.parse q with
              | Xdb_xpath.Ast.Path { steps; _ } ->
                  List.iter
                    (fun (st : Xdb_xpath.Ast.step) ->
                      Printf.printf "-- step %s\n   batch: %s\n%s\n"
                        (Xdb_xpath.Ast.step_to_string st)
                        (Xdb_rel.Shred.batch_explain st)
                        (Xdb_rel.Shred.explain_step s st))
                    steps
              | _ -> prerr_endline "(--explain: not a path expression)"))
  in
  Cmd.v
    (Cmd.info "shred"
       ~doc:
         "Store documents interval-encoded (one node row per XML node, B-tree indexed) and \
          query them with XPath axis range scans")
    Term.(const run $ verbose $ files $ case $ size $ query $ explain_steps)

(* ------------------------------------------------------------------ *)
(* translate                                                           *)
(* ------------------------------------------------------------------ *)

let translate_cmd =
  let stylesheet = Arg.(required & pos 0 (some file) None & info [] ~docv:"STYLESHEET") in
  let document =
    Arg.(
      value
      & opt (some file) None
      & info [ "d"; "document" ] ~doc:"Representative document (structural info inferred)")
  in
  let dtd =
    Arg.(value & opt (some file) None & info [ "s"; "schema" ] ~doc:"DTD-lite schema file")
  in
  let xsd =
    Arg.(value & opt (some file) None & info [ "x"; "xsd" ] ~doc:"XML Schema (XSD subset) file")
  in
  let straightforward =
    Arg.(
      value & flag
      & info [ "straightforward" ]
          ~doc:"Use the straightforward translation of Fokoue et al. [9] (no structural info)")
  in
  let run stylesheet document dtd xsd straightforward =
    let ss_text = read_file stylesheet in
    let prog = Xdb_xslt.Compile.compile (Xdb_xslt.Parser.parse ss_text) in
    let schema =
      match (xsd, dtd, document) with
      | Some path, _, _ -> Xdb_schema.Xsd.parse (read_file path)
      | None, Some path, _ -> Xdb_schema.Dtd.parse (read_file path)
      | None, None, Some path -> Xdb_schema.Infer.infer [ Xdb_xml.Parser.parse (read_file path) ]
      | None, None, None ->
          prerr_endline
            "translate: provide --xsd, --schema or --document for structural information";
          exit 2
    in
    let result =
      if straightforward then Xdb_core.Xslt2xquery.translate_straightforward prog ~schema
      else Xdb_core.Xslt2xquery.translate prog ~schema
    in
    Printf.printf "(: mode: %s :)\n" (Xdb_core.Pipeline.mode_name result.Xdb_core.Xslt2xquery.mode);
    print_endline (Xdb_xquery.Pretty.prog_syntax result.Xdb_core.Xslt2xquery.query)
  in
  Cmd.v
    (Cmd.info "translate" ~doc:"Print the XQuery generated from a stylesheet")
    Term.(const run $ stylesheet $ document $ dtd $ xsd $ straightforward)

(* ------------------------------------------------------------------ *)
(* explain / cases                                                     *)
(* ------------------------------------------------------------------ *)

let explain_cmd =
  let case = Arg.(required & pos 0 (some string) None & info [] ~docv:"CASE") in
  let size = Arg.(value & opt int 100 & info [ "n"; "size" ] ~doc:"Workload size (rows)") in
  let analyze =
    Arg.(
      value & flag
      & info [ "explain-analyze" ]
          ~doc:
            "Execute the SQL/XML plan with instrumentation and print estimated vs actual rows, \
             loops, B-tree probes and wall time per operator ($(b,--interpreted) selects the \
             reference executor; $(b,--jobs) runs the instrumented execution domain-parallel \
             with per-domain stats merged by operator).")
  in
  let collect_stats =
    Arg.(
      value & flag
      & info [ "analyze" ]
          ~doc:
            "Run ANALYZE over the case database before compiling, so the optimizer costs the \
             plan from collected statistics (histograms, NDV) instead of the System-R \
             defaults.")
  in
  let run verbose name size analyze collect_stats (opts : Xdb_core.Engine.run_options) =
    setup_logs verbose;
    match Xdb_xsltmark.Cases.find name with
    | None ->
        Printf.eprintf "unknown case %S (see `xdb_cli cases`)\n" name;
        exit 2
    | Some case when not case.Xdb_xsltmark.Cases.db_capable ->
        if analyze || opts.collect_metrics || collect_stats then
          prerr_endline
            "(case has no database form; --explain-analyze/--metrics/--analyze ignored)";
        let doc = Xdb_xsltmark.Cases.doc_for case size in
        let dc =
          Xdb_core.Pipeline.compile_for_document case.Xdb_xsltmark.Cases.stylesheet
            ~example_doc:doc
        in
        Printf.printf "-- translation mode: %s\n-- generated XQuery:\n%s\n"
          (Xdb_core.Pipeline.mode_name dc.Xdb_core.Pipeline.d_translation.Xdb_core.Xslt2xquery.mode)
          (Xdb_xquery.Pretty.prog_syntax
             dc.Xdb_core.Pipeline.d_translation.Xdb_core.Xslt2xquery.query)
    | Some _ ->
        with_engine_errors (fun () ->
            match engine_for_case name size with
            | None -> assert false (* db_capable checked above *)
            | Some (engine, view_name, stylesheet, _) ->
                let db = Xdb_core.Engine.database engine in
                if collect_stats then (
                  let analyzed = Xdb_rel.Analyze.all db in
                  Printf.printf "-- ANALYZE: %d table(s), %d rows sampled (stats version %d)\n"
                    (List.length analyzed)
                    (List.fold_left (fun acc (_, n) -> acc + n) 0 analyzed)
                    (Xdb_rel.Database.stats_version db));
                let m =
                  if opts.collect_metrics then Some (Xdb_core.Metrics.create ()) else None
                in
                let staged name f =
                  match m with None -> f () | Some m -> Xdb_core.Metrics.time m name f
                in
                let stmt =
                  staged "prepare" (fun () ->
                      Xdb_core.Engine.prepare ?metrics:m engine ~view_name ~stylesheet)
                in
                print_endline (Xdb_core.Engine.explain_stmt engine stmt);
                if analyze then (
                  print_endline "-- EXPLAIN ANALYZE:";
                  print_endline
                    (staged "sql_exec" (fun () ->
                         Xdb_core.Engine.explain_analyze_stmt ~options:opts engine stmt)));
                print_metrics m;
                Xdb_core.Engine.shutdown engine)
  in
  Cmd.v
    (Cmd.info "explain" ~doc:"Explain the pipeline for a built-in benchmark case")
    Term.(const run $ verbose $ case $ size $ analyze $ collect_stats $ run_options_term)

(* the statement surface: a demo database behind one engine that owns the
   view registry, result cache and writer lock — shell and sql share it *)
let workload_term =
  Arg.(
    value
    & opt (enum [ ("dept-emp", `Dept_emp); ("records", `Records); ("sales", `Sales) ]) `Dept_emp
    & info [ "w"; "workload" ] ~doc:"Demo database to load (dept-emp, records, sales)")

let sql_engine workload size =
  let dv =
    match workload with
    | `Dept_emp -> Xdb_xsltmark.Data.dept_emp_db (max 1 (size / 10)) 10
    | `Records -> Xdb_xsltmark.Data.records_db size
    | `Sales -> Xdb_xsltmark.Data.sales_db (max 1 (size / 20)) 20
  in
  let engine = Xdb_core.Engine.create dv.Xdb_xsltmark.Data.db in
  Xdb_core.Engine.register_view engine dv.Xdb_xsltmark.Data.view;
  (engine, dv)

let shell_cmd =
  let size = Arg.(value & opt int 100 & info [ "n"; "size" ] ~doc:"Workload size") in
  let run workload size =
    let engine, dv = sql_engine workload size in
    Printf.printf
      "xdb SQL shell — tables: %s; XMLType view: %s(%s)\nStatements end with ';'. Ctrl-D to quit.\n"
      (String.concat ", " (Xdb_rel.Database.table_names dv.Xdb_xsltmark.Data.db))
      dv.Xdb_xsltmark.Data.view.Xdb_rel.Publish.view_name
      dv.Xdb_xsltmark.Data.view.Xdb_rel.Publish.column;
    let buf = Buffer.create 256 in
    (try
       while true do
         if Buffer.length buf = 0 then print_string "sql> " else print_string "...> ";
         flush stdout;
         let line = input_line stdin in
         Buffer.add_string buf line;
         Buffer.add_char buf '\n';
         let text = Buffer.contents buf in
         (* a statement is complete when a ';' appears outside strings *)
         let complete =
           let in_str = ref false and found = ref false in
           String.iter
             (fun c ->
               if c = '\'' then in_str := not !in_str
               else if c = ';' && not !in_str then found := true)
             text;
           !found
         in
         if complete then (
           Buffer.clear buf;
           match Xdb_core.Engine.execute engine text with
           | r -> print_string (Xdb_sql.Engine.render r)
           | exception Xdb_core.Xdb_error.Error e ->
               Printf.printf "error: %s\n" (Xdb_core.Xdb_error.to_string e)
           | exception e -> Printf.printf "error: %s\n" (Printexc.to_string e))
       done
     with End_of_file -> print_newline ())
  in
  Cmd.v
    (Cmd.info "shell" ~doc:"Interactive SQL/XML shell over a demo database")
    Term.(const run $ workload_term $ size)

let sql_cmd =
  let size = Arg.(value & opt int 100 & info [ "n"; "size" ] ~doc:"Workload size") in
  let stmts =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"STATEMENT"
          ~doc:
            "SQL statements to run in order (each may also be several statements separated \
             by ';').  SELECT, INSERT/UPDATE/DELETE, ANALYZE, CREATE VIEW, XMLTransform and \
             XMLQuery are all accepted.")
  in
  let run workload size stmts =
    if stmts = [] then (
      prerr_endline "sql: provide at least one STATEMENT (or use `xdb_cli shell`)";
      exit 2);
    let engine, _ = sql_engine workload size in
    let pieces =
      List.concat_map
        (fun s ->
          List.filter_map
            (fun p -> if String.trim p = "" then None else Some p)
            (String.split_on_char ';' s))
        stmts
    in
    with_engine_errors (fun () ->
        List.iter
          (fun text -> print_string (Xdb_sql.Engine.render (Xdb_core.Engine.execute engine text)))
          pieces)
  in
  Cmd.v
    (Cmd.info "sql"
       ~doc:"Run SQL statements (including DML) against a demo database and print the results")
    Term.(const run $ workload_term $ size $ stmts)

let publish_cmd =
  let case = Arg.(required & pos 0 (some string) None & info [] ~docv:"CASE") in
  let size = Arg.(value & opt int 100 & info [ "n"; "size" ] ~doc:"Workload size (rows)") in
  let indent = Arg.(value & flag & info [ "indent" ] ~doc:"Indented output") in
  let run verbose name size indent opts =
    setup_logs verbose;
    with_engine_errors (fun () ->
        match engine_for_case name size with
        | None ->
            Printf.eprintf "case %S has no database form\n" name;
            exit 2
        | Some (engine, view_name, _, _) ->
            let r =
              Xdb_core.Engine.publish ~options:{ opts with Xdb_core.Engine.indent } engine
                ~view_name
            in
            List.iter print_endline r.Xdb_core.Engine.output;
            print_metrics r.Xdb_core.Engine.metrics;
            Xdb_core.Engine.shutdown engine)
  in
  Cmd.v
    (Cmd.info "publish"
       ~doc:"Print a case's XMLType view documents (DOM or streamed serialization)")
    Term.(const run $ verbose $ case $ size $ indent $ run_options_term)

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let clients =
    Arg.(
      value & opt int 4
      & info [ "c"; "clients" ] ~docv:"N"
          ~doc:"Concurrent client domains, one server session each.")
  in
  let requests =
    Arg.(
      value & opt int 60
      & info [ "r"; "requests" ] ~docv:"N"
          ~doc:"Total requests, split evenly across clients (closed loop: each client \
                issues its next request as soon as the previous one returns).")
  in
  let size = Arg.(value & opt int 2000 & info [ "n"; "size" ] ~doc:"Workload size (rows)") in
  let max_in_flight =
    Arg.(
      value & opt (some int) None
      & info [ "max-in-flight" ] ~docv:"N"
          ~doc:"Admission control: requests executing at once (default: the core count).")
  in
  let max_queue =
    Arg.(
      value & opt int 64
      & info [ "max-queue" ] ~docv:"N"
          ~doc:"Admission control: waiters beyond $(b,--max-in-flight); past this bound \
                requests are rejected immediately with an overloaded error instead of \
                blocking.")
  in
  let session_cap =
    Arg.(
      value & opt (some int) None
      & info [ "session-cap" ] ~docv:"N"
          ~doc:"Fairness: one session's requests executing at once (default: \
                $(b,--max-in-flight)); a capped session's waiters let later sessions \
                overtake them.")
  in
  let server_metrics =
    Arg.(
      value & flag
      & info [ "server-metrics" ]
          ~doc:"Print the server's metrics collector (counters, queue-wait and \
                service-time histograms and percentiles, per-session counters) as JSON \
                after the run.")
  in
  let run verbose clients requests size max_in_flight max_queue session_cap server_metrics
      (opts : Xdb_core.Engine.run_options) =
    setup_logs verbose;
    let clients = max 1 clients and requests = max 1 requests in
    with_engine_errors (fun () ->
        (* one Records-shape database/view serves all three stylesheets:
           a genuinely mixed workload over one shared engine *)
        let dv = Xdb_xsltmark.Data.records_db size in
        let engine = Xdb_core.Engine.create dv.Xdb_xsltmark.Data.db in
        Xdb_core.Engine.register_view engine dv.Xdb_xsltmark.Data.view;
        let view_name = dv.Xdb_xsltmark.Data.view.Xdb_rel.Publish.view_name in
        let cases =
          List.map
            (fun name ->
              let c =
                if name = "dbonerow" then Xdb_xsltmark.Cases.dbonerow_for size
                else Option.get (Xdb_xsltmark.Cases.find name)
              in
              (name, c.Xdb_xsltmark.Cases.stylesheet))
            [ "dbonerow"; "avts"; "metric" ]
        in
        let ncases = List.length cases in
        let server =
          Xdb_core.Server.create ?max_in_flight ~max_queue ?per_session_cap:session_cap
            ~defaults:opts engine
        in
        let per_client = requests / clients and extra = requests mod clients in
        (* each client: its own session, looping the mixed case set *)
        let run_client i =
          let sess =
            Xdb_core.Server.open_session ~name:(Printf.sprintf "c%d" i) server
          in
          let n = per_client + if i < extra then 1 else 0 in
          let out = ref [] in
          for k = 0 to n - 1 do
            let name, ss = List.nth cases ((i + k) mod ncases) in
            let t0 = Unix.gettimeofday () in
            (match Xdb_core.Server.transform sess ~view_name ~stylesheet:ss with
            | (_ : Xdb_core.Engine.run_result) ->
                out := (name, (Unix.gettimeofday () -. t0) *. 1000.0, true) :: !out
            | exception Xdb_core.Xdb_error.Error (Xdb_core.Xdb_error.Overloaded _) ->
                out := (name, (Unix.gettimeofday () -. t0) *. 1000.0, false) :: !out);
            ()
          done;
          Xdb_core.Server.close_session sess;
          !out
        in
        let t0 = Unix.gettimeofday () in
        let samples =
          if clients = 1 then run_client 0
          else
            List.concat_map Domain.join
              (List.init clients (fun i -> Domain.spawn (fun () -> run_client i)))
        in
        let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
        let snap = Xdb_core.Server.snapshot server in
        let pct lats q =
          match lats with
          | [] -> 0.0
          | _ ->
              let a = Array.of_list lats in
              Array.sort compare a;
              let n = Array.length a in
              a.(min (n - 1) (max 0 (int_of_float (ceil (q *. float_of_int n)) - 1)))
        in
        Printf.printf "%-10s %9s %12s %9s %9s %9s\n" "case" "requests" "thrpt(r/s)"
          "p50(ms)" "p95(ms)" "p99(ms)";
        List.iter
          (fun (case, _) ->
            let lats =
              List.filter_map (fun (n, ms, ok) -> if n = case && ok then Some ms else None)
                samples
            in
            let k = List.length lats in
            Printf.printf "%-10s %9d %12.1f %9.3f %9.3f %9.3f\n" case k
              (float_of_int k /. (wall_ms /. 1000.0))
              (pct lats 0.50) (pct lats 0.95) (pct lats 0.99))
          cases;
        let done_ = List.length (List.filter (fun (_, _, ok) -> ok) samples) in
        Printf.printf
          "%d client(s), %d request(s) in %.1fms (%.1f r/s); accepted %d, queued %d, \
           rejected %d\n"
          clients done_ wall_ms
          (float_of_int done_ /. (wall_ms /. 1000.0))
          snap.Xdb_core.Server.accepted snap.Xdb_core.Server.queued
          snap.Xdb_core.Server.rejected;
        if server_metrics then (
          print_endline "-- server metrics:";
          print_endline (Xdb_core.Server.metrics_json server));
        Xdb_core.Server.shutdown server;
        Xdb_core.Engine.shutdown engine)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run a closed-loop concurrent workload through server sessions with admission \
          control over one shared engine")
    Term.(
      const run $ verbose $ clients $ requests $ size $ max_in_flight $ max_queue
      $ session_cap $ server_metrics $ run_options_term)

let cases_cmd =
  let run () =
    List.iter
      (fun (c : Xdb_xsltmark.Cases.case) ->
        Printf.printf "%-14s %-12s db:%-5b %s\n" c.Xdb_xsltmark.Cases.name
          c.Xdb_xsltmark.Cases.category c.Xdb_xsltmark.Cases.db_capable
          c.Xdb_xsltmark.Cases.description)
      (Xdb_xsltmark.Cases.all @ Xdb_xsltmark.Cases.extras)
  in
  Cmd.v (Cmd.info "cases" ~doc:"List the built-in benchmark cases") Term.(const run $ const ())

let () =
  let info = Cmd.info "xdb_cli" ~doc:"XSLT processing in a relational database (VLDB'06 repro)" in
  exit
    (Cmd.eval
       (Cmd.group info
          [ transform_cmd; translate_cmd; explain_cmd; publish_cmd; serve_cmd; cases_cmd;
            shell_cmd; sql_cmd; shred_cmd ]))
