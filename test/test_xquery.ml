(* Tests for xdb_xquery: parser, pretty-printer round-trip, evaluator,
   static typing, composition, SQL/XML rewrite. *)

module Q = Xdb_xquery.Ast
module QP = Xdb_xquery.Parser
module QE = Xdb_xquery.Eval
module QV = Xdb_xquery.Value
module Pretty = Xdb_xquery.Pretty
module Typing = Xdb_xquery.Typing
module Compose = Xdb_xquery.Compose
module SQL = Xdb_xquery.Sql_rewrite
module S = Xdb_schema.Types
module A = Xdb_rel.Algebra
module P = Xdb_rel.Publish
module V = Xdb_rel.Value
module T = Xdb_rel.Table
module X = Xdb_xml.Types

let check = Alcotest.check
let cs = Alcotest.string
let cb = Alcotest.bool
let ci = Alcotest.int

let doc =
  Xdb_xml.Parser.parse
    {|<dept><dname>ACCOUNTING</dname><loc>NEW YORK</loc><employees><emp><empno>7782</empno><ename>CLARK</ename><sal>2450</sal></emp><emp><empno>7934</empno><ename>MILLER</ename><sal>1300</sal></emp><emp><empno>7954</empno><ename>SMITH</ename><sal>4900</sal></emp></employees></dept>|}

let run_str src =
  let prog = QP.parse_prog src in
  Xdb_xml.Serializer.node_list_to_string (QE.run_to_nodes prog ~context:doc)

(* ------------------------------------------------------------------ *)
(* parser & evaluator                                                  *)
(* ------------------------------------------------------------------ *)

let test_flwor_basics () =
  check cs "let and path" "ACCOUNTING" (run_str "let $d := ./dept return fn:string($d/dname)");
  check cs "for iteration" "<e>CLARK</e><e>MILLER</e><e>SMITH</e>"
    (run_str "for $e in ./dept/employees/emp return <e>{fn:string($e/ename)}</e>");
  check cs "where clause" "<e>SMITH</e>"
    (run_str "for $e in ./dept/employees/emp where $e/sal > 4000 return <e>{fn:string($e/ename)}</e>");
  check cs "order by descending" "4900 2450 1300"
    (run_str
       "for $e in ./dept/employees/emp order by fn:number($e/sal) descending return fn:string($e/sal)");
  check cs "positional variable" "1:CLARK  2:MILLER  3:SMITH "
    (run_str
       {|for $e at $i in ./dept/employees/emp return fn:concat(fn:string($i), ":", fn:string($e/ename), " ")|})

let test_conditionals () =
  check cs "if then else" "big" (run_str {|if (count(./dept/employees/emp) > 2) then "big" else "small"|});
  check cs "instance of" "true"
    (run_str "for $x in ./dept/dname return if ($x instance of element(dname)) then \"true\" else \"false\"")

let test_constructors () =
  check cs "direct with attrs" "<a x=\"1\" y=\"v-ACCOUNTING\"><b/></a>"
    (run_str {|<a x="1" y="v-{./dept/dname}"><b/></a>|});
  check cs "computed element" "<dyn>inner</dyn>"
    (run_str {|element {fn:concat("d", "yn")} {"inner"}|});
  check cs "computed attribute" "<w k=\"3\"/>" (run_str "<w>{attribute k {1 + 2}}</w>");
  check cs "text constructor" "5" (run_str "text {2 + 3}");
  check cs "comment constructor" "<!--note-->" (run_str {|comment {"note"}|});
  check cs "sequence flattening" "a b c" (run_str {|("a", ("b", "c"))|});
  check cs "empty sequence" "" (run_str "()")

let test_atomization_spacing () =
  (* adjacent atoms in content join with a single space (XQuery semantics) *)
  check cs "atoms joined" "<s>1 2</s>" (run_str "<s>{(1, 2)}</s>");
  check cs "nodes not joined" "<s><a/><b/></s>" (run_str "<s>{(<a/>, <b/>)}</s>")

let test_functions () =
  check cs "string-join" "CLARK|MILLER|SMITH"
    (run_str {|fn:string-join(for $e in ./dept/employees/emp return fn:string($e/ename), "|")|});
  check cs "sum" "8650" (run_str "fn:string(fn:sum(./dept/employees/emp/sal))");
  check cs "avg" "2883.33333333" (run_str "fn:string(fn:avg(./dept/employees/emp/sal))");
  check cs "min max" "1300 4900"
    (run_str
       {|fn:concat(fn:string(fn:min(./dept/employees/emp/sal)), " ", fn:string(fn:max(./dept/employees/emp/sal)))|});
  check cs "exists / empty" "truefalse"
    (run_str {|fn:concat(fn:string(fn:exists(./dept)), fn:string(fn:empty(./dept)))|})

let test_quantifiers () =
  check cs "some true" "yes"
    (run_str {|if (some $e in ./dept/employees/emp satisfies $e/sal > 4000) then "yes" else "no"|});
  check cs "every false" "no"
    (run_str {|if (every $e in ./dept/employees/emp satisfies $e/sal > 4000) then "yes" else "no"|});
  check cs "every true" "yes"
    (run_str {|if (every $e in ./dept/employees/emp satisfies $e/sal > 1000) then "yes" else "no"|});
  (* round trip *)
  let src = "some $x in ./dept/employees/emp satisfies $x/sal > 2000" in
  let p1 = QP.parse_prog src in
  let printed = Pretty.prog_syntax p1 in
  let v1 = QE.run p1 ~context:doc and v2 = QE.run (QP.parse_prog printed) ~context:doc in
  check cb "pretty round-trips" true (QV.equal v1 v2)

let test_user_functions () =
  let src =
    {|declare function local:fact($n) {
  if ($n <= 1) then 1 else $n * local:fact($n - 1)
};
fn:string(local:fact(5))|}
  in
  check cs "recursive function" "120" (run_str src)

let test_construction_copies () =
  (* constructed content holds copies: mutating the source afterwards must
     not affect the result (XQuery node-copy semantics) *)
  let src = Xdb_xml.Parser.parse "<a><b>x</b></a>" in
  let prog = QP.parse_prog "<wrap>{./a/b}</wrap>" in
  let out = QE.run_to_nodes prog ~context:src in
  (match (Xdb_xml.Parser.document_element src).X.children with
  | b :: _ -> b.X.kind <- X.Text "mutated"
  | [] -> Alcotest.fail "no children");
  check cs "copy unaffected by mutation" "<wrap><b>x</b></wrap>"
    (Xdb_xml.Serializer.node_list_to_string out)

let test_order_by_stability () =
  (* equal keys keep input order (stable sort) *)
  let doc2 = Xdb_xml.Parser.parse "<l><i k=\"1\">a</i><i k=\"1\">b</i><i k=\"0\">c</i></l>" in
  let prog =
    QP.parse_prog "for $i in ./l/i order by fn:string($i/@k) return fn:string($i)"
  in
  let out =
    String.concat "," (List.map QV.item_string (QE.run prog ~context:doc2))
  in
  check cs "stable" "c,a,b" out

let test_eval_errors () =
  let fails src =
    match run_str src with
    | exception (QE.Eval_error _ | QV.Xquery_type_error _) -> true
    | _ -> false
  in
  check cb "unbound variable" true (fails "$nope");
  check cb "undefined function" true (fails "local:ghost()");
  check cb "runaway recursion guarded" true
    (fails "declare function local:loop($n) { local:loop($n + 1) }; local:loop(0)")

let test_parser_errors () =
  let fails src = match QP.parse_prog src with exception QP.Parse_error _ -> true | _ -> false in
  check cb "missing return" true (fails "for $x in y");
  check cb "mismatched constructor" true (fails "<a></b>");
  check cb "unterminated brace" true (fails "<a>{1</a>");
  check cb "flwor in predicate" true (fails "a[for $x in b return $x]")

let test_pretty_roundtrip () =
  let sources =
    [
      "let $d := ./dept return (fn:string($d/dname), <x a=\"{$d/loc}\">{1 + 2}</x>)";
      "for $e in ./dept/employees/emp[sal > 2000] order by fn:string($e/ename) return <r>{fn:string($e/empno)}</r>";
      {|if (fn:exists(./dept/loc)) then "y" else "n"|};
      "declare function local:f($x) { $x + 1 }; fn:string(local:f(41))";
      "fn:string-join(for $t in .//text() return fn:string($t), \"\")";
    ]
  in
  List.iter
    (fun src ->
      let p1 = QP.parse_prog src in
      let out1 = Xdb_xml.Serializer.node_list_to_string (QE.run_to_nodes p1 ~context:doc) in
      let printed = Pretty.prog_syntax p1 in
      let p2 = QP.parse_prog printed in
      let out2 = Xdb_xml.Serializer.node_list_to_string (QE.run_to_nodes p2 ~context:doc) in
      check cs ("roundtrip: " ^ src) out1 out2)
    sources

(* ------------------------------------------------------------------ *)
(* static typing                                                       *)
(* ------------------------------------------------------------------ *)

let input_schema =
  S.make ~root:"dept"
    [
      S.node "dept" [ S.particle "dname"; S.particle "employees" ];
      S.node "employees" [ S.particle ~occurs:S.many "emp" ];
      S.node "emp" [ S.particle "ename" ];
      S.leaf "dname";
      S.leaf "ename";
    ]

let test_typing_constructed () =
  let p = QP.parse_prog "<out><h/>{for $e in ./dept/employees/emp return <r/>}</out>" in
  let schema = Typing.result_schema ~input:input_schema p in
  let result = S.find_exn schema "#result" in
  check ci "one top element" 1 (List.length result.S.particles);
  let out = S.find_exn schema "out" in
  check ci "out has h and r" 2 (List.length out.S.particles);
  let r = List.nth out.S.particles 1 in
  check cs "r unbounded" "many" (S.occurs_name r.S.occurs)

let test_typing_forwarded () =
  let p = QP.parse_prog "./dept/employees/emp" in
  let schema = Typing.result_schema ~input:input_schema p in
  let result = S.find_exn schema "#result" in
  check Alcotest.(list string) "emp forwarded" [ "emp" ]
    (List.map (fun pt -> pt.S.child) result.S.particles);
  (* the forwarded declaration is copied *)
  check ci "emp decl copied" 1 (List.length (S.find_exn schema "emp").S.particles)

(* ------------------------------------------------------------------ *)
(* composition (paper Example 2)                                       *)
(* ------------------------------------------------------------------ *)

let test_compose_static () =
  let p =
    QP.parse_prog
      {|let $d := ./dept return (<h1>x</h1>, <table>{for $e in $d/employees/emp return <tr>{fn:string($e/ename)}</tr>}</table>)|}
  in
  let steps = [ Xdb_xpath.Ast.child_step "table"; Xdb_xpath.Ast.child_step "tr" ] in
  let composed = Compose.navigate p steps in
  (* navigating away from <h1> drops it; result contains only the FLWOR *)
  let out = Xdb_xml.Serializer.node_list_to_string (QE.run_to_nodes composed ~context:doc) in
  check cs "composed result" "<tr>CLARK</tr><tr>MILLER</tr><tr>SMITH</tr>" out;
  (* the composed body must not contain the h1 constructor *)
  let printed = Pretty.prog_syntax composed in
  check cb "h1 eliminated" false
    (let rec contains s sub i =
       i + String.length sub <= String.length s
       && (String.sub s i (String.length sub) = sub || contains s sub (i + 1))
     in
     contains printed "h1" 0)

let test_compose_equivalence () =
  (* static navigation ≡ dynamic path application *)
  let p =
    QP.parse_prog
      {|<table>{for $e in ./dept/employees/emp return <tr><td>{fn:string($e/ename)}</td></tr>}</table>|}
  in
  let steps =
    [ Xdb_xpath.Ast.child_step "table"; Xdb_xpath.Ast.child_step "tr";
      Xdb_xpath.Ast.child_step "td" ]
  in
  let composed = Compose.navigate p steps in
  let static = Xdb_xml.Serializer.node_list_to_string (QE.run_to_nodes composed ~context:doc) in
  (* dynamic: materialise then navigate *)
  let nodes = QE.run_to_nodes p ~context:doc in
  let frag = Xdb_xml.Builder.document_of_nodes nodes in
  let ctx = Xdb_xpath.Eval.make_context frag in
  let dynamic =
    Xdb_xpath.Eval.select ctx "table/tr/td"
    |> List.map (Xdb_xml.Serializer.to_string ~meth:Xdb_xml.Serializer.Xml)
    |> String.concat ""
  in
  check cs "static = dynamic" dynamic static

let test_simplify () =
  let p = QP.parse_prog "let $unused := ./dept return (<a/>, ())" in
  match Compose.simplify p.Q.body with
  | Q.Direct_elem ("a", _, _) -> ()
  | e -> Alcotest.failf "expected bare <a/>, got %s" (Pretty.expr_syntax 0 e)

(* ------------------------------------------------------------------ *)
(* SQL rewrite                                                         *)
(* ------------------------------------------------------------------ *)

let setup_view () =
  let db = Xdb_rel.Database.create () in
  let dept =
    Xdb_rel.Database.create_table db "dept"
      [ { T.col_name = "deptno"; col_type = V.Tint }; { T.col_name = "dname"; col_type = V.Tstr } ]
  in
  let emp =
    Xdb_rel.Database.create_table db "emp"
      [
        { T.col_name = "ename"; col_type = V.Tstr };
        { T.col_name = "sal"; col_type = V.Tint };
        { T.col_name = "deptno"; col_type = V.Tint };
      ]
  in
  T.insert_values dept [ V.Int 10; V.Str "ACCOUNTING" ];
  T.insert_values emp [ V.Str "CLARK"; V.Int 2450; V.Int 10 ];
  T.insert_values emp [ V.Str "MILLER"; V.Int 1300; V.Int 10 ];
  ignore (T.create_index emp ~name:"emp_sal" ~column:"sal");
  let view =
    {
      P.view_name = "v";
      base_table = "dept";
      base_alias = "dept";
      column = "c";
      spec =
        P.Elem
          {
            name = "dept";
            attrs = [];
            content =
              [
                P.Elem { name = "dname"; attrs = []; content = [ P.Text_col "dname" ] };
                P.Agg
                  {
                    table = "emp";
                    alias = "emp";
                    correlate = [ ("deptno", "deptno") ];
                    where = None;
                    order_by = [ ("ename", A.Asc) ];
                    body =
                      P.Elem
                        {
                          name = "emp";
                          attrs = [];
                          content =
                            [
                              P.Elem { name = "ename"; attrs = []; content = [ P.Text_col "ename" ] };
                              P.Elem { name = "sal"; attrs = []; content = [ P.Text_col "sal" ] };
                            ];
                        };
                  };
              ];
          };
    }
  in
  (db, view)

let rewrite_and_run src =
  let db, view = setup_view () in
  let prog = QP.parse_prog src in
  let plan = SQL.rewrite_view_plan db view prog in
  let rows = Xdb_rel.Exec.run db plan in
  (plan, List.map (fun r -> V.to_string (List.assoc "result" r)) rows)

let test_rewrite_scalar () =
  let _, out = rewrite_and_run "<h>{fn:string(./dept/dname)}</h>" in
  check Alcotest.(list string) "scalar path" [ "<h>ACCOUNTING</h>" ] out

let test_rewrite_for_with_predicate () =
  let plan, out =
    rewrite_and_run "for $e in ./dept/emp[sal > 2000] return <r>{fn:string($e/ename)}</r>"
  in
  check Alcotest.(list string) "predicate applied" [ "<r>CLARK</r>" ] out;
  (* predicate became an index scan inside the subquery *)
  let explain = A.explain plan in
  let contains sub s =
    let rec go i =
      i + String.length sub <= String.length s && (String.sub s i (String.length sub) = sub || go (i + 1))
    in
    go 0
  in
  check cb "index scan used" true (contains "IndexScan" explain)

let test_rewrite_aggregates () =
  let _, out =
    rewrite_and_run
      {|<s c="{count(./dept/emp)}">{fn:string(sum(./dept/emp/sal))}</s>|}
  in
  check Alcotest.(list string) "count and sum" [ "<s c=\"2\">3750</s>" ] out

let test_rewrite_where_and_if () =
  let _, out =
    rewrite_and_run
      {|for $e in ./dept/emp return if ($e/sal > 2000) then <hi/> else <lo/>|}
  in
  check Alcotest.(list string) "conditional per row" [ "<hi/><lo/>" ] out

let test_rewrite_copy_of () =
  let _, out = rewrite_and_run "./dept/emp[sal > 2000]" in
  check Alcotest.(list string) "republication"
    [ "<emp><ename>CLARK</ename><sal>2450</sal></emp>" ]
    out

let test_rewrite_order_by () =
  let plan, out =
    rewrite_and_run
      "for $e in ./dept/emp order by fn:number($e/sal) descending return <s>{fn:string($e/sal)}</s>"
  in
  ignore plan;
  check Alcotest.(list string) "descending" [ "<s>2450</s><s>1300</s>" ] out

let test_rewrite_where_hoisting () =
  (* a where clause directly after the for hoists into the subplan *)
  let plan, out =
    rewrite_and_run
      "for $e in ./dept/emp where $e/sal > 2000 return <r>{fn:string($e/ename)}</r>"
  in
  check Alcotest.(list string) "where applied" [ "<r>CLARK</r>" ] out;
  let explain = A.explain plan in
  let contains sub s =
    let rec go i =
      i + String.length sub <= String.length s && (String.sub s i (String.length sub) = sub || go (i + 1))
    in
    go 0
  in
  check cb "hoisted into an index scan" true (contains "IndexScan" explain)

let test_rewrite_exists_condition () =
  let _, out =
    rewrite_and_run
      {|if (fn:exists(./dept/emp)) then <has/> else <none/>|}
  in
  check Alcotest.(list string) "exists over detail" [ "<has/>" ] out

let test_rewrite_fallbacks () =
  let db, view = setup_view () in
  let fails src =
    match SQL.rewrite_view_plan db view (QP.parse_prog src) with
    | exception SQL.Not_rewritable _ -> true
    | _ -> false
  in
  check cb "descendant axis" true (fails "<x>{fn:string(.//ename)}</x>");
  check cb "unknown element" true (fails "fn:string(./dept/ghost)");
  check cb "user functions" true
    (fails "declare function local:f($x) { $x }; local:f(./dept)");
  check cb "computed element name" true
    (fails "element {fn:string(./dept/dname)} {\"x\"}")

let test_rewrite_matches_dynamic () =
  (* differential: SQL result = dynamic evaluation over materialised doc *)
  let db, view = setup_view () in
  let srcs =
    [
      "<h>{fn:string(./dept/dname)}</h>";
      "for $e in ./dept/emp return <r>{fn:string($e/ename)}:{fn:string($e/sal)}</r>";
      "for $e in ./dept/emp[sal > 2000] return <r>{fn:string($e/ename)}</r>";
      {|<s>{fn:string(count(./dept/emp))}</s>|};
    ]
  in
  let docs = P.materialize db view in
  List.iter
    (fun src ->
      let prog = QP.parse_prog src in
      let plan = SQL.rewrite_view_plan db view prog in
      let sql = List.map (fun r -> V.to_string (List.assoc "result" r)) (Xdb_rel.Exec.run db plan) in
      let dyn =
        List.map
          (fun d -> Xdb_xml.Serializer.node_list_to_string (QE.run_to_nodes prog ~context:d))
          docs
      in
      check Alcotest.(list string) ("differential: " ^ src) dyn sql)
    srcs

let prop_xquery_parser_total =
  QCheck.Test.make ~name:"xquery parser is total" ~count:400
    QCheck.(string_gen_of_size Gen.(int_bound 50) Gen.printable)
    (fun s ->
      match QP.parse_prog s with
      | _ -> true
      | exception
          ( QP.Parse_error _ | Xdb_xpath.Parser.Parse_error _ | Xdb_xpath.Lexer.Lex_error _ ) ->
          true)

(* property: for randomly shaped publishing views (random scalar columns,
   random nesting of XMLAgg levels, random row counts), republication of
   the root element through the SQL rewriter equals materialisation, and a
   detail-level for-loop rewrite equals its dynamic evaluation *)
let random_view_property =
  QCheck.Test.make ~name:"random view shapes: rewrite ≡ materialise" ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rand =
        let state = ref (seed land 0x3FFFFFFF) in
        fun bound ->
          state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
          !state mod bound
      in
      let db = Xdb_rel.Database.create () in
      let base =
        Xdb_rel.Database.create_table db "base"
          [ { T.col_name = "bid"; col_type = V.Tint };
            { T.col_name = "a"; col_type = V.Tstr };
            { T.col_name = "b"; col_type = V.Tint } ]
      in
      let detail =
        Xdb_rel.Database.create_table db "detail"
          [ { T.col_name = "fk"; col_type = V.Tint };
            { T.col_name = "x"; col_type = V.Tint };
            { T.col_name = "y"; col_type = V.Tstr } ]
      in
      let sub =
        Xdb_rel.Database.create_table db "sub"
          [ { T.col_name = "fk2"; col_type = V.Tint };
            { T.col_name = "z"; col_type = V.Tint } ]
      in
      let n_base = 1 + rand 3 in
      for i = 1 to n_base do
        T.insert_values base [ V.Int i; V.Str (Printf.sprintf "s%d" (rand 100)); V.Int (rand 1000) ];
        for _ = 1 to rand 4 do
          let x = rand 1000 in
          T.insert_values detail [ V.Int i; V.Int x; V.Str (Printf.sprintf "y%d" (rand 10)) ];
          for _ = 1 to rand 3 do
            T.insert_values sub [ V.Int x; V.Int (rand 50) ]
          done
        done
      done;
      if rand 2 = 0 then ignore (T.create_index detail ~name:"d_fk" ~column:"fk");
      if rand 2 = 0 then ignore (T.create_index sub ~name:"s_fk2" ~column:"fk2");
      let leaf name col = P.Elem { name; attrs = []; content = [ P.Text_col col ] } in
      let sub_agg =
        P.Agg
          { table = "sub"; alias = "sub"; correlate = [ ("fk2", "x") ]; where = None;
            order_by = [ ("z", A.Asc) ];
            body = P.Elem { name = "s"; attrs = []; content = [ leaf "z" "z" ] } }
      in
      let detail_content =
        [ leaf "x" "x"; leaf "y" "y" ] @ (if rand 2 = 0 then [ sub_agg ] else [])
      in
      let detail_agg =
        P.Agg
          { table = "detail"; alias = "detail"; correlate = [ ("fk", "bid") ]; where = None;
            order_by = [ ("x", A.Asc) ];
            body = P.Elem { name = "d"; attrs = []; content = detail_content } }
      in
      let root_content =
        (if rand 2 = 0 then [ leaf "a" "a" ] else [])
        @ [ leaf "b" "b" ]
        @ (if rand 2 = 0 then [ detail_agg ] else [])
      in
      let view =
        { P.view_name = "rv"; base_table = "base"; base_alias = "base"; column = "doc";
          spec = P.Elem { name = "root"; attrs = []; content = root_content } }
      in
      (* 1. republication: XMLQuery('./root') ≡ materialise *)
      let prog = QP.parse_prog "./root" in
      let plan = SQL.rewrite_view_plan db view prog in
      let sql =
        List.map (fun r -> V.to_string (List.assoc "result" r)) (Xdb_rel.Exec.run db plan)
      in
      let mat =
        List.map
          (fun d ->
            Xdb_xml.Serializer.node_list_to_string
              (List.map Xdb_xml.Types.deep_copy d.Xdb_xml.Types.children))
          (P.materialize db view)
      in
      let republication_ok = sql = mat in
      (* 2. a detail loop, when the view publishes one *)
      let loop_ok =
        if List.exists (function P.Agg _ -> true | _ -> false) root_content then (
          let q = QP.parse_prog "for $d in ./root/d return <o>{fn:string($d/x)}</o>" in
          let plan = SQL.rewrite_view_plan db view q in
          let sql =
            List.map (fun r -> V.to_string (List.assoc "result" r)) (Xdb_rel.Exec.run db plan)
          in
          let dyn =
            List.map
              (fun d ->
                Xdb_xml.Serializer.node_list_to_string (QE.run_to_nodes q ~context:d))
              (P.materialize db view)
          in
          sql = dyn)
        else true
      in
      republication_ok && loop_ok)

let () =
  Alcotest.run "xquery"
    [
      ( "eval",
        [
          Alcotest.test_case "FLWOR basics" `Quick test_flwor_basics;
          Alcotest.test_case "conditionals" `Quick test_conditionals;
          Alcotest.test_case "constructors" `Quick test_constructors;
          Alcotest.test_case "atomization spacing" `Quick test_atomization_spacing;
          Alcotest.test_case "functions" `Quick test_functions;
          Alcotest.test_case "quantifiers" `Quick test_quantifiers;
          Alcotest.test_case "user functions" `Quick test_user_functions;
          Alcotest.test_case "construction copies" `Quick test_construction_copies;
          Alcotest.test_case "order-by stability" `Quick test_order_by_stability;
          Alcotest.test_case "eval errors" `Quick test_eval_errors;
        ] );
      ( "syntax",
        [
          Alcotest.test_case "parser errors" `Quick test_parser_errors;
          Alcotest.test_case "pretty round-trip" `Quick test_pretty_roundtrip;
        ] );
      ( "typing",
        [
          Alcotest.test_case "constructed" `Quick test_typing_constructed;
          Alcotest.test_case "forwarded" `Quick test_typing_forwarded;
        ] );
      ( "compose",
        [
          Alcotest.test_case "static navigation" `Quick test_compose_static;
          Alcotest.test_case "equivalence" `Quick test_compose_equivalence;
          Alcotest.test_case "simplify" `Quick test_simplify;
        ] );
      ("fuzz", [ QCheck_alcotest.to_alcotest prop_xquery_parser_total ]);
      ("random-views", [ QCheck_alcotest.to_alcotest random_view_property ]);
      ( "sql-rewrite",
        [
          Alcotest.test_case "scalar" `Quick test_rewrite_scalar;
          Alcotest.test_case "for + predicate" `Quick test_rewrite_for_with_predicate;
          Alcotest.test_case "aggregates" `Quick test_rewrite_aggregates;
          Alcotest.test_case "where/if" `Quick test_rewrite_where_and_if;
          Alcotest.test_case "copy-of" `Quick test_rewrite_copy_of;
          Alcotest.test_case "order by" `Quick test_rewrite_order_by;
          Alcotest.test_case "where hoisting" `Quick test_rewrite_where_hoisting;
          Alcotest.test_case "exists condition" `Quick test_rewrite_exists_condition;
          Alcotest.test_case "fallbacks" `Quick test_rewrite_fallbacks;
          Alcotest.test_case "differential" `Quick test_rewrite_matches_dynamic;
        ] );
    ]
