(* Tests for the SQL/XML surface running the paper's statements through
   Engine.execute, plus DML: INSERT/UPDATE/DELETE with index maintenance,
   two-phase atomicity, data versioning and result-cache consistency. *)

module V = Xdb_rel.Value
module P = Xdb_rel.Publish
module T = Xdb_rel.Table
module A = Xdb_rel.Algebra
module SQL = Xdb_sql.Engine
module EN = Xdb_core.Engine

let check = Alcotest.check
let cs = Alcotest.string
let cb = Alcotest.bool
let ci = Alcotest.int

let contains sub s =
  let rec go i =
    i + String.length sub <= String.length s
    && (String.sub s i (String.length sub) = sub || go (i + 1))
  in
  go 0

(* the paper's dept/emp schema, tables 1-3 *)
let make_engine () =
  let db = Xdb_rel.Database.create () in
  let dept =
    Xdb_rel.Database.create_table db "dept"
      [
        { T.col_name = "deptno"; col_type = V.Tint };
        { T.col_name = "dname"; col_type = V.Tstr };
        { T.col_name = "loc"; col_type = V.Tstr };
      ]
  in
  let emp =
    Xdb_rel.Database.create_table db "emp"
      [
        { T.col_name = "empno"; col_type = V.Tint };
        { T.col_name = "ename"; col_type = V.Tstr };
        { T.col_name = "sal"; col_type = V.Tint };
        { T.col_name = "deptno"; col_type = V.Tint };
      ]
  in
  T.insert_values dept [ V.Int 10; V.Str "ACCOUNTING"; V.Str "NEW YORK" ];
  T.insert_values dept [ V.Int 40; V.Str "OPERATIONS"; V.Str "BOSTON" ];
  T.insert_values emp [ V.Int 7782; V.Str "CLARK"; V.Int 2450; V.Int 10 ];
  T.insert_values emp [ V.Int 7934; V.Str "MILLER"; V.Int 1300; V.Int 10 ];
  T.insert_values emp [ V.Int 7954; V.Str "SMITH"; V.Int 4900; V.Int 40 ];
  ignore (T.create_index emp ~name:"emp_sal_idx" ~column:"sal");
  let leaf name col = P.Elem { name; attrs = []; content = [ P.Text_col col ] } in
  let view =
    {
      P.view_name = "dept_emp";
      base_table = "dept";
      base_alias = "dept";
      column = "dept_content";
      spec =
        P.Elem
          {
            name = "dept";
            attrs = [];
            content =
              [
                leaf "dname" "dname";
                leaf "loc" "loc";
                P.Elem
                  {
                    name = "employees";
                    attrs = [];
                    content =
                      [
                        P.Agg
                          {
                            table = "emp";
                            alias = "emp";
                            correlate = [ ("deptno", "deptno") ];
                            where = None;
                            order_by = [ ("empno", A.Asc) ];
                            body =
                              P.Elem
                                {
                                  name = "emp";
                                  attrs = [];
                                  content =
                                    [ leaf "empno" "empno"; leaf "ename" "ename"; leaf "sal" "sal" ];
                                };
                          };
                      ];
                  };
              ];
          };
    }
  in
  let eng = EN.create db in
  EN.register_view eng view;
  eng

let exec eng sql = EN.execute eng sql

let sql_fails eng q =
  match exec eng q with
  | exception Xdb_core.Xdb_error.Error (Xdb_core.Xdb_error.Sql _) -> true
  | _ -> false

(* paper Table 5, quoted for SQL ('' escapes) *)
let table5_sql =
  {|SELECT
XMLTransform(dept_emp.dept_content,
'<?xml version="1.0"?><xsl:stylesheet version="1.0"
xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
<xsl:template match="dept">
<H1>HIGHLY PAID DEPT EMPLOYEES</H1>
<xsl:apply-templates/>
</xsl:template>
<xsl:template match="dname">
<H2>Department name: <xsl:value-of select="."/></H2>
</xsl:template>
<xsl:template match="loc">
<H2>Department location: <xsl:value-of select="."/></H2>
</xsl:template>
<xsl:template match="employees">
<H2>Employees Table</H2>
<table border="2">
<td><b>EmpNo</b></td>
<td><b>Name</b></td>
<td><b>Weekly Salary</b></td>
<xsl:apply-templates select="emp[sal &gt; 2000]"/>
</table>
</xsl:template>
<xsl:template match = "emp">
<tr>
<td><xsl:value-of select="empno"/></td>
<td><xsl:value-of select="ename"/></td>
<td><xsl:value-of select="sal"/></td>
</tr>
</xsl:template>
<xsl:template match="text()">
<xsl:value-of select="."/>
</xsl:template>
</xsl:stylesheet>')
FROM dept_emp|}

(* ------------------------------------------------------------------ *)
(* parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parser () =
  (match Xdb_sql.Parser.parse "SELECT a, t.b AS x FROM t WHERE a > 3;" with
  | Xdb_sql.Ast.Select { items = [ _; _ ]; from_name = "t"; where = Some _; _ } -> ()
  | _ -> Alcotest.fail "basic select shape");
  (match Xdb_sql.Parser.parse "select * from emp" with
  | Xdb_sql.Ast.Select { items = [ (Xdb_sql.Ast.Star, None) ]; _ } -> ()
  | _ -> Alcotest.fail "star select");
  (* string escaping: '' inside strings *)
  (match Xdb_sql.Parser.parse "SELECT 'it''s' FROM t" with
  | Xdb_sql.Ast.Select { items = [ (Xdb_sql.Ast.Str_lit "it's", None) ]; _ } -> ()
  | _ -> Alcotest.fail "quote escaping");
  let fails s =
    match Xdb_sql.Parser.parse s with
    | exception Xdb_sql.Parser.Parse_error _ -> true
    | _ -> false
  in
  check cb "missing FROM" true (fails "SELECT 1");
  check cb "trailing garbage" true (fails "SELECT a FROM t extra tokens here")

let test_parser_dml () =
  (match Xdb_sql.Parser.parse "INSERT INTO t VALUES (1, 'x'), (2, NULL);" with
  | Xdb_sql.Ast.Insert { table = "t"; columns = None; values = [ [ _; _ ]; [ _; _ ] ] } -> ()
  | _ -> Alcotest.fail "multi-row insert shape");
  (match Xdb_sql.Parser.parse "INSERT INTO t (a, b) VALUES (-3, 'y')" with
  | Xdb_sql.Ast.Insert
      { columns = Some [ "a"; "b" ]; values = [ [ Xdb_sql.Ast.Int_lit (-3); _ ] ]; _ } ->
      ()
  | _ -> Alcotest.fail "column-list insert with negative literal");
  (match Xdb_sql.Parser.parse "UPDATE t SET a = a + 1, b = 'z' WHERE a > 0" with
  | Xdb_sql.Ast.Update { table = "t"; sets = [ ("a", _); ("b", _) ]; where = Some _ } -> ()
  | _ -> Alcotest.fail "update shape");
  (match Xdb_sql.Parser.parse "DELETE FROM t" with
  | Xdb_sql.Ast.Delete { table = "t"; where = None } -> ()
  | _ -> Alcotest.fail "delete shape");
  match Xdb_sql.Parser.parse "INSERT INTO t VALUES" with
  | exception Xdb_sql.Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "VALUES without tuples must fail"

let test_tokenizer_comments () =
  match Xdb_sql.Parser.parse "SELECT a -- comment\nFROM t" with
  | Xdb_sql.Ast.Select { from_name = "t"; _ } -> ()
  | _ -> Alcotest.fail "line comment"

(* ------------------------------------------------------------------ *)
(* execution                                                           *)
(* ------------------------------------------------------------------ *)

let test_table_select () =
  let s = make_engine () in
  let r = exec s "SELECT ename, sal FROM emp WHERE sal > 2000" in
  check Alcotest.(list string) "columns" [ "ename"; "sal" ] r.SQL.columns;
  check ci "two rows" 2 (List.length r.SQL.rows);
  (* index got used *)
  check cb "index scan in note" true (contains "INDEX SCAN" (Option.get r.SQL.note))

let test_star_select () =
  let s = make_engine () in
  let r = exec s "SELECT * FROM dept" in
  check Alcotest.(list string) "all columns" [ "deptno"; "dname"; "loc" ] r.SQL.columns;
  check ci "two rows" 2 (List.length r.SQL.rows)

let test_xmltransform_table5 () =
  let s = make_engine () in
  let r = exec s table5_sql in
  check ci "one row per dept" 2 (List.length r.SQL.rows);
  check cb "rewrite engaged" true (contains "XSLT rewrite" (Option.get r.SQL.note));
  let first = V.to_string (List.hd (List.hd r.SQL.rows)) in
  (* paper Table 6 *)
  check cs "Table 6 output"
    "<H1>HIGHLY PAID DEPT EMPLOYEES</H1><H2>Department name: ACCOUNTING</H2><H2>Department location: NEW YORK</H2><H2>Employees Table</H2><table border=\"2\"><td><b>EmpNo</b></td><td><b>Name</b></td><td><b>Weekly Salary</b></td><tr><td>7782</td><td>CLARK</td><td>2450</td></tr></table>"
    first

let test_xmlquery_over_view () =
  let s = make_engine () in
  let r =
    exec s
      {|SELECT XMLQuery('for $e in ./dept/employees/emp[sal > 4000] return <top>{fn:string($e/ename)}</top>'
PASSING dept_emp.dept_content RETURNING CONTENT) FROM dept_emp|}
  in
  check cb "xquery rewrite engaged" true (contains "XQuery rewrite" (Option.get r.SQL.note));
  let outs = List.map (fun row -> V.to_string (List.hd row)) r.SQL.rows in
  check Alcotest.(list string) "per-dept results" [ ""; "<top>SMITH</top>" ] outs

let test_example2_combined () =
  let s = make_engine () in
  (* paper Table 9: wrap the transformation as an XSLT view *)
  let with_alias =
    (* paper Table 9 aliases the item: ... AS xslt_rslt FROM dept_emp *)
    let suffix = "\nFROM dept_emp" in
    let prefix = String.sub table5_sql 0 (String.length table5_sql - String.length suffix) in
    prefix ^ " AS xslt_rslt" ^ suffix
  in
  let create = exec s ("CREATE VIEW xslt_vu AS " ^ with_alias) in
  ignore create;
  (* paper Table 10: query the view result *)
  let r =
    exec s
      {|SELECT XMLQuery('for $tr in ./table/tr return $tr'
PASSING xslt_vu.xslt_rslt RETURNING CONTENT) FROM xslt_vu|}
  in
  check cb "combined optimisation engaged" true
    (contains "combined" (Option.get r.SQL.note));
  let outs = List.map (fun row -> V.to_string (List.hd row)) r.SQL.rows in
  (* paper Table 11's result rows *)
  check Alcotest.(list string) "Table 11 results"
    [
      "<tr><td>7782</td><td>CLARK</td><td>2450</td></tr>";
      "<tr><td>7954</td><td>SMITH</td><td>4900</td></tr>";
    ]
    outs

let test_mixed_items () =
  let s = make_engine () in
  let r =
    exec s
      {|SELECT dname, XMLQuery('fn:string(count(./dept/employees/emp))'
PASSING dept_emp.dept_content RETURNING CONTENT) AS n FROM dept_emp|}
  in
  check Alcotest.(list string) "columns" [ "dname"; "n" ] r.SQL.columns;
  let rows = List.map (List.map V.to_string) r.SQL.rows in
  check Alcotest.(list (list string)) "values"
    [ [ "ACCOUNTING"; "2" ]; [ "OPERATIONS"; "1" ] ]
    rows

let test_errors () =
  let s = make_engine () in
  check cb "unknown relation" true (sql_fails s "SELECT a FROM nope");
  check cb "xml fn over base table" true
    (sql_fails s "SELECT XMLTransform(x, 'y') FROM emp");
  check cb "create view over table" true
    (sql_fails s "CREATE VIEW v AS SELECT ename FROM emp")

let test_analyze_statement () =
  let s = make_engine () in
  let r = exec s "ANALYZE" in
  check Alcotest.(list string) "columns" [ "table_name"; "rows_sampled" ] r.SQL.columns;
  check ci "both tables analyzed" 2 (List.length r.SQL.rows);
  check cb "note reports the stats version" true (contains "stats version" (Option.get r.SQL.note));
  (* single-table form *)
  let r2 = exec s "ANALYZE emp;" in
  (match r2.SQL.rows with
  | [ [ V.Str "emp"; V.Int 3 ] ] -> ()
  | _ -> Alcotest.fail "ANALYZE emp must report 3 sampled rows");
  (* queries keep returning the same rows once stats are collected *)
  let r3 = exec s "SELECT ename, sal FROM emp WHERE sal > 2000" in
  check ci "two rows after ANALYZE" 2 (List.length r3.SQL.rows);
  check cb "index still used" true (contains "INDEX SCAN" (Option.get r3.SQL.note));
  check cb "ANALYZE of an unknown table must raise" true (sql_fails s "ANALYZE ghost")

(* ------------------------------------------------------------------ *)
(* DML                                                                 *)
(* ------------------------------------------------------------------ *)

let affected r =
  match r.SQL.rows with
  | [ [ V.Int n ] ] -> n
  | _ -> Alcotest.fail "DML result must be one rows_affected row"

let count_rows s table =
  List.length (exec s (Printf.sprintf "SELECT * FROM %s" table)).SQL.rows

let data_version s table = Xdb_rel.Database.data_version (EN.database s) table

let test_insert () =
  let s = make_engine () in
  let v0 = data_version s "emp" in
  let r =
    exec s
      "INSERT INTO emp VALUES (8001, 'ADAMS', 3100, 40), (8002, 'BAKER', 900, 10)"
  in
  check ci "two rows inserted" 2 (affected r);
  check ci "version bumped once per statement" (v0 + 1) (data_version s "emp");
  check ci "five emp rows" 5 (count_rows s "emp");
  (* the new high-salary row is found through the sal B-tree index *)
  let r2 = exec s "SELECT ename FROM emp WHERE sal > 3000" in
  check cb "index scan" true (contains "INDEX SCAN" (Option.get r2.SQL.note));
  check ci "ADAMS joins SMITH" 2 (List.length r2.SQL.rows);
  (* column-list form with defaults filled as NULL *)
  let r3 = exec s "INSERT INTO emp (empno, ename, sal, deptno) VALUES (8003, 'COLE', 1, 10)" in
  check ci "one row" 1 (affected r3);
  check cb "note reports the data version" true (contains "data version" (Option.get r3.SQL.note))

let test_update_with_index () =
  let s = make_engine () in
  let r = exec s "UPDATE emp SET sal = sal + 1000 WHERE deptno = 10" in
  check ci "two rows updated" 2 (affected r);
  (* the index must see the new keys: MILLER moved from 1300 to 2300 *)
  let r2 = exec s "SELECT ename, sal FROM emp WHERE sal > 2000" in
  check cb "index scan" true (contains "INDEX SCAN" (Option.get r2.SQL.note));
  check ci "all three qualify now" 3 (List.length r2.SQL.rows);
  (* ... and no stale key remains under the old value *)
  let r3 = exec s "SELECT ename FROM emp WHERE sal = 1300" in
  check ci "old key gone" 0 (List.length r3.SQL.rows)

let test_delete_with_index () =
  let s = make_engine () in
  let v0 = data_version s "emp" in
  let r = exec s "DELETE FROM emp WHERE sal > 2000" in
  check ci "two rows deleted" 2 (affected r);
  check ci "version bumped" (v0 + 1) (data_version s "emp");
  check ci "one row left" 1 (count_rows s "emp");
  (* the index was rebuilt over the compacted heap *)
  let r2 = exec s "SELECT ename FROM emp WHERE sal > 1000" in
  check cb "index scan" true (contains "INDEX SCAN" (Option.get r2.SQL.note));
  (match List.map (List.map V.to_string) r2.SQL.rows with
  | [ [ "MILLER" ] ] -> ()
  | _ -> Alcotest.fail "only MILLER survives");
  (* empty-match delete: no version movement *)
  let v1 = data_version s "emp" in
  check ci "no-op delete" 0 (affected (exec s "DELETE FROM emp WHERE sal > 99999"));
  check ci "version unchanged on no-op" v1 (data_version s "emp")

let test_dml_atomicity () =
  let s = make_engine () in
  let v0 = data_version s "emp" in
  let before = (exec s "SELECT * FROM emp").SQL.rows in
  (* third row's type is wrong: nothing may be inserted *)
  check cb "typed insert fails" true
    (sql_fails s "INSERT INTO emp VALUES (1, 'A', 1, 10), (2, 'B', 2, 10), (3, 'C', 'x', 10)");
  (* update hits a type mismatch mid-set: nothing may change *)
  check cb "typed update fails" true (sql_fails s "UPDATE emp SET sal = 'nope'");
  check cb "unknown column" true (sql_fails s "UPDATE emp SET ghost = 1");
  check cb "arity mismatch" true (sql_fails s "INSERT INTO emp VALUES (1, 'A')");
  check cb "non-constant insert value" true
    (sql_fails s "INSERT INTO emp VALUES (1, ename, 1, 10)");
  check Alcotest.(list (list string)) "rows untouched"
    (List.map (List.map V.to_string) before)
    (List.map (List.map V.to_string) (exec s "SELECT * FROM emp").SQL.rows);
  check ci "data version untouched" v0 (data_version s "emp")

let test_dml_marks_stats_stale () =
  let s = make_engine () in
  let db = EN.database s in
  ignore (exec s "ANALYZE emp");
  check cb "fresh after ANALYZE" false (Xdb_rel.Database.stats_stale db "emp");
  let sv = Xdb_rel.Database.stats_version db in
  ignore (exec s "INSERT INTO emp VALUES (9101, 'NEW', 50, 10)");
  check cb "stale after DML" true (Xdb_rel.Database.stats_stale db "emp");
  check ci "stats version does NOT move on DML" sv (Xdb_rel.Database.stats_version db);
  ignore (exec s "ANALYZE emp");
  check cb "fresh again" false (Xdb_rel.Database.stats_stale db "emp")

(* every DML write must be visible to the very next transform, cached or
   not — and cached output must stay byte-identical to a recompute *)
let test_dml_transform_visibility () =
  let s = make_engine () in
  (* compare rendered bytes: XMLType rows carry node forests whose parent
     links make structural compare unusable *)
  let transform () =
    List.map (List.map V.to_string) (EN.execute s table5_sql).SQL.rows
  in
  let before = transform () in
  ignore (exec s "UPDATE emp SET sal = 2451 WHERE ename = 'CLARK'");
  let after = transform () in
  check cb "update visible through XMLTransform" true (before <> after);
  check cb "new salary rendered" true (contains "2451" (List.hd (List.hd after)))

(* random DML interleaving: Engine.transform with the cache on must equal
   a forced recompute after every statement *)
let prop_dml_cache_consistency =
  let stmt_gen =
    QCheck.Gen.(
      frequency
        [
          ( 3,
            map2
              (fun empno sal ->
                Printf.sprintf "INSERT INTO emp VALUES (%d, 'E%d', %d, %d)" empno empno sal
                  (if empno mod 2 = 0 then 10 else 40))
              (int_range 8000 8999) (int_range 100 5000) );
          ( 3,
            map2
              (fun sal cut -> Printf.sprintf "UPDATE emp SET sal = %d WHERE sal > %d" sal cut)
              (int_range 100 5000) (int_range 0 5000) );
          (2, map (fun cut -> Printf.sprintf "DELETE FROM emp WHERE sal < %d" cut) (int_range 0 3000));
          (1, return "ANALYZE emp");
        ])
  in
  let ss =
    {|<?xml version="1.0"?><xsl:stylesheet version="1.0"
xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
<xsl:template match="dept"><d><xsl:apply-templates/></d></xsl:template>
<xsl:template match="dname"><n><xsl:value-of select="."/></n></xsl:template>
<xsl:template match="loc"/>
<xsl:template match="employees"><xsl:apply-templates select="emp[sal &gt; 1000]"/></xsl:template>
<xsl:template match="emp"><e><xsl:value-of select="ename"/>:<xsl:value-of select="sal"/></e></xsl:template>
<xsl:template match="text()"/>
</xsl:stylesheet>|}
  in
  QCheck.Test.make ~name:"DML interleaving keeps cached = recomputed" ~count:25
    QCheck.(list_of_size Gen.(int_range 1 8) (make stmt_gen))
    (fun stmts ->
      let s = make_engine () in
      let cached () =
        (EN.transform s ~view_name:"dept_emp" ~stylesheet:ss).EN.output
      in
      let recomputed () =
        (EN.transform
           ~options:{ EN.default_run_options with EN.result_cache = false }
           s ~view_name:"dept_emp" ~stylesheet:ss)
          .EN.output
      in
      ignore (cached ());
      List.for_all
        (fun stmt ->
          ignore (EN.execute s stmt);
          cached () = recomputed () && cached () = recomputed ())
        stmts)

(* fuzz: the SQL parser must be total over printable garbage *)
let prop_sql_parser_total =
  QCheck.Test.make ~name:"sql parser is total" ~count:300
    QCheck.(string_gen_of_size Gen.(int_bound 60) Gen.printable)
    (fun s ->
      match Xdb_sql.Parser.parse s with
      | _ -> true
      | exception Xdb_sql.Parser.Parse_error _ -> true)

let () =
  Alcotest.run "sql"
    [
      ( "parser",
        [
          Alcotest.test_case "statements" `Quick test_parser;
          Alcotest.test_case "DML statements" `Quick test_parser_dml;
          Alcotest.test_case "comments" `Quick test_tokenizer_comments;
        ] );
      ( "execution",
        [
          Alcotest.test_case "table select + index" `Quick test_table_select;
          Alcotest.test_case "star" `Quick test_star_select;
          Alcotest.test_case "paper Table 5 (XMLTransform)" `Quick test_xmltransform_table5;
          Alcotest.test_case "XMLQuery over view" `Quick test_xmlquery_over_view;
          Alcotest.test_case "paper Tables 9-11 (combined)" `Quick test_example2_combined;
          Alcotest.test_case "mixed select items" `Quick test_mixed_items;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "ANALYZE statement" `Quick test_analyze_statement;
        ] );
      ( "dml",
        [
          Alcotest.test_case "INSERT" `Quick test_insert;
          Alcotest.test_case "UPDATE maintains indexes" `Quick test_update_with_index;
          Alcotest.test_case "DELETE rebuilds indexes" `Quick test_delete_with_index;
          Alcotest.test_case "failed statements are atomic" `Quick test_dml_atomicity;
          Alcotest.test_case "DML marks stats stale" `Quick test_dml_marks_stats_stale;
          Alcotest.test_case "writes visible through transforms" `Quick
            test_dml_transform_visibility;
        ] );
      ( "fuzz",
        [
          QCheck_alcotest.to_alcotest prop_sql_parser_total;
          QCheck_alcotest.to_alcotest prop_dml_cache_consistency;
        ] );
    ]
