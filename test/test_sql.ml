(* Tests for xdb_sql: the SQL/XML surface running the paper's statements. *)

module V = Xdb_rel.Value
module P = Xdb_rel.Publish
module T = Xdb_rel.Table
module A = Xdb_rel.Algebra
module SQL = Xdb_sql.Engine

let check = Alcotest.check
let cs = Alcotest.string
let cb = Alcotest.bool
let ci = Alcotest.int

let contains sub s =
  let rec go i =
    i + String.length sub <= String.length s
    && (String.sub s i (String.length sub) = sub || go (i + 1))
  in
  go 0

(* the paper's dept/emp schema, tables 1-3 *)
let make_session () =
  let db = Xdb_rel.Database.create () in
  let dept =
    Xdb_rel.Database.create_table db "dept"
      [
        { T.col_name = "deptno"; col_type = V.Tint };
        { T.col_name = "dname"; col_type = V.Tstr };
        { T.col_name = "loc"; col_type = V.Tstr };
      ]
  in
  let emp =
    Xdb_rel.Database.create_table db "emp"
      [
        { T.col_name = "empno"; col_type = V.Tint };
        { T.col_name = "ename"; col_type = V.Tstr };
        { T.col_name = "sal"; col_type = V.Tint };
        { T.col_name = "deptno"; col_type = V.Tint };
      ]
  in
  T.insert_values dept [ V.Int 10; V.Str "ACCOUNTING"; V.Str "NEW YORK" ];
  T.insert_values dept [ V.Int 40; V.Str "OPERATIONS"; V.Str "BOSTON" ];
  T.insert_values emp [ V.Int 7782; V.Str "CLARK"; V.Int 2450; V.Int 10 ];
  T.insert_values emp [ V.Int 7934; V.Str "MILLER"; V.Int 1300; V.Int 10 ];
  T.insert_values emp [ V.Int 7954; V.Str "SMITH"; V.Int 4900; V.Int 40 ];
  ignore (T.create_index emp ~name:"emp_sal_idx" ~column:"sal");
  let leaf name col = P.Elem { name; attrs = []; content = [ P.Text_col col ] } in
  let view =
    {
      P.view_name = "dept_emp";
      base_table = "dept";
      base_alias = "dept";
      column = "dept_content";
      spec =
        P.Elem
          {
            name = "dept";
            attrs = [];
            content =
              [
                leaf "dname" "dname";
                leaf "loc" "loc";
                P.Elem
                  {
                    name = "employees";
                    attrs = [];
                    content =
                      [
                        P.Agg
                          {
                            table = "emp";
                            alias = "emp";
                            correlate = [ ("deptno", "deptno") ];
                            where = None;
                            order_by = [ ("empno", A.Asc) ];
                            body =
                              P.Elem
                                {
                                  name = "emp";
                                  attrs = [];
                                  content =
                                    [ leaf "empno" "empno"; leaf "ename" "ename"; leaf "sal" "sal" ];
                                };
                          };
                      ];
                  };
              ];
          };
    }
  in
  SQL.make_session ~views:[ view ] db

(* paper Table 5, quoted for SQL ('' escapes) *)
let table5_sql =
  {|SELECT
XMLTransform(dept_emp.dept_content,
'<?xml version="1.0"?><xsl:stylesheet version="1.0"
xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
<xsl:template match="dept">
<H1>HIGHLY PAID DEPT EMPLOYEES</H1>
<xsl:apply-templates/>
</xsl:template>
<xsl:template match="dname">
<H2>Department name: <xsl:value-of select="."/></H2>
</xsl:template>
<xsl:template match="loc">
<H2>Department location: <xsl:value-of select="."/></H2>
</xsl:template>
<xsl:template match="employees">
<H2>Employees Table</H2>
<table border="2">
<td><b>EmpNo</b></td>
<td><b>Name</b></td>
<td><b>Weekly Salary</b></td>
<xsl:apply-templates select="emp[sal &gt; 2000]"/>
</table>
</xsl:template>
<xsl:template match = "emp">
<tr>
<td><xsl:value-of select="empno"/></td>
<td><xsl:value-of select="ename"/></td>
<td><xsl:value-of select="sal"/></td>
</tr>
</xsl:template>
<xsl:template match="text()">
<xsl:value-of select="."/>
</xsl:template>
</xsl:stylesheet>')
FROM dept_emp|}

(* ------------------------------------------------------------------ *)
(* parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parser () =
  (match Xdb_sql.Parser.parse "SELECT a, t.b AS x FROM t WHERE a > 3;" with
  | Xdb_sql.Ast.Select { items = [ _; _ ]; from_name = "t"; where = Some _; _ } -> ()
  | _ -> Alcotest.fail "basic select shape");
  (match Xdb_sql.Parser.parse "select * from emp" with
  | Xdb_sql.Ast.Select { items = [ (Xdb_sql.Ast.Star, None) ]; _ } -> ()
  | _ -> Alcotest.fail "star select");
  (* string escaping: '' inside strings *)
  (match Xdb_sql.Parser.parse "SELECT 'it''s' FROM t" with
  | Xdb_sql.Ast.Select { items = [ (Xdb_sql.Ast.Str_lit "it's", None) ]; _ } -> ()
  | _ -> Alcotest.fail "quote escaping");
  let fails s =
    match Xdb_sql.Parser.parse s with
    | exception Xdb_sql.Parser.Parse_error _ -> true
    | _ -> false
  in
  check cb "missing FROM" true (fails "SELECT 1");
  check cb "trailing garbage" true (fails "SELECT a FROM t extra tokens here")

let test_tokenizer_comments () =
  match Xdb_sql.Parser.parse "SELECT a -- comment\nFROM t" with
  | Xdb_sql.Ast.Select { from_name = "t"; _ } -> ()
  | _ -> Alcotest.fail "line comment"

(* ------------------------------------------------------------------ *)
(* execution                                                           *)
(* ------------------------------------------------------------------ *)

let test_table_select () =
  let s = make_session () in
  let r = SQL.execute s "SELECT ename, sal FROM emp WHERE sal > 2000" in
  check Alcotest.(list string) "columns" [ "ename"; "sal" ] r.SQL.columns;
  check ci "two rows" 2 (List.length r.SQL.rows);
  (* index got used *)
  check cb "index scan in note" true (contains "INDEX SCAN" (Option.get r.SQL.note))

let test_star_select () =
  let s = make_session () in
  let r = SQL.execute s "SELECT * FROM dept" in
  check Alcotest.(list string) "all columns" [ "deptno"; "dname"; "loc" ] r.SQL.columns;
  check ci "two rows" 2 (List.length r.SQL.rows)

let test_xmltransform_table5 () =
  let s = make_session () in
  let r = SQL.execute s table5_sql in
  check ci "one row per dept" 2 (List.length r.SQL.rows);
  check cb "rewrite engaged" true (contains "XSLT rewrite" (Option.get r.SQL.note));
  let first = V.to_string (List.hd (List.hd r.SQL.rows)) in
  (* paper Table 6 *)
  check cs "Table 6 output"
    "<H1>HIGHLY PAID DEPT EMPLOYEES</H1><H2>Department name: ACCOUNTING</H2><H2>Department location: NEW YORK</H2><H2>Employees Table</H2><table border=\"2\"><td><b>EmpNo</b></td><td><b>Name</b></td><td><b>Weekly Salary</b></td><tr><td>7782</td><td>CLARK</td><td>2450</td></tr></table>"
    first

let test_xmlquery_over_view () =
  let s = make_session () in
  let r =
    SQL.execute s
      {|SELECT XMLQuery('for $e in ./dept/employees/emp[sal > 4000] return <top>{fn:string($e/ename)}</top>'
PASSING dept_emp.dept_content RETURNING CONTENT) FROM dept_emp|}
  in
  check cb "xquery rewrite engaged" true (contains "XQuery rewrite" (Option.get r.SQL.note));
  let outs = List.map (fun row -> V.to_string (List.hd row)) r.SQL.rows in
  check Alcotest.(list string) "per-dept results" [ ""; "<top>SMITH</top>" ] outs

let test_example2_combined () =
  let s = make_session () in
  (* paper Table 9: wrap the transformation as an XSLT view *)
  let with_alias =
    (* paper Table 9 aliases the item: ... AS xslt_rslt FROM dept_emp *)
    let suffix = "\nFROM dept_emp" in
    let prefix = String.sub table5_sql 0 (String.length table5_sql - String.length suffix) in
    prefix ^ " AS xslt_rslt" ^ suffix
  in
  let create = SQL.execute s ("CREATE VIEW xslt_vu AS " ^ with_alias) in
  ignore create;
  (* paper Table 10: query the view result *)
  let r =
    SQL.execute s
      {|SELECT XMLQuery('for $tr in ./table/tr return $tr'
PASSING xslt_vu.xslt_rslt RETURNING CONTENT) FROM xslt_vu|}
  in
  check cb "combined optimisation engaged" true
    (contains "combined" (Option.get r.SQL.note));
  let outs = List.map (fun row -> V.to_string (List.hd row)) r.SQL.rows in
  (* paper Table 11's result rows *)
  check Alcotest.(list string) "Table 11 results"
    [
      "<tr><td>7782</td><td>CLARK</td><td>2450</td></tr>";
      "<tr><td>7954</td><td>SMITH</td><td>4900</td></tr>";
    ]
    outs

let test_mixed_items () =
  let s = make_session () in
  let r =
    SQL.execute s
      {|SELECT dname, XMLQuery('fn:string(count(./dept/employees/emp))'
PASSING dept_emp.dept_content RETURNING CONTENT) AS n FROM dept_emp|}
  in
  check Alcotest.(list string) "columns" [ "dname"; "n" ] r.SQL.columns;
  let rows = List.map (List.map V.to_string) r.SQL.rows in
  check Alcotest.(list (list string)) "values"
    [ [ "ACCOUNTING"; "2" ]; [ "OPERATIONS"; "1" ] ]
    rows

let test_errors () =
  let s = make_session () in
  let fails q = match SQL.execute s q with exception SQL.Sql_error _ -> true | _ -> false in
  check cb "unknown relation" true (fails "SELECT a FROM nope");
  check cb "xml fn over base table" true
    (fails "SELECT XMLTransform(x, 'y') FROM emp");
  check cb "create view over table" true
    (fails "CREATE VIEW v AS SELECT ename FROM emp")

let test_analyze_statement () =
  let s = make_session () in
  let r = SQL.execute s "ANALYZE" in
  check Alcotest.(list string) "columns" [ "table_name"; "rows_sampled" ] r.SQL.columns;
  check ci "both tables analyzed" 2 (List.length r.SQL.rows);
  check cb "note reports the stats version" true (contains "stats version" (Option.get r.SQL.note));
  (* single-table form *)
  let r2 = SQL.execute s "ANALYZE emp;" in
  (match r2.SQL.rows with
  | [ [ V.Str "emp"; V.Int 3 ] ] -> ()
  | _ -> Alcotest.fail "ANALYZE emp must report 3 sampled rows");
  (* queries keep returning the same rows once stats are collected *)
  let r3 = SQL.execute s "SELECT ename, sal FROM emp WHERE sal > 2000" in
  check ci "two rows after ANALYZE" 2 (List.length r3.SQL.rows);
  check cb "index still used" true (contains "INDEX SCAN" (Option.get r3.SQL.note));
  match SQL.execute s "ANALYZE ghost" with
  | exception SQL.Sql_error _ -> ()
  | _ -> Alcotest.fail "ANALYZE of an unknown table must raise"

(* fuzz: the SQL parser must be total over printable garbage *)
let prop_sql_parser_total =
  QCheck.Test.make ~name:"sql parser is total" ~count:300
    QCheck.(string_gen_of_size Gen.(int_bound 60) Gen.printable)
    (fun s ->
      match Xdb_sql.Parser.parse s with
      | _ -> true
      | exception Xdb_sql.Parser.Parse_error _ -> true)

let () =
  Alcotest.run "sql"
    [
      ( "parser",
        [
          Alcotest.test_case "statements" `Quick test_parser;
          Alcotest.test_case "comments" `Quick test_tokenizer_comments;
        ] );
      ( "execution",
        [
          Alcotest.test_case "table select + index" `Quick test_table_select;
          Alcotest.test_case "star" `Quick test_star_select;
          Alcotest.test_case "paper Table 5 (XMLTransform)" `Quick test_xmltransform_table5;
          Alcotest.test_case "XMLQuery over view" `Quick test_xmlquery_over_view;
          Alcotest.test_case "paper Tables 9-11 (combined)" `Quick test_example2_combined;
          Alcotest.test_case "mixed select items" `Quick test_mixed_items;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "ANALYZE statement" `Quick test_analyze_statement;
        ] );
      ("fuzz", [ QCheck_alcotest.to_alcotest prop_sql_parser_total ]);
    ]
