(* Tests for xdb_schema: structural info model, DTD-lite, sample docs,
   inference. *)

module S = Xdb_schema.Types
module D = Xdb_schema.Dtd
module Sam = Xdb_schema.Sample
module I = Xdb_schema.Infer
module X = Xdb_xml.Types

let check = Alcotest.check
let cs = Alcotest.string
let cb = Alcotest.bool
let ci = Alcotest.int

(* ------------------------------------------------------------------ *)
(* model                                                               *)
(* ------------------------------------------------------------------ *)

let dept_schema =
  S.make ~root:"dept"
    [
      S.node "dept" [ S.particle "dname"; S.particle "loc"; S.particle "employees" ];
      S.node "employees" [ S.particle ~occurs:S.many "emp" ];
      S.node "emp" [ S.particle "empno"; S.particle "ename"; S.particle "sal" ];
      S.leaf "dname";
      S.leaf "loc";
      S.leaf "empno";
      S.leaf "ename";
      S.leaf "sal";
    ]

let test_make_validates () =
  (match S.make ~root:"missing" [ S.leaf "a" ] with
  | exception S.Schema_error _ -> ()
  | _ -> Alcotest.fail "missing root must be rejected");
  match S.make ~root:"a" [ S.node "a" [ S.particle "ghost" ] ] with
  | exception S.Schema_error _ -> ()
  | _ -> Alcotest.fail "dangling particle must be rejected"

let test_occurs () =
  check cb "one is at most one" true (S.at_most_one S.exactly_one);
  check cb "optional is at most one" true (S.at_most_one S.optional);
  check cb "many is not" false (S.at_most_one S.many);
  check cs "occurs names" "one" (S.occurs_name S.exactly_one);
  check cs "many name" "many" (S.occurs_name S.many)

let test_recursion_detection () =
  check cb "dept not recursive" false (S.is_recursive dept_schema);
  let tree =
    S.make ~root:"tree"
      [
        S.node "tree" [ S.particle "node" ];
        S.node "node" [ S.particle "label"; S.particle ~occurs:S.many "node" ];
        S.leaf "label";
      ]
  in
  check cb "tree recursive" true (S.is_recursive tree);
  check Alcotest.(list string) "cycle members" [ "node" ] (S.recursive_names tree);
  let mutual =
    S.make ~root:"a"
      [
        S.node "a" [ S.particle ~occurs:S.optional "b" ];
        S.node "b" [ S.particle ~occurs:S.optional "a" ];
      ]
  in
  check ci "mutual cycle" 2 (List.length (S.recursive_names mutual))

(* ------------------------------------------------------------------ *)
(* DTD-lite                                                            *)
(* ------------------------------------------------------------------ *)

let test_dtd_parse () =
  let schema =
    D.parse
      {|<!ELEMENT dept (dname, loc?, employees)>
<!ELEMENT employees (emp*)>
<!ELEMENT emp (empno, ename, sal)>
<!ELEMENT dname (#PCDATA)>
<!ELEMENT loc (#PCDATA)>
<!ELEMENT empno (#PCDATA)>
<!ELEMENT ename (#PCDATA)>
<!ELEMENT sal (#PCDATA)>
<!ATTLIST emp id CDATA #REQUIRED>|}
  in
  check cs "root is first" "dept" schema.S.root;
  let dept = S.find_exn schema "dept" in
  check ci "three particles" 3 (List.length dept.S.particles);
  let loc_p = List.nth dept.S.particles 1 in
  check cs "loc optional" "optional" (S.occurs_name loc_p.S.occurs);
  let employees = S.find_exn schema "employees" in
  check cs "emp many" "many" (S.occurs_name (List.hd employees.S.particles).S.occurs);
  let dname = S.find_exn schema "dname" in
  check cb "pcdata leaf" true dname.S.has_text;
  let emp = S.find_exn schema "emp" in
  check Alcotest.(list string) "attlist" [ "id" ] emp.S.attrs

let test_dtd_choice () =
  let schema =
    D.parse
      {|<!ELEMENT pick (a | b | c)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>
<!ELEMENT c (#PCDATA)>|}
  in
  check cb "choice group" true ((S.find_exn schema "pick").S.group = S.Choice)

let test_dtd_empty_any () =
  let schema = D.parse {|<!ELEMENT wrap (leaf)>
<!ELEMENT leaf EMPTY>|} in
  let leaf = S.find_exn schema "leaf" in
  check cb "EMPTY has no text" false leaf.S.has_text;
  check ci "EMPTY no children" 0 (List.length leaf.S.particles)

let test_dtd_errors () =
  (match D.parse "no declarations" with
  | exception D.Dtd_error _ -> ()
  | _ -> Alcotest.fail "expected Dtd_error");
  match D.parse "<!ELEMENT a (b, c | d)>" with
  | exception D.Dtd_error _ -> ()
  | _ -> Alcotest.fail "mixed separators must be rejected"

(* ------------------------------------------------------------------ *)
(* XSD subset                                                          *)
(* ------------------------------------------------------------------ *)

let dept_xsd =
  {|<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="dept">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="dname" type="xs:string"/>
        <xs:element name="loc" type="xs:string" minOccurs="0"/>
        <xs:element name="employees">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="emp" type="EmpType" minOccurs="0" maxOccurs="unbounded"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
      <xs:attribute name="id"/>
    </xs:complexType>
  </xs:element>
  <xs:complexType name="EmpType">
    <xs:sequence>
      <xs:element name="empno" type="xs:int"/>
      <xs:element name="ename" type="xs:string"/>
      <xs:element name="sal" type="xs:int"/>
    </xs:sequence>
  </xs:complexType>
</xs:schema>|}

let test_xsd_parse () =
  let schema = Xdb_schema.Xsd.parse dept_xsd in
  check cs "root" "dept" schema.S.root;
  let dept = S.find_exn schema "dept" in
  check ci "three particles" 3 (List.length dept.S.particles);
  check Alcotest.(list string) "attributes" [ "id" ] dept.S.attrs;
  let loc = List.nth dept.S.particles 1 in
  check cs "loc optional" "optional" (S.occurs_name loc.S.occurs);
  let employees = S.find_exn schema "employees" in
  check cs "emp unbounded" "many" (S.occurs_name (List.hd employees.S.particles).S.occurs);
  (* named type resolved *)
  let emp = S.find_exn schema "emp" in
  check ci "EmpType children" 3 (List.length emp.S.particles);
  check cb "leaf text" true (S.find_exn schema "dname").S.has_text

let test_xsd_choice_all () =
  let schema =
    Xdb_schema.Xsd.parse
      {|<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
<xs:element name="pick"><xs:complexType><xs:choice>
<xs:element name="a" type="xs:string"/>
<xs:element name="b" type="xs:string"/>
</xs:choice></xs:complexType></xs:element>
</xs:schema>|}
  in
  check cb "choice group" true ((S.find_exn schema "pick").S.group = S.Choice)

let test_xsd_recursive () =
  let schema =
    Xdb_schema.Xsd.parse
      {|<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
<xs:element name="tree"><xs:complexType><xs:sequence>
<xs:element ref="node"/>
</xs:sequence></xs:complexType></xs:element>
<xs:element name="node"><xs:complexType><xs:sequence>
<xs:element name="label" type="xs:string"/>
<xs:element ref="node" minOccurs="0" maxOccurs="unbounded"/>
</xs:sequence></xs:complexType></xs:element>
</xs:schema>|}
  in
  check cb "recursion detected" true (S.is_recursive schema)

let test_xsd_errors () =
  let fails s = match Xdb_schema.Xsd.parse s with exception Xdb_schema.Xsd.Xsd_error _ -> true | _ -> false in
  check cb "non-schema root" true (fails "<not-a-schema/>");
  check cb "dangling ref" true
    (fails
       {|<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
<xs:element name="a"><xs:complexType><xs:sequence><xs:element ref="ghost"/></xs:sequence></xs:complexType></xs:element>
</xs:schema>|})

let test_xsd_drives_translation () =
  (* the XSD feeds partial evaluation exactly like the publishing view *)
  let schema = Xdb_schema.Xsd.parse dept_xsd in
  let prog =
    Xdb_xslt.Compile.compile
      (Xdb_xslt.Parser.parse
         {|<?xml version="1.0"?><xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
<xsl:template match="dept"><out><xsl:apply-templates select="employees/emp"/></out></xsl:template>
<xsl:template match="emp"><e><xsl:value-of select="ename"/></e></xsl:template>
<xsl:template match="text()"/>
</xsl:stylesheet>|})
  in
  let result = Xdb_core.Xslt2xquery.translate prog ~schema in
  check cb "inline from XSD info" true
    (result.Xdb_core.Xslt2xquery.mode = Xdb_core.Xslt2xquery.Mode_inline)

(* ------------------------------------------------------------------ *)
(* sample documents                                                    *)
(* ------------------------------------------------------------------ *)

let test_sample_generation () =
  let doc = Sam.generate dept_schema in
  let root = Xdb_xml.Parser.document_element doc in
  check cs "root element" "dept" (X.local_name root);
  check ci "three children" 3 (List.length root.X.children);
  let employees = List.nth root.X.children 2 in
  let emp = List.hd employees.X.children in
  check cs "emp occurs annotation" "many" (Option.get (X.attribute ~uri:X.xdb_uri emp "occurs"));
  check cs "group annotation" "sequence" (Option.get (X.attribute ~uri:X.xdb_uri emp "group"));
  check cb "occurs readback" false (S.at_most_one (Sam.occurs_of_element emp));
  let dname = List.hd root.X.children in
  check cb "placeholder text" true (X.string_value dname <> "")

let test_sample_recursive () =
  let tree =
    S.make ~root:"tree"
      [
        S.node "tree" [ S.particle "node" ];
        S.node "node" [ S.particle "label"; S.particle ~occurs:S.many "node" ];
        S.leaf "label";
      ]
  in
  let doc = Sam.generate tree in
  let root = Xdb_xml.Parser.document_element doc in
  let level1 = List.hd root.X.children in
  check cb "level1 expanded" true (List.length level1.X.children > 0);
  let level2 = List.nth level1.X.children 1 in
  check cb "repeat marked recursive" true (Sam.is_recursive_element level2);
  check ci "repeat not expanded" 0 (List.length level2.X.children)

(* ------------------------------------------------------------------ *)
(* inference                                                           *)
(* ------------------------------------------------------------------ *)

let test_infer_basic () =
  let doc =
    Xdb_xml.Parser.parse
      "<t><r><a>1</a><b>2</b></r><r><a>3</a><b>4</b></r><r><a>5</a></r></t>"
  in
  let schema = I.infer [ doc ] in
  check cs "root" "t" schema.S.root;
  let t = S.find_exn schema "t" in
  check cs "r many" "one-or-more" (S.occurs_name (List.hd t.S.particles).S.occurs);
  let r = S.find_exn schema "r" in
  check ci "two children" 2 (List.length r.S.particles);
  let b = List.nth r.S.particles 1 in
  check cs "b optional (absent once)" "optional" (S.occurs_name b.S.occurs);
  check cb "a leaf has text" true (S.find_exn schema "a").S.has_text

let test_infer_unordered () =
  let doc = Xdb_xml.Parser.parse "<t><r><a/><b/></r><r><b/><a/></r></t>" in
  let schema = I.infer [ doc ] in
  check cb "order violation -> All group" true ((S.find_exn schema "r").S.group = S.All)

let test_infer_attributes () =
  let doc = Xdb_xml.Parser.parse "<t><r id=\"1\" x=\"y\"/></t>" in
  let schema = I.infer [ doc ] in
  check Alcotest.(list string) "attrs recorded" [ "id"; "x" ] (S.find_exn schema "r").S.attrs

let test_infer_matches_sample_roundtrip () =
  let doc = Sam.generate dept_schema in
  let inferred = I.infer [ doc ] in
  check cs "root survives" "dept" inferred.S.root;
  let emp = S.find_exn inferred "emp" in
  check ci "emp children survive" 3 (List.length emp.S.particles)

let () =
  Alcotest.run "schema"
    [
      ( "model",
        [
          Alcotest.test_case "validation" `Quick test_make_validates;
          Alcotest.test_case "occurs" `Quick test_occurs;
          Alcotest.test_case "recursion detection" `Quick test_recursion_detection;
        ] );
      ( "dtd",
        [
          Alcotest.test_case "parse" `Quick test_dtd_parse;
          Alcotest.test_case "choice" `Quick test_dtd_choice;
          Alcotest.test_case "EMPTY/ANY" `Quick test_dtd_empty_any;
          Alcotest.test_case "errors" `Quick test_dtd_errors;
        ] );
      ( "xsd",
        [
          Alcotest.test_case "parse" `Quick test_xsd_parse;
          Alcotest.test_case "choice/all" `Quick test_xsd_choice_all;
          Alcotest.test_case "recursion" `Quick test_xsd_recursive;
          Alcotest.test_case "errors" `Quick test_xsd_errors;
          Alcotest.test_case "drives translation" `Quick test_xsd_drives_translation;
        ] );
      ( "sample",
        [
          Alcotest.test_case "generation" `Quick test_sample_generation;
          Alcotest.test_case "recursive marking" `Quick test_sample_recursive;
        ] );
      ( "infer",
        [
          Alcotest.test_case "basic" `Quick test_infer_basic;
          Alcotest.test_case "unordered" `Quick test_infer_unordered;
          Alcotest.test_case "attributes" `Quick test_infer_attributes;
          Alcotest.test_case "sample roundtrip" `Quick test_infer_matches_sample_roundtrip;
        ] );
    ]
