(* Differential test suite over all XSLTMark-style cases.

   For every case: the functional XSLTVM output must equal the output of
   the generated XQuery (dynamic evaluation); for database-capable cases
   the SQL/XML plan's output must also match; the translation mode must be
   the expected one; and the paper's 23/40 inline statistic must hold
   exactly. *)

module M = Xdb_xsltmark.Cases
module D = Xdb_xsltmark.Data
module PL = Xdb_core.Pipeline
module GEN = Xdb_core.Xslt2xquery

let check = Alcotest.check
let cb = Alcotest.bool
let cs = Alcotest.string
let ci = Alcotest.int

let size = 120

let is_inline = function
  | GEN.Mode_inline | GEN.Mode_builtin_compact -> true
  | GEN.Mode_partial_inline | GEN.Mode_functions -> false

let doc_case (c : M.case) () =
  let c = if c.M.name = "dbonerow" then M.dbonerow_for size else c in
  let doc = M.doc_for c size in
  let dc = PL.compile_for_document c.M.stylesheet ~example_doc:doc in
  let functional = PL.transform_functional dc doc in
  let via_xquery = PL.transform_via_xquery dc doc in
  check cs "functional = generated XQuery" functional via_xquery;
  check cb
    (Printf.sprintf "expected inline=%b" c.M.expect_inline)
    c.M.expect_inline
    (is_inline dc.PL.d_translation.GEN.mode);
  (* straightforward translation must agree too (it shares no structural
     information with the optimised path) *)
  let sf = GEN.translate_straightforward dc.PL.d_prog ~schema:dc.PL.d_schema in
  let sf_out =
    Xdb_xml.Serializer.node_list_to_string
      (Xdb_xquery.Eval.run_to_nodes sf.GEN.query ~context:doc)
  in
  check cs "functional = straightforward [9]" functional sf_out

let db_case (c : M.case) () =
  let c = if c.M.name = "dbonerow" then M.dbonerow_for size else c in
  let dv = M.dbview_for c size in
  let comp = PL.compile dv.D.db dv.D.view c.M.stylesheet in
  let f = PL.run_functional dv.D.db comp in
  let r = PL.run_rewrite dv.D.db comp in
  check Alcotest.(list string) "functional = rewrite (DB)" f r;
  check cb "SQL plan produced" true (comp.PL.sql_plan <> None)

(* golden streaming differential: result construction through output
   events must be byte-identical to the DOM path on every case — the
   XQuery serializer for all cases, and the SQL/XML rewrite with
   streaming on vs off for the db-capable ones *)
let streaming_case (c : M.case) () =
  let c = if c.M.name = "dbonerow" then M.dbonerow_for size else c in
  let doc = M.doc_for c size in
  let dc = PL.compile_for_document c.M.stylesheet ~example_doc:doc in
  let q = dc.PL.d_translation.GEN.query in
  let dom =
    Xdb_xml.Serializer.node_list_to_string (Xdb_xquery.Eval.run_to_nodes q ~context:doc)
  in
  let streamed = Xdb_xquery.Eval.run_serialized q ~context:doc in
  check cs "streamed XQuery = DOM XQuery" dom streamed;
  if c.M.db_capable then begin
    let dv = M.dbview_for c size in
    let comp = PL.compile dv.D.db dv.D.view c.M.stylesheet in
    let off = PL.run_rewrite ~streaming:false dv.D.db comp in
    let on = PL.run_rewrite ~streaming:true dv.D.db comp in
    check Alcotest.(list string) "rewrite streaming on = off" off on
  end

let inline_statistic () =
  let inline =
    List.filter
      (fun (c : M.case) ->
        let doc = M.doc_for c 60 in
        let dc = PL.compile_for_document c.M.stylesheet ~example_doc:doc in
        is_inline dc.PL.d_translation.GEN.mode)
      M.all
  in
  check ci "paper statistic: 23 of 40 inline" 23 (List.length inline);
  check ci "suite has exactly 40 cases" 40 (List.length M.all)

(* ------------------------------------------------------------------ *)
(* Random-stylesheet equivalence property                               *)
(*                                                                      *)
(* Build a random (but deterministic per seed) stylesheet over the      *)
(* records shape and require: functional VM output = optimised-XQuery   *)
(* output = straightforward-translation output = SQL-plan output (when  *)
(* the plan exists).                                                    *)
(* ------------------------------------------------------------------ *)

let random_stylesheet seed =
  let rand = D.lcg seed in
  let pick a = a.(rand (Array.length a)) in
  let col () = pick [| "id"; "name"; "value"; "category" |] in
  let pred () =
    match rand 4 with
    | 0 -> ""
    | 1 -> Printf.sprintf "[value &gt; %d]" (rand 9000)
    | 2 -> Printf.sprintf "[id = %d]" (1 + rand 60)
    | _ -> Printf.sprintf "[category = '%s']" (pick [| "A"; "B"; "C" |])
  in
  let sort () =
    match rand 3 with
    | 0 -> ""
    | 1 -> {|<xsl:sort select="name"/>|}
    | _ -> {|<xsl:sort select="value" data-type="number" order="descending"/>|}
  in
  let piece () =
    match rand 6 with
    | 0 -> Printf.sprintf {|<v><xsl:value-of select="%s"/></v>|} (col ())
    | 1 -> Printf.sprintf {|<w a="{%s}"/>|} (col ())
    | 2 ->
        Printf.sprintf
          {|<xsl:if test="value &gt; %d"><big><xsl:value-of select="id"/></big></xsl:if>|}
          (rand 9000)
    | 3 ->
        Printf.sprintf
          {|<xsl:choose><xsl:when test="value &gt; %d"><hi/></xsl:when><xsl:otherwise><lo><xsl:value-of select="%s"/></lo></xsl:otherwise></xsl:choose>|}
          (rand 9000) (col ())
    | 4 -> Printf.sprintf {|<xsl:element name="e%d"><xsl:value-of select="%s"/></xsl:element>|} (rand 3) (col ())
    | _ -> "<sep/>"
  in
  let row_body = String.concat "" (List.init (1 + rand 3) (fun _ -> piece ())) in
  let decoys =
    String.concat ""
      (List.init (rand 3) (fun i ->
           Printf.sprintf {|<xsl:template match="ghost%d"><never/></xsl:template>|} i))
  in
  Printf.sprintf
    {|<?xml version="1.0"?>
<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
<xsl:template match="table">
<out><xsl:apply-templates select="row%s">%s</xsl:apply-templates></out>
</xsl:template>
<xsl:template match="row">%s</xsl:template>
%s<xsl:template match="text()"/>
</xsl:stylesheet>|}
    (pred ()) (sort ()) row_body decoys

let prop_random_stylesheets =
  QCheck.Test.make ~name:"random stylesheets: VM = XQuery = straightforward = SQL" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let ss = random_stylesheet seed in
      let n = 60 in
      let dv = D.records_db n in
      let comp = PL.compile dv.D.db dv.D.view ss in
      let functional = PL.run_functional dv.D.db comp in
      let xquery_stage = PL.run_xquery_stage dv.D.db comp in
      let rewrite = PL.run_rewrite dv.D.db comp in
      let doc = List.hd (Xdb_rel.Publish.materialize dv.D.db dv.D.view) in
      let sf =
        GEN.translate_straightforward comp.PL.vm_prog ~schema:comp.PL.schema
      in
      let sf_out =
        [ Xdb_xml.Serializer.node_list_to_string
            (Xdb_xquery.Eval.run_to_nodes sf.GEN.query ~context:doc) ]
      in
      functional = xquery_stage && functional = rewrite && functional = sf_out)

(* the compiled layout/batch executor against the interpreted reference,
   across all five db-capable bench cases, with and without ANALYZE
   statistics (statistics change the chosen plan, not the answer).
   Row-for-row: same cardinality, same value for every column name the
   plan's layout exposes (values compared serialized — XML nodes carry
   parent pointers, so structural equality is out), and identical
   per-operator actual-row counts under instrumentation. *)
let bench_db_case_names = [ "dbonerow"; "avts"; "chart"; "metric"; "total" ]

let prop_compiled_executor_differential =
  QCheck.Test.make ~name:"compiled executor = interpreted reference (db cases)" ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let name = List.nth bench_db_case_names (seed mod 5) in
      let with_stats = seed / 5 mod 2 = 1 in
      let n = 20 + (seed / 10 mod 4 * 35) in
      let c = Option.get (M.find name) in
      let c = if c.M.name = "dbonerow" then M.dbonerow_for n else c in
      let dv = M.dbview_for c n in
      if with_stats then ignore (Xdb_rel.Analyze.all dv.D.db);
      let comp = PL.compile dv.D.db dv.D.view c.M.stylesheet in
      match comp.PL.sql_plan with
      | None -> false (* all five cases are SQL-rewritable *)
      | Some plan ->
          let module E = Xdb_rel.Exec in
          let module L = Xdb_rel.Layout in
          let irows = E.run_interpreted dv.D.db plan in
          let layout, arows = E.run_arrays dv.D.db plan in
          let names = L.names layout in
          let slots =
            List.map (fun nm -> (nm, Option.get (L.slot_opt layout nm))) names
          in
          let rows_same =
            List.length irows = List.length arows
            && List.for_all2
                 (fun ir (ar : Xdb_rel.Value.t array) ->
                   List.for_all
                     (fun (nm, s) ->
                       Xdb_rel.Value.to_string (List.assoc nm ir)
                       = Xdb_rel.Value.to_string ar.(s))
                     slots)
                 irows arows
          in
          let _, st_i = E.run_interpreted_analyzed dv.D.db plan in
          let _, st_c = E.run_arrays_analyzed dv.D.db plan in
          rows_same
          && Xdb_rel.Stats.rows_signature st_i = Xdb_rel.Stats.rows_signature st_c)

let () =
  let all = M.all @ M.extras in
  Alcotest.run "xsltmark"
    [
      ( "differential-doc",
        List.map
          (fun (c : M.case) -> Alcotest.test_case c.M.name `Quick (doc_case c))
          all );
      ( "differential-db",
        List.filter_map
          (fun (c : M.case) ->
            if c.M.db_capable then Some (Alcotest.test_case c.M.name `Quick (db_case c))
            else None)
          all );
      ( "streaming-golden",
        List.map
          (fun (c : M.case) -> Alcotest.test_case c.M.name `Quick (streaming_case c))
          all );
      ("statistics", [ Alcotest.test_case "23/40 inline" `Quick inline_statistic ]);
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_random_stylesheets;
          QCheck_alcotest.to_alcotest prop_compiled_executor_differential;
        ] );
    ]
