(* Tests for xdb_xpath: lexer/parser, value model, evaluator, patterns. *)

module T = Xdb_xml.Types
module XP = Xdb_xpath.Ast
module L = Xdb_xpath.Lexer
module P = Xdb_xpath.Parser
module V = Xdb_xpath.Value
module E = Xdb_xpath.Eval
module Pat = Xdb_xpath.Pattern

let check = Alcotest.check
let cs = Alcotest.string
let cb = Alcotest.bool
let ci = Alcotest.int
let cf = Alcotest.float 1e-9

let doc =
  Xdb_xml.Parser.parse
    {|<dept id="d10" xml:lang="en">
<dname>ACCOUNTING</dname>
<loc>NEW YORK</loc>
<employees>
<emp><empno>7782</empno><ename>CLARK</ename><sal>2450</sal></emp>
<emp><empno>7934</empno><ename>MILLER</ename><sal>1300</sal></emp>
<emp><empno>7954</empno><ename>SMITH</ename><sal>4900</sal></emp>
</employees>
</dept>|}

let root = Xdb_xml.Parser.document_element doc

let ctx = E.make_context root

let eval s = E.eval_string ctx s
let eval_str s = V.string_value (eval s)
let eval_num s = V.number_value (eval s)
let eval_bool s = V.boolean_value (eval s)
let count s = List.length (V.node_set (eval s))

(* ------------------------------------------------------------------ *)
(* lexer / parser                                                      *)
(* ------------------------------------------------------------------ *)

let test_lexer_disambiguation () =
  (* '*' as operator vs name test; 'div' as operator vs element name *)
  let toks = L.tokenize "2 * 3" in
  check cb "multiply" true (List.mem L.Tstar toks);
  let toks = L.tokenize "*" in
  check cb "name test star" true (List.mem (L.Tname "*") toks);
  let toks = L.tokenize "div div div" in
  check ci "div name, div op, div name" 4 (List.length toks)

let test_parser_precedence () =
  check cs "mul binds tighter" "1 + 2 * 3" (XP.to_string (P.parse "1+2*3"));
  (match P.parse "1 + 2 * 3" with
  | XP.Binop (XP.Plus, _, XP.Binop (XP.Mul, _, _)) -> ()
  | _ -> Alcotest.fail "wrong precedence");
  (match P.parse "a or b and c" with
  | XP.Binop (XP.Or, _, XP.Binop (XP.And, _, _)) -> ()
  | _ -> Alcotest.fail "or/and precedence")

let test_parser_paths () =
  (match P.parse "/dept/employees/emp" with
  | XP.Path { absolute = true; steps } -> check ci "three steps" 3 (List.length steps)
  | _ -> Alcotest.fail "expected absolute path");
  (match P.parse "emp[sal > 2000]" with
  | XP.Path { steps = [ { predicates = [ _ ]; _ } ]; _ } -> ()
  | _ -> Alcotest.fail "expected predicate");
  (match P.parse "//emp" with
  | XP.Path { absolute = true; steps = [ { axis = XP.Descendant_or_self; _ }; _ ] } -> ()
  | _ -> Alcotest.fail "expected // expansion");
  (match P.parse "$v/emp" with
  | XP.Filter (XP.Var "v", [], [ _ ]) -> ()
  | _ -> Alcotest.fail "expected var filter path")

let test_parser_node_tests () =
  (match P.parse "text()" with
  | XP.Path { steps = [ { test = XP.Node_type_test XP.Text_node; _ } ]; _ } -> ()
  | _ -> Alcotest.fail "text()");
  (match P.parse "processing-instruction('t')" with
  | XP.Path { steps = [ { test = XP.Node_type_test (XP.Pi_node (Some "t")); _ } ]; _ } -> ()
  | _ -> Alcotest.fail "pi test");
  (match P.parse "@*" with
  | XP.Path { steps = [ { axis = XP.Attribute; test = XP.Star; _ } ]; _ } -> ()
  | _ -> Alcotest.fail "@*")

let test_parser_errors () =
  let fails s = match P.parse s with exception P.Parse_error _ -> true | _ -> false in
  check cb "dangling operator" true (fails "1 +");
  check cb "unbalanced paren" true (fails "(1");
  check cb "unknown axis" true (fails "sideways::a");
  check cb "empty" true (fails "")

(* ------------------------------------------------------------------ *)
(* value model                                                         *)
(* ------------------------------------------------------------------ *)

let test_number_string () =
  check cs "integer format" "5" (V.string_of_number 5.0);
  check cs "negative" "-3" (V.string_of_number (-3.0));
  check cs "nan" "NaN" (V.string_of_number Float.nan);
  check cs "infinity" "Infinity" (V.string_of_number Float.infinity);
  check cs "fraction" "2.5" (V.string_of_number 2.5)

let test_string_number () =
  check cf "simple" 42.0 (V.number_of_string " 42 ");
  check cb "garbage is NaN" true (Float.is_nan (V.number_of_string "x"));
  check cb "empty is NaN" true (Float.is_nan (V.number_of_string ""))

let test_boolean_conversion () =
  check cb "zero false" false (V.boolean_value (V.Num 0.0));
  check cb "nan false" false (V.boolean_value (V.Num Float.nan));
  check cb "nonempty string" true (V.boolean_value (V.Str "x"));
  check cb "empty nodeset" false (V.boolean_value (V.Nodes []))

let test_comparisons () =
  (* node-set vs number: existential *)
  check cb "some sal > 2000" true (eval_bool "employees/emp/sal > 2000");
  check cb "all sal < 1000 false" false (eval_bool "employees/emp/sal < 1000");
  check cb "string equality" true (eval_bool "dname = 'ACCOUNTING'");
  check cb "nodeset vs nodeset" true (eval_bool "employees/emp/sal = employees/emp/sal");
  check cb "flipped relational" true (eval_bool "2000 < employees/emp/sal")

(* ------------------------------------------------------------------ *)
(* axes                                                                *)
(* ------------------------------------------------------------------ *)

let test_axes () =
  check ci "child" 3 (count "employees/emp");
  check ci "descendant" 3 (count "descendant::emp");
  check ci "descendant-or-self" 16 (count "descendant-or-self::*");
  check ci "attribute" 2 (count "@*");
  check cs "attribute value" "d10" (eval_str "@id");
  check ci "parent" 1 (count "dname/parent::dept");
  check ci "ancestor" 2 (count "employees/emp[1]/ancestor::*");
  check ci "following-sibling" 2 (count "dname/following-sibling::*");
  check ci "preceding-sibling" 2 (count "employees/preceding-sibling::*");
  check ci "self" 1 (count "self::dept");
  check ci "self wrong name" 0 (count "self::emp");
  check ci "following" 14 (count "dname/following::*");
  check ci "preceding" 1 (count "loc/preceding::*");
  check ci "double slash from root" 3 (count "//emp")

let test_positional_predicates () =
  check cs "first emp" "CLARK" (eval_str "employees/emp[1]/ename");
  check cs "last()" "SMITH" (eval_str "employees/emp[last()]/ename");
  check cs "position()=2" "MILLER" (eval_str "employees/emp[position() = 2]/ename");
  (* reverse axis proximity: preceding-sibling::*[1] is the nearest *)
  check cs "nearest preceding sibling" "loc"
    (T.local_name (List.hd (E.select (E.make_context root) "employees/preceding-sibling::*[1]")))

(* positional predicates count in proximity order on every reverse axis
   (XPath 1.0 §2.4) — regression for ancestor/ancestor-or-self, which
   used to yield root-first *)
let test_reverse_axis_proximity () =
  let sel s = E.select (E.make_context root) s in
  let name_of s = T.local_name (List.hd (sel s)) in
  check cs "ancestor::*[1] is the nearest" "emp" (name_of "employees/emp[1]/sal/ancestor::*[1]");
  check cs "ancestor::*[2]" "employees" (name_of "employees/emp[1]/sal/ancestor::*[2]");
  check cs "ancestor::*[last()] is the root" "dept"
    (name_of "employees/emp[1]/sal/ancestor::*[last()]");
  check cs "ancestor-or-self::*[1] is self" "sal"
    (name_of "employees/emp[1]/sal/ancestor-or-self::*[1]");
  check cs "ancestor-or-self::*[2]" "emp"
    (name_of "employees/emp[1]/sal/ancestor-or-self::*[2]");
  check ci "name test before the position" 1
    (count "employees/emp[1]/sal/ancestor::employees[1]");
  check cs "preceding-sibling::*[1] is the nearest" "ename"
    (name_of "employees/emp[1]/sal/preceding-sibling::*[1]");
  check cs "preceding-sibling::*[2]" "empno"
    (name_of "employees/emp[1]/sal/preceding-sibling::*[2]");
  check cs "preceding::emp[1] is the nearest" "MILLER"
    (eval_str "employees/emp[3]/preceding::emp[1]/ename");
  (* ...while the final node-set is still in document order *)
  check cs "reverse-axis result sorts to document order" "empno"
    (name_of "employees/emp[1]/sal/preceding-sibling::*")

let test_chained_predicates () =
  check ci "two predicates" 1 (count "employees/emp[sal > 2000][2]");
  check cs "second highly paid" "SMITH" (eval_str "employees/emp[sal > 2000][2]/ename")

(* ------------------------------------------------------------------ *)
(* functions                                                           *)
(* ------------------------------------------------------------------ *)

let test_string_functions () =
  check cs "concat" "a-b" (eval_str "concat('a', '-', 'b')");
  check cb "starts-with" true (eval_bool "starts-with(dname, 'ACC')");
  check cb "contains" true (eval_bool "contains(loc, 'YORK')");
  check cs "substring-before" "NEW" (eval_str "substring-before(loc, ' ')");
  check cs "substring-after" "YORK" (eval_str "substring-after(loc, ' ')");
  check cs "substring 2 args" "CCOUNTING" (eval_str "substring(dname, 2)");
  check cs "substring 3 args" "CCO" (eval_str "substring(dname, 2, 3)");
  check cs "substring rounding" "234" (eval_str "substring('12345', 1.5, 2.6)");
  check cf "string-length" 10.0 (eval_num "string-length(dname)");
  check cs "normalize-space" "a b" (eval_str "normalize-space('  a   b ')");
  check cs "translate" "ABr" (eval_str "translate('bar', 'ab', 'BA')");
  check cs "translate removal" "br" (eval_str "translate('bar', 'a', '')")

let test_number_functions () =
  check cf "sum" 8650.0 (eval_num "sum(employees/emp/sal)");
  check cf "count" 3.0 (eval_num "count(employees/emp)");
  check cf "floor" 2.0 (eval_num "floor(2.7)");
  check cf "ceiling" 3.0 (eval_num "ceiling(2.1)");
  check cf "round half up" 3.0 (eval_num "round(2.5)");
  check cf "round negative" (-2.0) (eval_num "round(-2.5)");
  check cf "mod" 1.0 (eval_num "7 mod 2");
  check cf "div" 3.5 (eval_num "7 div 2")

let test_rounding_edge_cases () =
  let is_neg_zero f = f = 0.0 && 1.0 /. f = Float.neg_infinity in
  let is_pos_zero f = f = 0.0 && 1.0 /. f = Float.infinity in
  (* XPath 1.0 §4.4: round() of [-0.5, 0) is negative zero *)
  check cb "round(-0.2) is -0" true (is_neg_zero (eval_num "round(-0.2)"));
  check cb "round(-0.5) is -0" true (is_neg_zero (eval_num "round(-0.5)"));
  check cf "round(-0.51)" (-1.0) (eval_num "round(-0.51)");
  check cb "round(0) is +0" true (is_pos_zero (eval_num "round(0)"));
  check cb "round(0.4) is +0" true (is_pos_zero (eval_num "round(0.4)"));
  check cf "round(0.5)" 1.0 (eval_num "round(0.5)");
  (* NaN and infinities pass through round/floor/ceiling *)
  check cb "round(NaN)" true (Float.is_nan (eval_num "round(0 div 0)"));
  check cf "round(+inf)" Float.infinity (eval_num "round(1 div 0)");
  check cf "round(-inf)" Float.neg_infinity (eval_num "round(-1 div 0)");
  check cb "floor(NaN)" true (Float.is_nan (eval_num "floor(0 div 0)"));
  check cf "floor(+inf)" Float.infinity (eval_num "floor(1 div 0)");
  check cb "ceiling(NaN)" true (Float.is_nan (eval_num "ceiling(0 div 0)"));
  check cf "ceiling(-inf)" Float.neg_infinity (eval_num "ceiling(-1 div 0)");
  (* negative zero propagates through floor/ceiling of itself *)
  check cb "floor(-0)" true (eval_num "floor(-0.0)" = 0.0);
  check cb "ceiling(-0.5) is -0" true (is_neg_zero (eval_num "ceiling(-0.5)"))

let test_format_number () =
  check cs "basic" "1234" (eval_str "format-number(1234, '0')");
  check cs "grouping" "1,234,567" (eval_str "format-number(1234567, '#,##0')");
  check cs "fixed fraction" "3.50" (eval_str "format-number(3.5, '0.00')");
  check cs "optional fraction trimmed" "3.5" (eval_str "format-number(3.5, '0.0#')");
  check cs "min integer digits" "007" (eval_str "format-number(7, '000')");
  check cs "percent" "42%" (eval_str "format-number(0.42, '0%')");
  check cs "negative default" "-5" (eval_str "format-number(-5, '0')");
  check cs "negative subpattern" "(5)" (eval_str "format-number(-5, '0;(0)')");
  check cs "rounding" "2.35" (eval_str "format-number(2.345, '0.00')");
  check cs "NaN" "NaN" (eval_str "format-number(0 div 0, '0')")

let test_node_functions () =
  check cs "name" "dept" (eval_str "name()");
  check cs "local-name of arg" "emp" (eval_str "local-name(employees/emp[1])");
  check cs "string of node" "ACCOUNTING" (eval_str "string(dname)");
  check cb "lang" true (eval_bool "lang('en')");
  check cb "boolean not" true (eval_bool "not(false())")

let test_id_function () =
  check ci "id finds element" 1 (count "id('d10')");
  check ci "id no match" 0 (count "id('nope')")

let test_generate_id () =
  let a = eval_str "generate-id(dname)" and b = eval_str "generate-id(loc)" in
  check cb "distinct ids" true (a <> b);
  check cs "stable" a (eval_str "generate-id(dname)")

let test_unknown_function () =
  match eval "frobnicate()" with
  | exception E.Eval_error _ -> ()
  | _ -> Alcotest.fail "expected Eval_error"

let test_variables () =
  let ctx = E.bind_var ctx "limit" (V.Num 2000.0) in
  let v = E.eval ctx (P.parse "count(employees/emp[sal > $limit])") in
  check cf "variable in predicate" 2.0 (V.number_value v);
  match E.eval ctx (P.parse "$missing") with
  | exception E.Eval_error _ -> ()
  | _ -> Alcotest.fail "unbound variable must fail"

(* ------------------------------------------------------------------ *)
(* patterns                                                            *)
(* ------------------------------------------------------------------ *)

let node_of path = List.hd (E.select ctx path)

let test_pattern_matching () =
  let matches pat n = Pat.matches ctx (Pat.parse pat) n in
  let emp = node_of "employees/emp[1]" in
  let sal = node_of "employees/emp[1]/sal" in
  check cb "name" true (matches "emp" emp);
  check cb "wrong name" false (matches "dept" emp);
  check cb "parent step" true (matches "employees/emp" emp);
  check cb "ancestor step" true (matches "dept//sal" sal);
  check cb "wrong parent" false (matches "dname/emp" emp);
  check cb "star" true (matches "*" emp);
  check cb "root pattern" true (matches "/" doc);
  check cb "root not element" false (matches "/" emp);
  check cb "text pattern" true
    (matches "text()" (node_of "dname/text()"));
  check cb "predicate pattern" true (matches "emp[sal > 2000]" emp);
  check cb "predicate pattern false" false
    (matches "emp[sal > 2000]" (node_of "employees/emp[2]"));
  check cb "positional pattern" true (matches "emp[1]" emp);
  check cb "positional pattern false" false (matches "emp[2]" emp)

let test_pattern_priorities () =
  let prio pat =
    match Pat.split (Pat.parse pat) with [ (_, p) ] -> p | _ -> Alcotest.fail "one alt"
  in
  check (Alcotest.float 0.001) "name" 0.0 (prio "emp");
  check (Alcotest.float 0.001) "star" (-0.5) (prio "*");
  check (Alcotest.float 0.001) "node()" (-0.5) (prio "node()");
  check (Alcotest.float 0.001) "multi step" 0.5 (prio "employees/emp");
  check (Alcotest.float 0.001) "predicate" 0.5 (prio "emp[1]")

let test_pattern_union_split () =
  let pat = Pat.parse "dname | loc | employees/emp" in
  check ci "three alternatives" 3 (List.length (Pat.split pat))

let test_pattern_invalid () =
  match Pat.parse "emp + 1" with
  | exception Pat.Invalid_pattern _ -> ()
  | _ -> Alcotest.fail "expected Invalid_pattern"

(* ------------------------------------------------------------------ *)
(* properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_sort_idempotent =
  QCheck.Test.make ~name:"sort_nodes idempotent and deduplicating" ~count:100
    QCheck.(list_of_size Gen.(int_bound 20) (int_bound 13))
    (fun idxs ->
      let all = root :: T.descendants root in
      let nodes = List.filter_map (fun i -> List.nth_opt all i) idxs in
      let s1 = V.sort_nodes nodes in
      let s2 = V.sort_nodes (s1 @ s1) in
      let rec strictly_sorted = function
        | a :: (b :: _ as rest) -> T.compare_order a b < 0 && strictly_sorted rest
        | _ -> true
      in
      List.length s1 = List.length s2
      && List.for_all2 ( == ) s1 s2
      && strictly_sorted s1)

let prop_descendant_parent_inverse =
  QCheck.Test.make ~name:"every descendant's ancestors include the root" ~count:50
    QCheck.(int_bound 13)
    (fun i ->
      let all = T.descendants root in
      match List.nth_opt all i with
      | None -> true
      | Some n -> List.memq root (E.axis_nodes XP.Ancestor n))

let prop_xpath_parser_total =
  QCheck.Test.make ~name:"xpath parser is total" ~count:400
    QCheck.(string_gen_of_size Gen.(int_bound 40) Gen.printable)
    (fun s ->
      match P.parse s with
      | _ -> true
      | exception (P.Parse_error _ | L.Lex_error _) -> true)

let () =
  Alcotest.run "xpath"
    [
      ( "syntax",
        [
          Alcotest.test_case "lexer disambiguation" `Quick test_lexer_disambiguation;
          Alcotest.test_case "precedence" `Quick test_parser_precedence;
          Alcotest.test_case "paths" `Quick test_parser_paths;
          Alcotest.test_case "node tests" `Quick test_parser_node_tests;
          Alcotest.test_case "errors" `Quick test_parser_errors;
        ] );
      ( "values",
        [
          Alcotest.test_case "number→string" `Quick test_number_string;
          Alcotest.test_case "string→number" `Quick test_string_number;
          Alcotest.test_case "boolean conversion" `Quick test_boolean_conversion;
          Alcotest.test_case "comparisons" `Quick test_comparisons;
        ] );
      ( "axes",
        [
          Alcotest.test_case "all axes" `Quick test_axes;
          Alcotest.test_case "positional predicates" `Quick test_positional_predicates;
          Alcotest.test_case "reverse-axis proximity order" `Quick test_reverse_axis_proximity;
          Alcotest.test_case "chained predicates" `Quick test_chained_predicates;
        ] );
      ( "functions",
        [
          Alcotest.test_case "string functions" `Quick test_string_functions;
          Alcotest.test_case "number functions" `Quick test_number_functions;
          Alcotest.test_case "rounding edge cases" `Quick test_rounding_edge_cases;
          Alcotest.test_case "format-number" `Quick test_format_number;
          Alcotest.test_case "node functions" `Quick test_node_functions;
          Alcotest.test_case "id()" `Quick test_id_function;
          Alcotest.test_case "generate-id()" `Quick test_generate_id;
          Alcotest.test_case "unknown function" `Quick test_unknown_function;
          Alcotest.test_case "variables" `Quick test_variables;
        ] );
      ( "patterns",
        [
          Alcotest.test_case "matching" `Quick test_pattern_matching;
          Alcotest.test_case "priorities" `Quick test_pattern_priorities;
          Alcotest.test_case "union split" `Quick test_pattern_union_split;
          Alcotest.test_case "invalid" `Quick test_pattern_invalid;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_sort_idempotent; prop_descendant_parent_inverse; prop_xpath_parser_total ] );
    ]
