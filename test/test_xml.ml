(* Tests for xdb_xml: node model, parser, serializer, builder. *)

module T = Xdb_xml.Types
module P = Xdb_xml.Parser
module S = Xdb_xml.Serializer
module B = Xdb_xml.Builder
module E = Xdb_xml.Events

let check = Alcotest.check
let cs = Alcotest.string
let cb = Alcotest.bool
let ci = Alcotest.int

let parse_root s = P.document_element (P.parse s)

(* ------------------------------------------------------------------ *)
(* node model                                                          *)
(* ------------------------------------------------------------------ *)

let test_string_value () =
  let root = parse_root "<a>x<b>y<c>z</c></b>w</a>" in
  check cs "concatenated text" "xyzw" (T.string_value root);
  let b = List.nth root.T.children 1 in
  check cs "subtree value" "yz" (T.string_value b)

let test_qname_equal () =
  check cb "same uri+local" true
    (T.qname_equal (T.qname ~prefix:"a" ~uri:"u" "x") (T.qname ~prefix:"b" ~uri:"u" "x"));
  check cb "different uri" false
    (T.qname_equal (T.qname ~uri:"u1" "x") (T.qname ~uri:"u2" "x"))

let test_document_order () =
  let doc = P.parse "<a><b/><c><d/></c><e/></a>" in
  let a = P.document_element doc in
  let b = List.nth a.T.children 0 in
  let c = List.nth a.T.children 1 in
  let d = List.nth c.T.children 0 in
  let e = List.nth a.T.children 2 in
  check cb "b before c" true (T.compare_order b c < 0);
  check cb "d before e" true (T.compare_order d e < 0);
  check cb "a before d" true (T.compare_order a d < 0);
  check ci "self equal" 0 (T.compare_order d d)

let test_order_without_stamps () =
  (* nodes built by hand have order = 0: structural comparison kicks in *)
  let x = B.elem "x" [ B.elem "p" []; B.elem "q" [] ] in
  let p = List.nth x.T.children 0 and q = List.nth x.T.children 1 in
  check cb "path-based order" true (T.compare_order p q < 0)

let test_deep_copy_and_equal () =
  let root = parse_root "<a k=\"1\"><b>t</b><!--c--></a>" in
  let copy = T.deep_copy root in
  check cb "copy equals original" true (T.deep_equal root copy);
  check cb "copy is fresh" true (copy != root);
  (* mutating the copy leaves the original intact *)
  (match copy.T.children with
  | b :: _ -> b.T.kind <- T.Text "mutated"
  | [] -> Alcotest.fail "expected children");
  check cb "divergence detected" false (T.deep_equal root copy)

let test_attributes () =
  let el = parse_root "<a x=\"1\" y=\"2\"/>" in
  check cs "attr x" "1" (Option.get (T.attribute el "x"));
  check cb "missing attr" true (T.attribute el "z" = None);
  (* replacement on same expanded name *)
  T.add_attribute el (T.make (T.Attribute (T.qname "x", "9")));
  check cs "attr replaced" "9" (Option.get (T.attribute el "x"));
  check ci "still two attrs" 2 (List.length el.T.attributes)

let test_descendants () =
  let root = parse_root "<a><b><c/></b><d/></a>" in
  check ci "descendant count" 3 (List.length (T.descendants root))

(* ------------------------------------------------------------------ *)
(* parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_basic () =
  let root = parse_root "<dept><dname>ACCOUNTING</dname></dept>" in
  check cs "root name" "dept" (T.local_name root);
  check ci "one child" 1 (List.length root.T.children)

let test_parse_entities () =
  let root = parse_root "<a>&lt;&amp;&gt;&quot;&apos;&#65;&#x42;</a>" in
  check cs "entities decoded" "<&>\"'AB" (T.string_value root)

let test_parse_cdata () =
  let root = parse_root "<a><![CDATA[<not-a-tag> & raw]]></a>" in
  check cs "cdata literal" "<not-a-tag> & raw" (T.string_value root)

let test_parse_comments_pis () =
  let doc = P.parse "<?xml version=\"1.0\"?><!--before--><a><?target data?><!--in--></a>" in
  let kinds =
    List.map (fun n -> match n.T.kind with
      | T.Comment _ -> "comment" | T.Element _ -> "element" | _ -> "other")
      doc.T.children
  in
  check Alcotest.(list string) "prolog comment kept" [ "comment"; "element" ] kinds;
  let a = P.document_element doc in
  (match (List.nth a.T.children 0).T.kind with
  | T.Pi (t, d) ->
      check cs "pi target" "target" t;
      check cs "pi data" "data" d
  | _ -> Alcotest.fail "expected PI")

let test_parse_namespaces () =
  let root =
    parse_root
      "<x:a xmlns:x=\"http://one\" xmlns=\"http://def\"><b/><x:c/></x:a>"
  in
  (match root.T.kind with
  | T.Element q ->
      check cs "prefixed uri" "http://one" q.T.uri;
      check cs "prefix kept" "x" q.T.prefix
  | _ -> Alcotest.fail "expected element");
  let b = List.nth root.T.children 0 and c = List.nth root.T.children 1 in
  (match (b.T.kind, c.T.kind) with
  | T.Element qb, T.Element qc ->
      check cs "default ns inherited" "http://def" qb.T.uri;
      check cs "prefixed child" "http://one" qc.T.uri
  | _ -> Alcotest.fail "expected elements")

let test_parse_doctype_skipped () =
  let root = parse_root "<!DOCTYPE a [<!ELEMENT a (#PCDATA)>]><a>ok</a>" in
  check cs "content parsed" "ok" (T.string_value root)

let test_parse_self_closing () =
  let root = parse_root "<a><b/><c x=\"1\"/></a>" in
  check ci "two children" 2 (List.length root.T.children)

let test_parse_errors () =
  let fails s =
    match P.parse s with
    | exception P.Parse_error _ -> true
    | _ -> false
  in
  check cb "mismatched tags" true (fails "<a></b>");
  check cb "unterminated" true (fails "<a>");
  check cb "trailing garbage" true (fails "<a/><b/>extra");
  check cb "bad entity" true (fails "<a>&nope;</a>");
  check cb "lt in attribute" true (fails "<a x=\"<\"/>");
  check cb "undeclared prefix" true (fails "<p:a/>")

let test_parse_fragment () =
  let doc = P.parse_fragment "<a/>text<b/>" in
  let wrapper = P.document_element doc in
  check ci "three nodes" 3 (List.length wrapper.T.children)

(* ------------------------------------------------------------------ *)
(* serializer                                                          *)
(* ------------------------------------------------------------------ *)

let test_serialize_escaping () =
  let el = B.elem "a" ~attrs:[ ("k", "a\"b<c") ] [ B.text "x<y&z" ] in
  check cs "escaped" "<a k=\"a&quot;b&lt;c\">x&lt;y&amp;z</a>" (S.to_string el)

let test_serialize_methods () =
  let el = B.elem "br" [] in
  check cs "xml self-close" "<br/>" (S.to_string ~meth:S.Xml el);
  check cs "html void" "<br>" (S.to_string ~meth:S.Html el);
  let div = B.elem "div" [] in
  check cs "html non-void empty" "<div></div>" (S.to_string ~meth:S.Html div);
  let t = B.elem "a" [ B.text "x<y" ] in
  check cs "text method unescaped" "x<y" (S.to_string ~meth:S.Text_output t)

let test_serialize_roundtrip () =
  let src = "<a k=\"v\"><b>one</b><c><d/>two</c><!--note--></a>" in
  let root = parse_root src in
  check cs "roundtrip" src (S.to_string root)

let test_attr_whitespace_escaping () =
  (* regression: tab and CR in attribute values must become character
     references, or a re-parse's attribute-value normalization (XML
     §3.3.3) folds them into spaces *)
  let el = B.elem "a" ~attrs:[ ("k", "a\tb\r\nc") ] [] in
  check cs "tab/cr/lf escaped" "<a k=\"a&#9;b&#13;&#10;c\"/>" (S.to_string el);
  (* the full cycle preserves the exact value *)
  let back = parse_root (S.to_string el) in
  check cs "attr survives roundtrip" "a\tb\r\nc" (Option.get (T.attribute back "k"))

let test_attr_value_normalization () =
  (* literal whitespace in attribute values normalizes to spaces … *)
  let el = parse_root "<a k=\"x\ty\nz\"/>" in
  check cs "literal tab/newline -> space" "x y z" (Option.get (T.attribute el "k"));
  (* … while character references survive *)
  let el = parse_root "<a k=\"x&#9;y&#10;z\"/>" in
  check cs "char refs survive" "x\ty\nz" (Option.get (T.attribute el "k"))

(* ------------------------------------------------------------------ *)
(* output events                                                       *)
(* ------------------------------------------------------------------ *)

let test_events_streaming () =
  let out =
    E.to_string (fun sink ->
        sink.E.emit (E.Start_element (T.qname "a"));
        sink.E.emit (E.Attr (T.qname "k", "v<w"));
        sink.E.emit (E.Text "x&y");
        sink.E.emit (E.Start_element (T.qname "b"));
        sink.E.emit E.End_element;
        sink.E.emit E.End_element)
  in
  check cs "streamed markup" "<a k=\"v&lt;w\">x&amp;y<b/></a>" out

let test_events_ill_formed () =
  let raises f = match f () with exception E.Serialize_error _ -> true | _ -> false in
  check cb "comment with --" true
    (raises (fun () -> E.to_string (fun s -> s.E.emit (E.Comment "a--b"))));
  check cb "comment trailing -" true
    (raises (fun () -> E.to_string (fun s -> s.E.emit (E.Comment "ab-"))));
  check cb "pi data with ?>" true
    (raises (fun () -> E.to_string (fun s -> s.E.emit (E.Pi ("t", "a?>b")))));
  check cb "unbalanced end" true (raises (fun () -> E.to_string (fun s -> s.E.emit E.End_element)));
  check cb "unclosed element" true
    (raises (fun () -> E.to_string (fun s -> s.E.emit (E.Start_element (T.qname "a")))));
  check cb "attr after content" true
    (raises (fun () ->
         E.to_string (fun s ->
             s.E.emit (E.Start_element (T.qname "a"));
             s.E.emit (E.Text "x");
             s.E.emit (E.Attr (T.qname "k", "v")))));
  (* the DOM serializer routes through the same checks *)
  check cb "dom comment --" true (raises (fun () -> S.to_string (T.make (T.Comment "x--y"))));
  check cb "dom pi ?>" true (raises (fun () -> S.to_string (T.make (T.Pi ("t", "d?>e")))))

let test_events_wellformed_reparse () =
  (* valid comments/PIs (single hyphens, no "?>") serialize and re-parse *)
  let el =
    B.elem "a" [ T.make (T.Comment "note - ok"); T.make (T.Pi ("t", "d-a-t-a")); B.text "x" ]
  in
  let src = S.to_string el in
  check cs "stable reparse" src (S.to_string (parse_root src))

let test_html_void_elements () =
  List.iter
    (fun n ->
      check cs (n ^ " is void") ("<" ^ n ^ ">") (S.to_string ~meth:S.Html (B.elem n []));
      check cb (n ^ " in void list") true (E.is_html_void n))
    [ "br"; "hr"; "img"; "input"; "source"; "track"; "wbr"; "param" ];
  List.iter
    (fun n ->
      check cs (n ^ " not void")
        ("<" ^ n ^ "></" ^ n ^ ">")
        (S.to_string ~meth:S.Html (B.elem n []));
      check cb (n ^ " not in void list") false (E.is_html_void n))
    [ "div"; "span"; "video"; "audio" ]

(* ------------------------------------------------------------------ *)
(* property tests                                                      *)
(* ------------------------------------------------------------------ *)

let gen_tree =
  let open QCheck.Gen in
  let name = oneofl [ "a"; "b"; "c"; "item"; "row" ] in
  let text = oneofl [ "x"; "hello"; "1 2 3"; "<&>" ] in
  (* attribute values include whitespace and quote characters: the
     roundtrip property depends on the serializer emitting them as
     character references (XML §3.3.3 attribute-value normalization) *)
  let attrs =
    list_size (int_bound 2)
      (pair
         (oneofl [ "k"; "id"; "n" ])
         (oneofl [ "v"; "a b"; "t\tb"; "n\nb"; "r\rb"; "q\"x"; "<&>" ]))
  in
  let rec tree depth =
    if depth = 0 then map B.text text
    else
      frequency
        [
          (2, map B.text text);
          ( 3,
            map3
              (fun n ats kids -> B.elem n ~attrs:ats kids)
              name attrs
              (list_size (int_bound 3) (tree (depth - 1))) );
        ]
  in
  map2
    (fun ats kids -> B.elem "root" ~attrs:ats kids)
    attrs
    (list_size (int_bound 4) (tree 3))

let arb_tree = QCheck.make ~print:(fun t -> S.to_string t) gen_tree

(* adjacent text nodes merge on reparse; normalise before comparing *)
let normalize n =
  let n = T.deep_copy n in
  let rec merge = function
    | { T.kind = T.Text a; _ } :: { T.kind = T.Text b; _ } :: rest ->
        merge (T.make (T.Text (a ^ b)) :: rest)
    | x :: rest -> normalize_in_place x :: merge rest
    | [] -> []
  and normalize_in_place x =
    T.set_children x (merge x.T.children);
    x
  in
  T.set_children n (merge n.T.children);
  n

let prop_roundtrip =
  QCheck.Test.make ~name:"serialize ∘ parse = id (modulo text merging)" ~count:200 arb_tree
    (fun tree ->
      let tree = normalize tree in
      let src = S.to_string tree in
      let back = parse_root src in
      T.deep_equal tree back)

let prop_deep_copy_equal =
  QCheck.Test.make ~name:"deep_copy produces deep_equal tree" ~count:100 arb_tree (fun tree ->
      T.deep_equal tree (T.deep_copy tree))

let prop_string_value_stable =
  QCheck.Test.make ~name:"string_value survives roundtrip" ~count:100 arb_tree (fun tree ->
      let src = S.to_string tree in
      String.equal (T.string_value tree) (T.string_value (parse_root src)))

(* the serializing sink must agree byte-for-byte with building a DOM from
   the same events and serializing that, for every method × indent *)
let arb_tree_mode =
  QCheck.pair arb_tree
    (QCheck.make
       (QCheck.Gen.oneofl [ (E.Xml, false); (E.Xml, true); (E.Html, false); (E.Html, true) ]))

let prop_sink_equals_dom =
  QCheck.Test.make ~name:"serializing sink = DOM-then-serialize" ~count:200 arb_tree_mode
    (fun (tree, (meth, indent)) ->
      let streamed = E.to_string ~meth ~indent (fun sink -> E.emit_tree sink tree) in
      let b = E.tree_builder () in
      E.emit_tree (E.builder_sink b) tree;
      let dom = S.node_list_to_string ~meth ~indent (E.builder_result b) in
      String.equal streamed dom)

(* whatever the sink accepts must re-parse; ill-formed comment/PI content
   must instead raise Serialize_error (never emit broken markup) *)
let prop_output_reparses =
  QCheck.Test.make ~name:"accepted output always re-parses" ~count:200
    QCheck.(
      pair arb_tree (pair (oneofl [ "ok"; "a-b"; "a--b"; "ab-"; "-"; ""; "x?" ]) (oneofl [ "d"; "a?>b"; "?"; "" ])))
    (fun (tree, (cdata, pdata)) ->
      match
        E.to_string (fun sink ->
            sink.E.emit (E.Start_element (T.qname "r"));
            E.emit_tree sink tree;
            sink.E.emit (E.Comment cdata);
            sink.E.emit (E.Pi ("t", pdata));
            sink.E.emit E.End_element)
      with
      | out -> ( match P.parse out with _ -> true | exception P.Parse_error _ -> false)
      | exception E.Serialize_error _ -> true)

(* fuzz: arbitrary bytes must either parse or raise Parse_error — nothing
   else (no assertion failures, no stack overflows on small inputs) *)
let prop_parser_total =
  QCheck.Test.make ~name:"parser is total (Parse_error or success)" ~count:500
    QCheck.(string_gen_of_size Gen.(int_bound 80) Gen.printable)
    (fun s ->
      match P.parse s with
      | _ -> true
      | exception P.Parse_error _ -> true)

(* fuzz near-XML inputs: take a valid doc and mutate one byte *)
let prop_parser_mutation =
  QCheck.Test.make ~name:"single-byte mutations never escape Parse_error" ~count:300
    QCheck.(pair (int_bound 1000) (int_bound 255))
    (fun (pos, byte) ->
      let src = "<a k=\"v\"><b>one</b><c><d/>two&amp;</c><!--n--></a>" in
      let b = Bytes.of_string src in
      Bytes.set b (pos mod Bytes.length b) (Char.chr byte);
      let s = Bytes.to_string b in
      match P.parse s with _ -> true | exception P.Parse_error _ -> true)

let () =
  Alcotest.run "xml"
    [
      ( "types",
        [
          Alcotest.test_case "string_value" `Quick test_string_value;
          Alcotest.test_case "qname_equal" `Quick test_qname_equal;
          Alcotest.test_case "document order" `Quick test_document_order;
          Alcotest.test_case "order without stamps" `Quick test_order_without_stamps;
          Alcotest.test_case "deep copy/equal" `Quick test_deep_copy_and_equal;
          Alcotest.test_case "attributes" `Quick test_attributes;
          Alcotest.test_case "descendants" `Quick test_descendants;
        ] );
      ( "parser",
        [
          Alcotest.test_case "basic" `Quick test_parse_basic;
          Alcotest.test_case "entities" `Quick test_parse_entities;
          Alcotest.test_case "cdata" `Quick test_parse_cdata;
          Alcotest.test_case "comments and PIs" `Quick test_parse_comments_pis;
          Alcotest.test_case "namespaces" `Quick test_parse_namespaces;
          Alcotest.test_case "doctype skipped" `Quick test_parse_doctype_skipped;
          Alcotest.test_case "self closing" `Quick test_parse_self_closing;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "fragment" `Quick test_parse_fragment;
        ] );
      ( "serializer",
        [
          Alcotest.test_case "escaping" `Quick test_serialize_escaping;
          Alcotest.test_case "output methods" `Quick test_serialize_methods;
          Alcotest.test_case "roundtrip" `Quick test_serialize_roundtrip;
          Alcotest.test_case "attr whitespace escaping" `Quick test_attr_whitespace_escaping;
          Alcotest.test_case "attr value normalization" `Quick test_attr_value_normalization;
        ] );
      ( "events",
        [
          Alcotest.test_case "streaming sink" `Quick test_events_streaming;
          Alcotest.test_case "ill-formed events rejected" `Quick test_events_ill_formed;
          Alcotest.test_case "well-formed comment/pi reparse" `Quick test_events_wellformed_reparse;
          Alcotest.test_case "html void elements" `Quick test_html_void_elements;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_roundtrip;
            prop_deep_copy_equal;
            prop_string_value_stable;
            prop_sink_equals_dom;
            prop_output_reparses;
          ] );
      ( "fuzz",
        List.map QCheck_alcotest.to_alcotest [ prop_parser_total; prop_parser_mutation ] );
    ]
