(* Tests for xdb_rel: values, B-tree, tables, executor, optimizer,
   publishing. *)

module V = Xdb_rel.Value
module BT = Xdb_rel.Btree
module T = Xdb_rel.Table
module DB = Xdb_rel.Database
module A = Xdb_rel.Algebra
module E = Xdb_rel.Exec
module O = Xdb_rel.Optimizer
module P = Xdb_rel.Publish
module X = Xdb_xml.Types

let check = Alcotest.check
let cs = Alcotest.string
let cb = Alcotest.bool
let ci = Alcotest.int

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* values                                                              *)
(* ------------------------------------------------------------------ *)

let test_value_casts () =
  check ci "str to int" 42 (V.to_int (V.Str " 42 "));
  check (Alcotest.float 1e-9) "int to float" 3.0 (V.to_float (V.Int 3));
  check cs "float integral prints bare" "4" (V.to_string (V.Float 4.0));
  check cs "float fraction" "2.5" (V.to_string (V.Float 2.5));
  check cs "null prints empty" "" (V.to_string V.Null);
  match V.to_int (V.Str "nope") with
  | exception V.Type_error _ -> ()
  | _ -> Alcotest.fail "bad cast must raise"

let test_value_compare () =
  check cb "null incomparable" true (V.compare_sql V.Null (V.Int 1) = None);
  check cb "mixed numeric" true (V.compare_sql (V.Int 2) (V.Float 2.0) = Some 0);
  check cb "string coerced" true (V.compare_sql (V.Str "10") (V.Int 9) = Some 1);
  check cb "key order total" true (V.compare_key V.Null (V.Int 0) < 0)

(* ------------------------------------------------------------------ *)
(* B-tree                                                              *)
(* ------------------------------------------------------------------ *)

let test_btree_basic () =
  let t = BT.create () in
  for i = 0 to 999 do
    BT.insert t (V.Int ((i * 37) mod 1000)) i
  done;
  check cb "invariants" true (BT.check_invariants t);
  check ci "size" 1000 (BT.size t);
  check cb "height grew" true (BT.height t > 1);
  (* each key inserted exactly once with rid = i where key = (i*37) mod 1000;
     37 is coprime with 1000 so every key in 0..999 appears once *)
  check ci "find point" 1 (List.length (BT.find t (V.Int 500)));
  check ci "find missing" 0 (List.length (BT.find t (V.Int 12345)))

let test_btree_duplicates () =
  let t = BT.create () in
  List.iter (fun i -> BT.insert t (V.Int 7) i) [ 1; 2; 3 ];
  BT.insert t (V.Int 9) 4;
  check Alcotest.(list int) "dup rows in insert order" [ 1; 2; 3 ] (BT.find t (V.Int 7))

let test_btree_range () =
  let t = BT.create () in
  for i = 1 to 100 do
    BT.insert t (V.Int i) i
  done;
  let r = BT.range t ~lo:(BT.Inclusive (V.Int 10)) ~hi:(BT.Exclusive (V.Int 13)) in
  check Alcotest.(list int) "range [10,13)" [ 10; 11; 12 ] (List.map snd r);
  let r = BT.range t ~lo:(BT.Exclusive (V.Int 98)) ~hi:BT.Unbounded in
  check Alcotest.(list int) "open top" [ 99; 100 ] (List.map snd r);
  check ci "full scan" 100 (List.length (BT.to_list t))

let test_btree_strings () =
  let t = BT.create () in
  List.iteri (fun i s -> BT.insert t (V.Str s) i) [ "pear"; "apple"; "fig" ];
  let keys = List.map fst (BT.to_list t) in
  check Alcotest.(list string) "sorted keys" [ "apple"; "fig"; "pear" ]
    (List.map V.to_string keys)

(* qcheck: B-tree vs sorted association list model *)
let prop_btree_model =
  QCheck.Test.make ~name:"btree matches assoc model" ~count:100
    QCheck.(list (pair (int_bound 50) (int_bound 1000)))
    (fun pairs ->
      let t = BT.create () in
      List.iteri (fun rid (k, _) -> BT.insert t (V.Int k) rid) pairs;
      BT.check_invariants t
      && List.for_all
           (fun (k, _) ->
             let expected =
               List.filteri (fun _ (k', _) -> k' = k) (List.mapi (fun i p -> (fst p, i)) pairs)
               |> List.map snd
             in
             BT.find t (V.Int k) = expected)
           pairs)

(* ------------------------------------------------------------------ *)
(* tables and executor                                                 *)
(* ------------------------------------------------------------------ *)

let setup_db () =
  let db = DB.create () in
  let dept =
    DB.create_table db "dept"
      [
        { T.col_name = "deptno"; col_type = V.Tint };
        { T.col_name = "dname"; col_type = V.Tstr };
      ]
  in
  let emp =
    DB.create_table db "emp"
      [
        { T.col_name = "empno"; col_type = V.Tint };
        { T.col_name = "ename"; col_type = V.Tstr };
        { T.col_name = "sal"; col_type = V.Tint };
        { T.col_name = "deptno"; col_type = V.Tint };
      ]
  in
  T.insert_values dept [ V.Int 10; V.Str "ACCOUNTING" ];
  T.insert_values dept [ V.Int 40; V.Str "OPERATIONS" ];
  T.insert_values emp [ V.Int 7782; V.Str "CLARK"; V.Int 2450; V.Int 10 ];
  T.insert_values emp [ V.Int 7934; V.Str "MILLER"; V.Int 1300; V.Int 10 ];
  T.insert_values emp [ V.Int 7954; V.Str "SMITH"; V.Int 4900; V.Int 40 ];
  ignore (T.create_index emp ~name:"emp_sal" ~column:"sal");
  db

let test_table_errors () =
  let db = setup_db () in
  let dept = DB.table db "dept" in
  (match T.insert_values dept [ V.Int 1 ] with
  | exception T.Table_error _ -> ()
  | _ -> Alcotest.fail "arity mismatch must raise");
  (match DB.table db "ghost" with
  | exception DB.Unknown_table _ -> ()
  | _ -> Alcotest.fail "unknown table must raise");
  match T.column_pos dept "ghost" with
  | exception T.Table_error _ -> ()
  | _ -> Alcotest.fail "unknown column must raise"

let test_scan_filter_project () =
  let db = setup_db () in
  let plan =
    A.Project
      ( [ (A.col "ename", "ename") ],
        A.Filter (A.(col "sal" >. const_int 2000), A.Seq_scan { table = "emp"; alias = "e" }) )
  in
  let names = List.map (fun r -> V.to_string (List.assoc "ename" r)) (E.run db plan) in
  check Alcotest.(list string) "filtered names" [ "CLARK"; "SMITH" ] names

let test_index_scan () =
  let db = setup_db () in
  let plan =
    A.Index_scan
      {
        table = "emp";
        alias = "e";
        index_column = "sal";
        lo = A.Incl (A.const_int 2000);
        hi = A.Unbounded;
      }
  in
  let rows = E.run db plan in
  check ci "two rows" 2 (List.length rows);
  (* index scan returns key order *)
  let sals = List.map (fun r -> V.to_int (List.assoc "sal" r)) rows in
  check Alcotest.(list int) "key order" [ 2450; 4900 ] sals

let test_join () =
  let db = setup_db () in
  let plan =
    A.Nested_loop
      {
        outer = A.Seq_scan { table = "dept"; alias = "d" };
        inner = A.Seq_scan { table = "emp"; alias = "e" };
        join_cond = Some A.(qcol "e" "deptno" =. qcol "d" "deptno");
      }
  in
  check ci "join cardinality" 3 (List.length (E.run db plan))

let test_aggregate () =
  let db = setup_db () in
  let plan =
    A.Aggregate
      {
        group_by = [ (A.col "deptno", "deptno") ];
        aggs =
          [
            (A.Count_star, "n");
            (A.Sum (A.col "sal"), "total");
            (A.Min (A.col "sal"), "lo");
            (A.Max (A.col "sal"), "hi");
            (A.Avg (A.col "sal"), "avg");
          ];
        input = A.Seq_scan { table = "emp"; alias = "e" };
      }
  in
  let rows = E.run db plan in
  check ci "two groups" 2 (List.length rows);
  let g10 = List.find (fun r -> List.assoc "deptno" r = V.Int 10) rows in
  check ci "count" 2 (V.to_int (List.assoc "n" g10));
  check ci "sum" 3750 (V.to_int (List.assoc "total" g10));
  check ci "min" 1300 (V.to_int (List.assoc "lo" g10));
  check ci "max" 2450 (V.to_int (List.assoc "hi" g10))

let test_sort_limit () =
  let db = setup_db () in
  let plan =
    A.Limit
      (2, A.Sort ([ (A.col "sal", A.Desc) ], A.Seq_scan { table = "emp"; alias = "e" }))
  in
  let sals = List.map (fun r -> V.to_int (List.assoc "sal" r)) (E.run db plan) in
  check Alcotest.(list int) "top 2 by sal" [ 4900; 2450 ] sals

let test_scalar_subquery_correlated () =
  let db = setup_db () in
  (* per dept: count of its employees *)
  let sub =
    A.Aggregate
      {
        group_by = [];
        aggs = [ (A.Count_star, "n") ];
        input =
          A.Filter
            ( A.(qcol "e" "deptno" =. qcol "d" "deptno"),
              A.Seq_scan { table = "emp"; alias = "e" } );
      }
  in
  let plan = A.Project ([ (A.Scalar_subquery sub, "n") ], A.Seq_scan { table = "dept"; alias = "d" }) in
  let counts = List.map (fun r -> V.to_int (List.assoc "n" r)) (E.run db plan) in
  check Alcotest.(list int) "correlated counts" [ 2; 1 ] counts

let test_exists_case_nulls () =
  let db = setup_db () in
  let plan =
    A.Project
      ( [
          ( A.Case
              ( [ (A.(col "sal" >. const_int 2000), A.const_str "high") ],
                Some (A.const_str "low") ),
            "band" );
          (A.Is_null (A.Const V.Null), "isnull");
        ],
        A.Seq_scan { table = "emp"; alias = "e" } )
  in
  let bands = List.map (fun r -> V.to_string (List.assoc "band" r)) (E.run db plan) in
  check Alcotest.(list string) "case bands" [ "high"; "low"; "high" ] bands

let test_xml_publishing_exprs () =
  let db = setup_db () in
  let plan =
    A.Project
      ( [
          ( A.Xml_element
              ( "e",
                [ ("no", A.col "empno") ],
                [ A.Xml_element ("name", [], [ A.col "ename" ]) ] ),
            "x" );
        ],
        A.Filter (A.(col "sal" >. const_int 4000), A.Seq_scan { table = "emp"; alias = "e" }) )
  in
  match E.run db plan with
  | [ row ] ->
      check cs "published xml" "<e no=\"7954\"><name>SMITH</name></e>"
        (V.to_string (List.assoc "x" row))
  | _ -> Alcotest.fail "expected one row"

let test_division_semantics () =
  let db = setup_db () in
  let one r = List.hd (E.run db (A.Project ([ (r, "v") ], A.Values { cols = [ "dummy" ]; rows = [ [ V.Int 0 ] ] }))) in
  check ci "integer div" 3 (V.to_int (List.assoc "v" (one A.(Binop (Div, const_int 7, const_int 2)))));
  check cs "float div" "3.5"
    (V.to_string (List.assoc "v" (one A.(Binop (Fdiv, const_int 7, const_int 2)))));
  match E.run db (A.Project ([ (A.(Binop (Div, const_int 1, const_int 0)), "v") ],
                             A.Values { cols = [ "d" ]; rows = [ [ V.Int 0 ] ] })) with
  | exception E.Exec_error _ -> ()
  | _ -> Alcotest.fail "division by zero must raise"

let test_nan_truthiness () =
  (* regression: Float NaN must be false (XPath/SQL boolean semantics);
     the naive [f <> 0.0] test made NaN truthy *)
  check cb "NaN is false" false (E.bool_of_value (V.Float Float.nan));
  check cb "0.0 is false" false (E.bool_of_value (V.Float 0.0));
  check cb "-0.0 is false" false (E.bool_of_value (V.Float (-0.0)));
  check cb "1.5 is true" true (E.bool_of_value (V.Float 1.5));
  check cb "inf is true" true (E.bool_of_value (V.Float Float.infinity));
  (* a 0/0 filter condition evaluates to NaN and must reject every row *)
  let db = setup_db () in
  let nan_cond = A.Binop (A.Fdiv, A.Const (V.Float 0.0), A.Const (V.Float 0.0)) in
  check ci "NaN filter rejects all" 0
    (List.length (E.run db (A.Filter (nan_cond, A.Seq_scan { table = "emp"; alias = "e" }))));
  (* and a NaN CASE condition must fall through to the ELSE branch *)
  let case_plan =
    A.Project
      ( [ (A.Case ([ (nan_cond, A.const_str "then") ], Some (A.const_str "else")), "v") ],
        A.Values { cols = [ "d" ]; rows = [ [ V.Int 0 ] ] } )
  in
  match E.run db case_plan with
  | [ row ] -> check cs "NaN case takes else" "else" (V.to_string (List.assoc "v" row))
  | _ -> Alcotest.fail "expected one row"

let test_sql_round_negative_zero () =
  (* XPath §4.4 semantics mirrored in the SQL executor: round(-0.2) and
     round(-0.5) are negative zero, not plain 0 with the wrong sign *)
  let db = DB.create () in
  let round v =
    let plan =
      A.Project
        ( [ (A.Fn ("round", [ A.Const (V.Float v) ]), "r") ],
          A.Values { cols = [ "d" ]; rows = [ [ V.Int 0 ] ] } )
    in
    match E.run db plan with
    | [ row ] -> ( match List.assoc "r" row with V.Float f -> f | _ -> Alcotest.fail "not float")
    | _ -> Alcotest.fail "expected one row"
  in
  let is_neg_zero f = f = 0.0 && 1.0 /. f = Float.neg_infinity in
  check cb "round(-0.2) is -0" true (is_neg_zero (round (-0.2)));
  check cb "round(-0.5) is -0" true (is_neg_zero (round (-0.5)));
  check (Alcotest.float 0.0) "round(-0.51)" (-1.0) (round (-0.51));
  check (Alcotest.float 0.0) "round(2.5)" 3.0 (round 2.5);
  check cb "round(nan) is nan" true (Float.is_nan (round Float.nan));
  check (Alcotest.float 0.0) "round(inf)" Float.infinity (round Float.infinity)

(* ------------------------------------------------------------------ *)
(* instrumentation (EXPLAIN ANALYZE)                                   *)
(* ------------------------------------------------------------------ *)

module ST = Xdb_rel.Stats

let test_btree_counters () =
  let t = BT.create () in
  for i = 1 to 1000 do
    BT.insert t (V.Int i) i
  done;
  check ci "fresh probes" 0 (BT.probes t);
  ignore (BT.find t (V.Int 500));
  check ci "one probe" 1 (BT.probes t);
  check cb "visits >= height" true (BT.node_visits t >= BT.height t);
  let v1 = BT.node_visits t in
  ignore (BT.range t ~lo:(BT.Inclusive (V.Int 10)) ~hi:(BT.Inclusive (V.Int 20)));
  check ci "range counts a probe" 2 (BT.probes t);
  check cb "range visits nodes" true (BT.node_visits t > v1);
  BT.reset_counters t;
  check ci "reset probes" 0 (BT.probes t);
  check ci "reset visits" 0 (BT.node_visits t)

let test_run_analyzed_index_scan () =
  let db = setup_db () in
  let plan =
    A.Index_scan
      {
        table = "emp";
        alias = "e";
        index_column = "sal";
        lo = A.Incl (A.const_int 2450);
        hi = A.Incl (A.const_int 2450);
      }
  in
  let rows, stats = E.run_analyzed db plan in
  check ci "one row" 1 (List.length rows);
  (match ST.find stats plan with
  | Some s ->
      check ci "actual rows" 1 s.ST.rows;
      check ci "one loop" 1 s.ST.loops;
      check ci "one btree probe" 1 s.ST.btree_probes;
      check cb "nodes visited" true (s.ST.btree_nodes >= 1);
      check ci "heap rows = produced" 1 s.ST.heap_rows
  | None -> Alcotest.fail "root operator not in stats");
  let text = O.explain_analyze db plan stats in
  check cb "annotated line present" true (contains text "actual=1 loops=1");
  check cb "probe count rendered" true (contains text "probes=1");
  check cb "estimate on same line" true (contains text "est=")

let test_run_analyzed_subplans_and_json () =
  let db = setup_db () in
  (* correlated subquery: the inner aggregate must appear in the stats
     with one loop per outer row *)
  let sub =
    A.Aggregate
      {
        group_by = [];
        aggs = [ (A.Count_star, "n") ];
        input =
          A.Filter
            ( A.(qcol "e" "deptno" =. qcol "d" "deptno"),
              A.Seq_scan { table = "emp"; alias = "e" } );
      }
  in
  let plan =
    A.Project ([ (A.Scalar_subquery sub, "n") ], A.Seq_scan { table = "dept"; alias = "d" })
  in
  let rows, stats = E.run_analyzed db plan in
  check ci "two dept rows" 2 (List.length rows);
  (match ST.find stats sub with
  | Some s ->
      check ci "subquery executed per outer row" 2 s.ST.loops;
      check ci "one aggregate row per loop" 2 s.ST.rows
  | None -> Alcotest.fail "subplan not registered in stats");
  check ci "all operators registered" 5 (List.length (ST.entries stats));
  check ci "root rows" 2 (ST.root_rows stats);
  (* JSON rendering is well-formed enough to keep field order stable *)
  let json = ST.to_json stats in
  check cb "json array" true
    (String.length json > 2 && json.[0] = '[' && json.[String.length json - 1] = ']');
  check cb "json mentions SeqScan" true (contains json {|"op":"SeqScan dept"|})

let test_drop_index_changes_plan () =
  let db = setup_db () in
  let plan =
    A.Filter (A.(col "sal" =. const_int 2450), A.Seq_scan { table = "emp"; alias = "e" })
  in
  (match O.optimize db plan with
  | A.Index_scan { index_column = "sal"; _ } -> ()
  | p -> Alcotest.failf "expected index scan before drop, got %s" (A.plan_sql p));
  T.drop_index (DB.table db "emp") ~name:"emp_sal";
  (match O.optimize db plan with
  | A.Filter (_, A.Seq_scan _) -> ()
  | p -> Alcotest.failf "expected full scan after drop, got %s" (A.plan_sql p));
  (* instrumented full scan touches every heap row *)
  let rows, stats = E.run_analyzed db (O.optimize db plan) in
  check ci "same result" 1 (List.length rows);
  match ST.entries stats with
  | _ :: { ST.node = A.Seq_scan _; op; _ } :: _ ->
      check ci "full scan heap rows" 3 op.ST.heap_rows;
      check ci "no btree probes" 0 op.ST.btree_probes
  | _ -> Alcotest.fail "expected Filter over SeqScan entries"

(* ------------------------------------------------------------------ *)
(* optimizer                                                           *)
(* ------------------------------------------------------------------ *)

let test_optimizer_index_selection () =
  let db = setup_db () in
  let plan =
    A.Filter (A.(col "sal" >. const_int 2000), A.Seq_scan { table = "emp"; alias = "e" })
  in
  (match O.optimize db plan with
  | A.Index_scan { index_column = "sal"; lo = A.Excl _; hi = A.Unbounded; _ } -> ()
  | p -> Alcotest.failf "expected index scan, got %s" (A.plan_sql p));
  (* conjunct splitting leaves a residual filter *)
  let plan2 =
    A.Filter
      ( A.(Binop (And, col "sal" >. const_int 2000, col "deptno" =. const_int 10)),
        A.Seq_scan { table = "emp"; alias = "e" } )
  in
  (match O.optimize db plan2 with
  | A.Filter (_, A.Index_scan { index_column = "sal"; _ }) -> ()
  | p -> Alcotest.failf "expected residual filter over index scan, got %s" (A.plan_sql p));
  (* flipped comparison still sargable *)
  let plan3 =
    A.Filter (A.(const_int 2000 <. col "sal"), A.Seq_scan { table = "emp"; alias = "e" })
  in
  (match O.optimize db plan3 with
  | A.Index_scan { lo = A.Excl _; _ } -> ()
  | p -> Alcotest.failf "flipped comparison: %s" (A.plan_sql p));
  (* no index on dname: stays a filter *)
  let plan4 =
    A.Filter (A.(col "dname" =. const_str "X"), A.Seq_scan { table = "dept"; alias = "d" })
  in
  match O.optimize db plan4 with
  | A.Filter (_, A.Seq_scan _) -> ()
  | p -> Alcotest.failf "expected plain filter, got %s" (A.plan_sql p)

let test_cardinality_estimates () =
  let db = setup_db () in
  let scan = A.Seq_scan { table = "emp"; alias = "e" } in
  let eq_scan =
    A.Index_scan
      { table = "emp"; alias = "e"; index_column = "sal";
        lo = A.Incl (A.const_int 2450); hi = A.Incl (A.const_int 2450) }
  in
  let range_scan =
    A.Index_scan
      { table = "emp"; alias = "e"; index_column = "sal";
        lo = A.Excl (A.const_int 2000); hi = A.Unbounded }
  in
  let n = O.estimate_rows db scan in
  check cb "scan = table size" true (n = 3.0);
  check cb "eq <= range" true (O.estimate_rows db eq_scan <= O.estimate_rows db range_scan);
  check cb "range < scan" true (O.estimate_rows db range_scan < n);
  let filtered = A.Filter (A.(col "sal" >. const_int 0), scan) in
  check cb "filter shrinks" true (O.estimate_rows db filtered < n);
  check cb "grouped aggregate" true
    (O.estimate_rows db
       (A.Aggregate { group_by = [ (A.col "deptno", "d") ]; aggs = []; input = scan })
    < n);
  check cb "global aggregate = 1" true
    (O.estimate_rows db (A.Aggregate { group_by = []; aggs = []; input = scan }) = 1.0)

let test_optimizer_preserves_results () =
  let db = setup_db () in
  let plan =
    A.Project
      ( [ (A.col "ename", "ename") ],
        A.Filter (A.(col "sal" >. const_int 1500), A.Seq_scan { table = "emp"; alias = "e" }) )
  in
  let before = E.run db plan |> List.map (fun r -> List.assoc "ename" r) |> List.sort compare in
  let after =
    E.run db (O.optimize_deep db plan) |> List.map (fun r -> List.assoc "ename" r) |> List.sort compare
  in
  check cb "same result set" true (before = after)

(* ------------------------------------------------------------------ *)
(* publishing                                                          *)
(* ------------------------------------------------------------------ *)

let dept_view =
  {
    P.view_name = "dept_emp";
    base_table = "dept";
    base_alias = "dept";
    column = "dept_content";
    spec =
      P.Elem
        {
          name = "dept";
          attrs = [];
          content =
            [
              P.Elem { name = "dname"; attrs = []; content = [ P.Text_col "dname" ] };
              P.Elem
                {
                  name = "employees";
                  attrs = [];
                  content =
                    [
                      P.Agg
                        {
                          table = "emp";
                          alias = "emp";
                          correlate = [ ("deptno", "deptno") ];
                          where = None;
                          order_by = [ ("empno", A.Asc) ];
                          body =
                            P.Elem
                              {
                                name = "emp";
                                attrs = [];
                                content =
                                  [
                                    P.Elem { name = "ename"; attrs = []; content = [ P.Text_col "ename" ] };
                                    P.Elem { name = "sal"; attrs = []; content = [ P.Text_col "sal" ] };
                                  ];
                              };
                        };
                    ];
                };
            ];
        };
  }

let test_materialize () =
  let db = setup_db () in
  let docs = P.materialize db dept_view in
  check ci "one doc per dept row" 2 (List.length docs);
  let first = Xdb_xml.Serializer.to_string (List.hd docs) in
  check cs "paper Table 4 shape"
    "<dept><dname>ACCOUNTING</dname><employees><emp><ename>CLARK</ename><sal>2450</sal></emp><emp><ename>MILLER</ename><sal>1300</sal></emp></employees></dept>"
    first

let test_view_schema () =
  let db = setup_db () in
  ignore db;
  let schema = P.to_schema dept_view in
  check cs "root" "dept" schema.Xdb_schema.Types.root;
  let employees = Xdb_schema.Types.find_exn schema "employees" in
  check cs "emp cardinality many" "many"
    (Xdb_schema.Types.occurs_name (List.hd employees.Xdb_schema.Types.particles).Xdb_schema.Types.occurs);
  let dept = Xdb_schema.Types.find_exn schema "dept" in
  check cs "dname cardinality one" "one"
    (Xdb_schema.Types.occurs_name (List.hd dept.Xdb_schema.Types.particles).Xdb_schema.Types.occurs)

let test_spec_navigation () =
  (match P.navigate dept_view.P.spec "employees" with
  | Some (P.Elem { name = "employees"; _ } as employees) -> (
      match P.navigate employees "emp" with
      | Some (P.Agg _ as emp) -> (
          match P.navigate emp "sal" with
          | Some sal -> check cb "sal scalar column" true (P.scalar_column sal = Some "sal")
          | None -> Alcotest.fail "sal not found")
      | _ -> Alcotest.fail "emp should be an Agg")
  | _ -> Alcotest.fail "employees not found");
  check cb "missing child" true (P.navigate dept_view.P.spec "ghost" = None)

let test_materialize_index_probe_consistency () =
  (* adding an index on the correlation column must not change results *)
  let db = setup_db () in
  let without = List.map Xdb_xml.Serializer.to_string (P.materialize db dept_view) in
  let emp = DB.table db "emp" in
  ignore (T.create_index emp ~name:"emp_deptno" ~column:"deptno");
  let with_idx = List.map Xdb_xml.Serializer.to_string (P.materialize db dept_view) in
  check cb "index-probe materialisation identical" true (without = with_idx)

let test_clob_roundtrip () =
  let db = setup_db () in
  let docs =
    [ Xdb_xml.Parser.parse "<a><b>1</b></a>"; Xdb_xml.Parser.parse "<c x=\"y\">2</c>" ]
  in
  ignore (Xdb_rel.Clob.store db ~table:"docs" docs);
  let back = Xdb_rel.Clob.load db ~table:"docs" in
  check ci "two docs" 2 (List.length back);
  check cb "roundtrip equal" true
    (List.for_all2 (fun a b -> X.deep_equal a b) docs back);
  (match Xdb_rel.Clob.load_one db ~table:"docs" ~docid:2 with
  | Some d -> check cs "point fetch" "<c x=\"y\">2</c>"
      (Xdb_xml.Serializer.to_string (Xdb_xml.Parser.document_element d))
  | None -> Alcotest.fail "doc 2 missing");
  check cb "missing doc" true (Xdb_rel.Clob.load_one db ~table:"docs" ~docid:99 = None)

let test_pathindex () =
  let doc1 = Xdb_xml.Parser.parse "<t><r><id>1</id><v a=\"x\">hello</v></r></t>" in
  let doc2 = Xdb_xml.Parser.parse "<t><r><id>2</id><v a=\"y\">hello</v></r></t>" in
  let idx = Xdb_rel.Pathindex.build [ (1, doc1); (2, doc2) ] in
  check Alcotest.(list int) "value lookup" [ 1 ]
    (Xdb_rel.Pathindex.lookup idx ~path:"/t/r/id" ~value:"1");
  check Alcotest.(list int) "shared value" [ 1; 2 ]
    (Xdb_rel.Pathindex.lookup idx ~path:"/t/r/v" ~value:"hello");
  check Alcotest.(list int) "attribute path" [ 2 ]
    (Xdb_rel.Pathindex.lookup idx ~path:"/t/r/v/@a" ~value:"y");
  check Alcotest.(list int) "no match" []
    (Xdb_rel.Pathindex.lookup idx ~path:"/t/r/id" ~value:"42");
  let n_docs, n_entries = Xdb_rel.Pathindex.stats idx in
  check ci "docs indexed" 2 n_docs;
  check cb "entries counted" true (n_entries >= 6)

let () =
  Alcotest.run "relational"
    [
      ( "values",
        [
          Alcotest.test_case "casts" `Quick test_value_casts;
          Alcotest.test_case "comparisons" `Quick test_value_compare;
        ] );
      ( "btree",
        [
          Alcotest.test_case "insert/find" `Quick test_btree_basic;
          Alcotest.test_case "duplicates" `Quick test_btree_duplicates;
          Alcotest.test_case "range scans" `Quick test_btree_range;
          Alcotest.test_case "string keys" `Quick test_btree_strings;
          QCheck_alcotest.to_alcotest prop_btree_model;
        ] );
      ( "executor",
        [
          Alcotest.test_case "table errors" `Quick test_table_errors;
          Alcotest.test_case "scan/filter/project" `Quick test_scan_filter_project;
          Alcotest.test_case "index scan" `Quick test_index_scan;
          Alcotest.test_case "join" `Quick test_join;
          Alcotest.test_case "aggregate" `Quick test_aggregate;
          Alcotest.test_case "sort/limit" `Quick test_sort_limit;
          Alcotest.test_case "correlated subquery" `Quick test_scalar_subquery_correlated;
          Alcotest.test_case "case/exists/null" `Quick test_exists_case_nulls;
          Alcotest.test_case "SQL/XML publishing" `Quick test_xml_publishing_exprs;
          Alcotest.test_case "division semantics" `Quick test_division_semantics;
          Alcotest.test_case "NaN truthiness" `Quick test_nan_truthiness;
          Alcotest.test_case "round negative zero" `Quick test_sql_round_negative_zero;
        ] );
      ( "instrumentation",
        [
          Alcotest.test_case "btree counters" `Quick test_btree_counters;
          Alcotest.test_case "analyzed index scan" `Quick test_run_analyzed_index_scan;
          Alcotest.test_case "subplans + json" `Quick test_run_analyzed_subplans_and_json;
          Alcotest.test_case "drop index flips plan" `Quick test_drop_index_changes_plan;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "index selection" `Quick test_optimizer_index_selection;
          Alcotest.test_case "plan equivalence" `Quick test_optimizer_preserves_results;
          Alcotest.test_case "cardinality estimates" `Quick test_cardinality_estimates;
        ] );
      ( "publishing",
        [
          Alcotest.test_case "materialize" `Quick test_materialize;
          Alcotest.test_case "derived schema" `Quick test_view_schema;
          Alcotest.test_case "spec navigation" `Quick test_spec_navigation;
          Alcotest.test_case "index-probe consistency" `Quick test_materialize_index_probe_consistency;
        ] );
      ( "storage",
        [
          Alcotest.test_case "CLOB roundtrip" `Quick test_clob_roundtrip;
          Alcotest.test_case "path/value index" `Quick test_pathindex;
        ] );
    ]
