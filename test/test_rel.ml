(* Tests for xdb_rel: values, B-tree, tables, executor, optimizer,
   publishing. *)

module V = Xdb_rel.Value
module BT = Xdb_rel.Btree
module T = Xdb_rel.Table
module DB = Xdb_rel.Database
module A = Xdb_rel.Algebra
module E = Xdb_rel.Exec
module O = Xdb_rel.Optimizer
module P = Xdb_rel.Publish
module X = Xdb_xml.Types

let check = Alcotest.check
let cs = Alcotest.string
let cb = Alcotest.bool
let ci = Alcotest.int

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* values                                                              *)
(* ------------------------------------------------------------------ *)

let test_value_casts () =
  check ci "str to int" 42 (V.to_int (V.Str " 42 "));
  check (Alcotest.float 1e-9) "int to float" 3.0 (V.to_float (V.Int 3));
  check cs "float integral prints bare" "4" (V.to_string (V.Float 4.0));
  check cs "float fraction" "2.5" (V.to_string (V.Float 2.5));
  check cs "null prints empty" "" (V.to_string V.Null);
  match V.to_int (V.Str "nope") with
  | exception V.Type_error _ -> ()
  | _ -> Alcotest.fail "bad cast must raise"

let test_value_compare () =
  check cb "null incomparable" true (V.compare_sql V.Null (V.Int 1) = None);
  check cb "mixed numeric" true (V.compare_sql (V.Int 2) (V.Float 2.0) = Some 0);
  check cb "string coerced" true (V.compare_sql (V.Str "10") (V.Int 9) = Some 1);
  check cb "key order total" true (V.compare_key V.Null (V.Int 0) < 0)

(* ------------------------------------------------------------------ *)
(* B-tree                                                              *)
(* ------------------------------------------------------------------ *)

let test_btree_basic () =
  let t = BT.create () in
  for i = 0 to 999 do
    BT.insert t (V.Int ((i * 37) mod 1000)) i
  done;
  check cb "invariants" true (BT.check_invariants t);
  check ci "size" 1000 (BT.size t);
  check cb "height grew" true (BT.height t > 1);
  (* each key inserted exactly once with rid = i where key = (i*37) mod 1000;
     37 is coprime with 1000 so every key in 0..999 appears once *)
  check ci "find point" 1 (List.length (BT.find t (V.Int 500)));
  check ci "find missing" 0 (List.length (BT.find t (V.Int 12345)))

let test_btree_duplicates () =
  let t = BT.create () in
  List.iter (fun i -> BT.insert t (V.Int 7) i) [ 1; 2; 3 ];
  BT.insert t (V.Int 9) 4;
  check Alcotest.(list int) "dup rows in insert order" [ 1; 2; 3 ] (BT.find t (V.Int 7))

let test_btree_range () =
  let t = BT.create () in
  for i = 1 to 100 do
    BT.insert t (V.Int i) i
  done;
  let r = BT.range t ~lo:(BT.Inclusive (V.Int 10)) ~hi:(BT.Exclusive (V.Int 13)) in
  check Alcotest.(list int) "range [10,13)" [ 10; 11; 12 ] (List.map snd r);
  let r = BT.range t ~lo:(BT.Exclusive (V.Int 98)) ~hi:BT.Unbounded in
  check Alcotest.(list int) "open top" [ 99; 100 ] (List.map snd r);
  check ci "full scan" 100 (List.length (BT.to_list t))

let test_btree_strings () =
  let t = BT.create () in
  List.iteri (fun i s -> BT.insert t (V.Str s) i) [ "pear"; "apple"; "fig" ];
  let keys = List.map fst (BT.to_list t) in
  check Alcotest.(list string) "sorted keys" [ "apple"; "fig"; "pear" ]
    (List.map V.to_string keys)

(* qcheck: B-tree vs sorted association list model *)
let prop_btree_model =
  QCheck.Test.make ~name:"btree matches assoc model" ~count:100
    QCheck.(list (pair (int_bound 50) (int_bound 1000)))
    (fun pairs ->
      let t = BT.create () in
      List.iteri (fun rid (k, _) -> BT.insert t (V.Int k) rid) pairs;
      BT.check_invariants t
      && List.for_all
           (fun (k, _) ->
             let expected =
               List.filteri (fun _ (k', _) -> k' = k) (List.mapi (fun i p -> (fst p, i)) pairs)
               |> List.map snd
             in
             BT.find t (V.Int k) = expected)
           pairs)

let test_btree_remove () =
  let t = BT.create () in
  for i = 0 to 999 do
    BT.insert t (V.Int (i mod 100)) i
  done;
  (* each key 0..99 has rids [k; k+100; ...; k+900] *)
  check cb "present entry removed" true (BT.remove t (V.Int 7) 107);
  check cb "absent rid is a no-op" false (BT.remove t (V.Int 7) 107);
  check cb "absent key is a no-op" false (BT.remove t (V.Int 12345) 0);
  check ci "size tracks removals" 999 (BT.size t);
  check Alcotest.(list int) "other rids of the key survive"
    [ 7; 207; 307; 407; 507; 607; 707; 807; 907 ]
    (BT.find t (V.Int 7));
  check cb "invariants hold" true (BT.check_invariants t);
  (* empty a key out entirely: it must vanish from range scans *)
  List.iter (fun rid -> ignore (BT.remove t (V.Int 8) rid)) [ 8; 108; 208; 308; 408; 508; 608; 708; 808; 908 ];
  check ci "emptied key gone" 0 (List.length (BT.find t (V.Int 8)));
  let rids = BT.range_rids t ~lo:(BT.Inclusive (V.Int 7)) ~hi:(BT.Inclusive (V.Int 9)) in
  check cb "range_rids skips the emptied key" true
    (Array.for_all (fun rid -> rid mod 100 = 7 || rid mod 100 = 9) rids);
  check ci "range_rids count" 19 (Array.length rids);
  check cb "invariants after key drop" true (BT.check_invariants t)

(* qcheck: interleaved insert/remove vs a multiset model; range_rids must
   always agree with a filter over the model *)
let prop_btree_remove_model =
  QCheck.Test.make ~name:"btree remove matches model" ~count:100
    QCheck.(list (pair bool (pair (int_bound 20) (int_bound 30))))
    (fun ops ->
      let t = BT.create () in
      let model = ref [] in
      List.iter
        (fun (is_remove, (k, rid)) ->
          if is_remove then (
            let present = List.mem (k, rid) !model in
            let removed = BT.remove t (V.Int k) rid in
            if removed <> present then QCheck.Test.fail_report "remove result vs model";
            if present then
              model :=
                (let seen = ref false in
                 List.filter
                   (fun e ->
                     if e = (k, rid) && not !seen then (
                       seen := true;
                       false)
                     else true)
                   !model))
          else (
            BT.insert t (V.Int k) rid;
            model := !model @ [ (k, rid) ]))
        ops;
      let in_range lo hi =
        BT.range_rids t ~lo:(BT.Inclusive (V.Int lo)) ~hi:(BT.Inclusive (V.Int hi))
        |> Array.to_list |> List.sort compare
      in
      let model_range lo hi =
        List.filter (fun (k, _) -> k >= lo && k <= hi) !model |> List.map snd |> List.sort compare
      in
      BT.check_invariants t
      && BT.size t = List.length !model
      && in_range 0 30 = model_range 0 30
      && in_range 5 15 = model_range 5 15)

(* ------------------------------------------------------------------ *)
(* tables and executor                                                 *)
(* ------------------------------------------------------------------ *)

let setup_db () =
  let db = DB.create () in
  let dept =
    DB.create_table db "dept"
      [
        { T.col_name = "deptno"; col_type = V.Tint };
        { T.col_name = "dname"; col_type = V.Tstr };
      ]
  in
  let emp =
    DB.create_table db "emp"
      [
        { T.col_name = "empno"; col_type = V.Tint };
        { T.col_name = "ename"; col_type = V.Tstr };
        { T.col_name = "sal"; col_type = V.Tint };
        { T.col_name = "deptno"; col_type = V.Tint };
      ]
  in
  T.insert_values dept [ V.Int 10; V.Str "ACCOUNTING" ];
  T.insert_values dept [ V.Int 40; V.Str "OPERATIONS" ];
  T.insert_values emp [ V.Int 7782; V.Str "CLARK"; V.Int 2450; V.Int 10 ];
  T.insert_values emp [ V.Int 7934; V.Str "MILLER"; V.Int 1300; V.Int 10 ];
  T.insert_values emp [ V.Int 7954; V.Str "SMITH"; V.Int 4900; V.Int 40 ];
  ignore (T.create_index emp ~name:"emp_sal" ~column:"sal");
  db

let test_table_errors () =
  let db = setup_db () in
  let dept = DB.table db "dept" in
  (match T.insert_values dept [ V.Int 1 ] with
  | exception T.Table_error _ -> ()
  | _ -> Alcotest.fail "arity mismatch must raise");
  (match DB.table db "ghost" with
  | exception DB.Unknown_table _ -> ()
  | _ -> Alcotest.fail "unknown table must raise");
  match T.column_pos dept "ghost" with
  | exception T.Table_error _ -> ()
  | _ -> Alcotest.fail "unknown column must raise"

let test_table_update_delete () =
  let db = setup_db () in
  let emp = DB.table db "emp" in
  let sal_pos = T.column_pos emp "sal" in
  let idx = List.hd emp.T.indexes in
  let rids_at v = BT.find idx.T.tree (V.Int v) in
  (* update maintains the index: old key entry out, new one in *)
  let clark = List.hd (rids_at 2450) in
  T.update emp clark [ (sal_pos, V.Int 2600) ];
  check ci "old key entry removed" 0 (List.length (rids_at 2450));
  check Alcotest.(list int) "new key entry present" [ clark ] (rids_at 2600);
  check cb "row itself updated" true ((T.row emp clark).(sal_pos) = V.Int 2600);
  check cb "index invariants" true (BT.check_invariants idx.T.tree);
  (* updating a non-indexed column leaves the tree untouched *)
  let before = BT.size idx.T.tree in
  T.update emp clark [ (T.column_pos emp "ename", V.Str "CLARKE") ];
  check ci "non-indexed update: tree unchanged" before (BT.size idx.T.tree);
  (* delete compacts the heap and rebuilds the index: every rid the
     index hands out must address the right surviving row *)
  let n = T.delete emp (rids_at 2600) in
  check ci "one row deleted" 1 n;
  check ci "heap compacted" 2 emp.T.nrows;
  (* delete replaces the index records wholesale — re-fetch *)
  let idx = List.hd emp.T.indexes in
  let rids_at v = BT.find idx.T.tree (V.Int v) in
  check ci "index rebuilt to survivors" 2 (BT.size idx.T.tree);
  let all =
    BT.range_rids idx.T.tree ~lo:BT.Unbounded ~hi:BT.Unbounded |> Array.to_list
  in
  List.iter
    (fun rid ->
      check cb "rid in compacted range" true (rid >= 0 && rid < emp.T.nrows);
      let row = T.row emp rid in
      let keyed = BT.find idx.T.tree row.(sal_pos) in
      check cb "index key matches the row it points at" true (List.mem rid keyed))
    all;
  check Alcotest.(list int) "survivors in key order"
    (List.sort compare (List.concat_map rids_at [ 1300; 4900 ]))
    (List.sort compare all);
  (* deleting everything leaves an empty, still-consistent table *)
  ignore (T.delete emp (List.init emp.T.nrows Fun.id));
  let idx = List.hd emp.T.indexes in
  check ci "empty heap" 0 emp.T.nrows;
  check ci "empty index" 0 (BT.size idx.T.tree)

let test_scan_filter_project () =
  let db = setup_db () in
  let plan =
    A.Project
      ( [ (A.col "ename", "ename") ],
        A.Filter (A.(col "sal" >. const_int 2000), A.Seq_scan { table = "emp"; alias = "e" }) )
  in
  let names = List.map (fun r -> V.to_string (List.assoc "ename" r)) (E.run db plan) in
  check Alcotest.(list string) "filtered names" [ "CLARK"; "SMITH" ] names

let test_index_scan () =
  let db = setup_db () in
  let plan =
    A.Index_scan
      {
        table = "emp";
        alias = "e";
        index_column = "sal";
        lo = A.Incl (A.const_int 2000);
        hi = A.Unbounded;
      }
  in
  let rows = E.run db plan in
  check ci "two rows" 2 (List.length rows);
  (* index scan returns key order *)
  let sals = List.map (fun r -> V.to_int (List.assoc "sal" r)) rows in
  check Alcotest.(list int) "key order" [ 2450; 4900 ] sals

let test_join () =
  let db = setup_db () in
  let plan =
    A.Nested_loop
      {
        outer = A.Seq_scan { table = "dept"; alias = "d" };
        inner = A.Seq_scan { table = "emp"; alias = "e" };
        join_cond = Some A.(qcol "e" "deptno" =. qcol "d" "deptno");
      }
  in
  check ci "join cardinality" 3 (List.length (E.run db plan))

let test_aggregate () =
  let db = setup_db () in
  let plan =
    A.Aggregate
      {
        group_by = [ (A.col "deptno", "deptno") ];
        aggs =
          [
            (A.Count_star, "n");
            (A.Sum (A.col "sal"), "total");
            (A.Min (A.col "sal"), "lo");
            (A.Max (A.col "sal"), "hi");
            (A.Avg (A.col "sal"), "avg");
          ];
        input = A.Seq_scan { table = "emp"; alias = "e" };
      }
  in
  let rows = E.run db plan in
  check ci "two groups" 2 (List.length rows);
  let g10 = List.find (fun r -> List.assoc "deptno" r = V.Int 10) rows in
  check ci "count" 2 (V.to_int (List.assoc "n" g10));
  check ci "sum" 3750 (V.to_int (List.assoc "total" g10));
  check ci "min" 1300 (V.to_int (List.assoc "lo" g10));
  check ci "max" 2450 (V.to_int (List.assoc "hi" g10))

let test_sort_limit () =
  let db = setup_db () in
  let plan =
    A.Limit
      (2, A.Sort ([ (A.col "sal", A.Desc) ], A.Seq_scan { table = "emp"; alias = "e" }))
  in
  let sals = List.map (fun r -> V.to_int (List.assoc "sal" r)) (E.run db plan) in
  check Alcotest.(list int) "top 2 by sal" [ 4900; 2450 ] sals

let test_scalar_subquery_correlated () =
  let db = setup_db () in
  (* per dept: count of its employees *)
  let sub =
    A.Aggregate
      {
        group_by = [];
        aggs = [ (A.Count_star, "n") ];
        input =
          A.Filter
            ( A.(qcol "e" "deptno" =. qcol "d" "deptno"),
              A.Seq_scan { table = "emp"; alias = "e" } );
      }
  in
  let plan = A.Project ([ (A.Scalar_subquery sub, "n") ], A.Seq_scan { table = "dept"; alias = "d" }) in
  let counts = List.map (fun r -> V.to_int (List.assoc "n" r)) (E.run db plan) in
  check Alcotest.(list int) "correlated counts" [ 2; 1 ] counts

let test_exists_case_nulls () =
  let db = setup_db () in
  let plan =
    A.Project
      ( [
          ( A.Case
              ( [ (A.(col "sal" >. const_int 2000), A.const_str "high") ],
                Some (A.const_str "low") ),
            "band" );
          (A.Is_null (A.Const V.Null), "isnull");
        ],
        A.Seq_scan { table = "emp"; alias = "e" } )
  in
  let bands = List.map (fun r -> V.to_string (List.assoc "band" r)) (E.run db plan) in
  check Alcotest.(list string) "case bands" [ "high"; "low"; "high" ] bands

let test_xml_publishing_exprs () =
  let db = setup_db () in
  let plan =
    A.Project
      ( [
          ( A.Xml_element
              ( "e",
                [ ("no", A.col "empno") ],
                [ A.Xml_element ("name", [], [ A.col "ename" ]) ] ),
            "x" );
        ],
        A.Filter (A.(col "sal" >. const_int 4000), A.Seq_scan { table = "emp"; alias = "e" }) )
  in
  match E.run db plan with
  | [ row ] ->
      check cs "published xml" "<e no=\"7954\"><name>SMITH</name></e>"
        (V.to_string (List.assoc "x" row))
  | _ -> Alcotest.fail "expected one row"

let test_division_semantics () =
  let db = setup_db () in
  let one r = List.hd (E.run db (A.Project ([ (r, "v") ], A.Values { cols = [ "dummy" ]; rows = [ [ V.Int 0 ] ] }))) in
  check ci "integer div" 3 (V.to_int (List.assoc "v" (one A.(Binop (Div, const_int 7, const_int 2)))));
  check cs "float div" "3.5"
    (V.to_string (List.assoc "v" (one A.(Binop (Fdiv, const_int 7, const_int 2)))));
  match E.run db (A.Project ([ (A.(Binop (Div, const_int 1, const_int 0)), "v") ],
                             A.Values { cols = [ "d" ]; rows = [ [ V.Int 0 ] ] })) with
  | exception E.Exec_error _ -> ()
  | _ -> Alcotest.fail "division by zero must raise"

let test_nan_truthiness () =
  (* regression: Float NaN must be false (XPath/SQL boolean semantics);
     the naive [f <> 0.0] test made NaN truthy *)
  check cb "NaN is false" false (E.bool_of_value (V.Float Float.nan));
  check cb "0.0 is false" false (E.bool_of_value (V.Float 0.0));
  check cb "-0.0 is false" false (E.bool_of_value (V.Float (-0.0)));
  check cb "1.5 is true" true (E.bool_of_value (V.Float 1.5));
  check cb "inf is true" true (E.bool_of_value (V.Float Float.infinity));
  (* a 0/0 filter condition evaluates to NaN and must reject every row *)
  let db = setup_db () in
  let nan_cond = A.Binop (A.Fdiv, A.Const (V.Float 0.0), A.Const (V.Float 0.0)) in
  check ci "NaN filter rejects all" 0
    (List.length (E.run db (A.Filter (nan_cond, A.Seq_scan { table = "emp"; alias = "e" }))));
  (* and a NaN CASE condition must fall through to the ELSE branch *)
  let case_plan =
    A.Project
      ( [ (A.Case ([ (nan_cond, A.const_str "then") ], Some (A.const_str "else")), "v") ],
        A.Values { cols = [ "d" ]; rows = [ [ V.Int 0 ] ] } )
  in
  match E.run db case_plan with
  | [ row ] -> check cs "NaN case takes else" "else" (V.to_string (List.assoc "v" row))
  | _ -> Alcotest.fail "expected one row"

let test_sql_round_negative_zero () =
  (* XPath §4.4 semantics mirrored in the SQL executor: round(-0.2) and
     round(-0.5) are negative zero, not plain 0 with the wrong sign *)
  let db = DB.create () in
  let round v =
    let plan =
      A.Project
        ( [ (A.Fn ("round", [ A.Const (V.Float v) ]), "r") ],
          A.Values { cols = [ "d" ]; rows = [ [ V.Int 0 ] ] } )
    in
    match E.run db plan with
    | [ row ] -> ( match List.assoc "r" row with V.Float f -> f | _ -> Alcotest.fail "not float")
    | _ -> Alcotest.fail "expected one row"
  in
  let is_neg_zero f = f = 0.0 && 1.0 /. f = Float.neg_infinity in
  check cb "round(-0.2) is -0" true (is_neg_zero (round (-0.2)));
  check cb "round(-0.5) is -0" true (is_neg_zero (round (-0.5)));
  check (Alcotest.float 0.0) "round(-0.51)" (-1.0) (round (-0.51));
  check (Alcotest.float 0.0) "round(2.5)" 3.0 (round 2.5);
  check cb "round(nan) is nan" true (Float.is_nan (round Float.nan));
  check (Alcotest.float 0.0) "round(inf)" Float.infinity (round Float.infinity)

(* ------------------------------------------------------------------ *)
(* instrumentation (EXPLAIN ANALYZE)                                   *)
(* ------------------------------------------------------------------ *)

module ST = Xdb_rel.Stats

let test_btree_counters () =
  let t = BT.create () in
  for i = 1 to 1000 do
    BT.insert t (V.Int i) i
  done;
  check ci "fresh probes" 0 (BT.probes t);
  ignore (BT.find t (V.Int 500));
  check ci "one probe" 1 (BT.probes t);
  check cb "visits >= height" true (BT.node_visits t >= BT.height t);
  let v1 = BT.node_visits t in
  ignore (BT.range t ~lo:(BT.Inclusive (V.Int 10)) ~hi:(BT.Inclusive (V.Int 20)));
  check ci "range counts a probe" 2 (BT.probes t);
  check cb "range visits nodes" true (BT.node_visits t > v1);
  BT.reset_counters t;
  check ci "reset probes" 0 (BT.probes t);
  check ci "reset visits" 0 (BT.node_visits t)

let test_run_analyzed_index_scan () =
  let db = setup_db () in
  let plan =
    A.Index_scan
      {
        table = "emp";
        alias = "e";
        index_column = "sal";
        lo = A.Incl (A.const_int 2450);
        hi = A.Incl (A.const_int 2450);
      }
  in
  let rows, stats = E.run_analyzed db plan in
  check ci "one row" 1 (List.length rows);
  (match ST.find stats plan with
  | Some s ->
      check ci "actual rows" 1 s.ST.rows;
      check ci "one loop" 1 s.ST.loops;
      check ci "one btree probe" 1 s.ST.btree_probes;
      check cb "nodes visited" true (s.ST.btree_nodes >= 1);
      check ci "heap rows = produced" 1 s.ST.heap_rows
  | None -> Alcotest.fail "root operator not in stats");
  let text = O.explain_analyze db plan stats in
  check cb "annotated line present" true (contains text "actual=1 loops=1");
  check cb "probe count rendered" true (contains text "probes=1");
  check cb "estimate on same line" true (contains text "est=")

let test_run_analyzed_subplans_and_json () =
  let db = setup_db () in
  (* correlated subquery: the inner aggregate must appear in the stats
     with one loop per outer row *)
  let sub =
    A.Aggregate
      {
        group_by = [];
        aggs = [ (A.Count_star, "n") ];
        input =
          A.Filter
            ( A.(qcol "e" "deptno" =. qcol "d" "deptno"),
              A.Seq_scan { table = "emp"; alias = "e" } );
      }
  in
  let plan =
    A.Project ([ (A.Scalar_subquery sub, "n") ], A.Seq_scan { table = "dept"; alias = "d" })
  in
  let rows, stats = E.run_analyzed db plan in
  check ci "two dept rows" 2 (List.length rows);
  (match ST.find stats sub with
  | Some s ->
      check ci "subquery executed per outer row" 2 s.ST.loops;
      check ci "one aggregate row per loop" 2 s.ST.rows
  | None -> Alcotest.fail "subplan not registered in stats");
  check ci "all operators registered" 5 (List.length (ST.entries stats));
  check ci "root rows" 2 (ST.root_rows stats);
  (* JSON rendering is well-formed enough to keep field order stable *)
  let json = ST.to_json stats in
  check cb "json array" true
    (String.length json > 2 && json.[0] = '[' && json.[String.length json - 1] = ']');
  check cb "json mentions SeqScan" true (contains json {|"op":"SeqScan dept"|})

let test_drop_index_changes_plan () =
  let db = setup_db () in
  let plan =
    A.Filter (A.(col "sal" =. const_int 2450), A.Seq_scan { table = "emp"; alias = "e" })
  in
  (match O.optimize db plan with
  | A.Index_scan { index_column = "sal"; _ } -> ()
  | p -> Alcotest.failf "expected index scan before drop, got %s" (A.plan_sql p));
  T.drop_index (DB.table db "emp") ~name:"emp_sal";
  (match O.optimize db plan with
  | A.Filter (_, A.Seq_scan _) -> ()
  | p -> Alcotest.failf "expected full scan after drop, got %s" (A.plan_sql p));
  (* instrumented full scan touches every heap row *)
  let rows, stats = E.run_analyzed db (O.optimize db plan) in
  check ci "same result" 1 (List.length rows);
  match ST.entries stats with
  | _ :: { ST.node = A.Seq_scan _; op; _ } :: _ ->
      check ci "full scan heap rows" 3 op.ST.heap_rows;
      check ci "no btree probes" 0 op.ST.btree_probes
  | _ -> Alcotest.fail "expected Filter over SeqScan entries"

(* ------------------------------------------------------------------ *)
(* statistics (ANALYZE / Colstats / Cost)                              *)
(* ------------------------------------------------------------------ *)

module C = Xdb_rel.Colstats
module AN = Xdb_rel.Analyze
module CO = Xdb_rel.Cost

let test_colstats_histogram () =
  (* 100 distinct values, 4 buckets: equi-depth boundaries land on the
     quartiles *)
  let s = C.compute ~n_buckets:4 (List.init 100 (fun i -> V.Int (i + 1))) in
  check ci "ndv" 100 s.C.ndv;
  check (Alcotest.float 1e-9) "no nulls" 0.0 s.C.null_frac;
  check cb "min" true (s.C.min_v = Some (V.Int 1));
  check cb "max" true (s.C.max_v = Some (V.Int 100));
  check ci "unique column has no MCVs" 0 (List.length s.C.mcvs);
  check cb "quartile boundaries" true
    (Array.to_list s.C.bounds = [ V.Int 1; V.Int 25; V.Int 50; V.Int 75; V.Int 100 ]);
  let close msg exp got = check (Alcotest.float 0.03) msg exp got in
  close "lt median" 0.5 (C.selectivity_lt s (V.Int 50));
  close "lt first quartile" 0.25 (C.selectivity_lt s (V.Int 25));
  close "lt below min" 0.0 (C.selectivity_lt s (V.Int 0));
  close "lt above max" 1.0 (C.selectivity_lt s (V.Int 1000));
  close "le = lt + eq"
    (C.selectivity_lt s (V.Int 50) +. C.selectivity_eq s (V.Int 50))
    (C.selectivity_le s (V.Int 50))

let test_colstats_skew_and_mcvs () =
  (* 90 copies of 1 plus ten singletons: one MCV, NDV counts runs *)
  let s = C.compute (List.init 90 (fun _ -> V.Int 1) @ List.init 10 (fun i -> V.Int (i + 2))) in
  check ci "ndv on skewed data" 11 s.C.ndv;
  (match s.C.mcvs with
  | [ (V.Int 1, f) ] -> check (Alcotest.float 1e-9) "MCV frequency" 0.9 f
  | _ -> Alcotest.fail "expected exactly one MCV");
  check (Alcotest.float 1e-9) "eq on the MCV" 0.9 (C.selectivity_eq s (V.Int 1));
  check (Alcotest.float 1e-9) "eq uniform over the rest" 0.01 (C.selectivity_eq s (V.Int 5));
  check (Alcotest.float 1e-9) "eq out of range" 0.005 (C.selectivity_eq s (V.Int 999));
  check (Alcotest.float 1e-6) "eq unknown = (1-nulls)/ndv" (1.0 /. 11.0)
    (C.selectivity_eq_unknown s);
  (* null accounting *)
  let s2 = C.compute [ V.Int 1; V.Null; V.Null; V.Int 2 ] in
  check (Alcotest.float 1e-9) "null fraction" 0.5 s2.C.null_frac;
  check ci "ndv ignores nulls" 2 s2.C.ndv

(* dept/emp scaled up so histogram estimates are distinguishable from the
   System-R defaults: 90 employees, sal = 100..9000 uniform, three depts *)
let setup_scaled_db () =
  let db = DB.create () in
  let dept =
    DB.create_table db "dept"
      [
        { T.col_name = "deptno"; col_type = V.Tint };
        { T.col_name = "dname"; col_type = V.Tstr };
      ]
  in
  let emp =
    DB.create_table db "emp"
      [
        { T.col_name = "empno"; col_type = V.Tint };
        { T.col_name = "ename"; col_type = V.Tstr };
        { T.col_name = "sal"; col_type = V.Tint };
        { T.col_name = "deptno"; col_type = V.Tint };
      ]
  in
  List.iter
    (fun i -> T.insert_values dept [ V.Int i; V.Str (Printf.sprintf "D%d" i) ])
    [ 1; 2; 3 ];
  for i = 1 to 90 do
    T.insert_values emp
      [ V.Int (7000 + i); V.Str (Printf.sprintf "E%d" i); V.Int (i * 100); V.Int ((i mod 3) + 1) ]
  done;
  ignore (T.create_index emp ~name:"emp_sal" ~column:"sal");
  ignore (T.create_index emp ~name:"emp_deptno" ~column:"deptno");
  db

let test_analyze_sal_selectivity () =
  (* the paper's Tables 7/8 predicate, emp.sal > 2000 *)
  let db = setup_scaled_db () in
  let pred = A.(col "sal" >. const_int 2000) in
  let plan = A.Filter (pred, A.Seq_scan { table = "emp"; alias = "e" }) in
  check (Alcotest.float 1e-6) "System-R default before ANALYZE" 30.0 (O.estimate_rows db plan);
  check ci "every row sampled" 90 (AN.table db "emp");
  let actual = float_of_int (List.length (E.run db plan)) in
  check (Alcotest.float 1e-9) "actual rows" 70.0 actual;
  let est = O.estimate_rows db plan in
  check cb "histogram estimate within 15% of actual" true
    (Float.abs (est -. actual) /. actual < 0.15);
  (* the default-only path is preserved for q-error baselines *)
  check (Alcotest.float 1e-6) "default estimate still available" 30.0
    (CO.estimate_rows_default db plan);
  let sel = CO.conjunct_selectivity db ~table:"emp" ~alias:"e" pred in
  check cb "conjunct selectivity ~ 70/90" true (Float.abs (sel -. (70.0 /. 90.0)) < 0.1)

let test_cost_based_conjunct_choice () =
  let db = setup_scaled_db () in
  (* deptno = 1 is written first; sal > 8000 is far more selective *)
  let cond = A.(Binop (And, col "deptno" =. const_int 1, col "sal" >. const_int 8000)) in
  let plan = A.Filter (cond, A.Seq_scan { table = "emp"; alias = "e" }) in
  (match O.optimize db plan with
  | A.Filter (_, A.Index_scan { index_column = "deptno"; _ }) -> ()
  | p -> Alcotest.failf "pre-ANALYZE must take the first indexed conjunct, got %s" (A.plan_sql p));
  ignore (AN.table db "emp");
  (match O.optimize db plan with
  | A.Filter (_, A.Index_scan { index_column = "sal"; _ }) -> ()
  | p -> Alcotest.failf "post-ANALYZE must take the most selective index, got %s" (A.plan_sql p));
  let sorted p = List.sort compare (E.run db p) in
  check cb "both plans return the same rows" true (sorted plan = sorted (O.optimize db plan))

(* ------------------------------------------------------------------ *)
(* optimizer                                                           *)
(* ------------------------------------------------------------------ *)

let test_optimizer_index_selection () =
  let db = setup_db () in
  let plan =
    A.Filter (A.(col "sal" >. const_int 2000), A.Seq_scan { table = "emp"; alias = "e" })
  in
  (match O.optimize db plan with
  | A.Index_scan { index_column = "sal"; lo = A.Excl _; hi = A.Unbounded; _ } -> ()
  | p -> Alcotest.failf "expected index scan, got %s" (A.plan_sql p));
  (* conjunct splitting leaves a residual filter *)
  let plan2 =
    A.Filter
      ( A.(Binop (And, col "sal" >. const_int 2000, col "deptno" =. const_int 10)),
        A.Seq_scan { table = "emp"; alias = "e" } )
  in
  (match O.optimize db plan2 with
  | A.Filter (_, A.Index_scan { index_column = "sal"; _ }) -> ()
  | p -> Alcotest.failf "expected residual filter over index scan, got %s" (A.plan_sql p));
  (* flipped comparison still sargable *)
  let plan3 =
    A.Filter (A.(const_int 2000 <. col "sal"), A.Seq_scan { table = "emp"; alias = "e" })
  in
  (match O.optimize db plan3 with
  | A.Index_scan { lo = A.Excl _; _ } -> ()
  | p -> Alcotest.failf "flipped comparison: %s" (A.plan_sql p));
  (* no index on dname: stays a filter *)
  let plan4 =
    A.Filter (A.(col "dname" =. const_str "X"), A.Seq_scan { table = "dept"; alias = "d" })
  in
  match O.optimize db plan4 with
  | A.Filter (_, A.Seq_scan _) -> ()
  | p -> Alcotest.failf "expected plain filter, got %s" (A.plan_sql p)

let test_cardinality_estimates () =
  let db = setup_db () in
  let scan = A.Seq_scan { table = "emp"; alias = "e" } in
  let eq_scan =
    A.Index_scan
      { table = "emp"; alias = "e"; index_column = "sal";
        lo = A.Incl (A.const_int 2450); hi = A.Incl (A.const_int 2450) }
  in
  let range_scan =
    A.Index_scan
      { table = "emp"; alias = "e"; index_column = "sal";
        lo = A.Excl (A.const_int 2000); hi = A.Unbounded }
  in
  let n = O.estimate_rows db scan in
  check cb "scan = table size" true (n = 3.0);
  check cb "eq <= range" true (O.estimate_rows db eq_scan <= O.estimate_rows db range_scan);
  check cb "range < scan" true (O.estimate_rows db range_scan < n);
  let filtered = A.Filter (A.(col "sal" >. const_int 0), scan) in
  check cb "filter shrinks" true (O.estimate_rows db filtered < n);
  check cb "grouped aggregate" true
    (O.estimate_rows db
       (A.Aggregate { group_by = [ (A.col "deptno", "d") ]; aggs = []; input = scan })
    < n);
  check cb "global aggregate = 1" true
    (O.estimate_rows db (A.Aggregate { group_by = []; aggs = []; input = scan }) = 1.0)

let test_filter_pushdown_through_project () =
  let db = setup_db () in
  let fields = [ (A.col "sal", "s"); (A.col "ename", "en") ] in
  let plan =
    A.Filter
      (A.(col "s" >. const_int 2000), A.Project (fields, A.Seq_scan { table = "emp"; alias = "e" }))
  in
  (* the filter on the renamed column moves below the projection and then
     finds the sal index *)
  (match O.optimize db plan with
  | A.Project (_, A.Index_scan { index_column = "sal"; lo = A.Excl _; _ }) -> ()
  | p -> Alcotest.failf "expected filter pushed below projection, got %s" (A.plan_sql p));
  let names p =
    E.run db p |> List.map (fun r -> V.to_string (List.assoc "en" r)) |> List.sort compare
  in
  check Alcotest.(list string) "rows preserved" (names plan) (names (O.optimize db plan));
  (* computed columns push too: the defining expression is substituted *)
  let plan2 =
    A.Filter
      ( A.(col "double_sal" >. const_int 4000),
        A.Project
          ( [ (A.Binop (A.Mul, A.col "sal", A.const_int 2), "double_sal"); (A.col "ename", "en") ],
            A.Seq_scan { table = "emp"; alias = "e" } ) )
  in
  (match O.optimize db plan2 with
  | A.Project (_, A.Filter (_, A.Seq_scan _)) -> ()
  | p -> Alcotest.failf "computed column should push below the project, got %s" (A.plan_sql p));
  check ci "computed pushdown rows" 2 (List.length (E.run db (O.optimize db plan2)));
  (* alias-qualified references resolve in outer scope above the projection
     and must not be pushed into it *)
  let plan3 =
    A.Filter
      ( A.(qcol "e" "sal" >. const_int 2000),
        A.Project (fields, A.Seq_scan { table = "emp"; alias = "e" }) )
  in
  match O.optimize db plan3 with
  | A.Filter (_, A.Project _) -> ()
  | p -> Alcotest.failf "alias-qualified filter must stay above, got %s" (A.plan_sql p)

let test_limit_below_project () =
  let db = setup_db () in
  let plan =
    A.Limit (2, A.Project ([ (A.col "ename", "en") ], A.Seq_scan { table = "emp"; alias = "e" }))
  in
  (match O.optimize db plan with
  | A.Project (_, A.Limit (2, A.Seq_scan _)) -> ()
  | p -> Alcotest.failf "expected limit below projection, got %s" (A.plan_sql p));
  check cb "rows unchanged" true (E.run db plan = E.run db (O.optimize db plan))

let test_index_nl_join () =
  let db = setup_scaled_db () in
  let plan =
    A.Nested_loop
      {
        outer = A.Seq_scan { table = "dept"; alias = "d" };
        inner = A.Seq_scan { table = "emp"; alias = "e" };
        join_cond = Some A.(qcol "e" "deptno" =. qcol "d" "deptno");
      }
  in
  (* without statistics the join is untouched *)
  (match O.optimize db plan with
  | A.Nested_loop { inner = A.Seq_scan _; _ } -> ()
  | p -> Alcotest.failf "pre-ANALYZE join must be unchanged, got %s" (A.plan_sql p));
  let baseline = List.sort compare (E.run db plan) in
  ignore (AN.all db);
  let optimized = O.optimize db plan in
  (match optimized with
  | A.Nested_loop { inner = A.Index_scan { index_column = "deptno"; _ }; join_cond = Some _; _ }
    -> ()
  | p -> Alcotest.failf "expected correlated index probe on the inner side, got %s" (A.plan_sql p));
  check ci "join cardinality" 90 (List.length (E.run db optimized));
  check cb "probe join = scan join" true (List.sort compare (E.run db optimized) = baseline)

let test_join_reorder_by_cost () =
  let db = DB.create () in
  let big =
    DB.create_table db "big"
      [ { T.col_name = "bid"; col_type = V.Tint }; { T.col_name = "bval"; col_type = V.Tint } ]
  in
  let small =
    DB.create_table db "small"
      [ { T.col_name = "sid"; col_type = V.Tint }; { T.col_name = "sval"; col_type = V.Tstr } ]
  in
  for i = 1 to 100 do
    T.insert_values big [ V.Int (i mod 5); V.Int i ]
  done;
  for i = 0 to 4 do
    T.insert_values small [ V.Int i; V.Str (Printf.sprintf "s%d" i) ]
  done;
  ignore (T.create_index big ~name:"big_bid" ~column:"bid");
  let plan =
    A.Nested_loop
      {
        outer = A.Seq_scan { table = "big"; alias = "b" };
        inner = A.Seq_scan { table = "small"; alias = "s" };
        join_cond = Some A.(qcol "b" "bid" =. qcol "s" "sid");
      }
  in
  (* rows in a canonical binding order so the two join orders compare *)
  let norm p =
    E.run db p
    |> List.map (fun r ->
           ( V.to_int (List.assoc "bid" r),
             V.to_int (List.assoc "bval" r),
             V.to_string (List.assoc "sval" r) ))
    |> List.sort compare
  in
  let baseline = norm plan in
  (match O.optimize db plan with
  | A.Nested_loop { outer = A.Seq_scan { table = "big"; _ }; inner = A.Seq_scan _; _ } -> ()
  | p -> Alcotest.failf "pre-ANALYZE join order must be kept, got %s" (A.plan_sql p));
  ignore (AN.all db);
  (match O.optimize db plan with
  | A.Nested_loop
      {
        outer = A.Seq_scan { table = "small"; _ };
        inner = A.Index_scan { table = "big"; index_column = "bid"; _ };
        _;
      } -> ()
  | p -> Alcotest.failf "expected small as outer probing big's index, got %s" (A.plan_sql p));
  check cb "reordered join = original" true (norm (O.optimize db plan) = baseline)

(* hash-join executor semantics: all four kinds, NULL keys on both sides,
   duplicate build keys, and compiled ≡ interpreted down to per-operator
   row / build / probe counters *)
let hash_join_db () =
  let db = DB.create () in
  let l =
    DB.create_table db "l"
      [ { T.col_name = "lid"; col_type = V.Tint }; { T.col_name = "lk"; col_type = V.Tint } ]
  in
  let r =
    DB.create_table db "r"
      [ { T.col_name = "rid"; col_type = V.Tint }; { T.col_name = "rk"; col_type = V.Tint } ]
  in
  List.iter
    (fun (i, k) -> T.insert_values l [ V.Int i; k ])
    [ (1, V.Int 1); (2, V.Int 2); (3, V.Int 2); (4, V.Null); (5, V.Int 5); (6, V.Int 7) ];
  List.iter
    (fun (i, k) -> T.insert_values r [ V.Int i; k ])
    [ (1, V.Int 2); (2, V.Int 2); (3, V.Null); (4, V.Int 5); (5, V.Int 9) ];
  db

let hj_plan kind =
  A.Hash_join
    {
      outer = A.Seq_scan { table = "l"; alias = "l" };
      inner = A.Seq_scan { table = "r"; alias = "r" };
      keys = [ (A.qcol "l" "lk", A.qcol "r" "rk") ];
      kind;
    }

let hj_counters stats =
  List.filter_map
    (fun (e : Xdb_rel.Stats.entry) ->
      if String.length e.label >= 8 && String.sub e.label 0 8 = "HashJoin" then
        Some (e.op.Xdb_rel.Stats.build_rows, e.op.Xdb_rel.Stats.probe_hits)
      else None)
    (Xdb_rel.Stats.entries stats)

let test_hash_join_exec () =
  let db = hash_join_db () in
  let run_both kind =
    let plan = hj_plan kind in
    let crows, cstats = E.run_analyzed db plan in
    let irows, istats = E.run_interpreted_analyzed db plan in
    check cb "compiled rows = interpreted rows" true (crows = irows);
    check cb "rows signature identical" true
      (Xdb_rel.Stats.rows_signature cstats = Xdb_rel.Stats.rows_signature istats);
    check cb "build/probe counters identical" true (hj_counters cstats = hj_counters istats);
    (crows, hj_counters cstats)
  in
  let inner_rows, inner_ctr = run_both A.Inner in
  check ci "inner rows" 5 (List.length inner_rows);
  check cb "inner counters" true (inner_ctr = [ (5, 5) ]);
  (* inner hash join ≡ nested loop with an equality join condition,
     including row order (per-probe-row, build arrival order) *)
  let nl =
    A.Nested_loop
      {
        outer = A.Seq_scan { table = "l"; alias = "l" };
        inner = A.Seq_scan { table = "r"; alias = "r" };
        join_cond = Some A.(qcol "l" "lk" =. qcol "r" "rk");
      }
  in
  let pair r = (V.to_int (List.assoc "lid" r), V.to_int (List.assoc "rid" r)) in
  check cb "inner ≡ nested loop (same order)" true
    (List.map pair inner_rows = List.map pair (E.run db nl));
  let lo_rows, lo_ctr = run_both A.Left_outer in
  check ci "left outer rows" 8 (List.length lo_rows);
  check cb "left outer counters" true (lo_ctr = [ (5, 5) ]);
  let unmatched =
    List.filter (fun r -> V.is_null (List.assoc "rid" r)) lo_rows
    |> List.map (fun r -> V.to_int (List.assoc "lid" r))
    |> List.sort compare
  in
  check cb "unmatched probes null-padded" true (unmatched = [ 1; 4; 6 ]);
  let semi_rows, semi_ctr = run_both A.Semi in
  check cb "semi = probes with a match" true
    (List.map (fun r -> V.to_int (List.assoc "lid" r)) semi_rows = [ 2; 3; 5 ]);
  check cb "semi counters" true (semi_ctr = [ (5, 3) ]);
  let anti_rows, anti_ctr = run_both A.Anti in
  (* NOT EXISTS semantics: the NULL-key probe row (lid 4) is kept *)
  check cb "anti keeps unmatched and NULL-key probes" true
    (List.map (fun r -> V.to_int (List.assoc "lid" r)) anti_rows = [ 1; 4; 6 ]);
  check cb "anti counters" true (anti_ctr = [ (5, 3) ]);
  (* EXPLAIN surfaces: the plan renders as a HashJoin line, EXPLAIN
     ANALYZE carries the build/probe counters *)
  let explained = A.explain (hj_plan A.Semi) in
  check cb "explain shows HashJoin(semi, ...)" true (contains explained "HashJoin(semi");
  let inner_plan = hj_plan A.Inner in
  let _, st = E.run_analyzed db inner_plan in
  let analyzed = O.explain_analyze db inner_plan st in
  if not (contains analyzed "build_rows=5 probe_hits=5") then
    Alcotest.failf "explain analyze missing hash counters:\n%s" analyzed

(* EXISTS / NOT EXISTS unnesting into Semi/Anti hash joins — stats-gated,
   NULL keys preserved through the rewrite *)
let test_semi_anti_unnest () =
  let db = hash_join_db () in
  let exists_cond =
    A.Exists
      (A.Filter (A.(qcol "s" "rk" =. qcol "l" "lk"), A.Seq_scan { table = "r"; alias = "s" }))
  in
  let semi_plan = A.Filter (exists_cond, A.Seq_scan { table = "l"; alias = "l" }) in
  let anti_plan = A.Filter (A.Not exists_cond, A.Seq_scan { table = "l"; alias = "l" }) in
  (* without statistics both plans are byte-unchanged *)
  check cs "pre-ANALYZE semi fingerprint" (A.plan_sql semi_plan) (A.plan_sql (O.optimize db semi_plan));
  check cs "pre-ANALYZE anti fingerprint" (A.plan_sql anti_plan) (A.plan_sql (O.optimize db anti_plan));
  let semi_base = E.run db semi_plan and anti_base = E.run db anti_plan in
  ignore (AN.all db);
  (match O.optimize db semi_plan with
  | A.Hash_join { kind = A.Semi; keys = [ _ ]; _ } -> ()
  | p -> Alcotest.failf "expected EXISTS to unnest into a semi join, got %s" (A.plan_sql p));
  (match O.optimize db anti_plan with
  | A.Hash_join { kind = A.Anti; keys = [ _ ]; _ } -> ()
  | p -> Alcotest.failf "expected NOT EXISTS to unnest into an anti join, got %s" (A.plan_sql p));
  check cb "semi join = correlated EXISTS" true (E.run db (O.optimize db semi_plan) = semi_base);
  check cb "anti join = correlated NOT EXISTS" true (E.run db (O.optimize db anti_plan) = anti_base);
  (* local build-side predicates stay on the build side *)
  let local_cond =
    A.Exists
      (A.Filter
         ( A.(qcol "s" "rk" =. qcol "l" "lk" &&. (qcol "s" "rid" >. const_int 1)),
           A.Seq_scan { table = "r"; alias = "s" } ))
  in
  let local_plan = A.Filter (local_cond, A.Seq_scan { table = "l"; alias = "l" }) in
  let local_base = E.run db local_plan in
  (match O.optimize db local_plan with
  | A.Hash_join { kind = A.Semi; inner = A.Filter _ | A.Index_scan _; _ } -> ()
  | p -> Alcotest.failf "expected local predicate on the build side, got %s" (A.plan_sql p));
  check cb "local predicate preserved" true (E.run db (O.optimize db local_plan) = local_base)

(* pass-order regression: join-graph isolation runs before the bottom-up
   rewrite, so a single-relation interval pair lifted out of the join
   region still becomes a two-sided index range scan, and an equi-join
   conjunct buried in a filter above a cross product becomes a join *)
let test_joingraph_pass_order () =
  let db = DB.create () in
  let f =
    DB.create_table db "f"
      [ { T.col_name = "fid"; col_type = V.Tint }; { T.col_name = "fv"; col_type = V.Tint } ]
  in
  let g =
    DB.create_table db "g"
      [ { T.col_name = "gid"; col_type = V.Tint }; { T.col_name = "gref"; col_type = V.Tint } ]
  in
  for i = 1 to 200 do
    T.insert_values f [ V.Int i; V.Int i ]
  done;
  for i = 1 to 20 do
    T.insert_values g [ V.Int i; V.Int (i * 10) ]
  done;
  ignore (T.create_index f ~name:"f_fv" ~column:"fv");
  let cond =
    A.(
      qcol "f" "fv" >. const_int 10
      &&. (qcol "f" "fv" <. const_int 90)
      &&. (qcol "f" "fid" =. qcol "g" "gref"))
  in
  let plan =
    A.Filter
      ( cond,
        A.Nested_loop
          {
            outer = A.Seq_scan { table = "f"; alias = "f" };
            inner = A.Seq_scan { table = "g"; alias = "g" };
            join_cond = None;
          } )
  in
  (* without statistics the whole pipeline is the identity on this shape *)
  check cs "pre-ANALYZE fingerprint" (A.plan_sql plan) (A.plan_sql (O.optimize db plan));
  let norm p =
    E.run db p
    |> List.map (fun r -> (V.to_int (List.assoc "fid" r), V.to_int (List.assoc "gid" r)))
    |> List.sort compare
  in
  let baseline = norm plan in
  ignore (AN.all db);
  let optimized = O.optimize db plan in
  (* the f leaf must end up as the merged two-sided range probe — only
     possible if isolation pushed the interval pair onto the leaf before
     the access-path rewrite ran *)
  let rec has_two_sided = function
    | A.Index_scan { table = "f"; index_column = "fv"; lo; hi; _ } ->
        lo <> A.Unbounded && hi <> A.Unbounded
    | A.Index_scan _ | A.Seq_scan _ | A.Values _ -> false
    | A.Filter (_, i) | A.Project (_, i) | A.Sort (_, i) | A.Limit (_, i) -> has_two_sided i
    | A.Nested_loop { outer; inner; _ } | A.Hash_join { outer; inner; _ } ->
        has_two_sided outer || has_two_sided inner
    | A.Aggregate { input; _ } -> has_two_sided input
  in
  (match optimized with
  | A.Hash_join _ | A.Nested_loop { join_cond = Some _; _ }
  | A.Filter (_, (A.Hash_join _ | A.Nested_loop _)) ->
      ()
  | p -> Alcotest.failf "expected the cross product to become a join, got %s" (A.plan_sql p));
  check cb "two-sided range probe on f.fv" true (has_two_sided optimized);
  check cb "ordered join = baseline" true (norm optimized = baseline);
  check cb "compiled = interpreted" true
    (let c, cs' = E.run_analyzed db optimized and _, is' = E.run_interpreted_analyzed db optimized in
     ignore c;
     Xdb_rel.Stats.rows_signature cs' = Xdb_rel.Stats.rows_signature is')

(* property: random three-table join regions and EXISTS shapes, random
   indexes, NULL keys, any ANALYZE subset — the set-oriented pipeline
   (hash joins, semi/anti unnesting, greedy ordering) returns exactly the
   rows of the unoptimized nested-loop plans, on both executors *)
let prop_hash_join_equivalence =
  QCheck.Test.make ~name:"hash-join pipeline ≡ nested loops under any stats state" ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rand =
        let state = ref (seed land 0x3FFFFFFF) in
        fun bound ->
          state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
          !state mod bound
      in
      let db = DB.create () in
      let bb =
        DB.create_table db "bb"
          [ { T.col_name = "bid"; col_type = V.Tint }; { T.col_name = "bv"; col_type = V.Tint } ]
      in
      let dd =
        DB.create_table db "dd"
          [ { T.col_name = "fk"; col_type = V.Tint }; { T.col_name = "x"; col_type = V.Tint } ]
      in
      let ee =
        DB.create_table db "ee"
          [ { T.col_name = "ek"; col_type = V.Tint }; { T.col_name = "z"; col_type = V.Tint } ]
      in
      let n_base = 1 + rand 5 in
      for i = 1 to n_base do
        T.insert_values bb [ V.Int i; V.Int (rand 100) ]
      done;
      let nullable k = if rand 6 = 0 then V.Null else V.Int k in
      for j = 1 to rand 12 do
        T.insert_values dd [ nullable (1 + rand (n_base + 1)); V.Int j ]
      done;
      for j = 1 to rand 8 do
        T.insert_values ee [ nullable (1 + rand (n_base + 1)); V.Int (j * 7) ]
      done;
      if rand 2 = 0 then ignore (T.create_index dd ~name:"dd_fk" ~column:"fk");
      if rand 2 = 0 then ignore (T.create_index ee ~name:"ee_ek" ~column:"ek");
      List.iter (fun t -> if rand 2 = 0 then ignore (AN.table db t)) [ "bb"; "dd"; "ee" ];
      if rand 2 = 0 then
        for _ = 1 to rand 4 do
          T.insert_values dd [ nullable (1 + rand (n_base + 1)); V.Int (100 + rand 50) ]
        done;
      let scan t a = A.Seq_scan { table = t; alias = a } in
      let cross o i = A.Nested_loop { outer = o; inner = i; join_cond = None } in
      (* 1. three-relation join region with a local range conjunct *)
      let conj =
        A.(
          qcol "dd" "fk" =. qcol "bb" "bid"
          &&. (qcol "ee" "ek" =. qcol "bb" "bid")
          &&. (qcol "dd" "x" >. const_int (rand 60)))
      in
      let region = A.Filter (conj, cross (cross (scan "bb" "bb") (scan "dd" "dd")) (scan "ee" "ee")) in
      let jnorm p =
        E.run db p
        |> List.map (fun r ->
               ( V.to_int (List.assoc "bid" r),
                 V.to_int (List.assoc "x" r),
                 V.to_int (List.assoc "z" r) ))
        |> List.sort compare
      in
      let opt = O.optimize_deep db region in
      let join_ok = jnorm region = jnorm opt in
      (* both executors agree operator-by-operator on the optimised plan *)
      let _, cstats = E.run_analyzed db opt in
      let _, istats = E.run_interpreted_analyzed db opt in
      let exec_ok = Xdb_rel.Stats.rows_signature cstats = Xdb_rel.Stats.rows_signature istats in
      (* 2. EXISTS / NOT EXISTS over a correlated scan with NULL keys *)
      let exists_cond =
        A.Exists (A.Filter (A.(qcol "s" "fk" =. qcol "bb" "bid"), scan "dd" "s"))
      in
      let sel cond = A.Filter (cond, scan "bb" "bb") in
      let bnorm p =
        E.run db p |> List.map (fun r -> V.to_int (List.assoc "bid" r)) |> List.sort compare
      in
      let semi_ok =
        bnorm (sel exists_cond) = bnorm (O.optimize_deep db (sel exists_cond))
        && bnorm (sel (A.Not exists_cond)) = bnorm (O.optimize_deep db (sel (A.Not exists_cond)))
      in
      join_ok && exec_ok && semi_ok)

(* property: for random publishing views, random data, and a random subset
   of ANALYZEd tables — including stats gone stale through later inserts —
   cost-based optimize_deep returns exactly the unoptimized plan's rows *)
let prop_optimize_equivalence =
  QCheck.Test.make ~name:"optimize_deep ≡ unoptimized under any stats state" ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rand =
        let state = ref (seed land 0x3FFFFFFF) in
        fun bound ->
          state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
          !state mod bound
      in
      let db = DB.create () in
      let base =
        DB.create_table db "base"
          [
            { T.col_name = "bid"; col_type = V.Tint };
            { T.col_name = "a"; col_type = V.Tstr };
            { T.col_name = "b"; col_type = V.Tint };
          ]
      in
      let detail =
        DB.create_table db "detail"
          [
            { T.col_name = "fk"; col_type = V.Tint };
            { T.col_name = "x"; col_type = V.Tint };
            { T.col_name = "y"; col_type = V.Tstr };
          ]
      in
      (* keep x unique so ordering ties cannot mask plan differences *)
      let next_x = ref 0 in
      let fresh_x () =
        incr next_x;
        V.Int ((!next_x * 10) + rand 10)
      in
      let n_base = 1 + rand 4 in
      let add_detail fk = T.insert_values detail [ V.Int fk; fresh_x (); V.Str (Printf.sprintf "y%d" (rand 10)) ] in
      for i = 1 to n_base do
        T.insert_values base [ V.Int i; V.Str (Printf.sprintf "s%d" (rand 100)); V.Int (rand 1000) ];
        for _ = 1 to rand 6 do
          add_detail i
        done
      done;
      if rand 2 = 0 then ignore (T.create_index detail ~name:"d_fk" ~column:"fk");
      if rand 2 = 0 then ignore (T.create_index detail ~name:"d_x" ~column:"x");
      (* ANALYZE a random subset: none, one, or both tables *)
      List.iter (fun t -> if rand 2 = 0 then ignore (AN.table db t)) [ "base"; "detail" ];
      (* optionally let the stats go stale *)
      if rand 2 = 0 then
        for _ = 1 to rand 5 do
          add_detail (1 + rand n_base)
        done;
      (* 1. publishing view with a correlated detail level, through the
         XQuery→SQL/XML rewrite (exercises optimize_deep on subqueries) *)
      let leaf name c = P.Elem { name; attrs = []; content = [ P.Text_col c ] } in
      let detail_agg =
        P.Agg
          {
            table = "detail";
            alias = "detail";
            correlate = [ ("fk", "bid") ];
            where = (if rand 2 = 0 then Some A.(col "x" >. const_int (rand 1000)) else None);
            order_by = [ ("x", A.Asc) ];
            body = P.Elem { name = "d"; attrs = []; content = [ leaf "x" "x"; leaf "y" "y" ] };
          }
      in
      let view =
        {
          P.view_name = "rv";
          base_table = "base";
          base_alias = "base";
          column = "doc";
          spec =
            P.Elem
              {
                name = "root";
                attrs = [];
                content = (leaf "b" "b" :: (if rand 2 = 0 then [ detail_agg ] else []));
              };
        }
      in
      let vplan =
        Xdb_xquery.Sql_rewrite.rewrite_view_plan db view (Xdb_xquery.Parser.parse_prog "./root")
      in
      let strings p = List.map (fun r -> V.to_string (List.assoc "result" r)) (E.run db p) in
      let view_ok = strings vplan = strings (O.optimize_deep db vplan) in
      (* 2. random conjunctive filter over detail (index selection path) *)
      let conj =
        List.init
          (1 + rand 3)
          (fun _ ->
            let c = rand (!next_x * 10) in
            match rand 4 with
            | 0 -> A.(col "x" >. const_int c)
            | 1 -> A.(col "x" <. const_int c)
            | 2 -> A.(col "x" =. const_int c)
            | _ -> A.(col "fk" =. const_int (1 + rand n_base)))
      in
      let fplan = A.Filter (O.conjoin conj, A.Seq_scan { table = "detail"; alias = "t" }) in
      let sorted p = List.sort compare (E.run db p) in
      let filter_ok = sorted fplan = sorted (O.optimize_deep db fplan) in
      (* 3. equi-join base ⋈ detail (index-NL and reorder paths; disjoint
         column names, so both orders produce the same bindings) *)
      let jplan =
        A.Nested_loop
          {
            outer = A.Seq_scan { table = "base"; alias = "bb" };
            inner = A.Seq_scan { table = "detail"; alias = "dd" };
            join_cond = Some A.(qcol "dd" "fk" =. qcol "bb" "bid");
          }
      in
      let jnorm p =
        E.run db p
        |> List.map (fun r ->
               ( V.to_int (List.assoc "bid" r),
                 V.to_int (List.assoc "x" r),
                 V.to_string (List.assoc "y" r),
                 V.to_int (List.assoc "b" r) ))
        |> List.sort compare
      in
      let join_ok = jnorm jplan = jnorm (O.optimize_deep db jplan) in
      view_ok && filter_ok && join_ok)

let test_optimizer_preserves_results () =
  let db = setup_db () in
  let plan =
    A.Project
      ( [ (A.col "ename", "ename") ],
        A.Filter (A.(col "sal" >. const_int 1500), A.Seq_scan { table = "emp"; alias = "e" }) )
  in
  let before = E.run db plan |> List.map (fun r -> List.assoc "ename" r) |> List.sort compare in
  let after =
    E.run db (O.optimize_deep db plan) |> List.map (fun r -> List.assoc "ename" r) |> List.sort compare
  in
  check cb "same result set" true (before = after)

(* ------------------------------------------------------------------ *)
(* publishing                                                          *)
(* ------------------------------------------------------------------ *)

let dept_view =
  {
    P.view_name = "dept_emp";
    base_table = "dept";
    base_alias = "dept";
    column = "dept_content";
    spec =
      P.Elem
        {
          name = "dept";
          attrs = [];
          content =
            [
              P.Elem { name = "dname"; attrs = []; content = [ P.Text_col "dname" ] };
              P.Elem
                {
                  name = "employees";
                  attrs = [];
                  content =
                    [
                      P.Agg
                        {
                          table = "emp";
                          alias = "emp";
                          correlate = [ ("deptno", "deptno") ];
                          where = None;
                          order_by = [ ("empno", A.Asc) ];
                          body =
                            P.Elem
                              {
                                name = "emp";
                                attrs = [];
                                content =
                                  [
                                    P.Elem { name = "ename"; attrs = []; content = [ P.Text_col "ename" ] };
                                    P.Elem { name = "sal"; attrs = []; content = [ P.Text_col "sal" ] };
                                  ];
                              };
                        };
                    ];
                };
            ];
        };
  }

let test_materialize () =
  let db = setup_db () in
  let docs = P.materialize db dept_view in
  check ci "one doc per dept row" 2 (List.length docs);
  let first = Xdb_xml.Serializer.to_string (List.hd docs) in
  check cs "paper Table 4 shape"
    "<dept><dname>ACCOUNTING</dname><employees><emp><ename>CLARK</ename><sal>2450</sal></emp><emp><ename>MILLER</ename><sal>1300</sal></emp></employees></dept>"
    first

let test_view_schema () =
  let db = setup_db () in
  ignore db;
  let schema = P.to_schema dept_view in
  check cs "root" "dept" schema.Xdb_schema.Types.root;
  let employees = Xdb_schema.Types.find_exn schema "employees" in
  check cs "emp cardinality many" "many"
    (Xdb_schema.Types.occurs_name (List.hd employees.Xdb_schema.Types.particles).Xdb_schema.Types.occurs);
  let dept = Xdb_schema.Types.find_exn schema "dept" in
  check cs "dname cardinality one" "one"
    (Xdb_schema.Types.occurs_name (List.hd dept.Xdb_schema.Types.particles).Xdb_schema.Types.occurs)

let test_spec_navigation () =
  (match P.navigate dept_view.P.spec "employees" with
  | Some (P.Elem { name = "employees"; _ } as employees) -> (
      match P.navigate employees "emp" with
      | Some (P.Agg _ as emp) -> (
          match P.navigate emp "sal" with
          | Some sal -> check cb "sal scalar column" true (P.scalar_column sal = Some "sal")
          | None -> Alcotest.fail "sal not found")
      | _ -> Alcotest.fail "emp should be an Agg")
  | _ -> Alcotest.fail "employees not found");
  check cb "missing child" true (P.navigate dept_view.P.spec "ghost" = None)

let test_materialize_index_probe_consistency () =
  (* adding an index on the correlation column must not change results *)
  let db = setup_db () in
  let without = List.map Xdb_xml.Serializer.to_string (P.materialize db dept_view) in
  let emp = DB.table db "emp" in
  ignore (T.create_index emp ~name:"emp_deptno" ~column:"deptno");
  let with_idx = List.map Xdb_xml.Serializer.to_string (P.materialize db dept_view) in
  check cb "index-probe materialisation identical" true (without = with_idx)

let test_materialize_serialized () =
  (* streaming the spec straight into a buffer matches tree-then-serialize *)
  let db = setup_db () in
  let dom = List.map Xdb_xml.Serializer.to_string (P.materialize db dept_view) in
  let streamed = P.materialize_serialized db dept_view in
  check Alcotest.(list string) "streamed = DOM" dom streamed

let test_catalog_register () =
  let db = setup_db () in
  let cat = P.create_catalog db in
  P.register cat dept_view;
  check cb "registered view found" true (P.find_view cat "dept_emp" <> None);
  check cb "unknown view absent" true (P.find_view cat "nope" = None);
  (* duplicate names are rejected, not silently shadowed *)
  (match P.register cat { dept_view with P.column = "other" } with
  | exception P.Publish_error _ -> ()
  | () -> Alcotest.fail "duplicate registration must raise Publish_error");
  (* the rejected duplicate neither replaced nor doubled the entry *)
  check cs "original view intact" "dept_content"
    (Option.get (P.find_view cat "dept_emp")).P.column;
  check ci "one view listed" 1 (List.length (P.catalog_views cat));
  let second = { dept_view with P.view_name = "dept_emp2" } in
  P.register cat second;
  check Alcotest.(list string) "registration order preserved" [ "dept_emp"; "dept_emp2" ]
    (List.map (fun v -> v.P.view_name) (P.catalog_views cat))

let test_clob_roundtrip () =
  let db = setup_db () in
  let docs =
    [ Xdb_xml.Parser.parse "<a><b>1</b></a>"; Xdb_xml.Parser.parse "<c x=\"y\">2</c>" ]
  in
  ignore (Xdb_rel.Clob.store db ~table:"docs" docs);
  let back = Xdb_rel.Clob.load db ~table:"docs" in
  check ci "two docs" 2 (List.length back);
  check cb "roundtrip equal" true
    (List.for_all2 (fun a b -> X.deep_equal a b) docs back);
  (match Xdb_rel.Clob.load_one db ~table:"docs" ~docid:2 with
  | Some d -> check cs "point fetch" "<c x=\"y\">2</c>"
      (Xdb_xml.Serializer.to_string (Xdb_xml.Parser.document_element d))
  | None -> Alcotest.fail "doc 2 missing");
  check cb "missing doc" true (Xdb_rel.Clob.load_one db ~table:"docs" ~docid:99 = None)

let test_pathindex () =
  let doc1 = Xdb_xml.Parser.parse "<t><r><id>1</id><v a=\"x\">hello</v></r></t>" in
  let doc2 = Xdb_xml.Parser.parse "<t><r><id>2</id><v a=\"y\">hello</v></r></t>" in
  let idx = Xdb_rel.Pathindex.build [ (1, doc1); (2, doc2) ] in
  check Alcotest.(list int) "value lookup" [ 1 ]
    (Xdb_rel.Pathindex.lookup idx ~path:"/t/r/id" ~value:"1");
  check Alcotest.(list int) "shared value" [ 1; 2 ]
    (Xdb_rel.Pathindex.lookup idx ~path:"/t/r/v" ~value:"hello");
  check Alcotest.(list int) "attribute path" [ 2 ]
    (Xdb_rel.Pathindex.lookup idx ~path:"/t/r/v/@a" ~value:"y");
  check Alcotest.(list int) "no match" []
    (Xdb_rel.Pathindex.lookup idx ~path:"/t/r/id" ~value:"42");
  let n_docs, n_entries = Xdb_rel.Pathindex.stats idx in
  check ci "docs indexed" 2 n_docs;
  check cb "entries counted" true (n_entries >= 6)

(* indexing the same leaf of the same document twice is deduplicated and
   must not inflate the entry counter (regression: [add_entry] counted
   before checking) *)
let test_pathindex_dedup () =
  let doc = Xdb_xml.Parser.parse "<t><id>1</id></t>" in
  let idx = Xdb_rel.Pathindex.create () in
  Xdb_rel.Pathindex.index idx 1 doc;
  let _, n1 = Xdb_rel.Pathindex.stats idx in
  Xdb_rel.Pathindex.index idx 1 doc;
  let _, n2 = Xdb_rel.Pathindex.stats idx in
  check ci "re-indexing the same doc adds no entries" n1 n2;
  check
    Alcotest.(list int)
    "no duplicate docids" [ 1 ]
    (Xdb_rel.Pathindex.lookup idx ~path:"/t/id" ~value:"1");
  Xdb_rel.Pathindex.index idx 2 doc;
  let _, n3 = Xdb_rel.Pathindex.stats idx in
  check ci "a second document still counts" (2 * n1) n3;
  check
    Alcotest.(list int)
    "both docs found" [ 1; 2 ]
    (Xdb_rel.Pathindex.lookup idx ~path:"/t/id" ~value:"1")

(* ------------------------------------------------------------------ *)
(* interval-encoded shredding                                          *)
(* ------------------------------------------------------------------ *)

module SH = Xdb_rel.Shred
module XB = Xdb_xml.Builder

let test_shred_roundtrip () =
  let db = DB.create () in
  let t = SH.create db in
  let doc =
    Xdb_xml.Parser.parse "<a b=\"1\"><c>x<d/>y</c><?pi data?><!--n--><e>z</e></a>"
  in
  let id = SH.shred t doc in
  check ci "docids are 1-based" 1 id;
  check cb "reconstruct ∘ shred = id" true (X.deep_equal doc (SH.reconstruct t id));
  let doc2 = Xdb_xml.Parser.parse "<f><g/></f>" in
  let id2 = SH.shred t doc2 in
  check cb "second doc roundtrips too" true (X.deep_equal doc2 (SH.reconstruct t id2));
  let n_docs, n_rows = SH.stats t in
  check ci "two docs" 2 n_docs;
  (* 11 nodes (incl. document + attribute rows) + 3 nodes *)
  check ci "one row per node" 14 n_rows;
  check Alcotest.(list int) "doc ids" [ 1; 2 ] (SH.doc_ids t)

let test_shred_axis_plans () =
  let t = SH.create (DB.create ()) in
  ignore (SH.shred t (Xdb_xml.Parser.parse "<r><a><b/></a></r>"));
  let step s =
    match Xdb_xpath.Parser.parse s with
    | Xdb_xpath.Ast.Path { steps = [ st ]; _ } -> st
    | _ -> Alcotest.fail "expected a one-step path"
  in
  let ex s = SH.explain_step t (step s) in
  check cb "child = dparent point probe" true (contains (ex "child::a") "idx(dparent)");
  check cb "unnamed descendant = dpre range" true
    (contains (ex "descendant::node()") "idx(dpre)");
  check cb "named descendant = dnk range" true (contains (ex "descendant::a") "idx(dnk)");
  check cb "ancestor = dpre range" true (contains (ex "ancestor::node()") "idx(dpre)");
  check cb "following is index-driven" true (contains (ex "following::node()") "IndexScan");
  check cb "preceding is index-driven" true (contains (ex "preceding::node()") "IndexScan");
  check cs "namespace axis is statically empty" "<empty>" (ex "namespace::node()")

let test_shred_name_capacity () =
  let kids = List.init 5000 (fun i -> XB.elem (Printf.sprintf "n%d" i) []) in
  let doc = XB.document (XB.elem "r" kids) in
  let t = SH.create (DB.create ()) in
  check cb "name dictionary overflow raises" true
    (match SH.shred t doc with exception SH.Shred_error _ -> true | _ -> false)

(* queries covering every supported axis and predicate form, plus a few
   that must fall back to the DOM interpreter *)
let diff_exprs =
  [
    "/a"; "//*"; "//node()"; "//text()"; "//a"; "//a/b"; "//a/@id"; "//@id";
    "//a[@id]"; "//a[@id='1']"; "//*[b]"; "//a[2]"; "//a[last()]"; "//a[position()>1]";
    "//b/ancestor::*"; "//b/ancestor::*[1]"; "//b/ancestor-or-self::*[2]";
    "//a/descendant::text()"; "//a/descendant-or-self::*"; "//a/parent::*";
    "//a/following-sibling::*"; "//a/preceding-sibling::*[1]"; "//b/following::text()";
    "//b/preceding::*"; "//a[.='7']"; "//a[b='7']"; "//a[not(@id)]"; "//*[count(b)>1]";
    (* outside the relational subset: DOM fallback, still byte-identical *)
    "//a[contains(.,'1')]"; "//a[starts-with(name(),'a')]";
  ]

let shred_matches_dom doc exprs =
  let t = SH.create (DB.create ()) in
  let docid = SH.shred t doc in
  let ctx = Xdb_xpath.Eval.make_context doc in
  List.for_all
    (fun q ->
      let shredded = SH.serialize t (SH.select t ~docid q) in
      let dom = SH.serialize_dom (Xdb_xpath.Eval.select ctx q) in
      shredded = dom
      || QCheck.Test.fail_reportf "query %s: shredded %s / dom %s" q
           (String.concat "|" shredded) (String.concat "|" dom))
    exprs

let gen_doc : X.node QCheck.Gen.t =
  let open QCheck.Gen in
  let name = oneofl [ "a"; "b"; "c" ] in
  let rec go depth =
    if depth <= 0 then map (fun n -> XB.text (string_of_int n)) (int_bound 20)
    else
      name >>= fun nm ->
      int_bound 3 >>= fun n_kids ->
      list_repeat n_kids (go (depth - 1)) >>= fun kids ->
      bool >>= fun with_attr ->
      (if with_attr then map (fun v -> [ ("id", string_of_int v) ]) (int_bound 5)
       else return [])
      >>= fun attrs -> return (XB.elem ~attrs nm kids)
  in
  map XB.document (go 3)

let prop_shred_differential =
  QCheck.Test.make ~name:"shredded ≡ DOM interpreter over random documents" ~count:25
    (QCheck.make gen_doc ~print:Xdb_xml.Serializer.to_string)
    (fun doc -> shred_matches_dom doc diff_exprs)

(* three-way differential over every axis in the batch subset: the
   set-at-a-time evaluator, the per-context plans ([~batch:false]) and
   the DOM interpreter must agree byte-for-byte, including on each
   sort-merge value-predicate form *)
let batch_axis_exprs =
  [
    "//a/self::*"; "//b/self::node()";
    "//a/child::*"; "//a/child::b"; "//a/child::text()";
    "//a/attribute::id"; "//a/attribute::*";
    "//b/parent::*"; "//b/parent::a";
    "//a/descendant::*"; "//a/descendant::b"; "//a/descendant::text()";
    "//a/descendant-or-self::*"; "//a/descendant-or-self::b";
    "//b/ancestor::*"; "//b/ancestor::a";
    "//b/ancestor-or-self::*"; "//b/ancestor-or-self::node()";
    (* sort-merge value predicates over each classified form *)
    "//a[.='7']"; "//a[b]"; "//a[b='7']"; "//a[@id]"; "//a[@id='1']";
    "//a[not(@id)]"; "//a/b[c='2']"; "//a[@id>2]"; "//a[b!='7']";
  ]

let prop_shred_batch_differential =
  QCheck.Test.make
    ~name:"batched ≡ per-context ≡ DOM over random documents (batch axes)" ~count:25
    (QCheck.make gen_doc ~print:Xdb_xml.Serializer.to_string)
    (fun doc ->
      let t = SH.create (DB.create ()) in
      let docid = SH.shred t doc in
      let ctx = Xdb_xpath.Eval.make_context doc in
      List.for_all
        (fun q ->
          let batched = SH.serialize t (SH.select t ~docid q) in
          let percontext = SH.serialize t (SH.select t ~batch:false ~docid q) in
          let dom = SH.serialize_dom (Xdb_xpath.Eval.select ctx q) in
          (batched = dom && percontext = dom)
          || QCheck.Test.fail_reportf "query %s: batched %s / per-context %s / dom %s"
               q
               (String.concat "|" batched)
               (String.concat "|" percontext)
               (String.concat "|" dom))
        batch_axis_exprs)

let test_shred_differential_xsltmark () =
  let doc = Xdb_xsltmark.Data.records_doc 40 in
  check cb "records doc: all queries byte-identical" true
    (shred_matches_dom doc
       [
         "//row"; "//row/id"; "//row[3]"; "//row[id]"; "//row/@*"; "//table/row[last()]";
         "//id/ancestor::row"; "//id/ancestor::*[1]"; "//row[id='5']"; "//row[value>500]";
         "//row/category/preceding-sibling::*[1]"; "//name/following-sibling::value";
         "//row[position()=2]/name"; "//category[.='A']";
       ]);
  let t = SH.create (DB.create ()) in
  let docid = SH.shred t doc in
  ignore (SH.select t ~docid "//row[id]");
  let c = SH.counters t in
  check cb "evaluated batched" true (c.SH.batch_steps > 0);
  check ci "no fallback needed" 0 c.SH.dom_fallbacks;
  (* the same query forced per-context exercises the correlated plans *)
  ignore (SH.select t ~batch:false ~docid "//row[id]");
  let c2 = SH.counters t in
  check cb "per-context plans ran" true (c2.SH.rel_steps > c.SH.rel_steps)

(* ------------------------------------------------------------------ *)
(* compiled executor: plan-open resolution, batch boundaries           *)
(* ------------------------------------------------------------------ *)

let expect_compile_error db plan needles =
  match E.compile db plan with
  | exception E.Exec_error m ->
      List.iter
        (fun needle ->
          check cb (Printf.sprintf "error %S mentions %S" m needle) true (contains m needle))
        needles
  | _ -> Alcotest.fail "expected plan-open Exec_error"

let test_compile_unknown_column () =
  let db = setup_db () in
  (* unknown bare column: fails before any row is produced, listing what
     is in scope *)
  expect_compile_error db
    (A.Project ([ (A.col "ghost", "g") ], A.Seq_scan { table = "emp"; alias = "e" }))
    [ "ghost"; "available columns"; "ename" ];
  (* wrong alias on an existing column is just as unresolvable *)
  expect_compile_error db
    (A.Filter (A.(qcol "d" "sal" >. const_int 0), A.Seq_scan { table = "emp"; alias = "e" }))
    [ "d.sal"; "available columns" ];
  (* the compiled executor and the interpreted one agree that the plan is
     bad — the difference is only when: plan-open vs per-row *)
  match
    E.run_interpreted db
      (A.Project ([ (A.col "ghost", "g") ], A.Seq_scan { table = "emp"; alias = "e" }))
  with
  | exception E.Exec_error _ -> ()
  | _ -> Alcotest.fail "interpreted executor must also reject"

let test_compile_ambiguous_output () =
  let db = setup_db () in
  expect_compile_error db
    (A.Project
       ( [ (A.col "sal", "x"); (A.col "ename", "x") ],
         A.Seq_scan { table = "emp"; alias = "e" } ))
    [ "ambiguous"; "x" ];
  expect_compile_error db
    (A.Aggregate
       {
         group_by = [ (A.col "deptno", "n") ];
         aggs = [ (A.Count_star, "n") ];
         input = A.Seq_scan { table = "emp"; alias = "e" };
       })
    [ "ambiguous"; "n" ]

let test_compile_dead_case_branch () =
  let db = setup_db () in
  (* the losing CASE branch never evaluates at runtime, but its column
     references still must resolve at plan-open time *)
  expect_compile_error db
    (A.Project
       ( [
           ( A.Case ([ (A.(const_int 0 >. const_int 1), A.col "ghost") ], Some (A.const_int 7)),
             "c" );
         ],
         A.Seq_scan { table = "emp"; alias = "e" } ))
    [ "ghost"; "available columns" ]

let test_batch_boundaries () =
  (* row counts straddling batch edges: exactly one batch, one short of a
     boundary, one over, and a non-multiple — compiled results must equal
     the interpreted reference row for row *)
  let bs = E.default_batch_size in
  List.iter
    (fun n ->
      let db = DB.create () in
      let t =
        DB.create_table db "nums"
          [ { T.col_name = "k"; col_type = V.Tint }; { T.col_name = "v"; col_type = V.Tint } ]
      in
      for i = 0 to n - 1 do
        T.insert_values t [ V.Int i; V.Int (i * 7 mod 101) ]
      done;
      let plan =
        A.Project
          ( [ (A.col "k", "k"); (A.Binop (A.Add, A.col "v", A.const_int 1), "v1") ],
            A.Filter (A.(col "v" >. const_int 3), A.Seq_scan { table = "nums"; alias = "n" }) )
      in
      check cb
        (Printf.sprintf "compiled = interpreted at %d rows" n)
        true
        (E.run db plan = E.run_interpreted db plan))
    [ 0; 1; bs - 1; bs; bs + 1; (2 * bs) + 2 ]

let test_run_arrays_layout () =
  let db = setup_db () in
  let plan =
    A.Project ([ (A.col "ename", "ename") ], A.Seq_scan { table = "emp"; alias = "e" })
  in
  let layout, rows = E.run_arrays db plan in
  check ci "one slot" 1 (Xdb_rel.Layout.width layout);
  (match Xdb_rel.Layout.slot_opt layout "ename" with
  | Some s ->
      check Alcotest.(list string) "values via slot"
        [ "CLARK"; "MILLER"; "SMITH" ]
        (List.map (fun r -> V.to_string r.(s)) rows)
  | None -> Alcotest.fail "ename must resolve");
  check cb "qualified name absent above projection" true
    (Xdb_rel.Layout.slot_opt layout ~alias:"e" "ename" = None)

let () =
  Alcotest.run "relational"
    [
      ( "values",
        [
          Alcotest.test_case "casts" `Quick test_value_casts;
          Alcotest.test_case "comparisons" `Quick test_value_compare;
        ] );
      ( "btree",
        [
          Alcotest.test_case "insert/find" `Quick test_btree_basic;
          Alcotest.test_case "duplicates" `Quick test_btree_duplicates;
          Alcotest.test_case "range scans" `Quick test_btree_range;
          Alcotest.test_case "string keys" `Quick test_btree_strings;
          Alcotest.test_case "remove" `Quick test_btree_remove;
          QCheck_alcotest.to_alcotest prop_btree_remove_model;
          QCheck_alcotest.to_alcotest prop_btree_model;
        ] );
      ( "executor",
        [
          Alcotest.test_case "table errors" `Quick test_table_errors;
          Alcotest.test_case "update/delete with index" `Quick test_table_update_delete;
          Alcotest.test_case "scan/filter/project" `Quick test_scan_filter_project;
          Alcotest.test_case "index scan" `Quick test_index_scan;
          Alcotest.test_case "join" `Quick test_join;
          Alcotest.test_case "aggregate" `Quick test_aggregate;
          Alcotest.test_case "sort/limit" `Quick test_sort_limit;
          Alcotest.test_case "correlated subquery" `Quick test_scalar_subquery_correlated;
          Alcotest.test_case "case/exists/null" `Quick test_exists_case_nulls;
          Alcotest.test_case "SQL/XML publishing" `Quick test_xml_publishing_exprs;
          Alcotest.test_case "division semantics" `Quick test_division_semantics;
          Alcotest.test_case "NaN truthiness" `Quick test_nan_truthiness;
          Alcotest.test_case "round negative zero" `Quick test_sql_round_negative_zero;
          Alcotest.test_case "plan-open unknown column" `Quick test_compile_unknown_column;
          Alcotest.test_case "plan-open ambiguous output" `Quick test_compile_ambiguous_output;
          Alcotest.test_case "plan-open dead CASE branch" `Quick test_compile_dead_case_branch;
          Alcotest.test_case "batch boundaries" `Quick test_batch_boundaries;
          Alcotest.test_case "run_arrays layout" `Quick test_run_arrays_layout;
        ] );
      ( "instrumentation",
        [
          Alcotest.test_case "btree counters" `Quick test_btree_counters;
          Alcotest.test_case "analyzed index scan" `Quick test_run_analyzed_index_scan;
          Alcotest.test_case "subplans + json" `Quick test_run_analyzed_subplans_and_json;
          Alcotest.test_case "drop index flips plan" `Quick test_drop_index_changes_plan;
        ] );
      ( "statistics",
        [
          Alcotest.test_case "histogram boundaries" `Quick test_colstats_histogram;
          Alcotest.test_case "skew, NDV and MCVs" `Quick test_colstats_skew_and_mcvs;
          Alcotest.test_case "sal > 2000 selectivity (Tables 7/8)" `Quick
            test_analyze_sal_selectivity;
          Alcotest.test_case "cost-based conjunct choice" `Quick test_cost_based_conjunct_choice;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "index selection" `Quick test_optimizer_index_selection;
          Alcotest.test_case "plan equivalence" `Quick test_optimizer_preserves_results;
          Alcotest.test_case "cardinality estimates" `Quick test_cardinality_estimates;
          Alcotest.test_case "filter pushdown through project" `Quick
            test_filter_pushdown_through_project;
          Alcotest.test_case "limit below project" `Quick test_limit_below_project;
          Alcotest.test_case "index nested-loop join" `Quick test_index_nl_join;
          Alcotest.test_case "join reorder by cost" `Quick test_join_reorder_by_cost;
          Alcotest.test_case "hash join executors" `Quick test_hash_join_exec;
          Alcotest.test_case "semi/anti unnesting" `Quick test_semi_anti_unnest;
          Alcotest.test_case "join-graph pass order" `Quick test_joingraph_pass_order;
          QCheck_alcotest.to_alcotest prop_optimize_equivalence;
          QCheck_alcotest.to_alcotest prop_hash_join_equivalence;
        ] );
      ( "publishing",
        [
          Alcotest.test_case "materialize" `Quick test_materialize;
          Alcotest.test_case "derived schema" `Quick test_view_schema;
          Alcotest.test_case "spec navigation" `Quick test_spec_navigation;
          Alcotest.test_case "index-probe consistency" `Quick test_materialize_index_probe_consistency;
          Alcotest.test_case "streamed serialization" `Quick test_materialize_serialized;
          Alcotest.test_case "catalog registration" `Quick test_catalog_register;
        ] );
      ( "storage",
        [
          Alcotest.test_case "CLOB roundtrip" `Quick test_clob_roundtrip;
          Alcotest.test_case "path/value index" `Quick test_pathindex;
          Alcotest.test_case "path/value index dedup counting" `Quick test_pathindex_dedup;
        ] );
      ( "shredding",
        [
          Alcotest.test_case "shred/reconstruct roundtrip" `Quick test_shred_roundtrip;
          Alcotest.test_case "axis steps pick index range scans" `Quick test_shred_axis_plans;
          Alcotest.test_case "name dictionary capacity" `Quick test_shred_name_capacity;
          Alcotest.test_case "XSLTMark differential" `Quick test_shred_differential_xsltmark;
          QCheck_alcotest.to_alcotest prop_shred_differential;
          QCheck_alcotest.to_alcotest prop_shred_batch_differential;
        ] );
    ]
