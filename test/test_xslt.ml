(* Tests for xdb_xslt: stylesheet parsing, compilation, the XSLTVM. *)

module A = Xdb_xslt.Ast
module SP = Xdb_xslt.Parser
module C = Xdb_xslt.Compile
module VM = Xdb_xslt.Vm
module X = Xdb_xml.Types

let check = Alcotest.check
let cs = Alcotest.string
let cb = Alcotest.bool
let ci = Alcotest.int

let wrap body =
  Printf.sprintf
    {|<?xml version="1.0"?><xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">%s</xsl:stylesheet>|}
    body

let transform stylesheet_body doc_src =
  let doc = Xdb_xml.Parser.parse doc_src in
  let frag = VM.run_stylesheet (wrap stylesheet_body) doc in
  Xdb_xml.Serializer.node_list_to_string frag.X.children

(* ------------------------------------------------------------------ *)
(* stylesheet parsing                                                  *)
(* ------------------------------------------------------------------ *)

let test_parse_structure () =
  let ss =
    SP.parse
      (wrap
         {|<xsl:output method="html" indent="yes"/>
<xsl:variable name="g" select="1"/>
<xsl:template match="a"><x/></xsl:template>
<xsl:template name="named"><y/></xsl:template>|})
  in
  check ci "two templates" 2 (List.length ss.A.templates);
  check ci "one global" 1 (List.length ss.A.global_vars);
  check cb "html output" true (ss.A.output = A.Out_html);
  check cb "indent" true ss.A.indent

let test_parse_avt () =
  let avt = SP.parse_avt "pre-{1 + 2}-mid-{{literal}}-post" in
  check ci "three pieces" 3 (List.length avt);
  (match avt with
  | [ A.Avt_str "pre-"; A.Avt_expr _; A.Avt_str "-mid-{literal}-post" ] -> ()
  | _ -> Alcotest.fail "unexpected AVT shape");
  match SP.parse_avt "dangling{" with
  | exception SP.Stylesheet_error _ -> ()
  | _ -> Alcotest.fail "unterminated AVT must fail"

let test_parse_errors () =
  let fails body = match SP.parse (wrap body) with exception SP.Stylesheet_error _ -> true | _ -> false in
  check cb "template without match/name" true (fails "<xsl:template><x/></xsl:template>");
  check cb "value-of without select" true
    (fails "<xsl:template match=\"a\"><xsl:value-of/></xsl:template>");
  check cb "unknown instruction" true
    (fails "<xsl:template match=\"a\"><xsl:frobnicate/></xsl:template>");
  check cb "bad xpath" true
    (fails "<xsl:template match=\"a\"><xsl:value-of select=\"1 +\"/></xsl:template>")

let test_xslt2_rejected () =
  (* paper §7.1: for-each-group is an open issue — rejected with a clear error *)
  match
    SP.parse
      (wrap
         {|<xsl:template match="a"><xsl:for-each-group select="b" group-by="c"/></xsl:template>|})
  with
  | exception A.Unsupported msg ->
      check cb "mentions 2.0" true
        (String.length msg > 0
        &&
        let rec contains i =
          i + 3 <= String.length msg && (String.sub msg i 3 = "2.0" || contains (i + 1))
        in
        contains 0)
  | _ -> Alcotest.fail "for-each-group must raise Unsupported"

(* ------------------------------------------------------------------ *)
(* compilation                                                         *)
(* ------------------------------------------------------------------ *)

let test_compile_dispatch () =
  let ss =
    SP.parse
      (wrap
         {|<xsl:template match="a | b"><x/></xsl:template>
<xsl:template match="text()"/>
<xsl:template match="*"><y/></xsl:template>|})
  in
  let prog = C.compile ss in
  (* union split: a|b becomes two compiled templates *)
  check ci "four compiled templates" 4 (Array.length prog.C.templates);
  check cb "has sites" true (prog.C.n_apply_sites = 0);
  check cb "bytecode non-empty" true (C.program_size prog > 0)

let test_compile_call_unknown () =
  let ss =
    SP.parse (wrap {|<xsl:template match="a"><xsl:call-template name="ghost"/></xsl:template>|})
  in
  match C.compile ss with
  | exception C.Compile_error _ -> ()
  | _ -> Alcotest.fail "unknown call target must fail at compile time"

(* ------------------------------------------------------------------ *)
(* VM execution                                                        *)
(* ------------------------------------------------------------------ *)

let test_value_of_and_literals () =
  check cs "basic" "<out><v>hi</v></out>"
    (transform
       {|<xsl:template match="doc"><out><v><xsl:value-of select="a"/></v></out></xsl:template>|}
       "<doc><a>hi</a></doc>")

let test_builtin_rules () =
  (* no templates: built-in rules copy text through *)
  check cs "builtin text copy" "xy" (transform "" "<doc><a>x</a><b>y</b></doc>")

let test_template_conflict_resolution () =
  (* higher priority wins; later document order breaks ties *)
  check cs "priority wins" "<hi/>"
    (transform
       {|<xsl:template match="doc"><xsl:apply-templates select="a"/></xsl:template>
<xsl:template match="a" priority="2"><hi/></xsl:template>
<xsl:template match="a" priority="1"><lo/></xsl:template>
<xsl:template match="text()"/>|}
       "<doc><a>x</a></doc>");
  check cs "later wins ties" "<second/>"
    (transform
       {|<xsl:template match="doc"><xsl:apply-templates select="a"/></xsl:template>
<xsl:template match="a"><first/></xsl:template>
<xsl:template match="a"><second/></xsl:template>
<xsl:template match="text()"/>|}
       "<doc><a>x</a></doc>")

let test_for_each_sort () =
  check cs "numeric descending"
    "<s>10</s><s>2</s><s>9</s>|<s>10</s><s>9</s><s>2</s>"
    (transform
       {|<xsl:template match="doc"><xsl:for-each select="n"><xsl:sort select="."/><s><xsl:value-of select="."/></s></xsl:for-each>|<xsl:for-each select="n"><xsl:sort select="." data-type="number" order="descending"/><s><xsl:value-of select="."/></s></xsl:for-each></xsl:template>|}
       "<doc><n>10</n><n>9</n><n>2</n></doc>")

let test_choose_if () =
  check cs "choose branches" "<big/>|<small/>"
    (transform
       {|<xsl:template match="doc"><xsl:apply-templates select="n"/></xsl:template>
<xsl:template match="n"><xsl:if test="position() = 2">|</xsl:if><xsl:choose><xsl:when test=". &gt; 5"><big/></xsl:when><xsl:otherwise><small/></xsl:otherwise></xsl:choose></xsl:template>
<xsl:template match="text()"/>|}
       "<doc><n>10</n><n>2</n></doc>")

let test_variables_and_params () =
  check cs "variable scope" "6"
    (transform
       {|<xsl:template match="doc"><xsl:variable name="x" select="2"/><xsl:variable name="y" select="$x * 3"/><xsl:value-of select="$y"/></xsl:template>|}
       "<doc/>");
  check cs "call-template params" "7|42"
    (transform
       {|<xsl:template match="doc">
<xsl:call-template name="t"><xsl:with-param name="a" select="7"/></xsl:call-template>|<xsl:call-template name="t"><xsl:with-param name="a" select="7"/><xsl:with-param name="b" select="6"/></xsl:call-template>
</xsl:template>
<xsl:template name="t"><xsl:param name="a" select="0"/><xsl:param name="b" select="1"/><xsl:value-of select="$a * $b"/></xsl:template>|}
       "<doc/>")

let test_apply_with_params () =
  check cs "with-param through apply" "[x:7]"
    (transform
       {|<xsl:template match="doc"><xsl:apply-templates select="a"><xsl:with-param name="p" select="7"/></xsl:apply-templates></xsl:template>
<xsl:template match="a"><xsl:param name="p" select="0"/>[<xsl:value-of select="."/>:<xsl:value-of select="$p"/>]</xsl:template>
<xsl:template match="text()"/>|}
       "<doc><a>x</a></doc>")

let test_copy_and_copy_of () =
  check cs "copy-of deep" "<keep><a k=\"1\"><b/></a></keep>"
    (transform
       {|<xsl:template match="doc"><keep><xsl:copy-of select="a"/></keep></xsl:template>|}
       "<doc><a k=\"1\"><b/></a></doc>");
  check cs "copy shallow" "<a><inner/></a>"
    (transform
       {|<xsl:template match="doc"><xsl:apply-templates select="a"/></xsl:template>
<xsl:template match="a"><xsl:copy><inner/></xsl:copy></xsl:template>|}
       "<doc><a k=\"1\">text</a></doc>")

let test_element_attribute_cons () =
  check cs "computed constructors" "<e-a at=\"v1\">body</e-a>"
    (transform
       {|<xsl:template match="doc"><xsl:element name="e-{name(a)}"><xsl:attribute name="at">v<xsl:value-of select="count(*)"/></xsl:attribute>body</xsl:element></xsl:template>|}
       "<doc><a/></doc>")

let test_avt_in_literal () =
  check cs "avt" "<r id=\"1-A\"/>"
    (transform
       {|<xsl:template match="doc"><r id="{count(a)}-{a}"/></xsl:template>|}
       "<doc><a>A</a></doc>")

let test_modes () =
  check cs "mode dispatch" "<m1>x</m1><m2>x</m2>"
    (transform
       {|<xsl:template match="doc"><xsl:apply-templates select="a" mode="one"/><xsl:apply-templates select="a" mode="two"/></xsl:template>
<xsl:template match="a" mode="one"><m1><xsl:value-of select="."/></m1></xsl:template>
<xsl:template match="a" mode="two"><m2><xsl:value-of select="."/></m2></xsl:template>|}
       "<doc><a>x</a></doc>")

let test_number_instruction () =
  check cs "xsl:number" "<i>1</i><i>2</i><i>3</i>"
    (transform
       {|<xsl:template match="doc"><xsl:apply-templates select="n"/></xsl:template>
<xsl:template match="n"><i><xsl:number/></i></xsl:template>
<xsl:template match="text()"/>|}
       "<doc><n/><n/><n/></doc>")

let test_text_output_method () =
  let ss = SP.parse (wrap {|<xsl:output method="text"/>
<xsl:template match="doc">A&amp;B<xsl:value-of select="a"/></xsl:template>|}) in
  let prog = C.compile ss in
  let doc = Xdb_xml.Parser.parse "<doc><a>&lt;tag&gt;</a></doc>" in
  check cs "text method does not escape" "A&B<tag>" (VM.transform_to_string prog doc)

let test_comment_pi_output () =
  check cs "comment and pi" "<!--note--><?t d?>"
    (transform
       {|<xsl:template match="doc"><xsl:comment>note</xsl:comment><xsl:processing-instruction name="t">d</xsl:processing-instruction></xsl:template>|}
       "<doc/>")

let test_message () =
  let ss =
    SP.parse (wrap {|<xsl:template match="doc"><xsl:message>warned</xsl:message><ok/></xsl:template>|})
  in
  let prog = C.compile ss in
  let doc = Xdb_xml.Parser.parse "<doc/>" in
  let frag = VM.transform prog doc in
  check cs "output unaffected" "<ok/>" (Xdb_xml.Serializer.node_list_to_string frag.X.children)

let test_recursion_limit () =
  let ss =
    SP.parse
      (wrap
         {|<xsl:template match="doc"><xsl:call-template name="loop"/></xsl:template>
<xsl:template name="loop"><xsl:call-template name="loop"/></xsl:template>|})
  in
  let prog = C.compile ss in
  let doc = Xdb_xml.Parser.parse "<doc/>" in
  match VM.transform prog doc with
  | exception VM.Runtime_error _ -> ()
  | _ -> Alcotest.fail "infinite recursion must be stopped"

let test_key_function () =
  check cs "key lookup" "<found>beta</found><found>delta</found>"
    (transform
       {|<xsl:key name="bycat" match="item" use="cat"/>
<xsl:template match="doc"><xsl:apply-templates select="key('bycat', 'x')"/></xsl:template>
<xsl:template match="item"><found><xsl:value-of select="name"/></found></xsl:template>
<xsl:template match="text()"/>|}
       "<doc><item><cat>x</cat><name>beta</name></item><item><cat>y</cat><name>gamma</name></item><item><cat>x</cat><name>delta</name></item></doc>");
  (* unknown key name is an error *)
  let ss = SP.parse (wrap {|<xsl:template match="doc"><xsl:value-of select="count(key('ghost', 1))"/></xsl:template>|}) in
  let prog = C.compile ss in
  match VM.transform prog (Xdb_xml.Parser.parse "<doc/>") with
  | exception (VM.Runtime_error _ | Xdb_xpath.Eval.Eval_error _) -> ()
  | _ -> Alcotest.fail "unknown key must fail"

(* ------------------------------------------------------------------ *)
(* trace events                                                        *)
(* ------------------------------------------------------------------ *)

let test_trace_balanced () =
  let ss =
    SP.parse
      (wrap
         {|<xsl:template match="doc"><xsl:apply-templates/></xsl:template>
<xsl:template match="a"><x/></xsl:template>|})
  in
  let prog = C.compile ss in
  let doc = Xdb_xml.Parser.parse "<doc><a/><a/><b/></doc>" in
  let enters = ref 0 and exits = ref 0 and builtin = ref 0 in
  let sink = function
    | VM.Ev_enter { template = None; _ } ->
        incr builtin;
        incr enters
    | VM.Ev_enter _ -> incr enters
    | VM.Ev_exit -> incr exits
  in
  ignore (VM.transform ~trace:sink prog doc);
  check ci "balanced" !enters !exits;
  (* builtin fires for the document root, for <b/>, and for b's absence of
     children is nothing; also not for matched a's *)
  check cb "builtin fired" true (!builtin >= 2);
  check ci "total activations" 5 !enters

let test_strip_space () =
  (* without stripping, the builtin rules copy the indentation whitespace *)
  let src = "<doc>\n  <a>x</a>\n  <a>y</a>\n</doc>" in
  check cs "no stripping keeps whitespace" "\n  x\n  y\n"
    (transform {|<xsl:template match="a"><xsl:value-of select="."/></xsl:template>|} src);
  check cs "strip-space *" "xy"
    (transform
       ({|<xsl:strip-space elements="*"/>|}
       ^ {|<xsl:template match="a"><xsl:value-of select="."/></xsl:template>|})
       src);
  (* preserve-space wins over strip-space *)
  check cs "preserve overrides" "\n  x\n  y\n"
    (transform
       ({|<xsl:strip-space elements="*"/><xsl:preserve-space elements="doc"/>|}
       ^ {|<xsl:template match="a"><xsl:value-of select="."/></xsl:template>|})
       src);
  (* non-whitespace text survives stripping *)
  check cs "real text kept" "k-x"
    (transform
       ({|<xsl:strip-space elements="*"/>|}
       ^ {|<xsl:template match="a">-<xsl:value-of select="."/></xsl:template>|})
       "<doc>k<a>x</a> </doc>")

(* stylesheet-level fuzz: mutate one byte of a valid stylesheet; only the
   documented exception families may escape *)
let prop_stylesheet_mutation =
  QCheck.Test.make ~name:"stylesheet mutations stay in documented errors" ~count:200
    QCheck.(pair (int_bound 2000) (int_bound 255))
    (fun (pos, byte) ->
      let src =
        wrap
          {|<xsl:template match="a"><x k="{@v}"><xsl:value-of select="b"/></x></xsl:template>|}
      in
      let b = Bytes.of_string src in
      Bytes.set b (pos mod Bytes.length b) (Char.chr byte);
      match SP.parse (Bytes.to_string b) with
      | _ -> true
      | exception
          ( SP.Stylesheet_error _ | A.Unsupported _ | Xdb_xml.Parser.Parse_error _
          | Xdb_xpath.Parser.Parse_error _ | Xdb_xpath.Lexer.Lex_error _
          | Xdb_xpath.Pattern.Invalid_pattern _ ) ->
          true)

let () =
  Alcotest.run "xslt"
    [
      ( "parsing",
        [
          Alcotest.test_case "structure" `Quick test_parse_structure;
          Alcotest.test_case "AVT" `Quick test_parse_avt;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "XSLT 2.0 rejected" `Quick test_xslt2_rejected;
        ] );
      ( "compile",
        [
          Alcotest.test_case "dispatch tables" `Quick test_compile_dispatch;
          Alcotest.test_case "unknown call target" `Quick test_compile_call_unknown;
        ] );
      ( "vm",
        [
          Alcotest.test_case "value-of/literals" `Quick test_value_of_and_literals;
          Alcotest.test_case "builtin rules" `Quick test_builtin_rules;
          Alcotest.test_case "conflict resolution" `Quick test_template_conflict_resolution;
          Alcotest.test_case "for-each + sort" `Quick test_for_each_sort;
          Alcotest.test_case "choose/if" `Quick test_choose_if;
          Alcotest.test_case "variables/params" `Quick test_variables_and_params;
          Alcotest.test_case "apply with params" `Quick test_apply_with_params;
          Alcotest.test_case "copy / copy-of" `Quick test_copy_and_copy_of;
          Alcotest.test_case "element/attribute" `Quick test_element_attribute_cons;
          Alcotest.test_case "AVT in literal" `Quick test_avt_in_literal;
          Alcotest.test_case "modes" `Quick test_modes;
          Alcotest.test_case "xsl:number" `Quick test_number_instruction;
          Alcotest.test_case "text output" `Quick test_text_output_method;
          Alcotest.test_case "comment/PI" `Quick test_comment_pi_output;
          Alcotest.test_case "xsl:message" `Quick test_message;
          Alcotest.test_case "recursion limit" `Quick test_recursion_limit;
          Alcotest.test_case "xsl:key / key()" `Quick test_key_function;
          Alcotest.test_case "strip/preserve-space" `Quick test_strip_space;
        ] );
      ("trace", [ Alcotest.test_case "balanced events" `Quick test_trace_balanced ]);
      ("fuzz", [ QCheck_alcotest.to_alcotest prop_stylesheet_mutation ]);
    ]
