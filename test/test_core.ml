(* Tests for xdb_core: the paper's contribution — partial evaluation,
   execution graph, the §3.3–3.7 rewrite techniques, the pipeline, and the
   Example 1 / Example 2 reproductions. *)

module S = Xdb_schema.Types
module Q = Xdb_xquery.Ast
module A = Xdb_rel.Algebra
module P = Xdb_rel.Publish
module V = Xdb_rel.Value
module T = Xdb_rel.Table
module X = Xdb_xml.Types
module C = Xdb_xslt.Compile
module TR = Xdb_core.Trace
module GEN = Xdb_core.Xslt2xquery
module O = Xdb_core.Options
module PL = Xdb_core.Pipeline

let check = Alcotest.check
let cs = Alcotest.string
let cb = Alcotest.bool
let ci = Alcotest.int

let contains sub s =
  let rec go i =
    i + String.length sub <= String.length s
    && (String.sub s i (String.length sub) = sub || go (i + 1))
  in
  go 0

let compile_ss body =
  C.compile
    (Xdb_xslt.Parser.parse
       (Printf.sprintf
          {|<?xml version="1.0"?><xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">%s</xsl:stylesheet>|}
          body))

let dept_schema =
  S.make ~root:"dept"
    [
      S.node "dept" [ S.particle "dname"; S.particle "loc"; S.particle "employees" ];
      S.node "employees" [ S.particle ~occurs:S.many "emp" ];
      S.node "emp" [ S.particle "empno"; S.particle "ename"; S.particle "sal" ];
      S.leaf "dname";
      S.leaf "loc";
      S.leaf "empno";
      S.leaf "ename";
      S.leaf "sal";
    ]

let example1_body =
  {|<xsl:template match="dept">
<H1>HIGHLY PAID DEPT EMPLOYEES</H1>
<xsl:apply-templates/>
</xsl:template>
<xsl:template match="dname">
<H2>Department name: <xsl:value-of select="."/></H2>
</xsl:template>
<xsl:template match="loc">
<H2>Department location: <xsl:value-of select="."/></H2>
</xsl:template>
<xsl:template match="employees">
<H2>Employees Table</H2>
<table border="2">
<td><b>EmpNo</b></td>
<td><b>Name</b></td>
<td><b>Weekly Salary</b></td>
<xsl:apply-templates select="emp[sal &gt; 2000]"/>
</table>
</xsl:template>
<xsl:template match = "emp">
<tr>
<td><xsl:value-of select="empno"/></td>
<td><xsl:value-of select="ename"/></td>
<td><xsl:value-of select="sal"/></td>
</tr>
</xsl:template>
<xsl:template match="text()">
<xsl:value-of select="."/>
</xsl:template>|}

(* ------------------------------------------------------------------ *)
(* trace / execution graph (§4.3)                                      *)
(* ------------------------------------------------------------------ *)

let test_execution_graph () =
  let prog = compile_ss example1_body in
  let sample = Xdb_schema.Sample.generate dept_schema in
  let graph = TR.run prog sample in
  check cb "acyclic" false graph.TR.recursive;
  (* root state is the builtin on the document, then dept template *)
  check cb "root is builtin" true (graph.TR.root.TR.template = None);
  check ci "root has one transition" 1 (List.length graph.TR.root.TR.transitions);
  (* conservative predicate assumption dispatched emp despite [sal > 2000] *)
  let printed = TR.to_string graph in
  check cb "emp reached" true (contains "on <emp>" printed);
  (* 5 user templates instantiated (text() never fires: no sample text under
     matched elements appears via apply with select) *)
  check cb "several instantiated" true (List.length graph.TR.instantiated >= 4)

let test_recursion_detected () =
  let prog =
    compile_ss
      {|<xsl:template match="numbers">
<xsl:call-template name="go"><xsl:with-param name="n" select="3"/></xsl:call-template>
</xsl:template>
<xsl:template name="go">
<xsl:param name="n" select="0"/>
<xsl:if test="$n &gt; 0">
<v/><xsl:call-template name="go"><xsl:with-param name="n" select="$n - 1"/></xsl:call-template>
</xsl:if>
</xsl:template>|}
  in
  let schema = S.make ~root:"numbers" [ S.leaf "numbers" ] in
  let sample = Xdb_schema.Sample.generate schema in
  let graph = TR.run prog sample in
  check cb "recursion flagged" true graph.TR.recursive

(* ------------------------------------------------------------------ *)
(* translation modes                                                   *)
(* ------------------------------------------------------------------ *)

let test_inline_mode_selected () =
  let prog = compile_ss example1_body in
  let result = GEN.translate prog ~schema:dept_schema in
  check cb "inline" true (result.GEN.mode = GEN.Mode_inline);
  check cb "no user functions" true (result.GEN.query.Q.funs = []);
  check cb "no calls in body" false (Q.has_user_calls result.GEN.query.Q.body);
  (* residual predicate survives (conservative §4.1) *)
  let printed = Xdb_xquery.Pretty.prog_syntax result.GEN.query in
  check cb "predicate residual" true (contains "sal > 2000" printed);
  (* cardinality: LET for dname (one), FOR for emp (many) — Table 15 *)
  check cb "let for singleton" true (contains "let $" printed);
  check cb "for over emp" true (contains "for $" printed)

let test_builtin_compaction () =
  (* paper §3.6, Tables 20–21: the empty stylesheet *)
  let prog = compile_ss "" in
  let result = GEN.translate prog ~schema:dept_schema in
  check cb "compact mode" true (result.GEN.mode = GEN.Mode_builtin_compact);
  let printed = Xdb_xquery.Pretty.prog_syntax result.GEN.query in
  check cb "string-join over //text()" true (contains "string-join" printed);
  (* equivalence with the VM on a real document *)
  let doc =
    Xdb_xml.Parser.parse
      "<dept><dname>A</dname><loc>B</loc><employees><emp><empno>1</empno><ename>N</ename><sal>2</sal></emp></employees></dept>"
  in
  let vm_out =
    Xdb_xml.Serializer.node_list_to_string (Xdb_xslt.Vm.transform prog doc).X.children
  in
  let q_out =
    Xdb_xml.Serializer.node_list_to_string
      (Xdb_xquery.Eval.run_to_nodes result.GEN.query ~context:doc)
  in
  check cs "compact ≡ builtin rules" vm_out q_out

let test_recursive_schema_forces_functions () =
  let tree_schema =
    S.make ~root:"tree"
      [
        S.node "tree" [ S.particle "node" ];
        S.node "node" [ S.particle "label"; S.particle ~occurs:S.many "node" ];
        S.leaf "label";
      ]
  in
  let prog =
    compile_ss
      {|<xsl:template match="node"><n><xsl:apply-templates select="node"/></n></xsl:template>
<xsl:template match="text()"/>|}
  in
  let result = GEN.translate prog ~schema:tree_schema in
  check cb "non-inline for recursive structure" true (result.GEN.mode = GEN.Mode_functions)

let test_dead_template_removal () =
  (* §3.7: ghost templates produce no code in inline mode *)
  let prog =
    compile_ss
      ({|<xsl:template match="ghost"><never/></xsl:template>|} ^ example1_body)
  in
  let result = GEN.translate prog ~schema:dept_schema in
  let printed = Xdb_xquery.Pretty.prog_syntax result.GEN.query in
  check cb "ghost template dropped" false (contains "never" printed)

let test_partial_inline_extension () =
  (* §7.2 extension: recursive stylesheets keep the acyclic part inline *)
  let body =
    {|<xsl:template match="numbers">
<wrap>
<xsl:call-template name="go"><xsl:with-param name="n" select="3"/></xsl:call-template>
</wrap>
</xsl:template>
<xsl:template name="go">
<xsl:param name="n" select="0"/>
<xsl:if test="$n &gt; 0">
<v><xsl:value-of select="$n"/></v>
<xsl:call-template name="go"><xsl:with-param name="n" select="$n - 1"/></xsl:call-template>
</xsl:if>
</xsl:template>
<xsl:template match="text()"/>|}
  in
  let schema =
    S.make ~root:"numbers" [ S.node "numbers" [ S.particle ~occurs:S.many "num" ]; S.leaf "num" ]
  in
  let prog = compile_ss body in
  (* paper configuration: recursion → full functions mode *)
  let default = GEN.translate prog ~schema in
  check cb "paper config: non-inline" true (default.GEN.mode = GEN.Mode_functions);
  (* extension: only the recursive template becomes a function *)
  let partial = GEN.translate ~options:O.with_partial_inline prog ~schema in
  check cb "partial-inline mode" true (partial.GEN.mode = GEN.Mode_partial_inline);
  check ci "only the cycle template is a function" 1
    (List.length partial.GEN.query.Q.funs);
  let printed = Xdb_xquery.Pretty.prog_syntax partial.GEN.query in
  check cb "wrap element inlined" true (contains "<wrap>" printed);
  (* both agree with the VM *)
  let doc = Xdb_xml.Parser.parse "<numbers><num>1</num><num>2</num></numbers>" in
  let vm = Xdb_xml.Serializer.node_list_to_string (Xdb_xslt.Vm.transform prog doc).X.children in
  let run q = Xdb_xml.Serializer.node_list_to_string (Xdb_xquery.Eval.run_to_nodes q ~context:doc) in
  check cs "functions ≡ VM" vm (run default.GEN.query);
  check cs "partial ≡ VM" vm (run partial.GEN.query)

let test_strip_space_pipeline () =
  (* both evaluation strategies consume the same stripped tree *)
  let ss =
    Printf.sprintf
      {|<?xml version="1.0"?><xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
<xsl:strip-space elements="*"/>
<xsl:template match="doc"><out><xsl:apply-templates/></out></xsl:template>
<xsl:template match="a"><v><xsl:value-of select="."/></v></xsl:template>
</xsl:stylesheet>|}
  in
  let doc = Xdb_xml.Parser.parse "<doc>\n  <a>x</a>\n  <a>y</a>\n</doc>" in
  let dc = PL.compile_for_document ss ~example_doc:doc in
  let f = PL.transform_functional dc doc in
  let x = PL.transform_via_xquery dc doc in
  check cs "stripped equivalence" f x;
  check cs "whitespace gone" "<out><v>x</v><v>y</v></out>" f

let test_position_last_translation () =
  (* position() and last() inside an applied template translate via a
     positional FLWOR variable and a pre-bound count *)
  let body =
    {|<xsl:template match="employees"><xsl:apply-templates select="emp"/></xsl:template>
<xsl:template match="emp">
<e p="{position()}" n="{last()}"><xsl:value-of select="ename"/></e>
</xsl:template>
<xsl:template match="text()"/>|}
  in
  let prog = compile_ss body in
  let result = GEN.translate prog ~schema:dept_schema in
  check cb "still inline" true (result.GEN.mode = GEN.Mode_inline);
  let doc =
    Xdb_xml.Parser.parse
      "<dept><dname>D</dname><loc>L</loc><employees><emp><empno>1</empno><ename>A</ename><sal>1</sal></emp><emp><empno>2</empno><ename>B</ename><sal>2</sal></emp><emp><empno>3</empno><ename>C</ename><sal>3</sal></emp></employees></dept>"
  in
  let vm = Xdb_xml.Serializer.node_list_to_string (Xdb_xslt.Vm.transform prog doc).X.children in
  let q =
    Xdb_xml.Serializer.node_list_to_string
      (Xdb_xquery.Eval.run_to_nodes result.GEN.query ~context:doc)
  in
  check cs "position/last ≡ VM" vm q;
  check cs "expected shape"
    "<e p=\"1\" n=\"3\">A</e><e p=\"2\" n=\"3\">B</e><e p=\"3\" n=\"3\">C</e>" q

let test_key_translation () =
  (* key(name, v) expands to a document search with the use-predicate *)
  let body =
    {|<xsl:key name="byno" match="emp" use="empno"/>
<xsl:template match="dept">
<found><xsl:value-of select="count(key('byno', 7782))"/></found>
</xsl:template>
<xsl:template match="text()"/>|}
  in
  let prog = compile_ss body in
  let result = GEN.translate prog ~schema:dept_schema in
  let doc =
    Xdb_xml.Parser.parse
      "<dept><dname>D</dname><loc>L</loc><employees><emp><empno>7782</empno><ename>A</ename><sal>1</sal></emp><emp><empno>9</empno><ename>B</ename><sal>2</sal></emp></employees></dept>"
  in
  let vm = Xdb_xml.Serializer.node_list_to_string (Xdb_xslt.Vm.transform prog doc).X.children in
  let q =
    Xdb_xml.Serializer.node_list_to_string
      (Xdb_xquery.Eval.run_to_nodes result.GEN.query ~context:doc)
  in
  check cs "key expansion ≡ VM" vm q;
  check cs "one emp found" "<found>1</found>" q

let test_straightforward_translation () =
  (* [9]-style: functions + dispatch conditionals, no structural info *)
  let prog = compile_ss example1_body in
  let result = GEN.translate_straightforward prog ~schema:dept_schema in
  check cb "functions mode" true (result.GEN.mode = GEN.Mode_functions);
  check cb "has functions" true (List.length result.GEN.query.Q.funs > 0);
  let printed = Xdb_xquery.Pretty.prog_syntax result.GEN.query in
  check cb "instance-of dispatch" true (contains "instance of" printed);
  check cb "builtin function" true (contains "local:builtin" printed)

let test_backward_axis_removal () =
  (* §3.5, Tables 16–19: match="emp/empno" parent test removable because the
     schema proves empno only occurs under emp *)
  let body =
    {|<xsl:template match="dept"><xsl:apply-templates select="employees/emp/empno"/></xsl:template>
<xsl:template match="emp/empno"><e><xsl:value-of select="."/></e></xsl:template>
<xsl:template match="text()"/>|}
  in
  let prog = compile_ss body in
  let with_removal =
    GEN.translate ~options:{ O.straightforward with O.remove_backward_tests = true } prog
      ~schema:dept_schema
  in
  let without_removal =
    GEN.translate ~options:O.straightforward prog ~schema:dept_schema
  in
  let p_with = Xdb_xquery.Pretty.prog_syntax with_removal.GEN.query in
  let p_without = Xdb_xquery.Pretty.prog_syntax without_removal.GEN.query in
  check cb "parent test present without removal" true (contains "parent::emp" p_without);
  check cb "parent test removed" false (contains "parent::emp" p_with);
  (* both still compute the same result *)
  let doc =
    Xdb_xml.Parser.parse
      "<dept><dname>D</dname><loc>L</loc><employees><emp><empno>7</empno><ename>N</ename><sal>1</sal></emp></employees></dept>"
  in
  let run q = Xdb_xml.Serializer.node_list_to_string (Xdb_xquery.Eval.run_to_nodes q ~context:doc) in
  check cs "equivalent" (run without_removal.GEN.query) (run with_removal.GEN.query)

let test_model_group_variants () =
  (* §3.4, Tables 12–14: choice vs sequence generation *)
  let body =
    {|<xsl:template match="pick"><xsl:apply-templates/></xsl:template>
<xsl:template match="a"><A/></xsl:template>
<xsl:template match="b"><B/></xsl:template>
<xsl:template match="text()"/>|}
  in
  let prog = compile_ss body in
  let choice_schema =
    S.make ~root:"pick"
      [ S.node ~group:S.Choice "pick" [ S.particle ~occurs:S.optional "a"; S.particle ~occurs:S.optional "b" ];
        S.leaf "a"; S.leaf "b" ]
  in
  let seq_schema =
    S.make ~root:"pick"
      [ S.node "pick" [ S.particle "a"; S.particle "b" ]; S.leaf "a"; S.leaf "b" ]
  in
  let p_choice =
    Xdb_xquery.Pretty.prog_syntax (GEN.translate prog ~schema:choice_schema).GEN.query
  in
  let p_seq = Xdb_xquery.Pretty.prog_syntax (GEN.translate prog ~schema:seq_schema).GEN.query in
  (* choice: existence conditionals (Table 13); sequence: none (Table 14) *)
  check cb "choice uses exists" true (contains "exists" p_choice);
  check cb "sequence has no conditional" false (contains "if (" p_seq);
  (* all-group: instance-of tests over node() (Table 12) *)
  let all_schema =
    S.make ~root:"pick"
      [ S.node ~group:S.All "pick" [ S.particle "a"; S.particle "b" ]; S.leaf "a"; S.leaf "b" ]
  in
  let p_all = Xdb_xquery.Pretty.prog_syntax (GEN.translate prog ~schema:all_schema).GEN.query in
  check cb "all uses instance-of" true (contains "instance of" p_all)

let test_cardinality_let_vs_for () =
  let body =
    {|<xsl:template match="dept"><xsl:apply-templates select="dname"/></xsl:template>
<xsl:template match="dname"><d><xsl:value-of select="."/></d></xsl:template>
<xsl:template match="text()"/>|}
  in
  let prog = compile_ss body in
  let with_card = GEN.translate prog ~schema:dept_schema in
  let without_card =
    GEN.translate ~options:{ O.default with O.use_cardinality = false } prog ~schema:dept_schema
  in
  let p1 = Xdb_xquery.Pretty.prog_syntax with_card.GEN.query in
  let p2 = Xdb_xquery.Pretty.prog_syntax without_card.GEN.query in
  check cb "cardinality one uses let" true (contains "let $var" p1);
  check cb "option off uses for" true (contains "for $var" p2)

(* ------------------------------------------------------------------ *)
(* full pipeline (Example 1 / Example 2)                                *)
(* ------------------------------------------------------------------ *)

let setup_example1 () =
  let db = Xdb_rel.Database.create () in
  let dept =
    Xdb_rel.Database.create_table db "dept"
      [
        { T.col_name = "deptno"; col_type = V.Tint };
        { T.col_name = "dname"; col_type = V.Tstr };
        { T.col_name = "loc"; col_type = V.Tstr };
      ]
  in
  let emp =
    Xdb_rel.Database.create_table db "emp"
      [
        { T.col_name = "empno"; col_type = V.Tint };
        { T.col_name = "ename"; col_type = V.Tstr };
        { T.col_name = "sal"; col_type = V.Tint };
        { T.col_name = "deptno"; col_type = V.Tint };
      ]
  in
  T.insert_values dept [ V.Int 10; V.Str "ACCOUNTING"; V.Str "NEW YORK" ];
  T.insert_values dept [ V.Int 40; V.Str "OPERATIONS"; V.Str "BOSTON" ];
  T.insert_values emp [ V.Int 7782; V.Str "CLARK"; V.Int 2450; V.Int 10 ];
  T.insert_values emp [ V.Int 7934; V.Str "MILLER"; V.Int 1300; V.Int 10 ];
  T.insert_values emp [ V.Int 7954; V.Str "SMITH"; V.Int 4900; V.Int 40 ];
  ignore (T.create_index emp ~name:"emp_sal_idx" ~column:"sal");
  let leaf name col = P.Elem { name; attrs = []; content = [ P.Text_col col ] } in
  let view =
    {
      P.view_name = "dept_emp";
      base_table = "dept";
      base_alias = "dept";
      column = "dept_content";
      spec =
        P.Elem
          {
            name = "dept";
            attrs = [];
            content =
              [
                leaf "dname" "dname";
                leaf "loc" "loc";
                P.Elem
                  {
                    name = "employees";
                    attrs = [];
                    content =
                      [
                        P.Agg
                          {
                            table = "emp";
                            alias = "emp";
                            correlate = [ ("deptno", "deptno") ];
                            where = None;
                            order_by = [ ("empno", A.Asc) ];
                            body =
                              P.Elem
                                {
                                  name = "emp";
                                  attrs = [];
                                  content =
                                    [ leaf "empno" "empno"; leaf "ename" "ename"; leaf "sal" "sal" ];
                                };
                          };
                      ];
                  };
              ];
          };
    }
  in
  (db, view)

let example1_stylesheet =
  Printf.sprintf
    {|<?xml version="1.0"?><xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">%s</xsl:stylesheet>|}
    example1_body

let test_example1_pipeline () =
  let db, view = setup_example1 () in
  let c = PL.compile db view example1_stylesheet in
  check cb "SQL plan produced" true (c.PL.sql_plan <> None);
  let f = PL.run_functional db c in
  let x = PL.run_xquery_stage db c in
  let r = PL.run_rewrite db c in
  check Alcotest.(list string) "functional = xquery stage" f x;
  check Alcotest.(list string) "functional = rewrite" f r;
  (* the first row reproduces paper Table 6 *)
  check cs "paper Table 6"
    "<H1>HIGHLY PAID DEPT EMPLOYEES</H1><H2>Department name: ACCOUNTING</H2><H2>Department location: NEW YORK</H2><H2>Employees Table</H2><table border=\"2\"><td><b>EmpNo</b></td><td><b>Name</b></td><td><b>Weekly Salary</b></td><tr><td>7782</td><td>CLARK</td><td>2450</td></tr></table>"
    (List.hd f);
  (* plan shape of paper Table 7: index scan on sal inside the subquery *)
  let explain = A.explain (Option.get c.PL.sql_plan) in
  check cb "B-tree probe on sal" true (contains "IndexScan emp" explain);
  check cb "residual correlation" true (contains "deptno" explain)

let test_example2_combined () =
  let db, view = setup_example1 () in
  let c = PL.compile db view example1_stylesheet in
  let steps = [ Xdb_xpath.Ast.child_step "table"; Xdb_xpath.Ast.child_step "tr" ] in
  let plan_opt, composed = PL.compose db c steps in
  check cb "combined plan produced" true (plan_opt <> None);
  (* the composed query keeps only the tr-producing FLWOR (paper Table 11) *)
  let printed = Xdb_xquery.Pretty.prog_syntax composed in
  check cb "H1 eliminated" false (contains "H1" printed);
  check cb "emp iteration kept" true (contains "emp[sal > 2000]" printed);
  (* results: one row set per dept *)
  let rows = Xdb_rel.Exec.run db (Option.get plan_opt) in
  let out = List.map (fun r -> V.to_string (List.assoc "result" r)) rows in
  check Alcotest.(list string) "paper Table 11 result"
    [
      "<tr><td>7782</td><td>CLARK</td><td>2450</td></tr>";
      "<tr><td>7954</td><td>SMITH</td><td>4900</td></tr>";
    ]
    out;
  (* dynamic evaluation agrees *)
  let dyn = PL.run_composed_dynamic db c composed in
  check Alcotest.(list string) "composition differential" dyn out

let test_explain_sections () =
  let db, view = setup_example1 () in
  let c = PL.compile db view example1_stylesheet in
  let text = PL.explain c in
  check cb "mode section" true (contains "translation mode: inline" text);
  check cb "graph section" true (contains "template execution graph" text);
  check cb "xquery section" true (contains "declare variable $var000" text);
  check cb "plan section" true (contains "SQL/XML plan" text)

let test_schema_evolution_registry () =
  (* paper §7.3: re-registering an evolved view triggers recompilation *)
  let db, view = setup_example1 () in
  let reg = Xdb_core.Registry.create db in
  Xdb_core.Registry.register_view reg view;
  let out1 =
    Xdb_core.Registry.run reg ~view_name:"dept_emp" ~stylesheet:example1_stylesheet
  in
  check ci "one compilation" 1 (Xdb_core.Registry.recompilations reg);
  (* reuse: same view, same stylesheet → cached *)
  let out1' =
    Xdb_core.Registry.run reg ~view_name:"dept_emp" ~stylesheet:example1_stylesheet
  in
  check ci "cache hit" 1 (Xdb_core.Registry.recompilations reg);
  check Alcotest.(list string) "stable output" out1 out1';
  (* evolve the schema: drop <loc> from the published shape *)
  let evolved =
    match view.P.spec with
    | P.Elem ({ content = dname :: _loc :: rest; _ } as e) ->
        { view with P.spec = P.Elem { e with content = dname :: rest } }
    | _ -> Alcotest.fail "unexpected spec shape"
  in
  Xdb_core.Registry.register_view reg evolved;
  let out2 =
    Xdb_core.Registry.run reg ~view_name:"dept_emp" ~stylesheet:example1_stylesheet
  in
  check ci "recompiled after evolution" 2 (Xdb_core.Registry.recompilations reg);
  check cb "output reflects new schema" true (out1 <> out2);
  check cb "loc gone from output" false (contains "Department location" (List.hd out2));
  (* unknown views are reported *)
  match Xdb_core.Registry.run reg ~view_name:"ghost" ~stylesheet:example1_stylesheet with
  | exception Xdb_core.Registry.Registry_error _ -> ()
  | _ -> Alcotest.fail "unknown view must raise"

let test_evolution_vs_catalog_duplicates () =
  (* schema evolution replaces a view by re-registering it through the
     registry; the publishing catalog itself never silently shadows — a
     second register of the same name raises Publish_error *)
  let db, view = setup_example1 () in
  let cat = P.create_catalog db in
  P.register cat view;
  (match P.register cat view with
  | exception P.Publish_error _ -> ()
  | () -> Alcotest.fail "catalog must reject duplicate view names");
  let reg = Xdb_core.Registry.create db in
  Xdb_core.Registry.register_view reg view;
  let out1 =
    Xdb_core.Registry.run reg ~view_name:"dept_emp" ~stylesheet:example1_stylesheet
  in
  let evolved =
    match view.P.spec with
    | P.Elem ({ content = dname :: _loc :: rest; _ } as e) ->
        { view with P.spec = P.Elem { e with content = dname :: rest } }
    | _ -> Alcotest.fail "unexpected spec shape"
  in
  (* registry re-registration is the evolution path: replaces, no error *)
  Xdb_core.Registry.register_view reg evolved;
  let out2 =
    Xdb_core.Registry.run reg ~view_name:"dept_emp" ~stylesheet:example1_stylesheet
  in
  check ci "recompiled on evolution" 2 (Xdb_core.Registry.recompilations reg);
  check cb "evolved output differs" true (out1 <> out2)

let test_registry_counters () =
  (* one recompilation — and exactly one — after schema evolution, with
     hit/miss/stale accounting to match *)
  let db, view = setup_example1 () in
  let reg = Xdb_core.Registry.create db in
  Xdb_core.Registry.register_view reg view;
  let counter name = List.assoc name (Xdb_core.Registry.counters reg) in
  ignore (Xdb_core.Registry.compile reg ~view_name:"dept_emp" ~stylesheet:example1_stylesheet);
  check ci "first use is a miss" 1 (counter "cache_misses");
  check ci "no hits yet" 0 (counter "cache_hits");
  ignore (Xdb_core.Registry.compile reg ~view_name:"dept_emp" ~stylesheet:example1_stylesheet);
  ignore (Xdb_core.Registry.compile reg ~view_name:"dept_emp" ~stylesheet:example1_stylesheet);
  check ci "reuses hit the cache" 2 (counter "cache_hits");
  check ci "still one miss" 1 (counter "cache_misses");
  check ci "nothing stale yet" 0 (counter "cache_stale");
  (* evolve the schema: drop <loc>; the next compile is stale, not a miss *)
  let evolved =
    match view.P.spec with
    | P.Elem ({ content = dname :: _loc :: rest; _ } as e) ->
        { view with P.spec = P.Elem { e with content = dname :: rest } }
    | _ -> Alcotest.fail "unexpected spec shape"
  in
  Xdb_core.Registry.register_view reg evolved;
  ignore (Xdb_core.Registry.compile reg ~view_name:"dept_emp" ~stylesheet:example1_stylesheet);
  check ci "exactly one stale entry" 1 (counter "cache_stale");
  check ci "misses unchanged" 1 (counter "cache_misses");
  check ci "recompilations = misses + stale" 2 (counter "recompilations");
  (* the recompiled entry serves hits again *)
  ignore (Xdb_core.Registry.compile reg ~view_name:"dept_emp" ~stylesheet:example1_stylesheet);
  check ci "hit after recompilation" 3 (counter "cache_hits");
  check ci "recompilation count settled" 2 (counter "recompilations")

let test_registry_stats_invalidation () =
  (* re-ANALYZE bumps the catalog's stats version; cached plans were costed
     against the old statistics and must recompile (§7.3 spirit: the
     database tracks the dependency, the registry recompiles) *)
  let db, view = setup_example1 () in
  let reg = Xdb_core.Registry.create db in
  Xdb_core.Registry.register_view reg view;
  let counter name = List.assoc name (Xdb_core.Registry.counters reg) in
  let out1 = Xdb_core.Registry.run reg ~view_name:"dept_emp" ~stylesheet:example1_stylesheet in
  ignore (Xdb_core.Registry.run reg ~view_name:"dept_emp" ~stylesheet:example1_stylesheet);
  check ci "cached before ANALYZE" 1 (counter "recompilations");
  ignore (Xdb_rel.Analyze.all db);
  let out2 = Xdb_core.Registry.run reg ~view_name:"dept_emp" ~stylesheet:example1_stylesheet in
  check ci "entry went stale on re-ANALYZE" 1 (counter "cache_stale");
  check ci "recompiled once" 2 (counter "recompilations");
  check Alcotest.(list string) "re-costed plan, same output" out1 out2;
  (* the fresh entry serves hits until the stats change again *)
  ignore (Xdb_core.Registry.run reg ~view_name:"dept_emp" ~stylesheet:example1_stylesheet);
  check ci "steady state" 2 (counter "recompilations");
  ignore (Xdb_rel.Analyze.table db "emp");
  ignore (Xdb_core.Registry.run reg ~view_name:"dept_emp" ~stylesheet:example1_stylesheet);
  check ci "second ANALYZE invalidates again" 3 (counter "recompilations")

let test_registry_lru_eviction () =
  (* capacity-bounded cache: the least recently used entry is evicted and
     counted; a later use of the victim is a fresh miss *)
  let db, view = setup_example1 () in
  let reg = Xdb_core.Registry.create ~capacity:2 db in
  Xdb_core.Registry.register_view reg view;
  let counter name = List.assoc name (Xdb_core.Registry.counters reg) in
  (* same semantics, distinct cache keys: a tagging comment in the sheet *)
  let variant tag =
    Printf.sprintf
      {|<?xml version="1.0"?><xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">%s<!-- %s --></xsl:stylesheet>|}
      example1_body tag
  in
  let ss_a = variant "a" and ss_b = variant "b" and ss_c = variant "c" in
  let compile ss = ignore (Xdb_core.Registry.compile reg ~view_name:"dept_emp" ~stylesheet:ss) in
  compile ss_a;
  compile ss_b;
  check ci "within capacity: no evictions" 0 (counter "cache_evictions");
  compile ss_a;
  (* touch A so B is the LRU victim *)
  compile ss_c;
  check ci "third entry evicts the LRU one" 1 (counter "cache_evictions");
  compile ss_a;
  check ci "A survived (recently used)" 2 (counter "cache_hits");
  compile ss_b;
  (* B was evicted: compiling it again is a miss, and inserting it pushes
     out the current LRU entry *)
  check ci "evicted entry misses" 4 (counter "cache_misses");
  check ci "reinsert evicts again" 2 (counter "cache_evictions")

let test_dbonerow_explain_analyze () =
  (* acceptance: the dbonerow plan shows a B-tree index probe with actual
     row count 1; dropping the index flips it to a full scan *)
  let n = 500 in
  let case = Xdb_xsltmark.Cases.dbonerow_for n in
  let dv = Xdb_xsltmark.Cases.dbview_for case n in
  let db = dv.Xdb_xsltmark.Data.db in
  let c = PL.compile db dv.Xdb_xsltmark.Data.view case.Xdb_xsltmark.Cases.stylesheet in
  check cb "SQL plan produced" true (c.PL.sql_plan <> None);
  let text = PL.explain_analyze db c in
  check cb "index scan in plan" true (contains "IndexScan rows" text);
  check cb "probe with one actual row" true (contains "actual=1" text);
  check cb "one btree probe" true (contains "probes=1" text);
  let f = PL.run_functional db c in
  check Alcotest.(list string) "indexed rewrite correct" f (PL.run_rewrite db c);
  (* drop the id index and recompile: full scan, no probes *)
  T.drop_index (Xdb_rel.Database.table db "rows") ~name:"rows_id_idx";
  let c2 = PL.compile db dv.Xdb_xsltmark.Data.view case.Xdb_xsltmark.Cases.stylesheet in
  check cb "still SQL-rewritable" true (c2.PL.sql_plan <> None);
  let text2 = PL.explain_analyze db c2 in
  check cb "no index scan after drop" false (contains "IndexScan rows" text2);
  check cb "full scan after drop" true (contains "SeqScan rows" text2);
  check cb "no probes after drop" false (contains "probes=" text2);
  (* the full-scan plan still matches the functional baseline *)
  check Alcotest.(list string) "full-scan rewrite correct" f (PL.run_rewrite db c2)

let test_nan_condition_differential () =
  (* regression: 0/0 = NaN reaching a CASE condition in the SQL path; the
     executor treated NaN as true while the functional baseline (XPath
     boolean semantics) treats it as false *)
  let nan_stylesheet =
    {|<?xml version="1.0"?>
<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
<xsl:template match="table">
<out><xsl:apply-templates select="row"/></out>
</xsl:template>
<xsl:template match="row">
<xsl:if test="(value - value) div (value - value)"><hit><xsl:value-of select="name"/></hit></xsl:if>
</xsl:template>
<xsl:template match="text()"/>
</xsl:stylesheet>|}
  in
  let dv = Xdb_xsltmark.Data.records_db 20 in
  let db = dv.Xdb_xsltmark.Data.db in
  let c = PL.compile db dv.Xdb_xsltmark.Data.view nan_stylesheet in
  check cb "SQL plan produced" true (c.PL.sql_plan <> None);
  let f = PL.run_functional db c in
  let r = PL.run_rewrite db c in
  check Alcotest.(list string) "functional = rewrite under NaN condition" f r;
  (* NaN is false: no <hit> elements anywhere *)
  check cb "no hits emitted" false (contains "<hit>" (String.concat "" f))

(* ------------------------------------------------------------------ *)
(* Domain-parallel execution (PR 5)                                    *)
(* ------------------------------------------------------------------ *)

module PAR = Xdb_core.Parallel
module EN = Xdb_core.Engine
module XE = Xdb_core.Xdb_error

(* CI sets XDB_TEST_JOBS to exercise the locked registry under more
   domains than the default *)
let test_jobs =
  match Option.bind (Sys.getenv_opt "XDB_TEST_JOBS") int_of_string_opt with
  | Some n when n > 1 -> n
  | _ -> 4

let test_chunk_ranges () =
  check (Alcotest.list (Alcotest.pair ci ci)) "empty when total 0" []
    (PAR.chunk_ranges ~total:0 ~chunks:4);
  check (Alcotest.list (Alcotest.pair ci ci)) "fewer chunks than total" [ (0, 1); (1, 2) ]
    (PAR.chunk_ranges ~total:2 ~chunks:5);
  List.iter
    (fun (total, chunks) ->
      let ranges = PAR.chunk_ranges ~total ~chunks in
      (* contiguous cover of [0, total) in order *)
      let expected_next = ref 0 in
      List.iter
        (fun (lo, hi) ->
          check ci "contiguous" !expected_next lo;
          check cb "non-empty range" true (hi > lo);
          expected_next := hi)
        ranges;
      check ci "covers total" total !expected_next;
      check cb "at most requested chunks" true (List.length ranges <= chunks);
      (* balanced to within one element *)
      let sizes = List.map (fun (lo, hi) -> hi - lo) ranges in
      let mn = List.fold_left min max_int sizes and mx = List.fold_left max 0 sizes in
      check cb "balanced" true (mx - mn <= 1))
    [ (1, 1); (7, 3); (100, 4); (3, 8); (1024, 7) ]

let test_pool_run () =
  PAR.with_pool ~jobs:test_jobs (fun pool ->
      check ci "pool size" test_jobs (PAR.jobs pool);
      (* deterministic index order regardless of executing domain *)
      let r = PAR.run pool (fun i -> i * i) 100 in
      Array.iteri (fun i v -> check ci "ordered result" (i * i) v) r;
      check (Alcotest.list cs) "map_list preserves order" [ "a!"; "b!"; "c!" ]
        (PAR.map_list pool (fun s -> s ^ "!") [ "a"; "b"; "c" ]);
      check cb "empty run" true (PAR.run pool (fun i -> i) 0 = [||]);
      (* the pool is reusable across runs *)
      check ci "second run" 10 (Array.length (PAR.run pool (fun i -> i) 10)));
  (* jobs = 1: no domains, still correct *)
  PAR.with_pool ~jobs:1 (fun pool ->
      check ci "degenerate pool" 1 (PAR.jobs pool);
      check cb "sequential run" true (PAR.run pool (fun i -> i + 1) 5 = [| 1; 2; 3; 4; 5 |]))

let test_pool_exception () =
  PAR.with_pool ~jobs:3 (fun pool ->
      (match PAR.run pool (fun i -> if i = 7 then failwith "boom" else i) 16 with
      | _ -> Alcotest.fail "expected the task exception to re-raise"
      | exception Failure m -> check cs "task exception propagates" "boom" m);
      (* the pool survives a failed batch *)
      check ci "usable after failure" 4 (Array.length (PAR.run pool (fun i -> i) 4)));
  let pool = PAR.create ~jobs:2 in
  PAR.shutdown pool;
  PAR.shutdown pool (* idempotent *);
  match PAR.run pool (fun i -> i) 3 with
  | _ -> Alcotest.fail "run on a shut-down pool must raise"
  | exception Invalid_argument _ -> ()

let db_case_names = [ "dbonerow"; "avts"; "chart"; "metric"; "total" ]

let case_env ?(docs = 1) name size =
  let case =
    match Xdb_xsltmark.Cases.find name with
    | Some c -> c
    | None -> Alcotest.fail ("unknown case " ^ name)
  in
  let case =
    if case.Xdb_xsltmark.Cases.name = "dbonerow" then Xdb_xsltmark.Cases.dbonerow_for size
    else case
  in
  let dv = Xdb_xsltmark.Cases.dbview_for ~docs case size in
  (dv.Xdb_xsltmark.Data.db, dv.Xdb_xsltmark.Data.view, case.Xdb_xsltmark.Cases.stylesheet)

(* qcheck differential: the parallel paths must be byte-identical to the
   sequential ones over every db-capable case — sharded into several
   documents so partitioning really happens — jobs 2 and 4, with and
   without ANALYZE statistics *)
let prop_parallel_equiv_sequential =
  QCheck.Test.make ~name:"parallel(jobs=2,4) = sequential over db cases" ~count:25
    QCheck.(
      quad (oneofl db_case_names) (oneofl [ 2; 4 ])
        (pair (int_range 3 40) (int_range 1 7))
        bool)
    (fun (name, jobs, (size, docs), analyze) ->
      let db, view, ss = case_env ~docs name size in
      if analyze then ignore (Xdb_rel.Analyze.all db);
      let c = PL.compile db view ss in
      let seq_r = PL.run_rewrite db c in
      let seq_f = PL.run_functional db c in
      PAR.with_pool ~jobs (fun pool ->
          PL.run_rewrite_parallel ~pool db c = seq_r
          && PL.run_functional_parallel ~pool db c = seq_f))

let test_exec_partition () =
  (* the Exec partition hook: per-range executions concatenate to the full
     run, and per-domain stats collectors merge to the sequential counts *)
  let db, view, ss = case_env ~docs:8 "dbonerow" 40 in
  let c = PL.compile db view ss in
  let plan = match c.PL.sql_plan with Some p -> p | None -> Alcotest.fail "no plan" in
  let table =
    match PL.partition_table c with Some t -> t | None -> Alcotest.fail "not partitionable"
  in
  let strings (layout, rows) =
    let s =
      match Xdb_rel.Layout.slot_opt layout "result" with
      | Some s -> s
      | None -> Alcotest.fail "no result column"
    in
    List.map (fun (r : V.t array) -> V.to_string r.(s)) rows
  in
  let full = strings (Xdb_rel.Exec.run_arrays db plan) in
  let total = T.size (Xdb_rel.Database.table db table) in
  check cb "several rows" true (total > 3);
  let mid = total / 2 in
  let part lo hi = strings (Xdb_rel.Exec.run_arrays db ~partition:(table, lo, hi) plan) in
  check (Alcotest.list cs) "ranges concatenate to the full run" full
    (part 0 mid @ part mid total);
  (* out-of-range windows clamp *)
  check (Alcotest.list cs) "clamped window" full (part 0 (total + 100));
  check (Alcotest.list cs) "empty window" [] (part total total);
  (* per-operator stats merge by id to the sequential signature *)
  let (_, seq_stats) = Xdb_rel.Exec.run_arrays_analyzed db plan in
  let (_, s1) = Xdb_rel.Exec.run_arrays_analyzed db ~partition:(table, 0, mid) plan in
  let (_, s2) = Xdb_rel.Exec.run_arrays_analyzed db ~partition:(table, mid, total) plan in
  let merged = Xdb_rel.Stats.create plan in
  Xdb_rel.Stats.merge_into ~into:merged s1;
  Xdb_rel.Stats.merge_into ~into:merged s2;
  check
    (Alcotest.list (Alcotest.pair cs ci))
    "merged stats = sequential signature"
    (Xdb_rel.Stats.rows_signature seq_stats)
    (Xdb_rel.Stats.rows_signature merged)

let test_metrics_merge () =
  let a = Xdb_core.Metrics.create () and b = Xdb_core.Metrics.create () in
  Xdb_core.Metrics.add_ms a "exec" 2.0;
  Xdb_core.Metrics.incr a "rows";
  Xdb_core.Metrics.add_ms b "exec" 3.0;
  Xdb_core.Metrics.add_ms b "merge" 1.0;
  Xdb_core.Metrics.incr ~by:4 b "rows";
  Xdb_core.Metrics.merge_into ~into:a b;
  check (Alcotest.list (Alcotest.pair cs (Alcotest.float 0.001))) "stages summed"
    [ ("exec", 5.0); ("merge", 1.0) ]
    (Xdb_core.Metrics.stages a);
  check (Alcotest.list (Alcotest.pair cs ci)) "counters summed" [ ("rows", 5) ]
    (Xdb_core.Metrics.counters a)

let test_registry_concurrent () =
  (* [test_jobs] domains hammer one capacity-bounded registry; afterwards
     the counters must be torn-state-free: every compile call is either a
     hit or a recompilation, and recompilations = misses + stale *)
  let db, view = setup_example1 () in
  let reg = Xdb_core.Registry.create ~capacity:3 db in
  Xdb_core.Registry.register_view reg view;
  let variant tag =
    Printf.sprintf
      {|<?xml version="1.0"?><xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">%s<!-- v%d --></xsl:stylesheet>|}
      example1_body tag
  in
  let variants = Array.init 6 variant in
  let per_domain = 40 in
  let outputs =
    PAR.with_pool ~jobs:test_jobs (fun pool ->
        PAR.run pool
          (fun d ->
            List.init per_domain (fun i ->
                let ss = variants.((d + (3 * i)) mod Array.length variants) in
                Xdb_core.Registry.run reg ~view_name:"dept_emp" ~stylesheet:ss))
          test_jobs)
  in
  (* all variants differ only in a comment: identical output everywhere *)
  let reference = List.hd outputs.(0) in
  Array.iter
    (List.iter (fun out -> check cb "consistent output under contention" true (out = reference)))
    outputs;
  let counter name = List.assoc name (Xdb_core.Registry.counters reg) in
  let calls = test_jobs * per_domain in
  check ci "every call was a hit or a recompilation" calls
    (counter "cache_hits" + counter "recompilations");
  check ci "recompilations = misses + stale" (counter "recompilations")
    (counter "cache_misses" + counter "cache_stale");
  check cb "bounded cache kept evicting" true (counter "cache_evictions" > 0);
  (* the cache still works sequentially afterwards (no torn LRU state) *)
  let after = Xdb_core.Registry.run reg ~view_name:"dept_emp" ~stylesheet:variants.(0) in
  check cb "usable after the hammering" true (after = reference)

let test_engine_facade () =
  let db, view = setup_example1 () in
  let engine = EN.create db in
  EN.register_view engine view;
  let t ?(options = EN.default_run_options) () =
    EN.transform ~options engine ~view_name:"dept_emp" ~stylesheet:example1_stylesheet
  in
  let base = (t ()).EN.output in
  check cb "engine produces documents" true (base <> []);
  check cb "no metrics unless asked" true ((t ()).EN.metrics = None);
  (* every run_options combination agrees byte-for-byte — with the result
     cache bypassed, so each strategy genuinely recomputes *)
  let nc = { EN.default_run_options with EN.result_cache = false } in
  List.iter
    (fun options ->
      let r = t ~options () in
      check (Alcotest.list cs) "options-invariant output" base r.EN.output;
      check cb "metrics iff collect_metrics" (options.EN.collect_metrics)
        (r.EN.metrics <> None))
    [
      { nc with EN.streaming = false };
      { nc with EN.interpreted = true };
      { nc with EN.jobs = 3 };
      { nc with EN.jobs = 3; interpreted = true };
      {
        EN.streaming = false;
        jobs = 2;
        collect_metrics = true;
        interpreted = false;
        result_cache = false;
        indent = false;
      };
    ];
  (* publish through the facade: DOM, streamed and parallel agree *)
  let pub ?(options = EN.default_run_options) () =
    (EN.publish ~options engine ~view_name:"dept_emp").EN.output
  in
  let dom = pub ~options:{ nc with EN.streaming = false } () in
  check cb "published documents" true (dom <> []);
  check (Alcotest.list cs) "streamed publish identical" dom
    (pub ~options:{ nc with EN.streaming = true } ());
  check (Alcotest.list cs) "parallel publish identical" dom
    (pub ~options:{ nc with EN.streaming = true; jobs = 4 } ());
  (* explain / explain_analyze work and agree on actual row counts *)
  check cb "explain has a plan section" true
    (contains "SQL/XML plan" (EN.explain engine ~view_name:"dept_emp" ~stylesheet:example1_stylesheet));
  let ea options =
    EN.explain_analyze ~options engine ~view_name:"dept_emp" ~stylesheet:example1_stylesheet
  in
  check cb "explain_analyze reports actuals" true
    (contains "actual=" (ea EN.default_run_options));
  check cb "parallel explain_analyze reports actuals" true
    (contains "actual=" (ea { EN.default_run_options with EN.jobs = 3 }));
  check ci "cache served repeated prepares"
    (List.assoc "cache_misses" (EN.registry_counters engine))
    1;
  EN.shutdown engine;
  EN.shutdown engine (* idempotent *);
  (* the engine stays usable after shutdown (fresh pool on demand) *)
  check (Alcotest.list cs) "usable after shutdown" base
    (t ~options:{ EN.default_run_options with EN.jobs = 2 } ()).EN.output

(* ------------------------------------------------------------------ *)
(* Result cache (PR 10)                                                *)
(* ------------------------------------------------------------------ *)

module RC = Xdb_core.Result_cache

let test_result_cache_unit () =
  let db = Xdb_rel.Database.create () in
  ignore (Xdb_rel.Database.create_table db "t" [ { Xdb_rel.Table.col_name = "a"; col_type = Xdb_rel.Value.Tint } ]);
  let rc = RC.create ~capacity:2 db in
  check cb "miss on empty" true (RC.find rc ~key:"k1" = None);
  RC.store rc ~view:"v" ~key:"k1" ~deps:[ "t" ] [ "out1" ];
  check cb "hit while fresh" true (RC.find rc ~key:"k1" = Some [ "out1" ]);
  (* a write to the dependency table invalidates on the next lookup *)
  Xdb_rel.Database.bump_data_version db "t";
  check cb "stale after version bump" true (RC.find rc ~key:"k1" = None);
  check ci "entry dropped" 0 (RC.size rc);
  (* re-stored entries snapshot the new version *)
  RC.store rc ~view:"v" ~key:"k1" ~deps:[ "t" ] [ "out2" ];
  check cb "fresh again" true (RC.find rc ~key:"k1" = Some [ "out2" ]);
  (* view-level invalidation (schema evolution: no version movement) *)
  RC.invalidate_view rc "v";
  check cb "gone after invalidate_view" true (RC.find rc ~key:"k1" = None);
  (* LRU bounding: capacity 2, third insert evicts the least recent *)
  RC.store rc ~view:"v" ~key:"a" ~deps:[ "t" ] [ "A" ];
  RC.store rc ~view:"v" ~key:"b" ~deps:[ "t" ] [ "B" ];
  ignore (RC.find rc ~key:"a");
  (* touch a so b is the LRU victim *)
  RC.store rc ~view:"v" ~key:"c" ~deps:[ "t" ] [ "C" ];
  check ci "bounded" 2 (RC.size rc);
  check cb "victim was the LRU entry" true (RC.find rc ~key:"b" = None);
  check cb "recent survivor" true (RC.find rc ~key:"a" = Some [ "A" ]);
  let ctr name = List.assoc name (RC.counters rc) in
  check cb "eviction counted" true (ctr "result_cache_evictions" >= 1);
  check cb "hits counted" true (ctr "result_cache_hits" >= 3);
  check cb "invalidations counted" true (ctr "result_cache_invalidations" >= 2)

let test_engine_result_cache () =
  let db, view = setup_example1 () in
  let engine = EN.create db in
  EN.register_view engine view;
  let ctr name = List.assoc name (EN.result_cache_counters engine) in
  let with_metrics = { EN.default_run_options with EN.collect_metrics = true } in
  let t () =
    EN.transform ~options:with_metrics engine ~view_name:"dept_emp"
      ~stylesheet:example1_stylesheet
  in
  let hit_counter r =
    match r.EN.metrics with
    | Some m -> List.assoc "result_cache_hit" (Xdb_core.Metrics.counters m)
    | None -> Alcotest.fail "metrics requested"
  in
  let r1 = t () in
  check ci "first run is a miss" 0 (hit_counter r1);
  let r2 = t () in
  check ci "second run served from cache" 1 (hit_counter r2);
  check (Alcotest.list cs) "cached bytes identical" r1.EN.output r2.EN.output;
  check cb "hits counted" true (ctr "result_cache_hits" >= 1);
  (* DML through execute invalidates: next run recomputes new output *)
  ignore (EN.execute engine "UPDATE emp SET sal = 9999 WHERE ename = 'CLARK'");
  let r3 = t () in
  check ci "post-write run recomputed" 0 (hit_counter r3);
  check cb "post-write output differs" true (r2.EN.output <> r3.EN.output);
  check cb "invalidation counted" true (ctr "result_cache_invalidations" >= 1);
  (* the recompute is cached again *)
  check ci "re-cached" 1 (hit_counter (t ()));
  (* publish caches per (view, indent) *)
  let p indent =
    EN.publish
      ~options:{ with_metrics with EN.indent = indent }
      engine ~view_name:"dept_emp"
  in
  check ci "publish first miss" 0 (hit_counter (p false));
  check ci "publish then hit" 1 (hit_counter (p false));
  check ci "indent is a different key" 0 (hit_counter (p true));
  check cb "indent changes bytes" true ((p true).EN.output <> (p false).EN.output);
  (* re-registering the view (schema evolution) drops its entries even
     though no data version moved *)
  EN.register_view engine view;
  check ci "invalidated by re-registration" 0 (hit_counter (t ()));
  (* writes to unrelated tables leave entries valid *)
  ignore
    (Xdb_rel.Database.create_table db "unrelated"
       [ { Xdb_rel.Table.col_name = "x"; col_type = Xdb_rel.Value.Tint } ]);
  ignore (EN.execute engine "INSERT INTO unrelated VALUES (1)");
  check ci "unrelated write keeps cache entries" 1 (hit_counter (t ()));
  EN.shutdown engine

let test_prepared_statements () =
  let db, view = setup_example1 () in
  let engine = EN.create db in
  EN.register_view engine view;
  let stmt = EN.prepare engine ~view_name:"dept_emp" ~stylesheet:example1_stylesheet in
  check cs "stmt remembers its view" "dept_emp" (EN.stmt_view stmt);
  let nc = { EN.default_run_options with EN.result_cache = false } in
  let r1 = EN.transform_stmt ~options:nc engine stmt in
  let misses0 = List.assoc "cache_misses" (EN.registry_counters engine) in
  (* re-running the statement does not even consult the registry *)
  let hits0 = List.assoc "cache_hits" (EN.registry_counters engine) in
  let r2 = EN.transform_stmt ~options:nc engine stmt in
  check (Alcotest.list cs) "stmt reruns agree" r1.EN.output r2.EN.output;
  check ci "no registry lookup on the hot path" hits0
    (List.assoc "cache_hits" (EN.registry_counters engine));
  check ci "no recompile either" misses0
    (List.assoc "cache_misses" (EN.registry_counters engine));
  (* ANALYZE moves the stats version: the stmt revalidates through the
     registry (stale entry, recompiled) and still answers identically *)
  ignore (EN.execute engine "ANALYZE");
  let r3 = EN.transform_stmt ~options:nc engine stmt in
  check (Alcotest.list cs) "post-ANALYZE stmt agrees" r1.EN.output r3.EN.output;
  check cb "revalidation recompiled" true
    (List.assoc "cache_stale" (EN.registry_counters engine) >= 1);
  (* explain over the same stmt *)
  check cb "explain_stmt has a plan" true (contains "SQL/XML plan" (EN.explain_stmt engine stmt));
  check cb "explain_analyze_stmt reports actuals" true
    (contains "actual=" (EN.explain_analyze_stmt engine stmt));
  (* string verbs are wrappers over the same machinery *)
  let direct =
    EN.transform ~options:nc engine ~view_name:"dept_emp" ~stylesheet:example1_stylesheet
  in
  check (Alcotest.list cs) "string verb ≡ stmt verb" r1.EN.output direct.EN.output;
  EN.shutdown engine

let test_run_source_verb () =
  let db, view = setup_example1 () in
  let engine = EN.create db in
  EN.register_view engine view;
  let via_run =
    EN.run engine (EN.View "dept_emp") ~stylesheet:example1_stylesheet
  in
  let via_transform = EN.transform engine ~view_name:"dept_emp" ~stylesheet:example1_stylesheet in
  check (Alcotest.list cs) "View source ≡ transform" via_transform.EN.output via_run.EN.output;
  EN.shutdown engine;
  (* shredded source *)
  let engine2 = EN.create (Xdb_rel.Database.create ()) in
  let doc = Xdb_xsltmark.Data.records_doc 10 in
  let id = EN.store_shredded engine2 doc in
  let ss =
    {|<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
<xsl:template match="@*|node()"><xsl:copy><xsl:apply-templates select="@*|node()"/></xsl:copy></xsl:template>
</xsl:stylesheet>|}
  in
  let all = EN.run engine2 (EN.Shredded None) ~stylesheet:ss in
  let one = EN.run engine2 (EN.Shredded (Some [ id ])) ~stylesheet:ss in
  check (Alcotest.list cs) "Shredded None = all docs" all.EN.output one.EN.output;
  let wrapper = EN.transform_shredded engine2 ~stylesheet:ss in
  check (Alcotest.list cs) "wrapper ≡ run" all.EN.output wrapper.EN.output;
  (* storing another document bumps the node tables' versions, so the
     cached all-documents result is invalidated, not served stale *)
  ignore (EN.store_shredded engine2 (Xdb_xsltmark.Data.records_doc 5));
  let all2 = EN.run engine2 (EN.Shredded None) ~stylesheet:ss in
  check ci "new document visible through the cache" 2 (List.length all2.EN.output);
  EN.shutdown engine2

let identity_stylesheet =
  {|<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
<xsl:template match="@*|node()"><xsl:copy><xsl:apply-templates select="@*|node()"/></xsl:copy></xsl:template>
</xsl:stylesheet>|}

let test_engine_shredded () =
  let engine = EN.create (Xdb_rel.Database.create ()) in
  let docs = List.init 3 (fun i -> Xdb_xsltmark.Data.records_doc (10 + (5 * i))) in
  let ids = List.map (EN.store_shredded engine) docs in
  check (Alcotest.list ci) "docids are sequential" [ 1; 2; 3 ] ids;
  let dc = PL.compile_for_document identity_stylesheet ~example_doc:(List.hd docs) in
  let direct = List.map (PL.transform_functional dc) docs in
  let r = EN.transform_shredded engine ~stylesheet:identity_stylesheet in
  check (Alcotest.list cs) "shredded transform ≡ direct VM transform" direct r.EN.output;
  (* sequential path: the relational VM handles every doc, batched *)
  (* metric-asserting reruns must recompute, not serve the cached bytes *)
  let rm =
    EN.transform_shredded
      ~options:{ EN.default_run_options with EN.collect_metrics = true; result_cache = false }
      engine ~stylesheet:identity_stylesheet
  in
  check (Alcotest.list cs) "metrics run identical" direct rm.EN.output;
  (match rm.EN.metrics with
  | None -> Alcotest.fail "metrics requested but absent"
  | Some m ->
      let ctr name =
        match List.assoc_opt name (Xdb_core.Metrics.counters m) with
        | Some v -> v
        | None -> 0
      in
      check cb "shred_vm stage timed" true
        (List.mem_assoc "shred_vm" (Xdb_core.Metrics.stages m));
      check ci "every doc ran relationally" 3 (ctr "shred_vm_docs");
      check ci "no per-doc DOM fallback" 0 (ctr "shred_vm_fallback_docs");
      check cb "steps evaluated batched" true (ctr "shred_batch_steps" > 0);
      check ci "no per-context DOM fallback" 0 (ctr "shred_dom_fallbacks"));
  let rp =
    EN.transform_shredded
      ~options:
        { EN.default_run_options with EN.jobs = 3; collect_metrics = true; result_cache = false }
      engine ~stylesheet:identity_stylesheet
  in
  check (Alcotest.list cs) "parallel shredded transform identical" direct rp.EN.output;
  (match rp.EN.metrics with
  | None -> Alcotest.fail "metrics requested but absent"
  | Some m ->
      check cb "reconstruct stage timed" true
        (List.mem_assoc "reconstruct" (Xdb_core.Metrics.stages m)));
  let r2 = EN.transform_shredded ~docids:[ 2 ] engine ~stylesheet:identity_stylesheet in
  check (Alcotest.list cs) "docids narrow the run" [ List.nth direct 1 ] r2.EN.output;
  (* relational XPath over the store answers like the DOM interpreter *)
  let q = "//row[2]/id" in
  let dom =
    Xdb_rel.Shred.serialize_dom
      (Xdb_xpath.Eval.select (Xdb_xpath.Eval.make_context (List.hd docs)) q)
  in
  check (Alcotest.list cs) "query_shredded ≡ DOM" dom (EN.query_shredded engine ~docid:1 q);
  (* an empty store transforms to nothing rather than failing *)
  let empty = EN.create (Xdb_rel.Database.create ()) in
  check (Alcotest.list cs) "empty store" []
    (EN.transform_shredded empty ~stylesheet:identity_stylesheet).EN.output;
  EN.shutdown empty;
  EN.shutdown engine

(* every XSLTMark case through the shredded path: byte-identical to the
   functional VM over the original document, with the relational VM
   carrying most of the suite (DOM fallbacks counted and bounded) *)
let test_shredded_xsltmark_parity () =
  let module MK = Xdb_xsltmark.Cases in
  let engine = EN.create (Xdb_rel.Database.create ()) in
  let size = 40 in
  let total = ref 0 and fallbacks = ref 0 in
  List.iter
    (fun (c : MK.case) ->
      let c = if c.MK.name = "dbonerow" then MK.dbonerow_for size else c in
      let doc = MK.doc_for c size in
      let docid = EN.store_shredded engine doc in
      let dc = PL.compile_for_document c.MK.stylesheet ~example_doc:doc in
      let expected = PL.transform_functional dc doc in
      let r =
        EN.transform_shredded
          ~options:{ EN.default_run_options with EN.collect_metrics = true }
          ~docids:[ docid ] engine ~stylesheet:c.MK.stylesheet
      in
      check (Alcotest.list cs) ("shredded ≡ DOM: " ^ c.MK.name) [ expected ] r.EN.output;
      incr total;
      match r.EN.metrics with
      | None -> Alcotest.fail "metrics requested but absent"
      | Some m ->
          let fb =
            match List.assoc_opt "shred_vm_fallback_docs" (Xdb_core.Metrics.counters m) with
            | Some v -> v
            | None -> 0
          in
          fallbacks := !fallbacks + fb)
    MK.all;
  check ci "whole suite stored and run" 40 !total;
  (* the relational subset must carry the bulk of the suite; a growing
     fallback count means the shredded VM lost coverage *)
  check cb
    (Printf.sprintf "DOM fallbacks bounded: %d of %d" !fallbacks !total)
    true
    (!fallbacks * 4 <= !total);
  EN.shutdown engine

let test_xdb_error () =
  let db, view = setup_example1 () in
  let engine = EN.create db in
  EN.register_view engine view;
  (* unknown view: a Compile error, rendered without a backtrace *)
  (match EN.prepare engine ~view_name:"nope" ~stylesheet:example1_stylesheet with
  | _ -> Alcotest.fail "unknown view must raise"
  | exception XE.Error (XE.Compile m) ->
      check cb "names the view" true (contains "nope" m);
      check cb "stable rendering" true
        (contains "compile error:" (XE.to_string (XE.Compile m)))
  | exception e -> Alcotest.fail ("expected Xdb_error.Error, got " ^ Printexc.to_string e));
  (* unparsable stylesheet: a Parse error naming the language *)
  (match EN.prepare engine ~view_name:"dept_emp" ~stylesheet:"<xsl:not-a-stylesheet" with
  | _ -> Alcotest.fail "bad stylesheet must raise"
  | exception XE.Error e ->
      check cb "classified as parse" true
        (match e with XE.Parse _ -> true | _ -> false));
  (* of_exn classifies library exceptions; foreign ones pass through *)
  check cb "exec classified" true
    (XE.of_exn (Xdb_rel.Exec.Exec_error "x") = Some (XE.Exec "x"));
  check cb "foreign exception unclassified" true (XE.of_exn Exit = None);
  (match XE.wrap ~stage:"exec" (fun () -> raise Exit) with
  | _ -> Alcotest.fail "wrap must re-raise"
  | exception Exit -> ());
  (match XE.wrap ~stage:"publish" (fun () -> failwith "f") with
  | _ -> Alcotest.fail "wrap must classify Failure"
  | exception XE.Error (XE.Publish m) -> check cs "failure attributed to stage" "f" m
  | exception e -> Alcotest.fail ("expected Publish error, got " ^ Printexc.to_string e));
  EN.shutdown engine

(* ------------------------------------------------------------------ *)
(* Concurrent serving (PR 7)                                           *)
(* ------------------------------------------------------------------ *)

module SV = Xdb_core.Server

(* poll a server-state condition with a deadline, so a scheduling
   regression fails the test instead of hanging the suite *)
let wait_until ?(timeout = 10.0) what cond =
  let deadline = Unix.gettimeofday () +. timeout in
  while not (cond ()) do
    if Unix.gettimeofday () > deadline then Alcotest.fail ("timed out waiting for " ^ what);
    Unix.sleepf 0.002
  done

(* a Records-shape engine whose one view serves three different
   stylesheets — a mixed workload without multiple databases *)
let serving_env size =
  let dv = Xdb_xsltmark.Data.records_db size in
  let engine = EN.create dv.Xdb_xsltmark.Data.db in
  EN.register_view engine dv.Xdb_xsltmark.Data.view;
  let view_name = dv.Xdb_xsltmark.Data.view.Xdb_rel.Publish.view_name in
  let cases =
    List.map
      (fun name ->
        let c =
          if name = "dbonerow" then Xdb_xsltmark.Cases.dbonerow_for size
          else Option.get (Xdb_xsltmark.Cases.find name)
        in
        (name, c.Xdb_xsltmark.Cases.stylesheet))
      [ "dbonerow"; "avts"; "metric" ]
  in
  (engine, view_name, cases)

let test_server_sessions () =
  let engine, view_name, cases = serving_env 40 in
  let server = SV.create ~max_in_flight:2 engine in
  check cb "server exposes its engine" true (SV.engine server == engine);
  let sess = SV.open_session ~name:"alice" server in
  check cs "session name" "alice" (SV.session_name sess);
  (* a session's requests are the engine's requests, admitted *)
  List.iter
    (fun (_, ss) ->
      check (Alcotest.list cs) "server transform ≡ engine transform"
        (EN.transform engine ~view_name ~stylesheet:ss).EN.output
        (SV.transform sess ~view_name ~stylesheet:ss).EN.output)
    cases;
  (* per-session default options apply to every call… *)
  let mopts = { EN.default_run_options with EN.collect_metrics = true } in
  let msess = SV.open_session ~options:mopts server in
  let avts = List.assoc "avts" cases in
  check cb "session options apply" true
    ((SV.transform msess ~view_name ~stylesheet:avts).EN.metrics <> None);
  (* …and a per-call override beats them *)
  check cb "per-call override wins" true
    ((SV.transform ~options:EN.default_run_options msess ~view_name ~stylesheet:avts)
       .EN.metrics
    = None);
  (* publish / explain ride the same admission path *)
  check cb "publish admitted" true ((SV.publish sess ~view_name).EN.output <> []);
  check cb "explain admitted" true
    (contains "SQL/XML plan"
       (SV.explain sess ~view_name ~stylesheet:(List.assoc "metric" cases)));
  let snap = SV.snapshot server in
  check ci "server accepted every request" 7 snap.SV.accepted;
  check ci "…and completed them" 7 snap.SV.completed;
  check ci "none rejected" 0 snap.SV.rejected;
  check ci "alice's share" 5 (SV.session_snapshot sess).SV.completed;
  check ci "latency samples recorded" 7 snap.SV.service.SV.count;
  check cb "service times are positive" true (snap.SV.service.SV.p50_ms >= 0.0);
  (* closed sessions refuse further work; in flight nothing to drain *)
  SV.close_session sess;
  SV.close_session sess (* idempotent *);
  (match SV.submit sess (fun _ -> ()) with
  | () -> Alcotest.fail "closed session must refuse"
  | exception XE.Error (XE.Exec m) -> check cb "names the session" true (contains "alice" m));
  (* shutdown drains and rejects, but leaves the engine alone *)
  SV.shutdown server;
  SV.shutdown server (* idempotent *);
  (match SV.submit msess (fun _ -> ()) with
  | () -> Alcotest.fail "shut-down server must refuse"
  | exception XE.Error (XE.Overloaded _) -> ());
  (match SV.open_session server with
  | _ -> Alcotest.fail "shut-down server must refuse sessions"
  | exception XE.Error (XE.Exec _) -> ());
  check cb "engine survives server shutdown" true
    ((EN.transform engine ~view_name ~stylesheet:avts).EN.output <> []);
  EN.shutdown engine

let test_server_concurrent () =
  let engine, view_name, cases = serving_env 60 in
  (* reference outputs (also warms the plan cache) *)
  let reference =
    List.map
      (fun (n, ss) -> (n, (EN.transform engine ~view_name ~stylesheet:ss).EN.output))
      cases
  in
  let server = SV.create ~max_in_flight:2 ~max_queue:256 engine in
  let iters = 8 in
  let run_client i () =
    let sess = SV.open_session ~name:(Printf.sprintf "c%d" i) server in
    let ok = ref 0 in
    for _ = 1 to iters do
      List.iter
        (fun (name, ss) ->
          let r = SV.transform sess ~view_name ~stylesheet:ss in
          if r.EN.output = List.assoc name reference then incr ok)
        cases
    done;
    SV.close_session sess;
    !ok
  in
  let oks =
    List.map Domain.join (List.init test_jobs (fun i -> Domain.spawn (run_client i)))
  in
  let total = test_jobs * iters * List.length cases in
  check ci "every response byte-identical" total (List.fold_left ( + ) 0 oks);
  let snap = SV.snapshot server in
  check ci "all accepted" total snap.SV.accepted;
  check ci "all completed" total snap.SV.completed;
  check ci "none failed" 0 snap.SV.failed;
  check ci "none rejected" 0 snap.SV.rejected;
  check ci "nothing left in flight" 0 snap.SV.in_flight;
  check ci "queue drained" 0 snap.SV.queue_depth;
  (* the rendered metrics account for every request *)
  let counters = Xdb_core.Metrics.counters (SV.metrics server) in
  check ci "metrics accepted counter" total (List.assoc "accepted" counters);
  let bucket_sum prefix =
    List.fold_left
      (fun acc (k, v) ->
        if String.length k > String.length prefix
           && String.sub k 0 (String.length prefix) = prefix
        then acc + v
        else acc)
      0 counters
  in
  check ci "service histogram covers every request" total (bucket_sum "service_");
  check ci "queue-wait histogram covers every request" total (bucket_sum "queue_wait_");
  check ci "per-session counters sum to the server's" total
    (List.fold_left
       (fun acc i -> acc + List.assoc (Printf.sprintf "session.c%d.completed" i) counters)
       0
       (List.init test_jobs Fun.id));
  SV.shutdown server;
  EN.shutdown engine

(* a request parked on [blocker] occupies its slot for as long as the
   test wants; [release] is idempotent so failures still unblock it *)
let with_blocker f =
  let blocker = Mutex.create () in
  Mutex.lock blocker;
  let held = ref true in
  let release () =
    if !held then (
      held := false;
      Mutex.unlock blocker)
  in
  Fun.protect ~finally:release (fun () ->
      f
        (fun _ ->
          Mutex.lock blocker;
          Mutex.unlock blocker)
        release)

let test_server_overload () =
  let engine, view_name, cases = serving_env 20 in
  let _, ss = List.hd cases in
  let server = SV.create ~max_in_flight:1 ~max_queue:1 engine in
  let sess = SV.open_session ~name:"hot" server in
  with_blocker (fun park release ->
      let d1 = Domain.spawn (fun () -> SV.submit sess park) in
      wait_until "the first request to start" (fun () ->
          (SV.snapshot server).SV.in_flight = 1);
      let d2 = Domain.spawn (fun () -> SV.submit sess (fun _ -> ())) in
      wait_until "the queue to fill" (fun () -> (SV.snapshot server).SV.queue_depth = 1);
      (* past the bound: refused immediately, not blocked *)
      (match SV.transform sess ~view_name ~stylesheet:ss with
      | _ -> Alcotest.fail "expected Overloaded"
      | exception XE.Error (XE.Overloaded m) ->
          check cb "stable rendering" true
            (contains "overloaded:" (XE.to_string (XE.Overloaded m))));
      release ();
      Domain.join d1;
      Domain.join d2);
  let snap = SV.snapshot server in
  check ci "two executed" 2 snap.SV.completed;
  check ci "one waited" 1 snap.SV.queued;
  check ci "one rejected" 1 snap.SV.rejected;
  check ci "attempts all accounted for" 3 (snap.SV.accepted + snap.SV.rejected);
  check ci "queue-wait recorded per accepted request" 2 snap.SV.queue_wait.SV.count;
  SV.shutdown server;
  EN.shutdown engine

let test_server_fairness () =
  let engine, _, _ = serving_env 20 in
  let server = SV.create ~max_in_flight:2 ~per_session_cap:1 engine in
  let hot = SV.open_session ~name:"hot" server in
  let other = SV.open_session ~name:"other" server in
  with_blocker (fun park release ->
      let d1 = Domain.spawn (fun () -> SV.submit hot park) in
      wait_until "hot's request to start" (fun () -> (SV.snapshot server).SV.in_flight = 1);
      (* hot's second request: a global slot is free, but the session is
         at its cap, so it must wait *)
      let d2 = Domain.spawn (fun () -> SV.submit hot (fun _ -> ())) in
      wait_until "the cap-blocked waiter" (fun () ->
          (SV.snapshot server).SV.queue_depth = 1);
      check ci "global slot still free" 1 (SV.snapshot server).SV.in_flight;
      (* the other session overtakes the earlier cap-blocked waiter *)
      let d3 = Domain.spawn (fun () -> SV.submit other (fun _ -> ())) in
      wait_until "the other session to overtake" (fun () ->
          (SV.session_snapshot other).SV.completed = 1);
      check ci "hot's waiter is still queued" 1 (SV.snapshot server).SV.queue_depth;
      check ci "hot has completed nothing" 0 (SV.session_snapshot hot).SV.completed;
      release ();
      List.iter Domain.join [ d1; d2; d3 ]);
  check ci "everything drained" 3 (SV.snapshot server).SV.completed;
  SV.shutdown server;
  EN.shutdown engine

let test_engine_pool_race () =
  (* regression: a parallel transform racing another caller's [jobs]
     resize must not have the shared pool shut down underneath it *)
  let db, view = setup_example1 () in
  let engine = EN.create db in
  EN.register_view engine view;
  let expect =
    (EN.transform engine ~view_name:"dept_emp" ~stylesheet:example1_stylesheet).EN.output
  in
  let iters = 6 in
  let run_client i () =
    List.init iters (fun k ->
        (* alternate jobs 2 / 3: every step asks for a resize *)
        let jobs = 2 + ((i + k) mod 2) in
        (EN.transform
           ~options:{ EN.default_run_options with EN.jobs }
           engine ~view_name:"dept_emp" ~stylesheet:example1_stylesheet)
          .EN.output)
  in
  let outs =
    List.concat_map Domain.join
      (List.init test_jobs (fun i -> Domain.spawn (run_client i)))
  in
  check ci "every racing run finished" (test_jobs * iters) (List.length outs);
  List.iter (fun o -> check (Alcotest.list cs) "identical under pool races" expect o) outs;
  EN.shutdown engine

let test_server_mixed_smoke () =
  (* four domains hammer transform / publish / explain through sessions
     on one engine; afterwards the registry counters must be
     torn-state-free, exactly as in the single-registry hammering test *)
  let engine, view_name, cases = serving_env 30 in
  let reference =
    List.map
      (fun (n, ss) -> (n, (EN.transform engine ~view_name ~stylesheet:ss).EN.output))
      cases
  in
  let pub_ref = (EN.publish engine ~view_name).EN.output in
  let server = SV.create ~max_in_flight:4 ~max_queue:256 engine in
  let domains = 4 and iters = 5 in
  let run_client i () =
    let sess = SV.open_session ~name:(Printf.sprintf "w%d" i) server in
    let ok = ref 0 in
    for k = 1 to iters do
      List.iter
        (fun (name, ss) ->
          if (SV.transform sess ~view_name ~stylesheet:ss).EN.output
             = List.assoc name reference
          then incr ok)
        cases;
      if (SV.publish sess ~view_name).EN.output = pub_ref then incr ok;
      if contains "SQL/XML plan"
           (SV.explain sess ~view_name ~stylesheet:(snd (List.nth cases (k mod 3))))
      then incr ok
    done;
    SV.close_session sess;
    !ok
  in
  let oks =
    List.map Domain.join (List.init domains (fun i -> Domain.spawn (run_client i)))
  in
  check ci "every mixed call checked out"
    (domains * iters * (List.length cases + 2))
    (List.fold_left ( + ) 0 oks);
  (* prepares = warmup transforms + per-iteration transforms and explains *)
  let counter n = List.assoc n (EN.registry_counters engine) in
  let prepares = List.length cases + (domains * iters * (List.length cases + 1)) in
  check ci "every prepare a hit or a recompilation" prepares
    (counter "cache_hits" + counter "recompilations");
  check ci "recompilations = misses + stale" (counter "recompilations")
    (counter "cache_misses" + counter "cache_stale");
  SV.shutdown server;
  EN.shutdown engine

(* property: under random admission bounds and client mixes, a batch of
   concurrent sessions never deadlocks, never loses a request, and every
   response stays byte-identical to the sequential reference *)
let prop_server_accounting =
  QCheck.Test.make ~name:"server accounting under random bounds" ~count:12
    QCheck.(
      quad (int_range 1 3) (int_range 0 4) (int_range 1 3) (int_range 1 4))
    (fun (max_in_flight, max_queue, per_session_cap, clients) ->
      let engine, view_name, cases = serving_env 12 in
      let reference =
        List.map
          (fun (n, ss) -> (n, (EN.transform engine ~view_name ~stylesheet:ss).EN.output))
          cases
      in
      let server =
        SV.create ~max_in_flight ~max_queue ~per_session_cap:(min per_session_cap max_in_flight)
          engine
      in
      let run_client i () =
        let sess = SV.open_session ~name:(Printf.sprintf "p%d" i) server in
        let ok = ref 0 and rejected = ref 0 in
        List.iter
          (fun (name, ss) ->
            match SV.transform sess ~view_name ~stylesheet:ss with
            | r -> if r.EN.output = List.assoc name reference then incr ok
            | exception XE.Error (XE.Overloaded _) -> incr rejected)
          cases;
        SV.close_session sess;
        (!ok, !rejected)
      in
      let per_client =
        if clients = 1 then [ run_client 0 () ]
        else List.map Domain.join (List.init clients (fun i -> Domain.spawn (run_client i)))
      in
      let ok = List.fold_left (fun a (o, _) -> a + o) 0 per_client in
      let rejected = List.fold_left (fun a (_, r) -> a + r) 0 per_client in
      let snap = SV.snapshot server in
      SV.shutdown server;
      EN.shutdown engine;
      ok + rejected = clients * List.length cases
      && snap.SV.completed = ok
      && snap.SV.rejected = rejected
      && snap.SV.failed = 0
      && snap.SV.in_flight = 0
      && snap.SV.queue_depth = 0)

(* property: pipeline equivalence across random dept/emp instances *)
let prop_pipeline_equivalence =
  QCheck.Test.make ~name:"functional = rewrite on random instances" ~count:20
    QCheck.(pair (int_range 1 4) (int_range 0 6))
    (fun (n_depts, emps_per) ->
      let dv = Xdb_xsltmark.Data.dept_emp_db n_depts (max 1 emps_per) in
      let c =
        PL.compile dv.Xdb_xsltmark.Data.db dv.Xdb_xsltmark.Data.view example1_stylesheet
      in
      PL.run_functional dv.Xdb_xsltmark.Data.db c = PL.run_rewrite dv.Xdb_xsltmark.Data.db c)

let () =
  Alcotest.run "core"
    [
      ( "trace",
        [
          Alcotest.test_case "execution graph" `Quick test_execution_graph;
          Alcotest.test_case "recursion detection" `Quick test_recursion_detected;
        ] );
      ( "translation",
        [
          Alcotest.test_case "inline mode" `Quick test_inline_mode_selected;
          Alcotest.test_case "builtin compaction (§3.6)" `Quick test_builtin_compaction;
          Alcotest.test_case "recursive schema (§7.2)" `Quick test_recursive_schema_forces_functions;
          Alcotest.test_case "dead templates (§3.7)" `Quick test_dead_template_removal;
          Alcotest.test_case "straightforward [9]" `Quick test_straightforward_translation;
          Alcotest.test_case "partial inline (§7.2 extension)" `Quick test_partial_inline_extension;
          Alcotest.test_case "key() expansion" `Quick test_key_translation;
          Alcotest.test_case "position()/last() translation" `Quick test_position_last_translation;
          Alcotest.test_case "strip-space through the pipeline" `Quick test_strip_space_pipeline;
          Alcotest.test_case "backward axis removal (§3.5)" `Quick test_backward_axis_removal;
          Alcotest.test_case "model groups (§3.4)" `Quick test_model_group_variants;
          Alcotest.test_case "cardinality LET/FOR (§3.4)" `Quick test_cardinality_let_vs_for;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "Example 1 end-to-end" `Quick test_example1_pipeline;
          Alcotest.test_case "Example 2 combined optimisation" `Quick test_example2_combined;
          Alcotest.test_case "explain" `Quick test_explain_sections;
          Alcotest.test_case "schema evolution registry (§7.3)" `Quick test_schema_evolution_registry;
          Alcotest.test_case "evolution vs catalog duplicates" `Quick
            test_evolution_vs_catalog_duplicates;
          Alcotest.test_case "registry cache counters" `Quick test_registry_counters;
          Alcotest.test_case "registry stats invalidation (ANALYZE)" `Quick
            test_registry_stats_invalidation;
          Alcotest.test_case "registry LRU eviction" `Quick test_registry_lru_eviction;
          Alcotest.test_case "dbonerow EXPLAIN ANALYZE" `Quick test_dbonerow_explain_analyze;
          Alcotest.test_case "NaN condition differential" `Quick test_nan_condition_differential;
          QCheck_alcotest.to_alcotest prop_pipeline_equivalence;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "chunk_ranges" `Quick test_chunk_ranges;
          Alcotest.test_case "pool run / map_list" `Quick test_pool_run;
          Alcotest.test_case "pool exceptions & shutdown" `Quick test_pool_exception;
          Alcotest.test_case "Exec partition windows" `Quick test_exec_partition;
          Alcotest.test_case "Metrics merge" `Quick test_metrics_merge;
          Alcotest.test_case "registry under contention" `Quick test_registry_concurrent;
          Alcotest.test_case "Engine facade" `Quick test_engine_facade;
          Alcotest.test_case "Engine shredded storage" `Quick test_engine_shredded;
          Alcotest.test_case "shredded XSLTMark parity" `Quick
            test_shredded_xsltmark_parity;
          Alcotest.test_case "Xdb_error boundary" `Quick test_xdb_error;
          Alcotest.test_case "result cache unit" `Quick test_result_cache_unit;
          Alcotest.test_case "result cache through engine" `Quick
            test_engine_result_cache;
          Alcotest.test_case "prepared statements" `Quick test_prepared_statements;
          Alcotest.test_case "run source verb" `Quick test_run_source_verb;
          QCheck_alcotest.to_alcotest prop_parallel_equiv_sequential;
        ] );
      ( "server",
        [
          Alcotest.test_case "sessions over one engine" `Quick test_server_sessions;
          Alcotest.test_case "concurrent clients byte-identical" `Quick
            test_server_concurrent;
          Alcotest.test_case "overload rejects, never deadlocks" `Quick
            test_server_overload;
          Alcotest.test_case "per-session cap fairness" `Quick test_server_fairness;
          Alcotest.test_case "engine pool vs jobs-resize race" `Quick
            test_engine_pool_race;
          Alcotest.test_case "mixed-verb smoke under 4 domains" `Quick
            test_server_mixed_smoke;
          QCheck_alcotest.to_alcotest prop_server_accounting;
        ] );
    ]
