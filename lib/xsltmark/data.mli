(** Deterministic workload generators for the XSLTMark-style suite: the
    shapes the paper's evaluation depends on, at laptop scale, in both
    standalone-document and database+publishing-view form (identical
    content by construction — same seeded generator). *)

val lcg : int -> int -> int
(** [lcg seed] — deterministic pseudo-random generator; [lcg seed bound]
    draws values in [0, bound). *)

type dbview = { db : Xdb_rel.Database.t; view : Xdb_rel.Publish.view }

(** Flat record table ([<table><row><id/><name/><value/><category/>…]):
    dbonerow/dbaccess and most construction cases.  The database form
    indexes [id], [value] and [category]. *)

val records_doc : int -> Xdb_xml.Types.node

val records_db : ?docs:int -> int -> dbview
(** [docs] (default 1) shards the rows across that many base-table rows,
    one published document each — the many-documents XMLType-column shape
    domain-parallel execution partitions.  [docs = 1] publishes exactly
    [records_doc n]. *)

val dbonerow_target : int -> int
(** The row id dbonerow's predicate selects at a given size (middle row). *)

(** Sales hierarchy ([<sales><region><name/><item>…]): the aggregate cases
    (chart/total). *)

val sales_doc : int -> int -> Xdb_xml.Types.node

val sales_db : ?docs:int -> int -> int -> dbview
(** [docs] as in {!records_db}: regions sharded across that many
    [salesdoc] base rows. *)

(** dept/emp master-detail (paper Example 1), [sal] and [deptno] indexed. *)

val dept_emp_db : int -> int -> dbview

val text_doc : int -> Xdb_xml.Types.node
(** Paragraphs of pseudo-random words (string/output cases). *)

val tree_doc : depth:int -> width:int -> Xdb_xml.Types.node
(** Recursive [<node>] tree (recursion cases; recursive schema). *)

val numbers_doc : int -> Xdb_xml.Types.node
(** Flat list of small numbers (recursion-with-parameters cases). *)
