(** The 40-test-case suite, named after XSLTMark's functional areas (the
    original DataPower distribution is no longer available; DESIGN.md §2
    records the substitution argument). *)

type data_shape = Records | Sales | Dept_emp | Text | Tree | Numbers

type case = {
  name : string;
  category : string;
  description : string;
  shape : data_shape;
  stylesheet : string;
  expect_inline : bool;  (** full-inline expected (the paper's 23/40 stat) *)
  db_capable : bool;  (** meaningful as a DB-backed rewrite benchmark *)
}

val all : case list
(** Exactly forty cases; 23 expect inline mode. *)

val extras : case list
(** Additional cases beyond the forty (extra coverage in tests). *)

val find : string -> case option

val doc_for : case -> int -> Xdb_xml.Types.node
(** Standalone document for a case at a given size (row count). *)

val dbview_for : ?docs:int -> case -> int -> Data.dbview
(** Database + publishing view for a [db_capable] case.  [docs]
    (default 1) shards Records/Sales data across that many base-table
    rows — one published document each — so domain-parallel runs have
    base rows to partition (Dept_emp shapes already publish one document
    per dept).
    @raise Invalid_argument for cases without a database form. *)

val dbonerow_for : int -> case
(** Size-parameterised dbonerow (the predicate targets the middle row). *)

val dbonerow : case
val dbonerow_stylesheet : int -> string
