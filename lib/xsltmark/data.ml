(** Deterministic workload generators for the XSLTMark-style suite.

    The original XSLTMark distribution (datapower.com) is no longer
    available; these generators reproduce the {e shapes} the paper's
    evaluation depends on: a flat record table for value-predicate cases
    (dbonerow/dbaccess), a master-detail hierarchy for report cases, a
    sales hierarchy for the aggregate cases (chart/total), a text document
    for string cases, and a recursive tree for the recursion cases.

    Every generator is deterministic (a small LCG seeded by the size), so
    differential tests are reproducible.  Each shape comes in two forms:
    a standalone XML document and a relational database + publishing view
    pair producing the identical document. *)

module X = Xdb_xml.Types
module B = Xdb_xml.Builder
module P = Xdb_rel.Publish
module V = Xdb_rel.Value
module T = Xdb_rel.Table

(* linear congruential generator: deterministic pseudo-random values *)
let lcg seed =
  let state = ref (seed land 0x3FFFFFFF) in
  fun bound ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod bound

let categories = [| "A"; "B"; "C"; "D"; "E" |]

let int_col name = { T.col_name = name; col_type = V.Tint }
let str_col name = { T.col_name = name; col_type = V.Tstr }

type dbview = { db : Xdb_rel.Database.t; view : P.view }

let leaf_elem name col = P.Elem { name; attrs = []; content = [ P.Text_col col ] }

(* ------------------------------------------------------------------ *)
(* records: flat table of n rows                                       *)
(* ------------------------------------------------------------------ *)

let records_row rand i =
  let id = i + 1 in
  let name = Printf.sprintf "name%06d" id in
  let value = rand 10000 in
  let category = categories.(rand 5) in
  (id, name, value, category)

(** Standalone document: [<table><row><id/><name/><value/><category/></row>…</table>] *)
let records_doc n =
  let rand = lcg (n + 17) in
  let rows =
    List.init n (fun i ->
        let id, name, value, category = records_row rand i in
        B.elem "row"
          [
            B.elem "id" [ B.text (string_of_int id) ];
            B.elem "name" [ B.text name ];
            B.elem "value" [ B.text (string_of_int value) ];
            B.elem "category" [ B.text category ];
          ])
  in
  B.document (B.elem "table" rows)

(** Database + view producing the same content as {!records_doc}: one
    published document per [tables] row.  [docs] (default 1) shards the
    [n] records across that many base-table rows — the paper's
    XMLType-column scenario of many documents in one table, and the shape
    domain-parallel execution partitions.  [docs = 1] publishes exactly
    {!records_doc}[ n]. *)
let records_db ?(docs = 1) n : dbview =
  let docs = max 1 (min (max 1 n) docs) in
  let per_doc = (n + docs - 1) / docs in
  let db = Xdb_rel.Database.create () in
  let meta = Xdb_rel.Database.create_table db "tables" [ int_col "tid" ] in
  for d = 1 to docs do
    T.insert_values meta [ V.Int d ]
  done;
  let rows =
    Xdb_rel.Database.create_table db "rows"
      [ int_col "tid"; int_col "id"; str_col "name"; int_col "value"; str_col "category" ]
  in
  let rand = lcg (n + 17) in
  for i = 0 to n - 1 do
    let id, name, value, category = records_row rand i in
    let tid = (i / per_doc) + 1 in
    T.insert_values rows [ V.Int tid; V.Int id; V.Str name; V.Int value; V.Str category ]
  done;
  (* correlation index only when sharded: with one document every row
     matches [tid] and the index would just shadow the value predicates *)
  if docs > 1 then ignore (T.create_index rows ~name:"rows_tid_idx" ~column:"tid");
  ignore (T.create_index rows ~name:"rows_id_idx" ~column:"id");
  ignore (T.create_index rows ~name:"rows_value_idx" ~column:"value");
  ignore (T.create_index rows ~name:"rows_category_idx" ~column:"category");
  let view =
    {
      P.view_name = "records_vu";
      base_table = "tables";
      base_alias = "tables";
      column = "doc";
      spec =
        P.Elem
          {
            name = "table";
            attrs = [];
            content =
              [
                P.Agg
                  {
                    table = "rows";
                    alias = "rows";
                    correlate = [ ("tid", "tid") ];
                    where = None;
                    order_by = [ ("id", Xdb_rel.Algebra.Asc) ];
                    body =
                      P.Elem
                        {
                          name = "row";
                          attrs = [];
                          content =
                            [
                              leaf_elem "id" "id";
                              leaf_elem "name" "name";
                              leaf_elem "value" "value";
                              leaf_elem "category" "category";
                            ];
                        };
                  };
              ];
          };
    }
  in
  { db; view }

(** The id of the one row dbonerow selects: deterministic middle row. *)
let dbonerow_target n = (n / 2) + 1

(* ------------------------------------------------------------------ *)
(* sales: regions with items (aggregates)                              *)
(* ------------------------------------------------------------------ *)

let sales_doc n_regions items_per_region =
  let rand = lcg (n_regions + (31 * items_per_region)) in
  let regions =
    List.init n_regions (fun r ->
        let items =
          List.init items_per_region (fun i ->
              B.elem "item"
                [
                  B.elem "product" [ B.text (Printf.sprintf "p%04d" ((r * items_per_region) + i)) ];
                  B.elem "amount" [ B.text (string_of_int (1 + rand 500)) ];
                ])
        in
        B.elem "region" (B.elem "name" [ B.text (Printf.sprintf "region%03d" r) ] :: items))
  in
  B.document (B.elem "sales" regions)

(** [docs] as in {!records_db}: shard the regions across that many
    [salesdoc] base rows (one published document each); [rid] stays
    globally unique so items never leak across documents. *)
let sales_db ?(docs = 1) n_regions items_per_region : dbview =
  let docs = max 1 (min (max 1 n_regions) docs) in
  let per_doc = (n_regions + docs - 1) / docs in
  let db = Xdb_rel.Database.create () in
  let meta = Xdb_rel.Database.create_table db "salesdoc" [ int_col "sid" ] in
  for d = 1 to docs do
    T.insert_values meta [ V.Int d ]
  done;
  let region =
    Xdb_rel.Database.create_table db "region" [ int_col "sid"; int_col "rid"; str_col "rname" ]
  in
  let item =
    Xdb_rel.Database.create_table db "item"
      [ int_col "rid"; str_col "product"; int_col "amount" ]
  in
  let rand = lcg (n_regions + (31 * items_per_region)) in
  for r = 0 to n_regions - 1 do
    let sid = (r / per_doc) + 1 in
    T.insert_values region [ V.Int sid; V.Int r; V.Str (Printf.sprintf "region%03d" r) ];
    for i = 0 to items_per_region - 1 do
      T.insert_values item
        [ V.Int r;
          V.Str (Printf.sprintf "p%04d" ((r * items_per_region) + i));
          V.Int (1 + rand 500) ]
    done
  done;
  if docs > 1 then ignore (T.create_index region ~name:"region_sid_idx" ~column:"sid");
  ignore (T.create_index item ~name:"item_rid_idx" ~column:"rid");
  let view =
    {
      P.view_name = "sales_vu";
      base_table = "salesdoc";
      base_alias = "salesdoc";
      column = "doc";
      spec =
        P.Elem
          {
            name = "sales";
            attrs = [];
            content =
              [
                P.Agg
                  {
                    table = "region";
                    alias = "region";
                    correlate = [ ("sid", "sid") ];
                    where = None;
                    order_by = [ ("rid", Xdb_rel.Algebra.Asc) ];
                    body =
                      P.Elem
                        {
                          name = "region";
                          attrs = [];
                          content =
                            [
                              leaf_elem "name" "rname";
                              P.Agg
                                {
                                  table = "item";
                                  alias = "item";
                                  correlate = [ ("rid", "rid") ];
                                  where = None;
                                  order_by = [ ("product", Xdb_rel.Algebra.Asc) ];
                                  body =
                                    P.Elem
                                      {
                                        name = "item";
                                        attrs = [];
                                        content =
                                          [
                                            leaf_elem "product" "product";
                                            leaf_elem "amount" "amount";
                                          ];
                                      };
                                };
                            ];
                        };
                  };
              ];
          };
    }
  in
  { db; view }

(* ------------------------------------------------------------------ *)
(* dept/emp master-detail (paper Example 1)                            *)
(* ------------------------------------------------------------------ *)

let dept_emp_db n_depts emps_per_dept : dbview =
  let db = Xdb_rel.Database.create () in
  let dept =
    Xdb_rel.Database.create_table db "dept" [ int_col "deptno"; str_col "dname"; str_col "loc" ]
  in
  let emp =
    Xdb_rel.Database.create_table db "emp"
      [ int_col "empno"; str_col "ename"; int_col "sal"; int_col "deptno" ]
  in
  let rand = lcg (n_depts * 7) in
  for d = 0 to n_depts - 1 do
    T.insert_values dept
      [ V.Int (10 * (d + 1)); V.Str (Printf.sprintf "DEPT%03d" d); V.Str (Printf.sprintf "CITY%03d" d) ];
    for e = 0 to emps_per_dept - 1 do
      T.insert_values emp
        [ V.Int ((1000 * (d + 1)) + e);
          V.Str (Printf.sprintf "EMP%05d" ((d * emps_per_dept) + e));
          V.Int (500 + rand 4500);
          V.Int (10 * (d + 1)) ]
    done
  done;
  ignore (T.create_index emp ~name:"emp_sal_idx" ~column:"sal");
  ignore (T.create_index emp ~name:"emp_deptno_idx" ~column:"deptno");
  let view =
    {
      P.view_name = "dept_emp";
      base_table = "dept";
      base_alias = "dept";
      column = "dept_content";
      spec =
        P.Elem
          {
            name = "dept";
            attrs = [];
            content =
              [
                leaf_elem "dname" "dname";
                leaf_elem "loc" "loc";
                P.Elem
                  {
                    name = "employees";
                    attrs = [];
                    content =
                      [
                        P.Agg
                          {
                            table = "emp";
                            alias = "emp";
                            correlate = [ ("deptno", "deptno") ];
                            where = None;
                            order_by = [ ("empno", Xdb_rel.Algebra.Asc) ];
                            body =
                              P.Elem
                                {
                                  name = "emp";
                                  attrs = [];
                                  content =
                                    [
                                      leaf_elem "empno" "empno";
                                      leaf_elem "ename" "ename";
                                      leaf_elem "sal" "sal";
                                    ];
                                };
                          };
                      ];
                  };
              ];
          };
    }
  in
  { db; view }

(* ------------------------------------------------------------------ *)
(* text document (string / output cases)                               *)
(* ------------------------------------------------------------------ *)

let words =
  [| "partial"; "evaluation"; "xslt"; "xquery"; "rewrite"; "oracle"; "index"; "btree";
     "template"; "pattern"; "relational"; "schema"; "aggregate"; "publish" |]

let text_doc n_paras =
  let rand = lcg (n_paras + 3) in
  let paras =
    List.init n_paras (fun i ->
        let sentence =
          String.concat " " (List.init (3 + rand 8) (fun _ -> words.(rand (Array.length words))))
        in
        B.elem "para" ~attrs:[ ("idx", string_of_int i) ] [ B.text sentence ])
  in
  B.document (B.elem "doc" (B.elem "title" [ B.text "sample document" ] :: paras))

(* ------------------------------------------------------------------ *)
(* recursive tree (recursion cases; recursive schema)                  *)
(* ------------------------------------------------------------------ *)

let rec tree_node depth width label =
  let kids =
    if depth = 0 then []
    else List.init width (fun i -> tree_node (depth - 1) width (Printf.sprintf "%s.%d" label i))
  in
  B.elem "node" (B.elem "label" [ B.text label ] :: kids)

let tree_doc ~depth ~width = B.document (B.elem "tree" [ tree_node depth width "r" ])

(* ------------------------------------------------------------------ *)
(* number list (numeric / recursion-with-params cases)                 *)
(* ------------------------------------------------------------------ *)

let numbers_doc n =
  let rand = lcg (n + 29) in
  B.document
    (B.elem "numbers" (List.init n (fun _ -> B.elem "num" [ B.text (string_of_int (1 + rand 99)) ])))
