(** The 40-test-case suite, named and grouped after XSLTMark's functional
    areas (the original DataPower distribution is no longer available; see
    DESIGN.md §2 for the substitution argument).

    Each case carries a stylesheet, a data shape, and the expected
    translation mode; [db_capable] cases additionally run against a
    relational database + publishing view and are eligible for the
    SQL-rewrite benchmarks (Figures 2 and 3). *)

module X = Xdb_xml.Types

type data_shape = Records | Sales | Dept_emp | Text | Tree | Numbers

type case = {
  name : string;
  category : string;
  description : string;
  shape : data_shape;
  stylesheet : string;
  expect_inline : bool;  (** full inline mode expected (paper's 23/40 stat) *)
  db_capable : bool;  (** meaningful as a DB-backed rewrite benchmark *)
}

let xsl_open = {|<?xml version="1.0"?>
<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
|}

let xsl_close = "</xsl:stylesheet>"

let ss body = xsl_open ^ body ^ xsl_close

(* suppress default text copying where a case wants structure only *)
let mute_text = {|<xsl:template match="text()"/>
|}

(* ------------------------------------------------------------------ *)
(* Figure 2 / Figure 3 cases                                           *)
(* ------------------------------------------------------------------ *)

(** [dbonerow] — XPath value predicate selecting one node (Figure 2).
    The predicate is parameterised by size at run time via [dbonerow_for]. *)
let dbonerow_stylesheet target =
  ss
    (Printf.sprintf
       {|<xsl:template match="table">
<out><xsl:apply-templates select="row[id = %d]"/></out>
</xsl:template>
<xsl:template match="row">
<hit><xsl:value-of select="name"/> = <xsl:value-of select="value"/></hit>
</xsl:template>
%s|}
       target mute_text)

let dbonerow =
  {
    name = "dbonerow";
    category = "database";
    description = "value predicate selecting one row (paper Figure 2)";
    shape = Records;
    stylesheet = dbonerow_stylesheet 4001 (* default size 8000 *);
    expect_inline = true;
    db_capable = true;
  }

let avts =
  {
    name = "avts";
    category = "output";
    description = "attribute value templates constructing new nodes (Figure 3)";
    shape = Records;
    stylesheet =
      ss
        ({|<xsl:template match="table">
<entries><xsl:apply-templates select="row"/></entries>
</xsl:template>
<xsl:template match="row">
<entry id="{id}" cat="{category}" tag="r{id}-{category}"><xsl:value-of select="name"/></entry>
</xsl:template>
|}
        ^ mute_text);
    expect_inline = true;
    db_capable = true;
  }

let chart =
  {
    name = "chart";
    category = "aggregation";
    description = "count()/sum() aggregates per group (Figure 3)";
    shape = Sales;
    stylesheet =
      ss
        ({|<xsl:template match="sales">
<chart><xsl:apply-templates select="region"/></chart>
</xsl:template>
<xsl:template match="region">
<bar>
<label><xsl:value-of select="name"/></label>
<items><xsl:value-of select="count(item)"/></items>
<height><xsl:value-of select="sum(item/amount)"/></height>
</bar>
</xsl:template>
|}
        ^ mute_text);
    expect_inline = true;
    db_capable = true;
  }

let metric =
  {
    name = "metric";
    category = "control";
    description = "conditional construction with arithmetic conversion (Figure 3)";
    shape = Records;
    stylesheet =
      ss
        ({|<xsl:template match="table">
<metrics><xsl:apply-templates select="row"/></metrics>
</xsl:template>
<xsl:template match="row">
<m>
<xsl:choose>
<xsl:when test="value &gt; 5000"><big><xsl:value-of select="value * 2"/></big></xsl:when>
<xsl:when test="value &gt; 1000"><mid><xsl:value-of select="value + 500"/></mid></xsl:when>
<xsl:otherwise><small><xsl:value-of select="value"/></small></xsl:otherwise>
</xsl:choose>
</m>
</xsl:template>
|}
        ^ mute_text);
    expect_inline = true;
    db_capable = true;
  }

let total =
  {
    name = "total";
    category = "aggregation";
    description = "sum() over the whole document (Figure 3)";
    shape = Sales;
    stylesheet =
      ss
        ({|<xsl:template match="sales">
<summary>
<regions><xsl:value-of select="count(region)"/></regions>
<xsl:apply-templates select="region"/>
</summary>
</xsl:template>
<xsl:template match="region">
<total region="{name}"><xsl:value-of select="sum(item/amount)"/></total>
</xsl:template>
|}
        ^ mute_text);
    expect_inline = true;
    db_capable = true;
  }

(* ------------------------------------------------------------------ *)
(* Other inline-capable cases                                          *)
(* ------------------------------------------------------------------ *)

let alphabetize =
  {
    name = "alphabetize";
    category = "sorting";
    description = "xsl:sort on string keys";
    shape = Records;
    stylesheet =
      ss
        ({|<xsl:template match="table">
<sorted>
<xsl:apply-templates select="row">
<xsl:sort select="name" order="descending"/>
</xsl:apply-templates>
</sorted>
</xsl:template>
<xsl:template match="row">
<n><xsl:value-of select="name"/></n>
</xsl:template>
|}
        ^ mute_text);
    expect_inline = true;
    db_capable = true;
  }

let stringsort =
  {
    name = "stringsort";
    category = "sorting";
    description = "xsl:sort inside for-each";
    shape = Records;
    stylesheet =
      ss
        {|<xsl:template match="table">
<sorted>
<xsl:for-each select="row">
<xsl:sort select="category"/>
<xsl:sort select="value" data-type="number" order="descending"/>
<r><xsl:value-of select="category"/>:<xsl:value-of select="value"/></r>
</xsl:for-each>
</sorted>
</xsl:template>
|};
    expect_inline = true;
    db_capable = false;
  }

let attmapping =
  {
    name = "attmapping";
    category = "output";
    description = "element content mapped into attributes";
    shape = Records;
    stylesheet =
      ss
        ({|<xsl:template match="table">
<mapped><xsl:apply-templates select="row"/></mapped>
</xsl:template>
<xsl:template match="row">
<r>
<xsl:attribute name="name"><xsl:value-of select="name"/></xsl:attribute>
<xsl:attribute name="v"><xsl:value-of select="value"/></xsl:attribute>
</r>
</xsl:template>
|}
        ^ mute_text);
    expect_inline = true;
    db_capable = true;
  }

let attsets =
  {
    name = "attsets";
    category = "output";
    description = "several computed attributes per element";
    shape = Records;
    stylesheet =
      ss
        ({|<xsl:template match="table">
<out><xsl:apply-templates select="row"/></out>
</xsl:template>
<xsl:template match="row">
<item a="x{id}" b="y{category}" c="{value}"/>
</xsl:template>
|}
        ^ mute_text);
    expect_inline = true;
    db_capable = true;
  }

let creation =
  {
    name = "creation";
    category = "output";
    description = "xsl:element / xsl:attribute constructors";
    shape = Records;
    stylesheet =
      ss
        ({|<xsl:template match="table">
<built><xsl:apply-templates select="row"/></built>
</xsl:template>
<xsl:template match="row">
<xsl:element name="entry">
<xsl:attribute name="key"><xsl:value-of select="id"/></xsl:attribute>
<xsl:element name="payload"><xsl:value-of select="name"/></xsl:element>
</xsl:element>
</xsl:template>
|}
        ^ mute_text);
    expect_inline = true;
    db_capable = true;
  }

let dbaccess =
  {
    name = "dbaccess";
    category = "database";
    description = "range predicate selecting a subset of rows";
    shape = Records;
    stylesheet =
      ss
        ({|<xsl:template match="table">
<selected><xsl:apply-templates select="row[value &gt; 9000]"/></selected>
</xsl:template>
<xsl:template match="row">
<r><xsl:value-of select="id"/>:<xsl:value-of select="value"/></r>
</xsl:template>
|}
        ^ mute_text);
    expect_inline = true;
    db_capable = true;
  }

let decoy =
  {
    name = "decoy";
    category = "patterns";
    description = "many never-matching templates (dead-template removal §3.7)";
    shape = Records;
    stylesheet =
      ss
        ({|<xsl:template match="table">
<out><xsl:apply-templates select="row"/></out>
</xsl:template>
<xsl:template match="row"><hit><xsl:value-of select="id"/></hit></xsl:template>
<xsl:template match="ghost1"><never/></xsl:template>
<xsl:template match="ghost2/ghost3"><never/></xsl:template>
<xsl:template match="widget"><never/></xsl:template>
<xsl:template match="gadget[id = 1]"><never/></xsl:template>
<xsl:template match="sprocket"><never/></xsl:template>
|}
        ^ mute_text);
    expect_inline = true;
    db_capable = true;
  }

let patterns =
  {
    name = "patterns";
    category = "patterns";
    description = "multi-step and union match patterns";
    shape = Dept_emp;
    stylesheet =
      ss
        ({|<xsl:template match="dept">
<deptout><xsl:apply-templates/></deptout>
</xsl:template>
<xsl:template match="dept/dname | dept/loc">
<hdr><xsl:value-of select="."/></hdr>
</xsl:template>
<xsl:template match="employees">
<xsl:apply-templates select="emp"/>
</xsl:template>
<xsl:template match="employees/emp">
<e><xsl:value-of select="ename"/></e>
</xsl:template>
|}
        ^ mute_text);
    expect_inline = true;
    db_capable = true;
  }

let priority =
  {
    name = "priority";
    category = "patterns";
    description = "conflicting templates resolved by priority";
    shape = Records;
    stylesheet =
      ss
        ({|<xsl:template match="table">
<out><xsl:apply-templates select="row"/></out>
</xsl:template>
<xsl:template match="row" priority="2"><high><xsl:value-of select="id"/></high></xsl:template>
<xsl:template match="row" priority="1"><low/></xsl:template>
<xsl:template match="*" priority="0"><star/></xsl:template>
|}
        ^ mute_text);
    expect_inline = true;
    db_capable = true;
  }

let oddtemplates =
  {
    name = "oddtemplates";
    category = "patterns";
    description = "node-type and wildcard patterns";
    shape = Text;
    stylesheet =
      ss
        {|<xsl:template match="doc">
<scan><xsl:apply-templates/></scan>
</xsl:template>
<xsl:template match="title">
<t><xsl:value-of select="."/></t>
</xsl:template>
<xsl:template match="*">
<el idx="{@idx}"><xsl:value-of select="substring(., 1, 4)"/></el>
</xsl:template>
<xsl:template match="text()"/>
|};
    expect_inline = true;
    db_capable = false;
  }

let axis =
  {
    name = "axis";
    category = "selection";
    description = "sibling and attribute axis navigation";
    shape = Text;
    stylesheet =
      ss
        {|<xsl:template match="doc">
<axes>
<first><xsl:value-of select="para[1]/@idx"/></first>
<second><xsl:value-of select="para[2]"/></second>
<count><xsl:value-of select="count(para)"/></count>
</axes>
</xsl:template>
|};
    expect_inline = true;
    db_capable = false;
  }

let current_case =
  {
    name = "current";
    category = "selection";
    description = "current() in nested expressions";
    shape = Records;
    stylesheet =
      ss
        ({|<xsl:template match="table">
<out><xsl:apply-templates select="row[value &gt; 8000]"/></out>
</xsl:template>
<xsl:template match="row">
<r cat="{category}"><xsl:value-of select="current()/name"/></r>
</xsl:template>
|}
        ^ mute_text);
    expect_inline = true;
    db_capable = true;
  }

let functions =
  {
    name = "functions";
    category = "strings";
    description = "string function library";
    shape = Text;
    stylesheet =
      ss
        {|<xsl:template match="doc">
<strings>
<xsl:for-each select="para">
<s>
<xsl:value-of select="substring(., 1, 5)"/>|<xsl:value-of select="string-length(.)"/>|<xsl:value-of select="translate(substring(., 1, 3), 'aeiou', 'AEIOU')"/>|<xsl:value-of select="normalize-space(concat('  x ', .))"/>
</s>
</xsl:for-each>
</strings>
</xsl:template>
|};
    expect_inline = true;
    db_capable = false;
  }

let bytes =
  {
    name = "bytes";
    category = "numeric";
    description = "numeric formatting and arithmetic";
    shape = Records;
    stylesheet =
      ss
        ({|<xsl:template match="table">
<out><xsl:apply-templates select="row"/></out>
</xsl:template>
<xsl:template match="row">
<b kb="{floor(value div 1024)}"><xsl:value-of select="value mod 1024"/></b>
</xsl:template>
|}
        ^ mute_text);
    expect_inline = true;
    db_capable = false;
  }

let number_case =
  {
    name = "number";
    category = "numeric";
    description = "xsl:number level=single";
    shape = Records;
    stylesheet =
      ss
        ({|<xsl:template match="table">
<numbered><xsl:apply-templates select="row"/></numbered>
</xsl:template>
<xsl:template match="row">
<n><xsl:number/>:<xsl:value-of select="name"/></n>
</xsl:template>
|}
        ^ mute_text);
    expect_inline = true;
    db_capable = false;
  }

let output_case =
  {
    name = "output";
    category = "output";
    description = "text output method";
    shape = Records;
    stylesheet =
      ss
        ({|<xsl:output method="text"/>
<xsl:template match="table">
<xsl:apply-templates select="row"/>
</xsl:template>
<xsl:template match="row">
<xsl:value-of select="id"/>,<xsl:value-of select="name"/>;
</xsl:template>
|}
        ^ mute_text);
    expect_inline = true;
    db_capable = true;
  }

let inventory =
  {
    name = "inventory";
    category = "reports";
    description = "nested master-detail report (paper Example 1 shape)";
    shape = Dept_emp;
    stylesheet =
      ss
        ({|<xsl:template match="dept">
<report>
<name><xsl:value-of select="dname"/></name>
<xsl:apply-templates select="employees/emp[sal &gt; 2500]"/>
</report>
</xsl:template>
<xsl:template match="emp">
<line><xsl:value-of select="ename"/> earns <xsl:value-of select="sal"/></line>
</xsl:template>
|}
        ^ mute_text);
    expect_inline = true;
    db_capable = true;
  }

let summarize =
  {
    name = "summarize";
    category = "control";
    description = "bucketed summary via xsl:choose";
    shape = Sales;
    stylesheet =
      ss
        ({|<xsl:template match="sales">
<summary><xsl:apply-templates select="region/item"/></summary>
</xsl:template>
<xsl:template match="item">
<xsl:if test="amount &gt; 400"><hot><xsl:value-of select="product"/></hot></xsl:if>
</xsl:template>
|}
        ^ mute_text);
    expect_inline = true;
    db_capable = true;
  }

let trend =
  {
    name = "trend";
    category = "control";
    description = "if/choose over computed comparisons";
    shape = Sales;
    stylesheet =
      ss
        ({|<xsl:template match="sales">
<trends><xsl:apply-templates select="region"/></trends>
</xsl:template>
<xsl:template match="region">
<t name="{name}">
<xsl:choose>
<xsl:when test="sum(item/amount) &gt; count(item) * 250">up</xsl:when>
<xsl:otherwise>down</xsl:otherwise>
</xsl:choose>
</t>
</xsl:template>
|}
        ^ mute_text);
    expect_inline = true;
    db_capable = true;
  }

let queries =
  {
    name = "queries";
    category = "selection";
    description = "multiple predicates combined with and/or";
    shape = Records;
    stylesheet =
      ss
        ({|<xsl:template match="table">
<q><xsl:apply-templates select="row[value &gt; 2000 and value &lt; 2300]"/></q>
</xsl:template>
<xsl:template match="row">
<hit><xsl:value-of select="id"/></hit>
</xsl:template>
|}
        ^ mute_text);
    expect_inline = true;
    db_capable = true;
  }

let xslbench1 =
  {
    name = "xslbench1";
    category = "reports";
    description = "mixed report: headers, iteration, predicates";
    shape = Dept_emp;
    stylesheet =
      ss
        ({|<xsl:template match="dept">
<page>
<h1>Department <xsl:value-of select="dname"/> (<xsl:value-of select="loc"/>)</h1>
<staff><xsl:value-of select="count(employees/emp)"/></staff>
<ul>
<xsl:for-each select="employees/emp">
<li><xsl:value-of select="ename"/></li>
</xsl:for-each>
</ul>
</page>
</xsl:template>
|}
        ^ mute_text);
    expect_inline = true;
    db_capable = true;
  }

let identity_flat =
  {
    name = "identityflat";
    category = "copying";
    description = "copy-of over a flat structure";
    shape = Records;
    stylesheet =
      ss
        {|<xsl:template match="table">
<clone><xsl:copy-of select="row[value &gt; 9500]"/></clone>
</xsl:template>
|};
    expect_inline = true;
    db_capable = true;
  }

let variables =
  {
    name = "variables";
    category = "control";
    description = "xsl:variable bindings and reuse";
    shape = Sales;
    stylesheet =
      ss
        ({|<xsl:template match="sales">
<vars><xsl:apply-templates select="region"/></vars>
</xsl:template>
<xsl:template match="region">
<xsl:variable name="t" select="sum(item/amount)"/>
<xsl:variable name="n" select="count(item)"/>
<v name="{name}" total="{$t}" items="{$n}"/>
</xsl:template>
|}
        ^ mute_text);
    expect_inline = true;
    db_capable = true;
  }

(* ------------------------------------------------------------------ *)
(* Non-inline cases (recursion in templates or in the data)            *)
(* ------------------------------------------------------------------ *)

let bottles =
  {
    name = "bottles";
    category = "recursion";
    description = "counting recursion with parameters (99 bottles)";
    shape = Numbers;
    stylesheet =
      ss
        ({|<xsl:template match="numbers">
<song>
<xsl:call-template name="verse">
<xsl:with-param name="n" select="12"/>
</xsl:call-template>
</song>
</xsl:template>
<xsl:template name="verse">
<xsl:param name="n" select="0"/>
<xsl:if test="$n &gt; 0">
<verse><xsl:value-of select="$n"/> bottles</verse>
<xsl:call-template name="verse">
<xsl:with-param name="n" select="$n - 1"/>
</xsl:call-template>
</xsl:if>
</xsl:template>
|}
        ^ mute_text);
    expect_inline = false;
    db_capable = false;
  }

let tower =
  {
    name = "tower";
    category = "recursion";
    description = "towers of Hanoi (binary recursion with parameters)";
    shape = Numbers;
    stylesheet =
      ss
        ({|<xsl:template match="numbers">
<hanoi>
<xsl:call-template name="move">
<xsl:with-param name="n" select="5"/>
<xsl:with-param name="from" select="'A'"/>
<xsl:with-param name="to" select="'C'"/>
<xsl:with-param name="via" select="'B'"/>
</xsl:call-template>
</hanoi>
</xsl:template>
<xsl:template name="move">
<xsl:param name="n" select="0"/>
<xsl:param name="from"/>
<xsl:param name="to"/>
<xsl:param name="via"/>
<xsl:if test="$n &gt; 0">
<xsl:call-template name="move">
<xsl:with-param name="n" select="$n - 1"/>
<xsl:with-param name="from" select="$from"/>
<xsl:with-param name="to" select="$via"/>
<xsl:with-param name="via" select="$to"/>
</xsl:call-template>
<m><xsl:value-of select="$from"/>-<xsl:value-of select="$to"/></m>
<xsl:call-template name="move">
<xsl:with-param name="n" select="$n - 1"/>
<xsl:with-param name="from" select="$via"/>
<xsl:with-param name="to" select="$to"/>
<xsl:with-param name="via" select="$from"/>
</xsl:call-template>
</xsl:if>
</xsl:template>
|}
        ^ mute_text);
    expect_inline = false;
    db_capable = false;
  }

let queens =
  {
    name = "queens";
    category = "recursion";
    description = "recursive counting search";
    shape = Numbers;
    stylesheet =
      ss
        ({|<xsl:template match="numbers">
<queens>
<xsl:call-template name="place">
<xsl:with-param name="col" select="1"/>
</xsl:call-template>
</queens>
</xsl:template>
<xsl:template name="place">
<xsl:param name="col" select="1"/>
<xsl:if test="$col &lt; 7">
<q col="{$col}"/>
<xsl:call-template name="place">
<xsl:with-param name="col" select="$col + 1"/>
</xsl:call-template>
</xsl:if>
</xsl:template>
|}
        ^ mute_text);
    expect_inline = false;
    db_capable = false;
  }

let depth =
  {
    name = "depth";
    category = "recursion";
    description = "apply-templates down a recursive tree";
    shape = Tree;
    stylesheet =
      ss
        ({|<xsl:template match="tree">
<d><xsl:apply-templates select="node"/></d>
</xsl:template>
<xsl:template match="node">
<n l="{label}"><xsl:apply-templates select="node"/></n>
</xsl:template>
|}
        ^ mute_text);
    expect_inline = false;
    db_capable = false;
  }

let breadth =
  {
    name = "breadth";
    category = "recursion";
    description = "wide recursive traversal with value output";
    shape = Tree;
    stylesheet =
      ss
        ({|<xsl:template match="tree">
<b><xsl:apply-templates select="node"/></b>
</xsl:template>
<xsl:template match="node">
<xsl:value-of select="label"/>,<xsl:apply-templates select="node"/>
</xsl:template>
|}
        ^ mute_text);
    expect_inline = false;
    db_capable = false;
  }

let backchain =
  {
    name = "backchain";
    category = "recursion";
    description = "mutually recursive named templates";
    shape = Numbers;
    stylesheet =
      ss
        ({|<xsl:template match="numbers">
<chain>
<xsl:call-template name="even">
<xsl:with-param name="n" select="10"/>
</xsl:call-template>
</chain>
</xsl:template>
<xsl:template name="even">
<xsl:param name="n" select="0"/>
<xsl:if test="$n &gt; 0">
<e><xsl:value-of select="$n"/></e>
<xsl:call-template name="odd">
<xsl:with-param name="n" select="$n - 1"/>
</xsl:call-template>
</xsl:if>
</xsl:template>
<xsl:template name="odd">
<xsl:param name="n" select="0"/>
<xsl:if test="$n &gt; 0">
<o><xsl:value-of select="$n"/></o>
<xsl:call-template name="even">
<xsl:with-param name="n" select="$n - 1"/>
</xsl:call-template>
</xsl:if>
</xsl:template>
|}
        ^ mute_text);
    expect_inline = false;
    db_capable = false;
  }

let reverser =
  {
    name = "reverser";
    category = "recursion";
    description = "recursive string reversal";
    shape = Text;
    stylesheet =
      ss
        {|<xsl:template match="doc">
<rev><xsl:call-template name="reverse">
<xsl:with-param name="s" select="string(title)"/>
</xsl:call-template></rev>
</xsl:template>
<xsl:template name="reverse">
<xsl:param name="s" select="''"/>
<xsl:if test="string-length($s) &gt; 0">
<xsl:call-template name="reverse">
<xsl:with-param name="s" select="substring($s, 2)"/>
</xsl:call-template>
<xsl:value-of select="substring($s, 1, 1)"/>
</xsl:if>
</xsl:template>
<xsl:template match="text()"/>
|};
    expect_inline = false;
    db_capable = false;
  }

let encrypt =
  {
    name = "encrypt";
    category = "recursion";
    description = "recursive character rotation";
    shape = Text;
    stylesheet =
      ss
        {|<xsl:template match="doc">
<enc><xsl:call-template name="rot">
<xsl:with-param name="s" select="string(title)"/>
</xsl:call-template></enc>
</xsl:template>
<xsl:template name="rot">
<xsl:param name="s" select="''"/>
<xsl:if test="string-length($s) &gt; 0">
<xsl:value-of select="translate(substring($s, 1, 1), 'abcdefghijklmnopqrstuvwxyz', 'nopqrstuvwxyzabcdefghijklm')"/>
<xsl:call-template name="rot">
<xsl:with-param name="s" select="substring($s, 2)"/>
</xsl:call-template>
</xsl:if>
</xsl:template>
<xsl:template match="text()"/>
|};
    expect_inline = false;
    db_capable = false;
  }

let games =
  {
    name = "games";
    category = "recursion";
    description = "recursive scoring accumulation";
    shape = Numbers;
    stylesheet =
      ss
        ({|<xsl:template match="numbers">
<score>
<xsl:call-template name="play">
<xsl:with-param name="round" select="1"/>
<xsl:with-param name="acc" select="0"/>
</xsl:call-template>
</score>
</xsl:template>
<xsl:template name="play">
<xsl:param name="round" select="1"/>
<xsl:param name="acc" select="0"/>
<xsl:choose>
<xsl:when test="$round &gt; 8">
<final><xsl:value-of select="$acc"/></final>
</xsl:when>
<xsl:otherwise>
<xsl:call-template name="play">
<xsl:with-param name="round" select="$round + 1"/>
<xsl:with-param name="acc" select="$acc + $round * $round"/>
</xsl:call-template>
</xsl:otherwise>
</xsl:choose>
</xsl:template>
|}
        ^ mute_text);
    expect_inline = false;
    db_capable = false;
  }

let processes =
  {
    name = "processes";
    category = "recursion";
    description = "recursive pipeline of named stages";
    shape = Numbers;
    stylesheet =
      ss
        ({|<xsl:template match="numbers">
<procs>
<xsl:call-template name="stage">
<xsl:with-param name="left" select="count(num)"/>
</xsl:call-template>
</procs>
</xsl:template>
<xsl:template name="stage">
<xsl:param name="left" select="0"/>
<xsl:if test="$left &gt; 0">
<p remaining="{$left}"/>
<xsl:call-template name="stage">
<xsl:with-param name="left" select="$left - 1"/>
</xsl:call-template>
</xsl:if>
</xsl:template>
|}
        ^ mute_text);
    expect_inline = false;
    db_capable = false;
  }

let identity =
  {
    name = "identity";
    category = "copying";
    description = "identity transform over a recursive tree";
    shape = Tree;
    stylesheet =
      ss
        {|<xsl:template match="node()">
<xsl:copy><xsl:apply-templates select="node()"/></xsl:copy>
</xsl:template>
|};
    expect_inline = false;
    db_capable = false;
  }

let worder =
  {
    name = "worder";
    category = "recursion";
    description = "recursive word splitting";
    shape = Text;
    stylesheet =
      ss
        {|<xsl:template match="doc">
<words><xsl:call-template name="split">
<xsl:with-param name="s" select="normalize-space(string(para[1]))"/>
</xsl:call-template></words>
</xsl:template>
<xsl:template name="split">
<xsl:param name="s" select="''"/>
<xsl:if test="string-length($s) &gt; 0">
<xsl:choose>
<xsl:when test="contains($s, ' ')">
<w><xsl:value-of select="substring-before($s, ' ')"/></w>
<xsl:call-template name="split">
<xsl:with-param name="s" select="substring-after($s, ' ')"/>
</xsl:call-template>
</xsl:when>
<xsl:otherwise><w><xsl:value-of select="$s"/></w></xsl:otherwise>
</xsl:choose>
</xsl:if>
</xsl:template>
<xsl:template match="text()"/>
|};
    expect_inline = false;
    db_capable = false;
  }

let xslbench2 =
  {
    name = "xslbench2";
    category = "recursion";
    description = "recursive aggregation over siblings";
    shape = Numbers;
    stylesheet =
      ss
        ({|<xsl:template match="numbers">
<acc>
<xsl:call-template name="addup">
<xsl:with-param name="i" select="1"/>
<xsl:with-param name="sum" select="0"/>
</xsl:call-template>
</acc>
</xsl:template>
<xsl:template name="addup">
<xsl:param name="i" select="1"/>
<xsl:param name="sum" select="0"/>
<xsl:choose>
<xsl:when test="$i &gt; count(num)">
<total><xsl:value-of select="$sum"/></total>
</xsl:when>
<xsl:otherwise>
<xsl:call-template name="addup">
<xsl:with-param name="i" select="$i + 1"/>
<xsl:with-param name="sum" select="$sum + number(num[$i])"/>
</xsl:call-template>
</xsl:otherwise>
</xsl:choose>
</xsl:template>
|}
        ^ mute_text);
    expect_inline = false;
    db_capable = false;
  }

let xslbench3 =
  {
    name = "xslbench3";
    category = "recursion";
    description = "tree fold computing depth labels";
    shape = Tree;
    stylesheet =
      ss
        ({|<xsl:template match="tree">
<fold><xsl:apply-templates select="node"/></fold>
</xsl:template>
<xsl:template match="node">
<level childcount="{count(node)}">
<xsl:apply-templates select="node"/>
</level>
</xsl:template>
|}
        ^ mute_text);
    expect_inline = false;
    db_capable = false;
  }

let treewalk =
  {
    name = "treewalk";
    category = "recursion";
    description = "axis navigation over a recursive structure";
    shape = Tree;
    stylesheet =
      ss
        ({|<xsl:template match="tree">
<walk><xsl:apply-templates select="node"/></walk>
</xsl:template>
<xsl:template match="node">
<step kids="{count(node)}" label="{label}"/>
<xsl:apply-templates select="node"/>
</xsl:template>
|}
        ^ mute_text);
    expect_inline = false;
    db_capable = false;
  }

let oddrecursion =
  {
    name = "oddrecursion";
    category = "recursion";
    description = "conditional recursion skipping alternate levels";
    shape = Tree;
    stylesheet =
      ss
        ({|<xsl:template match="tree">
<odd><xsl:apply-templates select="node"/></odd>
</xsl:template>
<xsl:template match="node">
<keep label="{label}">
<xsl:apply-templates select="node/node"/>
</keep>
</xsl:template>
|}
        ^ mute_text);
    expect_inline = false;
    db_capable = false;
  }

let summarecursive =
  {
    name = "sumrecurse";
    category = "recursion";
    description = "recursive accumulation over a list";
    shape = Numbers;
    stylesheet =
      ss
        ({|<xsl:template match="numbers">
<out>
<xsl:call-template name="go">
<xsl:with-param name="k" select="4"/>
</xsl:call-template>
</out>
</xsl:template>
<xsl:template name="go">
<xsl:param name="k" select="0"/>
<xsl:if test="$k &gt; 0">
<row n="{$k}">
<xsl:call-template name="go">
<xsl:with-param name="k" select="$k - 1"/>
</xsl:call-template>
</row>
</xsl:if>
</xsl:template>
|}
        ^ mute_text);
    expect_inline = false;
    db_capable = false;
  }

(* ------------------------------------------------------------------ *)
(* Suite                                                               *)
(* ------------------------------------------------------------------ *)

(** All forty cases, paper-stat target: 23 inline / 17 non-inline. *)
let all : case list =
  [
    alphabetize;
    attmapping;
    attsets;
    avts;
    axis;
    backchain;
    bottles;
    breadth;
    bytes;
    chart;
    creation;
    dbaccess;
    dbonerow;
    decoy;
    depth;
    encrypt;
    functions;
    games;
    identity;
    inventory;
    metric;
    number_case;
    oddrecursion;
    oddtemplates;
    output_case;
    patterns;
    priority;
    processes;
    queens;
    reverser;
    summarize;
    summarecursive;
    total;
    tower;
    treewalk;
    trend;
    worder;
    xslbench1;
    xslbench2;
    xslbench3;
  ]

let keysearch =
  {
    name = "keysearch";
    category = "selection";
    description = "xsl:key / key() lookup (extra coverage)";
    shape = Records;
    stylesheet =
      ss
        ({|<xsl:key name="bycat" match="row" use="category"/>
<xsl:template match="table">
<hits><xsl:apply-templates select="key('bycat', 'C')"/></hits>
</xsl:template>
<xsl:template match="row"><h><xsl:value-of select="id"/></h></xsl:template>
|}
        ^ mute_text);
    expect_inline = true;
    db_capable = false;
  }

let formatting =
  {
    name = "formatting";
    category = "numeric";
    description = "format-number() pictures (extra coverage)";
    shape = Records;
    stylesheet =
      ss
        ({|<xsl:template match="table">
<fmt><xsl:apply-templates select="row"/></fmt>
</xsl:template>
<xsl:template match="row">
<f a="{format-number(value, '#,##0')}" b="{format-number(value div 100, '0.00')}"/>
</xsl:template>
|}
        ^ mute_text);
    expect_inline = true;
    db_capable = false;
  }

let positional =
  {
    name = "positional";
    category = "selection";
    description = "position() and last() in applied templates (extra coverage)";
    shape = Records;
    stylesheet =
      ss
        ({|<xsl:template match="table">
<seq><xsl:apply-templates select="row[value &gt; 5000]"/></seq>
</xsl:template>
<xsl:template match="row">
<r p="{position()}" of="{last()}"><xsl:value-of select="id"/></r>
</xsl:template>
|}
        ^ mute_text);
    expect_inline = true;
    db_capable = false;
  }

let stripspace =
  {
    name = "stripspace";
    category = "whitespace";
    description = "xsl:strip-space instead of a text() template (extra coverage)";
    shape = Records;
    stylesheet =
      ss
        {|<xsl:strip-space elements="*"/>
<xsl:template match="table">
<out><xsl:apply-templates select="row"/></out>
</xsl:template>
<xsl:template match="row"><v><xsl:value-of select="name"/></v></xsl:template>
|};
    expect_inline = true;
    db_capable = false;
  }

(** Additional cases beyond the forty (extra coverage in tests). *)
let extras : case list =
  [
    current_case;
    identity_flat;
    queries;
    stringsort;
    variables;
    keysearch;
    formatting;
    positional;
    stripspace;
  ]

let find name = List.find_opt (fun c -> c.name = name) (all @ extras)

(** Standalone document for a case at a given size (row count). *)
let doc_for case n : X.node =
  match case.shape with
  | Records -> Data.records_doc n
  | Sales -> Data.sales_doc (max 1 (n / 20)) 20
  | Dept_emp ->
      let dv = Data.dept_emp_db (max 1 (n / 10)) 10 in
      List.hd (Xdb_rel.Publish.materialize dv.Data.db dv.Data.view)
  | Text -> Data.text_doc (max 3 (n / 10))
  | Tree -> Data.tree_doc ~depth:(min 7 (max 2 (n / 400))) ~width:2
  | Numbers -> Data.numbers_doc (max 4 (min n 64))

(** Database + view for a [db_capable] case. *)
let dbview_for ?(docs = 1) case n : Data.dbview =
  match case.shape with
  | Records -> Data.records_db ~docs n
  | Sales -> Data.sales_db ~docs (max 1 (n / 20)) 20
  | Dept_emp ->
      (* one published document per dept row already: many base rows *)
      Data.dept_emp_db (max 1 (n / 10)) 10
  | Text | Tree | Numbers -> invalid_arg "no database form for this case"

(** Size-parameterised dbonerow case (predicate targets the middle row). *)
let dbonerow_for n = { dbonerow with stylesheet = dbonerow_stylesheet (Data.dbonerow_target n) }
