(** Compiled row layouts: column name → integer slot maps for the
    compiled executor's [Value.t array] rows.

    Several names may share one slot (a scan binds each column bare and
    [alias.column]-qualified); resolution follows entry order so the
    first match wins, mirroring [List.assoc] over the interpreted
    executor's association-list rows. *)

type t

val empty : t

val width : t -> int
(** Physical slots per row. *)

val entries : t -> (string * int) list
(** (name, slot) pairs in resolution order. *)

val of_list : width:int -> (string * int) list -> t
(** Layout from explicit entries (projection/aggregate output). *)

val of_columns : alias:string -> string array -> t
(** Scan layout: one slot per column, bound bare and qualified. *)

val concat : t -> t -> t
(** [concat a b] — [a]'s row with [b]'s appended; [b]'s slots shift past
    [a]'s width and [a]'s names shadow [b]'s. *)

val prefix : t -> int -> t
(** [prefix t w] — the layout of the first [w] slots only (entries with
    slot < [w], order preserved); left inverse of {!concat}. *)

val slot_opt : t -> ?alias:string -> string -> int option
(** Resolve a (possibly qualified) column reference to its slot. *)

val names : t -> string list
(** Distinct names in resolution order. *)

val describe : t -> string
(** Comma-separated {!names} for plan-time error messages. *)

val to_assoc : t -> Value.t array -> (string * Value.t) list
(** Association-list view of a physical row, in entry order. *)

val of_bindings : string list -> t
(** Layout for an externally supplied environment: one slot per binding. *)
