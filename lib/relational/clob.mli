(** CLOB/BLOB XMLType storage (paper Figure 1, §7.4): documents stored as
    serialized text, parsed back into a DOM on every fetch.  No structural
    information survives, so the XSLT rewrite cannot apply — exactly the
    trade-off the §7.4 storage study quantifies. *)

val content_column : string
val id_column : string

val store : Database.t -> table:string -> Xdb_xml.Types.node list -> Table.t
(** Create [table] and serialize the documents into it (ids 1..n). *)

val load : Database.t -> table:string -> Xdb_xml.Types.node list
(** Fetch and parse every stored document, in id order. *)

val load_one : Database.t -> table:string -> docid:int -> Xdb_xml.Types.node option
(** Point fetch; probes a B-tree on the id column when one exists. *)
