(** Interval-encoded ("shredded") XML storage: one relational row per XML
    node, pre/post numbered, with B-tree indexes that turn XPath axes
    into range scans (paper §7.4 "tree storage"; the numbering scheme of
    the DOM-based mapping and RadegastXDB lines of work in PAPERS.md).

    A document decomposes into rows
    [(docid, pre, post, parent, level, kind, name, prefix, uri, value)]
    plus three derived packed-key columns kept index-friendly as single
    integers:

    - [dpre    = docid·2^24 + pre] — document-order key,
    - [dparent = docid·2^24 + parent] — child/sibling clustering key,
    - [dnk     = (docid·2^12 + nid)·2^24 + pre] — name-interval key,
      where [nid] is the dictionary id of the node's name.

    Location steps compile (via {!Xdb_xpath.Axis_range}) to conjunctive
    filters over these columns.  Two execution strategies share that
    translation:

    - {b Set-at-a-time} (the default): the context node-set is a sorted
      (docid, pre) sequence, and a whole step is answered in one pass —
      a staircase merge of [dpre]/[dnk] interval sweeps for descendant
      (context intervals covered by an earlier interval are skipped), a
      single merged [dparent]-index sweep of point probes for child, a
      marked parent-chain walk for ancestor, and a zero-probe sort-merge
      pass over the pre-ordered rows array for the common value-predicate
      shapes ([@k='v'], [child='v']).
    - {b Per-context} (axes or predicates outside the batch subset, or
      [~batch:false]): each step compiles {e once} per shape into a
      correlated plan (outer alias ["c"] carries the context node's
      values) opened per context node, answered by {!Optimizer}-chosen
      {!Algebra.Index_scan} range probes.

    Constructs outside the relational subset raise {!Unsupported};
    {!select} then falls back to the DOM interpreter over the
    reconstructed document, so answers never degrade — only speed.
    {!counters} reports how often each strategy ran. *)

exception Shred_error of string

exception Unsupported of string
(** A construct outside the relationally-evaluable subset. *)

type t

(** One stored node, decoded from its row.  [parent] is the parent's
    [pre], [-1] on document rows.  [kind] is one of ["doc"], ["elem"],
    ["attr"], ["text"], ["comment"], ["pi"].  [value] is the node's XPath
    string-value ([name] holds the PI target). *)
type node = {
  docid : int;
  pre : int;
  post : int;
  parent : int;
  level : int;
  kind : string;
  name : string;
  prefix : string;
  uri : string;
  value : string;
}

val pre_bits : int
(** Bits of [pre] inside the packed keys (24: ≤ 16M counter ticks per
    document). *)

val name_bits : int
(** Bits of the name-dictionary id inside [dnk] (12: ≤ 4096 distinct
    names per store). *)

val create : ?table:string -> Database.t -> t
(** Create the node table (default name ["xmlnodes"]), its three indexes
    and the [<table>_names] dictionary table in [db]. *)

val table_name : t -> string

val tables : t -> string list
(** The tables the store owns in its database — the node table and the
    name-dictionary table.  DML against either one must be followed by
    {!invalidate_caches}; these are also the data-version dependencies
    of cached shredded-transform results. *)

val invalidate_caches : t -> unit
(** Resynchronise in-memory state with the node table after direct DML
    against it: drops the reconstruction and batch-row caches,
    re-derives the docid directory from the document rows present, and
    re-reads the name dictionary.  Compiled step plans survive (they
    depend on the table's shape, not its rows). *)

val shred : t -> Xdb_xml.Types.node -> int
(** Decompose a document into rows (pre-order insertion, so index scans
    yield document order) and return its docid (1-based).  A non-document
    root is wrapped in a synthetic document row.
    @raise Shred_error when a capacity bound ({!pre_bits}/{!name_bits})
    would be exceeded. *)

val doc_ids : t -> int list
(** Stored docids, ascending. *)

val doc_node : t -> int -> node
(** The document row of [docid]. @raise Shred_error for unknown ids. *)

val stats : t -> int * int
(** (documents, node rows) stored. *)

type counter_totals = {
  batch_steps : int;  (** set-at-a-time step evaluations (one per step) *)
  rel_steps : int;  (** per-context correlated plan openings *)
  dom_fallbacks : int;  (** whole-expression DOM fallbacks *)
}

val counters : t -> counter_totals
(** Execution-strategy counters since creation — the observability feed
    of [xdb_cli shred --explain] and the engine metrics. *)

val reconstruct : t -> int -> Xdb_xml.Types.node
(** Rebuild the document tree from its rows (cached per docid; document
    order stamped from [pre], so node order comparisons work).  The
    inverse of {!shred}: reconstruct ∘ shred is deep-equal to the
    original. *)

val children : t -> node -> node list
(** Direct children (attributes excluded) read off the pre-ordered rows
    array — O(1) per child, no index probe. *)

val parent_row : t -> node -> node option
(** The parent row, [None] on document rows. *)

val subtree : t -> node -> Xdb_xml.Types.node
(** A fresh DOM copy of the node's subtree built from the rows-array
    slice [pre .. post] — the only materialisation the relational
    transform path performs (for [xsl:copy-of] and friends). *)

val axis_step : t -> ?batch:bool -> node list -> Xdb_xpath.Ast.step -> node list
(** Evaluate one location step over a context node-set, set-at-a-time
    when the axis and predicates allow it (per-context otherwise, or
    always with [~batch:false]); predicates applied per the XPath
    positional rules, results merged in document order without
    duplicates.
    @raise Unsupported for constructs outside the relational subset or
    sibling/following/preceding steps from attribute contexts. *)

(** {2 Expression evaluation over rows} *)

module Smap : Map.S with type key = string

(** An XPath 1.0 value over rows — what {!eval_expr} returns and what
    variable bindings hold. *)
type value = V_num of float | V_str of string | V_bool of bool | V_rows of node list

val value_number : value -> float
val value_bool : value -> bool
val value_string : value -> string

val value_rows : value -> node list option
(** [Some rows] for node-sets, [None] for atomics. *)

val eval_expr :
  t ->
  ?batch:bool ->
  ?vars:value Smap.t ->
  ?position:int ->
  ?size:int ->
  node ->
  Xdb_xpath.Ast.expr ->
  value
(** Evaluate an XPath expression with [node] as context row — the
    relational engine behind the shredded XSLT VM's select and test
    expressions.  [vars] binds variables; [position]/[size] feed
    [position()]/[last()].
    @raise Unsupported for constructs outside the relational subset
    (unbound variables included). *)

val pattern_matches : t -> ?vars:value Smap.t -> Xdb_xpath.Pattern.t -> node -> bool
(** Does the row match the XSLT pattern?  Runs
    {!Xdb_xpath.Pattern.matches_gen} over rows: parent lookups through
    the pre → row map, predicates through {!eval_expr}.
    @raise Unsupported for pattern predicates outside the relational
    subset. *)

val select : t -> ?batch:bool -> docid:int -> string -> node list
(** Parse and evaluate a path expression with the document row as context
    node ([~batch:false] forces the per-context strategy).  Falls back to
    the (DOM) {!Xdb_xpath.Eval} interpreter over the reconstructed
    document when translation raises {!Unsupported} — the result is
    identical either way, in document order.
    @raise Xdb_xpath.Parser.Parse_error on malformed expressions;
    @raise Invalid_argument when the expression is not a node-set. *)

val serialize : t -> node list -> string list
(** Serialize each result node from the reconstructed tree (attributes
    render as [name="value"], which bare attribute nodes cannot via
    {!Xdb_xml.Serializer}) — the byte-comparison form of the differential
    tests. *)

val serialize_dom : Xdb_xml.Types.node list -> string list
(** The same rendering applied to DOM interpreter results — the other
    side of the byte comparison. *)

val explain_step : t -> Xdb_xpath.Ast.step -> string
(** The optimised access path a step's per-context plan compiles to
    ({!Algebra.explain}), or ["<empty>"] for statically empty steps —
    lets tests assert an [Index_scan] was chosen. *)

val batch_explain : Xdb_xpath.Ast.step -> string
(** The set-at-a-time strategy the step evaluates with (staircase sweep,
    merged point probes, …), or why it stays on the per-context plan —
    the [batch] column of [xdb_cli shred --explain]. *)
