(** Interval-encoded ("shredded") XML storage: one relational row per XML
    node, pre/post numbered, with B-tree indexes that turn XPath axes
    into range scans (paper §7.4 "tree storage"; the numbering scheme of
    the DOM-based mapping and RadegastXDB lines of work in PAPERS.md).

    A document decomposes into rows
    [(docid, pre, post, parent, level, kind, name, prefix, uri, value)]
    plus three derived packed-key columns kept index-friendly as single
    integers:

    - [dpre    = docid·2^24 + pre] — document-order key,
    - [dparent = docid·2^24 + parent] — child/sibling clustering key,
    - [dnk     = (docid·2^12 + nid)·2^24 + pre] — name-interval key,
      where [nid] is the dictionary id of the node's name.

    Location steps compile (via {!Xdb_xpath.Axis_range}) to conjunctive
    filters over these columns — emitted sargable, so {!Optimizer} turns
    them into {!Algebra.Index_scan} range probes answered by
    {!Btree.range_rids}: child is a [dparent] point probe, descendant a
    two-sided [dpre] (or, name-tested, [dnk]) range, ancestor the inverse
    containment.  Each step compiles {e once} per shape into a correlated
    plan (outer alias ["c"] carries the context node's values) and is
    opened per context node.

    Predicates outside the relational subset, and the sibling/following/
    preceding axes from attribute context nodes, raise {!Unsupported};
    {!select} then falls back to the DOM interpreter over the
    reconstructed document, so answers never degrade — only speed. *)

exception Shred_error of string

exception Unsupported of string
(** A construct outside the relationally-evaluable subset. *)

type t

(** One stored node, decoded from its row.  [parent] is the parent's
    [pre], [-1] on document rows.  [kind] is one of ["doc"], ["elem"],
    ["attr"], ["text"], ["comment"], ["pi"].  [value] is the node's XPath
    string-value ([name] holds the PI target). *)
type node = {
  docid : int;
  pre : int;
  post : int;
  parent : int;
  level : int;
  kind : string;
  name : string;
  prefix : string;
  uri : string;
  value : string;
}

val pre_bits : int
(** Bits of [pre] inside the packed keys (24: ≤ 16M counter ticks per
    document). *)

val name_bits : int
(** Bits of the name-dictionary id inside [dnk] (12: ≤ 4096 distinct
    names per store). *)

val create : ?table:string -> Database.t -> t
(** Create the node table (default name ["xmlnodes"]), its three indexes
    and the [<table>_names] dictionary table in [db]. *)

val table_name : t -> string

val shred : t -> Xdb_xml.Types.node -> int
(** Decompose a document into rows (pre-order insertion, so index scans
    yield document order) and return its docid (1-based).  A non-document
    root is wrapped in a synthetic document row.
    @raise Shred_error when a capacity bound ({!pre_bits}/{!name_bits})
    would be exceeded. *)

val doc_ids : t -> int list
(** Stored docids, ascending. *)

val doc_node : t -> int -> node
(** The document row of [docid]. @raise Shred_error for unknown ids. *)

val stats : t -> int * int
(** (documents, node rows) stored. *)

val counters : t -> int * int
(** (relational step evaluations, DOM fallbacks) since creation. *)

val reconstruct : t -> int -> Xdb_xml.Types.node
(** Rebuild the document tree from its rows (cached per docid; document
    order stamped from [pre], so node order comparisons work).  The
    inverse of {!shred}: reconstruct ∘ shred is deep-equal to the
    original. *)

val axis_step : t -> node list -> Xdb_xpath.Ast.step -> node list
(** Evaluate one location step over a context node-set: per context node
    an index range scan in document order (reversed to proximity order
    for reverse axes), predicates applied per the XPath positional rules,
    results merged in document order without duplicates.
    @raise Unsupported for predicates outside the relational subset or
    sibling/following/preceding steps from attribute contexts. *)

val select : t -> docid:int -> string -> node list
(** Parse and evaluate a path expression with the document row as context
    node.  Falls back to the (DOM) {!Xdb_xpath.Eval} interpreter over the
    reconstructed document when translation raises {!Unsupported} — the
    result is identical either way, in document order.
    @raise Xdb_xpath.Parser.Parse_error on malformed expressions;
    @raise Invalid_argument when the expression is not a node-set. *)

val serialize : t -> node list -> string list
(** Serialize each result node from the reconstructed tree (attributes
    render as [name="value"], which bare attribute nodes cannot via
    {!Xdb_xml.Serializer}) — the byte-comparison form of the differential
    tests. *)

val serialize_dom : Xdb_xml.Types.node list -> string list
(** The same rendering applied to DOM interpreter results — the other
    side of the byte comparison. *)

val explain_step : t -> Xdb_xpath.Ast.step -> string
(** The optimised access path a step compiles to ({!Algebra.explain}),
    or ["<empty>"] for statically empty steps — lets tests assert an
    [Index_scan] was chosen. *)
