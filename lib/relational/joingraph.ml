(** Join-graph isolation and set-oriented join planning.

    Three plan-level passes run before the bottom-up access-path rewrite
    of {!Optimizer}:

    - {b unnest} — [EXISTS]/[NOT EXISTS] filter conjuncts over a
      correlated single-table subplan become [Semi]/[Anti]
      {!Algebra.Hash_join}s: the correlating equality conjuncts turn
      into hash keys, local predicates stay on the build side, and the
      per-probe-row subquery re-execution disappears;
    - {b isolate} — a region of nested-loop cross products, correlated
      join predicates and filters is flattened into a canonical form
      (one lifted conjunction over a left-deep cross-product spine), so
      equi-join conjuncts buried in inner filters or [join_cond]s become
      visible to the planner as an explicit join graph;
    - {b order} — the canonical region is linearised greedily: start
      from the smallest relation, repeatedly attach the cheapest
      connected relation, choosing per edge between a hash join (either
      orientation), a nested loop and an index nested loop by
      {!Cost.plan_cost}; single-relation conjuncts are pushed onto their
      leaf (where the later access-path rewrite turns them into index
      scans) and residual conjuncts apply as soon as their relations are
      joined.

    Every pass is gated on collected statistics exactly like the PR 2
    cost-based rewrites: unless {e all} tables involved have been
    ANALYZEd the pass is the identity, so pre-ANALYZE plans are
    byte-unchanged.  Regions additionally require pairwise-disjoint bare
    column names (so reordered bindings resolve identically), direct
    column references of hash-compatible types on both sides of every
    equi edge (so bucket hashing agrees with {!Value.compare_sql}), and
    a connected join graph (so the greedy linearisation always
    completes). *)

module A = Algebra

(* ------------------------------------------------------------------ *)
(* Catalog helpers                                                     *)
(* ------------------------------------------------------------------ *)

let has_stats db table = Database.table_stats db table <> None

let columns_of db table =
  match Database.table_opt db table with
  | None -> []
  | Some t -> Table.column_names t

let column_type db table col =
  match Database.table_opt db table with
  | None -> None
  | Some t ->
      Array.to_list t.Table.columns
      |> List.find_map (fun c ->
             if c.Table.col_name = col then Some c.Table.col_type else None)

(* May [a] and [b] be hash-join key columns?  Bucket hashing must agree
   with {!Value.compare_sql}: numerics hash through their float image,
   strings as themselves — mixed numeric/string keys (which SQL equality
   coerces) and XML values are rejected. *)
let hash_compatible ta tb =
  match (ta, tb) with
  | Value.(Tint | Tfloat), Value.(Tint | Tfloat) -> true
  | Value.Tstr, Value.Tstr -> true
  | _ -> false

let indexed_columns db table =
  match Database.table_opt db table with
  | None -> []
  | Some t -> List.map (fun i -> i.Table.idx_column) t.Table.indexes

(* ------------------------------------------------------------------ *)
(* Reference analysis                                                  *)
(* ------------------------------------------------------------------ *)

(* Which region relations does [e] reference?  Bare columns attribute to
   the relation owning them (region column names are pairwise disjoint);
   names owned by no region relation are enclosing correlation bindings
   and act as constants.  Subquery bodies are opaque ([A.subplans_of_expr]
   screens them out before classification). *)
let rec expr_refs (rels : (string * string) list) db acc (e : A.expr) : string list =
  let add a acc = if List.mem a acc then acc else a :: acc in
  match e with
  | A.Col (Some a, _) -> if List.mem_assoc a rels then add a acc else acc
  | A.Col (None, c) -> (
      match
        List.find_opt (fun (_, table) -> List.mem c (columns_of db table)) rels
      with
      | Some (a, _) -> add a acc
      | None -> acc)
  | A.Const _ -> acc
  | A.Binop (_, x, y) -> expr_refs rels db (expr_refs rels db acc x) y
  | A.Not x | A.Is_null x | A.Xml_text x | A.Xml_comment x | A.Xml_pi (_, x) ->
      expr_refs rels db acc x
  | A.Fn (_, args) | A.Xml_concat args ->
      List.fold_left (expr_refs rels db) acc args
  | A.Case (whens, els) ->
      let acc =
        List.fold_left
          (fun acc (c, r) -> expr_refs rels db (expr_refs rels db acc c) r)
          acc whens
      in
      Option.fold ~none:acc ~some:(expr_refs rels db acc) els
  | A.Xml_element (_, attrs, kids) ->
      let acc = List.fold_left (fun acc (_, e) -> expr_refs rels db acc e) acc attrs in
      List.fold_left (expr_refs rels db) acc kids
  | A.Xml_forest fs -> List.fold_left (fun acc (_, e) -> expr_refs rels db acc e) acc fs
  | A.Scalar_subquery _ | A.Exists _ -> acc

let refs rels db e = expr_refs rels db [] e

(* A hash-key side must be a direct column reference of a region
   relation, so its type is statically known. *)
let key_col (rels : (string * string) list) db (e : A.expr) : (string * string) option =
  match e with
  | A.Col (Some a, c) -> if List.mem_assoc a rels then Some (a, c) else None
  | A.Col (None, c) -> (
      match
        List.find_opt (fun (_, table) -> List.mem c (columns_of db table)) rels
      with
      | Some (a, _) -> Some (a, c)
      | None -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Region detection                                                    *)
(* ------------------------------------------------------------------ *)

type edge = {
  e_a : string;  (** alias of one side *)
  e_ka : A.expr;  (** its key (a direct column reference) *)
  e_ca : string;  (** its key column name *)
  e_b : string;
  e_kb : A.expr;
  e_cb : string;
  e_cond : A.expr;  (** the original conjunct, kept for NL rechecks *)
}

type region = {
  rg_rels : (string * string) list;  (** (alias, table), original order *)
  rg_conjs : A.expr list;  (** every lifted conjunct, original order *)
  rg_locals : (string * A.expr list) list;  (** single-relation conjuncts *)
  rg_edges : edge list;
  rg_residual : A.expr list;  (** multi-relation non-equi conjuncts *)
}

(* Flatten a tree of nested loops and filters over sequential scans into
   relations plus lifted conjuncts; [None] if any node falls outside that
   grammar.  Relation order is the nested-loop driving order, so the
   canonical cross-product spine reproduces the original row order. *)
let rec gather db (p : A.plan) : ((string * string) list * A.expr list) option =
  match p with
  | A.Seq_scan { table; alias } ->
      Option.map (fun _ -> ([ (alias, table) ], [])) (Database.table_opt db table)
  | A.Filter (c, i) ->
      Option.map (fun (rs, cs) -> (rs, Cost.conjuncts c @ cs)) (gather db i)
  | A.Nested_loop { outer; inner; join_cond } -> (
      match (gather db outer, gather db inner) with
      | Some (ro, co), Some (ri, ci) ->
          let jc = match join_cond with None -> [] | Some c -> Cost.conjuncts c in
          Some (ro @ ri, co @ ci @ jc)
      | _ -> None)
  | _ -> None

let distinct xs =
  let rec go = function
    | [] -> true
    | x :: rest -> (not (List.mem x rest)) && go rest
  in
  go xs

(* All relations reachable from the first one over the equi edges? *)
let connected rels edges =
  match rels with
  | [] -> false
  | (a0, _) :: _ ->
      let reached = ref [ a0 ] in
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun e ->
            let touch x y =
              if List.mem x !reached && not (List.mem y !reached) then (
                reached := y :: !reached;
                changed := true)
            in
            touch e.e_a e.e_b;
            touch e.e_b e.e_a)
          edges
      done;
      List.length !reached = List.length rels

(** Detect a join region rooted at [p] with every gate satisfied. *)
let region_of db (p : A.plan) : region option =
  match gather db p with
  | None -> None
  | Some (rels, conjs) ->
      let aliases = List.map fst rels in
      let all_cols = List.concat_map (fun (_, t) -> columns_of db t) rels in
      if
        List.length rels < 2
        || (not (distinct aliases))
        || (not (distinct all_cols))
        || not (List.for_all (fun (_, t) -> has_stats db t) rels)
      then None
      else
        let locals = Hashtbl.create 8 in
        let edges = ref [] and residual = ref [] in
        List.iter
          (fun c ->
            let plain = A.subplans_of_expr c = [] in
            match (refs rels db c, c) with
            | [ a ], _ when plain ->
                Hashtbl.replace locals a
                  (c :: (Option.value (Hashtbl.find_opt locals a) ~default:[]))
            | _, A.Binop (A.Eq, x, y) when plain -> (
                match (key_col rels db x, key_col rels db y) with
                | Some (ax, cx), Some (ay, cy)
                  when ax <> ay && refs rels db x = [ ax ] && refs rels db y = [ ay ] -> (
                    match
                      ( column_type db (List.assoc ax rels) cx,
                        column_type db (List.assoc ay rels) cy )
                    with
                    | Some tx, Some ty when hash_compatible tx ty ->
                        edges :=
                          {
                            e_a = ax;
                            e_ka = x;
                            e_ca = cx;
                            e_b = ay;
                            e_kb = y;
                            e_cb = cy;
                            e_cond = c;
                          }
                          :: !edges
                    | _ -> residual := c :: !residual)
                | _ -> residual := c :: !residual)
            | _ -> residual := c :: !residual)
          conjs;
        let edges = List.rev !edges and residual = List.rev !residual in
        if edges = [] || not (connected rels edges) then None
        else
          Some
            {
              rg_rels = rels;
              rg_conjs = conjs;
              rg_locals =
                List.map
                  (fun (a, _) ->
                    (a, List.rev (Option.value (Hashtbl.find_opt locals a) ~default:[])))
                  rels;
              rg_edges = edges;
              rg_residual = residual;
            }

(* ------------------------------------------------------------------ *)
(* Plan traversal                                                      *)
(* ------------------------------------------------------------------ *)

let map_children f (p : A.plan) : A.plan =
  match p with
  | A.Filter (c, i) -> A.Filter (c, f i)
  | A.Project (fs, i) -> A.Project (fs, f i)
  | A.Nested_loop { outer; inner; join_cond } ->
      A.Nested_loop { outer = f outer; inner = f inner; join_cond }
  | A.Hash_join { outer; inner; keys; kind } ->
      A.Hash_join { outer = f outer; inner = f inner; keys; kind }
  | A.Aggregate a -> A.Aggregate { a with input = f a.input }
  | A.Sort (ks, i) -> A.Sort (ks, f i)
  | A.Limit (n, i) -> A.Limit (n, f i)
  | (A.Seq_scan _ | A.Index_scan _ | A.Values _) as leaf -> leaf

(* ------------------------------------------------------------------ *)
(* isolate: canonical region form                                      *)
(* ------------------------------------------------------------------ *)

(* One lifted conjunction over a left-deep cross-product spine in the
   original relation order — row order and name resolution are unchanged
   (left-deep and right-deep cross products enumerate the same
   lexicographic order, and region column names are disjoint). *)
let canonical (r : region) : A.plan =
  let leaf (alias, table) = A.Seq_scan { table; alias } in
  let spine =
    match r.rg_rels with
    | [] -> assert false
    | first :: rest ->
        List.fold_left
          (fun acc rel ->
            A.Nested_loop { outer = acc; inner = leaf rel; join_cond = None })
          (leaf first) rest
  in
  match r.rg_conjs with [] -> spine | cs -> A.Filter (Cost.conjoin cs, spine)

(** Flatten every gated join region into its canonical form. *)
let rec isolate db (p : A.plan) : A.plan =
  match region_of db p with
  | Some r -> canonical r
  | None -> map_children (isolate db) p

(* ------------------------------------------------------------------ *)
(* order: greedy cost-ordered linearisation                            *)
(* ------------------------------------------------------------------ *)

let linearize db (r : region) : A.plan =
  let leaf_plan alias =
    let table = List.assoc alias r.rg_rels in
    let scan = A.Seq_scan { table; alias } in
    match List.assoc alias r.rg_locals with
    | [] -> scan
    | cs -> A.Filter (Cost.conjoin cs, scan)
  in
  (* residual conjuncts fire as soon as every relation they mention is
     joined (refs outside the region act as constants and never block) *)
  let apply_residuals joined have pending =
    let ready, pending =
      List.partition (fun c -> List.for_all (fun a -> List.mem a have) (refs r.rg_rels db c)) pending
    in
    let joined =
      match ready with [] -> joined | cs -> A.Filter (Cost.conjoin cs, joined)
    in
    (joined, pending)
  in
  (* seed: the relation with the fewest estimated rows after its local
     predicates (ties break on original order) *)
  let seed =
    List.fold_left
      (fun (ba, br) (a, _) ->
        let rows = Cost.estimate_rows db (leaf_plan a) in
        if rows < br then (a, rows) else (ba, br))
      (let a0 = fst (List.hd r.rg_rels) in
       (a0, Cost.estimate_rows db (leaf_plan a0)))
      (List.tl r.rg_rels)
    |> fst
  in
  let joined, pending = apply_residuals (leaf_plan seed) [ seed ] r.rg_residual in
  let joined = ref joined and have = ref [ seed ] and pending = ref pending in
  let remaining = ref (List.filter (fun (a, _) -> a <> seed) r.rg_rels) in
  while !remaining <> [] do
    (* candidate steps: every not-yet-joined relation connected to the
       joined set by at least one equi edge *)
    let best = ref None in
    List.iter
      (fun (alias, table) ->
        let es =
          List.filter_map
            (fun e ->
              (* orient each edge as (joined-side key, candidate-side key) *)
              if e.e_a = alias && List.mem e.e_b !have then
                Some (e.e_kb, e.e_ka, e.e_ca, e.e_cond)
              else if e.e_b = alias && List.mem e.e_a !have then
                Some (e.e_ka, e.e_kb, e.e_cb, e.e_cond)
              else None)
            r.rg_edges
        in
        if es <> [] then (
          let lf = leaf_plan alias in
          let keys = List.map (fun (jk, rk, _, _) -> (jk, rk)) es in
          let cond = Cost.conjoin (List.map (fun (_, _, _, c) -> c) es) in
          let indexed = indexed_columns db table in
          let index_nl =
            List.filter_map
              (fun (jk, _, rcol, _) ->
                if List.mem rcol indexed then
                  let probe =
                    A.Index_scan
                      { table; alias; index_column = rcol; lo = A.Incl jk; hi = A.Incl jk }
                  in
                  let inner =
                    match List.assoc alias r.rg_locals with
                    | [] -> probe
                    | cs -> A.Filter (Cost.conjoin cs, probe)
                  in
                  Some (A.Nested_loop { outer = !joined; inner; join_cond = Some cond })
                else None)
              es
          in
          let options =
            [
              A.Hash_join { outer = !joined; inner = lf; keys; kind = A.Inner };
              A.Hash_join
                {
                  outer = lf;
                  inner = !joined;
                  keys = List.map (fun (jk, rk) -> (rk, jk)) keys;
                  kind = A.Inner;
                };
              A.Nested_loop { outer = !joined; inner = lf; join_cond = Some cond };
            ]
            @ index_nl
          in
          List.iter
            (fun p ->
              let c = Cost.plan_cost db p in
              match !best with
              | Some (_, _, bc) when bc <= c -> ()
              | _ -> best := Some (alias, p, c))
            options))
      !remaining;
    match !best with
    | None ->
        (* unreachable: the gate requires a connected graph *)
        remaining := []
    | Some (alias, p, _) ->
        have := alias :: !have;
        remaining := List.filter (fun (a, _) -> a <> alias) !remaining;
        let j, pd = apply_residuals p !have !pending in
        joined := j;
        pending := pd
  done;
  (match !pending with
  | [] -> ()
  | cs -> joined := A.Filter (Cost.conjoin cs, !joined));
  !joined

(** Replace every gated join region with its greedy linearisation. *)
let rec order db (p : A.plan) : A.plan =
  match region_of db p with
  | Some r -> linearize db r
  | None -> map_children (order db) p

(* ------------------------------------------------------------------ *)
(* unnest: EXISTS / NOT EXISTS → Semi / Anti hash join                 *)
(* ------------------------------------------------------------------ *)

(* The relations a plan's output rows bind — the probe side's visible
   scans (projections and aggregates replace bindings; semi/anti joins
   pass probe rows through). *)
let rec bound_rels db (p : A.plan) : (string * string) list =
  match p with
  | A.Seq_scan { table; alias } | A.Index_scan { table; alias; _ } -> [ (alias, table) ]
  | A.Filter (_, i) | A.Sort (_, i) | A.Limit (_, i) -> bound_rels db i
  | A.Nested_loop { outer; inner; _ }
  | A.Hash_join { outer; inner; kind = A.Inner | A.Left_outer; _ } ->
      bound_rels db inner @ bound_rels db outer
  | A.Hash_join { outer; kind = A.Semi | A.Anti; _ } -> bound_rels db outer
  | A.Project _ | A.Aggregate _ | A.Values _ -> []

(* Attempt to turn one [EXISTS (σ(pc) scan)] conjunct over [input] into a
   Semi/Anti hash join.  Returns the join plus conjuncts hoisted out of
   the subquery (Semi only: ∃x.(P ∧ B(x)) ≡ P ∧ ∃x.B(x) when P is
   independent of x). *)
let try_unnest db (input : A.plan) (sub : A.plan) (kind : A.join_kind) :
    (A.plan * A.expr list) option =
  let sub_parts =
    match sub with
    | A.Seq_scan { table; alias } -> Some (table, alias, [])
    | A.Filter (pc, A.Seq_scan { table; alias }) -> Some (table, alias, Cost.conjuncts pc)
    | _ -> None
  in
  match sub_parts with
  | None -> None
  | Some (stable, salias, pcs) -> (
      let probe_rels = bound_rels db input in
      if
        pcs = []
        || (not (has_stats db stable))
        || probe_rels = []
        || (not (List.for_all (fun (_, t) -> has_stats db t) probe_rels))
        || List.mem_assoc salias probe_rels
      then None
      else
        let srel = [ (salias, stable) ] in
        let refs_sub e = refs srel db e <> [] in
        (* classify the subquery's conjuncts *)
        let rec classify keys locals hoisted = function
          | [] -> if keys = [] then None else Some (List.rev keys, List.rev locals, List.rev hoisted)
          | c :: rest ->
              let plain = A.subplans_of_expr c = [] in
              if not (refs_sub c) then
                (* references no subquery column *)
                if plain && kind = A.Semi then classify keys locals (c :: hoisted) rest
                else None
              else
                let as_edge =
                  match c with
                  | A.Binop (A.Eq, x, y) when plain -> (
                      let pick sside oside =
                        (* sub side must be a direct sub column; other side
                           must not touch the sub relation and must be a
                           direct probe column of compatible type *)
                        match (key_col srel db sside, key_col probe_rels db oside) with
                        | Some (_, sc), Some (oa, oc) when not (refs_sub oside) -> (
                            match
                              ( column_type db stable sc,
                                column_type db (List.assoc oa probe_rels) oc )
                            with
                            | Some ts, Some tp when hash_compatible ts tp ->
                                Some (oside, sside)
                            | _ -> None)
                        | _ -> None
                      in
                      match pick x y with Some _ as r -> r | None -> pick y x)
                  | _ -> None
                in
                match as_edge with
                | Some key -> classify (key :: keys) locals hoisted rest
                | None ->
                    (* stays on the build side only if it references the
                       subquery (and possibly enclosing constants) but no
                       probe relation *)
                    if plain && refs probe_rels db c = [] then
                      classify keys (c :: locals) hoisted rest
                    else None
        in
        match classify [] [] [] pcs with
        | None -> None
        | Some (keys, locals, hoisted) ->
            let build =
              let scan = A.Seq_scan { table = stable; alias = salias } in
              match locals with [] -> scan | cs -> A.Filter (Cost.conjoin cs, scan)
            in
            Some (A.Hash_join { outer = input; inner = build; keys; kind }, hoisted))

(** Rewrite [EXISTS]/[NOT EXISTS] filter conjuncts into Semi/Anti hash
    joins, bottom-up. *)
let rec unnest db (p : A.plan) : A.plan =
  let p = map_children (unnest db) p in
  match p with
  | A.Filter (cond, input) ->
      let step (input, residual) c =
        let attempt sub kind =
          match try_unnest db input sub kind with
          | Some (hj, hoisted) -> (hj, residual @ hoisted)
          | None -> (input, residual @ [ c ])
        in
        match c with
        | A.Exists sub -> attempt sub A.Semi
        | A.Not (A.Exists sub) -> attempt sub A.Anti
        | c -> (input, residual @ [ c ])
      in
      let input, residual = List.fold_left step (input, []) (Cost.conjuncts cond) in
      (match residual with [] -> input | cs -> A.Filter (Cost.conjoin cs, input))
  | p -> p
