(** Path/value index over a collection of XML documents (paper Figure 1 and
    §7.4: "CLOB or BLOB storage with path/value index, tree storage with
    path/value index").

    The index maps (rooted simple path, leaf string value) pairs to the
    documents containing such a leaf: text content indexes under
    [/a/b/leaf], attributes under [/a/b/@name].  It answers the
    document-selection half of a value predicate — which documents can
    contain a match — so only those need to be fetched/parsed and
    transformed. *)

module X = Xdb_xml.Types

type t = {
  entries : (string * string, int list ref) Hashtbl.t;  (** (path, value) → doc ids (reversed) *)
  mutable n_docs : int;
  mutable n_entries : int;
}

let create () = { entries = Hashtbl.create 1024; n_docs = 0; n_entries = 0 }

let add_entry t key docid =
  let inserted =
    match Hashtbl.find_opt t.entries key with
    | Some cell ->
        (* consecutive re-indexing of the same leaf in the same document is
           deduplicated — and must not count towards [n_entries] *)
        if match !cell with d :: _ -> d <> docid | [] -> true then begin
          cell := docid :: !cell;
          true
        end
        else false
    | None ->
        Hashtbl.add t.entries key (ref [ docid ]);
        true
  in
  if inserted then t.n_entries <- t.n_entries + 1

(** [index t docid doc] — index every text leaf and attribute of [doc]. *)
let index t docid (doc : X.node) =
  t.n_docs <- t.n_docs + 1;
  let rec go path n =
    match n.X.kind with
    | X.Document -> List.iter (go path) n.X.children
    | X.Element q ->
        let path = path ^ "/" ^ q.X.local in
        List.iter
          (fun a ->
            match a.X.kind with
            | X.Attribute (aq, v) -> add_entry t (path ^ "/@" ^ aq.X.local, v) docid
            | _ -> ())
          n.X.attributes;
        (* a text-only element indexes its string value under its path *)
        (match n.X.children with
        | [ { X.kind = X.Text s; _ } ] -> add_entry t (path, s) docid
        | _ -> ());
        List.iter (go path) n.X.children
    | X.Text _ | X.Comment _ | X.Pi _ | X.Attribute _ -> ()
  in
  go "" doc

(** [build docs] — index a numbered document collection. *)
let build (docs : (int * X.node) list) : t =
  let t = create () in
  List.iter (fun (docid, doc) -> index t docid doc) docs;
  t

(** [lookup t ~path ~value] — ids of documents with a leaf [path = value],
    in ascending id order. *)
let lookup t ~path ~value =
  match Hashtbl.find_opt t.entries (path, value) with
  | Some cell -> List.sort_uniq compare !cell
  | None -> []

let stats t = (t.n_docs, t.n_entries)
