(** Per-operator runtime statistics for the Volcano executor: one
    [op_stats] record per plan node (keyed by physical identity),
    accumulated by {!Exec.run_analyzed} and rendered by
    {!Optimizer.explain_analyze}. *)

type op_stats = {
  mutable loops : int;  (** times the operator was executed *)
  mutable rows : int;  (** total rows produced across all loops *)
  mutable btree_probes : int;  (** B-tree descents (index scans) *)
  mutable btree_nodes : int;  (** B-tree nodes visited during probes *)
  mutable heap_rows : int;  (** heap rows fetched (scan operators) *)
  mutable build_rows : int;  (** rows hashed into the build table (hash join) *)
  mutable probe_hits : int;  (** matches found while probing (hash join) *)
  mutable time_ms : float;  (** inclusive wall time, milliseconds *)
}

type entry = { id : int; label : string; node : Algebra.plan; op : op_stats }

type t

val create : Algebra.plan -> t
(** One entry per operator, pre-order, descending into correlated
    subqueries nested inside expressions. *)

val find : t -> Algebra.plan -> op_stats option
(** Stats of a node by physical identity; [None] for foreign nodes. *)

val entries : t -> entry list
(** All entries in pre-order (root first). *)

val merge_into : into:t -> t -> unit
(** Add a collector's per-operator counters into another, matching
    entries by id.  Both must come from the same plan shape (identical
    pre-order traversal) — how domain-parallel execution folds its
    per-domain collectors into one after the join. *)

val root_rows : t -> int
(** Rows produced by the root operator. *)

val rows_signature : t -> (string * int) list
(** [(label, actual rows)] per operator, pre-order — equal signatures
    mean two executions agreed on every per-operator actual row count. *)

val label_of_plan : Algebra.plan -> string
(** Short operator label ("IndexScan rows(id)", "Filter", …). *)

val annotation : op_stats -> string
(** One-line [actual=… loops=… time=…] rendering for EXPLAIN ANALYZE. *)

val to_json : t -> string
(** Stable JSON array of per-operator stats, pre-order. *)
