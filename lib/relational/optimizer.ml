(** Rule-based plan optimisation.

    Two rewrites carry the paper's performance story:

    - {b Index selection} — [Filter(col ⊕ const, Seq_scan t)] becomes an
      [Index_scan] when a B-tree exists on [col] (paper §2.1: "the standard
      relational optimizer can select the index on the sal column");
    - {b Filter merging / pushdown} — conjunctive predicates are split so
      each conjunct can find its own access path, and filters move below
      projections that do not compute their columns. *)

open Algebra

(* split a conjunction into conjuncts *)
let rec conjuncts = function
  | Binop (And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let conjoin = function
  | [] -> Const (Value.Int 1)
  | e :: rest -> List.fold_left (fun acc c -> Binop (And, acc, c)) e rest

(* is [e] a sargable comparison over a bare/base column of [alias]?
   returns (column, op, constant-side expr) *)
let sargable alias e =
  let col_of = function
    | Col (None, c) -> Some c
    | Col (Some a, c) when a = alias -> Some c
    | _ -> None
  in
  let rec is_const = function
    | Const _ -> true
    | Binop (_, a, b) -> is_const a && is_const b
    | Fn (_, args) -> List.for_all is_const args
    | Col (Some a, _) -> a <> alias (* outer correlation: constant per probe *)
    | _ -> false
  in
  match e with
  | Binop (((Eq | Lt | Leq | Gt | Geq) as op), lhs, rhs) -> (
      match (col_of lhs, is_const rhs, col_of rhs, is_const lhs) with
      | Some c, true, _, _ -> Some (c, op, rhs)
      | _, _, Some c, true ->
          let flipped =
            match op with Eq -> Eq | Lt -> Gt | Leq -> Geq | Gt -> Lt | Geq -> Leq | _ -> op
          in
          Some (c, flipped, lhs)
      | _ -> None)
  | _ -> None

let bounds_of op rhs =
  match op with
  | Eq -> (Incl rhs, Incl rhs)
  | Lt -> (Unbounded, Excl rhs)
  | Leq -> (Unbounded, Incl rhs)
  | Gt -> (Excl rhs, Unbounded)
  | Geq -> (Incl rhs, Unbounded)
  | _ -> (Unbounded, Unbounded)

(* System-R-style default selectivities *)
let eq_selectivity = 0.1
let range_selectivity = 1.0 /. 3.0
let default_selectivity = 0.25

let conjunct_selectivity = function
  | Binop (Eq, _, _) -> eq_selectivity
  | Binop ((Lt | Leq | Gt | Geq), _, _) -> range_selectivity
  | _ -> default_selectivity

(** [estimate_rows db plan] — coarse cardinality estimate used by EXPLAIN
    (System-R default selectivities: 1/10 for equality, 1/3 for ranges). *)
let rec estimate_rows db (plan : plan) : float =
  let table_size name =
    match Database.table_opt db name with
    | Some t -> float_of_int (max 1 (Table.size t))
    | None -> 1000.0
  in
  match plan with
  | Seq_scan { table; _ } -> table_size table
  | Index_scan { table; lo; hi; _ } ->
      let n = table_size table in
      let sel =
        match (lo, hi) with
        | Incl a, Incl b when a = b -> eq_selectivity
        | Unbounded, Unbounded -> 1.0
        | _ -> range_selectivity
      in
      Float.max 1.0 (n *. sel)
  | Filter (cond, input) ->
      let sel =
        List.fold_left (fun acc c -> acc *. conjunct_selectivity c) 1.0 (conjuncts cond)
      in
      Float.max 1.0 (estimate_rows db input *. sel)
  | Project (_, input) | Sort (_, input) -> estimate_rows db input
  | Limit (n, input) -> Float.min (float_of_int n) (estimate_rows db input)
  | Nested_loop { outer; inner; join_cond } ->
      let raw = estimate_rows db outer *. estimate_rows db inner in
      Float.max 1.0 (match join_cond with Some _ -> raw *. eq_selectivity | None -> raw)
  | Aggregate { group_by = []; _ } -> 1.0
  | Aggregate { input; _ } -> Float.max 1.0 (estimate_rows db input /. 4.0)
  | Values { rows; _ } -> float_of_int (List.length rows)

(** [optimize db plan] applies the rewrite rules bottom-up. *)
let rec optimize db plan =
  match plan with
  | Filter (cond, input) -> (
      let input = optimize db input in
      let cs = conjuncts cond in
      match input with
      | Seq_scan { table; alias } -> (
          let tbl = Database.table_opt db table in
          let indexed_cols =
            match tbl with
            | None -> []
            | Some t -> List.map (fun i -> i.Table.idx_column) t.Table.indexes
          in
          (* pick the first conjunct with an index *)
          let rec pick seen = function
            | [] -> None
            | c :: rest -> (
                match sargable alias c with
                | Some (col, op, rhs) when List.mem col indexed_cols ->
                    Some ((col, op, rhs), List.rev seen @ rest)
                | _ -> pick (c :: seen) rest)
          in
          match pick [] cs with
          | Some ((col, op, rhs), remaining) ->
              let lo, hi = bounds_of op rhs in
              let scan = Index_scan { table; alias; index_column = col; lo; hi } in
              if remaining = [] then scan else Filter (conjoin remaining, scan)
          | None -> Filter (cond, input))
      | Filter (inner_cond, deeper) ->
          optimize db (Filter (conjoin (cs @ conjuncts inner_cond), deeper))
      | _ -> Filter (cond, input))
  | Project (fields, input) -> Project (fields, optimize db input)
  | Nested_loop { outer; inner; join_cond } ->
      Nested_loop { outer = optimize db outer; inner = optimize db inner; join_cond }
  | Aggregate a -> Aggregate { a with input = optimize db a.input }
  | Sort (keys, input) -> Sort (keys, optimize db input)
  | Limit (n, input) -> Limit (n, optimize db input)
  | (Seq_scan _ | Index_scan _ | Values _) as leaf -> leaf

(** Recursively optimise plans nested inside expressions (correlated
    subqueries in publishing output). *)
let rec optimize_deep db plan =
  let plan = optimize db plan in
  let rec fix_expr e =
    match e with
    | Scalar_subquery p -> Scalar_subquery (optimize_deep db p)
    | Exists p -> Exists (optimize_deep db p)
    | Binop (op, a, b) -> Binop (op, fix_expr a, fix_expr b)
    | Not e -> Not (fix_expr e)
    | Is_null e -> Is_null (fix_expr e)
    | Fn (f, args) -> Fn (f, List.map fix_expr args)
    | Case (whens, els) ->
        Case (List.map (fun (c, r) -> (fix_expr c, fix_expr r)) whens, Option.map fix_expr els)
    | Xml_element (n, attrs, kids) ->
        Xml_element (n, List.map (fun (a, e) -> (a, fix_expr e)) attrs, List.map fix_expr kids)
    | Xml_forest fs -> Xml_forest (List.map (fun (n, e) -> (n, fix_expr e)) fs)
    | Xml_concat es -> Xml_concat (List.map fix_expr es)
    | Xml_text e -> Xml_text (fix_expr e)
    | Xml_comment e -> Xml_comment (fix_expr e)
    | Xml_pi (t, e) -> Xml_pi (t, fix_expr e)
    | (Const _ | Col _) as e -> e
  in
  let fix_agg = function
    | Xml_agg (e, order) -> Xml_agg (fix_expr e, List.map (fun (k, d) -> (fix_expr k, d)) order)
    | Count e -> Count (fix_expr e)
    | Sum e -> Sum (fix_expr e)
    | Min e -> Min (fix_expr e)
    | Max e -> Max (fix_expr e)
    | Avg e -> Avg (fix_expr e)
    | String_agg (e, s) -> String_agg (fix_expr e, s)
    | Count_star -> Count_star
  in
  match plan with
  | Project (fields, input) ->
      Project (List.map (fun (e, n) -> (fix_expr e, n)) fields, optimize_deep db input)
  | Filter (c, input) -> Filter (fix_expr c, optimize_deep db input)
  | Aggregate { group_by; aggs; input } ->
      Aggregate
        {
          group_by = List.map (fun (e, n) -> (fix_expr e, n)) group_by;
          aggs = List.map (fun (a, n) -> (fix_agg a, n)) aggs;
          input = optimize_deep db input;
        }
  | Nested_loop { outer; inner; join_cond } ->
      Nested_loop
        {
          outer = optimize_deep db outer;
          inner = optimize_deep db inner;
          join_cond = Option.map fix_expr join_cond;
        }
  | Sort (keys, input) ->
      Sort (List.map (fun (k, d) -> (fix_expr k, d)) keys, optimize_deep db input)
  | Limit (n, input) -> Limit (n, optimize_deep db input)
  | (Seq_scan _ | Index_scan _ | Values _) as leaf -> leaf

(** EXPLAIN with per-operator cardinality estimates appended. *)
let explain_with_estimates db plan =
  let base =
    Algebra.explain_annotated
      ~annot:(fun p -> Some (Printf.sprintf "est=%.0f" (estimate_rows db p)))
      plan
  in
  Printf.sprintf "-- estimated rows: %.0f\n%s" (estimate_rows db plan) base

(** EXPLAIN ANALYZE: estimated vs actual rows, loops, B-tree probe and heap
    row counts, and inclusive wall time per operator.  [stats] is the
    collector filled by {!Exec.run_analyzed} over the same plan tree. *)
let explain_analyze db plan (stats : Stats.t) =
  let annot p =
    let est = Printf.sprintf "est=%.0f" (estimate_rows db p) in
    match Stats.find stats p with
    | None -> Some est
    | Some s -> Some (est ^ " " ^ Stats.annotation s)
  in
  Printf.sprintf "-- actual rows: %d\n%s" (Stats.root_rows stats)
    (Algebra.explain_annotated ~annot plan)
