(** Cost-based plan optimisation.

    Rewrites carrying the paper's performance story:

    - {b Index selection} — [Filter(col ⊕ const, Seq_scan t)] becomes an
      [Index_scan] when a B-tree exists on [col] (paper §2.1: "the standard
      relational optimizer can select the index on the sal column").  With
      collected statistics the {e cheapest} access path wins by the {!Cost}
      model (most selective indexed conjunct, or the sequential scan when
      no probe pays off); without statistics the first indexed conjunct is
      taken, exactly as the rule-based optimizer did.
    - {b Filter merging / pushdown} — conjunctive predicates are split so
      each conjunct can find its own access path; filters move below
      projections (rename-aware) and limits move below projections.
    - {b Index nested-loop join} — an equi-join [join_cond] turns the inner
      [Seq_scan] into a correlated [Index_scan] probe when an index exists
      on the join column, with cost-based outer/inner ordering.  Applied
      only with collected statistics so pre-ANALYZE plans are unchanged. *)

open Algebra

let conjuncts = Cost.conjuncts
let conjoin = Cost.conjoin

(** Stats-aware cardinality estimate (System-R defaults when no stats). *)
let estimate_rows = Cost.estimate_rows

let has_stats db table = Database.table_stats db table <> None

let indexed_columns db table =
  match Database.table_opt db table with
  | None -> []
  | Some t -> List.map (fun i -> i.Table.idx_column) t.Table.indexes

(* every rewrite of [Filter (cs, Seq_scan)] into an index access path —
   one candidate per indexed sargable conjunct, residual filter on top.
   When one indexed column carries both a lower- and an upper-bound
   conjunct (the interval-containment predicates of shredded XML axes:
   [pre > c.pre ∧ pre < c.post]), a merged candidate scanning the closed
   two-sided range is emitted first, so the rule-based choice probes the
   interval instead of walking half the index with a residual filter. *)
let index_candidates db table alias cs =
  let indexed = List.sort_uniq compare (indexed_columns db table) in
  let bound_of col want c =
    match Cost.sargable alias c with
    | Some (col', op, rhs) when col' = col -> (
        match (want, op) with
        | `Lower, Gt -> Some (Excl rhs)
        | `Lower, Geq -> Some (Incl rhs)
        | `Upper, Lt -> Some (Excl rhs)
        | `Upper, Leq -> Some (Incl rhs)
        | _ -> None)
    | _ -> None
  in
  let merged =
    List.filter_map
      (fun col ->
        let pick want = List.find_opt (fun c -> bound_of col want c <> None) cs in
        match (pick `Lower, pick `Upper) with
        | Some lc, Some uc ->
            let lo = Option.get (bound_of col `Lower lc) in
            let hi = Option.get (bound_of col `Upper uc) in
            let scan = Index_scan { table; alias; index_column = col; lo; hi } in
            let remaining = List.filter (fun c -> c != lc && c != uc) cs in
            Some (if remaining = [] then scan else Filter (conjoin remaining, scan))
        | _ -> None)
      indexed
  in
  let rec go seen = function
    | [] -> []
    | c :: rest ->
        let tail = go (c :: seen) rest in
        (match Cost.sargable alias c with
        | Some (col, op, rhs) when List.mem col indexed ->
            let lo, hi = Cost.bounds_of op rhs in
            let scan = Index_scan { table; alias; index_column = col; lo; hi } in
            let remaining = List.rev seen @ rest in
            let plan = if remaining = [] then scan else Filter (conjoin remaining, scan) in
            plan :: tail
        | _ -> tail)
  in
  merged @ go [] cs

(* access path for [Filter (cond, Seq_scan)]: without stats the first
   indexed conjunct wins (rule-based); with stats the cheapest of every
   index candidate and the sequential scan wins *)
let choose_access_path db table alias cond input cs =
  match index_candidates db table alias cs with
  | [] -> Filter (cond, input)
  | first :: _ as candidates ->
      if not (has_stats db table) then first
      else
        let baseline = Filter (cond, input) in
        List.fold_left
          (fun (bp, bc) p ->
            let c = Cost.plan_cost db p in
            if c < bc then (p, c) else (bp, bc))
          (baseline, Cost.plan_cost db baseline)
          candidates
        |> fst

(* rename-aware pushdown of filter conjuncts below a projection: a
   conjunct moves when every bare column it references is a projected
   field whose defining expression is subplan-free (the definition is
   substituted, so computed columns push too).  Alias-qualified references
   resolve in outer scope above the projection — below it they could
   capture the scan's bindings — so conjuncts using them stay put. *)
let push_through_project fields cs =
  let field_expr n = List.find_map (fun (e, fn) -> if fn = n then Some e else None) fields in
  let rec rewrite e =
    match e with
    | Col (None, n) -> (
        match field_expr n with
        | Some fe when subplans_of_expr fe = [] -> Some fe
        | _ -> None)
    | Col (Some _, _) -> None
    | Const _ -> Some e
    | Binop (op, a, b) -> (
        match (rewrite a, rewrite b) with
        | Some a', Some b' -> Some (Binop (op, a', b'))
        | _ -> None)
    | Not a -> Option.map (fun a' -> Not a') (rewrite a)
    | Is_null a -> Option.map (fun a' -> Is_null a') (rewrite a)
    | Fn (f, args) ->
        let args' = List.filter_map rewrite args in
        if List.length args' = List.length args then Some (Fn (f, args')) else None
    | _ -> None
  in
  List.partition_map
    (fun c -> match rewrite c with Some c' -> Either.Left c' | None -> Either.Right c)
    cs

(* equi-join probe: turn the inner [Seq_scan] into a correlated
   [Index_scan] on an indexed equality conjunct of the join condition; the
   full condition is kept as a recheck above the probe *)
let index_nl_candidate db outer inner cond =
  match inner with
  | Seq_scan { table; alias } ->
      let indexed = indexed_columns db table in
      List.find_map
        (fun c ->
          match Cost.sargable alias c with
          | Some (col, Eq, rhs) when List.mem col indexed ->
              let probe =
                Index_scan { table; alias; index_column = col; lo = Incl rhs; hi = Incl rhs }
              in
              Some (Nested_loop { outer; inner = probe; join_cond = Some cond })
          | _ -> None)
        (conjuncts cond)
  | _ -> None

(* may [Nested_loop {outer; inner}] be reordered?  Both sides must be
   plain scans (no correlation possible) over distinct tables with
   disjoint bare column names, so the [irow @ orow] bindings resolve
   identically in either order *)
let swappable db o i =
  match (o, i) with
  | Seq_scan { table = t1; alias = a1 }, Seq_scan { table = t2; alias = a2 } -> (
      a1 <> a2 && t1 <> t2
      &&
      match (Database.table_opt db t1, Database.table_opt db t2) with
      | Some x, Some y ->
          let nx = Table.column_names x in
          List.for_all (fun c -> not (List.mem c nx)) (Table.column_names y)
      | _ -> false)
  | _ -> false

(* The bottom-up rewrite (access-path selection, filter merging and
   pushdown, index nested loop).  It runs {e after} the join-graph passes
   of {!Joingraph}, so single-relation conjuncts lifted out of a join
   region — and the interval-containment pairs among them — reach their
   leaf scans and become (two-sided) index range scans here. *)
let rec rewrite db plan =
  match plan with
  | Filter (cond, input) -> (
      let input = rewrite db input in
      let cs = conjuncts cond in
      match input with
      | Seq_scan { table; alias } -> choose_access_path db table alias cond input cs
      | Filter (inner_cond, deeper) ->
          rewrite db (Filter (conjoin (cs @ conjuncts inner_cond), deeper))
      | Project (fields, pinput) -> (
          match push_through_project fields cs with
          | [], _ -> Filter (cond, input)
          | pushed, residual ->
              let below = rewrite db (Filter (conjoin pushed, pinput)) in
              let proj = Project (fields, below) in
              if residual = [] then proj else Filter (conjoin residual, proj))
      | _ -> Filter (cond, input))
  | Project (fields, input) -> Project (fields, rewrite db input)
  | Nested_loop { outer; inner; join_cond } -> (
      let outer = rewrite db outer in
      let inner = rewrite db inner in
      let base = Nested_loop { outer; inner; join_cond } in
      match join_cond with
      | None -> base
      | Some cond ->
          (* cost-based choices (probe conversion, join order) only with
             collected statistics: pre-ANALYZE plans stay unchanged *)
          let stats_on p =
            match p with Seq_scan { table; _ } -> has_stats db table | _ -> false
          in
          let candidates =
            (if stats_on inner then Option.to_list (index_nl_candidate db outer inner cond)
             else [])
            @ (if swappable db outer inner && stats_on outer && stats_on inner then
                 Nested_loop { outer = inner; inner = outer; join_cond }
                 :: Option.to_list (index_nl_candidate db inner outer cond)
               else [])
          in
          if candidates = [] then base
          else
            List.fold_left
              (fun (bp, bc) p ->
                let c = Cost.plan_cost db p in
                if c < bc then (p, c) else (bp, bc))
              (base, Cost.plan_cost db base)
              candidates
            |> fst)
  | Hash_join { outer; inner; keys; kind } ->
      Hash_join { outer = rewrite db outer; inner = rewrite db inner; keys; kind }
  | Aggregate a -> Aggregate { a with input = rewrite db a.input }
  | Sort (keys, input) -> Sort (keys, rewrite db input)
  | Limit (n, input) -> (
      (* projection work is wasted on rows the limit discards: push the
         limit below the (1:1) projection *)
      let input = rewrite db input in
      match input with
      | Project (fields, pinput) -> Project (fields, rewrite db (Limit (n, pinput)))
      | _ -> Limit (n, input))
  | (Seq_scan _ | Index_scan _ | Values _) as leaf -> leaf

(** [optimize ?timer db plan] — the full single-level pipeline: the
    {!Joingraph} passes (subquery unnesting, join-region isolation,
    greedy join ordering — all stats-gated, identities before ANALYZE)
    followed by the bottom-up access-path {!rewrite}.  [timer] wraps
    each named pass for per-pass planning-time metrics. *)
let optimize ?timer db plan =
  let timed name f = match timer with Some t -> t name f | None -> f () in
  let plan = timed "opt_unnest" (fun () -> Joingraph.unnest db plan) in
  let plan = timed "opt_isolate" (fun () -> Joingraph.isolate db plan) in
  let plan = timed "opt_order" (fun () -> Joingraph.order db plan) in
  timed "opt_rewrite" (fun () -> rewrite db plan)

(** Recursively optimise plans nested inside expressions (correlated
    subqueries in publishing output). *)
let rec optimize_deep ?timer db plan =
  let plan = optimize ?timer db plan in
  let rec fix_expr e =
    match e with
    | Scalar_subquery p -> Scalar_subquery (optimize_deep ?timer db p)
    | Exists p -> Exists (optimize_deep ?timer db p)
    | Binop (op, a, b) -> Binop (op, fix_expr a, fix_expr b)
    | Not e -> Not (fix_expr e)
    | Is_null e -> Is_null (fix_expr e)
    | Fn (f, args) -> Fn (f, List.map fix_expr args)
    | Case (whens, els) ->
        Case (List.map (fun (c, r) -> (fix_expr c, fix_expr r)) whens, Option.map fix_expr els)
    | Xml_element (n, attrs, kids) ->
        Xml_element (n, List.map (fun (a, e) -> (a, fix_expr e)) attrs, List.map fix_expr kids)
    | Xml_forest fs -> Xml_forest (List.map (fun (n, e) -> (n, fix_expr e)) fs)
    | Xml_concat es -> Xml_concat (List.map fix_expr es)
    | Xml_text e -> Xml_text (fix_expr e)
    | Xml_comment e -> Xml_comment (fix_expr e)
    | Xml_pi (t, e) -> Xml_pi (t, fix_expr e)
    | (Const _ | Col _) as e -> e
  in
  let fix_agg = function
    | Xml_agg (e, order) -> Xml_agg (fix_expr e, List.map (fun (k, d) -> (fix_expr k, d)) order)
    | Count e -> Count (fix_expr e)
    | Sum e -> Sum (fix_expr e)
    | Min e -> Min (fix_expr e)
    | Max e -> Max (fix_expr e)
    | Avg e -> Avg (fix_expr e)
    | String_agg (e, s) -> String_agg (fix_expr e, s)
    | Count_star -> Count_star
  in
  match plan with
  | Project (fields, input) ->
      Project (List.map (fun (e, n) -> (fix_expr e, n)) fields, optimize_deep ?timer db input)
  | Filter (c, input) -> Filter (fix_expr c, optimize_deep ?timer db input)
  | Aggregate { group_by; aggs; input } ->
      Aggregate
        {
          group_by = List.map (fun (e, n) -> (fix_expr e, n)) group_by;
          aggs = List.map (fun (a, n) -> (fix_agg a, n)) aggs;
          input = optimize_deep ?timer db input;
        }
  | Nested_loop { outer; inner; join_cond } ->
      Nested_loop
        {
          outer = optimize_deep ?timer db outer;
          inner = optimize_deep ?timer db inner;
          join_cond = Option.map fix_expr join_cond;
        }
  | Hash_join { outer; inner; keys; kind } ->
      Hash_join
        {
          outer = optimize_deep ?timer db outer;
          inner = optimize_deep ?timer db inner;
          keys = List.map (fun (ok, ik) -> (fix_expr ok, fix_expr ik)) keys;
          kind;
        }
  | Sort (keys, input) ->
      Sort (List.map (fun (k, d) -> (fix_expr k, d)) keys, optimize_deep ?timer db input)
  | Limit (n, input) -> Limit (n, optimize_deep ?timer db input)
  | (Seq_scan _ | Index_scan _ | Values _) as leaf -> leaf

(** EXPLAIN with per-operator cardinality estimates appended. *)
let explain_with_estimates db plan =
  let base =
    Algebra.explain_annotated
      ~annot:(fun p -> Some (Printf.sprintf "est=%.0f" (estimate_rows db p)))
      plan
  in
  Printf.sprintf "-- estimated rows: %.0f\n%s" (estimate_rows db plan) base

(** EXPLAIN ANALYZE: estimated vs actual rows, loops, B-tree probe and heap
    row counts, and inclusive wall time per operator.  [stats] is the
    collector filled by {!Exec.run_analyzed} over the same plan tree. *)
let explain_analyze db plan (stats : Stats.t) =
  let annot p =
    let est = Printf.sprintf "est=%.0f" (estimate_rows db p) in
    match Stats.find stats p with
    | None -> Some est
    | Some s -> Some (est ^ " " ^ Stats.annotation s)
  in
  Printf.sprintf "-- actual rows: %d\n%s" (Stats.root_rows stats)
    (Algebra.explain_annotated ~annot plan)
