(** In-memory B-tree index: {!Value.t} keys to row-id lists.

    Classic order-[b] B-tree with node splitting on insert.  Duplicate keys
    accumulate their row ids in the leaf entry.  Supports point lookup and
    inclusive/exclusive range scans — the access paths the optimiser uses
    for sargable predicates (paper §2.1: "uses B-tree index to compute the
    predicate"). *)

type key = Value.t

let branching = 32 (* max keys per node *)

type node =
  | Leaf of { mutable keys : key array; mutable rows : int list array }
  | Internal of { mutable keys : key array; mutable kids : node array }

type t = {
  mutable root : node;
  mutable count : int;  (** number of (key, row) insertions *)
  probes : int Atomic.t;  (** find/range invocations — observability *)
  node_visits : int Atomic.t;  (** nodes touched while probing *)
}
(* Concurrency contract: [root]/[count] mutate only during load-time
   [insert]; after a table's indexes are built the tree structure is
   immutable and probed concurrently by executor domains.  The probe
   counters are the one piece of state mutated on the read path, so they
   are atomics — a plain int would be a data race under domain-parallel
   execution (and would drop increments). *)

let create () =
  {
    root = Leaf { keys = [||]; rows = [||] };
    count = 0;
    probes = Atomic.make 0;
    node_visits = Atomic.make 0;
  }

let cmp = Value.compare_key

(* position of the first key >= k (lower bound) *)
let lower_bound keys k =
  let lo = ref 0 and hi = ref (Array.length keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp keys.(mid) k < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

type split = No_split | Split of key * node

let array_insert a i x =
  let n = Array.length a in
  Array.init (n + 1) (fun j -> if j < i then a.(j) else if j = i then x else a.(j - 1))

let rec insert_node node k row : split =
  match node with
  | Leaf l ->
      let i = lower_bound l.keys k in
      if i < Array.length l.keys && cmp l.keys.(i) k = 0 then (
        l.rows.(i) <- row :: l.rows.(i);
        No_split)
      else (
        l.keys <- array_insert l.keys i k;
        l.rows <- array_insert l.rows i [ row ];
        if Array.length l.keys <= branching then No_split
        else
          let mid = Array.length l.keys / 2 in
          let rkeys = Array.sub l.keys mid (Array.length l.keys - mid) in
          let rrows = Array.sub l.rows mid (Array.length l.rows - mid) in
          l.keys <- Array.sub l.keys 0 mid;
          l.rows <- Array.sub l.rows 0 mid;
          Split (rkeys.(0), Leaf { keys = rkeys; rows = rrows }))
  | Internal n ->
      let i = lower_bound n.keys k in
      let i = if i < Array.length n.keys && cmp n.keys.(i) k <= 0 then i + 1 else i in
      (match insert_node n.kids.(i) k row with
      | No_split -> No_split
      | Split (sep, right) ->
          n.keys <- array_insert n.keys i sep;
          n.kids <- array_insert n.kids (i + 1) right;
          if Array.length n.kids <= branching then No_split
          else
            let mid = Array.length n.keys / 2 in
            let sep = n.keys.(mid) in
            let rkeys = Array.sub n.keys (mid + 1) (Array.length n.keys - mid - 1) in
            let rkids = Array.sub n.kids (mid + 1) (Array.length n.kids - mid - 1) in
            n.keys <- Array.sub n.keys 0 mid;
            n.kids <- Array.sub n.kids 0 (mid + 1);
            Split (sep, Internal { keys = rkeys; kids = rkids }))

let insert t k row =
  t.count <- t.count + 1;
  match insert_node t.root k row with
  | No_split -> ()
  | Split (sep, right) -> t.root <- Internal { keys = [| sep |]; kids = [| t.root; right |] }

let array_remove a i =
  let n = Array.length a in
  Array.init (n - 1) (fun j -> if j < i then a.(j) else a.(j + 1))

(* drop one occurrence of [rid] from the list, preserving order *)
let rec list_remove_one rid = function
  | [] -> []
  | r :: rest -> if r = rid then rest else r :: list_remove_one rid rest

(** [remove t k rid] — delete one [(k, rid)] entry; [true] iff it was
    present.  A key whose rid list empties is dropped from its leaf, but
    nodes are never rebalanced or merged: UPDATE/DELETE volumes are tiny
    next to the bulk-loaded tree, so an underfull (even empty) leaf is
    harmless — every traversal tolerates it — and DELETE-heavy paths
    rebuild their indexes wholesale ({!Table.delete}).  Mutation, like
    {!insert}, requires exclusive access (the engine's writer side). *)
let remove t k rid =
  let rec go n =
    match n with
    | Leaf l ->
        let i = lower_bound l.keys k in
        if i < Array.length l.keys && cmp l.keys.(i) k = 0 && List.mem rid l.rows.(i)
        then (
          (match list_remove_one rid l.rows.(i) with
          | [] ->
              l.keys <- array_remove l.keys i;
              l.rows <- array_remove l.rows i
          | rows -> l.rows.(i) <- rows);
          true)
        else false
    | Internal n ->
        let i = lower_bound n.keys k in
        let i = if i < Array.length n.keys && cmp n.keys.(i) k <= 0 then i + 1 else i in
        go n.kids.(i)
  in
  let removed = go t.root in
  if removed then t.count <- t.count - 1;
  removed

(** [find t k] — row ids with key exactly [k], in insertion order. *)
let find t k =
  Atomic.incr t.probes;
  let rec go n =
    Atomic.incr t.node_visits;
    match n with
    | Leaf l ->
        let i = lower_bound l.keys k in
        if i < Array.length l.keys && cmp l.keys.(i) k = 0 then List.rev l.rows.(i) else []
    | Internal n ->
        let i = lower_bound n.keys k in
        let i = if i < Array.length n.keys && cmp n.keys.(i) k <= 0 then i + 1 else i in
        go n.kids.(i)
  in
  go t.root

type bound = Unbounded | Inclusive of key | Exclusive of key

let above_lo lo k =
  match lo with
  | Unbounded -> true
  | Inclusive b -> cmp k b >= 0
  | Exclusive b -> cmp k b > 0

let below_hi hi k =
  match hi with
  | Unbounded -> true
  | Inclusive b -> cmp k b <= 0
  | Exclusive b -> cmp k b < 0

(** [range t ~lo ~hi] — (key, row-id) pairs in key order within the bounds.
    Row ids under one key come back in insertion order. *)
let range t ~lo ~hi =
  Atomic.incr t.probes;
  let out = ref [] in
  let rec go n =
    Atomic.incr t.node_visits;
    match n with
    | Leaf l ->
        Array.iteri
          (fun i k ->
            if above_lo lo k && below_hi hi k then
              List.iter (fun r -> out := (k, r) :: !out) (List.rev l.rows.(i)))
          l.keys
    | Internal n ->
        (* visit only children that can intersect the range *)
        Array.iteri
          (fun i kid ->
            let lo_ok =
              i = Array.length n.keys
              ||
              match lo with
              | Unbounded -> true
              | Inclusive b | Exclusive b -> cmp n.keys.(i) b >= 0
            in
            let hi_ok =
              i = 0
              ||
              match hi with
              | Unbounded -> true
              | Inclusive b | Exclusive b -> cmp n.keys.(i - 1) b <= 0
            in
            if lo_ok && hi_ok then go kid)
          n.kids
  in
  go t.root;
  List.rev !out

(** [range_rids t ~lo ~hi] — row ids only, in the same order {!range}
    yields them, collected without the intermediate (key, rid) list.
    This is the batch executor's index-scan cursor: the rid array is
    filled in one traversal and then chunked into row batches. *)
let range_rids t ~lo ~hi =
  Atomic.incr t.probes;
  let buf = ref (Array.make 64 0) in
  let n = ref 0 in
  let push rid =
    if !n = Array.length !buf then (
      let bigger = Array.make (2 * !n) 0 in
      Array.blit !buf 0 bigger 0 !n;
      buf := bigger);
    !buf.(!n) <- rid;
    incr n
  in
  let rec go node =
    Atomic.incr t.node_visits;
    match node with
    | Leaf l ->
        Array.iteri
          (fun i k ->
            if above_lo lo k && below_hi hi k then
              List.iter push (List.rev l.rows.(i)))
          l.keys
    | Internal nd ->
        Array.iteri
          (fun i kid ->
            let lo_ok =
              i = Array.length nd.keys
              ||
              match lo with
              | Unbounded -> true
              | Inclusive b | Exclusive b -> cmp nd.keys.(i) b >= 0
            in
            let hi_ok =
              i = 0
              ||
              match hi with
              | Unbounded -> true
              | Inclusive b | Exclusive b -> cmp nd.keys.(i - 1) b <= 0
            in
            if lo_ok && hi_ok then go kid)
          nd.kids
  in
  go t.root;
  Array.sub !buf 0 !n

(** [iter_range t ~lo ~hi f] — apply [f key rid] to each entry within the
    bounds, in {!range} order, materialising nothing.  The structural-join
    passes of [Shred] drive their staircase interval sweeps and merged
    point probes through this, so a batch step never allocates an
    intermediate rid list — and a caller whose key encodes the row's
    position (the packed [dpre]/[dnk] keys) can resolve the row without
    fetching it.  Counts as one probe. *)
let iter_range t ~lo ~hi f =
  Atomic.incr t.probes;
  let rec go node =
    Atomic.incr t.node_visits;
    match node with
    | Leaf l ->
        Array.iteri
          (fun i k ->
            if above_lo lo k && below_hi hi k then
              List.iter (f k) (List.rev l.rows.(i)))
          l.keys
    | Internal nd ->
        Array.iteri
          (fun i kid ->
            let lo_ok =
              i = Array.length nd.keys
              ||
              match lo with
              | Unbounded -> true
              | Inclusive b | Exclusive b -> cmp nd.keys.(i) b >= 0
            in
            let hi_ok =
              i = 0
              ||
              match hi with
              | Unbounded -> true
              | Inclusive b | Exclusive b -> cmp nd.keys.(i - 1) b <= 0
            in
            if lo_ok && hi_ok then go kid)
          nd.kids
  in
  go t.root

(** All entries in key order. *)
let to_list t = range t ~lo:Unbounded ~hi:Unbounded

let size t = t.count
let probes t = Atomic.get t.probes
let node_visits t = Atomic.get t.node_visits

let reset_counters t =
  Atomic.set t.probes 0;
  Atomic.set t.node_visits 0

(** Tree height, for tests and EXPLAIN cost estimates. *)
let height t =
  let rec go = function Leaf _ -> 1 | Internal n -> 1 + go n.kids.(0) in
  go t.root

(** Structural invariant check (tests): keys sorted in every node, separator
    keys bound subtrees, all leaves at equal depth. *)
let check_invariants t =
  let rec sorted keys =
    let ok = ref true in
    for i = 0 to Array.length keys - 2 do
      if cmp keys.(i) keys.(i + 1) >= 0 then ok := false
    done;
    !ok
  and go lo hi = function
    | Leaf l ->
        sorted l.keys && Array.for_all (fun k -> above_lo lo k && below_hi hi k) l.keys
    | Internal n ->
        sorted n.keys
        && Array.length n.kids = Array.length n.keys + 1
        && Array.for_all (fun k -> above_lo lo k && below_hi hi k) n.keys
        && Array.length n.kids > 0
        &&
        let ok = ref true in
        Array.iteri
          (fun i kid ->
            let lo' = if i = 0 then lo else Inclusive n.keys.(i - 1) in
            let hi' = if i = Array.length n.keys then hi else Exclusive n.keys.(i) in
            (* separators may equal the first key of the right subtree *)
            let hi' = match hi' with Exclusive k -> Inclusive k | x -> x in
            if not (go lo' hi' kid) then ok := false)
          n.kids;
        !ok
  in
  let rec depth = function Leaf _ -> 1 | Internal n -> 1 + depth n.kids.(0) in
  let rec uniform d = function
    | Leaf _ -> d = 1
    | Internal n -> Array.for_all (uniform (d - 1)) n.kids
  in
  go Unbounded Unbounded t.root && uniform (depth t.root) t.root
