(** Join-graph isolation and set-oriented join planning: three
    stats-gated plan passes run by {!Optimizer.optimize} before the
    bottom-up access-path rewrite.  Without collected statistics every
    pass is the identity, so pre-ANALYZE plans are byte-unchanged. *)

val unnest : Database.t -> Algebra.plan -> Algebra.plan
(** Rewrite [EXISTS]/[NOT EXISTS] filter conjuncts whose subquery is a
    (filtered) single-table scan correlated only through hash-compatible
    equality conjuncts into [Semi]/[Anti] {!Algebra.Hash_join}s.  Local
    subquery predicates stay on the build side; [Semi] conjuncts
    independent of the subquery hoist out ([∃x.(P ∧ B(x)) ≡ P ∧ ∃x.B(x)]);
    anything else leaves the conjunct untouched. *)

val isolate : Database.t -> Algebra.plan -> Algebra.plan
(** Flatten each gated region of nested loops and filters over
    sequential scans into canonical form: one lifted conjunction over a
    left-deep cross-product spine in the original relation order (same
    row order, same name resolution).  Gates: ≥ 2 relations, all tables
    ANALYZEd, distinct aliases, pairwise-disjoint bare column names,
    ≥ 1 equi edge with direct column keys of hash-compatible types, and
    a connected join graph. *)

val order : Database.t -> Algebra.plan -> Algebra.plan
(** Linearise each gated region greedily: seed with the smallest
    relation, then repeatedly attach the connected relation whose
    cheapest step — hash join in either orientation, nested loop, or
    index nested loop on an indexed join column — minimises
    {!Cost.plan_cost}.  Single-relation conjuncts are pushed onto their
    leaves; residual conjuncts apply as soon as their relations are
    joined. *)
