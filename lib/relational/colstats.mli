(** Per-column statistics (NDV, min/max, null fraction, most-common values,
    equi-depth histogram) computed by {!Analyze} and consumed by the {!Cost}
    model for selectivity estimation. *)

type t = {
  n_sampled : int;  (** values examined, including NULLs *)
  null_frac : float;
  ndv : int;  (** distinct non-null values in the sample *)
  min_v : Value.t option;
  max_v : Value.t option;
  mcvs : (Value.t * float) list;
      (** most-common values with frequency as a fraction of all sampled
          rows, most frequent first *)
  bounds : Value.t array;
      (** equi-depth histogram boundaries over non-MCV values, ascending in
          {!Value.compare_key} order; [[||]] when the sample is too small *)
}

type table_stats = {
  row_count : int;  (** exact table cardinality at ANALYZE time *)
  version : int;  (** catalog stats version stamped at ANALYZE time *)
  columns : (string * t) list;
}

val empty : t

val compute : ?n_buckets:int -> ?n_mcvs:int -> Value.t list -> t
(** Build statistics from a (sampled) list of column values.  XMLType
    values count as NULL.  Defaults: 32 histogram buckets, 8 MCV slots. *)

val selectivity_eq : t -> Value.t -> float
(** Fraction of all rows equal to the given constant: MCV frequency when
    the value is an MCV, otherwise uniform over the remaining NDV. *)

val selectivity_eq_unknown : t -> float
(** Average equality selectivity for a probe value unknown at plan time
    (correlated index probes, equi-joins): (1 - null_frac) / ndv. *)

val selectivity_lt : t -> Value.t -> float
(** Fraction of all rows strictly below the constant (MCVs + histogram
    with linear interpolation inside a bucket). *)

val selectivity_le : t -> Value.t -> float

val describe : t -> string
(** One-line summary for debugging and tests. *)
