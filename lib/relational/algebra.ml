(** Relational algebra: scalar expressions (including the SQL/XML publishing
    functions) and physical plan operators (Volcano-style).

    Plans are built programmatically — by hand in examples/tests and by the
    XQuery→SQL/XML rewriter (paper §2.1, Tables 7/11).  Column references
    are name-based ([alias.column] or bare [column]) and resolved against
    the runtime row environment. *)

type order_dir = Asc | Desc

type expr =
  | Const of Value.t
  | Col of string option * string  (** optional table alias, column name *)
  | Binop of binop * expr * expr
  | Not of expr
  | Is_null of expr
  | Fn of string * expr list
      (** scalar functions: concat, upper, lower, abs, mod, length *)
  | Case of (expr * expr) list * expr option
  | Xml_element of string * (string * expr) list * expr list
      (** [XMLElement(name, XMLAttributes(...), children...)] *)
  | Xml_forest of (string * expr) list  (** [XMLForest(expr AS name, ...)] *)
  | Xml_concat of expr list
  | Xml_text of expr  (** text node from a scalar *)
  | Xml_comment of expr
  | Xml_pi of string * expr
  | Scalar_subquery of plan
      (** correlated scalar subquery: first column of the first row *)
  | Exists of plan

and binop =
  | Add
  | Sub
  | Mul
  | Div
  | Fdiv  (** float division — XPath/XQuery [div] semantics *)
  | Mod
  | Eq
  | Neq
  | Lt
  | Leq
  | Gt
  | Geq
  | And
  | Or
  | Concat  (** SQL [||] *)

and agg =
  | Count_star
  | Count of expr
  | Sum of expr
  | Min of expr
  | Max of expr
  | Avg of expr
  | Xml_agg of expr * (expr * order_dir) list  (** [XMLAgg(e ORDER BY ...)] *)
  | String_agg of expr * string

and bound = Unbounded | Incl of expr | Excl of expr

and join_kind = Inner | Left_outer | Semi | Anti

and plan =
  | Seq_scan of { table : string; alias : string }
  | Index_scan of {
      table : string;
      alias : string;
      index_column : string;
      lo : bound;
      hi : bound;
    }  (** B-tree range/point access path *)
  | Filter of expr * plan
  | Project of (expr * string) list * plan
  | Nested_loop of { outer : plan; inner : plan; join_cond : expr option }
  | Hash_join of {
      outer : plan;  (** probe side, streamed in batches *)
      inner : plan;  (** build side, hashed once per open *)
      keys : (expr * expr) list;  (** (probe-side key, build-side key) pairs *)
      kind : join_kind;
    }
      (** Set-oriented equi-join.  [Inner]/[Left_outer] rows are the build
          row's own columns followed by the probe row ([irow @ orow] — the
          {!Nested_loop} binding order); [Semi]/[Anti] emit probe rows
          only.  NULL keys never match (SQL three-valued equality), so an
          [Anti] join keeps NULL-key probe rows — NOT EXISTS semantics. *)
  | Aggregate of {
      group_by : (expr * string) list;
      aggs : (agg * string) list;
      input : plan;
    }
  | Sort of (expr * order_dir) list * plan
  | Limit of int * plan
  | Values of { cols : string list; rows : Value.t list list }

(* ------------------------------------------------------------------ *)
(* Pretty-printing: SQL-like EXPLAIN text used to reproduce the shape  *)
(* of paper Tables 7 and 11.                                           *)
(* ------------------------------------------------------------------ *)

let binop_sql = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Fdiv -> "/"
  | Mod -> "%"
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Leq -> "<="
  | Gt -> ">"
  | Geq -> ">="
  | And -> "AND"
  | Or -> "OR"
  | Concat -> "||"

let rec expr_sql = function
  | Const v -> Value.show v
  | Col (None, c) -> c
  | Col (Some a, c) -> a ^ "." ^ c
  | Binop (op, a, b) -> Printf.sprintf "%s %s %s" (expr_sql a) (binop_sql op) (expr_sql b)
  | Not e -> "NOT (" ^ expr_sql e ^ ")"
  | Is_null e -> expr_sql e ^ " IS NULL"
  | Fn (f, args) -> f ^ "(" ^ String.concat ", " (List.map expr_sql args) ^ ")"
  | Case (whens, els) ->
      "CASE "
      ^ String.concat " "
          (List.map (fun (c, r) -> "WHEN " ^ expr_sql c ^ " THEN " ^ expr_sql r) whens)
      ^ (match els with None -> "" | Some e -> " ELSE " ^ expr_sql e)
      ^ " END"
  | Xml_element (name, attrs, kids) ->
      let attrs_sql =
        if attrs = [] then ""
        else
          ", XMLAttributes("
          ^ String.concat ", " (List.map (fun (n, e) -> expr_sql e ^ " AS \"" ^ n ^ "\"") attrs)
          ^ ")"
      in
      let kids_sql = if kids = [] then "" else ", " ^ String.concat ", " (List.map expr_sql kids) in
      Printf.sprintf "XMLElement(\"%s\"%s%s)" name attrs_sql kids_sql
  | Xml_forest fields ->
      "XMLForest("
      ^ String.concat ", " (List.map (fun (n, e) -> expr_sql e ^ " AS \"" ^ n ^ "\"") fields)
      ^ ")"
  | Xml_concat es -> "XMLConcat(" ^ String.concat ", " (List.map expr_sql es) ^ ")"
  | Xml_text e -> "XMLText(" ^ expr_sql e ^ ")"
  | Xml_comment e -> "XMLComment(" ^ expr_sql e ^ ")"
  | Xml_pi (t, e) -> Printf.sprintf "XMLPI(\"%s\", %s)" t (expr_sql e)
  | Scalar_subquery p -> "(" ^ plan_sql p ^ ")"
  | Exists p -> "EXISTS (" ^ plan_sql p ^ ")"

and agg_sql = function
  | Count_star -> "COUNT(*)"
  | Count e -> "COUNT(" ^ expr_sql e ^ ")"
  | Sum e -> "SUM(" ^ expr_sql e ^ ")"
  | Min e -> "MIN(" ^ expr_sql e ^ ")"
  | Max e -> "MAX(" ^ expr_sql e ^ ")"
  | Avg e -> "AVG(" ^ expr_sql e ^ ")"
  | Xml_agg (e, []) -> "XMLAgg(" ^ expr_sql e ^ ")"
  | Xml_agg (e, order) ->
      "XMLAgg(" ^ expr_sql e ^ " ORDER BY "
      ^ String.concat ", "
          (List.map
             (fun (k, d) -> expr_sql k ^ match d with Asc -> "" | Desc -> " DESC")
             order)
      ^ ")"
  | String_agg (e, sep) -> Printf.sprintf "STRING_AGG(%s, '%s')" (expr_sql e) sep

and join_kind_sql = function
  | Inner -> ""
  | Left_outer -> "LEFT OUTER "
  | Semi -> "SEMI "
  | Anti -> "ANTI "

and hash_keys_sql keys =
  String.concat " AND "
    (List.map (fun (ok, ik) -> expr_sql ok ^ " = " ^ expr_sql ik) keys)

and plan_sql = function
  | Seq_scan { table; alias } ->
      if table = alias then "SELECT * FROM " ^ table
      else Printf.sprintf "SELECT * FROM %s %s" table alias
  | Index_scan { table; alias; index_column; lo; hi } ->
      let b = function
        | Unbounded -> "*"
        | Incl e -> "[" ^ expr_sql e
        | Excl e -> "(" ^ expr_sql e
      in
      Printf.sprintf "INDEX SCAN %s %s ON %s RANGE %s .. %s" table alias index_column (b lo)
        (b hi)
  | Filter (cond, input) -> plan_sql input ^ " WHERE " ^ expr_sql cond
  | Project (fields, input) ->
      "SELECT "
      ^ String.concat ", " (List.map (fun (e, n) -> expr_sql e ^ " AS " ^ n) fields)
      ^ " FROM (" ^ plan_sql input ^ ")"
  | Nested_loop { outer; inner; join_cond } ->
      Printf.sprintf "(%s) JOIN (%s)%s" (plan_sql outer) (plan_sql inner)
        (match join_cond with None -> "" | Some c -> " ON " ^ expr_sql c)
  | Hash_join { outer; inner; keys; kind } ->
      Printf.sprintf "(%s) %sHASH JOIN (%s) ON %s" (plan_sql outer) (join_kind_sql kind)
        (plan_sql inner) (hash_keys_sql keys)
  | Aggregate { group_by; aggs; input } ->
      "SELECT "
      ^ String.concat ", "
          (List.map (fun (e, n) -> expr_sql e ^ " AS " ^ n) group_by
          @ List.map (fun (a, n) -> agg_sql a ^ " AS " ^ n) aggs)
      ^ " FROM (" ^ plan_sql input ^ ")"
      ^
      if group_by = [] then ""
      else " GROUP BY " ^ String.concat ", " (List.map (fun (e, _) -> expr_sql e) group_by)
  | Sort (keys, input) ->
      plan_sql input ^ " ORDER BY "
      ^ String.concat ", "
          (List.map (fun (k, d) -> expr_sql k ^ match d with Asc -> "" | Desc -> " DESC") keys)
  | Limit (n, input) -> plan_sql input ^ Printf.sprintf " LIMIT %d" n
  | Values { cols; rows } ->
      Printf.sprintf "VALUES[%s](%d rows)" (String.concat "," cols) (List.length rows)

let join_kind_name = function
  | Inner -> "inner"
  | Left_outer -> "left_outer"
  | Semi -> "semi"
  | Anti -> "anti"

(** Plans nested in an expression (correlated subqueries). *)
let rec subplans_of_expr = function
  | Scalar_subquery p | Exists p -> [ p ]
  | Binop (_, a, b) -> subplans_of_expr a @ subplans_of_expr b
  | Not e | Is_null e | Xml_text e | Xml_comment e | Xml_pi (_, e) -> subplans_of_expr e
  | Fn (_, args) | Xml_concat args -> List.concat_map subplans_of_expr args
  | Case (whens, els) ->
      List.concat_map (fun (c, r) -> subplans_of_expr c @ subplans_of_expr r) whens
      @ (match els with None -> [] | Some e -> subplans_of_expr e)
  | Xml_element (_, attrs, kids) ->
      List.concat_map (fun (_, e) -> subplans_of_expr e) attrs
      @ List.concat_map subplans_of_expr kids
  | Xml_forest fs -> List.concat_map (fun (_, e) -> subplans_of_expr e) fs
  | Const _ | Col _ -> []

let subplans_of_agg = function
  | Xml_agg (e, order) ->
      subplans_of_expr e @ List.concat_map (fun (k, _) -> subplans_of_expr k) order
  | Count e | Sum e | Min e | Max e | Avg e | String_agg (e, _) -> subplans_of_expr e
  | Count_star -> []

(** Base tables a plan reads — scans of the plan tree and of every
    correlated subplan, deduplicated in first-visit order.  The result
    cache records the data versions of exactly these tables against a
    cached transform result, so a write to any of them invalidates it. *)
let tables_of plan =
  let acc = ref [] in
  let add t = if not (List.mem t !acc) then acc := t :: !acc in
  let rec go_expr e = List.iter go (subplans_of_expr e)
  and go_bound = function Unbounded -> () | Incl e | Excl e -> go_expr e
  and go_fields fs = List.iter (fun (e, _) -> go_expr e) fs
  and go = function
    | Seq_scan { table; _ } -> add table
    | Index_scan { table; lo; hi; _ } ->
        add table;
        go_bound lo;
        go_bound hi
    | Filter (e, p) ->
        go_expr e;
        go p
    | Project (fs, p) ->
        go_fields fs;
        go p
    | Nested_loop { outer; inner; join_cond } ->
        go outer;
        go inner;
        Option.iter go_expr join_cond
    | Hash_join { outer; inner; keys; _ } ->
        go outer;
        go inner;
        List.iter
          (fun (a, b) ->
            go_expr a;
            go_expr b)
          keys
    | Aggregate { group_by; aggs; input } ->
        go_fields group_by;
        List.iter (fun (a, _) -> List.iter go (subplans_of_agg a)) aggs;
        go input
    | Sort (keys, p) ->
        List.iter (fun (e, _) -> go_expr e) keys;
        go p
    | Limit (_, p) -> go p
    | Values _ -> ()
  in
  go plan;
  List.rev !acc

(** Tree-shaped EXPLAIN output, descending into correlated subqueries.
    [annot] supplies a per-node suffix (cardinality estimates, runtime
    stats); it is appended to the operator's own line between parens. *)
let explain_annotated ?(annot = fun (_ : plan) -> None) plan =
  let buf = Buffer.create 256 in
  let rec subs depth es =
    List.iter
      (fun e ->
        List.iter
          (fun p ->
            Buffer.add_string buf (String.make (2 * depth) ' ' ^ "SubPlan\n");
            go (depth + 1) p)
          (subplans_of_expr e))
      es
  and go depth p =
    let pad = String.make (2 * depth) ' ' in
    let line s =
      let suffix = match annot p with None -> "" | Some a -> "  (" ^ a ^ ")" in
      Buffer.add_string buf (pad ^ s ^ suffix ^ "\n")
    in
    match p with
    | Seq_scan { table; alias } -> line (Printf.sprintf "SeqScan %s as %s" table alias)
    | Index_scan { table; alias; index_column; lo; hi } ->
        let b = function
          | Unbounded -> "-inf/+inf"
          | Incl e -> "=" ^ expr_sql e
          | Excl e -> ">" ^ expr_sql e
        in
        line
          (Printf.sprintf "IndexScan %s as %s using idx(%s) lo:%s hi:%s" table alias index_column
             (b lo) (b hi))
    | Filter (c, i) ->
        line ("Filter " ^ expr_sql c);
        subs (depth + 1) [ c ];
        go (depth + 1) i
    | Project (fs, i) ->
        line ("Project " ^ String.concat ", " (List.map (fun (_, n) -> n) fs));
        subs (depth + 1) (List.map fst fs);
        go (depth + 1) i
    | Nested_loop { outer; inner; join_cond } ->
        line
          ("NestedLoop"
          ^ match join_cond with None -> "" | Some c -> " on " ^ expr_sql c);
        go (depth + 1) outer;
        go (depth + 1) inner
    | Hash_join { outer; inner; keys; kind } ->
        line (Printf.sprintf "HashJoin(%s, %s)" (join_kind_name kind) (hash_keys_sql keys));
        subs (depth + 1) (List.concat_map (fun (ok, ik) -> [ ok; ik ]) keys);
        go (depth + 1) outer;
        go (depth + 1) inner
    | Aggregate { group_by; aggs; input } ->
        line
          (Printf.sprintf "Aggregate groups:[%s] aggs:[%s]"
             (String.concat "," (List.map snd group_by))
             (String.concat "," (List.map snd aggs)));
        List.iter
          (fun (a, _) ->
            List.iter
              (fun p ->
                Buffer.add_string buf (String.make (2 * (depth + 1)) ' ' ^ "SubPlan\n");
                go (depth + 2) p)
              (subplans_of_agg a))
          aggs;
        go (depth + 1) input
    | Sort (keys, i) ->
        line (Printf.sprintf "Sort (%d keys)" (List.length keys));
        go (depth + 1) i
    | Limit (n, i) ->
        line (Printf.sprintf "Limit %d" n);
        go (depth + 1) i
    | Values { rows; _ } -> line (Printf.sprintf "Values (%d rows)" (List.length rows))
  in
  go 0 plan;
  Buffer.contents buf

let explain plan = explain_annotated plan

(* convenient constructors *)
let col c = Col (None, c)
let qcol a c = Col (Some a, c)
let const_int i = Const (Value.Int i)
let const_str s = Const (Value.Str s)
let ( =. ) a b = Binop (Eq, a, b)
let ( >. ) a b = Binop (Gt, a, b)
let ( <. ) a b = Binop (Lt, a, b)
let ( &&. ) a b = Binop (And, a, b)
