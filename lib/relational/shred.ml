(* Interval-encoded XML shredding: node-per-row storage with pre/post
   numbering, packed composite keys, and location steps compiled once per
   shape into correlated plans the optimizer answers with B-tree range
   scans.  See shred.mli for the encoding contract. *)

module X = Xdb_xml.Types
module XA = Xdb_xpath.Ast
module AR = Xdb_xpath.Axis_range
module XE = Xdb_xpath.Eval
module XV = Xdb_xpath.Value
module A = Algebra

exception Shred_error of string
exception Unsupported of string

let err fmt = Printf.ksprintf (fun m -> raise (Shred_error m)) fmt

type node = {
  docid : int;
  pre : int;
  post : int;
  parent : int;
  level : int;
  kind : string;
  name : string;
  prefix : string;
  uri : string;
  value : string;
}

(* ------------------------------------------------------------------ *)
(* Packed keys                                                         *)
(* ------------------------------------------------------------------ *)

let pre_bits = 24
let name_bits = 12
let max_ticks = 1 lsl pre_bits
let max_names = 1 lsl name_bits
let pack_dpre docid pre = (docid lsl pre_bits) lor pre
let pack_dnk docid nid pre = (((docid lsl name_bits) lor nid) lsl pre_bits) lor pre

(* ------------------------------------------------------------------ *)
(* Handle                                                              *)
(* ------------------------------------------------------------------ *)

type plan_key = {
  pk_axis : XA.axis;
  pk_kinds : AR.kind_filter;
  pk_named : bool;
  pk_dnk : bool;
}

(* a reconstructed document: the DOM tree plus both directions of the
   pre ↔ node correspondence (DOM orders are stamped with [pre], so a DOM
   interpreter result maps back to its row through [order]) *)
type rebuilt = {
  dom : X.node;
  rows : node array;  (** pre order *)
  row_ix : int array;  (** pre → index into [rows], -1 for post-only ticks *)
  by_pre : X.node option array;
}

type t = {
  db : Database.t;
  tbl : Table.t;
  names_tbl : Table.t;
  names : (string, int) Hashtbl.t;
  mutable next_nid : int;
  mutable next_docid : int;
  doc_meta : (int, node) Hashtbl.t;
  plans : (plan_key, Exec.compiled) Hashtbl.t;
  rebuilt_cache : (int, rebuilt) Hashtbl.t;
  rows_cache : (int, node array * int array) Hashtbl.t;
      (** pre-ordered decoded rows + pre → index, per docid — the batch
          evaluator's working set, built {e without} the DOM *)
  outer_layout : Layout.t;
  mutable n_batch : int;
  mutable n_rel : int;
  mutable n_fallback : int;
}

let scan_alias = "s"
let outer_alias = "c"

(* per-context-node correlation row; plans reference these via [c.*] *)
let outer_cols =
  [| "pre"; "post"; "parent"; "dpre"; "dpost"; "dparent"; "doclo"; "dochi"; "nklo"; "nkhi"; "name" |]

let int_col n = { Table.col_name = n; col_type = Value.Tint }
let str_col n = { Table.col_name = n; col_type = Value.Tstr }

let columns =
  [
    int_col "docid"; int_col "pre"; int_col "post"; int_col "parent"; int_col "level";
    str_col "kind"; str_col "name"; str_col "prefix"; str_col "uri"; str_col "value";
    int_col "dpre"; int_col "dparent"; int_col "dnk";
  ]

let create ?(table = "xmlnodes") db =
  let tbl = Database.create_table db table columns in
  ignore (Table.create_index tbl ~name:(table ^ "_dpre_idx") ~column:"dpre");
  ignore (Table.create_index tbl ~name:(table ^ "_dparent_idx") ~column:"dparent");
  ignore (Table.create_index tbl ~name:(table ^ "_dnk_idx") ~column:"dnk");
  let names_tbl =
    Database.create_table db (table ^ "_names") [ int_col "nid"; str_col "name" ]
  in
  let t =
    {
      db;
      tbl;
      names_tbl;
      names = Hashtbl.create 64;
      next_nid = 0;
      next_docid = 1;
      doc_meta = Hashtbl.create 16;
      plans = Hashtbl.create 32;
      rebuilt_cache = Hashtbl.create 16;
      rows_cache = Hashtbl.create 16;
      outer_layout = Layout.of_columns ~alias:outer_alias outer_cols;
      n_batch = 0;
      n_rel = 0;
      n_fallback = 0;
    }
  in
  (* nid 0 is the unnamed kinds' slot, so packed [dnk] keys cluster them *)
  Hashtbl.add t.names "" 0;
  t.next_nid <- 1;
  Table.insert_values names_tbl [ Value.Int 0; Value.Str "" ];
  t

let table_name t = t.tbl.Table.tbl_name

let intern t name =
  match Hashtbl.find_opt t.names name with
  | Some nid -> nid
  | None ->
      let nid = t.next_nid in
      if nid >= max_names then
        err "name dictionary overflow: more than %d distinct names" max_names;
      t.next_nid <- nid + 1;
      Hashtbl.add t.names name nid;
      Table.insert_values t.names_tbl [ Value.Int nid; Value.Str name ];
      nid

(* ------------------------------------------------------------------ *)
(* Shredding                                                           *)
(* ------------------------------------------------------------------ *)

(* mutable only during the numbering walk: [post] is patched on exit *)
type pending = {
  p_pre : int;
  mutable p_post : int;
  p_parent : int;
  p_level : int;
  p_kind : string;
  p_name : string;
  p_prefix : string;
  p_uri : string;
  p_value : string;
}

let shred t (doc : X.node) : int =
  let docid = t.next_docid in
  let acc = ref [] (* reversed pre order *) in
  let counter = ref 0 in
  let tick () =
    let v = !counter in
    incr counter;
    v
  in
  let emit ~pre ~parent ~level ~kind ~name ~prefix ~uri ~value =
    let p =
      { p_pre = pre; p_post = pre; p_parent = parent; p_level = level; p_kind = kind;
        p_name = name; p_prefix = prefix; p_uri = uri; p_value = value }
    in
    acc := p :: !acc;
    p
  in
  (* post = pre when the node consumed no further ticks (a leaf), a fresh
     exit tick otherwise — attributes and children both count, so an
     attribute's interval always nests strictly inside its owner's *)
  let close p = p.p_post <- (if !counter = p.p_pre + 1 then p.p_pre else tick ()) in
  let rec go parent level (n : X.node) =
    match n.X.kind with
    | X.Document ->
        let pre = tick () in
        let p =
          emit ~pre ~parent ~level ~kind:"doc" ~name:"" ~prefix:"" ~uri:""
            ~value:(X.string_value n)
        in
        List.iter (go pre (level + 1)) n.X.children;
        close p
    | X.Element q ->
        let pre = tick () in
        let p =
          emit ~pre ~parent ~level ~kind:"elem" ~name:q.X.local ~prefix:q.X.prefix
            ~uri:q.X.uri ~value:(X.string_value n)
        in
        List.iter (go pre (level + 1)) n.X.attributes;
        List.iter (go pre (level + 1)) n.X.children;
        close p
    | X.Attribute (q, v) ->
        let pre = tick () in
        ignore
          (emit ~pre ~parent ~level ~kind:"attr" ~name:q.X.local ~prefix:q.X.prefix
             ~uri:q.X.uri ~value:v)
    | X.Text s ->
        ignore (emit ~pre:(tick ()) ~parent ~level ~kind:"text" ~name:"" ~prefix:"" ~uri:"" ~value:s)
    | X.Comment s ->
        ignore
          (emit ~pre:(tick ()) ~parent ~level ~kind:"comment" ~name:"" ~prefix:"" ~uri:"" ~value:s)
    | X.Pi (target, data) ->
        ignore
          (emit ~pre:(tick ()) ~parent ~level ~kind:"pi" ~name:target ~prefix:"" ~uri:""
             ~value:data)
  in
  (if X.is_document doc then go (-1) 0 doc
   else begin
     (* synthesize the document row so absolute paths anchor uniformly *)
     let pre = tick () in
     let p =
       emit ~pre ~parent:(-1) ~level:0 ~kind:"doc" ~name:"" ~prefix:"" ~uri:""
         ~value:(X.string_value doc)
     in
     go pre 1 doc;
     close p
   end);
  if !counter > max_ticks then
    err "document too large to shred: %d counter ticks exceed 2^%d" !counter pre_bits;
  let pending = List.rev !acc in
  List.iter
    (fun p ->
      let nid = intern t p.p_name in
      ignore
        (Table.insert t.tbl
           [|
             Value.Int docid; Value.Int p.p_pre; Value.Int p.p_post; Value.Int p.p_parent;
             Value.Int p.p_level; Value.Str p.p_kind; Value.Str p.p_name;
             Value.Str p.p_prefix; Value.Str p.p_uri; Value.Str p.p_value;
             Value.Int (pack_dpre docid p.p_pre);
             Value.Int (if p.p_parent < 0 then -1 else pack_dpre docid p.p_parent);
             Value.Int (pack_dnk docid nid p.p_pre);
           |]))
    pending;
  let doc_row =
    match pending with
    | p :: _ ->
        { docid; pre = p.p_pre; post = p.p_post; parent = p.p_parent; level = p.p_level;
          kind = p.p_kind; name = p.p_name; prefix = p.p_prefix; uri = p.p_uri;
          value = p.p_value }
    | [] -> err "empty document"
  in
  Hashtbl.replace t.doc_meta docid doc_row;
  t.next_docid <- docid + 1;
  docid

let doc_ids t = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.doc_meta [])

let doc_node t docid =
  match Hashtbl.find_opt t.doc_meta docid with
  | Some d -> d
  | None -> err "unknown docid %d" docid

let stats t = (Hashtbl.length t.doc_meta, Table.size t.tbl)

type counter_totals = { batch_steps : int; rel_steps : int; dom_fallbacks : int }

let counters t =
  { batch_steps = t.n_batch; rel_steps = t.n_rel; dom_fallbacks = t.n_fallback }

(* ------------------------------------------------------------------ *)
(* Row decoding                                                        *)
(* ------------------------------------------------------------------ *)

let slot_int a i =
  match a.(i) with Value.Int n -> n | _ -> err "malformed shred row (int slot %d)" i

let slot_str a i =
  match a.(i) with Value.Str s -> s | _ -> err "malformed shred row (str slot %d)" i

(* scan rows keep the table's column order in slots 0..9 (outer
   correlation values, if appended, sit past them) *)
let node_of_slots a =
  {
    docid = slot_int a 0; pre = slot_int a 1; post = slot_int a 2; parent = slot_int a 3;
    level = slot_int a 4; kind = slot_str a 5; name = slot_str a 6; prefix = slot_str a 7;
    uri = slot_str a 8; value = slot_str a 9;
  }

(** Tables the store owns inside its database: DML against either one
    goes through the engine's shred-invalidation hook. *)
let tables t = [ t.tbl.Table.tbl_name; t.names_tbl.Table.tbl_name ]

(** [invalidate_caches t] — resynchronise the in-memory working state
    with the node table after direct DML against it: the reconstruction
    and batch-row caches are dropped (they hold decoded copies of rows
    that may have changed or moved), the docid directory is re-derived
    from the document rows now present, and the name dictionary is
    re-read from the names table.  Compiled step plans survive — they
    depend on the table's shape, not its rows. *)
let invalidate_caches t =
  Hashtbl.reset t.rebuilt_cache;
  Hashtbl.reset t.rows_cache;
  Hashtbl.reset t.doc_meta;
  Table.iter
    (fun _ row ->
      match row.(5) with
      | Value.Str "doc" ->
          let r = node_of_slots row in
          Hashtbl.replace t.doc_meta r.docid r
      | _ -> ())
    t.tbl;
  let maxdoc = Hashtbl.fold (fun k _ m -> max k m) t.doc_meta 0 in
  t.next_docid <- max t.next_docid (maxdoc + 1);
  Hashtbl.reset t.names;
  t.next_nid <- 1;
  Table.iter
    (fun _ row ->
      match (row.(0), row.(1)) with
      | Value.Int nid, Value.Str name ->
          Hashtbl.replace t.names name nid;
          if nid >= t.next_nid then t.next_nid <- nid + 1
      | _ -> ())
    t.names_tbl

(* ------------------------------------------------------------------ *)
(* Reconstruction                                                      *)
(* ------------------------------------------------------------------ *)

let doc_rows t docid =
  let doc = doc_node t docid in
  match Table.find_index t.tbl "dpre" with
  | None -> err "missing dpre index on %s" (table_name t)
  | Some idx ->
      let lo = Btree.Inclusive (Value.Int (pack_dpre docid 0)) in
      let hi = Btree.Inclusive (Value.Int (pack_dpre docid doc.post)) in
      let rids = Btree.range_rids idx.Table.tree ~lo ~hi in
      Array.map (fun rid -> node_of_slots (Table.unsafe_row t.tbl rid)) rids

let kind_of_row r =
  match r.kind with
  | "doc" -> X.Document
  | "elem" -> X.Element (X.qname ~prefix:r.prefix ~uri:r.uri r.name)
  | "attr" -> X.Attribute (X.qname ~prefix:r.prefix ~uri:r.uri r.name, r.value)
  | "text" -> X.Text r.value
  | "comment" -> X.Comment r.value
  | "pi" -> X.Pi (r.name, r.value)
  | k -> err "unknown node kind %S" k

let rebuild t docid : rebuilt =
  let rows = doc_rows t docid in
  let n = Array.length rows in
  if n = 0 then err "no rows for docid %d" docid;
  let span = rows.(0).post + 1 in
  let row_ix = Array.make span (-1) in
  Array.iteri (fun i r -> row_ix.(r.pre) <- i) rows;
  let by_pre = Array.make span None in
  let i = ref 0 in
  let rec build () : X.node =
    let r = rows.(!i) in
    incr i;
    let xn = X.make (kind_of_row r) in
    xn.X.order <- r.pre;
    by_pre.(r.pre) <- Some xn;
    (match r.kind with
    | "doc" | "elem" ->
        let attrs = ref [] in
        while !i < n && rows.(!i).kind = "attr" && rows.(!i).parent = r.pre do
          let a = rows.(!i) in
          incr i;
          let an = X.make (kind_of_row a) in
          an.X.order <- a.pre;
          an.X.parent <- Some xn;
          by_pre.(a.pre) <- Some an;
          attrs := an :: !attrs
        done;
        xn.X.attributes <- List.rev !attrs;
        let kids = ref [] in
        while !i < n && rows.(!i).pre < r.post do
          let k = build () in
          k.X.parent <- Some xn;
          kids := k :: !kids
        done;
        xn.X.children <- List.rev !kids
    | _ -> ());
    xn
  in
  let dom = build () in
  { dom; rows; row_ix; by_pre }

let rebuilt t docid =
  match Hashtbl.find_opt t.rebuilt_cache docid with
  | Some rb -> rb
  | None ->
      let rb = rebuild t docid in
      Hashtbl.add t.rebuilt_cache docid rb;
      rb

let reconstruct t docid = (rebuilt t docid).dom

(* the batch evaluator's working set: decoded rows in pre order plus the
   pre → index map, without building the DOM (reusing the rebuilt cache's
   arrays when a reconstruction already paid for them) *)
let doc_rows_ix t docid =
  match Hashtbl.find_opt t.rows_cache docid with
  | Some v -> v
  | None ->
      let rows, row_ix =
        match Hashtbl.find_opt t.rebuilt_cache docid with
        | Some rb -> (rb.rows, rb.row_ix)
        | None ->
            let rows = doc_rows t docid in
            if Array.length rows = 0 then err "no rows for docid %d" docid;
            let row_ix = Array.make (rows.(0).post + 1) (-1) in
            Array.iteri (fun i r -> row_ix.(r.pre) <- i) rows;
            (rows, row_ix)
      in
      Hashtbl.add t.rows_cache docid (rows, row_ix);
      (rows, row_ix)

let row_by_pre t docid pre =
  let rows, row_ix = doc_rows_ix t docid in
  if pre < 0 || pre >= Array.length row_ix then None
  else
    let ix = row_ix.(pre) in
    if ix < 0 then None else Some rows.(ix)

let parent_row t (r : node) = if r.parent < 0 then None else row_by_pre t r.docid r.parent

(* direct children (attributes included) off the pre-ordered rows array:
   first owned row sits right after the owner, each sibling starts at the
   tick after the previous subtree's last — O(1) per child, no probe *)
let iter_owned t (c : node) (f : node -> unit) =
  if c.post > c.pre then begin
    let rows, row_ix = doc_rows_ix t c.docid in
    let rec go ix =
      if ix >= 0 && ix < Array.length rows then begin
        let r = rows.(ix) in
        if r.parent = c.pre then begin
          f r;
          let nxt = r.post + 1 in
          if nxt < Array.length row_ix then go row_ix.(nxt)
        end
      end
    in
    go (row_ix.(c.pre) + 1)
  end

let children t (c : node) =
  let acc = ref [] in
  iter_owned t c (fun r -> if r.kind <> "attr" then acc := r :: !acc);
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Step plans                                                          *)
(* ------------------------------------------------------------------ *)

let s_ c = A.qcol scan_alias c
let c_ c = A.qcol outer_alias c

let aop : AR.op -> A.binop = function
  | AR.Eq -> A.Eq
  | AR.Lt -> A.Lt
  | AR.Leq -> A.Leq
  | AR.Gt -> A.Gt
  | AR.Geq -> A.Geq

(* the packed image of a context anchor *)
let packed_anchor = function
  | AR.Ctx_pre -> "dpre"
  | AR.Ctx_post -> "dpost"
  | AR.Ctx_parent -> "dparent"

let plain_anchor = function
  | AR.Ctx_pre -> "pre"
  | AR.Ctx_post -> "post"
  | AR.Ctx_parent -> "parent"

(* name-tested descendants scan the [dnk] index: the name id is packed
   into the key, so the interval probe lands only on rows already
   carrying the right name *)
let use_dnk axis (spec : AR.spec) =
  spec.name <> None
  && (spec.kinds = AR.K_elem || spec.kinds = AR.K_attr)
  && match axis with XA.Descendant | XA.Descendant_or_self -> true | _ -> false

let build_plan t axis (spec : AR.spec) ~via_dnk =
  let conds =
    List.map
      (fun { AR.col; op; anchor } ->
        match col with
        | AR.Pre when via_dnk ->
            let rhs = match anchor with AR.Ctx_pre -> "nklo" | _ -> "nkhi" in
            A.Binop (aop op, s_ "dnk", c_ rhs)
        | AR.Pre -> A.Binop (aop op, s_ "dpre", c_ (packed_anchor anchor))
        | AR.Parent -> A.Binop (aop op, s_ "dparent", c_ (packed_anchor anchor))
        | AR.Post -> A.Binop (aop op, s_ "post", c_ (plain_anchor anchor)))
      spec.conds
  in
  (* close one-sided document-order ranges with the document's bounds so a
     range probe never leaks into neighbouring documents *)
  let has op_test col_test =
    List.exists (fun c -> col_test c.AR.col && op_test c.AR.op) spec.conds
  in
  let eq_confined =
    has (fun o -> o = AR.Eq) (fun c -> c = AR.Pre || c = AR.Parent)
  in
  let guards =
    if eq_confined || via_dnk then []
    else
      (if has (fun o -> o = AR.Gt || o = AR.Geq) (fun c -> c = AR.Pre) then []
       else [ A.Binop (A.Geq, s_ "dpre", c_ "doclo") ])
      @
      if has (fun o -> o = AR.Lt || o = AR.Leq) (fun c -> c = AR.Pre) then []
      else [ A.Binop (A.Leq, s_ "dpre", c_ "dochi") ]
  in
  let kind_conj =
    match spec.kinds with
    | AR.K_elem -> [ A.(s_ "kind" =. const_str "elem") ]
    | AR.K_attr -> [ A.(s_ "kind" =. const_str "attr") ]
    | AR.K_text -> [ A.(s_ "kind" =. const_str "text") ]
    | AR.K_comment -> [ A.(s_ "kind" =. const_str "comment") ]
    | AR.K_pi -> [ A.(s_ "kind" =. const_str "pi") ]
    | AR.K_non_attr -> [ A.Binop (A.Neq, s_ "kind", A.const_str "attr") ]
  in
  let name_conj =
    if spec.name <> None && not via_dnk then [ A.(s_ "name" =. c_ "name") ] else []
  in
  ignore axis;
  A.Filter
    ( Cost.conjoin (conds @ guards @ kind_conj @ name_conj),
      A.Seq_scan { table = table_name t; alias = scan_alias } )

let compiled_plan t axis (spec : AR.spec) ~via_dnk =
  let key =
    { pk_axis = axis; pk_kinds = spec.kinds; pk_named = spec.name <> None; pk_dnk = via_dnk }
  in
  match Hashtbl.find_opt t.plans key with
  | Some c -> c
  | None ->
      let plan = Optimizer.optimize t.db (build_plan t axis spec ~via_dnk) in
      let compiled = Exec.compile t.db ~outer:t.outer_layout plan in
      Hashtbl.add t.plans key compiled;
      compiled

let explain_step t (step : XA.step) =
  match AR.compile step.axis step.test with
  | None -> "<empty>"
  | Some spec ->
      let via_dnk = use_dnk step.axis spec in
      A.explain (Optimizer.optimize t.db (build_plan t step.axis spec ~via_dnk))

(* ------------------------------------------------------------------ *)
(* Step evaluation                                                     *)
(* ------------------------------------------------------------------ *)

let doc_order_cmp a b =
  let c = Int.compare a.docid b.docid in
  if c <> 0 then c else Int.compare a.pre b.pre

(* a single forward step from one context node arrives already sorted and
   distinct (B-tree rids come back in key = document order), so the common
   case is a linear scan that confirms order and allocates nothing *)
let doc_order_dedup rows =
  let rec strictly_sorted = function
    | a :: (b :: _ as rest) -> doc_order_cmp a b < 0 && strictly_sorted rest
    | _ -> true
  in
  if strictly_sorted rows then rows
  else
    let sorted = List.sort doc_order_cmp rows in
    let rec dedup = function
      | a :: (b :: _ as rest) when a.docid = b.docid && a.pre = b.pre -> dedup rest
      | a :: rest -> a :: dedup rest
      | [] -> []
    in
    dedup sorted

let collect_cursor cur =
  let acc = ref [] in
  let rec loop () =
    match cur () with
    | None -> ()
    | Some batch ->
        Array.iter (fun row -> acc := node_of_slots row :: !acc) batch;
        loop ()
  in
  loop ();
  List.rev !acc

let kind_matches (kf : AR.kind_filter) (r : node) =
  match kf with
  | AR.K_elem -> r.kind = "elem"
  | AR.K_attr -> r.kind = "attr"
  | AR.K_text -> r.kind = "text"
  | AR.K_comment -> r.kind = "comment"
  | AR.K_pi -> r.kind = "pi"
  | AR.K_non_attr -> r.kind <> "attr"

(* the kind/name residual of a spec, decided on a row we already hold (the
   self axis: [pre = ctx.pre] is the context row itself, no scan needed) *)
let row_matches (spec : AR.spec) (r : node) =
  kind_matches spec.kinds r
  && match spec.name with None -> true | Some n -> String.equal r.name n

(* candidate source of one step, with everything per-step — spec analysis,
   name-id resolution, the compiled plan — hoisted out of the per-context
   closure; candidates arrive in proximity order *)
let step_source t (axis : XA.axis) (spec : AR.spec) : node -> node list =
  if axis = XA.Self then fun r -> if row_matches spec r then [ r ] else []
  else
    let needs_parent = List.exists (fun c -> c.AR.anchor = AR.Ctx_parent) spec.conds in
    let via_dnk = use_dnk axis spec in
    let nid =
      if not via_dnk then Some 0
      else Hashtbl.find_opt t.names (Option.get spec.name)
    in
    match nid with
    | None -> fun _ -> [] (* name never seen: statically empty *)
    | Some nid ->
        let compiled = compiled_plan t axis spec ~via_dnk in
        let name = Value.Str (Option.value spec.name ~default:"") in
        fun r ->
          if r.kind = "attr" && not spec.attr_ok then
            raise
              (Unsupported
                 (Printf.sprintf "%s axis from an attribute context node"
                    (XA.axis_name axis)));
          if needs_parent && r.parent < 0 then []
          else (
            t.n_rel <- t.n_rel + 1;
            let doc = doc_node t r.docid in
            let nklo = if via_dnk then pack_dnk r.docid nid r.pre else 0
            and nkhi = if via_dnk then pack_dnk r.docid nid r.post else 0 in
            let outer =
              [|
                Value.Int r.pre; Value.Int r.post; Value.Int r.parent;
                Value.Int (pack_dpre r.docid r.pre); Value.Int (pack_dpre r.docid r.post);
                Value.Int (if r.parent < 0 then -1 else pack_dpre r.docid r.parent);
                Value.Int (pack_dpre r.docid 0); Value.Int (pack_dpre r.docid doc.post);
                Value.Int nklo; Value.Int nkhi; name;
              |]
            in
            let cands = collect_cursor (Exec.open_cursor compiled ~outer ()) in
            if spec.reverse then List.rev cands else cands)

(* ---- the relational expression subset (mirrors Eval/Value semantics) - *)

module Smap = XE.Smap

type value = V_num of float | V_str of string | V_bool of bool | V_rows of node list

let unsupported fmt = Printf.ksprintf (fun m -> raise (Unsupported m)) fmt

let value_number = function
  | V_num f -> f
  | V_str s -> XV.number_value (XV.Str s)
  | V_bool b -> if b then 1.0 else 0.0
  | V_rows [] -> Float.nan
  | V_rows (r :: _) -> XV.number_value (XV.Str r.value)

let value_bool = function
  | V_bool b -> b
  | V_num f -> f <> 0.0 && not (Float.is_nan f)
  | V_str s -> String.length s > 0
  | V_rows rs -> rs <> []

let value_string = function
  | V_str s -> s
  | V_num f -> XV.string_value (XV.Num f)
  | V_bool b -> XV.string_value (XV.Bool b)
  | V_rows [] -> ""
  | V_rows (r :: _) -> r.value

let value_rows = function V_rows rs -> Some rs | _ -> None

(* the evaluation environment threaded through every step: [batch]
   selects the set-at-a-time engine, [vars]/[current] come from the XSLT
   VM ([current] stays on the instruction's context node while predicate
   evaluation moves [r], mirroring Eval's context record) *)
type env = { batch : bool; vars : value Smap.t; current : node option }

let base_env = { batch = true; vars = Smap.empty; current = None }

let num_cmp op x y =
  match op with
  | `Eq -> x = y
  | `Neq -> x <> y
  | `Lt -> x < y
  | `Leq -> x <= y
  | `Gt -> x > y
  | `Geq -> x >= y

let str_cmp op (x : string) (y : string) =
  match op with
  | `Eq -> String.equal x y
  | `Neq -> not (String.equal x y)
  | `Lt | `Leq | `Gt | `Geq ->
      num_cmp op (XV.number_value (XV.Str x)) (XV.number_value (XV.Str y))

let flip = function
  | `Lt -> `Gt
  | `Leq -> `Geq
  | `Gt -> `Lt
  | `Geq -> `Leq
  | (`Eq | `Neq) as e -> e

let cmp_of : XA.binop -> _ = function
  | XA.Eq -> `Eq
  | XA.Neq -> `Neq
  | XA.Lt -> `Lt
  | XA.Leq -> `Leq
  | XA.Gt -> `Gt
  | XA.Geq -> `Geq
  | op -> unsupported "comparison %s" (XA.binop_name op)

(* XPath 1.0 §3.4 with node-sets existentially quantified over row
   string-values — the same decision procedure as {!XV.compare_values} *)
let pcompare op a b =
  let one_side op rs other =
    match other with
    | V_num f -> List.exists (fun r -> num_cmp op (XV.number_value (XV.Str r.value)) f) rs
    | V_str s -> List.exists (fun r -> str_cmp op r.value s) rs
    | V_bool b -> num_cmp op (if rs <> [] then 1.0 else 0.0) (if b then 1.0 else 0.0)
    | V_rows _ -> assert false
  in
  match (a, b) with
  | V_rows r1, V_rows r2 ->
      List.exists (fun x -> List.exists (fun y -> str_cmp op x.value y.value) r2) r1
  | V_rows rs, other -> one_side op rs other
  | other, V_rows rs -> one_side (flip op) rs other
  | V_bool _, _ | _, V_bool _ ->
      num_cmp op (if value_bool a then 1.0 else 0.0) (if value_bool b then 1.0 else 0.0)
  | V_num _, _ | _, V_num _ -> num_cmp op (value_number a) (value_number b)
  | V_str s1, V_str s2 -> str_cmp op s1 s2

(* ------------------------------------------------------------------ *)
(* Set-at-a-time steps (structural joins over sorted contexts)          *)
(* ------------------------------------------------------------------ *)

(* Between steps a context is a sorted, duplicate-free node list (the
   doc_order_dedup invariant), i.e. an ascending sequence of (docid, pre)
   intervals — exactly what the staircase merges below exploit.  Each
   batch step costs one pass over the context instead of one compiled
   plan open per context node. *)

let index_tree t col =
  match Table.find_index t.tbl col with
  | Some idx -> idx.Table.tree
  | None -> err "missing %s index on %s" col (table_name t)

let decode t rid = node_of_slots (Table.unsafe_row t.tbl rid)

let batch_axis_ok : XA.axis -> bool = function
  | XA.Self | XA.Child | XA.Attribute | XA.Parent | XA.Descendant
  | XA.Descendant_or_self | XA.Ancestor | XA.Ancestor_or_self ->
      true
  | _ -> false

(* one merged [dparent]-index sweep: ascending context nodes, one point
   probe each ({!Btree.iter_range}, nothing materialised); distinct
   parents own disjoint child blocks ordered like their parents, so the
   result is already in document order unless the contexts nest *)
let batch_child t (spec : AR.spec) (ctx : node list) : node list =
  let tree = index_tree t "dparent" in
  let acc = ref [] in
  let nested = ref false in
  let curdoc = ref min_int and maxpost = ref min_int in
  List.iter
    (fun c ->
      if c.docid <> !curdoc then begin
        curdoc := c.docid;
        maxpost := min_int
      end
      else if c.pre < !maxpost then nested := true;
      if c.post > !maxpost then maxpost := c.post;
      let key = Value.Int (pack_dpre c.docid c.pre) in
      Btree.iter_range tree ~lo:(Btree.Inclusive key) ~hi:(Btree.Inclusive key)
        (fun _key rid ->
          let r = decode t rid in
          if row_matches spec r then acc := r :: !acc))
    ctx;
  let out = List.rev !acc in
  if !nested then List.sort doc_order_cmp out else out

(* the staircase merge: a context interval starting inside the running
   cover is nested in an earlier context's interval, so its descendants
   were already swept — skip it.  Each maximal interval costs one index
   range sweep ([dnk] when the name id is packed into the key, [dpre]
   otherwise); output is sorted and distinct by construction. *)
let batch_descendant t axis (spec : AR.spec) (ctx : node list) : node list =
  let or_self = axis = XA.Descendant_or_self in
  let via_dnk = use_dnk axis spec in
  let nid =
    if via_dnk then Hashtbl.find_opt t.names (Option.get spec.name) else Some 0
  in
  match nid with
  | None -> [] (* name never seen: statically empty *)
  | Some nid ->
      let tree = index_tree t (if via_dnk then "dnk" else "dpre") in
      let acc = ref [] in
      let curdoc = ref min_int and cover = ref min_int in
      let rows = ref [||] and row_ix = ref [||] in
      let pre_mask = max_ticks - 1 in
      List.iter
        (fun c ->
          if c.docid <> !curdoc then begin
            curdoc := c.docid;
            cover := min_int;
            let r, ix = doc_rows_ix t c.docid in
            rows := r;
            row_ix := ix
          end;
          if c.pre > !cover then begin
            let key pre =
              Value.Int
                (if via_dnk then pack_dnk c.docid nid pre else pack_dpre c.docid pre)
            in
            let lo =
              if or_self then Btree.Inclusive (key c.pre) else Btree.Exclusive (key c.pre)
            and hi =
              if or_self then Btree.Inclusive (key c.post) else Btree.Exclusive (key c.post)
            in
            (* the sweep's keys carry the row's pre in their low bits, so
               each hit resolves through the cached pre-ordered rows
               array — no per-entry heap fetch or decode *)
            Btree.iter_range tree ~lo ~hi (fun key _rid ->
                match key with
                | Value.Int k ->
                    let r = !rows.(!row_ix.(k land pre_mask)) in
                    if row_matches spec r then acc := r :: !acc
                | _ -> ());
            cover := c.post
          end)
        ctx;
      List.rev !acc

let batch_parent t (spec : AR.spec) (ctx : node list) : node list =
  let acc = ref [] in
  List.iter
    (fun c ->
      match parent_row t c with
      | Some r when row_matches spec r -> acc := r :: !acc
      | _ -> ())
    ctx;
  doc_order_dedup (List.rev !acc)

(* parent-chain walk with per-document seen marks: a walk stops at the
   first node an earlier walk marked (everything above it was marked and
   collected by that walk), so total work is bounded by rows touched,
   not |ctx| · depth *)
let batch_ancestor t axis (spec : AR.spec) (ctx : node list) : node list =
  let or_self = axis = XA.Ancestor_or_self in
  let seen : (int, Bytes.t) Hashtbl.t = Hashtbl.create 4 in
  let acc = ref [] in
  List.iter
    (fun c ->
      let _, row_ix = doc_rows_ix t c.docid in
      let marks =
        match Hashtbl.find_opt seen c.docid with
        | Some b -> b
        | None ->
            let b = Bytes.make (Array.length row_ix) '\000' in
            Hashtbl.add seen c.docid b;
            b
      in
      let rec walk pre =
        if pre >= 0 && Bytes.get marks pre = '\000' then begin
          Bytes.set marks pre '\001';
          match row_by_pre t c.docid pre with
          | None -> ()
          | Some r ->
              if row_matches spec r then acc := r :: !acc;
              walk r.parent
        end
      in
      if or_self then walk c.pre else walk c.parent)
    ctx;
  List.sort doc_order_cmp !acc

let batch_axis t axis (spec : AR.spec) (ctx : node list) : node list =
  t.n_batch <- t.n_batch + 1;
  match axis with
  | XA.Self -> List.filter (row_matches spec) ctx
  | XA.Child | XA.Attribute -> batch_child t spec ctx
  | XA.Descendant | XA.Descendant_or_self -> batch_descendant t axis spec ctx
  | XA.Parent -> batch_parent t spec ctx
  | XA.Ancestor | XA.Ancestor_or_self -> batch_ancestor t axis spec ctx
  | _ -> assert false

(* ---- batchable predicates: position-insensitive boolean row tests --- *)

(* position()/last() at the predicate's own scope; a nested path step's
   predicates count positions among their own candidates, so the scan
   does not descend into Path steps or Filter predicates *)
let rec uses_position (e : XA.expr) =
  match e with
  | XA.Call (("position" | "last"), []) -> true
  | XA.Number _ | XA.Literal _ | XA.Var _ | XA.Path _ -> false
  | XA.Neg a -> uses_position a
  | XA.Binop (_, a, b) -> uses_position a || uses_position b
  | XA.Call (_, args) -> List.exists uses_position args
  | XA.Filter (prim, _, _) -> uses_position prim

(* a predicate whose top-level value cannot be a number is a boolean row
   test, never a positional selection (XPath §2.4) *)
let boolean_valued (e : XA.expr) =
  match e with
  | XA.Literal _ | XA.Path _ | XA.Filter _ -> true
  | XA.Binop
      ( (XA.Or | XA.And | XA.Eq | XA.Neq | XA.Lt | XA.Leq | XA.Gt | XA.Geq | XA.Union),
        _,
        _ ) ->
      true
  | XA.Call (("not" | "true" | "false" | "boolean" | "contains" | "starts-with" | "lang"), _)
    ->
      true
  | _ -> false

(* row-local boolean predicates commute with the union over context nodes
   (they depend only on the candidate row), so applying them after the
   merged step equals applying them per context node *)
let batchable_pred p = boolean_valued p && not (uses_position p)

(* the sort-merge value-predicate subset: [. cmp lit], [step] and
   [step cmp lit] for one unpredicated child/attribute step *)
let classify_pred (p : XA.expr) =
  let source = function
    | XA.Path
        {
          absolute = false;
          steps = [ ({ XA.axis = XA.Child | XA.Attribute; predicates = []; _ } as s) ];
        } ->
        Some (`Step s)
    | XA.Path
        {
          absolute = false;
          steps =
            [ { XA.axis = XA.Self; test = XA.Node_type_test XA.Any_node; predicates = [] } ];
        } ->
        Some `Self
    | _ -> None
  in
  let lit = function
    | XA.Literal s -> Some (`Str s)
    | XA.Number f -> Some (`Num f)
    | _ -> None
  in
  match p with
  | XA.Binop (op, a, b) -> (
      match op with
      | XA.Eq | XA.Neq | XA.Lt | XA.Leq | XA.Gt | XA.Geq -> (
          let cmp = cmp_of op in
          match (source a, lit b) with
          | Some src, Some l -> Some (src, Some (cmp, l))
          | _ -> (
              match (lit a, source b) with
              | Some l, Some src -> Some (src, Some (flip cmp, l))
              | _ -> None))
      | _ -> None)
  | e -> ( match source e with Some src -> Some (src, None) | None -> None)

(* the existential node-set vs literal decision of {!pcompare}, applied
   to one row's string-value *)
let lit_holds test (s : string) =
  match test with
  | None -> true
  | Some (cmp, `Str y) -> str_cmp cmp s y
  | Some (cmp, `Num f) -> num_cmp cmp (XV.number_value (XV.Str s)) f

(* merge the sorted candidates against the pre-ordered rows array: each
   candidate's owned rows are a contiguous sibling walk starting right
   after it, so the whole pass is one linear merge — no index probes *)
let apply_value_pred t (src, test) cands =
  match src with
  | `Self -> List.filter (fun r -> lit_holds test r.value) cands
  | `Step (step : XA.step) -> (
      match AR.compile step.axis step.test with
      | None -> []
      | Some spec ->
          List.filter
            (fun c ->
              let hit = ref false in
              iter_owned t c (fun r ->
                  if (not !hit) && row_matches spec r && lit_holds test r.value then
                    hit := true);
              !hit)
            cands)

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

let row_local_name (r : node) =
  match r.kind with "elem" | "attr" | "pi" -> r.name | _ -> ""

let row_qname (r : node) =
  match r.kind with
  | "elem" | "attr" -> if r.prefix = "" then r.name else r.prefix ^ ":" ^ r.name
  | _ -> row_local_name r

let rec eval_step t env rows (step : XA.step) =
  match AR.compile step.axis step.test with
  | None -> []
  | Some spec ->
      if
        env.batch && batch_axis_ok step.axis
        && List.for_all batchable_pred step.XA.predicates
      then
        let cands = batch_axis t step.axis spec rows in
        List.fold_left (fun cs p -> batch_filter t env cs p) cands step.XA.predicates
      else
        let candidates = step_source t step.axis spec in
        let out =
          List.concat_map
            (fun r ->
              let cands = candidates r in
              List.fold_left (fun cs p -> filter_pred t env cs p) cands step.XA.predicates)
            rows
        in
        doc_order_dedup out

and eval_steps t env rows steps = List.fold_left (eval_step t env) rows steps

(* a batchable predicate is a row-local boolean: the sort-merge form when
   it fits, else one evaluation per candidate at an arbitrary position
   (just checked position-insensitive) *)
and batch_filter t env cands pred =
  match classify_pred pred with
  | Some vp -> apply_value_pred t vp cands
  | None ->
      List.filter (fun r -> value_bool (peval t env r ~position:1 ~size:1 pred)) cands

(* candidates arrive in proximity order, so position is [i + 1]; a
   number-valued predicate selects by position (XPath §2.4) *)
and filter_pred t env cands pred =
  let size = List.length cands in
  List.filteri
    (fun i r ->
      match peval t env r ~position:(i + 1) ~size pred with
      | V_num f -> Float.of_int (i + 1) = f
      | v -> value_bool v)
    cands

and peval t env r ~position ~size (e : XA.expr) : value =
  let recur = peval t env r ~position ~size in
  match e with
  | XA.Number f -> V_num f
  | XA.Literal s -> V_str s
  | XA.Neg e -> V_num (-.value_number (recur e))
  | XA.Var v -> (
      match Smap.find_opt v env.vars with
      | Some x -> x
      | None -> unsupported "variable $%s" v)
  | XA.Path { absolute; steps } ->
      let start = if absolute then [ doc_node t r.docid ] else [ r ] in
      V_rows (eval_steps t env start steps)
  | XA.Filter (prim, preds, steps) -> (
      match recur prim with
      | V_rows rs ->
          let rs = List.fold_left (fun cs p -> filter_pred t env cs p) rs preds in
          V_rows (eval_steps t env rs steps)
      | _ -> unsupported "filter over a non-node-set")
  | XA.Binop (op, a, b) -> (
      match op with
      | XA.Or -> V_bool (value_bool (recur a) || value_bool (recur b))
      | XA.And -> V_bool (value_bool (recur a) && value_bool (recur b))
      | XA.Eq | XA.Neq | XA.Lt | XA.Leq | XA.Gt | XA.Geq ->
          V_bool (pcompare (cmp_of op) (recur a) (recur b))
      | XA.Plus -> V_num (value_number (recur a) +. value_number (recur b))
      | XA.Minus -> V_num (value_number (recur a) -. value_number (recur b))
      | XA.Mul -> V_num (value_number (recur a) *. value_number (recur b))
      | XA.Div -> V_num (value_number (recur a) /. value_number (recur b))
      | XA.Mod -> V_num (Float.rem (value_number (recur a)) (value_number (recur b)))
      | XA.Union -> (
          match (recur a, recur b) with
          | V_rows x, V_rows y -> V_rows (doc_order_dedup (x @ y))
          | _ -> unsupported "union of non-node-sets"))
  | XA.Call (f, args) -> pcall t env r ~position ~size f args

(* the core function library over rows (same semantics as {!XE}'s, with
   node string-values read off the [value] column) *)
and pcall t env r ~position ~size f args =
  let recur = peval t env r ~position ~size in
  let str i = value_string (recur (List.nth args i)) in
  let num i = value_number (recur (List.nth args i)) in
  let nargs = List.length args in
  let target_row () =
    (* 0-arg: the context row; 1-arg: first node of the set, if any *)
    if nargs = 0 then Some r
    else
      match recur (List.nth args 0) with
      | V_rows rs -> ( match rs with [] -> None | x :: _ -> Some x)
      | _ -> unsupported "%s() over a non-node-set" f
  in
  match (f, nargs) with
  | "position", 0 -> V_num (Float.of_int position)
  | "last", 0 -> V_num (Float.of_int size)
  | "true", 0 -> V_bool true
  | "false", 0 -> V_bool false
  | "not", 1 -> V_bool (not (value_bool (recur (List.hd args))))
  | "boolean", 1 -> V_bool (value_bool (recur (List.hd args)))
  | "count", 1 -> (
      match recur (List.hd args) with
      | V_rows rs -> V_num (Float.of_int (List.length rs))
      | _ -> unsupported "count() over a non-node-set")
  | "string", 0 -> V_str r.value
  | "string", 1 -> V_str (str 0)
  | "concat", n when n >= 2 ->
      V_str (String.concat "" (List.map (fun e -> value_string (recur e)) args))
  | "starts-with", 2 ->
      let s = str 0 and p = str 1 in
      V_bool (String.length s >= String.length p && String.sub s 0 (String.length p) = p)
  | "contains", 2 ->
      let s = str 0 and sub = str 1 in
      let found =
        if sub = "" then true
        else
          let ls = String.length s and lb = String.length sub in
          let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
          go 0
      in
      V_bool found
  | "substring-before", 2 ->
      let s = str 0 and sub = str 1 in
      let ls = String.length s and lb = String.length sub in
      let rec go i =
        if i + lb > ls then None else if String.sub s i lb = sub then Some i else go (i + 1)
      in
      V_str
        (match if lb = 0 then Some 0 else go 0 with
        | Some i -> String.sub s 0 i
        | None -> "")
  | "substring-after", 2 ->
      let s = str 0 and sub = str 1 in
      let ls = String.length s and lb = String.length sub in
      let rec go i =
        if i + lb > ls then None else if String.sub s i lb = sub then Some i else go (i + 1)
      in
      V_str
        (match if lb = 0 then Some 0 else go 0 with
        | Some i -> String.sub s (i + lb) (ls - i - lb)
        | None -> "")
  | "substring", (2 | 3) ->
      V_str (XE.substring_xpath (str 0) (num 1) (if nargs = 3 then Some (num 2) else None))
  | "string-length", 0 -> V_num (Float.of_int (String.length r.value))
  | "string-length", 1 -> V_num (Float.of_int (String.length (str 0)))
  | "normalize-space", 0 -> V_str (XE.normalize_space r.value)
  | "normalize-space", 1 -> V_str (XE.normalize_space (str 0))
  | "translate", 3 -> V_str (XE.translate_xpath (str 0) (str 1) (str 2))
  | "number", 0 -> V_num (XV.number_value (XV.Str r.value))
  | "number", 1 -> V_num (num 0)
  | "sum", 1 -> (
      match recur (List.hd args) with
      | V_rows rs ->
          V_num
            (List.fold_left
               (fun acc x -> acc +. XV.number_value (XV.Str x.value))
               0.0 rs)
      | _ -> unsupported "sum() over a non-node-set")
  | "floor", 1 -> V_num (Float.floor (num 0))
  | "ceiling", 1 -> V_num (Float.ceil (num 0))
  | "round", 1 -> V_num (XV.round_number (num 0))
  | "name", (0 | 1) ->
      V_str (match target_row () with None -> "" | Some x -> row_qname x)
  | "local-name", (0 | 1) ->
      V_str (match target_row () with None -> "" | Some x -> row_local_name x)
  | "namespace-uri", (0 | 1) ->
      V_str
        (match target_row () with
        | Some x when x.kind = "elem" || x.kind = "attr" -> x.uri
        | _ -> "")
  | "current", 0 -> (
      match env.current with Some c -> V_rows [ c ] | None -> V_rows [ r ])
  | _ -> unsupported "function %s()" f

let axis_step t ?(batch = true) rows step = eval_step t { base_env with batch } rows step

let eval_expr t ?(batch = true) ?(vars = Smap.empty) ?(position = 1) ?(size = 1) r e =
  peval t { batch; vars; current = Some r } r ~position ~size e

(* ------------------------------------------------------------------ *)
(* Match patterns over rows (the shredded transform path)               *)
(* ------------------------------------------------------------------ *)

let principal_is_element = function XA.Attribute | XA.Namespace -> false | _ -> true

(* mirrors Eval.test_matches on rows: prefixes are ignored, names match
   on the local part *)
let row_test_matches axis test (r : node) =
  match test with
  | XA.Star | XA.Prefix_star _ ->
      if principal_is_element axis then r.kind = "elem" else r.kind = "attr"
  | XA.Name_test (_, local) ->
      (if principal_is_element axis then r.kind = "elem" else r.kind = "attr")
      && String.equal r.name local
  | XA.Node_type_test XA.Any_node -> true
  | XA.Node_type_test XA.Text_node -> r.kind = "text"
  | XA.Node_type_test XA.Comment_node -> r.kind = "comment"
  | XA.Node_type_test (XA.Pi_node target) -> (
      r.kind = "pi"
      && match target with None -> true | Some tg -> String.equal r.name tg)

(* mirrors Pattern.predicates_hold: the candidates are the siblings
   reachable from the parent by the step's axis and test, positional
   rules included *)
let row_predicates_hold t env (step : XA.step) (r : node) =
  match step.XA.predicates with
  | [] -> true
  | preds -> (
      match parent_row t r with
      | None ->
          List.for_all (fun p -> value_bool (peval t env r ~position:1 ~size:1 p)) preds
      | Some parent ->
          let matching = eval_step t env [ parent ] { step with XA.predicates = [] } in
          let survivors =
            List.fold_left (fun ns p -> filter_pred t env ns p) matching preds
          in
          List.exists (fun x -> x.docid = r.docid && x.pre = r.pre) survivors)

let pattern_matches t ?(vars = Smap.empty) (pat : Xdb_xpath.Pattern.t) (r : node) =
  let env = { batch = true; vars; current = Some r } in
  let ops =
    {
      Xdb_xpath.Pattern.no_parent = parent_row t;
      no_is_document = (fun (x : node) -> x.kind = "doc");
      no_test = row_test_matches;
      no_predicates_hold = (fun step x -> row_predicates_hold t env step x);
    }
  in
  Xdb_xpath.Pattern.matches_gen ops pat r

(* ------------------------------------------------------------------ *)
(* Subtree copy (what a template's copy-of materialises)                *)
(* ------------------------------------------------------------------ *)

(* a fresh DOM copy of one row's subtree, built from the rows-array slice
   [pre .. post] — the only reconstruction the relational transform path
   ever performs *)
let subtree t (r0 : node) : X.node =
  match r0.kind with
  | "attr" | "text" | "comment" | "pi" -> X.make (kind_of_row r0)
  | _ ->
      let rows, row_ix = doc_rows_ix t r0.docid in
      let n = Array.length rows in
      let i = ref row_ix.(r0.pre) in
      let rec build () : X.node =
        let r = rows.(!i) in
        incr i;
        let xn = X.make (kind_of_row r) in
        (match r.kind with
        | "doc" | "elem" ->
            let attrs = ref [] in
            while !i < n && rows.(!i).kind = "attr" && rows.(!i).parent = r.pre do
              let an = X.make (kind_of_row rows.(!i)) in
              incr i;
              an.X.parent <- Some xn;
              attrs := an :: !attrs
            done;
            xn.X.attributes <- List.rev !attrs;
            let kids = ref [] in
            while !i < n && rows.(!i).pre < r.post do
              let k = build () in
              k.X.parent <- Some xn;
              kids := k :: !kids
            done;
            xn.X.children <- List.rev !kids
        | _ -> ());
        xn
      in
      build ()

(* the batch strategy a step evaluates with (CLI --explain) *)
let batch_explain (step : XA.step) =
  match AR.compile step.XA.axis step.XA.test with
  | None -> "statically empty"
  | Some spec ->
      if not (batch_axis_ok step.XA.axis) then "per-context plan (axis outside the batch subset)"
      else if not (List.for_all batchable_pred step.XA.predicates) then
        "per-context plan (positional predicate)"
      else
        let how =
          match step.XA.axis with
          | XA.Self -> "context-row filter"
          | XA.Child | XA.Attribute -> "merged dparent point probes"
          | XA.Descendant | XA.Descendant_or_self ->
              if use_dnk step.XA.axis spec then "staircase dnk interval sweep"
              else "staircase dpre interval sweep"
          | XA.Parent -> "parent map over the rows array"
          | XA.Ancestor | XA.Ancestor_or_self -> "marked parent-chain walk"
          | _ -> assert false
        in
        let preds =
          List.map
            (fun p ->
              match classify_pred p with
              | Some _ -> "sort-merge value filter"
              | None when batchable_pred p -> "row-local predicate"
              | None -> "per-candidate predicate")
            step.XA.predicates
        in
        String.concat " + " (how :: preds)

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let select t ?(batch = true) ~docid expr_s =
  let doc = doc_node t docid in
  let env = { base_env with batch } in
  try
    match Xdb_xpath.Parser.parse expr_s with
    | XA.Path { absolute = _; steps } -> eval_steps t env [ doc ] steps
    | _ -> raise (Unsupported "non-path expression")
  with Unsupported _ ->
    (* outside the relational subset: answer over the reconstructed tree
       and map the DOM result back through its pre stamps *)
    t.n_fallback <- t.n_fallback + 1;
    let rb = rebuilt t docid in
    let nodes = XE.select (XE.make_context rb.dom) expr_s in
    List.map
      (fun (n : X.node) ->
        let ix = if n.X.order >= 0 && n.X.order < Array.length rb.row_ix then rb.row_ix.(n.X.order) else -1 in
        if ix < 0 then err "DOM fallback produced a node outside the stored document";
        rb.rows.(ix))
      nodes

(* ------------------------------------------------------------------ *)
(* Serialization (differential-test form)                              *)
(* ------------------------------------------------------------------ *)

(* bare attribute nodes are not serializable markup; both sides of the
   differential comparison render them as [name="value"] *)
let attr_string ~prefix ~name ~value =
  let b = Buffer.create (String.length name + String.length value + 4) in
  if prefix <> "" then (
    Buffer.add_string b prefix;
    Buffer.add_char b ':');
  Buffer.add_string b name;
  Buffer.add_string b "=\"";
  Xdb_xml.Serializer.escape_attr b value;
  Buffer.add_char b '"';
  Buffer.contents b

let serialize t nodes =
  List.map
    (fun r ->
      if r.kind = "attr" then attr_string ~prefix:r.prefix ~name:r.name ~value:r.value
      else
        let rb = rebuilt t r.docid in
        match rb.by_pre.(r.pre) with
        | Some n -> Xdb_xml.Serializer.to_string n
        | None -> err "result row %d/%d has no reconstructed node" r.docid r.pre)
    nodes

let serialize_dom nodes =
  List.map
    (fun (n : X.node) ->
      match n.X.kind with
      | X.Attribute (q, v) -> attr_string ~prefix:q.X.prefix ~name:q.X.local ~value:v
      | _ -> Xdb_xml.Serializer.to_string n)
    nodes
