(* Interval-encoded XML shredding: node-per-row storage with pre/post
   numbering, packed composite keys, and location steps compiled once per
   shape into correlated plans the optimizer answers with B-tree range
   scans.  See shred.mli for the encoding contract. *)

module X = Xdb_xml.Types
module XA = Xdb_xpath.Ast
module AR = Xdb_xpath.Axis_range
module XE = Xdb_xpath.Eval
module XV = Xdb_xpath.Value
module A = Algebra

exception Shred_error of string
exception Unsupported of string

let err fmt = Printf.ksprintf (fun m -> raise (Shred_error m)) fmt

type node = {
  docid : int;
  pre : int;
  post : int;
  parent : int;
  level : int;
  kind : string;
  name : string;
  prefix : string;
  uri : string;
  value : string;
}

(* ------------------------------------------------------------------ *)
(* Packed keys                                                         *)
(* ------------------------------------------------------------------ *)

let pre_bits = 24
let name_bits = 12
let max_ticks = 1 lsl pre_bits
let max_names = 1 lsl name_bits
let pack_dpre docid pre = (docid lsl pre_bits) lor pre
let pack_dnk docid nid pre = (((docid lsl name_bits) lor nid) lsl pre_bits) lor pre

(* ------------------------------------------------------------------ *)
(* Handle                                                              *)
(* ------------------------------------------------------------------ *)

type plan_key = {
  pk_axis : XA.axis;
  pk_kinds : AR.kind_filter;
  pk_named : bool;
  pk_dnk : bool;
}

(* a reconstructed document: the DOM tree plus both directions of the
   pre ↔ node correspondence (DOM orders are stamped with [pre], so a DOM
   interpreter result maps back to its row through [order]) *)
type rebuilt = {
  dom : X.node;
  rows : node array;  (** pre order *)
  row_ix : int array;  (** pre → index into [rows], -1 for post-only ticks *)
  by_pre : X.node option array;
}

type t = {
  db : Database.t;
  tbl : Table.t;
  names_tbl : Table.t;
  names : (string, int) Hashtbl.t;
  mutable next_nid : int;
  mutable next_docid : int;
  doc_meta : (int, node) Hashtbl.t;
  plans : (plan_key, Exec.compiled) Hashtbl.t;
  rebuilt_cache : (int, rebuilt) Hashtbl.t;
  outer_layout : Layout.t;
  mutable n_rel : int;
  mutable n_fallback : int;
}

let scan_alias = "s"
let outer_alias = "c"

(* per-context-node correlation row; plans reference these via [c.*] *)
let outer_cols =
  [| "pre"; "post"; "parent"; "dpre"; "dpost"; "dparent"; "doclo"; "dochi"; "nklo"; "nkhi"; "name" |]

let int_col n = { Table.col_name = n; col_type = Value.Tint }
let str_col n = { Table.col_name = n; col_type = Value.Tstr }

let columns =
  [
    int_col "docid"; int_col "pre"; int_col "post"; int_col "parent"; int_col "level";
    str_col "kind"; str_col "name"; str_col "prefix"; str_col "uri"; str_col "value";
    int_col "dpre"; int_col "dparent"; int_col "dnk";
  ]

let create ?(table = "xmlnodes") db =
  let tbl = Database.create_table db table columns in
  ignore (Table.create_index tbl ~name:(table ^ "_dpre_idx") ~column:"dpre");
  ignore (Table.create_index tbl ~name:(table ^ "_dparent_idx") ~column:"dparent");
  ignore (Table.create_index tbl ~name:(table ^ "_dnk_idx") ~column:"dnk");
  let names_tbl =
    Database.create_table db (table ^ "_names") [ int_col "nid"; str_col "name" ]
  in
  let t =
    {
      db;
      tbl;
      names_tbl;
      names = Hashtbl.create 64;
      next_nid = 0;
      next_docid = 1;
      doc_meta = Hashtbl.create 16;
      plans = Hashtbl.create 32;
      rebuilt_cache = Hashtbl.create 16;
      outer_layout = Layout.of_columns ~alias:outer_alias outer_cols;
      n_rel = 0;
      n_fallback = 0;
    }
  in
  (* nid 0 is the unnamed kinds' slot, so packed [dnk] keys cluster them *)
  Hashtbl.add t.names "" 0;
  t.next_nid <- 1;
  Table.insert_values names_tbl [ Value.Int 0; Value.Str "" ];
  t

let table_name t = t.tbl.Table.tbl_name

let intern t name =
  match Hashtbl.find_opt t.names name with
  | Some nid -> nid
  | None ->
      let nid = t.next_nid in
      if nid >= max_names then
        err "name dictionary overflow: more than %d distinct names" max_names;
      t.next_nid <- nid + 1;
      Hashtbl.add t.names name nid;
      Table.insert_values t.names_tbl [ Value.Int nid; Value.Str name ];
      nid

(* ------------------------------------------------------------------ *)
(* Shredding                                                           *)
(* ------------------------------------------------------------------ *)

(* mutable only during the numbering walk: [post] is patched on exit *)
type pending = {
  p_pre : int;
  mutable p_post : int;
  p_parent : int;
  p_level : int;
  p_kind : string;
  p_name : string;
  p_prefix : string;
  p_uri : string;
  p_value : string;
}

let shred t (doc : X.node) : int =
  let docid = t.next_docid in
  let acc = ref [] (* reversed pre order *) in
  let counter = ref 0 in
  let tick () =
    let v = !counter in
    incr counter;
    v
  in
  let emit ~pre ~parent ~level ~kind ~name ~prefix ~uri ~value =
    let p =
      { p_pre = pre; p_post = pre; p_parent = parent; p_level = level; p_kind = kind;
        p_name = name; p_prefix = prefix; p_uri = uri; p_value = value }
    in
    acc := p :: !acc;
    p
  in
  (* post = pre when the node consumed no further ticks (a leaf), a fresh
     exit tick otherwise — attributes and children both count, so an
     attribute's interval always nests strictly inside its owner's *)
  let close p = p.p_post <- (if !counter = p.p_pre + 1 then p.p_pre else tick ()) in
  let rec go parent level (n : X.node) =
    match n.X.kind with
    | X.Document ->
        let pre = tick () in
        let p =
          emit ~pre ~parent ~level ~kind:"doc" ~name:"" ~prefix:"" ~uri:""
            ~value:(X.string_value n)
        in
        List.iter (go pre (level + 1)) n.X.children;
        close p
    | X.Element q ->
        let pre = tick () in
        let p =
          emit ~pre ~parent ~level ~kind:"elem" ~name:q.X.local ~prefix:q.X.prefix
            ~uri:q.X.uri ~value:(X.string_value n)
        in
        List.iter (go pre (level + 1)) n.X.attributes;
        List.iter (go pre (level + 1)) n.X.children;
        close p
    | X.Attribute (q, v) ->
        let pre = tick () in
        ignore
          (emit ~pre ~parent ~level ~kind:"attr" ~name:q.X.local ~prefix:q.X.prefix
             ~uri:q.X.uri ~value:v)
    | X.Text s ->
        ignore (emit ~pre:(tick ()) ~parent ~level ~kind:"text" ~name:"" ~prefix:"" ~uri:"" ~value:s)
    | X.Comment s ->
        ignore
          (emit ~pre:(tick ()) ~parent ~level ~kind:"comment" ~name:"" ~prefix:"" ~uri:"" ~value:s)
    | X.Pi (target, data) ->
        ignore
          (emit ~pre:(tick ()) ~parent ~level ~kind:"pi" ~name:target ~prefix:"" ~uri:""
             ~value:data)
  in
  (if X.is_document doc then go (-1) 0 doc
   else begin
     (* synthesize the document row so absolute paths anchor uniformly *)
     let pre = tick () in
     let p =
       emit ~pre ~parent:(-1) ~level:0 ~kind:"doc" ~name:"" ~prefix:"" ~uri:""
         ~value:(X.string_value doc)
     in
     go pre 1 doc;
     close p
   end);
  if !counter > max_ticks then
    err "document too large to shred: %d counter ticks exceed 2^%d" !counter pre_bits;
  let pending = List.rev !acc in
  List.iter
    (fun p ->
      let nid = intern t p.p_name in
      ignore
        (Table.insert t.tbl
           [|
             Value.Int docid; Value.Int p.p_pre; Value.Int p.p_post; Value.Int p.p_parent;
             Value.Int p.p_level; Value.Str p.p_kind; Value.Str p.p_name;
             Value.Str p.p_prefix; Value.Str p.p_uri; Value.Str p.p_value;
             Value.Int (pack_dpre docid p.p_pre);
             Value.Int (if p.p_parent < 0 then -1 else pack_dpre docid p.p_parent);
             Value.Int (pack_dnk docid nid p.p_pre);
           |]))
    pending;
  let doc_row =
    match pending with
    | p :: _ ->
        { docid; pre = p.p_pre; post = p.p_post; parent = p.p_parent; level = p.p_level;
          kind = p.p_kind; name = p.p_name; prefix = p.p_prefix; uri = p.p_uri;
          value = p.p_value }
    | [] -> err "empty document"
  in
  Hashtbl.replace t.doc_meta docid doc_row;
  t.next_docid <- docid + 1;
  docid

let doc_ids t = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.doc_meta [])

let doc_node t docid =
  match Hashtbl.find_opt t.doc_meta docid with
  | Some d -> d
  | None -> err "unknown docid %d" docid

let stats t = (Hashtbl.length t.doc_meta, Table.size t.tbl)
let counters t = (t.n_rel, t.n_fallback)

(* ------------------------------------------------------------------ *)
(* Row decoding                                                        *)
(* ------------------------------------------------------------------ *)

let slot_int a i =
  match a.(i) with Value.Int n -> n | _ -> err "malformed shred row (int slot %d)" i

let slot_str a i =
  match a.(i) with Value.Str s -> s | _ -> err "malformed shred row (str slot %d)" i

(* scan rows keep the table's column order in slots 0..9 (outer
   correlation values, if appended, sit past them) *)
let node_of_slots a =
  {
    docid = slot_int a 0; pre = slot_int a 1; post = slot_int a 2; parent = slot_int a 3;
    level = slot_int a 4; kind = slot_str a 5; name = slot_str a 6; prefix = slot_str a 7;
    uri = slot_str a 8; value = slot_str a 9;
  }

(* ------------------------------------------------------------------ *)
(* Reconstruction                                                      *)
(* ------------------------------------------------------------------ *)

let doc_rows t docid =
  let doc = doc_node t docid in
  match Table.find_index t.tbl "dpre" with
  | None -> err "missing dpre index on %s" (table_name t)
  | Some idx ->
      let lo = Btree.Inclusive (Value.Int (pack_dpre docid 0)) in
      let hi = Btree.Inclusive (Value.Int (pack_dpre docid doc.post)) in
      let rids = Btree.range_rids idx.Table.tree ~lo ~hi in
      Array.map (fun rid -> node_of_slots (Table.unsafe_row t.tbl rid)) rids

let kind_of_row r =
  match r.kind with
  | "doc" -> X.Document
  | "elem" -> X.Element (X.qname ~prefix:r.prefix ~uri:r.uri r.name)
  | "attr" -> X.Attribute (X.qname ~prefix:r.prefix ~uri:r.uri r.name, r.value)
  | "text" -> X.Text r.value
  | "comment" -> X.Comment r.value
  | "pi" -> X.Pi (r.name, r.value)
  | k -> err "unknown node kind %S" k

let rebuild t docid : rebuilt =
  let rows = doc_rows t docid in
  let n = Array.length rows in
  if n = 0 then err "no rows for docid %d" docid;
  let span = rows.(0).post + 1 in
  let row_ix = Array.make span (-1) in
  Array.iteri (fun i r -> row_ix.(r.pre) <- i) rows;
  let by_pre = Array.make span None in
  let i = ref 0 in
  let rec build () : X.node =
    let r = rows.(!i) in
    incr i;
    let xn = X.make (kind_of_row r) in
    xn.X.order <- r.pre;
    by_pre.(r.pre) <- Some xn;
    (match r.kind with
    | "doc" | "elem" ->
        let attrs = ref [] in
        while !i < n && rows.(!i).kind = "attr" && rows.(!i).parent = r.pre do
          let a = rows.(!i) in
          incr i;
          let an = X.make (kind_of_row a) in
          an.X.order <- a.pre;
          an.X.parent <- Some xn;
          by_pre.(a.pre) <- Some an;
          attrs := an :: !attrs
        done;
        xn.X.attributes <- List.rev !attrs;
        let kids = ref [] in
        while !i < n && rows.(!i).pre < r.post do
          let k = build () in
          k.X.parent <- Some xn;
          kids := k :: !kids
        done;
        xn.X.children <- List.rev !kids
    | _ -> ());
    xn
  in
  let dom = build () in
  { dom; rows; row_ix; by_pre }

let rebuilt t docid =
  match Hashtbl.find_opt t.rebuilt_cache docid with
  | Some rb -> rb
  | None ->
      let rb = rebuild t docid in
      Hashtbl.add t.rebuilt_cache docid rb;
      rb

let reconstruct t docid = (rebuilt t docid).dom

(* ------------------------------------------------------------------ *)
(* Step plans                                                          *)
(* ------------------------------------------------------------------ *)

let s_ c = A.qcol scan_alias c
let c_ c = A.qcol outer_alias c

let aop : AR.op -> A.binop = function
  | AR.Eq -> A.Eq
  | AR.Lt -> A.Lt
  | AR.Leq -> A.Leq
  | AR.Gt -> A.Gt
  | AR.Geq -> A.Geq

(* the packed image of a context anchor *)
let packed_anchor = function
  | AR.Ctx_pre -> "dpre"
  | AR.Ctx_post -> "dpost"
  | AR.Ctx_parent -> "dparent"

let plain_anchor = function
  | AR.Ctx_pre -> "pre"
  | AR.Ctx_post -> "post"
  | AR.Ctx_parent -> "parent"

(* name-tested descendants scan the [dnk] index: the name id is packed
   into the key, so the interval probe lands only on rows already
   carrying the right name *)
let use_dnk axis (spec : AR.spec) =
  spec.name <> None
  && (spec.kinds = AR.K_elem || spec.kinds = AR.K_attr)
  && match axis with XA.Descendant | XA.Descendant_or_self -> true | _ -> false

let build_plan t axis (spec : AR.spec) ~via_dnk =
  let conds =
    List.map
      (fun { AR.col; op; anchor } ->
        match col with
        | AR.Pre when via_dnk ->
            let rhs = match anchor with AR.Ctx_pre -> "nklo" | _ -> "nkhi" in
            A.Binop (aop op, s_ "dnk", c_ rhs)
        | AR.Pre -> A.Binop (aop op, s_ "dpre", c_ (packed_anchor anchor))
        | AR.Parent -> A.Binop (aop op, s_ "dparent", c_ (packed_anchor anchor))
        | AR.Post -> A.Binop (aop op, s_ "post", c_ (plain_anchor anchor)))
      spec.conds
  in
  (* close one-sided document-order ranges with the document's bounds so a
     range probe never leaks into neighbouring documents *)
  let has op_test col_test =
    List.exists (fun c -> col_test c.AR.col && op_test c.AR.op) spec.conds
  in
  let eq_confined =
    has (fun o -> o = AR.Eq) (fun c -> c = AR.Pre || c = AR.Parent)
  in
  let guards =
    if eq_confined || via_dnk then []
    else
      (if has (fun o -> o = AR.Gt || o = AR.Geq) (fun c -> c = AR.Pre) then []
       else [ A.Binop (A.Geq, s_ "dpre", c_ "doclo") ])
      @
      if has (fun o -> o = AR.Lt || o = AR.Leq) (fun c -> c = AR.Pre) then []
      else [ A.Binop (A.Leq, s_ "dpre", c_ "dochi") ]
  in
  let kind_conj =
    match spec.kinds with
    | AR.K_elem -> [ A.(s_ "kind" =. const_str "elem") ]
    | AR.K_attr -> [ A.(s_ "kind" =. const_str "attr") ]
    | AR.K_text -> [ A.(s_ "kind" =. const_str "text") ]
    | AR.K_comment -> [ A.(s_ "kind" =. const_str "comment") ]
    | AR.K_pi -> [ A.(s_ "kind" =. const_str "pi") ]
    | AR.K_non_attr -> [ A.Binop (A.Neq, s_ "kind", A.const_str "attr") ]
  in
  let name_conj =
    if spec.name <> None && not via_dnk then [ A.(s_ "name" =. c_ "name") ] else []
  in
  ignore axis;
  A.Filter
    ( Cost.conjoin (conds @ guards @ kind_conj @ name_conj),
      A.Seq_scan { table = table_name t; alias = scan_alias } )

let compiled_plan t axis (spec : AR.spec) ~via_dnk =
  let key =
    { pk_axis = axis; pk_kinds = spec.kinds; pk_named = spec.name <> None; pk_dnk = via_dnk }
  in
  match Hashtbl.find_opt t.plans key with
  | Some c -> c
  | None ->
      let plan = Optimizer.optimize t.db (build_plan t axis spec ~via_dnk) in
      let compiled = Exec.compile t.db ~outer:t.outer_layout plan in
      Hashtbl.add t.plans key compiled;
      compiled

let explain_step t (step : XA.step) =
  match AR.compile step.axis step.test with
  | None -> "<empty>"
  | Some spec ->
      let via_dnk = use_dnk step.axis spec in
      A.explain (Optimizer.optimize t.db (build_plan t step.axis spec ~via_dnk))

(* ------------------------------------------------------------------ *)
(* Step evaluation                                                     *)
(* ------------------------------------------------------------------ *)

let doc_order_cmp a b =
  let c = Int.compare a.docid b.docid in
  if c <> 0 then c else Int.compare a.pre b.pre

(* a single forward step from one context node arrives already sorted and
   distinct (B-tree rids come back in key = document order), so the common
   case is a linear scan that confirms order and allocates nothing *)
let doc_order_dedup rows =
  let rec strictly_sorted = function
    | a :: (b :: _ as rest) -> doc_order_cmp a b < 0 && strictly_sorted rest
    | _ -> true
  in
  if strictly_sorted rows then rows
  else
    let sorted = List.sort doc_order_cmp rows in
    let rec dedup = function
      | a :: (b :: _ as rest) when a.docid = b.docid && a.pre = b.pre -> dedup rest
      | a :: rest -> a :: dedup rest
      | [] -> []
    in
    dedup sorted

let collect_cursor cur =
  let acc = ref [] in
  let rec loop () =
    match cur () with
    | None -> ()
    | Some batch ->
        Array.iter (fun row -> acc := node_of_slots row :: !acc) batch;
        loop ()
  in
  loop ();
  List.rev !acc

let kind_matches (kf : AR.kind_filter) (r : node) =
  match kf with
  | AR.K_elem -> r.kind = "elem"
  | AR.K_attr -> r.kind = "attr"
  | AR.K_text -> r.kind = "text"
  | AR.K_comment -> r.kind = "comment"
  | AR.K_pi -> r.kind = "pi"
  | AR.K_non_attr -> r.kind <> "attr"

(* the kind/name residual of a spec, decided on a row we already hold (the
   self axis: [pre = ctx.pre] is the context row itself, no scan needed) *)
let row_matches (spec : AR.spec) (r : node) =
  kind_matches spec.kinds r
  && match spec.name with None -> true | Some n -> String.equal r.name n

(* candidate source of one step, with everything per-step — spec analysis,
   name-id resolution, the compiled plan — hoisted out of the per-context
   closure; candidates arrive in proximity order *)
let step_source t (axis : XA.axis) (spec : AR.spec) : node -> node list =
  if axis = XA.Self then fun r -> if row_matches spec r then [ r ] else []
  else
    let needs_parent = List.exists (fun c -> c.AR.anchor = AR.Ctx_parent) spec.conds in
    let via_dnk = use_dnk axis spec in
    let nid =
      if not via_dnk then Some 0
      else Hashtbl.find_opt t.names (Option.get spec.name)
    in
    match nid with
    | None -> fun _ -> [] (* name never seen: statically empty *)
    | Some nid ->
        let compiled = compiled_plan t axis spec ~via_dnk in
        let name = Value.Str (Option.value spec.name ~default:"") in
        fun r ->
          if r.kind = "attr" && not spec.attr_ok then
            raise
              (Unsupported
                 (Printf.sprintf "%s axis from an attribute context node"
                    (XA.axis_name axis)));
          if needs_parent && r.parent < 0 then []
          else (
            t.n_rel <- t.n_rel + 1;
            let doc = doc_node t r.docid in
            let nklo = if via_dnk then pack_dnk r.docid nid r.pre else 0
            and nkhi = if via_dnk then pack_dnk r.docid nid r.post else 0 in
            let outer =
              [|
                Value.Int r.pre; Value.Int r.post; Value.Int r.parent;
                Value.Int (pack_dpre r.docid r.pre); Value.Int (pack_dpre r.docid r.post);
                Value.Int (if r.parent < 0 then -1 else pack_dpre r.docid r.parent);
                Value.Int (pack_dpre r.docid 0); Value.Int (pack_dpre r.docid doc.post);
                Value.Int nklo; Value.Int nkhi; name;
              |]
            in
            let cands = collect_cursor (Exec.open_cursor compiled ~outer ()) in
            if spec.reverse then List.rev cands else cands)

(* ---- the relational predicate subset (mirrors Eval/Value semantics) - *)

type pv = P_num of float | P_str of string | P_bool of bool | P_rows of node list

let unsupported fmt = Printf.ksprintf (fun m -> raise (Unsupported m)) fmt

let pnum = function
  | P_num f -> f
  | P_str s -> XV.number_value (XV.Str s)
  | P_bool b -> if b then 1.0 else 0.0
  | P_rows [] -> Float.nan
  | P_rows (r :: _) -> XV.number_value (XV.Str r.value)

let pbool = function
  | P_bool b -> b
  | P_num f -> f <> 0.0 && not (Float.is_nan f)
  | P_str s -> String.length s > 0
  | P_rows rs -> rs <> []

let num_cmp op x y =
  match op with
  | `Eq -> x = y
  | `Neq -> x <> y
  | `Lt -> x < y
  | `Leq -> x <= y
  | `Gt -> x > y
  | `Geq -> x >= y

let str_cmp op (x : string) (y : string) =
  match op with
  | `Eq -> String.equal x y
  | `Neq -> not (String.equal x y)
  | `Lt | `Leq | `Gt | `Geq ->
      num_cmp op (XV.number_value (XV.Str x)) (XV.number_value (XV.Str y))

let flip = function
  | `Lt -> `Gt
  | `Leq -> `Geq
  | `Gt -> `Lt
  | `Geq -> `Leq
  | (`Eq | `Neq) as e -> e

let cmp_of : XA.binop -> _ = function
  | XA.Eq -> `Eq
  | XA.Neq -> `Neq
  | XA.Lt -> `Lt
  | XA.Leq -> `Leq
  | XA.Gt -> `Gt
  | XA.Geq -> `Geq
  | op -> unsupported "comparison %s" (XA.binop_name op)

(* XPath 1.0 §3.4 with node-sets existentially quantified over row
   string-values — the same decision procedure as {!XV.compare_values} *)
let pcompare op a b =
  let one_side op rs other =
    match other with
    | P_num f -> List.exists (fun r -> num_cmp op (XV.number_value (XV.Str r.value)) f) rs
    | P_str s -> List.exists (fun r -> str_cmp op r.value s) rs
    | P_bool b -> num_cmp op (if rs <> [] then 1.0 else 0.0) (if b then 1.0 else 0.0)
    | P_rows _ -> assert false
  in
  match (a, b) with
  | P_rows r1, P_rows r2 ->
      List.exists (fun x -> List.exists (fun y -> str_cmp op x.value y.value) r2) r1
  | P_rows rs, other -> one_side op rs other
  | other, P_rows rs -> one_side (flip op) rs other
  | P_bool _, _ | _, P_bool _ ->
      num_cmp op (if pbool a then 1.0 else 0.0) (if pbool b then 1.0 else 0.0)
  | P_num _, _ | _, P_num _ -> num_cmp op (pnum a) (pnum b)
  | P_str s1, P_str s2 -> str_cmp op s1 s2

let rec eval_step t rows (step : XA.step) =
  match AR.compile step.axis step.test with
  | None -> []
  | Some spec ->
      let candidates = step_source t step.axis spec in
      let out =
        List.concat_map
          (fun r ->
            let cands = candidates r in
            List.fold_left (fun cs p -> filter_pred t cs p) cands step.XA.predicates)
          rows
      in
      doc_order_dedup out

(* candidates arrive in proximity order, so position is [i + 1]; a
   number-valued predicate selects by position (XPath §2.4) *)
and filter_pred t cands pred =
  let size = List.length cands in
  List.filteri
    (fun i r ->
      match peval t r ~position:(i + 1) ~size pred with
      | P_num f -> Float.of_int (i + 1) = f
      | v -> pbool v)
    cands

and peval t r ~position ~size (e : XA.expr) : pv =
  let recur = peval t r ~position ~size in
  match e with
  | XA.Number f -> P_num f
  | XA.Literal s -> P_str s
  | XA.Neg e -> P_num (-.pnum (recur e))
  | XA.Call ("position", []) -> P_num (Float.of_int position)
  | XA.Call ("last", []) -> P_num (Float.of_int size)
  | XA.Call ("true", []) -> P_bool true
  | XA.Call ("false", []) -> P_bool false
  | XA.Call ("count", [ a ]) -> (
      match recur a with
      | P_rows rs -> P_num (Float.of_int (List.length rs))
      | _ -> unsupported "count() over a non-node-set")
  | XA.Call ("not", [ a ]) -> P_bool (not (pbool (recur a)))
  | XA.Call ("string-length", [ a ]) -> (
      match recur a with
      | P_str s -> P_num (Float.of_int (String.length s))
      | P_rows [] -> P_num 0.0
      | P_rows (x :: _) -> P_num (Float.of_int (String.length x.value))
      | v -> P_num (Float.of_int (String.length (XV.string_value (XV.Num (pnum v))))))
  | XA.Path { absolute; steps } ->
      let start = if absolute then [ doc_node t r.docid ] else [ r ] in
      P_rows (List.fold_left (eval_step t) start steps)
  | XA.Binop (op, a, b) -> (
      match op with
      | XA.Or -> P_bool (pbool (recur a) || pbool (recur b))
      | XA.And -> P_bool (pbool (recur a) && pbool (recur b))
      | XA.Eq | XA.Neq | XA.Lt | XA.Leq | XA.Gt | XA.Geq ->
          P_bool (pcompare (cmp_of op) (recur a) (recur b))
      | XA.Plus -> P_num (pnum (recur a) +. pnum (recur b))
      | XA.Minus -> P_num (pnum (recur a) -. pnum (recur b))
      | XA.Mul -> P_num (pnum (recur a) *. pnum (recur b))
      | XA.Div -> P_num (pnum (recur a) /. pnum (recur b))
      | XA.Mod -> P_num (Float.rem (pnum (recur a)) (pnum (recur b)))
      | XA.Union -> (
          match (recur a, recur b) with
          | P_rows x, P_rows y -> P_rows (doc_order_dedup (x @ y))
          | _ -> unsupported "union of non-node-sets"))
  | XA.Var v -> unsupported "variable $%s" v
  | XA.Call (f, _) -> unsupported "function %s()" f
  | XA.Filter _ -> unsupported "filter expression"

let axis_step t rows step = eval_step t rows step

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let select t ~docid expr_s =
  let doc = doc_node t docid in
  try
    match Xdb_xpath.Parser.parse expr_s with
    | XA.Path { absolute = _; steps } -> List.fold_left (eval_step t) [ doc ] steps
    | _ -> raise (Unsupported "non-path expression")
  with Unsupported _ ->
    (* outside the relational subset: answer over the reconstructed tree
       and map the DOM result back through its pre stamps *)
    t.n_fallback <- t.n_fallback + 1;
    let rb = rebuilt t docid in
    let nodes = XE.select (XE.make_context rb.dom) expr_s in
    List.map
      (fun (n : X.node) ->
        let ix = if n.X.order >= 0 && n.X.order < Array.length rb.row_ix then rb.row_ix.(n.X.order) else -1 in
        if ix < 0 then err "DOM fallback produced a node outside the stored document";
        rb.rows.(ix))
      nodes

(* ------------------------------------------------------------------ *)
(* Serialization (differential-test form)                              *)
(* ------------------------------------------------------------------ *)

(* bare attribute nodes are not serializable markup; both sides of the
   differential comparison render them as [name="value"] *)
let attr_string ~prefix ~name ~value =
  let b = Buffer.create (String.length name + String.length value + 4) in
  if prefix <> "" then (
    Buffer.add_string b prefix;
    Buffer.add_char b ':');
  Buffer.add_string b name;
  Buffer.add_string b "=\"";
  Xdb_xml.Serializer.escape_attr b value;
  Buffer.add_char b '"';
  Buffer.contents b

let serialize t nodes =
  List.map
    (fun r ->
      if r.kind = "attr" then attr_string ~prefix:r.prefix ~name:r.name ~value:r.value
      else
        let rb = rebuilt t r.docid in
        match rb.by_pre.(r.pre) with
        | Some n -> Xdb_xml.Serializer.to_string n
        | None -> err "result row %d/%d has no reconstructed node" r.docid r.pre)
    nodes

let serialize_dom nodes =
  List.map
    (fun (n : X.node) ->
      match n.X.kind with
      | X.Attribute (q, v) -> attr_string ~prefix:q.X.prefix ~name:q.X.local ~value:v
      | _ -> Xdb_xml.Serializer.to_string n)
    nodes
