(** Table catalog, plus the column-statistics catalog filled by ANALYZE.

    [stats_version] is a monotonically increasing stamp bumped every time
    statistics change; the plan registry keys compiled plans on it so a
    re-ANALYZE invalidates stale plans (§7.3 spirit).

    [data_versions] is the DML mirror of that discipline: one monotonic
    counter per table, bumped whenever a statement changes the table's
    rows.  The result cache keys served transform output on the data
    versions of every table a plan reads, so a write invalidates exactly
    the cached results it can affect.  DML also marks the table's
    statistics stale ([stats_stale]) without bumping [stats_version]:
    plans stay valid (they re-execute against current rows, costs are
    merely dated) until the next ANALYZE refreshes the stats. *)

type t = {
  tables : (string, Table.t) Hashtbl.t;
  col_stats : (string, Colstats.table_stats) Hashtbl.t;
  mutable stats_version : int;
  data_versions : (string, int) Hashtbl.t;  (** absent = 0 (never written) *)
  stale_stats : (string, unit) Hashtbl.t;  (** tables written since their ANALYZE *)
}

exception Unknown_table of string

let create () =
  {
    tables = Hashtbl.create 8;
    col_stats = Hashtbl.create 8;
    stats_version = 0;
    data_versions = Hashtbl.create 8;
    stale_stats = Hashtbl.create 8;
  }

let data_version db name =
  match Hashtbl.find_opt db.data_versions name with Some v -> v | None -> 0

let bump_data_version db name =
  Hashtbl.replace db.data_versions name (data_version db name + 1);
  (* collected statistics no longer describe the rows; plans keep their
     cost-gated behavior until the next ANALYZE *)
  if Hashtbl.mem db.col_stats name then Hashtbl.replace db.stale_stats name ()

let stats_stale db name = Hashtbl.mem db.stale_stats name

let create_table db name columns =
  let t = Table.create name columns in
  Hashtbl.replace db.tables name t;
  (* replacing a table invalidates any statistics collected for it *)
  if Hashtbl.mem db.col_stats name then begin
    Hashtbl.remove db.col_stats name;
    Hashtbl.remove db.stale_stats name;
    db.stats_version <- db.stats_version + 1
  end;
  (* a replaced table's rows changed wholesale: cached results over the
     old contents must not be served *)
  if Hashtbl.mem db.data_versions name then
    Hashtbl.replace db.data_versions name (data_version db name + 1);
  t

let table db name =
  match Hashtbl.find_opt db.tables name with
  | Some t -> t
  | None -> raise (Unknown_table name)

let table_opt db name = Hashtbl.find_opt db.tables name

let table_names db = Hashtbl.fold (fun k _ acc -> k :: acc) db.tables [] |> List.sort compare

let stats_version db = db.stats_version

let set_table_stats db name (ts : Colstats.table_stats) =
  db.stats_version <- db.stats_version + 1;
  Hashtbl.remove db.stale_stats name;
  Hashtbl.replace db.col_stats name { ts with Colstats.version = db.stats_version }

let table_stats db name = Hashtbl.find_opt db.col_stats name

let column_stats db name col =
  match table_stats db name with
  | None -> None
  | Some ts -> List.assoc_opt col ts.Colstats.columns

let clear_stats db =
  if Hashtbl.length db.col_stats > 0 then begin
    Hashtbl.reset db.col_stats;
    Hashtbl.reset db.stale_stats;
    db.stats_version <- db.stats_version + 1
  end
