(** Table catalog, plus the column-statistics catalog filled by ANALYZE.

    [stats_version] is a monotonically increasing stamp bumped every time
    statistics change; the plan registry keys compiled plans on it so a
    re-ANALYZE invalidates stale plans (§7.3 spirit). *)

type t = {
  tables : (string, Table.t) Hashtbl.t;
  col_stats : (string, Colstats.table_stats) Hashtbl.t;
  mutable stats_version : int;
}

exception Unknown_table of string

let create () = { tables = Hashtbl.create 8; col_stats = Hashtbl.create 8; stats_version = 0 }

let create_table db name columns =
  let t = Table.create name columns in
  Hashtbl.replace db.tables name t;
  (* replacing a table invalidates any statistics collected for it *)
  if Hashtbl.mem db.col_stats name then begin
    Hashtbl.remove db.col_stats name;
    db.stats_version <- db.stats_version + 1
  end;
  t

let table db name =
  match Hashtbl.find_opt db.tables name with
  | Some t -> t
  | None -> raise (Unknown_table name)

let table_opt db name = Hashtbl.find_opt db.tables name

let table_names db = Hashtbl.fold (fun k _ acc -> k :: acc) db.tables [] |> List.sort compare

let stats_version db = db.stats_version

let set_table_stats db name (ts : Colstats.table_stats) =
  db.stats_version <- db.stats_version + 1;
  Hashtbl.replace db.col_stats name { ts with Colstats.version = db.stats_version }

let table_stats db name = Hashtbl.find_opt db.col_stats name

let column_stats db name col =
  match table_stats db name with
  | None -> None
  | Some ts -> List.assoc_opt col ts.Colstats.columns

let clear_stats db =
  if Hashtbl.length db.col_stats > 0 then begin
    Hashtbl.reset db.col_stats;
    db.stats_version <- db.stats_version + 1
  end
