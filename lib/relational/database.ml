(** Table catalog. *)

type t = { tables : (string, Table.t) Hashtbl.t }

exception Unknown_table of string

let create () = { tables = Hashtbl.create 8 }

let create_table db name columns =
  let t = Table.create name columns in
  Hashtbl.replace db.tables name t;
  t

let table db name =
  match Hashtbl.find_opt db.tables name with
  | Some t -> t
  | None -> raise (Unknown_table name)

let table_opt db name = Hashtbl.find_opt db.tables name

let table_names db = Hashtbl.fold (fun k _ acc -> k :: acc) db.tables [] |> List.sort compare
