(** Path/value index over a collection of XML documents (paper Figure 1 and
    §7.4): maps (rooted simple path, leaf string value) to the documents
    containing such a leaf, answering the document-selection half of a
    value predicate for CLOB/tree-stored collections. *)

type t

val create : unit -> t

val index : t -> int -> Xdb_xml.Types.node -> unit
(** [index t docid doc] — index every text-only element (under its rooted
    path) and every attribute (under [path/@name]). *)

val build : (int * Xdb_xml.Types.node) list -> t

val lookup : t -> path:string -> value:string -> int list
(** Ids of documents with a leaf [path = value], ascending, deduplicated. *)

val stats : t -> int * int
(** (documents indexed, entries added). *)
