(** In-memory B-tree index: {!Value.t} keys to row-id lists.

    Duplicate keys accumulate their row ids in insertion order.  Point
    lookups and inclusive/exclusive range scans are the access paths the
    optimiser uses for sargable predicates (paper §2.1).

    Concurrency: the tree mutates through {!insert}/{!remove} only under
    exclusive access — at load time, or behind the engine's writer lock
    once DML is live; between writes it is safe to probe from many
    domains at once.  The {!probes}/{!node_visits} observability counters —
    the only state touched on the read path — are atomics, so concurrent
    probes never drop increments. *)

type key = Value.t

type t

val create : unit -> t

val insert : t -> key -> int -> unit
(** [insert t key row_id] — O(log n); splits nodes as needed. *)

val remove : t -> key -> int -> bool
(** [remove t key row_id] — delete one [(key, row_id)] entry; [true] iff
    it was present.  Keys whose rid list empties are dropped; nodes are
    {e not} rebalanced (UPDATE volumes are tiny next to the loaded tree,
    underfull leaves are tolerated by every traversal, and DELETE-heavy
    paths rebuild indexes wholesale).  Like {!insert}, mutation requires
    exclusive access — the engine serializes writers against readers. *)

val find : t -> key -> int list
(** Row ids stored under exactly [key], in insertion order. *)

type bound = Unbounded | Inclusive of key | Exclusive of key

val range : t -> lo:bound -> hi:bound -> (key * int) list
(** Entries within the bounds, in key order (row ids under one key in
    insertion order).  Only subtrees intersecting the range are visited. *)

val range_rids : t -> lo:bound -> hi:bound -> int array
(** Row ids within the bounds, in {!range} order, without the
    intermediate (key, rid) list — the batch executor's index cursor.
    Counts as one probe. *)

val iter_range : t -> lo:bound -> hi:bound -> (key -> int -> unit) -> unit
(** Apply [f key rid] to each entry within the bounds, in {!range} order,
    materialising nothing — the cursor of [Shred]'s set-at-a-time
    structural joins (staircase interval sweeps, merged [dparent]
    probes).  A caller whose key encodes the row's position (the packed
    [dpre]/[dnk] keys) can resolve the row from the key alone, skipping
    the heap fetch.  Counts as one probe. *)

val to_list : t -> (key * int) list
(** All entries in key order. *)

val size : t -> int
(** Number of insertions performed. *)

val probes : t -> int
(** Cumulative [find]/[range] invocations since creation (or the last
    {!reset_counters}) — EXPLAIN ANALYZE observability. *)

val node_visits : t -> int
(** Cumulative nodes touched while answering probes. *)

val reset_counters : t -> unit
(** Zero {!probes} and {!node_visits}. *)

val height : t -> int
(** Tree height (≥ 1), for tests and cost estimates. *)

val check_invariants : t -> bool
(** Structural check: sorted keys, separator bounds, uniform leaf depth. *)
