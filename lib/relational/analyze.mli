(** ANALYZE: scan (or systematically sample) tables, compute per-column
    {!Colstats}, and store them in the {!Database} catalog with a version
    stamp.  Collected statistics switch the {!Optimizer} from rule-based
    defaults to cost-based decisions. *)

val default_sample : int
(** Row-sample cap per table (10 000); larger tables are sampled with a
    fixed stride. *)

val table : ?sample:int -> Database.t -> string -> int
(** Analyze one table; returns the number of rows sampled.
    @raise Database.Unknown_table when the table does not exist. *)

val all : ?sample:int -> Database.t -> (string * int) list
(** Analyze every table in the catalog; [(table, rows_sampled)] pairs in
    table-name order. *)
