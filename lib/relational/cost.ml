(** Cost model and cardinality estimation.

    Selectivities come from {!Colstats} (histograms, MCVs, NDV) when the
    table has been ANALYZEd, and fall back to the System-R defaults
    (1/10 equality, 1/3 range, 1/4 other) otherwise — so with no
    statistics collected every estimate is exactly what the rule-based
    optimizer produced.  Costs are abstract units: fetching one heap row
    costs 1. *)

open Algebra

(* ------------------------------------------------------------------ *)
(* Predicate analysis (shared with the optimizer)                      *)
(* ------------------------------------------------------------------ *)

(* split a conjunction into conjuncts *)
let rec conjuncts = function
  | Binop (And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let conjoin = function
  | [] -> Const (Value.Int 1)
  | e :: rest -> List.fold_left (fun acc c -> Binop (And, acc, c)) e rest

(* is [e] a sargable comparison over a bare/base column of [alias]?
   returns (column, op, constant-side expr); references to other aliases
   count as constant (outer correlation: constant per probe) *)
let sargable alias e =
  let col_of = function
    | Col (None, c) -> Some c
    | Col (Some a, c) when a = alias -> Some c
    | _ -> None
  in
  let rec is_const = function
    | Const _ -> true
    | Binop (_, a, b) -> is_const a && is_const b
    | Fn (_, args) -> List.for_all is_const args
    | Col (Some a, _) -> a <> alias (* outer correlation: constant per probe *)
    | _ -> false
  in
  match e with
  | Binop (((Eq | Lt | Leq | Gt | Geq) as op), lhs, rhs) -> (
      match (col_of lhs, is_const rhs, col_of rhs, is_const lhs) with
      | Some c, true, _, _ -> Some (c, op, rhs)
      | _, _, Some c, true ->
          let flipped =
            match op with Eq -> Eq | Lt -> Gt | Leq -> Geq | Gt -> Lt | Geq -> Leq | _ -> op
          in
          Some (c, flipped, lhs)
      | _ -> None)
  | _ -> None

let bounds_of op rhs =
  match op with
  | Eq -> (Incl rhs, Incl rhs)
  | Lt -> (Unbounded, Excl rhs)
  | Leq -> (Unbounded, Incl rhs)
  | Gt -> (Excl rhs, Unbounded)
  | Geq -> (Incl rhs, Unbounded)
  | _ -> (Unbounded, Unbounded)

(* System-R-style default selectivities, used when no statistics exist *)
let eq_selectivity = 0.1
let range_selectivity = 1.0 /. 3.0
let default_selectivity = 0.25

let default_conjunct_selectivity = function
  | Binop (Eq, _, _) -> eq_selectivity
  | Binop ((Lt | Leq | Gt | Geq), _, _) -> range_selectivity
  | _ -> default_selectivity

(* ------------------------------------------------------------------ *)
(* Stats-aware selectivity                                             *)
(* ------------------------------------------------------------------ *)

let const_value = function Const v -> Some v | _ -> None

(* base relation scanned beneath filters, if any: (table, alias) *)
let rec base_of_plan = function
  | Seq_scan { table; alias } | Index_scan { table; alias; _ } -> Some (table, alias)
  | Filter (_, input) -> base_of_plan input
  | _ -> None

(* selectivity of a comparison [col op rhs] against collected stats;
   None when stats cannot help and the caller should use defaults *)
let stats_cmp_selectivity (cs : Colstats.t) op rhs =
  match (op, const_value rhs) with
  | Eq, Some v -> Some (Colstats.selectivity_eq cs v)
  | Eq, None -> Some (Colstats.selectivity_eq_unknown cs)
  | Lt, Some v -> Some (Colstats.selectivity_lt cs v)
  | Leq, Some v -> Some (Colstats.selectivity_le cs v)
  | Gt, Some v ->
      Some (Float.max 1e-9 (1.0 -. cs.Colstats.null_frac -. Colstats.selectivity_le cs v))
  | Geq, Some v ->
      Some (Float.max 1e-9 (1.0 -. cs.Colstats.null_frac -. Colstats.selectivity_lt cs v))
  | _ -> None

(** Selectivity of one conjunct over rows of [table] scanned as [alias]:
    histogram/MCV-based when the conjunct is sargable with collected
    stats, the System-R default otherwise. *)
let conjunct_selectivity db ~table ~alias c =
  let fallback () = default_conjunct_selectivity c in
  match sargable alias c with
  | Some (col, op, rhs) -> (
      match Database.column_stats db table col with
      | Some cs -> (
          match stats_cmp_selectivity cs op rhs with
          | Some s -> s
          | None -> fallback ())
      | None -> fallback ())
  | None -> fallback ()

(* selectivity of an index range [lo, hi] over a column with stats *)
let index_range_selectivity (cs : Colstats.t) lo hi =
  let frac_hi = function
    | Unbounded -> 1.0 -. cs.Colstats.null_frac
    | Incl e -> (
        match const_value e with
        | Some v -> Colstats.selectivity_le cs v
        | None -> range_selectivity)
    | Excl e -> (
        match const_value e with
        | Some v -> Colstats.selectivity_lt cs v
        | None -> range_selectivity)
  in
  let frac_lo = function
    | Unbounded -> 0.0
    | Incl e -> (
        match const_value e with Some v -> Colstats.selectivity_lt cs v | None -> 0.0)
    | Excl e -> (
        match const_value e with Some v -> Colstats.selectivity_le cs v | None -> 0.0)
  in
  Float.max 1e-9 (frac_hi hi -. frac_lo lo)

(* ------------------------------------------------------------------ *)
(* Cardinality estimation                                              *)
(* ------------------------------------------------------------------ *)

let rec estimate ~use_stats db (plan : plan) : float =
  let table_size name =
    match (if use_stats then Database.table_stats db name else None) with
    | Some ts -> float_of_int (max 1 ts.Colstats.row_count)
    | None -> (
        match Database.table_opt db name with
        | Some t -> float_of_int (max 1 (Table.size t))
        | None -> 1000.0)
  in
  let col_stats table col =
    if use_stats then Database.column_stats db table col else None
  in
  match plan with
  | Seq_scan { table; _ } -> table_size table
  | Index_scan { table; index_column; lo; hi; _ } ->
      let n = table_size table in
      let sel =
        match col_stats table index_column with
        | Some cs -> (
            match (lo, hi) with
            | Incl a, Incl b when a = b -> (
                match const_value a with
                | Some v -> Colstats.selectivity_eq cs v
                | None -> Colstats.selectivity_eq_unknown cs)
            | Unbounded, Unbounded -> 1.0
            | _ -> index_range_selectivity cs lo hi)
        | None -> (
            match (lo, hi) with
            | Incl a, Incl b when a = b -> eq_selectivity
            | Unbounded, Unbounded -> 1.0
            | _ -> range_selectivity)
      in
      Float.max 1.0 (n *. sel)
  | Filter (cond, input) ->
      let base = base_of_plan input in
      let sel_of c =
        match base with
        | Some (table, alias) when use_stats -> conjunct_selectivity db ~table ~alias c
        | _ -> default_conjunct_selectivity c
      in
      let sel = List.fold_left (fun acc c -> acc *. sel_of c) 1.0 (conjuncts cond) in
      Float.max 1.0 (estimate ~use_stats db input *. sel)
  | Project (_, input) | Sort (_, input) -> estimate ~use_stats db input
  | Limit (n, input) -> Float.min (float_of_int n) (estimate ~use_stats db input)
  | Nested_loop { outer; inner; join_cond } ->
      let raw = estimate ~use_stats db outer *. estimate ~use_stats db inner in
      let sel =
        match join_cond with
        | None -> 1.0
        | Some cond ->
            let equi_stats_sel () =
              (* NDV-based selectivity for the first equi-join conjunct
                 whose column has stats, on either side *)
              if not use_stats then None
              else
                let try_side side_plan =
                  match base_of_plan side_plan with
                  | None -> None
                  | Some (table, alias) ->
                      List.find_map
                        (fun c ->
                          match sargable alias c with
                          | Some (col, Eq, rhs) when const_value rhs = None -> (
                              match Database.column_stats db table col with
                              | Some cs -> Some (Colstats.selectivity_eq_unknown cs)
                              | None -> None)
                          | _ -> None)
                        (conjuncts cond)
                in
                match try_side inner with Some s -> Some s | None -> try_side outer
            in
            Option.value (equi_stats_sel ()) ~default:eq_selectivity
      in
      Float.max 1.0 (raw *. sel)
  | Hash_join { outer; inner; keys; kind } ->
      let ro = estimate ~use_stats db outer and ri = estimate ~use_stats db inner in
      (* per-key equi selectivity: NDV-based (MCV-weighted) when either
         side's key column has stats, the System-R default otherwise *)
      let key_sel side_plan key =
        match (base_of_plan side_plan, key) with
        | Some (table, alias), Col (a, col)
          when (match a with None -> true | Some a -> a = alias) && use_stats -> (
            match Database.column_stats db table col with
            | Some cs -> Some (Colstats.selectivity_eq_unknown cs)
            | None -> None)
        | _ -> None
      in
      let sel =
        List.fold_left
          (fun acc (ok, ik) ->
            let s =
              match key_sel inner ik with
              | Some s -> s
              | None -> Option.value (key_sel outer ok) ~default:eq_selectivity
            in
            acc *. s)
          1.0 keys
      in
      (* fraction of probe rows with at least one build match *)
      let match_frac = Float.min 1.0 (ri *. sel) in
      Float.max 1.0
        (match kind with
        | Inner -> ro *. ri *. sel
        | Left_outer -> Float.max ro (ro *. ri *. sel)
        | Semi -> ro *. match_frac
        | Anti -> ro *. (1.0 -. match_frac))
  | Aggregate { group_by = []; _ } -> 1.0
  | Aggregate { group_by; input; _ } -> (
      let in_rows = estimate ~use_stats db input in
      let ndv_groups () =
        match (group_by, base_of_plan input) with
        | [ (Col (_, c), _) ], Some (table, _) when use_stats -> (
            match Database.column_stats db table c with
            | Some cs -> Some (float_of_int (max 1 cs.Colstats.ndv))
            | None -> None)
        | _ -> None
      in
      match ndv_groups () with
      | Some ndv -> Float.max 1.0 (Float.min in_rows ndv)
      | None -> Float.max 1.0 (in_rows /. 4.0))
  | Values { rows; _ } -> float_of_int (List.length rows)

(** Stats-aware cardinality estimate (defaults when stats are absent). *)
let estimate_rows db plan = estimate ~use_stats:true db plan

(** Cardinality estimate using only the System-R defaults, ignoring any
    collected statistics — the pre-ANALYZE baseline, kept for q-error
    comparison in the planquality bench. *)
let estimate_rows_default db plan = estimate ~use_stats:false db plan

(* ------------------------------------------------------------------ *)
(* Plan cost                                                           *)
(* ------------------------------------------------------------------ *)

(* abstract cost units: one heap-row fetch = 1 *)
let heap_row_cost = 1.0
let btree_descent_cost n = 0.5 +. (0.25 *. (Float.log (Float.max 2.0 n) /. Float.log 2.0))
let eval_cost = 0.05 (* per row, per expression evaluated *)
let sort_row_cost n = 0.05 *. (Float.log (Float.max 2.0 n) /. Float.log 2.0)

(* hash join: inserting one build row / probing one key.  Deliberately
   priced above a couple of expression evaluations so a correlated index
   probe still wins small joins (the PR2 plans), while the O(n+m) total
   crushes the O(n·m) nested loop at scale. *)
let hash_build_row_cost = 0.3
let hash_probe_cost = 0.25

(** [plan_cost db plan] — estimated execution cost in abstract units,
    using stats-aware cardinalities.  Correlated subqueries nested inside
    expressions are charged once per input row. *)
let rec plan_cost db (plan : plan) : float =
  let rows p = estimate_rows db p in
  let expr_subplan_cost e =
    List.fold_left (fun acc p -> acc +. plan_cost db p) 0.0 (subplans_of_expr e)
  in
  match plan with
  | Seq_scan { table; _ } ->
      let n =
        match Database.table_opt db table with
        | Some t -> float_of_int (max 1 (Table.size t))
        | None -> 1000.0
      in
      n *. heap_row_cost
  | Index_scan { table; _ } as scan ->
      let n =
        match Database.table_opt db table with
        | Some t -> float_of_int (max 1 (Table.size t))
        | None -> 1000.0
      in
      btree_descent_cost n +. (rows scan *. heap_row_cost)
  | Filter (cond, input) ->
      let cs = conjuncts cond in
      let per_row =
        (eval_cost *. float_of_int (List.length cs))
        +. List.fold_left (fun acc c -> acc +. expr_subplan_cost c) 0.0 cs
      in
      plan_cost db input +. (rows input *. per_row)
  | Project (fields, input) ->
      let per_row =
        List.fold_left (fun acc (e, _) -> acc +. eval_cost +. expr_subplan_cost e) 0.0 fields
      in
      plan_cost db input +. (rows input *. per_row)
  | Nested_loop { outer; inner; join_cond } ->
      let cond_cost =
        match join_cond with
        | None -> 0.0
        | Some _ -> rows outer *. rows inner *. eval_cost
      in
      plan_cost db outer +. (rows outer *. plan_cost db inner) +. cond_cost
  | Hash_join { outer; inner; keys; _ } as hj ->
      let nkeys = float_of_int (max 1 (List.length keys)) in
      plan_cost db outer +. plan_cost db inner
      +. (rows inner *. (hash_build_row_cost +. (eval_cost *. nkeys)))
      +. (rows outer *. (hash_probe_cost +. (eval_cost *. nkeys)))
      +. (rows hj *. eval_cost)
  | Aggregate { group_by; aggs; input } ->
      let agg_subplan_cost =
        List.fold_left
          (fun acc (a, _) ->
            acc
            +. List.fold_left (fun acc p -> acc +. plan_cost db p) 0.0 (subplans_of_agg a))
          0.0 aggs
      in
      let per_row =
        (eval_cost *. float_of_int (List.length group_by + List.length aggs))
        +. agg_subplan_cost
      in
      plan_cost db input +. (rows input *. per_row)
  | Sort (_, input) ->
      let n = rows input in
      plan_cost db input +. (n *. sort_row_cost n)
  | Limit (_, input) -> plan_cost db input
  | Values { rows; _ } -> 0.01 *. float_of_int (List.length rows)
