(** Plan and expression evaluation.

    Two executors live here.  The {b compiled} executor (behind {!run},
    {!run_arrays} and friends) resolves every column reference to a slot
    in a fixed {!Layout.t} when the plan is opened, compiles expressions
    into closures over [Value.t array] rows, and pulls batches of
    ~{!default_batch_size} rows between operators.  The {b interpreted}
    executor ({!run_interpreted}) keeps the original association-list
    row semantics and serves as the executable reference for
    differential tests and benchmarks.

    Each scan binds both the bare column name and the [alias.column]
    qualified form, so correlated subqueries can reference outer tables
    the way paper Table 7 does. *)

type row = (string * Value.t) list

exception Exec_error of string

val bool_of_value : Value.t -> bool
(** SQL truthiness: NULL/0/NaN/""/empty-XML are false.  Streamed XMLType
    values probe their producer for a first event. *)

val xml_content : Value.t -> Xdb_xml.Types.node list
(** SQL/XML content conversion: XML values are deep-copied (streamed ones
    materialized), scalars become text nodes, NULL vanishes. *)

val emit_content : Xdb_xml.Events.sink -> Value.t -> unit
(** The streamed image of {!xml_content}: replay a value as output events
    (XML forests replay node by node, scalars emit one text event, NULL
    emits nothing). *)

val eval_expr : Database.t -> row -> Algebra.expr -> Value.t
(** Evaluate a scalar/XML expression against a row environment, resolving
    names per access (interpreted semantics — used by view
    materialisation).  Correlated subqueries run with the row as their
    outer environment.
    @raise Exec_error on unknown columns or type errors. *)

val scan_bindings : Table.t -> string -> Value.t array -> row
(** Row bindings a scan produces: bare and alias-qualified names. *)

(** {1 Compiled execution} *)

val default_batch_size : int
(** Rows per batch exchanged between operators (1024). *)

type cursor = unit -> Value.t array array option
(** Batch cursor: [None] at end of stream; batches are never empty. *)

type compiled
(** A plan after the column-resolution pass: fixed output layout,
    expressions compiled to closures, ready to open. *)

val compile :
  Database.t ->
  ?stats:Stats.t ->
  ?outer:Layout.t ->
  ?batch_size:int ->
  ?xml_streaming:bool ->
  ?partition:string * int * int ->
  Algebra.plan ->
  compiled
(** Resolve every column reference (including inside CASE branches and
    correlated subqueries) against the operator layouts; compile
    expressions to closures; build batch cursors.  [xml_streaming]
    (default false) makes XML constructors produce [Value.Xml_stream]
    event producers instead of materialized node trees — same bytes on
    serialization, no per-row DOM.

    [partition:(table, lo, hi)] restricts the [Seq_scan] over [table] to
    the half-open row-id window [lo, hi) — the hook domain-parallel
    execution uses to split the driving scan of a rewrite plan across
    domains ({!Pipeline}).  The caller must ensure [table] is scanned
    exactly once in the plan (correlated subplans included); otherwise
    every matching scan is windowed and results change.
    @raise Exec_error at plan-open time for unknown or ambiguous
    columns, listing the columns that are available. *)

val compiled_layout : compiled -> Layout.t
(** Output layout: own columns first, outer correlation row as tail. *)

val open_cursor : compiled -> ?outer:Value.t array -> unit -> cursor
(** Open one execution over the physical outer row (default empty). *)

val run_arrays :
  Database.t ->
  ?batch_size:int ->
  ?xml_streaming:bool ->
  ?partition:string * int * int ->
  Algebra.plan ->
  Layout.t * Value.t array list
(** Compiled execution to physical rows plus their layout — the
    allocation-light entry point for hot paths.  [partition] as in
    {!compile}. *)

val run_arrays_analyzed :
  Database.t ->
  ?batch_size:int ->
  ?xml_streaming:bool ->
  ?partition:string * int * int ->
  Algebra.plan ->
  (Layout.t * Value.t array list) * Stats.t
(** {!run_arrays} with per-operator instrumentation. *)

(** {1 Assoc-row entry points (compiled underneath)} *)

val run : Database.t -> ?outer:row -> Algebra.plan -> row list
(** Execute a plan; [outer] supplies correlation bindings.  Runs the
    compiled executor and converts each physical row back to an
    association list via the output layout. *)

val run_analyzed : Database.t -> ?outer:row -> Algebra.plan -> row list * Stats.t
(** [run] with per-operator instrumentation: every operator of the plan
    (correlated subqueries included) records rows produced, loops,
    B-tree probe counts and inclusive wall time into the returned
    collector — the input to {!Optimizer.explain_analyze}. *)

val run_column : Database.t -> ?outer:row -> Algebra.plan -> Value.t list
(** First column of each result row. *)

(** {1 Interpreted reference executor} *)

val run_interpreted :
  Database.t -> ?outer:row -> ?xml_streaming:bool -> Algebra.plan -> row list
(** The original assoc-row executor: names resolved per row with
    [List.assoc], one row at a time.  Reference semantics for
    differential tests and the [execscale] benchmark baseline. *)

val run_interpreted_analyzed : Database.t -> ?outer:row -> Algebra.plan -> row list * Stats.t
(** {!run_interpreted} with per-operator instrumentation; produces the
    same per-operator actual-row counts as {!run_analyzed}. *)
