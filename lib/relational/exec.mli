(** Plan and expression evaluation.

    Rows at runtime are association lists from column names to values;
    each scan binds both the bare column name and the [alias.column]
    qualified form, so correlated subqueries can reference outer tables
    the way paper Table 7 does. *)

type row = (string * Value.t) list

exception Exec_error of string

val bool_of_value : Value.t -> bool
(** SQL truthiness: NULL/0/NaN/""/empty-XML are false. *)

val xml_content : Value.t -> Xdb_xml.Types.node list
(** SQL/XML content conversion: XML values are deep-copied, scalars become
    text nodes, NULL vanishes. *)

val eval_expr : Database.t -> row -> Algebra.expr -> Value.t
(** Evaluate a scalar/XML expression against a row environment.  Correlated
    subqueries run with the row as their outer environment.
    @raise Exec_error on unknown columns or type errors. *)

val scan_bindings : Table.t -> string -> Value.t array -> row
(** Row bindings a scan produces: bare and alias-qualified names. *)

val run : Database.t -> ?outer:row -> Algebra.plan -> row list
(** Execute a plan; [outer] supplies correlation bindings. *)

val run_analyzed : Database.t -> ?outer:row -> Algebra.plan -> row list * Stats.t
(** [run] with per-operator instrumentation: every operator of the plan
    (correlated subqueries included) records rows produced, loops,
    B-tree probe counts and inclusive wall time into the returned
    collector — the input to {!Optimizer.explain_analyze}. *)

val run_column : Database.t -> ?outer:row -> Algebra.plan -> Value.t list
(** First column of each result row. *)
