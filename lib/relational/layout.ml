(** Compiled row layouts: column name → integer slot maps.

    The compiled executor represents rows as [Value.t array]; a layout is
    the static description of one operator's output rows.  Several names
    may share a slot — a scan binds each column both bare and
    [alias.column]-qualified, exactly like the interpreted executor's
    association-list rows — and name resolution follows entry order, so
    the first match wins just as [List.assoc] did.  Layouts are built once
    at plan-open time; unresolvable references become plan-time errors
    instead of per-row failures. *)

type t = {
  entries : (string * int) array;  (** resolution order = seed assoc order *)
  width : int;  (** physical slots per row *)
}

let empty = { entries = [||]; width = 0 }

let width t = t.width

let entries t = Array.to_list t.entries

(** [of_list ~width entries] — a layout from explicit (name, slot) pairs
    (e.g. projection output).  Slots must lie in [0, width). *)
let of_list ~width entries = { entries = Array.of_list entries; width }

(** [of_columns ~alias names] — the layout of a table scan: one slot per
    column, each bound under the bare name and the [alias.column] form
    (bare first, matching the interpreted executor's binding order). *)
let of_columns ~alias names =
  let n = Array.length names in
  let entries = Array.make (2 * n) ("", 0) in
  Array.iteri
    (fun i c ->
      entries.(2 * i) <- (c, i);
      entries.((2 * i) + 1) <- (alias ^ "." ^ c, i))
    names;
  { entries; width = n }

(** [concat a b] — rows of [a] with rows of [b] appended: [b]'s slots are
    shifted past [a]'s width, and [a]'s names shadow [b]'s.  This is how
    every operator carries its correlation bindings: own columns first,
    outer row as the tail. *)
let concat a b =
  if b.width = 0 && Array.length b.entries = 0 then a
  else
    {
      entries =
        Array.append a.entries (Array.map (fun (n, s) -> (n, s + a.width)) b.entries);
      width = a.width + b.width;
    }

(** [prefix t w] — the layout of the first [w] slots only: entries whose
    slot lies below [w], resolution order preserved.  Inverse of {!concat}
    on the left operand — how the hash join recovers the build side's own
    columns from build rows that carry a correlation tail. *)
let prefix t w =
  {
    entries = Array.of_seq (Seq.filter (fun (_, s) -> s < w) (Array.to_seq t.entries));
    width = w;
  }

(** [slot_opt t ?alias name] — resolve a column reference to its slot;
    qualified references resolve the ["alias.name"] entry. *)
let slot_opt t ?alias name =
  let key = match alias with Some a -> a ^ "." ^ name | None -> name in
  let n = Array.length t.entries in
  let rec go i =
    if i >= n then None
    else
      let nm, s = t.entries.(i) in
      if String.equal nm key then Some s else go (i + 1)
  in
  go 0

(** Distinct column names in resolution order — error-message material. *)
let names t =
  let seen = Hashtbl.create 16 in
  Array.to_list t.entries
  |> List.filter_map (fun (n, _) ->
         if Hashtbl.mem seen n then None
         else (
           Hashtbl.add seen n ();
           Some n))

let describe t = match names t with [] -> "<none>" | ns -> String.concat ", " ns

(** [to_assoc t row] — the association-list view of a physical row, in
    layout entry order (reproduces the interpreted executor's row shape). *)
let to_assoc t (row : Value.t array) : (string * Value.t) list =
  Array.fold_right (fun (n, s) acc -> (n, row.(s)) :: acc) t.entries []

(** [of_bindings names] — a layout for an externally supplied environment:
    one slot per binding, in order. *)
let of_bindings (ns : string list) =
  { entries = Array.of_list (List.mapi (fun i n -> (n, i)) ns); width = List.length ns }
