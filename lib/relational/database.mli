(** Table catalog, plus the column-statistics catalog filled by ANALYZE
    and the per-table data versions bumped by DML.

    Concurrency contract (audited for domain-parallel execution): the
    catalog Hashtbls mutate only through {!create_table} /
    {!set_table_stats} / {!bump_data_version} — i.e. during load, ANALYZE
    and DML statements, all of which the engine runs on its writer side
    (no transform executes concurrently with them).  Between writes the
    catalog, every {!Table.t} (rows, indexes) and every
    {!Colstats.table_stats} record are read-only, so executor domains
    read them without locks.  The one read-path exception, the B-tree
    probe counters, is handled inside {!Btree} with atomics. *)

type t

exception Unknown_table of string

val create : unit -> t

val create_table : t -> string -> Table.column list -> Table.t
(** Create (or replace) a table in the catalog; replacing drops any
    statistics collected for the old table and bumps the table's data
    version (its rows changed wholesale). *)

val table : t -> string -> Table.t
(** @raise Unknown_table when absent. *)

val table_opt : t -> string -> Table.t option

val table_names : t -> string list
(** Sorted list of registered table names. *)

val stats_version : t -> int
(** Monotonic stamp bumped whenever statistics change; the plan registry
    keys compiled plans on it so re-ANALYZE invalidates stale plans. *)

val data_version : t -> string -> int
(** Monotonic per-table stamp, 0 until the table is first written.
    Bumped by every effective DML statement (and by table replacement);
    the result cache validates served transform output against the data
    versions of every table the plan read. *)

val bump_data_version : t -> string -> unit
(** Record that [table]'s rows changed: bump its data version and mark
    its statistics stale (without touching [stats_version] — plans keep
    their cost-gated behavior until the next ANALYZE). *)

val stats_stale : t -> string -> bool
(** Has the table been written since its statistics were collected?
    Cleared by {!set_table_stats} (ANALYZE). *)

val set_table_stats : t -> string -> Colstats.table_stats -> unit
(** Store statistics for a table, bumping [stats_version], stamping it
    into the record and clearing the table's staleness mark. *)

val table_stats : t -> string -> Colstats.table_stats option
val column_stats : t -> string -> string -> Colstats.t option

val clear_stats : t -> unit
(** Drop all collected statistics (bumps [stats_version] if any existed). *)
