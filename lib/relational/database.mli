(** Table catalog, plus the column-statistics catalog filled by ANALYZE.

    Concurrency contract (audited for domain-parallel execution): the
    catalog Hashtbls mutate only through {!create_table} /
    {!set_table_stats} — i.e. during load and ANALYZE, both of which run
    on a single domain before any parallel transform starts.  After that
    point the catalog, every {!Table.t} (rows, indexes) and every
    {!Colstats.table_stats} record are immutable, so executor domains
    read them without locks.  The one read-path exception, the B-tree
    probe counters, is handled inside {!Btree} with atomics. *)

type t

exception Unknown_table of string

val create : unit -> t

val create_table : t -> string -> Table.column list -> Table.t
(** Create (or replace) a table in the catalog; replacing drops any
    statistics collected for the old table. *)

val table : t -> string -> Table.t
(** @raise Unknown_table when absent. *)

val table_opt : t -> string -> Table.t option

val table_names : t -> string list
(** Sorted list of registered table names. *)

val stats_version : t -> int
(** Monotonic stamp bumped whenever statistics change; the plan registry
    keys compiled plans on it so re-ANALYZE invalidates stale plans. *)

val set_table_stats : t -> string -> Colstats.table_stats -> unit
(** Store statistics for a table, bumping [stats_version] and stamping it
    into the record. *)

val table_stats : t -> string -> Colstats.table_stats option
val column_stats : t -> string -> string -> Colstats.t option

val clear_stats : t -> unit
(** Drop all collected statistics (bumps [stats_version] if any existed). *)
