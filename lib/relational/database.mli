(** Table catalog. *)

type t

exception Unknown_table of string

val create : unit -> t

val create_table : t -> string -> Table.column list -> Table.t
(** Create (or replace) a table in the catalog. *)

val table : t -> string -> Table.t
(** @raise Unknown_table when absent. *)

val table_opt : t -> string -> Table.t option

val table_names : t -> string list
(** Sorted list of registered table names. *)
