(** Table catalog, plus the column-statistics catalog filled by ANALYZE. *)

type t

exception Unknown_table of string

val create : unit -> t

val create_table : t -> string -> Table.column list -> Table.t
(** Create (or replace) a table in the catalog; replacing drops any
    statistics collected for the old table. *)

val table : t -> string -> Table.t
(** @raise Unknown_table when absent. *)

val table_opt : t -> string -> Table.t option

val table_names : t -> string list
(** Sorted list of registered table names. *)

val stats_version : t -> int
(** Monotonic stamp bumped whenever statistics change; the plan registry
    keys compiled plans on it so re-ANALYZE invalidates stale plans. *)

val set_table_stats : t -> string -> Colstats.table_stats -> unit
(** Store statistics for a table, bumping [stats_version] and stamping it
    into the record. *)

val table_stats : t -> string -> Colstats.table_stats option
val column_stats : t -> string -> string -> Colstats.t option

val clear_stats : t -> unit
(** Drop all collected statistics (bumps [stats_version] if any existed). *)
