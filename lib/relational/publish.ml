(** SQL/XML publishing specs and XMLType views.

    A publishing spec is the declarative description of how an XMLType view
    column is generated from relational data (paper Table 3: nested
    [XMLElement] / [XMLAgg] over master-detail tables).  It serves three
    roles:

    + {b Materialisation} — building the XML documents, which is exactly
      what the functional (no-rewrite) evaluation must do first;
    + {b Structural information} — deriving an {!Xdb_schema.Types.t} for
      the partial evaluator: scalar-bound elements have cardinality one,
      [Agg] children are unbounded, and children of an element form a
      [sequence] model group (paper §3.2, bullet 2);
    + {b Rewrite target} — the XQuery→SQL/XML rewriter navigates the spec
      to map path steps to columns and nested scans (paper Tables 7/11). *)

module X = Xdb_xml.Types
module E = Xdb_xml.Events
module S = Xdb_schema.Types

type spec =
  | Elem of { name : string; attrs : (string * Algebra.expr) list; content : spec list }
      (** [XMLElement(name, XMLAttributes(...), content...)] *)
  | Text_col of string  (** text content from a column of the current scope *)
  | Text_expr of Algebra.expr  (** computed text content *)
  | Text_const of string
  | Agg of {
      table : string;
      alias : string;
      correlate : (string * string) list;
          (** (inner column, outer column) equi-correlations *)
      where : Algebra.expr option;  (** extra uncorrelated predicate *)
      order_by : (string * Algebra.order_dir) list;
      body : spec;  (** one body instance per detail row *)
    }  (** correlated scalar subquery with [XMLAgg] (paper Table 3) *)

type view = {
  view_name : string;
  base_table : string;
  base_alias : string;
  column : string;  (** name of the XMLType output column *)
  spec : spec;  (** one document per base-table row *)
}

exception Publish_error of string

let err fmt = Printf.ksprintf (fun m -> raise (Publish_error m)) fmt

(* ------------------------------------------------------------------ *)
(* Materialisation                                                     *)
(* ------------------------------------------------------------------ *)

(* detail rows an [Agg] iterates for one outer row: probe a B-tree on a
   correlation column when one exists (what the RDBMS does when evaluating
   the view), fall back to a scan; then residual correlations, the WHERE
   predicate and ORDER BY *)
let agg_rows db (env : Exec.row) ~table ~alias ~correlate ~where ~order_by : Exec.row list =
  let tbl = Database.table db table in
  let indexed_correlation =
    List.find_map
      (fun (inner_col, outer_col) ->
        match Table.find_index tbl inner_col with
        | Some idx -> Some (idx, inner_col, outer_col)
        | None -> None)
      correlate
  in
  let rows =
    match indexed_correlation with
    | Some (idx, _, outer_col) ->
        let key =
          match List.assoc_opt outer_col env with
          | Some v -> v
          | None -> err "correlation column missing (outer %s)" outer_col
        in
        List.map
          (fun rid -> Exec.scan_bindings tbl alias (Table.row tbl rid))
          (Btree.find idx.Table.tree key)
    | None ->
        List.rev (Table.fold (fun acc _ r -> Exec.scan_bindings tbl alias r :: acc) [] tbl)
  in
  let rows =
    List.filter
      (fun irow ->
        List.for_all
          (fun (inner_col, outer_col) ->
            match (List.assoc_opt inner_col irow, List.assoc_opt outer_col env) with
            | Some iv, Some ov -> Value.equal_sql iv ov
            | _ -> err "correlation column missing (%s = outer %s)" inner_col outer_col)
          correlate)
      rows
  in
  let rows =
    match where with
    | None -> rows
    | Some cond ->
        List.filter (fun irow -> Exec.bool_of_value (Exec.eval_expr db (irow @ env) cond)) rows
  in
  if order_by = [] then rows
  else
    let key r = List.map (fun (c, d) -> (List.assoc c r, d)) order_by in
    List.stable_sort
      (fun a b ->
        let rec go = function
          | [] -> 0
          | ((va, d), (vb, _)) :: rest -> (
              let c = Value.compare_key va vb in
              let c = match d with Algebra.Asc -> c | Algebra.Desc -> -c in
              match c with 0 -> go rest | c -> c)
        in
        go (List.combine (key a) (key b)))
      rows

(** [emit_spec db env spec sink] — the publishing spec as an event stream:
    the single construction path.  Feeding a serializing sink publishes
    with no intermediate tree; feeding a tree builder is exactly
    {!materialize_spec}. *)
let rec emit_spec db (env : Exec.row) spec (sink : E.sink) : unit =
  match spec with
  | Text_const s -> sink.E.emit (E.Text s)
  | Text_col c -> (
      match List.assoc_opt c env with
      | None -> err "publishing spec references unknown column %s" c
      | Some Value.Null -> ()
      | Some v -> sink.E.emit (E.Text (Value.to_string v)))
  | Text_expr e -> (
      match Exec.eval_expr db env e with
      | Value.Null -> ()
      | v -> sink.E.emit (E.Text (Value.to_string v)))
  | Elem { name; attrs; content } ->
      sink.E.emit (E.Start_element (X.qname name));
      List.iter
        (fun (an, ae) ->
          match Exec.eval_expr db env ae with
          | Value.Null -> ()
          | v -> sink.E.emit (E.Attr (X.qname an, Value.to_string v)))
        attrs;
      List.iter (fun c -> emit_spec db env c sink) content;
      sink.E.emit E.End_element
  | Agg { table; alias; correlate; where; order_by; body } ->
      List.iter
        (fun irow -> emit_spec db (irow @ env) body sink)
        (agg_rows db env ~table ~alias ~correlate ~where ~order_by)

let materialize_spec db (env : Exec.row) spec : X.node list =
  let b = E.tree_builder () in
  emit_spec db env spec (E.builder_sink b);
  E.builder_result b

(* iterate the base rows a materialisation covers: the whole table, or the
   half-open row-id window [lo, hi) when [row_range] is given (the
   partition hook domain-parallel functional execution uses) *)
let fold_base_rows ?row_range f acc tbl =
  match row_range with
  | None -> Table.fold (fun acc _ r -> f acc r) acc tbl
  | Some (lo, hi) ->
      let lo = max 0 lo and hi = min hi (Table.size tbl) in
      let acc = ref acc in
      for rid = lo to hi - 1 do
        acc := f !acc (Table.unsafe_row tbl rid)
      done;
      !acc

(** [materialize db view] — one XML document (as a document node) per base
    table row, in table order.  This is the input the functional XSLT
    evaluation consumes.  [row_range:(lo, hi)] restricts to that row-id
    window (domain-parallel partitioning). *)
let materialize db ?row_range view =
  let tbl = Database.table db view.base_table in
  fold_base_rows ?row_range
    (fun acc r ->
      let env = Exec.scan_bindings tbl view.base_alias r in
      let nodes = materialize_spec db env view.spec in
      let doc = X.make X.Document in
      List.iter (X.append_child doc) nodes;
      X.reindex doc;
      doc :: acc)
    [] tbl
  |> List.rev

(** [materialize_serialized db view] — the documents of {!materialize} as
    serialized strings, one per base row, streaming spec events straight
    into a reused buffer: no tree is ever built. *)
let materialize_serialized db ?(meth = E.Xml) ?(indent = false) ?row_range view :
    string list =
  let tbl = Database.table db view.base_table in
  let buf = Buffer.create 1024 in
  fold_base_rows ?row_range
    (fun acc r ->
      let env = Exec.scan_bindings tbl view.base_alias r in
      Buffer.clear buf;
      let sink = E.serializing_sink ~meth ~indent buf in
      emit_spec db env view.spec sink;
      sink.E.finish ();
      Buffer.contents buf :: acc)
    [] tbl
  |> List.rev

(* ------------------------------------------------------------------ *)
(* Structural information                                              *)
(* ------------------------------------------------------------------ *)

(** Derive the element declarations for the documents [materialize]
    produces.  Scalar content ⇒ exactly-one text leaf; [Agg] bodies ⇒
    unbounded cardinality; element children form a [sequence] group. *)
let to_schema view : S.t =
  let decls : (string, S.element_decl) Hashtbl.t = Hashtbl.create 16 in
  let add_decl d =
    match Hashtbl.find_opt decls d.S.name with
    | None -> Hashtbl.add decls d.S.name d
    | Some existing ->
        if existing <> d then err "element %s published with two different shapes" d.S.name
  in
  let rec walk spec ~(occurs : S.occurs) : S.particle list * bool =
    match spec with
    | Text_const _ | Text_col _ | Text_expr _ -> ([], true)
    | Elem { name; attrs; content } ->
        let parts, has_text =
          List.fold_left
            (fun (ps, txt) c ->
              let ps', txt' = walk c ~occurs:S.exactly_one in
              (ps @ ps', txt || txt'))
            ([], false) content
        in
        add_decl
          {
            S.name;
            group = S.Sequence;
            particles = parts;
            has_text;
            attrs = List.map fst attrs;
          };
        ([ { S.child = name; occurs } ], false)
    | Agg { body; _ } ->
        let parts, _ = walk body ~occurs:S.many in
        (parts, false)
  in
  let root_particles, _ = walk view.spec ~occurs:S.exactly_one in
  match root_particles with
  | [ { S.child = root; _ } ] ->
      S.make ~root (Hashtbl.fold (fun _ d acc -> d :: acc) decls [])
  | _ -> err "view %s must publish exactly one root element" view.view_name

(* ------------------------------------------------------------------ *)
(* Spec navigation (used by the XQuery→SQL/XML rewriter)               *)
(* ------------------------------------------------------------------ *)

let spec_elem_name = function
  | Elem { name; _ } -> Some name
  | Agg { body = Elem { name; _ }; _ } -> Some name
  | _ -> None

(** Children of a located element that are themselves elements or aggs. *)
let child_specs = function
  | Elem { content; _ } -> content
  | Agg { body = Elem { content; _ }; _ } -> content
  | _ -> []

(** [navigate spec name] finds the child spec publishing element [name]. *)
let navigate spec name =
  List.find_opt (fun c -> spec_elem_name c = Some name) (child_specs spec)

(** The scalar column bound as the text content of a located element, if its
    content is a single [Text_col]. *)
let scalar_column = function
  | Elem { content = [ Text_col c ]; _ } | Agg { body = Elem { content = [ Text_col c ]; _ }; _ }
    ->
      Some c
  | _ -> None

(** Base tables a view's materialisation reads: the base table, every
    [Agg] subquery table, and any table scanned by an algebra subplan
    embedded in an attribute or [Text_expr] — deduplicated in spec
    order.  These are the data-version dependencies of a cached publish
    (and the floor of a cached transform's dependencies). *)
let view_tables (v : view) =
  let acc = ref [] in
  let add t = if not (List.mem t !acc) then acc := t :: !acc in
  let add_expr e =
    List.iter (fun p -> List.iter add (Algebra.tables_of p)) (Algebra.subplans_of_expr e)
  in
  let rec go = function
    | Elem { attrs; content; _ } ->
        List.iter (fun (_, e) -> add_expr e) attrs;
        List.iter go content
    | Text_col _ | Text_const _ -> ()
    | Text_expr e -> add_expr e
    | Agg { table; where; body; _ } ->
        add table;
        Option.iter add_expr where;
        go body
  in
  add v.base_table;
  go v.spec;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Catalog of views                                                    *)
(* ------------------------------------------------------------------ *)

type catalog = {
  db : Database.t;
  by_name : (string, view) Hashtbl.t;
  mutable rev_order : view list;  (** registration order, newest first *)
}

let create_catalog db = { db; by_name = Hashtbl.create 8; rev_order = [] }

let register cat view =
  if Hashtbl.mem cat.by_name view.view_name then
    err "view %s is already registered" view.view_name;
  Hashtbl.add cat.by_name view.view_name view;
  cat.rev_order <- view :: cat.rev_order

let find_view cat name = Hashtbl.find_opt cat.by_name name
let catalog_views cat = List.rev cat.rev_order
let catalog_db cat = cat.db
