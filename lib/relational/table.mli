(** Heap tables: a growable array of rows plus secondary B-tree indexes. *)

type column = { col_name : string; col_type : Value.column_type }

type index = {
  idx_name : string;
  idx_column : string;
  idx_pos : int;  (** column position *)
  tree : Btree.t;
}

type t = {
  tbl_name : string;
  columns : column array;
  mutable rows : Value.t array array;
  mutable nrows : int;
  mutable indexes : index list;
}

exception Table_error of string

val create : string -> column list -> t

val column_pos : t -> string -> int
(** @raise Table_error for an unknown column. *)

val column_names : t -> string list

val insert : t -> Value.t array -> int
(** Append a row, maintain all indexes, return the row id.
    @raise Table_error on arity mismatch. *)

val insert_values : t -> Value.t list -> unit
(** [insert] with a list, discarding the row id. *)

val update : t -> int -> (int * Value.t) list -> unit
(** [update t rid [(pos, v); …]] — overwrite columns of one row in
    place, keeping every index over an updated column consistent
    (old key entry removed, new one inserted).
    @raise Table_error on out-of-range row id or column position. *)

val delete : t -> int list -> int
(** [delete t rids] — remove the rows and compact the heap (row ids
    renumber: rid [k] of the survivors is its position after
    compaction); every index is rebuilt over the compacted heap.
    Returns the number of rows removed; out-of-range and duplicate ids
    are ignored.  Requires exclusive access, like all mutation. *)

val row : t -> int -> Value.t array
(** @raise Table_error when the row id is out of range. *)

val unsafe_row : t -> int -> Value.t array
(** {!row} without the range check — for executor cursors whose row ids
    come from the table itself or one of its indexes. *)

val size : t -> int

val create_index : t -> name:string -> column:string -> index
(** Build a B-tree over existing rows; maintained on subsequent inserts. *)

val find_index : t -> string -> index option
(** Index on a column, if one exists. *)

val drop_index : t -> name:string -> unit
(** Remove an index by name; no-op when absent. *)

val iter : (int -> Value.t array -> unit) -> t -> unit
val fold : ('a -> int -> Value.t array -> 'a) -> 'a -> t -> 'a
