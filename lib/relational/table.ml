(** Heap tables: a growable array of rows plus secondary B-tree indexes. *)

type column = { col_name : string; col_type : Value.column_type }

type index = {
  idx_name : string;
  idx_column : string;
  idx_pos : int;  (** column position *)
  tree : Btree.t;
}

type t = {
  tbl_name : string;
  columns : column array;
  mutable rows : Value.t array array;
  mutable nrows : int;
  mutable indexes : index list;
}

exception Table_error of string

let err fmt = Printf.ksprintf (fun m -> raise (Table_error m)) fmt

let create name columns =
  {
    tbl_name = name;
    columns = Array.of_list columns;
    rows = Array.make 16 [||];
    nrows = 0;
    indexes = [];
  }

let column_pos t name =
  let rec go i =
    if i >= Array.length t.columns then err "table %s has no column %s" t.tbl_name name
    else if String.equal t.columns.(i).col_name name then i
    else go (i + 1)
  in
  go 0

let column_names t = Array.to_list (Array.map (fun c -> c.col_name) t.columns)

let insert t (row : Value.t array) =
  if Array.length row <> Array.length t.columns then
    err "row arity %d does not match table %s arity %d" (Array.length row) t.tbl_name
      (Array.length t.columns);
  if t.nrows = Array.length t.rows then (
    let bigger = Array.make (2 * Array.length t.rows) [||] in
    Array.blit t.rows 0 bigger 0 t.nrows;
    t.rows <- bigger);
  t.rows.(t.nrows) <- row;
  let rid = t.nrows in
  t.nrows <- t.nrows + 1;
  List.iter (fun idx -> Btree.insert idx.tree row.(idx.idx_pos) rid) t.indexes;
  rid

let insert_values t values = ignore (insert t (Array.of_list values))

(** [update t rid updates] — set [(column position, value)] pairs in
    place; indexes over an updated column drop the old key entry and
    insert the new one, so {!Btree.range_rids} stays consistent. *)
let update t rid (updates : (int * Value.t) list) =
  if rid < 0 || rid >= t.nrows then err "row id %d out of range for table %s" rid t.tbl_name;
  let row = t.rows.(rid) in
  List.iter
    (fun (pos, v) ->
      if pos < 0 || pos >= Array.length t.columns then
        err "column position %d out of range for table %s" pos t.tbl_name;
      List.iter
        (fun idx -> if idx.idx_pos = pos then ignore (Btree.remove idx.tree row.(pos) rid))
        t.indexes;
      row.(pos) <- v;
      List.iter
        (fun idx -> if idx.idx_pos = pos then Btree.insert idx.tree v rid)
        t.indexes)
    updates

(** [delete t rids] — remove the rows, compacting the heap.  Row ids are
    array positions, so the survivors renumber; surgical B-tree
    maintenance would have to rewrite every entry anyway, so each index
    is rebuilt over the compacted heap instead.  Returns the number of
    rows removed (out-of-range and duplicate ids are ignored). *)
let delete t rids =
  let dead = Array.make (max 1 t.nrows) false in
  List.iter (fun rid -> if rid >= 0 && rid < t.nrows then dead.(rid) <- true) rids;
  let w = ref 0 in
  for r = 0 to t.nrows - 1 do
    if not dead.(r) then (
      if !w <> r then t.rows.(!w) <- t.rows.(r);
      incr w)
  done;
  let removed = t.nrows - !w in
  for r = !w to t.nrows - 1 do
    t.rows.(r) <- [||]
  done;
  t.nrows <- !w;
  if removed > 0 then
    t.indexes <-
      List.map
        (fun idx ->
          let tree = Btree.create () in
          for rid = 0 to t.nrows - 1 do
            Btree.insert tree t.rows.(rid).(idx.idx_pos) rid
          done;
          { idx with tree })
        t.indexes;
  removed

let row t rid =
  if rid < 0 || rid >= t.nrows then err "row id %d out of range for table %s" rid t.tbl_name;
  t.rows.(rid)

(* row access without the range check, for cursors iterating rids that
   came out of the table or one of its indexes *)
let unsafe_row t rid = Array.unsafe_get t.rows rid

let size t = t.nrows

(** [create_index t ~name ~column] builds a B-tree over existing rows and
    keeps it maintained on subsequent inserts. *)
let create_index t ~name ~column =
  let pos = column_pos t column in
  let tree = Btree.create () in
  for rid = 0 to t.nrows - 1 do
    Btree.insert tree t.rows.(rid).(pos) rid
  done;
  let idx = { idx_name = name; idx_column = column; idx_pos = pos; tree } in
  t.indexes <- t.indexes @ [ idx ];
  idx

let find_index t column =
  List.find_opt (fun i -> String.equal i.idx_column column) t.indexes

(** [drop_index t ~name] removes the index; no-op when absent. *)
let drop_index t ~name =
  t.indexes <- List.filter (fun i -> not (String.equal i.idx_name name)) t.indexes

let iter f t =
  for rid = 0 to t.nrows - 1 do
    f rid t.rows.(rid)
  done

let fold f init t =
  let acc = ref init in
  iter (fun rid r -> acc := f !acc rid r) t;
  !acc
