(** Per-operator runtime statistics for the Volcano executor.

    A collector is built from one plan tree: every operator — including
    plans nested inside expressions as correlated subqueries — gets an
    [op_stats] record keyed by the node's physical identity.  The
    instrumented executor ({!Exec.run_analyzed}) accumulates into these
    records; {!Optimizer.explain_analyze} renders them next to the
    cardinality estimates, making estimator errors visible (paper §2.1's
    B-tree probe vs full scan distinction, Figure 2). *)

module A = Algebra

type op_stats = {
  mutable loops : int;  (** times the operator was executed *)
  mutable rows : int;  (** total rows produced across all loops *)
  mutable btree_probes : int;  (** B-tree descents (index scans) *)
  mutable btree_nodes : int;  (** B-tree nodes visited during probes *)
  mutable heap_rows : int;  (** heap rows fetched (scan operators) *)
  mutable build_rows : int;  (** rows hashed into the build table (hash join) *)
  mutable probe_hits : int;  (** matches found while probing (hash join) *)
  mutable time_ms : float;  (** inclusive wall time, milliseconds *)
}

let fresh_op () =
  {
    loops = 0;
    rows = 0;
    btree_probes = 0;
    btree_nodes = 0;
    heap_rows = 0;
    build_rows = 0;
    probe_hits = 0;
    time_ms = 0.0;
  }

type entry = { id : int; label : string; node : A.plan; op : op_stats }

type t = { mutable entries : entry list  (** pre-order *) }

(** Short operator label used in JSON renderings. *)
let label_of_plan = function
  | A.Seq_scan { table; _ } -> "SeqScan " ^ table
  | A.Index_scan { table; index_column; _ } ->
      Printf.sprintf "IndexScan %s(%s)" table index_column
  | A.Filter _ -> "Filter"
  | A.Project _ -> "Project"
  | A.Nested_loop _ -> "NestedLoop"
  | A.Hash_join { kind; _ } -> Printf.sprintf "HashJoin(%s)" (A.join_kind_name kind)
  | A.Aggregate _ -> "Aggregate"
  | A.Sort _ -> "Sort"
  | A.Limit _ -> "Limit"
  | A.Values _ -> "Values"

(** [create plan] — a collector with one entry per operator of [plan],
    pre-order, descending into correlated subqueries nested inside
    expressions (the same traversal the EXPLAIN printer makes). *)
let create (plan : A.plan) : t =
  let entries = ref [] in
  let next = ref 0 in
  let add p =
    let id = !next in
    incr next;
    entries := { id; label = label_of_plan p; node = p; op = fresh_op () } :: !entries
  in
  let rec subs es = List.iter (fun e -> List.iter go (A.subplans_of_expr e)) es
  and go p =
    add p;
    match p with
    | A.Seq_scan _ | A.Index_scan _ | A.Values _ -> ()
    | A.Filter (c, i) ->
        subs [ c ];
        go i
    | A.Project (fs, i) ->
        subs (List.map fst fs);
        go i
    | A.Nested_loop { outer; inner; join_cond } ->
        (match join_cond with Some c -> subs [ c ] | None -> ());
        go outer;
        go inner
    | A.Hash_join { outer; inner; keys; _ } ->
        subs (List.concat_map (fun (ok, ik) -> [ ok; ik ]) keys);
        go outer;
        go inner
    | A.Aggregate { group_by; aggs; input } ->
        subs (List.map fst group_by);
        List.iter (fun (a, _) -> List.iter go (A.subplans_of_agg a)) aggs;
        go input
    | A.Sort (keys, i) ->
        subs (List.map fst keys);
        go i
    | A.Limit (_, i) -> go i
  in
  go plan;
  { entries = List.rev !entries }

(** Stats record of a plan node by physical identity ([==]); [None] for
    nodes outside the collector's plan. *)
let find (t : t) (p : A.plan) : op_stats option =
  let rec scan = function
    | [] -> None
    | e :: rest -> if e.node == p then Some e.op else scan rest
  in
  scan t.entries

let entries t = t.entries

(** [merge_into ~into src] — add [src]'s per-operator counters into
    [into], matching entries by [id].  Both collectors must have been
    built from the same plan shape (same pre-order traversal), as the
    per-domain collectors of a partitioned parallel execution are: each
    domain compiles the identical plan, so entry [i] names the same
    operator everywhere.  Entries of [src] with no [id] match are
    ignored. *)
let merge_into ~(into : t) (src : t) : unit =
  List.iter
    (fun (se : entry) ->
      match List.find_opt (fun (de : entry) -> de.id = se.id) into.entries with
      | None -> ()
      | Some de ->
          de.op.loops <- de.op.loops + se.op.loops;
          de.op.rows <- de.op.rows + se.op.rows;
          de.op.btree_probes <- de.op.btree_probes + se.op.btree_probes;
          de.op.btree_nodes <- de.op.btree_nodes + se.op.btree_nodes;
          de.op.heap_rows <- de.op.heap_rows + se.op.heap_rows;
          de.op.build_rows <- de.op.build_rows + se.op.build_rows;
          de.op.probe_hits <- de.op.probe_hits + se.op.probe_hits;
          de.op.time_ms <- de.op.time_ms +. se.op.time_ms)
    src.entries

(** Total rows produced by the root operator (entry 0). *)
let root_rows t = match t.entries with [] -> 0 | e :: _ -> e.op.rows

(** [(label, actual rows)] per operator, pre-order — the executor-agnostic
    shape of a run: two executions of the same plan agree on actual row
    counts iff their signatures are equal (bench/CI check). *)
let rows_signature t = List.map (fun e -> (e.label, e.op.rows)) t.entries

(* ------------------------------------------------------------------ *)
(* Renderings                                                          *)
(* ------------------------------------------------------------------ *)

(** One-line annotation for an operator, appended to EXPLAIN output. *)
let annotation (s : op_stats) : string =
  let extra =
    (if s.btree_probes > 0 then
       Printf.sprintf " probes=%d btree_nodes=%d" s.btree_probes s.btree_nodes
     else "")
    ^ (if s.heap_rows > 0 then Printf.sprintf " heap_rows=%d" s.heap_rows else "")
    ^
    if s.build_rows > 0 || s.probe_hits > 0 then
      Printf.sprintf " build_rows=%d probe_hits=%d" s.build_rows s.probe_hits
    else ""
  in
  Printf.sprintf "actual=%d loops=%d time=%.3fms%s" s.rows s.loops s.time_ms extra

(** Stable JSON array of per-operator stats, pre-order. *)
let to_json (t : t) : string =
  let buf = Buffer.create 256 in
  Buffer.add_char buf '[';
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           {|{"id":%d,"op":"%s","rows":%d,"loops":%d,"btree_probes":%d,"btree_nodes":%d,"heap_rows":%d,"build_rows":%d,"probe_hits":%d,"time_ms":%.4f}|}
           e.id (String.escaped e.label) e.op.rows e.op.loops e.op.btree_probes
           e.op.btree_nodes e.op.heap_rows e.op.build_rows e.op.probe_hits e.op.time_ms))
    t.entries;
  Buffer.add_char buf ']';
  Buffer.contents buf
