(** Cost model and cardinality estimation for the optimizer.

    Selectivities come from {!Colstats} (histograms, MCVs, NDV) when the
    table has been ANALYZEd, falling back to the System-R defaults (1/10
    equality, 1/3 range, 1/4 other) otherwise — with no statistics
    collected, every estimate matches the rule-based optimizer exactly. *)

(** {2 Predicate analysis} *)

val conjuncts : Algebra.expr -> Algebra.expr list
(** Split a conjunction into its conjuncts. *)

val conjoin : Algebra.expr list -> Algebra.expr
(** Rebuild a conjunction; [conjoin []] is the constant true. *)

val sargable : string -> Algebra.expr -> (string * Algebra.binop * Algebra.expr) option
(** Is the expression a sargable comparison over a bare/base column of the
    given alias?  Returns (column, op, constant-side expr); references to
    {e other} aliases count as constant (outer correlation). *)

val bounds_of : Algebra.binop -> Algebra.expr -> Algebra.bound * Algebra.bound
(** B-tree range bounds for [col op rhs]. *)

(** {2 Default (no-stats) selectivities} *)

val eq_selectivity : float
val range_selectivity : float
val default_selectivity : float
val default_conjunct_selectivity : Algebra.expr -> float

(** {2 Stats-aware estimation} *)

val conjunct_selectivity :
  Database.t -> table:string -> alias:string -> Algebra.expr -> float
(** Selectivity of one conjunct over rows of [table] scanned as [alias]:
    histogram/MCV-based when sargable with collected stats, the System-R
    default otherwise. *)

val estimate_rows : Database.t -> Algebra.plan -> float
(** Stats-aware cardinality estimate (defaults when stats are absent). *)

val estimate_rows_default : Database.t -> Algebra.plan -> float
(** Estimate using only the System-R defaults, ignoring collected stats —
    the pre-ANALYZE baseline, used for q-error comparison in benches. *)

val plan_cost : Database.t -> Algebra.plan -> float
(** Estimated execution cost in abstract units (one heap-row fetch = 1);
    correlated subqueries are charged once per input row. *)
