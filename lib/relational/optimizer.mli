(** Plan optimisation: B-tree index selection for sargable predicates
    (paper §2.1), conjunct splitting / filter merging, rename-aware
    filter and limit pushdown below projections, and — once statistics
    have been collected with ANALYZE — cost-based access-path choice and
    index nested-loop joins via the {!Cost} model.  With no statistics
    collected the rewrites are purely rule-based and produce exactly the
    pre-ANALYZE plans. *)

val conjuncts : Algebra.expr -> Algebra.expr list
(** Split a conjunction into its conjuncts. *)

val conjoin : Algebra.expr list -> Algebra.expr
(** Rebuild a conjunction; [conjoin [] ] is the constant true. *)

val estimate_rows : Database.t -> Algebra.plan -> float
(** Stats-aware cardinality estimate ({!Cost.estimate_rows}): histograms /
    MCVs / NDV after ANALYZE, System-R defaults otherwise; used by
    EXPLAIN output and tests. *)

val optimize : Database.t -> Algebra.plan -> Algebra.plan
(** Apply the rewrite rules bottom-up to one plan tree (does not descend
    into expressions). *)

val optimize_deep : Database.t -> Algebra.plan -> Algebra.plan
(** [optimize] plus recursion into correlated subqueries nested inside
    expressions — what the XQuery→SQL/XML rewrite output needs. *)

val explain_with_estimates : Database.t -> Algebra.plan -> string
(** {!Algebra.explain} output with per-operator [est=N] annotations,
    prefixed with the root cardinality estimate. *)

val explain_analyze : Database.t -> Algebra.plan -> Stats.t -> string
(** EXPLAIN ANALYZE rendering: per-operator estimated vs actual rows,
    loops, B-tree probe / heap row counts and inclusive wall time.  The
    collector comes from {!Exec.run_analyzed} over the same plan tree. *)
