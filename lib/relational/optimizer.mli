(** Plan optimisation: B-tree index selection for sargable predicates
    (paper §2.1), conjunct splitting / filter merging, rename-aware
    filter and limit pushdown below projections, and — once statistics
    have been collected with ANALYZE — the set-oriented join pipeline
    ({!Joingraph}: EXISTS unnesting into semi/anti hash joins, join-graph
    isolation, greedy cost-ordered linearisation over hash / nested-loop
    / index nested-loop steps) plus cost-based access-path choice via the
    {!Cost} model.  With no statistics collected the rewrites are purely
    rule-based and produce exactly the pre-ANALYZE plans. *)

val conjuncts : Algebra.expr -> Algebra.expr list
(** Split a conjunction into its conjuncts. *)

val conjoin : Algebra.expr list -> Algebra.expr
(** Rebuild a conjunction; [conjoin [] ] is the constant true. *)

val estimate_rows : Database.t -> Algebra.plan -> float
(** Stats-aware cardinality estimate ({!Cost.estimate_rows}): histograms /
    MCVs / NDV after ANALYZE, System-R defaults otherwise; used by
    EXPLAIN output and tests. *)

val optimize :
  ?timer:(string -> (unit -> Algebra.plan) -> Algebra.plan) ->
  Database.t ->
  Algebra.plan ->
  Algebra.plan
(** Apply the {!Joingraph} passes then the bottom-up rewrite rules to one
    plan tree (does not descend into expressions).  [timer name f] wraps
    each optimisation pass ([opt_unnest], [opt_isolate], [opt_order],
    [opt_rewrite]) so callers can record per-pass planning time. *)

val optimize_deep :
  ?timer:(string -> (unit -> Algebra.plan) -> Algebra.plan) ->
  Database.t ->
  Algebra.plan ->
  Algebra.plan
(** [optimize] plus recursion into correlated subqueries nested inside
    expressions — what the XQuery→SQL/XML rewrite output needs. *)

val explain_with_estimates : Database.t -> Algebra.plan -> string
(** {!Algebra.explain} output with per-operator [est=N] annotations,
    prefixed with the root cardinality estimate. *)

val explain_analyze : Database.t -> Algebra.plan -> Stats.t -> string
(** EXPLAIN ANALYZE rendering: per-operator estimated vs actual rows,
    loops, B-tree probe / heap row counts and inclusive wall time.  The
    collector comes from {!Exec.run_analyzed} over the same plan tree. *)
