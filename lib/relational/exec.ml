(** Plan and expression evaluation.

    Two executors share this module:

    - the {b interpreted} executor (the original reference semantics):
      rows are association lists from column names to values; every
      column reference re-resolves its name per row with [List.assoc].
      It remains the executable specification — differential tests and
      the [execscale] bench run it as the baseline — and its expression
      evaluator still serves {!Publish} during materialisation;
    - the {b compiled} executor (the default behind {!run}): a plan-open
      column-resolution pass assigns every operator output a fixed
      {!Layout.t} (name → integer slot, qualified aliases resolved
      statically), expressions compile to closures over [Value.t array]
      rows, and operators exchange batches of ~{!default_batch_size}
      rows.  Unresolvable references fail at plan-open time with the
      available columns listed, instead of per-row [Exec_error]s.

    Each scan binds both the bare column name and the [alias.column]
    qualified form, so correlated subqueries can reference outer tables
    the way paper Table 7 does ([DEPTNO = DEPT.DEPTNO]); correlation
    bindings ride as the physical tail of each row.

    Both executors accept an optional {!Stats.t} collector; when present
    every operator records rows produced, loops, B-tree probe counts and
    inclusive wall time (EXPLAIN ANALYZE), and the two executors produce
    identical per-operator actual-row counts. *)

module X = Xdb_xml.Types
module E = Xdb_xml.Events
open Algebra

type row = (string * Value.t) list

exception Exec_error of string

let err fmt = Printf.ksprintf (fun m -> raise (Exec_error m)) fmt

(** Execution context: database plus optional instrumentation.
    [xml_streaming] selects the streamed XMLType representation for
    constructor results (events on demand instead of node trees). *)
type ctx = { db : Database.t; stats : Stats.t option; xml_streaming : bool }

let lookup (env : row) alias name =
  match alias with
  | Some a -> (
      match List.assoc_opt (a ^ "." ^ name) env with
      | Some v -> v
      | None -> err "unknown column %s.%s" a name)
  | None -> (
      match List.assoc_opt name env with
      | Some v -> v
      | None -> err "unknown column %s" name)

let bool_of_value = function
  | Value.Null -> false
  | Value.Int i -> i <> 0
  (* XPath/SQL boolean semantics: NaN is false (NaN <> 0.0 holds in OCaml,
     so the naive test would make NaN truthy) *)
  | Value.Float f -> f <> 0.0 && not (Float.is_nan f)
  | Value.Str s -> s <> ""
  | Value.Xml ns -> ns <> []
  | Value.Xml_stream produce ->
      (* probe for a first event — the streamed image of [ns <> []] *)
      let exception Non_empty in
      (try
         produce { E.emit = (fun _ -> raise Non_empty); finish = (fun () -> ()) };
         false
       with Non_empty -> true)

(* scalar value → XML content node list (SQL/XML: scalars become text) *)
let xml_content = function
  | Value.Null -> []
  | Value.Xml nodes -> List.map X.deep_copy nodes
  | Value.Xml_stream produce -> Value.stream_to_nodes produce
  | v -> [ X.make (X.Text (Value.to_string v)) ]

(* value → XML content events (the streamed image of [xml_content]) *)
let emit_content sink = function
  | Value.Null -> ()
  | Value.Xml nodes -> List.iter (E.emit_tree sink) nodes
  | Value.Xml_stream produce -> produce sink
  | v -> sink.E.emit (E.Text (Value.to_string v))

(* Constructor results: every SQL/XML constructor describes its output as
   an event producer; streaming mode returns the producer itself, DOM mode
   drains it through the tree builder — one construction path, two
   representations. *)
let xml_value ~streaming produce =
  if streaming then Value.Xml_stream produce else Value.Xml (Value.stream_to_nodes produce)

(* XPath 1.0 round(): round(-0.2) and round(-0.5) are negative zero;
   NaN, ±∞, ±0 and integers pass through unchanged *)
let xpath_round f =
  if Float.is_nan f || Float.is_integer f then f
  else if f >= -0.5 && f < 0.0 then -0.0
  else Float.floor (f +. 0.5)

(* ------------------------------------------------------------------ *)
(* Hash-join key hashing (shared by both executors)                    *)
(* ------------------------------------------------------------------ *)

(* Bucket key for a tuple of join-key values.  Values that compare equal
   under {!Value.compare_sql} must land in the same bucket: numerics are
   normalised through their float image (SQL equality compares Int/Float
   mixtures as floats), strings keep a distinct tag.  Bucket candidates
   are re-verified with {!Value.equal_sql}, so a hash collision can never
   produce a false match — only the converse (equal values in different
   buckets) would be a bug. *)
let hash_key_string (vs : Value.t array) : string =
  let b = Buffer.create 32 in
  Array.iter
    (fun v ->
      (match v with
      | Value.Int _ | Value.Float _ ->
          Buffer.add_char b 'n';
          Buffer.add_string b (Value.float_to_string (Value.to_float v))
      | Value.Str s ->
          Buffer.add_char b 's';
          Buffer.add_string b s
      | v ->
          Buffer.add_char b 'x';
          Buffer.add_string b (Value.to_string v));
      Buffer.add_char b '\x00')
    vs;
  Buffer.contents b

let hash_keys_equal (a : Value.t array) (b : Value.t array) : bool =
  let n = Array.length a in
  let rec go i = i >= n || (Value.equal_sql a.(i) b.(i) && go (i + 1)) in
  go 0

(* Static own-binding names of a plan's rows, without the correlation
   tail — what the interpreted LEFT OUTER hash join null-pads when a
   probe row has no match (mirrors the compiled executor's own-slot
   prefix of the build layout). *)
let rec own_binding_names db (p : plan) : string list =
  match p with
  | Seq_scan { table; alias } | Index_scan { table; alias; _ } ->
      Array.to_list (Database.table db table).Table.columns
      |> List.concat_map (fun c -> [ c.Table.col_name; alias ^ "." ^ c.Table.col_name ])
  | Filter (_, i) | Sort (_, i) | Limit (_, i) -> own_binding_names db i
  | Project (fields, _) -> List.map snd fields
  | Nested_loop { outer; inner; _ } -> own_binding_names db inner @ own_binding_names db outer
  | Hash_join { outer; inner; kind = Inner | Left_outer; _ } ->
      own_binding_names db inner @ own_binding_names db outer
  | Hash_join { outer; kind = Semi | Anti; _ } -> own_binding_names db outer
  | Aggregate { group_by; aggs; _ } -> List.map snd group_by @ List.map snd aggs
  | Values { cols; _ } -> cols

let rec eval_expr_in ctx (env : row) (e : expr) : Value.t =
  match e with
  | Const v -> v
  | Col (alias, name) -> lookup env alias name
  | Not e -> Value.Int (if bool_of_value (eval_expr_in ctx env e) then 0 else 1)
  | Is_null e -> Value.Int (if Value.is_null (eval_expr_in ctx env e) then 1 else 0)
  | Binop (op, a, b) -> eval_binop ctx env op a b
  | Fn (f, args) -> eval_fn ctx env f args
  | Case (whens, els) -> (
      let rec go = function
        | [] -> ( match els with Some e -> eval_expr_in ctx env e | None -> Value.Null)
        | (c, r) :: rest ->
            if bool_of_value (eval_expr_in ctx env c) then eval_expr_in ctx env r else go rest
      in
      go whens)
  | Xml_element (name, attrs, kids) ->
      xml_value ~streaming:ctx.xml_streaming (fun sink ->
          sink.E.emit (E.Start_element (X.qname name));
          List.iter
            (fun (an, ae) ->
              match eval_expr_in ctx env ae with
              | Value.Null -> ()
              | v -> sink.E.emit (E.Attr (X.qname an, Value.to_string v)))
            attrs;
          List.iter (fun ke -> emit_content sink (eval_expr_in ctx env ke)) kids;
          sink.E.emit E.End_element)
  | Xml_forest fields ->
      xml_value ~streaming:ctx.xml_streaming (fun sink ->
          List.iter
            (fun (n, fe) ->
              match eval_expr_in ctx env fe with
              | Value.Null -> ()
              | v ->
                  sink.E.emit (E.Start_element (X.qname n));
                  emit_content sink v;
                  sink.E.emit E.End_element)
            fields)
  | Xml_concat es ->
      xml_value ~streaming:ctx.xml_streaming (fun sink ->
          List.iter (fun e -> emit_content sink (eval_expr_in ctx env e)) es)
  | Xml_text e ->
      xml_value ~streaming:ctx.xml_streaming (fun sink ->
          match eval_expr_in ctx env e with
          | Value.Null -> ()
          | v -> sink.E.emit (E.Text (Value.to_string v)))
  | Xml_comment e ->
      xml_value ~streaming:ctx.xml_streaming (fun sink ->
          sink.E.emit (E.Comment (Value.to_string (eval_expr_in ctx env e))))
  | Xml_pi (t, e) ->
      xml_value ~streaming:ctx.xml_streaming (fun sink ->
          sink.E.emit (E.Pi (t, Value.to_string (eval_expr_in ctx env e))))
  | Scalar_subquery p -> (
      match run_in ctx ~outer:env p with
      | [] -> Value.Null
      | r :: _ -> ( match r with [] -> Value.Null | (_, v) :: _ -> v))
  | Exists p -> Value.Int (if run_in ctx ~outer:env p = [] then 0 else 1)

and eval_binop ctx env op a b =
  match op with
  | And ->
      Value.Int
        (if bool_of_value (eval_expr_in ctx env a) && bool_of_value (eval_expr_in ctx env b)
         then 1
         else 0)
  | Or ->
      Value.Int
        (if bool_of_value (eval_expr_in ctx env a) || bool_of_value (eval_expr_in ctx env b)
         then 1
         else 0)
  | Concat ->
      Value.Str
        (Value.to_string (eval_expr_in ctx env a) ^ Value.to_string (eval_expr_in ctx env b))
  | Fdiv ->
      let va = eval_expr_in ctx env a and vb = eval_expr_in ctx env b in
      (match (va, vb) with
      | Value.Null, _ | _, Value.Null -> Value.Null
      | _ -> Value.Float (Value.to_float va /. Value.to_float vb))
  | Add | Sub | Mul | Div | Mod -> (
      let va = eval_expr_in ctx env a and vb = eval_expr_in ctx env b in
      match (va, vb) with
      | Value.Null, _ | _, Value.Null -> Value.Null
      | Value.Int x, Value.Int y -> (
          match op with
          | Add -> Value.Int (x + y)
          | Sub -> Value.Int (x - y)
          | Mul -> Value.Int (x * y)
          | Div -> if y = 0 then err "division by zero" else Value.Int (x / y)
          | Mod -> if y = 0 then err "division by zero" else Value.Int (x mod y)
          | _ -> assert false)
      | _ ->
          let x = Value.to_float va and y = Value.to_float vb in
          let f =
            match op with
            | Add -> x +. y
            | Sub -> x -. y
            | Mul -> x *. y
            | Div -> x /. y
            | Mod -> Float.rem x y
            | _ -> assert false
          in
          Value.Float f)
  | Eq | Neq | Lt | Leq | Gt | Geq -> (
      let va = eval_expr_in ctx env a and vb = eval_expr_in ctx env b in
      match Value.compare_sql va vb with
      | None -> Value.Null
      | Some c ->
          let b =
            match op with
            | Eq -> c = 0
            | Neq -> c <> 0
            | Lt -> c < 0
            | Leq -> c <= 0
            | Gt -> c > 0
            | Geq -> c >= 0
            | _ -> assert false
          in
          Value.Int (if b then 1 else 0))

and eval_fn ctx env f args =
  let v i = eval_expr_in ctx env (List.nth args i) in
  match (String.lowercase_ascii f, List.length args) with
  | "concat", _ ->
      Value.Str
        (String.concat "" (List.map (fun a -> Value.to_string (eval_expr_in ctx env a)) args))
  | "upper", 1 -> Value.Str (String.uppercase_ascii (Value.to_string (v 0)))
  | "lower", 1 -> Value.Str (String.lowercase_ascii (Value.to_string (v 0)))
  | "length", 1 -> Value.Int (String.length (Value.to_string (v 0)))
  | "abs", 1 -> (
      match v 0 with
      | Value.Int i -> Value.Int (abs i)
      | x -> Value.Float (Float.abs (Value.to_float x)))
  | "round", 1 -> (
      match v 0 with
      | Value.Null -> Value.Null
      | x -> Value.Float (xpath_round (Value.to_float x)))
  | "floor", 1 -> (
      match v 0 with Value.Null -> Value.Null | x -> Value.Float (Float.floor (Value.to_float x)))
  | "ceiling", 1 -> (
      match v 0 with Value.Null -> Value.Null | x -> Value.Float (Float.ceil (Value.to_float x)))
  | "coalesce", _ ->
      let rec go = function
        | [] -> Value.Null
        | a :: rest -> ( match eval_expr_in ctx env a with Value.Null -> go rest | x -> x)
      in
      go args
  | name, n -> err "unknown scalar function %s/%d" name n

(* ------------------------------------------------------------------ *)
(* Interpreted plan execution (reference semantics)                    *)
(* ------------------------------------------------------------------ *)

and scan_bindings (tbl : Table.t) alias (r : Value.t array) : row =
  let out = ref [] in
  Array.iteri
    (fun i c ->
      let v = r.(i) in
      out := (alias ^ "." ^ c.Table.col_name, v) :: (c.Table.col_name, v) :: !out)
    tbl.Table.columns;
  List.rev !out

(* one operator, uninstrumented *)
and run_node ctx (outer : row) (p : plan) : row list =
  let db = ctx.db in
  match p with
  | Seq_scan { table; alias } ->
      let tbl = Database.table db table in
      Table.fold (fun acc _ r -> (scan_bindings tbl alias r @ outer) :: acc) [] tbl |> List.rev
  | Index_scan { table; alias; index_column; lo; hi } -> (
      let tbl = Database.table db table in
      match Table.find_index tbl index_column with
      | None -> err "no index on %s.%s" table index_column
      | Some idx ->
          let bound = function
            | Unbounded -> Btree.Unbounded
            | Incl e -> Btree.Inclusive (eval_expr_in ctx outer e)
            | Excl e -> Btree.Exclusive (eval_expr_in ctx outer e)
          in
          Btree.range idx.Table.tree ~lo:(bound lo) ~hi:(bound hi)
          |> List.map (fun (_, rid) -> scan_bindings tbl alias (Table.row tbl rid) @ outer))
  | Filter (cond, input) ->
      List.filter (fun r -> bool_of_value (eval_expr_in ctx r cond)) (run_in ctx ~outer input)
  | Project (fields, input) ->
      List.map
        (fun r -> List.map (fun (e, n) -> (n, eval_expr_in ctx r e)) fields @ outer)
        (run_in ctx ~outer input)
  | Nested_loop { outer = op; inner = ip; join_cond } ->
      let outer_rows = run_in ctx ~outer op in
      List.concat_map
        (fun orow ->
          let inner_rows = run_in ctx ~outer:orow ip in
          let joined = List.map (fun irow -> irow @ orow) inner_rows in
          match join_cond with
          | None -> joined
          | Some c -> List.filter (fun r -> bool_of_value (eval_expr_in ctx r c)) joined)
        outer_rows
  | Hash_join { outer = op; inner = ip; keys; kind } ->
      let sop = match ctx.stats with None -> None | Some st -> Stats.find st p in
      let probe_rows = run_in ctx ~outer op in
      let build_input = run_in ctx ~outer ip in
      (* build rows carry the enclosing environment as their tail; strip it
         so joined rows are [iown @ orow], the Nested_loop binding shape *)
      let olen = List.length outer in
      let rec take n l =
        if n <= 0 then [] else match l with [] -> [] | x :: tl -> x :: take (n - 1) tl
      in
      let tbl = Hashtbl.create (max 16 (List.length build_input)) in
      List.iter
        (fun irow ->
          (match sop with Some s -> s.Stats.build_rows <- s.Stats.build_rows + 1 | None -> ());
          let kvs =
            Array.of_list (List.map (fun (_, ik) -> eval_expr_in ctx irow ik) keys)
          in
          (* NULL keys never satisfy SQL equality: leave them out of the table *)
          if not (Array.exists Value.is_null kvs) then (
            let key = hash_key_string kvs in
            let cell =
              match Hashtbl.find_opt tbl key with
              | Some c -> c
              | None ->
                  let c = ref [] in
                  Hashtbl.add tbl key c;
                  c
            in
            cell := (take (List.length irow - olen) irow, kvs) :: !cell))
        build_input;
      Hashtbl.iter (fun _ c -> c := List.rev !c) tbl;
      let probe orow =
        let kvs = Array.of_list (List.map (fun (ok, _) -> eval_expr_in ctx orow ok) keys) in
        if Array.exists Value.is_null kvs then []
        else
          match Hashtbl.find_opt tbl (hash_key_string kvs) with
          | None -> []
          | Some cell ->
              List.filter_map
                (fun (iown, ikvs) -> if hash_keys_equal kvs ikvs then Some iown else None)
                !cell
      in
      let hit n =
        match sop with Some s -> s.Stats.probe_hits <- s.Stats.probe_hits + n | None -> ()
      in
      (match kind with
      | Inner ->
          List.concat_map
            (fun orow ->
              let ms = probe orow in
              hit (List.length ms);
              List.map (fun iown -> iown @ orow) ms)
            probe_rows
      | Left_outer ->
          let null_own = List.map (fun n -> (n, Value.Null)) (own_binding_names db ip) in
          List.concat_map
            (fun orow ->
              match probe orow with
              | [] -> [ null_own @ orow ]
              | ms ->
                  hit (List.length ms);
                  List.map (fun iown -> iown @ orow) ms)
            probe_rows
      | Semi ->
          List.filter
            (fun orow ->
              match probe orow with
              | [] -> false
              | _ :: _ ->
                  hit 1;
                  true)
            probe_rows
      | Anti ->
          List.filter
            (fun orow ->
              match probe orow with
              | [] -> true
              | _ :: _ ->
                  hit 1;
                  false)
            probe_rows)
  | Aggregate { group_by; aggs; input } ->
      let rows = run_in ctx ~outer input in
      if group_by = [] then [ eval_agg_group ctx outer group_by aggs rows [] ]
      else
        let groups = Hashtbl.create 16 in
        let order = ref [] in
        List.iter
          (fun r ->
            let key = List.map (fun (e, _) -> Value.to_string (eval_expr_in ctx r e)) group_by in
            (match Hashtbl.find_opt groups key with
            | None ->
                order := key :: !order;
                Hashtbl.add groups key (ref [ r ])
            | Some cell -> cell := r :: !cell))
          rows;
        List.rev_map
          (fun key ->
            let members = List.rev !(Hashtbl.find groups key) in
            eval_agg_group ctx outer group_by aggs members key)
          !order
  | Sort (keys, input) ->
      let rows = run_in ctx ~outer input in
      let decorated =
        List.map (fun r -> (List.map (fun (k, d) -> (eval_expr_in ctx r k, d)) keys, r)) rows
      in
      let cmp (ka, _) (kb, _) =
        let rec go = function
          | [] -> 0
          | ((va, d), (vb, _)) :: rest -> (
              let c = Value.compare_key va vb in
              let c = match d with Asc -> c | Desc -> -c in
              match c with 0 -> go rest | c -> c)
        in
        go (List.combine ka kb)
      in
      List.map snd (List.stable_sort cmp decorated)
  | Limit (n, input) ->
      let rec take n = function
        | [] -> []
        | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest
      in
      take n (run_in ctx ~outer input)
  | Values { cols; rows } -> List.map (fun vs -> List.combine cols vs @ outer) rows

(* operator dispatch: the instrumented path wraps [run_node] with wall-time
   and row accounting; the plain path adds no overhead *)
and run_in ctx ?(outer = []) (p : plan) : row list =
  match ctx.stats with
  | None -> run_node ctx outer p
  | Some st -> (
      match Stats.find st p with
      | None -> run_node ctx outer p
      | Some s ->
          (* snapshot B-tree counters so probe/node-visit deltas can be
             attributed to this index-scan execution *)
          let tree =
            match p with
            | Index_scan { table; index_column; _ } -> (
                match Table.find_index (Database.table ctx.db table) index_column with
                | Some idx -> Some idx.Table.tree
                | None -> None)
            | _ -> None
          in
          let probes0, nodes0 =
            match tree with Some t -> (Btree.probes t, Btree.node_visits t) | None -> (0, 0)
          in
          let t0 = Unix.gettimeofday () in
          let rows = run_node ctx outer p in
          s.Stats.time_ms <- s.Stats.time_ms +. ((Unix.gettimeofday () -. t0) *. 1000.0);
          s.Stats.loops <- s.Stats.loops + 1;
          let produced = List.length rows in
          s.Stats.rows <- s.Stats.rows + produced;
          (match p with
          | Seq_scan { table; _ } ->
              s.Stats.heap_rows <-
                s.Stats.heap_rows + Table.size (Database.table ctx.db table)
          | Index_scan _ ->
              s.Stats.heap_rows <- s.Stats.heap_rows + produced;
              (match tree with
              | Some t ->
                  s.Stats.btree_probes <- s.Stats.btree_probes + (Btree.probes t - probes0);
                  s.Stats.btree_nodes <- s.Stats.btree_nodes + (Btree.node_visits t - nodes0)
              | None -> ())
          | _ -> ());
          rows)

and eval_agg_group ctx outer group_by aggs members key =
  (* group columns: re-evaluate on a member row to keep value types; fall
     back to the string key for an (impossible in practice) empty group *)
  let group_cols =
    match members with
    | m :: _ -> List.map (fun (e, n) -> (n, eval_expr_in ctx m e)) group_by
    | [] -> List.map2 (fun (_, n) k -> (n, Value.Str k)) group_by key
  in
  let agg_cols =
    List.map
      (fun (a, n) ->
        let value =
          match a with
          | Count_star -> Value.Int (List.length members)
          | Count e ->
              Value.Int
                (List.length
                   (List.filter (fun r -> not (Value.is_null (eval_expr_in ctx r e))) members))
          | Sum e ->
              let vs =
                List.filter_map
                  (fun r ->
                    match eval_expr_in ctx r e with Value.Null -> None | v -> Some v)
                  members
              in
              if vs = [] then Value.Null
              else if List.for_all (function Value.Int _ -> true | _ -> false) vs then
                Value.Int (List.fold_left (fun acc v -> acc + Value.to_int v) 0 vs)
              else Value.Float (List.fold_left (fun acc v -> acc +. Value.to_float v) 0.0 vs)
          | Min e ->
              List.fold_left
                (fun acc r ->
                  let v = eval_expr_in ctx r e in
                  match (acc, v) with
                  | _, Value.Null -> acc
                  | Value.Null, v -> v
                  | acc, v -> if Value.compare_key v acc < 0 then v else acc)
                Value.Null members
          | Max e ->
              List.fold_left
                (fun acc r ->
                  let v = eval_expr_in ctx r e in
                  match (acc, v) with
                  | _, Value.Null -> acc
                  | Value.Null, v -> v
                  | acc, v -> if Value.compare_key v acc > 0 then v else acc)
                Value.Null members
          | Avg e ->
              let vs =
                List.filter_map
                  (fun r ->
                    match eval_expr_in ctx r e with
                    | Value.Null -> None
                    | v -> Some (Value.to_float v))
                  members
              in
              if vs = [] then Value.Null
              else Value.Float (List.fold_left ( +. ) 0.0 vs /. float_of_int (List.length vs))
          | Xml_agg (e, order) ->
              let members =
                if order = [] then members
                else
                  let decorated =
                    List.map
                      (fun r -> (List.map (fun (k, d) -> (eval_expr_in ctx r k, d)) order, r))
                      members
                  in
                  let cmp (ka, _) (kb, _) =
                    let rec go = function
                      | [] -> 0
                      | ((va, d), (vb, _)) :: rest -> (
                          let c = Value.compare_key va vb in
                          let c = match d with Asc -> c | Desc -> -c in
                          match c with 0 -> go rest | c -> c)
                    in
                    go (List.combine ka kb)
                  in
                  List.map snd (List.stable_sort cmp decorated)
              in
              xml_value ~streaming:ctx.xml_streaming (fun sink ->
                  List.iter (fun r -> emit_content sink (eval_expr_in ctx r e)) members)
          | String_agg (e, sep) ->
              Value.Str
                (String.concat sep
                   (List.filter_map
                      (fun r ->
                        match eval_expr_in ctx r e with
                        | Value.Null -> None
                        | v -> Some (Value.to_string v))
                      members))
        in
        (n, value))
      aggs
  in
  group_cols @ agg_cols @ outer

(* ------------------------------------------------------------------ *)
(* Compiled plan execution: layouts, closures, batches                 *)
(* ------------------------------------------------------------------ *)

let default_batch_size = 1024

(** A batch cursor: [None] at end of stream; batches are never empty. *)
type cursor = unit -> Value.t array array option

(** A compiled plan: its output layout plus an open function taking the
    physical outer (correlation) row.  Opening yields a fresh cursor, so
    one compilation serves many executions (correlated subqueries open
    once per outer row). *)
type compiled = { c_layout : Layout.t; c_open : Value.t array -> cursor }

type cctx = {
  cdb : Database.t;
  cstats : Stats.t option;
  cbatch : int;
  cxml_streaming : bool;
  cpartition : (string * int * int) option;
      (* (table, lo, hi): restrict the Seq_scan over [table] to the
         half-open row-id range [lo, hi).  Domain-parallel execution
         compiles one plan per range; the caller guarantees [table] is the
         plan's single driving scan (Pipeline.partition_table). *)
}

let resolve_slot lay alias name =
  match Layout.slot_opt lay ?alias name with
  | Some s -> s
  | None ->
      err "unknown column %s (available columns: %s)"
        (match alias with Some a -> a ^ "." ^ name | None -> name)
        (Layout.describe lay)

(* duplicate output names within one operator would make slot resolution
   ambiguous — reject at plan-open time *)
let check_distinct what names =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen n then err "ambiguous column %s: bound more than once in %s" n what
      else Hashtbl.add seen n ())
    names

(* drain a cursor to a row list (subqueries, blocking operators) *)
let drain_cursor (next : cursor) : Value.t array list =
  let rec go acc =
    match next () with None -> List.concat (List.rev acc) | Some b -> go (Array.to_list b :: acc)
  in
  go []

(* chunked cursor over an indexed row source, appending the outer tail to
   every produced row; rows are shared (not copied) when there is no tail *)
let chunked_cursor ~batch ~count ~get (outer : Value.t array) : cursor =
  let pos = ref 0 in
  let k = Array.length outer in
  fun () ->
    let n = count () in
    if !pos >= n then None
    else (
      let len = min batch (n - !pos) in
      let base = !pos in
      pos := base + len;
      let make j =
        let r : Value.t array = get (base + j) in
        if k = 0 then r
        else (
          let m = Array.length r in
          let out = Array.make (m + k) Value.Null in
          Array.blit r 0 out 0 m;
          Array.blit outer 0 out m k;
          out)
      in
      Some (Array.init len make))

(* cursor over a lazily computed materialised result (Sort/Limit/Aggregate
   compute everything on the first pull, then emit in batches) *)
let lazy_array_cursor batch (compute : unit -> Value.t array array) : cursor =
  let state = ref None in
  let pos = ref 0 in
  fun () ->
    let arr =
      match !state with
      | Some a -> a
      | None ->
          let a = compute () in
          state := Some a;
          a
    in
    if !pos >= Array.length arr then None
    else (
      let len = min batch (Array.length arr - !pos) in
      let b = Array.sub arr !pos len in
      pos := !pos + len;
      Some b)

(* per-open instrumentation: loops per open, rows per batch, inclusive
   wall time around open and every pull (child time is included, like the
   interpreted executor's inclusive accounting) *)
let instrumented_open (s : Stats.op_stats) open_ (outer : Value.t array) : cursor =
  let t0 = Unix.gettimeofday () in
  s.Stats.loops <- s.Stats.loops + 1;
  let next = open_ outer in
  s.Stats.time_ms <- s.Stats.time_ms +. ((Unix.gettimeofday () -. t0) *. 1000.0);
  fun () ->
    let t0 = Unix.gettimeofday () in
    let b = next () in
    s.Stats.time_ms <- s.Stats.time_ms +. ((Unix.gettimeofday () -. t0) *. 1000.0);
    (match b with Some rows -> s.Stats.rows <- s.Stats.rows + Array.length rows | None -> ());
    b

let sort_cmp_keys kfs (ka : Value.t array) (kb : Value.t array) =
  let n = Array.length kfs in
  let rec go i =
    if i >= n then 0
    else
      let c = Value.compare_key ka.(i) kb.(i) in
      let c = match snd kfs.(i) with Asc -> c | Desc -> -c in
      if c <> 0 then c else go (i + 1)
  in
  go 0

(** Compile an expression against a layout into a closure over physical
    rows.  All column references — including those inside never-taken
    CASE branches and correlated subqueries — resolve now; failures are
    plan-open [Exec_error]s listing the available columns. *)
let rec cexpr ctx (lay : Layout.t) (e : expr) : Value.t array -> Value.t =
  match e with
  | Const v -> fun _ -> v
  | Col (alias, name) ->
      let s = resolve_slot lay alias name in
      fun r -> Array.unsafe_get r s
  | Not e ->
      let f = cexpr ctx lay e in
      fun r -> Value.Int (if bool_of_value (f r) then 0 else 1)
  | Is_null e ->
      let f = cexpr ctx lay e in
      fun r -> Value.Int (if Value.is_null (f r) then 1 else 0)
  | Binop (op, a, b) -> cbinop ctx lay op a b
  | Fn (f, args) -> cfn ctx lay f args
  | Case (whens, els) ->
      let whens = List.map (fun (c, r) -> (cexpr ctx lay c, cexpr ctx lay r)) whens in
      let els = Option.map (cexpr ctx lay) els in
      fun r ->
        let rec go = function
          | [] -> ( match els with Some f -> f r | None -> Value.Null)
          | (c, t) :: rest -> if bool_of_value (c r) then t r else go rest
        in
        go whens
  | Xml_element (name, attrs, kids) ->
      let qn = X.qname name in
      let attrs = List.map (fun (an, ae) -> (X.qname an, cexpr ctx lay ae)) attrs in
      let kids = List.map (cexpr ctx lay) kids in
      let streaming = ctx.cxml_streaming in
      fun r ->
        xml_value ~streaming (fun sink ->
            sink.E.emit (E.Start_element qn);
            List.iter
              (fun (aq, af) ->
                match af r with
                | Value.Null -> ()
                | v -> sink.E.emit (E.Attr (aq, Value.to_string v)))
              attrs;
            List.iter (fun kf -> emit_content sink (kf r)) kids;
            sink.E.emit E.End_element)
  | Xml_forest fields ->
      let fields = List.map (fun (n, fe) -> (X.qname n, cexpr ctx lay fe)) fields in
      let streaming = ctx.cxml_streaming in
      fun r ->
        xml_value ~streaming (fun sink ->
            List.iter
              (fun (qn, ff) ->
                match ff r with
                | Value.Null -> ()
                | v ->
                    sink.E.emit (E.Start_element qn);
                    emit_content sink v;
                    sink.E.emit E.End_element)
              fields)
  | Xml_concat es ->
      let fs = List.map (cexpr ctx lay) es in
      let streaming = ctx.cxml_streaming in
      fun r -> xml_value ~streaming (fun sink -> List.iter (fun f -> emit_content sink (f r)) fs)
  | Xml_text e ->
      let f = cexpr ctx lay e in
      let streaming = ctx.cxml_streaming in
      fun r ->
        xml_value ~streaming (fun sink ->
            match f r with
            | Value.Null -> ()
            | v -> sink.E.emit (E.Text (Value.to_string v)))
  | Xml_comment e ->
      let f = cexpr ctx lay e in
      let streaming = ctx.cxml_streaming in
      fun r -> xml_value ~streaming (fun sink -> sink.E.emit (E.Comment (Value.to_string (f r))))
  | Xml_pi (t, e) ->
      let f = cexpr ctx lay e in
      let streaming = ctx.cxml_streaming in
      fun r -> xml_value ~streaming (fun sink -> sink.E.emit (E.Pi (t, Value.to_string (f r))))
  | Scalar_subquery p ->
      let cp = cplan ctx lay p in
      let first =
        match Layout.entries cp.c_layout with [] -> None | (_, s) :: _ -> Some s
      in
      fun r -> (
        (* full drain, like the interpreted executor, so per-operator
           actual-row counts agree between the two *)
        match drain_cursor (cp.c_open r) with
        | [] -> Value.Null
        | row :: _ -> ( match first with None -> Value.Null | Some s -> row.(s)))
  | Exists p ->
      let cp = cplan ctx lay p in
      fun r -> Value.Int (if drain_cursor (cp.c_open r) = [] then 0 else 1)

and cbinop ctx lay op a b =
  let fa = cexpr ctx lay a and fb = cexpr ctx lay b in
  match op with
  | And -> fun r -> Value.Int (if bool_of_value (fa r) && bool_of_value (fb r) then 1 else 0)
  | Or -> fun r -> Value.Int (if bool_of_value (fa r) || bool_of_value (fb r) then 1 else 0)
  | Concat -> fun r -> Value.Str (Value.to_string (fa r) ^ Value.to_string (fb r))
  | Fdiv ->
      fun r -> (
        match (fa r, fb r) with
        | Value.Null, _ | _, Value.Null -> Value.Null
        | va, vb -> Value.Float (Value.to_float va /. Value.to_float vb))
  | (Add | Sub | Mul | Div | Mod) as op ->
      let iop =
        match op with
        | Add -> ( + )
        | Sub -> ( - )
        | Mul -> ( * )
        | Div -> fun x y -> if y = 0 then err "division by zero" else x / y
        | Mod -> fun x y -> if y = 0 then err "division by zero" else x mod y
        | _ -> assert false
      in
      let fop =
        match op with
        | Add -> ( +. )
        | Sub -> ( -. )
        | Mul -> ( *. )
        | Div -> ( /. )
        | Mod -> Float.rem
        | _ -> assert false
      in
      fun r -> (
        match (fa r, fb r) with
        | Value.Null, _ | _, Value.Null -> Value.Null
        | Value.Int x, Value.Int y -> Value.Int (iop x y)
        | va, vb -> Value.Float (fop (Value.to_float va) (Value.to_float vb)))
  | (Eq | Neq | Lt | Leq | Gt | Geq) as op ->
      let test =
        match op with
        | Eq -> fun c -> c = 0
        | Neq -> fun c -> c <> 0
        | Lt -> fun c -> c < 0
        | Leq -> fun c -> c <= 0
        | Gt -> fun c -> c > 0
        | Geq -> fun c -> c >= 0
        | _ -> assert false
      in
      fun r -> (
        match Value.compare_sql (fa r) (fb r) with
        | None -> Value.Null
        | Some c -> Value.Int (if test c then 1 else 0))

and cfn ctx lay f args =
  let cs = List.map (cexpr ctx lay) args in
  let f1 () = match cs with [ f ] -> f | _ -> assert false in
  match (String.lowercase_ascii f, List.length args) with
  | "concat", _ ->
      fun r -> Value.Str (String.concat "" (List.map (fun f -> Value.to_string (f r)) cs))
  | "upper", 1 ->
      let f0 = f1 () in
      fun r -> Value.Str (String.uppercase_ascii (Value.to_string (f0 r)))
  | "lower", 1 ->
      let f0 = f1 () in
      fun r -> Value.Str (String.lowercase_ascii (Value.to_string (f0 r)))
  | "length", 1 ->
      let f0 = f1 () in
      fun r -> Value.Int (String.length (Value.to_string (f0 r)))
  | "abs", 1 ->
      let f0 = f1 () in
      fun r -> (
        match f0 r with
        | Value.Int i -> Value.Int (abs i)
        | x -> Value.Float (Float.abs (Value.to_float x)))
  | "round", 1 ->
      let f0 = f1 () in
      fun r -> (
        match f0 r with
        | Value.Null -> Value.Null
        | x -> Value.Float (xpath_round (Value.to_float x)))
  | "floor", 1 ->
      let f0 = f1 () in
      fun r -> (
        match f0 r with Value.Null -> Value.Null | x -> Value.Float (Float.floor (Value.to_float x)))
  | "ceiling", 1 ->
      let f0 = f1 () in
      fun r -> (
        match f0 r with Value.Null -> Value.Null | x -> Value.Float (Float.ceil (Value.to_float x)))
  | "coalesce", _ ->
      fun r ->
        let rec go = function
          | [] -> Value.Null
          | f :: rest -> ( match f r with Value.Null -> go rest | x -> x)
        in
        go cs
  | name, n -> err "unknown scalar function %s/%d" name n

and cagg ctx lay (a : agg) : Value.t array list -> Value.t =
  match a with
  | Count_star -> fun ms -> Value.Int (List.length ms)
  | Count e ->
      let f = cexpr ctx lay e in
      fun ms -> Value.Int (List.length (List.filter (fun r -> not (Value.is_null (f r))) ms))
  | Sum e ->
      let f = cexpr ctx lay e in
      fun ms ->
        let vs = List.filter_map (fun r -> match f r with Value.Null -> None | v -> Some v) ms in
        if vs = [] then Value.Null
        else if List.for_all (function Value.Int _ -> true | _ -> false) vs then
          Value.Int (List.fold_left (fun acc v -> acc + Value.to_int v) 0 vs)
        else Value.Float (List.fold_left (fun acc v -> acc +. Value.to_float v) 0.0 vs)
  | Min e ->
      let f = cexpr ctx lay e in
      fun ms ->
        List.fold_left
          (fun acc r ->
            match (acc, f r) with
            | acc, Value.Null -> acc
            | Value.Null, v -> v
            | acc, v -> if Value.compare_key v acc < 0 then v else acc)
          Value.Null ms
  | Max e ->
      let f = cexpr ctx lay e in
      fun ms ->
        List.fold_left
          (fun acc r ->
            match (acc, f r) with
            | acc, Value.Null -> acc
            | Value.Null, v -> v
            | acc, v -> if Value.compare_key v acc > 0 then v else acc)
          Value.Null ms
  | Avg e ->
      let f = cexpr ctx lay e in
      fun ms ->
        let vs =
          List.filter_map
            (fun r -> match f r with Value.Null -> None | v -> Some (Value.to_float v))
            ms
        in
        if vs = [] then Value.Null
        else Value.Float (List.fold_left ( +. ) 0.0 vs /. float_of_int (List.length vs))
  | Xml_agg (e, order) ->
      let f = cexpr ctx lay e in
      let kfs = Array.of_list (List.map (fun (k, d) -> (cexpr ctx lay k, d)) order) in
      fun ms ->
        let ms =
          if Array.length kfs = 0 then ms
          else
            let dec =
              Array.of_list (List.map (fun r -> (Array.map (fun (kf, _) -> kf r) kfs, r)) ms)
            in
            Array.stable_sort (fun (ka, _) (kb, _) -> sort_cmp_keys kfs ka kb) dec;
            Array.to_list (Array.map snd dec)
        in
        xml_value ~streaming:ctx.cxml_streaming (fun sink ->
            List.iter (fun r -> emit_content sink (f r)) ms)
  | String_agg (e, sep) ->
      let f = cexpr ctx lay e in
      fun ms ->
        Value.Str
          (String.concat sep
             (List.filter_map
                (fun r -> match f r with Value.Null -> None | v -> Some (Value.to_string v))
                ms))

(** Compile one operator against the layout of its correlation
    environment.  The returned layout is own columns first, outer row as
    the physical tail — the slot-level image of the interpreted
    executor's [bindings @ outer]. *)
and cplan ctx (outer_lay : Layout.t) (p : plan) : compiled =
  let sopt = match ctx.cstats with None -> None | Some st -> Stats.find st p in
  let c =
    match p with
    | Seq_scan { table; alias } ->
        let tbl = Database.table ctx.cdb table in
        let names = Array.map (fun c -> c.Table.col_name) tbl.Table.columns in
        let lay = Layout.concat (Layout.of_columns ~alias names) outer_lay in
        (* row-id window of this scan: the whole table, unless it is the
           partitioned driving scan of a domain-parallel execution *)
        let base, count =
          match ctx.cpartition with
          | Some (t, lo, hi) when t = table ->
              let lo = max 0 lo in
              (lo, fun () -> max 0 (min hi (Table.size tbl) - lo))
          | _ -> (0, fun () -> Table.size tbl)
        in
        let open_ outer =
          (match sopt with
          | Some s -> s.Stats.heap_rows <- s.Stats.heap_rows + count ()
          | None -> ());
          chunked_cursor ~batch:ctx.cbatch ~count
            ~get:(fun i -> Table.unsafe_row tbl (base + i))
            outer
        in
        { c_layout = lay; c_open = open_ }
    | Index_scan { table; alias; index_column; lo; hi } ->
        let tbl = Database.table ctx.cdb table in
        let idx =
          match Table.find_index tbl index_column with
          | Some i -> i
          | None -> err "no index on %s.%s" table index_column
        in
        let names = Array.map (fun c -> c.Table.col_name) tbl.Table.columns in
        let lay = Layout.concat (Layout.of_columns ~alias names) outer_lay in
        (* bounds are correlation expressions: compiled against the outer
           layout, evaluated once per open on the outer row *)
        let cbound = function
          | Unbounded -> fun _ -> Btree.Unbounded
          | Incl e ->
              let f = cexpr ctx outer_lay e in
              fun o -> Btree.Inclusive (f o)
          | Excl e ->
              let f = cexpr ctx outer_lay e in
              fun o -> Btree.Exclusive (f o)
        in
        let blo = cbound lo and bhi = cbound hi in
        let open_ outer =
          let tree = idx.Table.tree in
          let probes0 = Btree.probes tree and nodes0 = Btree.node_visits tree in
          let rids = Btree.range_rids tree ~lo:(blo outer) ~hi:(bhi outer) in
          (match sopt with
          | Some s ->
              s.Stats.btree_probes <- s.Stats.btree_probes + (Btree.probes tree - probes0);
              s.Stats.btree_nodes <- s.Stats.btree_nodes + (Btree.node_visits tree - nodes0);
              s.Stats.heap_rows <- s.Stats.heap_rows + Array.length rids
          | None -> ());
          chunked_cursor ~batch:ctx.cbatch
            ~count:(fun () -> Array.length rids)
            ~get:(fun i -> Table.unsafe_row tbl rids.(i))
            outer
        in
        { c_layout = lay; c_open = open_ }
    | Filter (cond, input) ->
        let ci = cplan ctx outer_lay input in
        let fc = cexpr ctx ci.c_layout cond in
        let open_ outer =
          let next = ci.c_open outer in
          let rec pull () =
            match next () with
            | None -> None
            | Some b -> (
                let kept = ref [] in
                Array.iter (fun r -> if bool_of_value (fc r) then kept := r :: !kept) b;
                match !kept with [] -> pull () | ks -> Some (Array.of_list (List.rev ks)))
          in
          pull
        in
        { c_layout = ci.c_layout; c_open = open_ }
    | Project (fields, input) ->
        check_distinct "projection output" (List.map snd fields);
        let ci = cplan ctx outer_lay input in
        let fs = Array.of_list (List.map (fun (e, _) -> cexpr ctx ci.c_layout e) fields) in
        let nf = Array.length fs in
        let lay =
          Layout.concat
            (Layout.of_list ~width:nf (List.mapi (fun i (_, n) -> (n, i)) fields))
            outer_lay
        in
        let k = Layout.width outer_lay in
        let open_ outer =
          let next = ci.c_open outer in
          fun () ->
            match next () with
            | None -> None
            | Some b ->
                Some
                  (Array.map
                     (fun r ->
                       let out = Array.make (nf + k) Value.Null in
                       for i = 0 to nf - 1 do
                         out.(i) <- (Array.unsafe_get fs i) r
                       done;
                       if k > 0 then Array.blit outer 0 out nf k;
                       out)
                     b)
        in
        { c_layout = lay; c_open = open_ }
    | Nested_loop { outer = op; inner = ip; join_cond } ->
        let co = cplan ctx outer_lay op in
        (* the inner side is correlated on the outer side's rows; its rows
           physically end with the outer row, so its layout already is the
           join layout (first-match-wins gives the inner side precedence,
           exactly like the interpreted [irow @ orow]) *)
        let ci = cplan ctx co.c_layout ip in
        let fcond = Option.map (cexpr ctx ci.c_layout) join_cond in
        let open_ outer =
          let onext = co.c_open outer in
          let obatch = ref [||] and oidx = ref 0 in
          let outer_done = ref false in
          let buf = ref [] and nbuf = ref 0 in
          let push r =
            buf := r :: !buf;
            incr nbuf
          in
          let rec fill () =
            if !nbuf >= ctx.cbatch then ()
            else if !oidx < Array.length !obatch then (
              let orow = (!obatch).(!oidx) in
              incr oidx;
              let inext = ci.c_open orow in
              let rec inner_drain () =
                match inext () with
                | None -> ()
                | Some ib ->
                    (match fcond with
                    | None -> Array.iter push ib
                    | Some f -> Array.iter (fun r -> if bool_of_value (f r) then push r) ib);
                    inner_drain ()
              in
              inner_drain ();
              fill ())
            else if not !outer_done then
              match onext () with
              | None -> outer_done := true
              | Some b ->
                  obatch := b;
                  oidx := 0;
                  fill ()
          in
          fun () ->
            fill ();
            if !nbuf = 0 then None
            else (
              let out = Array.of_list (List.rev !buf) in
              buf := [];
              nbuf := 0;
              Some out)
        in
        { c_layout = ci.c_layout; c_open = open_ }
    | Hash_join { outer = op; inner = ip; keys; kind } ->
        let co = cplan ctx outer_lay op in
        (* both sides are compiled against the enclosing environment only
           (set-oriented: the build side is evaluated once per open, not
           once per probe row); key expressions resolve against their own
           side's layout *)
        let ci = cplan ctx outer_lay ip in
        let okeys = Array.of_list (List.map (fun (ok, _) -> cexpr ctx co.c_layout ok) keys) in
        let ikeys = Array.of_list (List.map (fun (_, ik) -> cexpr ctx ci.c_layout ik) keys) in
        (* build rows end with the enclosing outer row; only their own
           slots join the output (the probe row carries the tail) *)
        let own_w = Layout.width ci.c_layout - Layout.width outer_lay in
        let pw = Layout.width co.c_layout in
        let lay =
          match kind with
          | Inner | Left_outer -> Layout.concat (Layout.prefix ci.c_layout own_w) co.c_layout
          | Semi | Anti -> co.c_layout
        in
        let open_ outer =
          (* build phase: hash the whole build side on its key tuple *)
          let tbl = Hashtbl.create 64 in
          let inext = ci.c_open outer in
          let rec build () =
            match inext () with
            | None -> ()
            | Some b ->
                Array.iter
                  (fun irow ->
                    (match sopt with
                    | Some s -> s.Stats.build_rows <- s.Stats.build_rows + 1
                    | None -> ());
                    let kvs = Array.map (fun f -> f irow) ikeys in
                    if not (Array.exists Value.is_null kvs) then (
                      let key = hash_key_string kvs in
                      let cell =
                        match Hashtbl.find_opt tbl key with
                        | Some c -> c
                        | None ->
                            let c = ref [] in
                            Hashtbl.add tbl key c;
                            c
                      in
                      cell := (irow, kvs) :: !cell))
                  b;
                build ()
          in
          build ();
          Hashtbl.iter (fun _ c -> c := List.rev !c) tbl;
          let probe prow =
            let kvs = Array.map (fun f -> f prow) okeys in
            if Array.exists Value.is_null kvs then []
            else
              match Hashtbl.find_opt tbl (hash_key_string kvs) with
              | None -> []
              | Some cell -> List.filter (fun (_, ikvs) -> hash_keys_equal kvs ikvs) !cell
          in
          let hit n =
            match sopt with
            | Some s -> s.Stats.probe_hits <- s.Stats.probe_hits + n
            | None -> ()
          in
          let join_out irow prow =
            let out = Array.make (own_w + pw) Value.Null in
            Array.blit irow 0 out 0 own_w;
            Array.blit prow 0 out own_w pw;
            out
          in
          (* probe phase: stream the probe side in batches *)
          let onext = co.c_open outer in
          let obatch = ref [||] and oidx = ref 0 in
          let outer_done = ref false in
          let buf = ref [] and nbuf = ref 0 in
          let push r =
            buf := r :: !buf;
            incr nbuf
          in
          let rec fill () =
            if !nbuf >= ctx.cbatch then ()
            else if !oidx < Array.length !obatch then (
              let prow = (!obatch).(!oidx) in
              incr oidx;
              (match kind with
              | Inner ->
                  let ms = probe prow in
                  hit (List.length ms);
                  List.iter (fun (irow, _) -> push (join_out irow prow)) ms
              | Left_outer -> (
                  match probe prow with
                  | [] ->
                      let out = Array.make (own_w + pw) Value.Null in
                      Array.blit prow 0 out own_w pw;
                      push out
                  | ms ->
                      hit (List.length ms);
                      List.iter (fun (irow, _) -> push (join_out irow prow)) ms)
              | Semi -> (
                  match probe prow with
                  | [] -> ()
                  | _ :: _ ->
                      hit 1;
                      push prow)
              | Anti -> (
                  match probe prow with
                  | [] -> push prow
                  | _ :: _ -> hit 1));
              fill ())
            else if not !outer_done then
              match onext () with
              | None -> outer_done := true
              | Some b ->
                  obatch := b;
                  oidx := 0;
                  fill ()
          in
          fun () ->
            fill ();
            if !nbuf = 0 then None
            else (
              let out = Array.of_list (List.rev !buf) in
              buf := [];
              nbuf := 0;
              Some out)
        in
        { c_layout = lay; c_open = open_ }
    | Aggregate { group_by; aggs; input } ->
        check_distinct "aggregate output" (List.map snd group_by @ List.map snd aggs);
        let ci = cplan ctx outer_lay input in
        let gfs = List.map (fun (e, _) -> cexpr ctx ci.c_layout e) group_by in
        let afs = List.map (fun (a, _) -> cagg ctx ci.c_layout a) aggs in
        let ng = List.length gfs and na = List.length afs in
        let k = Layout.width outer_lay in
        let lay =
          Layout.concat
            (Layout.of_list ~width:(ng + na)
               (List.mapi (fun i (_, n) -> (n, i)) group_by
               @ List.mapi (fun i (_, n) -> (n, ng + i)) aggs))
            outer_lay
        in
        let open_ outer =
          let next = ci.c_open outer in
          let make_group members key =
            let out = Array.make (ng + na + k) Value.Null in
            (match members with
            | m :: _ -> List.iteri (fun i gf -> out.(i) <- gf m) gfs
            | [] -> List.iteri (fun i ks -> out.(i) <- Value.Str ks) key);
            List.iteri (fun i af -> out.(ng + i) <- af members) afs;
            if k > 0 then Array.blit outer 0 out (ng + na) k;
            out
          in
          lazy_array_cursor ctx.cbatch (fun () ->
              let rows = drain_cursor next in
              if ng = 0 then [| make_group rows [] |]
              else (
                let groups = Hashtbl.create 16 in
                let order = ref [] in
                List.iter
                  (fun r ->
                    let key = List.map (fun gf -> Value.to_string (gf r)) gfs in
                    match Hashtbl.find_opt groups key with
                    | None ->
                        order := key :: !order;
                        Hashtbl.add groups key (ref [ r ])
                    | Some cell -> cell := r :: !cell)
                  rows;
                Array.of_list
                  (List.rev_map
                     (fun key -> make_group (List.rev !(Hashtbl.find groups key)) key)
                     !order)))
        in
        { c_layout = lay; c_open = open_ }
    | Sort (keys, input) ->
        let ci = cplan ctx outer_lay input in
        let kfs = Array.of_list (List.map (fun (k, d) -> (cexpr ctx ci.c_layout k, d)) keys) in
        let open_ outer =
          let next = ci.c_open outer in
          lazy_array_cursor ctx.cbatch (fun () ->
              let rows = Array.of_list (drain_cursor next) in
              let dec = Array.map (fun r -> (Array.map (fun (kf, _) -> kf r) kfs, r)) rows in
              Array.stable_sort (fun (ka, _) (kb, _) -> sort_cmp_keys kfs ka kb) dec;
              Array.map snd dec)
        in
        { c_layout = ci.c_layout; c_open = open_ }
    | Limit (n, input) ->
        let ci = cplan ctx outer_lay input in
        let open_ outer =
          let next = ci.c_open outer in
          lazy_array_cursor ctx.cbatch (fun () ->
              (* the interpreted executor materialises the child fully
                 before truncating; do the same so per-operator actual-row
                 counts are identical under EXPLAIN ANALYZE *)
              let rows = drain_cursor next in
              let rec take n = function
                | [] -> []
                | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest
              in
              Array.of_list (take n rows))
        in
        { c_layout = ci.c_layout; c_open = open_ }
    | Values { cols; rows } ->
        check_distinct "VALUES columns" cols;
        let nc = List.length cols in
        let data =
          Array.of_list
            (List.map
               (fun vs ->
                 if List.length vs <> nc then
                   err "VALUES row arity %d does not match %d column(s)" (List.length vs) nc
                 else Array.of_list vs)
               rows)
        in
        let lay =
          Layout.concat
            (Layout.of_list ~width:nc (List.mapi (fun i c -> (c, i)) cols))
            outer_lay
        in
        let open_ outer =
          chunked_cursor ~batch:ctx.cbatch
            ~count:(fun () -> Array.length data)
            ~get:(fun i -> data.(i))
            outer
        in
        { c_layout = lay; c_open = open_ }
  in
  match sopt with
  | None -> c
  | Some s -> { c with c_open = instrumented_open s c.c_open }

(* ------------------------------------------------------------------ *)
(* Public entry points                                                 *)
(* ------------------------------------------------------------------ *)

let eval_expr db (env : row) (e : expr) : Value.t =
  eval_expr_in { db; stats = None; xml_streaming = false } env e

(** Reference (interpreted) executor — the original assoc-row semantics. *)
let run_interpreted db ?(outer = []) ?(xml_streaming = false) (p : plan) : row list =
  run_in { db; stats = None; xml_streaming } ~outer p

let run_interpreted_analyzed db ?(outer = []) (p : plan) : row list * Stats.t =
  let stats = Stats.create p in
  let rows = run_in { db; stats = Some stats; xml_streaming = false } ~outer p in
  (rows, stats)

(** [compile db plan] — the plan-open pass: resolve every column
    reference to a slot, compile expressions to closures, build batch
    cursors.  [xml_streaming] makes XML constructors produce
    [Value.Xml_stream] (events on demand) instead of node trees.
    @raise Exec_error for unresolvable or ambiguous columns. *)
let compile db ?stats ?(outer = Layout.empty) ?(batch_size = default_batch_size)
    ?(xml_streaming = false) ?partition (p : plan) : compiled =
  cplan
    {
      cdb = db;
      cstats = stats;
      cbatch = max 1 batch_size;
      cxml_streaming = xml_streaming;
      cpartition = partition;
    }
    outer p

let compiled_layout (c : compiled) = c.c_layout

let open_cursor (c : compiled) ?(outer = [||]) () : cursor = c.c_open outer

(** [run_arrays db plan] — compiled execution to physical rows plus their
    layout; the allocation-light entry point for hot paths. *)
let run_arrays db ?batch_size ?xml_streaming ?partition (p : plan) :
    Layout.t * Value.t array list =
  let c = compile db ?batch_size ?xml_streaming ?partition p in
  (c.c_layout, drain_cursor (c.c_open [||]))

let run_arrays_analyzed db ?batch_size ?xml_streaming ?partition (p : plan) :
    (Layout.t * Value.t array list) * Stats.t =
  let stats = Stats.create p in
  let c = compile db ~stats ?batch_size ?xml_streaming ?partition p in
  ((c.c_layout, drain_cursor (c.c_open [||])), stats)

(* an externally supplied assoc environment becomes a physical outer row *)
let outer_env (outer : row) =
  (Layout.of_bindings (List.map fst outer), Array.of_list (List.map snd outer))

let run db ?(outer = []) (p : plan) : row list =
  let olay, orow = outer_env outer in
  let c = compile db ~outer:olay p in
  List.map (Layout.to_assoc c.c_layout) (drain_cursor (c.c_open orow))

(** [run_analyzed db plan] — execute with per-operator instrumentation;
    returns the rows and the filled collector (EXPLAIN ANALYZE). *)
let run_analyzed db ?(outer = []) (p : plan) : row list * Stats.t =
  let stats = Stats.create p in
  let olay, orow = outer_env outer in
  let c = compile db ~stats ~outer:olay p in
  (List.map (Layout.to_assoc c.c_layout) (drain_cursor (c.c_open orow)), stats)

(** First column of each result row — convenient for single-column queries. *)
let run_column db ?(outer = []) p =
  let olay, orow = outer_env outer in
  let c = compile db ~outer:olay p in
  let rows = drain_cursor (c.c_open orow) in
  match Layout.entries c.c_layout with
  | [] -> List.map (fun _ -> Value.Null) rows
  | (_, s) :: _ -> List.map (fun r -> r.(s)) rows
