(** Plan and expression evaluation.

    Rows at runtime are association lists from column names to values; each
    scan binds both the bare column name and the [alias.column] qualified
    form, so correlated subqueries can reference outer tables the way
    paper Table 7 does ([DEPTNO = DEPT.DEPTNO]).

    Evaluation is parameterised by an execution context carrying the
    database and an optional {!Stats.t} collector; when a collector is
    present every operator records rows produced, loops, B-tree probe
    counts and inclusive wall time (EXPLAIN ANALYZE). *)

module X = Xdb_xml.Types
open Algebra

type row = (string * Value.t) list

exception Exec_error of string

let err fmt = Printf.ksprintf (fun m -> raise (Exec_error m)) fmt

(** Execution context: database plus optional instrumentation. *)
type ctx = { db : Database.t; stats : Stats.t option }

let lookup (env : row) alias name =
  match alias with
  | Some a -> (
      match List.assoc_opt (a ^ "." ^ name) env with
      | Some v -> v
      | None -> err "unknown column %s.%s" a name)
  | None -> (
      match List.assoc_opt name env with
      | Some v -> v
      | None -> err "unknown column %s" name)

let bool_of_value = function
  | Value.Null -> false
  | Value.Int i -> i <> 0
  (* XPath/SQL boolean semantics: NaN is false (NaN <> 0.0 holds in OCaml,
     so the naive test would make NaN truthy) *)
  | Value.Float f -> f <> 0.0 && not (Float.is_nan f)
  | Value.Str s -> s <> ""
  | Value.Xml ns -> ns <> []

(* scalar value → XML content node list (SQL/XML: scalars become text) *)
let xml_content = function
  | Value.Null -> []
  | Value.Xml nodes -> List.map X.deep_copy nodes
  | v -> [ X.make (X.Text (Value.to_string v)) ]

(* XPath 1.0 round(): round(-0.2) and round(-0.5) are negative zero;
   NaN, ±∞, ±0 and integers pass through unchanged *)
let xpath_round f =
  if Float.is_nan f || Float.is_integer f then f
  else if f >= -0.5 && f < 0.0 then -0.0
  else Float.floor (f +. 0.5)

let rec eval_expr_in ctx (env : row) (e : expr) : Value.t =
  match e with
  | Const v -> v
  | Col (alias, name) -> lookup env alias name
  | Not e -> Value.Int (if bool_of_value (eval_expr_in ctx env e) then 0 else 1)
  | Is_null e -> Value.Int (if Value.is_null (eval_expr_in ctx env e) then 1 else 0)
  | Binop (op, a, b) -> eval_binop ctx env op a b
  | Fn (f, args) -> eval_fn ctx env f args
  | Case (whens, els) -> (
      let rec go = function
        | [] -> ( match els with Some e -> eval_expr_in ctx env e | None -> Value.Null)
        | (c, r) :: rest ->
            if bool_of_value (eval_expr_in ctx env c) then eval_expr_in ctx env r else go rest
      in
      go whens)
  | Xml_element (name, attrs, kids) ->
      let el = X.make (X.Element (X.qname name)) in
      List.iter
        (fun (an, ae) ->
          match eval_expr_in ctx env ae with
          | Value.Null -> ()
          | v -> X.add_attribute el (X.make (X.Attribute (X.qname an, Value.to_string v))))
        attrs;
      X.set_children el (List.concat_map (fun ke -> xml_content (eval_expr_in ctx env ke)) kids);
      Value.Xml [ el ]
  | Xml_forest fields ->
      Value.Xml
        (List.concat_map
           (fun (n, fe) ->
             match eval_expr_in ctx env fe with
             | Value.Null -> []
             | v ->
                 let el = X.make (X.Element (X.qname n)) in
                 X.set_children el (xml_content v);
                 [ el ])
           fields)
  | Xml_concat es ->
      Value.Xml
        (List.concat_map
           (fun e -> match eval_expr_in ctx env e with Value.Null -> [] | v -> xml_content v)
           es)
  | Xml_text e -> (
      match eval_expr_in ctx env e with
      | Value.Null -> Value.Xml []
      | v -> Value.Xml [ X.make (X.Text (Value.to_string v)) ])
  | Xml_comment e -> Value.Xml [ X.make (X.Comment (Value.to_string (eval_expr_in ctx env e))) ]
  | Xml_pi (t, e) -> Value.Xml [ X.make (X.Pi (t, Value.to_string (eval_expr_in ctx env e))) ]
  | Scalar_subquery p -> (
      match run_in ctx ~outer:env p with
      | [] -> Value.Null
      | r :: _ -> ( match r with [] -> Value.Null | (_, v) :: _ -> v))
  | Exists p -> Value.Int (if run_in ctx ~outer:env p = [] then 0 else 1)

and eval_binop ctx env op a b =
  match op with
  | And ->
      Value.Int
        (if bool_of_value (eval_expr_in ctx env a) && bool_of_value (eval_expr_in ctx env b)
         then 1
         else 0)
  | Or ->
      Value.Int
        (if bool_of_value (eval_expr_in ctx env a) || bool_of_value (eval_expr_in ctx env b)
         then 1
         else 0)
  | Concat ->
      Value.Str
        (Value.to_string (eval_expr_in ctx env a) ^ Value.to_string (eval_expr_in ctx env b))
  | Fdiv ->
      let va = eval_expr_in ctx env a and vb = eval_expr_in ctx env b in
      (match (va, vb) with
      | Value.Null, _ | _, Value.Null -> Value.Null
      | _ -> Value.Float (Value.to_float va /. Value.to_float vb))
  | Add | Sub | Mul | Div | Mod -> (
      let va = eval_expr_in ctx env a and vb = eval_expr_in ctx env b in
      match (va, vb) with
      | Value.Null, _ | _, Value.Null -> Value.Null
      | Value.Int x, Value.Int y -> (
          match op with
          | Add -> Value.Int (x + y)
          | Sub -> Value.Int (x - y)
          | Mul -> Value.Int (x * y)
          | Div -> if y = 0 then err "division by zero" else Value.Int (x / y)
          | Mod -> if y = 0 then err "division by zero" else Value.Int (x mod y)
          | _ -> assert false)
      | _ ->
          let x = Value.to_float va and y = Value.to_float vb in
          let f =
            match op with
            | Add -> x +. y
            | Sub -> x -. y
            | Mul -> x *. y
            | Div -> x /. y
            | Mod -> Float.rem x y
            | _ -> assert false
          in
          Value.Float f)
  | Eq | Neq | Lt | Leq | Gt | Geq -> (
      let va = eval_expr_in ctx env a and vb = eval_expr_in ctx env b in
      match Value.compare_sql va vb with
      | None -> Value.Null
      | Some c ->
          let b =
            match op with
            | Eq -> c = 0
            | Neq -> c <> 0
            | Lt -> c < 0
            | Leq -> c <= 0
            | Gt -> c > 0
            | Geq -> c >= 0
            | _ -> assert false
          in
          Value.Int (if b then 1 else 0))

and eval_fn ctx env f args =
  let v i = eval_expr_in ctx env (List.nth args i) in
  match (String.lowercase_ascii f, List.length args) with
  | "concat", _ ->
      Value.Str
        (String.concat "" (List.map (fun a -> Value.to_string (eval_expr_in ctx env a)) args))
  | "upper", 1 -> Value.Str (String.uppercase_ascii (Value.to_string (v 0)))
  | "lower", 1 -> Value.Str (String.lowercase_ascii (Value.to_string (v 0)))
  | "length", 1 -> Value.Int (String.length (Value.to_string (v 0)))
  | "abs", 1 -> (
      match v 0 with
      | Value.Int i -> Value.Int (abs i)
      | x -> Value.Float (Float.abs (Value.to_float x)))
  | "round", 1 -> (
      match v 0 with
      | Value.Null -> Value.Null
      | x -> Value.Float (xpath_round (Value.to_float x)))
  | "floor", 1 -> (
      match v 0 with Value.Null -> Value.Null | x -> Value.Float (Float.floor (Value.to_float x)))
  | "ceiling", 1 -> (
      match v 0 with Value.Null -> Value.Null | x -> Value.Float (Float.ceil (Value.to_float x)))
  | "coalesce", _ ->
      let rec go = function
        | [] -> Value.Null
        | a :: rest -> ( match eval_expr_in ctx env a with Value.Null -> go rest | x -> x)
      in
      go args
  | name, n -> err "unknown scalar function %s/%d" name n

(* ------------------------------------------------------------------ *)
(* Plan execution                                                      *)
(* ------------------------------------------------------------------ *)

and scan_bindings (tbl : Table.t) alias (r : Value.t array) : row =
  let out = ref [] in
  Array.iteri
    (fun i c ->
      let v = r.(i) in
      out := (alias ^ "." ^ c.Table.col_name, v) :: (c.Table.col_name, v) :: !out)
    tbl.Table.columns;
  List.rev !out

(* one operator, uninstrumented *)
and run_node ctx (outer : row) (p : plan) : row list =
  let db = ctx.db in
  match p with
  | Seq_scan { table; alias } ->
      let tbl = Database.table db table in
      Table.fold (fun acc _ r -> (scan_bindings tbl alias r @ outer) :: acc) [] tbl |> List.rev
  | Index_scan { table; alias; index_column; lo; hi } -> (
      let tbl = Database.table db table in
      match Table.find_index tbl index_column with
      | None -> err "no index on %s.%s" table index_column
      | Some idx ->
          let bound = function
            | Unbounded -> Btree.Unbounded
            | Incl e -> Btree.Inclusive (eval_expr_in ctx outer e)
            | Excl e -> Btree.Exclusive (eval_expr_in ctx outer e)
          in
          Btree.range idx.Table.tree ~lo:(bound lo) ~hi:(bound hi)
          |> List.map (fun (_, rid) -> scan_bindings tbl alias (Table.row tbl rid) @ outer))
  | Filter (cond, input) ->
      List.filter (fun r -> bool_of_value (eval_expr_in ctx r cond)) (run_in ctx ~outer input)
  | Project (fields, input) ->
      List.map
        (fun r -> List.map (fun (e, n) -> (n, eval_expr_in ctx r e)) fields @ outer)
        (run_in ctx ~outer input)
  | Nested_loop { outer = op; inner = ip; join_cond } ->
      let outer_rows = run_in ctx ~outer op in
      List.concat_map
        (fun orow ->
          let inner_rows = run_in ctx ~outer:orow ip in
          let joined = List.map (fun irow -> irow @ orow) inner_rows in
          match join_cond with
          | None -> joined
          | Some c -> List.filter (fun r -> bool_of_value (eval_expr_in ctx r c)) joined)
        outer_rows
  | Aggregate { group_by; aggs; input } ->
      let rows = run_in ctx ~outer input in
      if group_by = [] then [ eval_agg_group ctx outer group_by aggs rows [] ]
      else
        let groups = Hashtbl.create 16 in
        let order = ref [] in
        List.iter
          (fun r ->
            let key = List.map (fun (e, _) -> Value.to_string (eval_expr_in ctx r e)) group_by in
            (match Hashtbl.find_opt groups key with
            | None ->
                order := key :: !order;
                Hashtbl.add groups key (ref [ r ])
            | Some cell -> cell := r :: !cell))
          rows;
        List.rev_map
          (fun key ->
            let members = List.rev !(Hashtbl.find groups key) in
            eval_agg_group ctx outer group_by aggs members key)
          !order
  | Sort (keys, input) ->
      let rows = run_in ctx ~outer input in
      let decorated =
        List.map (fun r -> (List.map (fun (k, d) -> (eval_expr_in ctx r k, d)) keys, r)) rows
      in
      let cmp (ka, _) (kb, _) =
        let rec go = function
          | [] -> 0
          | ((va, d), (vb, _)) :: rest -> (
              let c = Value.compare_key va vb in
              let c = match d with Asc -> c | Desc -> -c in
              match c with 0 -> go rest | c -> c)
        in
        go (List.combine ka kb)
      in
      List.map snd (List.stable_sort cmp decorated)
  | Limit (n, input) ->
      let rec take n = function
        | [] -> []
        | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest
      in
      take n (run_in ctx ~outer input)
  | Values { cols; rows } -> List.map (fun vs -> List.combine cols vs @ outer) rows

(* operator dispatch: the instrumented path wraps [run_node] with wall-time
   and row accounting; the plain path adds no overhead *)
and run_in ctx ?(outer = []) (p : plan) : row list =
  match ctx.stats with
  | None -> run_node ctx outer p
  | Some st -> (
      match Stats.find st p with
      | None -> run_node ctx outer p
      | Some s ->
          (* snapshot B-tree counters so probe/node-visit deltas can be
             attributed to this index-scan execution *)
          let tree =
            match p with
            | Index_scan { table; index_column; _ } -> (
                match Table.find_index (Database.table ctx.db table) index_column with
                | Some idx -> Some idx.Table.tree
                | None -> None)
            | _ -> None
          in
          let probes0, nodes0 =
            match tree with Some t -> (Btree.probes t, Btree.node_visits t) | None -> (0, 0)
          in
          let t0 = Unix.gettimeofday () in
          let rows = run_node ctx outer p in
          s.Stats.time_ms <- s.Stats.time_ms +. ((Unix.gettimeofday () -. t0) *. 1000.0);
          s.Stats.loops <- s.Stats.loops + 1;
          let produced = List.length rows in
          s.Stats.rows <- s.Stats.rows + produced;
          (match p with
          | Seq_scan { table; _ } ->
              s.Stats.heap_rows <-
                s.Stats.heap_rows + Table.size (Database.table ctx.db table)
          | Index_scan _ ->
              s.Stats.heap_rows <- s.Stats.heap_rows + produced;
              (match tree with
              | Some t ->
                  s.Stats.btree_probes <- s.Stats.btree_probes + (Btree.probes t - probes0);
                  s.Stats.btree_nodes <- s.Stats.btree_nodes + (Btree.node_visits t - nodes0)
              | None -> ())
          | _ -> ());
          rows)

and eval_agg_group ctx outer group_by aggs members key =
  (* group columns: re-evaluate on a member row to keep value types; fall
     back to the string key for an (impossible in practice) empty group *)
  let group_cols =
    match members with
    | m :: _ -> List.map (fun (e, n) -> (n, eval_expr_in ctx m e)) group_by
    | [] -> List.map2 (fun (_, n) k -> (n, Value.Str k)) group_by key
  in
  let agg_cols =
    List.map
      (fun (a, n) ->
        let value =
          match a with
          | Count_star -> Value.Int (List.length members)
          | Count e ->
              Value.Int
                (List.length
                   (List.filter (fun r -> not (Value.is_null (eval_expr_in ctx r e))) members))
          | Sum e ->
              let vs =
                List.filter_map
                  (fun r ->
                    match eval_expr_in ctx r e with Value.Null -> None | v -> Some v)
                  members
              in
              if vs = [] then Value.Null
              else if List.for_all (function Value.Int _ -> true | _ -> false) vs then
                Value.Int (List.fold_left (fun acc v -> acc + Value.to_int v) 0 vs)
              else Value.Float (List.fold_left (fun acc v -> acc +. Value.to_float v) 0.0 vs)
          | Min e ->
              List.fold_left
                (fun acc r ->
                  let v = eval_expr_in ctx r e in
                  match (acc, v) with
                  | _, Value.Null -> acc
                  | Value.Null, v -> v
                  | acc, v -> if Value.compare_key v acc < 0 then v else acc)
                Value.Null members
          | Max e ->
              List.fold_left
                (fun acc r ->
                  let v = eval_expr_in ctx r e in
                  match (acc, v) with
                  | _, Value.Null -> acc
                  | Value.Null, v -> v
                  | acc, v -> if Value.compare_key v acc > 0 then v else acc)
                Value.Null members
          | Avg e ->
              let vs =
                List.filter_map
                  (fun r ->
                    match eval_expr_in ctx r e with
                    | Value.Null -> None
                    | v -> Some (Value.to_float v))
                  members
              in
              if vs = [] then Value.Null
              else Value.Float (List.fold_left ( +. ) 0.0 vs /. float_of_int (List.length vs))
          | Xml_agg (e, order) ->
              let members =
                if order = [] then members
                else
                  let decorated =
                    List.map
                      (fun r -> (List.map (fun (k, d) -> (eval_expr_in ctx r k, d)) order, r))
                      members
                  in
                  let cmp (ka, _) (kb, _) =
                    let rec go = function
                      | [] -> 0
                      | ((va, d), (vb, _)) :: rest -> (
                          let c = Value.compare_key va vb in
                          let c = match d with Asc -> c | Desc -> -c in
                          match c with 0 -> go rest | c -> c)
                    in
                    go (List.combine ka kb)
                  in
                  List.map snd (List.stable_sort cmp decorated)
              in
              Value.Xml
                (List.concat_map
                   (fun r ->
                     match eval_expr_in ctx r e with Value.Null -> [] | v -> xml_content v)
                   members)
          | String_agg (e, sep) ->
              Value.Str
                (String.concat sep
                   (List.filter_map
                      (fun r ->
                        match eval_expr_in ctx r e with
                        | Value.Null -> None
                        | v -> Some (Value.to_string v))
                      members))
        in
        (n, value))
      aggs
  in
  group_cols @ agg_cols @ outer

(* ------------------------------------------------------------------ *)
(* Public entry points                                                 *)
(* ------------------------------------------------------------------ *)

let eval_expr db (env : row) (e : expr) : Value.t =
  eval_expr_in { db; stats = None } env e

let run db ?(outer = []) (p : plan) : row list = run_in { db; stats = None } ~outer p

(** [run_analyzed db plan] — execute with per-operator instrumentation;
    returns the rows and the filled collector (EXPLAIN ANALYZE). *)
let run_analyzed db ?(outer = []) (p : plan) : row list * Stats.t =
  let stats = Stats.create p in
  let rows = run_in { db; stats = Some stats } ~outer p in
  (rows, stats)

(** First column of each result row — convenient for single-column queries. *)
let run_column db ?(outer = []) p =
  List.map (function [] -> Value.Null | (_, v) :: _ -> v) (run db ~outer p)
