(** SQL values, including the XMLType of SQL/XML.  [Xml] carries a node
    {e forest} so [XMLConcat]/[XMLAgg] results are first-class. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Xml of Xdb_xml.Types.node list
  | Xml_stream of (Xdb_xml.Events.sink -> unit)
      (** streamed XMLType: a producer that replays the forest as output
          events on demand — no DOM is ever built unless the consumer
          asks for one via {!stream_to_nodes} *)

type column_type = Tint | Tfloat | Tstr | Txml

val type_name : column_type -> string
val value_type_name : t -> string

exception Type_error of string

val to_int : t -> int
(** @raise Type_error on non-numeric values. *)

val to_float : t -> float

val float_to_string : float -> string
(** Float → string matching XPath 1.0 [string(number)]. *)

val stream_to_nodes : (Xdb_xml.Events.sink -> unit) -> Xdb_xml.Types.node list
(** Materialize a streamed XMLType producer into a node forest. *)

val to_string : t -> string
(** SQL→text conversion; floats print in XPath number format so SQL results
    compare equal with XQuery-evaluated results; NULL prints empty; XML
    serializes. *)

val is_null : t -> bool

val compare_sql : t -> t -> int option
(** SQL three-valued comparison: [None] when either side is NULL.
    @raise Type_error for XMLType operands. *)

val compare_key : t -> t -> int
(** Total order for B-tree keys: NULLs first, numerics before strings. *)

val equal_sql : t -> t -> bool

val show : t -> string
(** Rendering for EXPLAIN / test display (strings quoted). *)
