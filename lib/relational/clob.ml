(** CLOB/BLOB XMLType storage (paper Figure 1, §7.4).

    Documents are stored as serialized text in an ordinary table
    ([docid INT, content VARCHAR]).  Functional access parses the text back
    into a DOM on every fetch — the storage model with the cheapest loads
    and the most expensive reads, the counterpoint to object-relational
    publishing in the §7.4 storage study (bench target [storage]).

    No structural information survives serialization, so the XSLT rewrite
    cannot push work below the parse for this model; the pipeline treats
    CLOB-stored XMLType functionally (which is exactly the trade-off the
    paper's future-work section wants quantified). *)

module X = Xdb_xml.Types

let content_column = "content"
let id_column = "docid"

(** [store db ~table docs] — create [table] and serialize [docs] into it. *)
let store db ~table (docs : X.node list) : Table.t =
  let t =
    Database.create_table db table
      [
        { Table.col_name = id_column; col_type = Value.Tint };
        { Table.col_name = content_column; col_type = Value.Tstr };
      ]
  in
  List.iteri
    (fun i doc ->
      Table.insert_values t [ Value.Int (i + 1); Value.Str (Xdb_xml.Serializer.to_string doc) ])
    docs;
  t

(** [load db ~table] — fetch and parse every stored document, in id order. *)
let load db ~table : X.node list =
  let t = Database.table db table in
  Table.fold
    (fun acc _ row ->
      match row.(Table.column_pos t content_column) with
      | Value.Str text -> Xdb_xml.Parser.parse text :: acc
      | _ -> acc)
    [] t
  |> List.rev

(** [load_one db ~table ~docid] — point fetch (uses an index on [docid]
    when one exists). *)
let load_one db ~table ~docid : X.node option =
  let t = Database.table db table in
  let rows =
    match Table.find_index t id_column with
    | Some idx -> Btree.find idx.Table.tree (Value.Int docid)
    | None ->
        Table.fold
          (fun acc rid row ->
            if row.(Table.column_pos t id_column) = Value.Int docid then rid :: acc else acc)
          [] t
  in
  match rows with
  | rid :: _ -> (
      let row = Table.row t rid in
      match row.(Table.column_pos t content_column) with
      | Value.Str text -> Some (Xdb_xml.Parser.parse text)
      | _ -> None)
  | [] -> None
