(** SQL/XML publishing specs and XMLType views.

    A publishing spec describes how an XMLType view column is generated
    from relational data (paper Table 3).  It is used three ways:
    materialisation (the functional baseline's input), structural
    information (the partial evaluator's [X]), and as the navigation
    target of the XQuery→SQL/XML rewrite (paper Tables 7/11). *)

type spec =
  | Elem of { name : string; attrs : (string * Algebra.expr) list; content : spec list }
      (** [XMLElement(name, XMLAttributes(...), content...)] *)
  | Text_col of string  (** text content from a column of the current scope *)
  | Text_expr of Algebra.expr
  | Text_const of string
  | Agg of {
      table : string;
      alias : string;
      correlate : (string * string) list;
          (** (inner column, outer column) equi-correlations *)
      where : Algebra.expr option;
      order_by : (string * Algebra.order_dir) list;
      body : spec;
    }  (** correlated scalar subquery with [XMLAgg] *)

type view = {
  view_name : string;
  base_table : string;
  base_alias : string;
  column : string;  (** name of the XMLType output column *)
  spec : spec;  (** one document per base-table row *)
}

exception Publish_error of string

val materialize_spec :
  Database.t -> Exec.row -> spec -> Xdb_xml.Types.node list
(** Evaluate a spec against a row environment.  Correlated [Agg] scans
    probe a B-tree on a correlation column when one exists. *)

val materialize : Database.t -> view -> Xdb_xml.Types.node list
(** One XML document (a document node) per base-table row, in table
    order — the input of the functional (no-rewrite) evaluation. *)

val to_schema : view -> Xdb_schema.Types.t
(** Structural information of the published documents: scalar content has
    cardinality one, [Agg] bodies are unbounded, children form [sequence]
    model groups (paper §3.2, bullet 2). *)

val spec_elem_name : spec -> string option
(** Element name a spec publishes, if it publishes a single element. *)

val child_specs : spec -> spec list
(** Content specs of a located element. *)

val navigate : spec -> string -> spec option
(** Child spec publishing the given element name. *)

val scalar_column : spec -> string option
(** The column bound as the sole text content of an element, if any. *)

(** Catalog of views alongside a database: *)

type catalog = { db : Database.t; mutable views : view list }

val create_catalog : Database.t -> catalog
val register : catalog -> view -> unit
val find_view : catalog -> string -> view option
