(** SQL/XML publishing specs and XMLType views.

    A publishing spec describes how an XMLType view column is generated
    from relational data (paper Table 3).  It is used three ways:
    materialisation (the functional baseline's input), structural
    information (the partial evaluator's [X]), and as the navigation
    target of the XQuery→SQL/XML rewrite (paper Tables 7/11). *)

type spec =
  | Elem of { name : string; attrs : (string * Algebra.expr) list; content : spec list }
      (** [XMLElement(name, XMLAttributes(...), content...)] *)
  | Text_col of string  (** text content from a column of the current scope *)
  | Text_expr of Algebra.expr
  | Text_const of string
  | Agg of {
      table : string;
      alias : string;
      correlate : (string * string) list;
          (** (inner column, outer column) equi-correlations *)
      where : Algebra.expr option;
      order_by : (string * Algebra.order_dir) list;
      body : spec;
    }  (** correlated scalar subquery with [XMLAgg] *)

type view = {
  view_name : string;
  base_table : string;
  base_alias : string;
  column : string;  (** name of the XMLType output column *)
  spec : spec;  (** one document per base-table row *)
}

exception Publish_error of string

val emit_spec :
  Database.t -> Exec.row -> spec -> Xdb_xml.Events.sink -> unit
(** Evaluate a spec against a row environment as a stream of output
    events — the single construction path.  Correlated [Agg] scans probe
    a B-tree on a correlation column when one exists. *)

val materialize_spec :
  Database.t -> Exec.row -> spec -> Xdb_xml.Types.node list
(** {!emit_spec} drained through the tree builder. *)

val materialize : Database.t -> ?row_range:int * int -> view -> Xdb_xml.Types.node list
(** One XML document (a document node) per base-table row, in table
    order — the input of the functional (no-rewrite) evaluation.
    [row_range:(lo, hi)] restricts to the half-open row-id window
    [lo, hi) — the partition hook domain-parallel execution uses. *)

val materialize_serialized :
  Database.t ->
  ?meth:Xdb_xml.Events.output_method ->
  ?indent:bool ->
  ?row_range:int * int ->
  view ->
  string list
(** The documents of {!materialize}, already serialized: spec events
    stream into a reused buffer, one string per base row, no
    intermediate tree.  Defaults: [meth = Xml], [indent = false];
    [row_range] as in {!materialize}. *)

val to_schema : view -> Xdb_schema.Types.t
(** Structural information of the published documents: scalar content has
    cardinality one, [Agg] bodies are unbounded, children form [sequence]
    model groups (paper §3.2, bullet 2). *)

val spec_elem_name : spec -> string option
(** Element name a spec publishes, if it publishes a single element. *)

val child_specs : spec -> spec list
(** Content specs of a located element. *)

val navigate : spec -> string -> spec option
(** Child spec publishing the given element name. *)

val scalar_column : spec -> string option
(** The column bound as the sole text content of an element, if any. *)

val view_tables : view -> string list
(** Base tables the view's materialisation reads (base table, [Agg]
    subquery tables, tables of embedded algebra subplans), deduplicated —
    the data-version dependencies of a cached publish result. *)

(** Catalog of views alongside a database: *)

type catalog

val create_catalog : Database.t -> catalog

val register : catalog -> view -> unit
(** Register a view under its name (O(1)).
    @raise Publish_error if a view of that name is already registered —
    evolution replaces views through {!Xdb_core.Registry}, not by silent
    shadowing here. *)

val find_view : catalog -> string -> view option

val catalog_views : catalog -> view list
(** All registered views, in registration order. *)

val catalog_db : catalog -> Database.t
