(** ANALYZE: scan (or systematically sample) a table, compute per-column
    {!Colstats} and store them in the {!Database} catalog with a version
    stamp.  XMLType columns are skipped — they never appear in sargable
    predicates. *)

let default_sample = 10_000

(** [table db name] collects statistics for one table and returns the
    number of rows sampled.
    @raise Database.Unknown_table when the table does not exist. *)
let table ?(sample = default_sample) db name =
  let tbl = Database.table db name in
  let n = Table.size tbl in
  let stride = if n <= sample then 1 else (n + sample - 1) / sample in
  let sampled = ref 0 in
  let cols =
    tbl.Table.columns |> Array.to_list
    |> List.filter (fun c -> c.Table.col_type <> Value.Txml)
    |> List.map (fun c -> (c.Table.col_name, Table.column_pos tbl c.Table.col_name))
  in
  let acc = List.map (fun (cname, pos) -> (cname, pos, ref [])) cols in
  Table.iter
    (fun rid row ->
      if rid mod stride = 0 then begin
        incr sampled;
        List.iter (fun (_, pos, values) -> values := row.(pos) :: !values) acc
      end)
    tbl;
  let columns = List.map (fun (cname, _, values) -> (cname, Colstats.compute !values)) acc in
  Database.set_table_stats db name { Colstats.row_count = n; version = 0; columns };
  !sampled

(** Analyze every table in the catalog; returns [(table, rows_sampled)]
    in table-name order. *)
let all ?sample db =
  List.map (fun name -> (name, table ?sample db name)) (Database.table_names db)
