(** Per-column statistics: null fraction, NDV, min/max, most-common values
    and an equi-depth histogram over the remaining values.  Computed by
    {!Analyze}, consumed by the {!Cost} model for selectivity estimation
    (paper §2.1: the optimizer must judge how selective [sal > 2000] is
    before it can prefer the index on [sal]). *)

type t = {
  n_sampled : int;  (** values examined, including NULLs *)
  null_frac : float;
  ndv : int;  (** distinct non-null values in the sample *)
  min_v : Value.t option;
  max_v : Value.t option;
  mcvs : (Value.t * float) list;
      (** most-common values with their frequency as a fraction of all
          sampled rows, most frequent first *)
  bounds : Value.t array;
      (** equi-depth histogram boundaries over the non-MCV values,
          ascending in {!Value.compare_key} order; [[||]] when the sample
          is too small to build one *)
}

type table_stats = {
  row_count : int;  (** exact table cardinality at ANALYZE time *)
  version : int;  (** catalog stats version stamped at ANALYZE time *)
  columns : (string * t) list;
}

let empty =
  {
    n_sampled = 0;
    null_frac = 0.0;
    ndv = 0;
    min_v = None;
    max_v = None;
    mcvs = [];
    bounds = [||];
  }

(* treat XMLType like NULL: it has no key order and never appears in a
   sargable predicate *)
let is_statable = function
  | Value.Null | Value.Xml _ | Value.Xml_stream _ -> false
  | _ -> true

let numeric = function
  | Value.Int i -> Some (float_of_int i)
  | Value.Float f -> Some f
  | Value.Str s -> float_of_string_opt (String.trim s)
  | _ -> None

let compute ?(n_buckets = 32) ?(n_mcvs = 8) (values : Value.t list) : t =
  let total = List.length values in
  if total = 0 then empty
  else
    let nonnull = List.filter is_statable values in
    let n_nonnull = List.length nonnull in
    let null_frac = float_of_int (total - n_nonnull) /. float_of_int total in
    if n_nonnull = 0 then { empty with n_sampled = total; null_frac }
    else
      let sorted = List.sort Value.compare_key nonnull in
      (* runs of equal values, in key order *)
      let runs =
        List.fold_left
          (fun acc v ->
            match acc with
            | (v0, c0) :: rest when Value.compare_key v0 v = 0 -> (v0, c0 + 1) :: rest
            | _ -> (v, 1) :: acc)
          [] sorted
        |> List.rev
      in
      let ndv = List.length runs in
      let freq c = float_of_int c /. float_of_int total in
      (* MCVs: repeated values strictly more frequent than the average
         non-null value; keeps unique columns MCV-free *)
      let avg_freq = (1.0 -. null_frac) /. float_of_int ndv in
      let mcvs =
        runs
        |> List.filter (fun (_, c) -> c >= 2 && freq c > avg_freq)
        |> List.sort (fun (_, a) (_, b) -> compare b a)
        |> (fun l -> List.filteri (fun i _ -> i < n_mcvs) l)
        |> List.map (fun (v, c) -> (v, freq c))
      in
      let is_mcv v = List.exists (fun (m, _) -> Value.compare_key m v = 0) mcvs in
      let rest = List.filter (fun v -> not (is_mcv v)) sorted in
      let rest_arr = Array.of_list rest in
      let len = Array.length rest_arr in
      let bounds =
        if len < 2 then [||]
        else
          let b = min n_buckets (len - 1) in
          Array.init (b + 1) (fun i -> rest_arr.(i * (len - 1) / b))
      in
      {
        n_sampled = total;
        null_frac;
        ndv;
        min_v = Some (List.hd sorted);
        max_v = Some (List.nth sorted (n_nonnull - 1));
        mcvs;
        bounds;
      }

let clamp_sel s = Float.min 1.0 (Float.max 1e-9 s)

let mcv_total t = List.fold_left (fun acc (_, f) -> acc +. f) 0.0 t.mcvs

(* fraction of all rows that are non-null and not covered by an MCV *)
let rest_frac t = Float.max 0.0 (1.0 -. t.null_frac -. mcv_total t)

let selectivity_eq t v =
  if t.n_sampled = 0 then clamp_sel 0.0
  else
    match List.find_opt (fun (m, _) -> Value.compare_key m v = 0) t.mcvs with
    | Some (_, f) -> clamp_sel f
    | None ->
        let out_of_range =
          match (t.min_v, t.max_v) with
          | Some lo, Some hi -> Value.compare_key v lo < 0 || Value.compare_key v hi > 0
          | _ -> true
        in
        let ndv_rest = t.ndv - List.length t.mcvs in
        if out_of_range || ndv_rest <= 0 then
          clamp_sel (0.5 /. float_of_int (max 1 t.n_sampled))
        else clamp_sel (rest_frac t /. float_of_int ndv_rest)

(** Average equality selectivity when the probe value is unknown at plan
    time (correlated index probes): (1 - null_frac) / ndv. *)
let selectivity_eq_unknown t =
  if t.ndv <= 0 then clamp_sel 0.0
  else clamp_sel ((1.0 -. t.null_frac) /. float_of_int t.ndv)

(* position of [v] within a bucket [b_lo, b_hi], by linear interpolation
   for numeric values, 0.5 otherwise *)
let within_bucket b_lo b_hi v =
  match (numeric b_lo, numeric b_hi, numeric v) with
  | Some lo, Some hi, Some x when hi > lo ->
      Float.min 1.0 (Float.max 0.0 ((x -. lo) /. (hi -. lo)))
  | _ -> 0.5

(** Fraction of all rows strictly below [v]. *)
let selectivity_lt t v =
  if t.n_sampled = 0 then 0.0
  else
    let mcv_part =
      List.fold_left
        (fun acc (m, f) -> if Value.compare_key m v < 0 then acc +. f else acc)
        0.0 t.mcvs
    in
    let hist_part =
      let rf = rest_frac t in
      let m = Array.length t.bounds in
      if m >= 2 then begin
        let nb = m - 1 in
        if Value.compare_key v t.bounds.(0) <= 0 then 0.0
        else if Value.compare_key v t.bounds.(nb) > 0 then rf
        else begin
          (* find the bucket holding v *)
          let i = ref 0 in
          while !i < nb - 1 && Value.compare_key t.bounds.(!i + 1) v < 0 do
            incr i
          done;
          let frac =
            (float_of_int !i +. within_bucket t.bounds.(!i) t.bounds.(!i + 1) v)
            /. float_of_int nb
          in
          rf *. frac
        end
      end
      else
        (* no histogram: interpolate over [min, max] when numeric *)
        match (t.min_v, t.max_v) with
        | Some lo, Some hi ->
            if Value.compare_key v lo <= 0 then 0.0
            else if Value.compare_key v hi > 0 then rf
            else rf *. within_bucket lo hi v
        | _ -> rf *. 0.5
    in
    Float.min 1.0 (mcv_part +. hist_part)

let selectivity_le t v = Float.min 1.0 (selectivity_lt t v +. selectivity_eq t v)

let describe t =
  let vs = function Some v -> Value.show v | None -> "-" in
  Printf.sprintf "n=%d nulls=%.2f ndv=%d min=%s max=%s mcvs=%d buckets=%d" t.n_sampled
    t.null_frac t.ndv (vs t.min_v) (vs t.max_v) (List.length t.mcvs)
    (max 0 (Array.length t.bounds - 1))
