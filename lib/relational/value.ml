(** SQL values, including the XMLType of SQL/XML.

    [Xml] carries a node *forest* so that [XMLConcat]/[XMLAgg] results (a
    sequence of top-level nodes) are first-class, as in SQL/XML. *)

module X = Xdb_xml.Types
module E = Xdb_xml.Events

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Xml of X.node list
  | Xml_stream of (E.sink -> unit)

type column_type = Tint | Tfloat | Tstr | Txml

let type_name = function Tint -> "INT" | Tfloat -> "FLOAT" | Tstr -> "VARCHAR" | Txml -> "XMLTYPE"

let value_type_name = function
  | Null -> "NULL"
  | Int _ -> "INT"
  | Float _ -> "FLOAT"
  | Str _ -> "VARCHAR"
  | Xml _ | Xml_stream _ -> "XMLTYPE"

exception Type_error of string

let terr fmt = Printf.ksprintf (fun m -> raise (Type_error m)) fmt

let to_int = function
  | Int i -> i
  | Float f -> int_of_float f
  | Str s -> ( match int_of_string_opt (String.trim s) with Some i -> i | None -> terr "cannot cast %S to INT" s)
  | v -> terr "cannot cast %s to INT" (value_type_name v)

let to_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | Str s -> (
      match float_of_string_opt (String.trim s) with
      | Some f -> f
      | None -> terr "cannot cast %S to FLOAT" s)
  | v -> terr "cannot cast %s to FLOAT" (value_type_name v)

(* float → string matching XPath 1.0 string(number) so that SQL results
   compare equal with XQuery-evaluated results *)
let float_to_string f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "Infinity"
  else if f = Float.neg_infinity then "-Infinity"
  else if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

(** Materialize a streamed XMLType into nodes (for paths that need a DOM,
    e.g. casting back into XPath context). *)
let stream_to_nodes produce =
  let b = E.tree_builder () in
  produce (E.builder_sink b);
  E.builder_result b

let to_string = function
  | Null -> ""
  | Int i -> string_of_int i
  | Float f -> float_to_string f
  | Str s -> s
  | Xml nodes -> Xdb_xml.Serializer.node_list_to_string nodes
  | Xml_stream produce -> E.to_string produce

let is_null = function Null -> true | _ -> false

(** SQL three-valued comparison collapses here to an option: [None] when
    either side is NULL. *)
let compare_sql a b : int option =
  match (a, b) with
  | Null, _ | _, Null -> None
  | Int x, Int y -> Some (compare x y)
  | (Int _ | Float _), (Int _ | Float _) -> Some (compare (to_float a) (to_float b))
  | Str x, Str y -> Some (compare x y)
  | Str _, (Int _ | Float _) | (Int _ | Float _), Str _ ->
      Some (compare (to_float a) (to_float b))
  | (Xml _ | Xml_stream _), _ | _, (Xml _ | Xml_stream _) ->
      terr "XMLTYPE values are not comparable"

(** Total order for B-tree keys: NULLs sort first, numerics before strings. *)
let compare_key a b =
  let rank = function
    | Null -> 0
    | Int _ | Float _ -> 1
    | Str _ -> 2
    | Xml _ | Xml_stream _ -> 3
  in
  match (a, b) with
  | Null, Null -> 0
  | Int x, Int y -> compare x y
  | (Int _ | Float _), (Int _ | Float _) -> compare (to_float a) (to_float b)
  | Str x, Str y -> compare x y
  | _ -> compare (rank a) (rank b)

let equal_sql a b = match compare_sql a b with Some 0 -> true | _ -> false

(** Render for result display / tests. *)
let show = function
  | Null -> "NULL"
  | Int i -> string_of_int i
  | Float f -> string_of_float f
  | Str s -> "'" ^ s ^ "'"
  | Xml nodes -> Xdb_xml.Serializer.node_list_to_string nodes
  | Xml_stream produce -> E.to_string produce
