(** Source-tree whitespace stripping ([xsl:strip-space] /
    [xsl:preserve-space], XSLT 1.0 §3.4).

    Whitespace-only text nodes whose parent element matches the stylesheet's
    strip list (and is not on the preserve list) are removed before the
    transformation runs — both evaluation strategies consume the same
    stripped tree, so differential equivalence is preserved. *)

module X = Xdb_xml.Types
open Ast

let is_ws_only s = String.for_all (fun c -> c = ' ' || c = '\t' || c = '\n' || c = '\r') s

let strips (spec : space_spec) (q : X.qname) =
  (not (List.mem q.X.local spec.preserve))
  && (spec.strip_all || List.mem q.X.local spec.strip)

(** [apply spec doc] — a fresh tree with the declared whitespace removed.
    Returns [doc] itself when the spec strips nothing. *)
let apply (spec : space_spec) (doc : X.node) : X.node =
  if (not spec.strip_all) && spec.strip = [] then doc
  else
    let rec copy n =
      let fresh = X.make n.X.kind in
      fresh.X.attributes <-
        List.map
          (fun a ->
            let a' = X.make a.X.kind in
            a'.X.parent <- Some fresh;
            a')
          n.X.attributes;
      let keep_child c =
        match (c.X.kind, n.X.kind) with
        | X.Text s, X.Element q -> not (is_ws_only s && strips spec q)
        | _ -> true
      in
      X.set_children fresh (List.map copy (List.filter keep_child n.X.children));
      fresh
    in
    let stripped = copy doc in
    X.reindex stripped;
    stripped
