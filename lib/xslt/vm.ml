(** The XSLTVM: bytecode interpreter with hash-table template dispatch and
    optional trace instrumentation (paper §4.3 and [13]).

    This is the paper's {e functional evaluation} baseline: it walks a DOM
    tree, dispatches templates through per-mode hash buckets, and builds the
    result tree imperatively.  With a {!trace_sink} attached it reports
    template instantiation events — the input of the partial evaluator. *)

module X = Xdb_xml.Types
module E = Xdb_xml.Events
module XP = Xdb_xpath.Ast
module XV = Xdb_xpath.Value
module XE = Xdb_xpath.Eval
module Pat = Xdb_xpath.Pattern
open Compile

exception Runtime_error of string

let err fmt = Printf.ksprintf (fun m -> raise (Runtime_error m)) fmt

module Smap = XE.Smap

type trace_event =
  | Ev_enter of { template : int option; node : X.node; site : int option }
      (** template instantiation ([None] = built-in rule) caused by the
          apply/call site [site] ([None] = initial application) *)
  | Ev_exit

type trace_sink = trace_event -> unit

type state = {
  prog : program;
  mutable builders : E.builder list;
      (** result-construction stack, innermost fragment first; every op
          emits output events into the head builder *)
  trace : trace_sink option;
  mutable messages : string list;
  mutable recursion : int;
}

let max_recursion = 2000

(* ------------------------------------------------------------------ *)
(* Output construction                                                 *)
(* ------------------------------------------------------------------ *)

(* XSLT result-tree semantics as builder options: adjacent text merges
   (empty text vanishes) and attributes at fragment top level are dropped
   per the XSLT error-recovery rule *)
let result_builder () = E.tree_builder ~merge_text:true ~drop_top_attrs:true ()

let cur_builder st = match st.builders with b :: _ -> b | [] -> err "no output context"

let b_emit st ev =
  try E.builder_emit (cur_builder st) ev with E.Serialize_error m -> err "%s" m

(* existing (copied) nodes are adopted, not replayed: text copied as a node
   stays a separate node, only text *events* merge — the out_frame rules *)
let b_add st n = try E.builder_add_node (cur_builder st) n with E.Serialize_error m -> err "%s" m

let emit_text st s = b_emit st (E.Text s)

let with_fragment st f =
  let b = result_builder () in
  st.builders <- b :: st.builders;
  f ();
  st.builders <- List.tl st.builders;
  let frag = X.make X.Document in
  X.set_children frag (E.builder_result b);
  frag

(* ------------------------------------------------------------------ *)
(* Contexts and values                                                 *)
(* ------------------------------------------------------------------ *)

type ctx = {
  node : X.node;
  position : int;
  size : int;
  vars : XV.t Smap.t;
  mode : string option;
  current_root : X.node;  (** document root for absolute paths *)
  assume_predicates : bool;  (** partial-evaluation mode (paper §4.1) *)
  extensions : (string * XE.extension) list;  (** key(), document(), … *)
}

let xpath_ctx ctx =
  { (XE.make_context ~vars:ctx.vars ~current:ctx.node ~extensions:ctx.extensions
       ~assume_predicates:ctx.assume_predicates ctx.node)
    with
    XE.position = ctx.position;
    size = ctx.size }

let eval_xpath ctx e = XE.eval (xpath_ctx ctx) e

let eval_avt ctx (a : Ast.avt) =
  String.concat ""
    (List.map
       (function
         | Ast.Avt_str s -> s
         | Ast.Avt_expr e -> XV.string_value (eval_xpath ctx e))
       a)

(* ------------------------------------------------------------------ *)
(* Template matching                                                   *)
(* ------------------------------------------------------------------ *)

let candidate_ids st mode (node : X.node) =
  match List.assoc_opt mode !(st.prog.dispatch) with
  | None -> []
  | Some table ->
      let name_hits =
        match node.X.kind with
        | X.Element q -> (
            match Hashtbl.find_opt table.by_elem_name q.local with
            | Some b -> !b
            | None -> [])
        | X.Attribute (q, _) -> (
            match Hashtbl.find_opt table.by_elem_name q.local with
            | Some b -> !b
            | None -> [])
        | _ -> []
      in
      let kind_hits =
        match node.X.kind with
        | X.Element _ | X.Attribute _ -> !(table.any_element)
        | X.Text _ -> !(table.text_bucket)
        | X.Comment _ -> !(table.comment_bucket)
        | X.Pi _ -> !(table.pi_bucket)
        | X.Document -> !(table.root_bucket)
      in
      name_hits @ kind_hits @ !(table.untyped)

(** [find_template st ctx node mode] — best matching template id, if any.
    Ties break by priority, then by document order (later wins). *)
let find_template st ctx node mode =
  let candidates = candidate_ids st mode node in
  let pctx = xpath_ctx { ctx with node } in
  let best =
    List.fold_left
      (fun best id ->
        let ct = st.prog.templates.(id) in
        match ct.pattern with
        | None -> best
        | Some (pat, prio) ->
            if Pat.matches pctx pat node then
              match best with
              | Some (_, bprio, bsrc) when bprio > prio || (bprio = prio && bsrc > ct.source_index)
                ->
                  best
              | _ -> Some (id, prio, ct.source_index)
            else best)
      None candidates
  in
  Option.map (fun (id, _, _) -> id) best

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let sort_nodes ctx (sorts : Ast.sort_spec list) nodes =
  if sorts = [] then nodes
  else
    let size = List.length nodes in
    let keyed =
      List.mapi
        (fun i n ->
          let c = { ctx with node = n; position = i + 1; size } in
          let keys =
            List.map
              (fun (s : Ast.sort_spec) ->
                let v = eval_xpath c s.sort_key in
                if s.numeric then `Num (XV.number_value v) else `Str (XV.string_value v))
              sorts
          in
          (keys, n))
        nodes
    in
    let cmp (ka, _) (kb, _) =
      let rec go ks (ss : Ast.sort_spec list) =
        match (ks, ss) with
        | [], _ | _, [] -> 0
        | (a, b) :: krest, s :: srest -> (
            let c =
              match (a, b) with
              | `Num x, `Num y -> compare x y
              | `Str x, `Str y -> compare x y
              | `Num _, `Str _ -> -1
              | `Str _, `Num _ -> 1
            in
            let c = if s.descending then -c else c in
            match c with 0 -> go krest srest | c -> c)
      in
      go (List.combine ka kb) sorts
    in
    List.map snd (List.stable_sort cmp keyed)

(* sequential execution with in-scope variable accumulation *)
let rec exec_ops_with_vars st ctx code =
  (* O_var extends the environment for subsequent siblings *)
  let _ =
    Array.fold_left
      (fun ctx op -> match exec_op_binding st ctx op with Some ctx' -> ctx' | None -> ctx)
      ctx code
  in
  ()

and exec_op_binding st ctx op : ctx option =
  match op with
  | O_text s ->
      emit_text st s;
      None
  | O_value_of e ->
      emit_text st (XV.string_value (eval_xpath ctx e));
      None
  | O_copy_of e ->
      (match eval_xpath ctx e with
      | XV.Nodes ns ->
          List.iter
            (fun n ->
              match n.X.kind with
              | X.Document -> List.iter (fun c -> b_add st (X.deep_copy c)) n.X.children
              | _ -> b_add st (X.deep_copy n))
            ns
      | v -> emit_text st (XV.string_value v));
      None
  | O_copy body ->
      (match ctx.node.X.kind with
      | X.Element q ->
          b_emit st (E.Start_element q);
          exec_ops_with_vars st ctx body;
          b_emit st E.End_element
      | X.Document -> exec_ops_with_vars st ctx body
      | X.Text s -> emit_text st s
      | X.Comment c -> b_emit st (E.Comment c)
      | X.Pi (t, d) -> b_emit st (E.Pi (t, d))
      | X.Attribute (q, v) -> b_emit st (E.Attr (q, v)));
      None
  | O_literal_elem (name, attrs, body) ->
      b_emit st (E.Start_element (X.qname name));
      List.iter (fun (an, avt) -> b_emit st (E.Attr (X.qname an, eval_avt ctx avt))) attrs;
      exec_ops_with_vars st ctx body;
      b_emit st E.End_element;
      None
  | O_elem (name_avt, body) ->
      b_emit st (E.Start_element (X.qname (eval_avt ctx name_avt)));
      exec_ops_with_vars st ctx body;
      b_emit st E.End_element;
      None
  | O_attr (name_avt, body) ->
      let frag = with_fragment st (fun () -> exec_ops_with_vars st ctx body) in
      b_emit st (E.Attr (X.qname (eval_avt ctx name_avt), X.string_value frag));
      None
  | O_comment body ->
      let frag = with_fragment st (fun () -> exec_ops_with_vars st ctx body) in
      b_emit st (E.Comment (X.string_value frag));
      None
  | O_pi (target_avt, body) ->
      let frag = with_fragment st (fun () -> exec_ops_with_vars st ctx body) in
      b_emit st (E.Pi (eval_avt ctx target_avt, X.string_value frag));
      None
  | O_if (test, body) ->
      if XV.boolean_value (eval_xpath ctx test) then exec_ops_with_vars st ctx body;
      None
  | O_choose branches ->
      let rec go = function
        | [] -> ()
        | (None, body) :: _ -> exec_ops_with_vars st ctx body
        | (Some t, body) :: rest ->
            if XV.boolean_value (eval_xpath ctx t) then exec_ops_with_vars st ctx body
            else go rest
      in
      go branches;
      None
  | O_for_each (select, sorts, body) ->
      let nodes =
        match eval_xpath ctx select with
        | XV.Nodes ns -> ns
        | v -> err "for-each select must be a node-set, got %s" (XV.type_name v)
      in
      let nodes = sort_nodes ctx sorts nodes in
      let size = List.length nodes in
      List.iteri
        (fun i n -> exec_ops_with_vars st { ctx with node = n; position = i + 1; size } body)
        nodes;
      None
  | O_var (name, v) ->
      let value = eval_cvalue st ctx v in
      Some { ctx with vars = Smap.add name value ctx.vars }
  | O_number format ->
      (* level="single": 1 + preceding siblings with the same expanded name *)
      let n = ctx.node in
      let count =
        match n.X.parent with
        | None -> 1
        | Some p ->
            let rec upto acc = function
              | [] -> acc
              | x :: _ when x == n -> acc
              | x :: rest ->
                  let same =
                    match (x.X.kind, n.X.kind) with
                    | X.Element a, X.Element b -> X.qname_equal a b
                    | _ -> false
                  in
                  upto (if same then acc + 1 else acc) rest
            in
            1 + upto 0 p.X.children
      in
      ignore format;
      emit_text st (string_of_int count);
      None
  | O_message body ->
      let frag = with_fragment st (fun () -> exec_ops_with_vars st ctx body) in
      st.messages <- X.string_value frag :: st.messages;
      None
  | O_call { site; target; params } ->
      let ct = st.prog.templates.(target) in
      let args = List.map (fun (n, v) -> (n, eval_cvalue st ctx v)) params in
      instantiate st ctx ~site:(Some site) ct ctx.node args;
      None
  | O_apply { site; select; mode; sort; params } ->
      let nodes =
        match select with
        | None -> ctx.node.X.children
        | Some e -> (
            match eval_xpath ctx e with
            | XV.Nodes ns -> ns
            | v -> err "apply-templates select must be a node-set, got %s" (XV.type_name v))
      in
      let nodes = sort_nodes ctx sort nodes in
      let args = List.map (fun (n, v) -> (n, eval_cvalue st ctx v)) params in
      let size = List.length nodes in
      List.iteri
        (fun i n ->
          apply_one st { ctx with position = i + 1; size; mode } ~site:(Some site) n args)
        nodes;
      None

and eval_cvalue st ctx = function
  | C_select e -> eval_xpath ctx e
  | C_tree code ->
      let frag = with_fragment st (fun () -> exec_ops_with_vars st ctx code) in
      XV.Nodes [ frag ]

(* dispatch one node: matching template or built-in rule *)
and apply_one st ctx ~site node args =
  match find_template st ctx node ctx.mode with
  | Some id -> instantiate st ctx ~site st.prog.templates.(id) node args
  | None -> builtin_rule st ctx ~site node

and builtin_rule st ctx ~site node =
  (match st.trace with Some sink -> sink (Ev_enter { template = None; node; site }) | None -> ());
  (match node.X.kind with
  | X.Document | X.Element _ ->
      (* built-in rule: apply templates to children *)
      let kids = node.X.children in
      let size = List.length kids in
      List.iteri
        (fun i k -> apply_one st { ctx with node; position = i + 1; size } ~site:None k [])
        kids
  | X.Text _ | X.Attribute _ -> emit_text st (X.string_value node)
  | X.Comment _ | X.Pi _ -> ());
  match st.trace with Some sink -> sink Ev_exit | None -> ()

and instantiate st ctx ~site (ct : ctemplate) node args =
  st.recursion <- st.recursion + 1;
  if st.recursion > max_recursion then err "template recursion limit exceeded";
  (match st.trace with
  | Some sink -> sink (Ev_enter { template = Some ct.t_id; node; site })
  | None -> ());
  (* bind parameters: passed value, else default, else empty string *)
  let vars =
    List.fold_left
      (fun vars (pname, default) ->
        let value =
          match List.assoc_opt pname args with
          | Some v -> v
          | None -> (
              match default with
              | Some dv ->
                  eval_cvalue st { ctx with node; vars } dv
              | None -> XV.Str "")
        in
        Smap.add pname value vars)
      ctx.vars ct.tparams
  in
  exec_ops_with_vars st { ctx with node; vars } ct.tcode;
  (match st.trace with Some sink -> sink Ev_exit | None -> ());
  st.recursion <- st.recursion - 1

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(* lazily-built key tables (xsl:key): key name → use-value → nodes.
   [conservative] is the partial-evaluation mode (paper §4.1): the lookup
   value is unknown on the sample document, so key() returns every node
   matching the key's pattern. *)
let key_extension ?(conservative = false) (prog : program) (root : X.node) : XE.extension =
  let tables : (string, (string, X.node list) Hashtbl.t) Hashtbl.t = Hashtbl.create 4 in
  let build (decl : Ast.key_decl) =
    let table = Hashtbl.create 64 in
    let pctx = XE.make_context root in
    List.iter
      (fun n ->
        if Pat.matches pctx decl.Ast.key_match n then
          let use_ctx = XE.make_context ~current:n n in
          let values =
            match XE.eval use_ctx decl.Ast.key_use with
            | XV.Nodes ns -> List.map X.string_value ns
            | v -> [ XV.string_value v ]
          in
          List.iter
            (fun v ->
              let prev = Option.value ~default:[] (Hashtbl.find_opt table v) in
              Hashtbl.replace table v (prev @ [ n ]))
            values)
      (root :: X.descendants root);
    table
  in
  fun _ctx args ->
    match args with
    | [ name_v; value_v ] -> (
        let name = XV.string_value name_v in
        match List.find_opt (fun (d : Ast.key_decl) -> d.Ast.key_name = name) prog.keys with
        | None -> err "key(): no xsl:key named %S" name
        | Some decl when conservative ->
            ignore value_v;
            let pctx = XE.make_context root in
            XV.nodes
              (List.filter
                 (fun n -> Pat.matches pctx decl.Ast.key_match n)
                 (root :: X.descendants root))
        | Some decl ->
            let table =
              match Hashtbl.find_opt tables name with
              | Some t -> t
              | None ->
                  let t = build decl in
                  Hashtbl.add tables name t;
                  t
            in
            let lookups =
              match value_v with
              | XV.Nodes ns -> List.map X.string_value ns
              | v -> [ XV.string_value v ]
            in
            XV.nodes
              (List.concat_map
                 (fun v -> Option.value ~default:[] (Hashtbl.find_opt table v))
                 lookups))
    | _ -> err "key() expects 2 arguments"

(** [transform ?trace prog doc] — result fragment (a document node). *)
let transform ?trace (prog : program) (doc : X.node) : X.node =
  let st = { prog; builders = []; trace; messages = []; recursion = 0 } in
  let doc = Strip.apply prog.space doc in
  let root = X.root_of doc in
  let base_ctx =
    {
      node = root;
      position = 1;
      size = 1;
      vars = Smap.empty;
      mode = None;
      current_root = root;
      assume_predicates = trace <> None;
      extensions =
        (if prog.keys = [] then []
         else [ ("key", key_extension ~conservative:(trace <> None) prog root) ]);
    }
  in
  (* global variables *)
  let st0 = { st with builders = [ result_builder () ] } in
  let vars =
    List.fold_left
      (fun vars (n, v) -> Smap.add n (eval_cvalue st0 { base_ctx with vars } v) vars)
      Smap.empty prog.globals
  in
  let ctx = { base_ctx with vars } in
  let b = result_builder () in
  st.builders <- [ b ];
  apply_one st ctx ~site:None root [];
  st.builders <- [];
  let frag = X.make X.Document in
  X.set_children frag (E.builder_result b);
  X.reindex frag;
  frag

(** [transform_to_string prog doc] — serialized with the stylesheet's
    output method. *)
let transform_to_string ?trace prog doc =
  let frag = transform ?trace prog doc in
  let meth =
    match prog.out_method with
    | Ast.Out_xml -> Xdb_xml.Serializer.Xml
    | Ast.Out_html -> Xdb_xml.Serializer.Html
    | Ast.Out_text -> Xdb_xml.Serializer.Text_output
  in
  Xdb_xml.Serializer.node_list_to_string ~meth ~indent:prog.out_indent frag.X.children

(** Convenience: parse, compile and run a stylesheet. *)
let run_stylesheet ?trace stylesheet_text doc =
  let ss = Parser.parse stylesheet_text in
  let prog = compile ss in
  ignore trace;
  transform ?trace prog doc
