(** Compilation of a stylesheet into XSLTVM bytecode (paper §4.3).

    Union match patterns split into one compiled template per alternative
    (each with its own default priority); every [apply-templates] /
    [call-template] occurrence receives a unique trace {e site id}. *)

module XP = Xdb_xpath.Ast
module Pat = Xdb_xpath.Pattern

type cvalue = C_select of XP.expr | C_tree of code

and op =
  | O_text of string
  | O_literal_elem of string * (string * Ast.avt) list * code
  | O_elem of Ast.avt * code
  | O_attr of Ast.avt * code
  | O_comment of code
  | O_pi of Ast.avt * code
  | O_value_of of XP.expr
  | O_copy_of of XP.expr
  | O_copy of code
  | O_apply of {
      site : int;
      select : XP.expr option;
      mode : string option;
      sort : Ast.sort_spec list;
      params : (string * cvalue) list;
    }
  | O_call of { site : int; target : int; params : (string * cvalue) list }
  | O_if of XP.expr * code
  | O_choose of (XP.expr option * code) list
  | O_for_each of XP.expr * Ast.sort_spec list * code
  | O_var of string * cvalue
  | O_number of string
  | O_message of code

and code = op array

type ctemplate = {
  t_id : int;  (** index into {!program.templates} *)
  pattern : (Pat.t * float) option;  (** single-alternative pattern + priority *)
  tname : string option;
  tmode : string option;
  tparams : (string * cvalue option) list;
  tcode : code;
  source_index : int;  (** document order of the source template *)
}

(** Per-mode dispatch buckets (hash-table template lookup, §3.1). *)
type mode_dispatch = {
  by_elem_name : (string, int list ref) Hashtbl.t;
  any_element : int list ref;
  text_bucket : int list ref;
  comment_bucket : int list ref;
  pi_bucket : int list ref;
  root_bucket : int list ref;
  untyped : int list ref;
}

type program = {
  templates : ctemplate array;
  by_name : (string, int) Hashtbl.t;
  dispatch : (string option * mode_dispatch) list ref;
  globals : (string * cvalue) list;
  keys : Ast.key_decl list;
  space : Ast.space_spec;
  out_method : Ast.output_method;
  out_indent : bool;
  n_apply_sites : int;
  apply_site_info : (int * string option) array;
      (** per site: owning template id, mode *)
}

exception Compile_error of string

val compile : Ast.stylesheet -> program
(** @raise Compile_error e.g. for calls to undeclared templates. *)

val program_size : program -> int
(** Instruction count — rough bytecode size metric. *)
