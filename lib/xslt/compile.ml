(** Compilation of a stylesheet into XSLTVM bytecode (paper §4.3: "we
    compile the stylesheet into XSLTVM byte-code along with the special
    'trace-instructions'").

    Union match patterns are split so each alternative carries its own
    default priority (XSLT 1.0 §5.5).  Every [apply-templates] and
    [call-template] occurrence receives a unique {e site id}; when the VM
    runs with a trace sink attached these sites report which templates fire
    for which nodes — the trace-table architecture of §4.3. *)

module XP = Xdb_xpath.Ast
module Pat = Xdb_xpath.Pattern
open Ast

type cvalue = C_select of XP.expr | C_tree of code

and op =
  | O_text of string
  | O_literal_elem of string * (string * avt) list * code
  | O_elem of avt * code
  | O_attr of avt * code
  | O_comment of code
  | O_pi of avt * code
  | O_value_of of XP.expr
  | O_copy_of of XP.expr
  | O_copy of code
  | O_apply of {
      site : int;
      select : XP.expr option;
      mode : string option;
      sort : sort_spec list;
      params : (string * cvalue) list;
    }
  | O_call of { site : int; target : int; params : (string * cvalue) list }
  | O_if of XP.expr * code
  | O_choose of (XP.expr option * code) list
  | O_for_each of XP.expr * sort_spec list * code
  | O_var of string * cvalue
  | O_number of string
  | O_message of code

and code = op array

type ctemplate = {
  t_id : int;  (** index into {!program.templates} *)
  pattern : (Pat.t * float) option;  (** single-alternative pattern + priority *)
  tname : string option;
  tmode : string option;
  tparams : (string * cvalue option) list;
  tcode : code;
  source_index : int;  (** document order of the source template *)
}

(** Dispatch buckets for one mode (hash-table template lookup — the
    "aggressive optimisations of locating the right template" §3.1). *)
type mode_dispatch = {
  by_elem_name : (string, int list ref) Hashtbl.t;
  any_element : int list ref;
  text_bucket : int list ref;
  comment_bucket : int list ref;
  pi_bucket : int list ref;
  root_bucket : int list ref;
  untyped : int list ref;  (** patterns whose last step could match anything *)
}

type program = {
  templates : ctemplate array;
  by_name : (string, int) Hashtbl.t;
  dispatch : (string option * mode_dispatch) list ref;
  globals : (string * cvalue) list;
  keys : key_decl list;
  space : space_spec;
  out_method : output_method;
  out_indent : bool;
  n_apply_sites : int;
  apply_site_info : (int * string option) array;
      (** per apply site: owning template id, mode *)
}

exception Compile_error of string

type state = {
  mutable next_site : int;
  mutable sites : (int * string option) list;  (** apply site → (template, mode), reversed *)
  mutable current_template : int;
  name_ids : (string, int) Hashtbl.t;
}

let rec compile_value st = function
  | Select_expr e -> C_select e
  | Content is -> C_tree (compile_body st is)

and compile_body st (is : instruction list) : code =
  Array.of_list (List.map (compile_ins st) is)

and compile_ins st = function
  | Text_cons s -> O_text s
  | Literal_element { name; attrs; content } ->
      O_literal_elem (name, attrs, compile_body st content)
  | Element_cons { name; content } -> O_elem (name, compile_body st content)
  | Attribute_cons { name; content } -> O_attr (name, compile_body st content)
  | Comment_cons is -> O_comment (compile_body st is)
  | Pi_cons { target; content } -> O_pi (target, compile_body st content)
  | Value_of { select } -> O_value_of select
  | Copy_of e -> O_copy_of e
  | Copy is -> O_copy (compile_body st is)
  | If_cond (test, is) -> O_if (test, compile_body st is)
  | Choose branches ->
      O_choose (List.map (fun (t, is) -> (t, compile_body st is)) branches)
  | For_each { select; sort; body } -> O_for_each (select, sort, compile_body st body)
  | Variable_def (name, v) -> O_var (name, compile_value st v)
  | Number_ins { format } -> O_number format
  | Message is -> O_message (compile_body st is)
  | Apply_templates { select; mode; sort; with_params } ->
      let site = st.next_site in
      st.next_site <- site + 1;
      st.sites <- (st.current_template, mode) :: st.sites;
      O_apply
        {
          site;
          select;
          mode;
          sort;
          params = List.map (fun (n, v) -> (n, compile_value st v)) with_params;
        }
  | Call_template { name; with_params } ->
      let target =
        match Hashtbl.find_opt st.name_ids name with
        | Some id -> id
        | None -> raise (Compile_error (Printf.sprintf "call-template: no template named %S" name))
      in
      let site = st.next_site in
      st.next_site <- site + 1;
      st.sites <- (st.current_template, None) :: st.sites;
      O_call
        { site; target; params = List.map (fun (n, v) -> (n, compile_value st v)) with_params }

(** [compile stylesheet] — bytecode program with dispatch tables. *)
let compile (ss : stylesheet) : program =
  (* split union patterns into one compiled template per alternative *)
  let split =
    List.concat
      (List.mapi
         (fun src_idx (t : template) ->
           match t.match_pattern with
           | None -> [ (src_idx, t, None) ]
           | Some pat ->
               List.map
                 (fun (alt, default_prio) ->
                   let prio = Option.value ~default:default_prio t.priority in
                   (src_idx, t, Some (alt, prio)))
                 (Pat.split pat))
         ss.templates)
  in
  let name_ids = Hashtbl.create 8 in
  List.iteri
    (fun i (_, (t : template), _) ->
      match t.template_name with
      | Some n -> if not (Hashtbl.mem name_ids n) then Hashtbl.add name_ids n i
      | None -> ())
    split;
  let st = { next_site = 0; sites = []; current_template = 0; name_ids } in
  let templates =
    Array.of_list
      (List.mapi
         (fun i (src_idx, (t : template), pat) ->
           st.current_template <- i;
           {
             t_id = i;
             pattern = pat;
             tname = t.template_name;
             tmode = t.mode;
             tparams = List.map (fun (n, d) -> (n, Option.map (compile_value st) d)) t.params;
             tcode = compile_body st t.body;
             source_index = src_idx;
           })
         split)
  in
  let fresh_mode_dispatch () =
    {
      by_elem_name = Hashtbl.create 16;
      any_element = ref [];
      text_bucket = ref [];
      comment_bucket = ref [];
      pi_bucket = ref [];
      root_bucket = ref [];
      untyped = ref [];
    }
  in
  let dispatch = ref [] in
  let mode_table mode =
    match List.assoc_opt mode !dispatch with
    | Some t -> t
    | None ->
        let t = fresh_mode_dispatch () in
        dispatch := (mode, t) :: !dispatch;
        t
  in
  Array.iter
    (fun ct ->
      match ct.pattern with
      | None -> ()
      | Some (pat, _) -> (
          let table = mode_table ct.tmode in
          let push bucket = bucket := ct.t_id :: !bucket in
          match Pat.dispatch_key pat with
          | Some (`Name n) ->
              let bucket =
                match Hashtbl.find_opt table.by_elem_name n with
                | Some b -> b
                | None ->
                    let b = ref [] in
                    Hashtbl.add table.by_elem_name n b;
                    b
              in
              push bucket
          | Some `Any_element -> push table.any_element
          | Some `Text -> push table.text_bucket
          | Some `Comment -> push table.comment_bucket
          | Some `Pi -> push table.pi_bucket
          | Some `Root -> push table.root_bucket
          | None -> push table.untyped))
    templates;
  let globals =
    List.map (fun (n, v) -> (n, compile_value st v)) ss.global_vars
    @ List.filter_map
        (fun (n, d) -> match d with Some v -> Some (n, compile_value st v) | None -> None)
        ss.global_params
  in
  {
    templates;
    by_name = name_ids;
    dispatch;
    globals;
    keys = ss.keys;
    space = ss.space;
    out_method = ss.output;
    out_indent = ss.indent;
    n_apply_sites = st.next_site;
    apply_site_info = Array.of_list (List.rev st.sites);
  }

(** Instruction count of a program — rough bytecode size metric. *)
let program_size (p : program) =
  let rec code_size code =
    Array.fold_left
      (fun acc op ->
        acc + 1
        +
        match op with
        | O_literal_elem (_, _, c)
        | O_elem (_, c)
        | O_attr (_, c)
        | O_comment c
        | O_pi (_, c)
        | O_copy c
        | O_if (_, c)
        | O_message c
        | O_for_each (_, _, c) ->
            code_size c
        | O_choose bs -> List.fold_left (fun a (_, c) -> a + code_size c) 0 bs
        | O_var (_, C_tree c) -> code_size c
        | O_apply { params; _ } | O_call { params; _ } ->
            List.fold_left
              (fun a (_, v) -> a + match v with C_tree c -> code_size c | C_select _ -> 0)
              0 params
        | O_text _ | O_value_of _ | O_copy_of _ | O_number _ | O_var (_, C_select _) -> 0)
      0 code
  in
  Array.fold_left (fun acc t -> acc + code_size t.tcode) 0 p.templates
