(** XSLT 1.0 abstract syntax (the subset exercised by XSLTMark-style
    workloads and the paper's examples).

    Supported instructions: [template], [apply-templates] (with [select],
    [mode], [sort], [with-param]), [call-template], [value-of], [copy-of],
    [copy], [element], [attribute], [text], [comment],
    [processing-instruction], [if], [choose/when/otherwise], [for-each]
    (with [sort]), [variable], [param], [number] (level="single",
    format="1"), [message], plus literal result elements with attribute
    value templates.

    XSLT 2.0 constructs such as [for-each-group] are recognised by the
    parser and rejected with {!Unsupported} — the paper's §7.1 open
    issue. *)

module XP = Xdb_xpath.Ast

exception Unsupported of string

(** Attribute value template: literal pieces and [{expr}] holes. *)
type avt_piece = Avt_str of string | Avt_expr of XP.expr

type avt = avt_piece list

type sort_spec = {
  sort_key : XP.expr;
  numeric : bool;  (** [data-type="number"] *)
  descending : bool;
}

type instruction =
  | Apply_templates of {
      select : XP.expr option;  (** default: [child::node()] *)
      mode : string option;
      sort : sort_spec list;
      with_params : (string * value_spec) list;
    }
  | Call_template of { name : string; with_params : (string * value_spec) list }
  | Value_of of { select : XP.expr }
  | Copy_of of XP.expr
  | Copy of instruction list
  | Element_cons of { name : avt; content : instruction list }
  | Attribute_cons of { name : avt; content : instruction list }
  | Text_cons of string
  | Comment_cons of instruction list
  | Pi_cons of { target : avt; content : instruction list }
  | Literal_element of { name : string; attrs : (string * avt) list; content : instruction list }
  | If_cond of XP.expr * instruction list
  | Choose of (XP.expr option * instruction list) list
      (** [when] branches; [None] condition = [otherwise] *)
  | For_each of { select : XP.expr; sort : sort_spec list; body : instruction list }
  | Variable_def of string * value_spec
  | Number_ins of { format : string }
      (** [xsl:number level="single"] counting preceding siblings of the
          same name *)
  | Message of instruction list

(** How a variable/parameter value is produced. *)
and value_spec =
  | Select_expr of XP.expr
  | Content of instruction list  (** result tree fragment *)

type template = {
  match_pattern : Xdb_xpath.Pattern.t option;
  template_name : string option;
  mode : string option;
  priority : float option;
  params : (string * value_spec option) list;  (** name, default *)
  body : instruction list;
}

type output_method = Out_xml | Out_html | Out_text

(** [<xsl:key name match use>] declaration: nodes matching [key_match] are
    indexed under the string value(s) of [key_use]. *)
type key_decl = {
  key_name : string;
  key_match : Xdb_xpath.Pattern.t;
  key_use : XP.expr;
}

(** Whitespace stripping declared by [xsl:strip-space] /
    [xsl:preserve-space]. *)
type space_spec = {
  strip_all : bool;  (** [<xsl:strip-space elements="*"/>] seen *)
  strip : string list;  (** element names listed for stripping *)
  preserve : string list;  (** element names exempted *)
}

let no_stripping = { strip_all = false; strip = []; preserve = [] }

type stylesheet = {
  templates : template list;  (** in document order *)
  global_vars : (string * value_spec) list;
  global_params : (string * value_spec option) list;
  keys : key_decl list;
  space : space_spec;
  output : output_method;
  indent : bool;
}

(** Names of templates referenced by [call-template] in a body. *)
let rec called_names body =
  let param_names ps =
    List.concat_map
      (fun (_, v) -> match v with Content is -> called_names is | Select_expr _ -> [])
      ps
  in
  List.concat_map
    (function
      | Call_template { name; with_params } -> name :: param_names with_params
      | Apply_templates { with_params; _ } -> param_names with_params
      | Copy is | Comment_cons is | If_cond (_, is) | Message is -> called_names is
      | Element_cons { content; _ }
      | Attribute_cons { content; _ }
      | Pi_cons { content; _ }
      | Literal_element { content; _ } ->
          called_names content
      | Choose branches -> List.concat_map (fun (_, is) -> called_names is) branches
      | For_each { body; _ } -> called_names body
      | Variable_def (_, Content is) -> called_names is
      | Variable_def (_, Select_expr _) | Value_of _ | Copy_of _ | Text_cons _ | Number_ins _ ->
          [])
    body
