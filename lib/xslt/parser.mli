(** Stylesheet parser: XML document → {!Ast.stylesheet}.

    Elements in the XSLT namespace become instructions; anything else is a
    literal result element whose attributes are attribute value templates.
    XSLT 2.0-only instructions raise {!Ast.Unsupported} (paper §7.1). *)

exception Stylesheet_error of string

val parse_avt : string -> Ast.avt
(** Split an attribute value template into literal pieces and [{expr}]
    holes ([{{]/[}}] escape).  @raise Stylesheet_error on unbalanced
    braces. *)

val avt_is_constant : Ast.avt -> bool

val parse_stylesheet_node : Xdb_xml.Types.node -> Ast.stylesheet
(** The node must be [xsl:stylesheet] or [xsl:transform]. *)

val parse : string -> Ast.stylesheet
(** Parse stylesheet source text.
    @raise Stylesheet_error / {!Ast.Unsupported} / {!Xdb_xml.Parser.Parse_error}. *)
