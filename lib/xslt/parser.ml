(** Stylesheet parser: XML document → {!Ast.stylesheet}.

    Elements in the XSLT namespace become instructions; anything else is a
    literal result element whose attributes are attribute value templates.
    XSLT 2.0-only instructions raise {!Ast.Unsupported} (paper §7.1). *)

module X = Xdb_xml.Types
open Ast

exception Stylesheet_error of string

let err fmt = Printf.ksprintf (fun m -> raise (Stylesheet_error m)) fmt

let is_xsl el name =
  match el.X.kind with
  | X.Element q -> String.equal q.uri X.xsl_uri && String.equal q.local name
  | _ -> false

let xsl_local el =
  match el.X.kind with
  | X.Element q when String.equal q.uri X.xsl_uri -> Some q.local
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Attribute value templates                                           *)
(* ------------------------------------------------------------------ *)

(** [parse_avt s] splits ["a{expr}b"] into pieces; [{{]/[}}] escape. *)
let parse_avt s : avt =
  let n = String.length s in
  let pieces = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then (
      pieces := Avt_str (Buffer.contents buf) :: !pieces;
      Buffer.clear buf)
  in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = '{' && !i + 1 < n && s.[!i + 1] = '{' then (
      Buffer.add_char buf '{';
      i := !i + 2)
    else if c = '}' && !i + 1 < n && s.[!i + 1] = '}' then (
      Buffer.add_char buf '}';
      i := !i + 2)
    else if c = '{' then (
      flush ();
      let close =
        match String.index_from_opt s (!i + 1) '}' with
        | Some j -> j
        | None -> err "unterminated { in attribute value template %S" s
      in
      let expr_src = String.sub s (!i + 1) (close - !i - 1) in
      pieces := Avt_expr (Xdb_xpath.Parser.parse expr_src) :: !pieces;
      i := close + 1)
    else if c = '}' then err "stray } in attribute value template %S" s
    else (
      Buffer.add_char buf c;
      incr i)
  done;
  flush ();
  List.rev !pieces

let avt_is_constant avt =
  List.for_all (function Avt_str _ -> true | Avt_expr _ -> false) avt

let attr el name = X.attribute el name

let required_attr el name what =
  match attr el name with Some v -> v | None -> err "%s requires a %s attribute" what name

let parse_xpath_attr el name what =
  let src = required_attr el name what in
  try Xdb_xpath.Parser.parse src
  with Xdb_xpath.Parser.Parse_error m -> err "%s: bad XPath in %s=%S: %s" what name src m

(* ------------------------------------------------------------------ *)
(* Instructions                                                        *)
(* ------------------------------------------------------------------ *)

let rec parse_sorts children =
  List.filter_map
    (fun c ->
      if is_xsl c "sort" then
        let key =
          match attr c "select" with
          | Some s -> Xdb_xpath.Parser.parse s
          | None -> Xdb_xpath.Parser.parse "."
        in
        Some
          {
            sort_key = key;
            numeric = attr c "data-type" = Some "number";
            descending = attr c "order" = Some "descending";
          }
      else None)
    children

and parse_with_params children =
  List.filter_map
    (fun c ->
      if is_xsl c "with-param" then
        let name = required_attr c "name" "xsl:with-param" in
        let v =
          match attr c "select" with
          | Some s -> Select_expr (Xdb_xpath.Parser.parse s)
          | None -> Content (parse_body c.X.children)
        in
        Some (name, v)
      else None)
    children

and parse_body (nodes : X.node list) : instruction list =
  List.concat_map parse_node nodes

and parse_node (node : X.node) : instruction list =
  match node.X.kind with
  | X.Text s -> if String.trim s = "" then [] else [ Text_cons s ]
  | X.Comment _ | X.Pi _ -> []
  | X.Document -> parse_body node.X.children
  | X.Attribute _ -> []
  | X.Element q when String.equal q.X.uri X.xsl_uri -> parse_instruction node q.X.local
  | X.Element q ->
      let attrs =
        List.filter_map
          (fun a ->
            match a.X.kind with
            | X.Attribute (aq, v) when aq.X.uri <> X.xmlns_uri -> Some (X.string_of_qname aq, parse_avt v)
            | _ -> None)
          node.X.attributes
      in
      [ Literal_element { name = X.string_of_qname q; attrs; content = parse_body node.X.children } ]

and parse_instruction node local : instruction list =
  match local with
  | "apply-templates" ->
      [ Apply_templates
          {
            select = Option.map Xdb_xpath.Parser.parse (attr node "select");
            mode = attr node "mode";
            sort = parse_sorts node.X.children;
            with_params = parse_with_params node.X.children;
          } ]
  | "call-template" ->
      [ Call_template
          {
            name = required_attr node "name" "xsl:call-template";
            with_params = parse_with_params node.X.children;
          } ]
  | "value-of" -> [ Value_of { select = parse_xpath_attr node "select" "xsl:value-of" } ]
  | "copy-of" -> [ Copy_of (parse_xpath_attr node "select" "xsl:copy-of") ]
  | "copy" -> [ Copy (parse_body node.X.children) ]
  | "element" ->
      [ Element_cons
          {
            name = parse_avt (required_attr node "name" "xsl:element");
            content = parse_body node.X.children;
          } ]
  | "attribute" ->
      [ Attribute_cons
          {
            name = parse_avt (required_attr node "name" "xsl:attribute");
            content = parse_body node.X.children;
          } ]
  | "text" -> [ Text_cons (X.string_value node) ]
  | "comment" -> [ Comment_cons (parse_body node.X.children) ]
  | "processing-instruction" ->
      [ Pi_cons
          {
            target = parse_avt (required_attr node "name" "xsl:processing-instruction");
            content = parse_body node.X.children;
          } ]
  | "if" ->
      [ If_cond (parse_xpath_attr node "test" "xsl:if", parse_body node.X.children) ]
  | "choose" ->
      let branches =
        List.filter_map
          (fun c ->
            if is_xsl c "when" then
              Some (Some (parse_xpath_attr c "test" "xsl:when"), parse_body c.X.children)
            else if is_xsl c "otherwise" then Some (None, parse_body c.X.children)
            else None)
          node.X.children
      in
      if branches = [] then err "xsl:choose requires at least one xsl:when";
      [ Choose branches ]
  | "for-each" ->
      [ For_each
          {
            select = parse_xpath_attr node "select" "xsl:for-each";
            sort = parse_sorts node.X.children;
            body = parse_body node.X.children;
          } ]
  | "variable" ->
      let name = required_attr node "name" "xsl:variable" in
      let v =
        match attr node "select" with
        | Some s -> Select_expr (Xdb_xpath.Parser.parse s)
        | None -> Content (parse_body node.X.children)
      in
      [ Variable_def (name, v) ]
  | "number" -> [ Number_ins { format = Option.value ~default:"1" (attr node "format") } ]
  | "message" -> [ Message (parse_body node.X.children) ]
  | "sort" | "with-param" -> [] (* handled by their parents *)
  | "param" -> err "xsl:param is only allowed at the start of a template"
  | "for-each-group" | "analyze-string" | "result-document" | "sequence" | "perform-sort" ->
      raise (Unsupported (Printf.sprintf "xsl:%s is an XSLT 2.0 instruction (paper §7.1)" local))
  | other -> err "unknown XSLT instruction xsl:%s" other

(* ------------------------------------------------------------------ *)
(* Templates and the stylesheet element                                *)
(* ------------------------------------------------------------------ *)

let parse_template node : template =
  let match_pattern =
    match attr node "match" with
    | None -> None
    | Some src -> (
        try Some (Xdb_xpath.Pattern.parse src)
        with
        | Xdb_xpath.Pattern.Invalid_pattern m | Xdb_xpath.Parser.Parse_error m ->
            err "bad match pattern %S: %s" src m)
  in
  let template_name = attr node "name" in
  if match_pattern = None && template_name = None then
    err "a template needs a match or a name attribute";
  let priority =
    match attr node "priority" with
    | None -> None
    | Some p -> (
        match float_of_string_opt p with
        | Some f -> Some f
        | None -> err "bad priority %S" p)
  in
  (* leading xsl:param children *)
  let rec split_params acc = function
    | c :: rest when is_xsl c "param" ->
        let name = required_attr c "name" "xsl:param" in
        let default =
          match attr c "select" with
          | Some s -> Some (Select_expr (Xdb_xpath.Parser.parse s))
          | None ->
              if c.X.children = [] then None else Some (Content (parse_body c.X.children))
        in
        split_params ((name, default) :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let params, body_nodes =
    split_params [] (List.filter (fun c -> not (X.is_text c) || String.trim (X.string_value c) <> "") node.X.children)
  in
  {
    match_pattern;
    template_name;
    mode = attr node "mode";
    priority;
    params;
    body = parse_body body_nodes;
  }

(** [parse_stylesheet_node root] — [root] must be [xsl:stylesheet] or
    [xsl:transform]. *)
let parse_stylesheet_node root : stylesheet =
  (match xsl_local root with
  | Some ("stylesheet" | "transform") -> ()
  | _ -> err "document element must be xsl:stylesheet or xsl:transform");
  (match attr root "version" with
  | Some ("1.0" | "1.1" | "2.0") | None -> ()
  | Some v -> err "unsupported XSLT version %S" v);
  let templates = ref [] in
  let global_vars = ref [] in
  let global_params = ref [] in
  let keys = ref [] in
  let space = ref no_stripping in
  let output = ref Out_xml in
  let indent = ref false in
  List.iter
    (fun child ->
      match xsl_local child with
      | Some "template" -> templates := parse_template child :: !templates
      | Some "output" ->
          (match attr child "method" with
          | Some "html" -> output := Out_html
          | Some "text" -> output := Out_text
          | Some "xml" | None -> output := Out_xml
          | Some m -> err "unknown output method %S" m);
          if attr child "indent" = Some "yes" then indent := true
      | Some "variable" ->
          let name = required_attr child "name" "top-level xsl:variable" in
          let v =
            match attr child "select" with
            | Some s -> Select_expr (Xdb_xpath.Parser.parse s)
            | None -> Content (parse_body child.X.children)
          in
          global_vars := (name, v) :: !global_vars
      | Some "param" ->
          let name = required_attr child "name" "top-level xsl:param" in
          let default =
            match attr child "select" with
            | Some s -> Some (Select_expr (Xdb_xpath.Parser.parse s))
            | None ->
                if child.X.children = [] then None else Some (Content (parse_body child.X.children))
          in
          global_params := (name, default) :: !global_params
      | Some "key" ->
          let key_name = required_attr child "name" "xsl:key" in
          let match_src = required_attr child "match" "xsl:key" in
          let key_match =
            try Xdb_xpath.Pattern.parse match_src
            with Xdb_xpath.Pattern.Invalid_pattern m | Xdb_xpath.Parser.Parse_error m ->
              err "xsl:key: bad match pattern %S: %s" match_src m
          in
          let key_use = parse_xpath_attr child "use" "xsl:key" in
          keys := { key_name; key_match; key_use } :: !keys
      | Some "strip-space" ->
          let names =
            String.split_on_char ' ' (required_attr child "elements" "xsl:strip-space")
            |> List.filter (fun w -> w <> "")
          in
          space :=
            List.fold_left
              (fun sp n ->
                if n = "*" then { sp with strip_all = true }
                else { sp with strip = n :: sp.strip })
              !space names
      | Some "preserve-space" ->
          let names =
            String.split_on_char ' ' (required_attr child "elements" "xsl:preserve-space")
            |> List.filter (fun w -> w <> "")
          in
          space := { !space with preserve = names @ !space.preserve }
      | Some ("decimal-format" | "namespace-alias" | "attribute-set" | "include" | "import") ->
          (* accepted and ignored or rejected: imports change semantics *)
          if xsl_local child = Some "import" || xsl_local child = Some "include" then
            raise (Unsupported "xsl:import/xsl:include are not supported in this subset")
      | Some other -> err "unexpected top-level element xsl:%s" other
      | None -> (
          match child.X.kind with
          | X.Text s when String.trim s = "" -> ()
          | X.Comment _ -> ()
          | _ -> err "unexpected non-XSLT top-level node"))
    root.X.children;
  {
    templates = List.rev !templates;
    global_vars = List.rev !global_vars;
    global_params = List.rev !global_params;
    keys = List.rev !keys;
    space = !space;
    output = !output;
    indent = !indent;
  }

(** [parse s] — stylesheet from source text. *)
let parse s =
  let doc = Xdb_xml.Parser.parse s in
  parse_stylesheet_node (Xdb_xml.Parser.document_element doc)
