(** The XSLTVM: bytecode interpreter with hash-table template dispatch and
    optional trace instrumentation (paper §4.3 and [13]).  This is the
    paper's functional-evaluation baseline; with a {!trace_sink} attached
    it reports template instantiations — the partial evaluator's input. *)

exception Runtime_error of string

type trace_event =
  | Ev_enter of {
      template : int option;  (** [None] = built-in rule *)
      node : Xdb_xml.Types.node;
      site : int option;  (** apply/call site; [None] = initial/built-in *)
    }
  | Ev_exit

type trace_sink = trace_event -> unit

val transform :
  ?trace:trace_sink -> Compile.program -> Xdb_xml.Types.node -> Xdb_xml.Types.node
(** [transform prog doc] — result fragment (a document node).  With
    [?trace], the run is the §4.1 partial evaluation: value predicates are
    conservatively assumed true and every instantiation is reported. *)

val transform_to_string :
  ?trace:trace_sink -> Compile.program -> Xdb_xml.Types.node -> string
(** [transform] serialized with the stylesheet's output method. *)

val run_stylesheet :
  ?trace:trace_sink -> string -> Xdb_xml.Types.node -> Xdb_xml.Types.node
(** Parse, compile and transform in one step. *)
