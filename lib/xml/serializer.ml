(** Serialization of node trees: XML, HTML and text output methods
    (mirroring the XSLT 1.0 [xsl:output method] values). *)

open Types

type output_method = Xml | Html | Text_output

(* escaping copies runs of clean characters into the output buffer with
   [Buffer.add_substring] and only switches to entity references at the
   characters that need them — no intermediate strings, no per-character
   closure *)
let escape_text buf s =
  let n = String.length s in
  let start = ref 0 in
  for i = 0 to n - 1 do
    match String.unsafe_get s i with
    | '<' | '>' | '&' ->
        if i > !start then Buffer.add_substring buf s !start (i - !start);
        start := i + 1;
        Buffer.add_string buf
          (match String.unsafe_get s i with
          | '<' -> "&lt;"
          | '>' -> "&gt;"
          | _ -> "&amp;")
    | _ -> ()
  done;
  if n > !start then Buffer.add_substring buf s !start (n - !start)

(* whitespace becomes character references so a re-parse's attribute-value
   normalization (XML §3.3.3) cannot fold it into spaces *)
let escape_attr buf s =
  let n = String.length s in
  let start = ref 0 in
  for i = 0 to n - 1 do
    match String.unsafe_get s i with
    | '<' | '&' | '"' | '\t' | '\n' | '\r' ->
        if i > !start then Buffer.add_substring buf s !start (i - !start);
        start := i + 1;
        Buffer.add_string buf
          (match String.unsafe_get s i with
          | '<' -> "&lt;"
          | '&' -> "&amp;"
          | '"' -> "&quot;"
          | '\t' -> "&#9;"
          | '\n' -> "&#10;"
          | _ -> "&#13;")
    | _ -> ()
  done;
  if n > !start then Buffer.add_substring buf s !start (n - !start)

(* HTML void elements: no closing tag, no self-closing slash. *)
let html_void = [ "br"; "hr"; "img"; "input"; "meta"; "link"; "area"; "base"; "col"; "embed" ]

let is_html_void name = List.mem (String.lowercase_ascii name) html_void

(* [base] is where this node's output starts in the (shared) buffer, so
   indentation can tell "first thing this node emits" from "first thing in
   the buffer" when several nodes serialize into one buffer *)
let rec emit ~meth ~indent ~depth ~base buf n =
  let pad () =
    if indent then (
      if Buffer.length buf > base then Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * depth) ' '))
  in
  match n.kind with
  | Document -> List.iter (emit ~meth ~indent ~depth ~base buf) n.children
  | Text s -> ( match meth with Text_output -> Buffer.add_string buf s | _ -> escape_text buf s)
  | Comment s ->
      if meth <> Text_output then (
        pad ();
        Buffer.add_string buf "<!--";
        Buffer.add_string buf s;
        Buffer.add_string buf "-->")
  | Pi (t, d) ->
      if meth <> Text_output then (
        pad ();
        Buffer.add_string buf "<?";
        Buffer.add_string buf t;
        if d <> "" then (
          Buffer.add_char buf ' ';
          Buffer.add_string buf d);
        Buffer.add_string buf "?>")
  | Attribute (q, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_qname q);
      Buffer.add_string buf "=\"";
      escape_attr buf v;
      Buffer.add_char buf '"'
  | Element q ->
      if meth = Text_output then List.iter (emit ~meth ~indent ~depth ~base buf) n.children
      else (
        pad ();
        Buffer.add_char buf '<';
        Buffer.add_string buf (string_of_qname q);
        List.iter (emit ~meth ~indent ~depth ~base buf) n.attributes;
        let name = string_of_qname q in
        if n.children = [] then
          match meth with
          | Html when is_html_void q.local -> Buffer.add_char buf '>'
          | Html ->
              Buffer.add_string buf "></";
              Buffer.add_string buf name;
              Buffer.add_char buf '>'
          | Xml | Text_output -> Buffer.add_string buf "/>"
        else (
          Buffer.add_char buf '>';
          let kids_are_elements = List.for_all (fun c -> not (is_text c)) n.children in
          List.iter
            (emit ~meth ~indent:(indent && kids_are_elements) ~depth:(depth + 1) ~base buf)
            n.children;
          if indent && kids_are_elements then (
            Buffer.add_char buf '\n';
            Buffer.add_string buf (String.make (2 * depth) ' '));
          Buffer.add_string buf "</";
          Buffer.add_string buf name;
          Buffer.add_char buf '>'))

(** [to_string ?meth ?indent n] serializes the subtree at [n]. *)
let to_string ?(meth = Xml) ?(indent = false) n =
  let buf = Buffer.create 256 in
  emit ~meth ~indent ~depth:0 ~base:0 buf n;
  Buffer.contents buf

(** [node_list_to_string nodes] serializes a flat sequence of nodes into
    one shared buffer (each node indents relative to its own start). *)
let node_list_to_string ?(meth = Xml) ?(indent = false) nodes =
  let buf = Buffer.create 256 in
  List.iter (fun n -> emit ~meth ~indent ~depth:0 ~base:(Buffer.length buf) buf n) nodes;
  Buffer.contents buf
