(** Serialization of node trees: XML, HTML and text output methods
    (mirroring the XSLT 1.0 [xsl:output method] values).

    A thin DOM→event adapter: trees replay through {!Events.emit_tree}
    into the shared serializing sink, so the DOM path and the streaming
    path share one emit core byte for byte. *)

type output_method = Events.output_method = Xml | Html | Text_output

let escape_text = Events.escape_text
let escape_attr = Events.escape_attr

(** [to_string ?meth ?indent n] serializes the subtree at [n]. *)
let to_string ?(meth = Xml) ?(indent = false) n =
  Events.to_string ~meth ~indent (fun sink -> Events.emit_tree sink n)

(** [node_list_to_string nodes] serializes a flat sequence of nodes into
    one shared buffer (each node indents relative to its own start). *)
let node_list_to_string ?(meth = Xml) ?(indent = false) nodes =
  Events.to_string ~meth ~indent (fun sink -> Events.emit_forest sink nodes)
