(** Serialization of node trees: XML, HTML and text output methods
    (mirroring the XSLT 1.0 [xsl:output method] values). *)

open Types

type output_method = Xml | Html | Text_output

let escape_text buf s =
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | c -> Buffer.add_char buf c)
    s

(* whitespace becomes character references so a re-parse's attribute-value
   normalization (XML §3.3.3) cannot fold it into spaces *)
let escape_attr buf s =
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\t' -> Buffer.add_string buf "&#9;"
      | '\n' -> Buffer.add_string buf "&#10;"
      | '\r' -> Buffer.add_string buf "&#13;"
      | c -> Buffer.add_char buf c)
    s

(* HTML void elements: no closing tag, no self-closing slash. *)
let html_void = [ "br"; "hr"; "img"; "input"; "meta"; "link"; "area"; "base"; "col"; "embed" ]

let is_html_void name = List.mem (String.lowercase_ascii name) html_void

let rec emit ~meth ~indent ~depth buf n =
  let pad () =
    if indent then (
      if Buffer.length buf > 0 then Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * depth) ' '))
  in
  match n.kind with
  | Document -> List.iter (emit ~meth ~indent ~depth buf) n.children
  | Text s -> ( match meth with Text_output -> Buffer.add_string buf s | _ -> escape_text buf s)
  | Comment s ->
      if meth <> Text_output then (
        pad ();
        Buffer.add_string buf "<!--";
        Buffer.add_string buf s;
        Buffer.add_string buf "-->")
  | Pi (t, d) ->
      if meth <> Text_output then (
        pad ();
        Buffer.add_string buf "<?";
        Buffer.add_string buf t;
        if d <> "" then (
          Buffer.add_char buf ' ';
          Buffer.add_string buf d);
        Buffer.add_string buf "?>")
  | Attribute (q, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_qname q);
      Buffer.add_string buf "=\"";
      escape_attr buf v;
      Buffer.add_char buf '"'
  | Element q ->
      if meth = Text_output then List.iter (emit ~meth ~indent ~depth buf) n.children
      else (
        pad ();
        Buffer.add_char buf '<';
        Buffer.add_string buf (string_of_qname q);
        List.iter (emit ~meth ~indent ~depth buf) n.attributes;
        let name = string_of_qname q in
        if n.children = [] then
          match meth with
          | Html when is_html_void q.local -> Buffer.add_char buf '>'
          | Html ->
              Buffer.add_string buf "></";
              Buffer.add_string buf name;
              Buffer.add_char buf '>'
          | Xml | Text_output -> Buffer.add_string buf "/>"
        else (
          Buffer.add_char buf '>';
          let kids_are_elements = List.for_all (fun c -> not (is_text c)) n.children in
          List.iter
            (emit ~meth ~indent:(indent && kids_are_elements) ~depth:(depth + 1) buf)
            n.children;
          if indent && kids_are_elements then (
            Buffer.add_char buf '\n';
            Buffer.add_string buf (String.make (2 * depth) ' '));
          Buffer.add_string buf "</";
          Buffer.add_string buf name;
          Buffer.add_char buf '>'))

(** [to_string ?meth ?indent n] serializes the subtree at [n]. *)
let to_string ?(meth = Xml) ?(indent = false) n =
  let buf = Buffer.create 256 in
  emit ~meth ~indent ~depth:0 buf n;
  Buffer.contents buf

(** [node_list_to_string nodes] serializes a flat sequence of nodes. *)
let node_list_to_string ?(meth = Xml) ?(indent = false) nodes =
  String.concat "" (List.map (to_string ~meth ~indent) nodes)
