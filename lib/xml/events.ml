(** Streaming output events: SAX-style result construction.

    Producers push {!event}s into a {!sink}.  Two standard sinks cover
    every consumer in the system:

    - the {b serializing sink} writes markup straight into a [Buffer.t]
      with run-based escaping and the XML/HTML/text output-method rules —
      byte-identical to serializing the equivalent DOM — so hot paths
      never materialise a result tree;
    - the {b tree builder} turns the same events into {!Types.node} trees
      (today's DOM), used wherever a tree is genuinely needed (the
      XSLTVM's result fragments, XQuery constructed content, differential
      tests).

    The emit core validates well-formedness at the event level: comment
    runs containing ["--"], processing-instruction data containing
    ["?>"], attributes arriving after element content and unbalanced
    [End_element]s all raise {!Serialize_error} instead of producing
    output that cannot re-parse. *)

open Types

exception Serialize_error of string

let serr fmt = Printf.ksprintf (fun m -> raise (Serialize_error m)) fmt

type output_method = Xml | Html | Text_output

type event =
  | Start_element of qname
  | Attr of qname * string
  | Text of string
  | Comment of string
  | Pi of string * string
  | End_element

type sink = { emit : event -> unit; finish : unit -> unit }

(* escaping copies runs of clean characters into the output buffer with
   [Buffer.add_substring] and only switches to entity references at the
   characters that need them — no intermediate strings, no per-character
   closure *)
let escape_text buf s =
  let n = String.length s in
  let start = ref 0 in
  for i = 0 to n - 1 do
    match String.unsafe_get s i with
    | '<' | '>' | '&' ->
        if i > !start then Buffer.add_substring buf s !start (i - !start);
        start := i + 1;
        Buffer.add_string buf
          (match String.unsafe_get s i with
          | '<' -> "&lt;"
          | '>' -> "&gt;"
          | _ -> "&amp;")
    | _ -> ()
  done;
  if n > !start then Buffer.add_substring buf s !start (n - !start)

(* whitespace becomes character references so a re-parse's attribute-value
   normalization (XML §3.3.3) cannot fold it into spaces *)
let escape_attr buf s =
  let n = String.length s in
  let start = ref 0 in
  for i = 0 to n - 1 do
    match String.unsafe_get s i with
    | '<' | '&' | '"' | '\t' | '\n' | '\r' ->
        if i > !start then Buffer.add_substring buf s !start (i - !start);
        start := i + 1;
        Buffer.add_string buf
          (match String.unsafe_get s i with
          | '<' -> "&lt;"
          | '&' -> "&amp;"
          | '"' -> "&quot;"
          | '\t' -> "&#9;"
          | '\n' -> "&#10;"
          | _ -> "&#13;")
    | _ -> ()
  done;
  if n > !start then Buffer.add_substring buf s !start (n - !start)

(* HTML void elements: no closing tag, no self-closing slash. *)
let html_void =
  [
    "br"; "hr"; "img"; "input"; "meta"; "link"; "area"; "base"; "col"; "embed";
    "source"; "track"; "wbr"; "param";
  ]

let is_html_void name = List.mem (String.lowercase_ascii name) html_void

(* XML 1.0 §2.5: comments may not contain "--" and may not end with "-" *)
let check_comment s =
  let n = String.length s in
  if n > 0 && String.unsafe_get s (n - 1) = '-' then
    serr "comment content may not end with '-': %S" s;
  for i = 0 to n - 2 do
    if String.unsafe_get s i = '-' && String.unsafe_get s (i + 1) = '-' then
      serr "comment content may not contain \"--\": %S" s
  done

(* XML 1.0 §2.6: PI data may not contain the closing "?>" *)
let check_pi target data =
  if target = "" then serr "processing-instruction target may not be empty";
  let n = String.length data in
  for i = 0 to n - 2 do
    if String.unsafe_get data i = '?' && String.unsafe_get data (i + 1) = '>' then
      serr "processing-instruction data may not contain \"?>\": %S" data
  done

let add_attr buf q v =
  Buffer.add_char buf ' ';
  Buffer.add_string buf (string_of_qname q);
  Buffer.add_string buf "=\"";
  escape_attr buf v;
  Buffer.add_char buf '"'

(* ------------------------------------------------------------------ *)
(* Serializing sink, streaming form (no indentation)                   *)
(* ------------------------------------------------------------------ *)

(* The innermost start tag stays "pending" — written as [<name attrs…]
   without the closing [>] — until the first content event or the matching
   [End_element] decides between [<a>…</a>] and the empty-element form. *)
let text_streaming_sink buf =
  (* text method: only text runs reach the output; a standalone attribute
     at top level prints like the DOM serializer's *)
  let depth = ref 0 in
  let emit ev =
    match ev with
    | Start_element _ -> incr depth
    | End_element ->
        if !depth = 0 then serr "end_element without open element";
        decr depth
    | Text s -> Buffer.add_string buf s
    | Attr (q, v) -> if !depth = 0 then add_attr buf q v
    | Comment _ | Pi _ -> ()
  in
  let finish () = if !depth > 0 then serr "%d unclosed element(s) at end of output" !depth in
  { emit; finish }

let streaming_sink ~meth buf =
  let stack = ref [] in
  let pending = ref false in
  let close_pending () =
    if !pending then (
      Buffer.add_char buf '>';
      pending := false)
  in
  let emit ev =
    match ev with
        | Start_element q ->
            close_pending ();
            Buffer.add_char buf '<';
            Buffer.add_string buf (string_of_qname q);
            stack := q :: !stack;
            pending := true
        | Attr (q, v) ->
            (* valid while the start tag is open, or at top level (a
               standalone attribute node in a serialized forest) *)
            if !pending || !stack = [] then add_attr buf q v
            else serr "attribute added after children"
        | Text s ->
            close_pending ();
            escape_text buf s
        | Comment s ->
            check_comment s;
            close_pending ();
            Buffer.add_string buf "<!--";
            Buffer.add_string buf s;
            Buffer.add_string buf "-->"
        | Pi (t, d) ->
            check_pi t d;
            close_pending ();
            Buffer.add_string buf "<?";
            Buffer.add_string buf t;
            if d <> "" then (
              Buffer.add_char buf ' ';
              Buffer.add_string buf d);
            Buffer.add_string buf "?>"
        | End_element -> (
            match !stack with
            | [] -> serr "end_element without open element"
            | q :: rest ->
                stack := rest;
                if !pending then (
                  pending := false;
                  match meth with
                  | Html when is_html_void q.local -> Buffer.add_char buf '>'
                  | Html ->
                      Buffer.add_string buf "></";
                      Buffer.add_string buf (string_of_qname q);
                      Buffer.add_char buf '>'
                  | Xml | Text_output -> Buffer.add_string buf "/>")
                else (
                  Buffer.add_string buf "</";
                  Buffer.add_string buf (string_of_qname q);
                  Buffer.add_char buf '>'))
  in
  let finish () =
    if !stack <> [] then serr "%d unclosed element(s) at end of output" (List.length !stack)
  in
  { emit; finish }

(* ------------------------------------------------------------------ *)
(* Serializing sink, indented form                                     *)
(* ------------------------------------------------------------------ *)

(* Indentation needs child lookahead (an element indents its content only
   when no text child exists), so events buffer and render at [finish].
   The rendering reproduces the DOM serializer exactly: [base] is where
   the current top-level item starts in the shared buffer, so "first
   thing this item emits" is told apart from "first thing in the buffer". *)
let render_indented ~meth buf events =
  let n = Array.length events in
  (* match Start/End pairs in one stack pass *)
  let mate = Array.make n (-1) in
  let stack = ref [] in
  Array.iteri
    (fun i ev ->
      match ev with
      | Start_element _ -> stack := i :: !stack
      | End_element -> (
          match !stack with
          | [] -> serr "end_element without open element"
          | j :: rest ->
              mate.(j) <- i;
              stack := rest)
      | _ -> ())
    events;
  if !stack <> [] then serr "%d unclosed element(s) at end of output" (List.length !stack);
  let pad ~indent ~depth ~base =
    if indent then (
      if Buffer.length buf > base then Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * depth) ' '))
  in
  let rec item ~indent ~depth ~base i : int =
    match events.(i) with
    | Text s ->
        escape_text buf s;
        i + 1
    | Comment s ->
        check_comment s;
        pad ~indent ~depth ~base;
        Buffer.add_string buf "<!--";
        Buffer.add_string buf s;
        Buffer.add_string buf "-->";
        i + 1
    | Pi (t, d) ->
        check_pi t d;
        pad ~indent ~depth ~base;
        Buffer.add_string buf "<?";
        Buffer.add_string buf t;
        if d <> "" then (
          Buffer.add_char buf ' ';
          Buffer.add_string buf d);
        Buffer.add_string buf "?>";
        i + 1
    | Attr (q, v) ->
        if depth = 0 then (
          add_attr buf q v;
          i + 1)
        else serr "attribute added after children"
    | End_element -> assert false (* consumed by the Start_element branch *)
    | Start_element q ->
        let j = mate.(i) in
        pad ~indent ~depth ~base;
        let name = string_of_qname q in
        Buffer.add_char buf '<';
        Buffer.add_string buf name;
        (* leading Attr events are this element's attributes *)
        let k = ref (i + 1) in
        let continue = ref true in
        while !continue && !k < j do
          match events.(!k) with
          | Attr (aq, v) ->
              add_attr buf aq v;
              incr k
          | _ -> continue := false
        done;
        let k = !k in
        if k = j then (
          (match meth with
          | Html when is_html_void q.local -> Buffer.add_char buf '>'
          | Html ->
              Buffer.add_string buf "></";
              Buffer.add_string buf name;
              Buffer.add_char buf '>'
          | Xml | Text_output -> Buffer.add_string buf "/>");
          j + 1)
        else (
          Buffer.add_char buf '>';
          (* a text child at this level disables indentation below *)
          let kids_are_elements =
            let rec scan p =
              p >= j
              ||
              match events.(p) with
              | Text _ -> false
              | Start_element _ -> scan (mate.(p) + 1)
              | _ -> scan (p + 1)
            in
            scan k
          in
          let indent' = indent && kids_are_elements in
          let p = ref k in
          while !p < j do
            p := item ~indent:indent' ~depth:(depth + 1) ~base !p
          done;
          if indent && kids_are_elements then (
            Buffer.add_char buf '\n';
            Buffer.add_string buf (String.make (2 * depth) ' '));
          Buffer.add_string buf "</";
          Buffer.add_string buf name;
          Buffer.add_char buf '>';
          j + 1)
  in
  let i = ref 0 in
  while !i < n do
    let base = Buffer.length buf in
    i := item ~indent:true ~depth:0 ~base !i
  done

let buffered_indent_sink ~meth buf =
  let rev_events = ref [] in
  let emit ev = rev_events := ev :: !rev_events in
  let finish () = render_indented ~meth buf (Array.of_list (List.rev !rev_events)) in
  { emit; finish }

let serializing_sink ?(meth = Xml) ?(indent = false) buf =
  (* the text method ignores markup entirely, so indentation never applies
     and the streaming form is always safe *)
  match meth with
  | Text_output -> text_streaming_sink buf
  | Xml | Html ->
      if indent then buffered_indent_sink ~meth buf else streaming_sink ~meth buf

let to_string ?meth ?indent (produce : sink -> unit) : string =
  let buf = Buffer.create 256 in
  let sink = serializing_sink ?meth ?indent buf in
  produce sink;
  sink.finish ();
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Tree builder                                                        *)
(* ------------------------------------------------------------------ *)

type frame = { f_el : node; mutable f_rev : node list }

type builder = {
  bt_merge : bool;
  bt_drop_top_attrs : bool;
  mutable bt_frames : frame list;  (** open elements, innermost first *)
  mutable bt_top : node list;  (** completed top-level nodes, reversed *)
}

let tree_builder ?(merge_text = false) ?(drop_top_attrs = false) () =
  { bt_merge = merge_text; bt_drop_top_attrs = drop_top_attrs; bt_frames = []; bt_top = [] }

let push_node b n =
  match b.bt_frames with
  | f :: _ -> f.f_rev <- n :: f.f_rev
  | [] -> b.bt_top <- n :: b.bt_top

(* attributes attach to the innermost open element while it has no content
   yet; at top level they stand alone (or drop, per XSLT's recovery) *)
let place_attr b attr_node =
  match b.bt_frames with
  | f :: _ ->
      if f.f_rev = [] then add_attribute f.f_el attr_node
      else serr "attribute added after children"
  | [] -> if b.bt_drop_top_attrs then () else b.bt_top <- attr_node :: b.bt_top

let builder_emit b ev =
  match ev with
  | Start_element q -> b.bt_frames <- { f_el = make (Element q); f_rev = [] } :: b.bt_frames
  | Attr (q, v) -> place_attr b (make (Attribute (q, v)))
  | Text s ->
      if b.bt_merge then (
        if s <> "" then
          match (match b.bt_frames with f :: _ -> f.f_rev | [] -> b.bt_top) with
          | ({ kind = Text t; _ } as tn) :: _ ->
              (* merge with the preceding text node; text nodes reaching a
                 merging builder are builder-made or freshly copied, never
                 shared, so in-place mutation is safe *)
              tn.kind <- Text (t ^ s)
          | _ -> push_node b (make (Text s)))
      else push_node b (make (Text s))
  | Comment s -> push_node b (make (Comment s))
  | Pi (t, d) -> push_node b (make (Pi (t, d)))
  | End_element -> (
      match b.bt_frames with
      | [] -> serr "end_element without open element"
      | f :: rest ->
          b.bt_frames <- rest;
          set_children f.f_el (List.rev f.f_rev);
          push_node b f.f_el)

let builder_add_node b (n : node) =
  match n.kind with Attribute _ -> place_attr b n | _ -> push_node b n

let builder_sink b = { emit = builder_emit b; finish = (fun () -> ()) }

let builder_result b =
  if b.bt_frames <> [] then
    serr "%d unclosed element(s) in constructed content" (List.length b.bt_frames);
  List.rev b.bt_top

(* ------------------------------------------------------------------ *)
(* DOM → events                                                        *)
(* ------------------------------------------------------------------ *)

let rec emit_tree sink (n : node) =
  match n.kind with
  | Document -> List.iter (emit_tree sink) n.children
  | Element q ->
      sink.emit (Start_element q);
      List.iter
        (fun a -> match a.kind with Attribute (aq, v) -> sink.emit (Attr (aq, v)) | _ -> ())
        n.attributes;
      List.iter (emit_tree sink) n.children;
      sink.emit End_element
  | Attribute (q, v) -> sink.emit (Attr (q, v))
  | Text s -> sink.emit (Text s)
  | Comment s -> sink.emit (Comment s)
  | Pi (t, d) -> sink.emit (Pi (t, d))

let emit_forest sink ns = List.iter (emit_tree sink) ns
