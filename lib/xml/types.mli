(** Core XML node model: a single mutable record for every node kind, with
    parent pointers and per-tree document-order stamps.

    Names are namespace-expanded {!qname}s; [prefix] is kept only for
    serialization fidelity, equality uses [(uri, local)]. *)

type qname = {
  prefix : string;  (** original prefix, "" if none; serialization only *)
  uri : string;  (** namespace URI, "" if unqualified *)
  local : string;
}

val xsl_uri : string
val xml_uri : string
val xmlns_uri : string
val xdb_uri : string

val qname : ?prefix:string -> ?uri:string -> string -> qname
val qname_equal : qname -> qname -> bool
val string_of_qname : qname -> string

type node_kind =
  | Document
  | Element of qname
  | Attribute of qname * string
  | Text of string
  | Comment of string
  | Pi of string * string  (** target, data *)

type node = {
  mutable kind : node_kind;
  mutable parent : node option;
  mutable children : node list;  (** child nodes in document order *)
  mutable attributes : node list;  (** attribute nodes (elements only) *)
  mutable order : int;  (** document-order stamp; see {!reindex} *)
}

val make : node_kind -> node
(** Fresh parentless node. *)

val is_element : node -> bool
val is_text : node -> bool
val is_attribute : node -> bool
val is_document : node -> bool

val name : node -> qname option
(** Expanded name of an element or attribute node. *)

val local_name : node -> string
(** Local part ("" for unnamed kinds — the XPath [local-name()] rule). *)

val string_value : node -> string
(** XPath string-value: concatenated descendant text for documents and
    elements; the literal value otherwise. *)

val append_child : node -> node -> unit
(** O(existing children); prefer {!set_children} in bulk construction. *)

val set_children : node -> node list -> unit
(** Replace all children, setting parent links. *)

val add_attribute : node -> node -> unit
(** Attach an attribute node, replacing one with the same expanded name.
    @raise Invalid_argument when the node is not an attribute. *)

val attribute : ?uri:string -> node -> string -> string option
(** Attribute value by local name (restricted to [uri] when given). *)

val reindex : node -> unit
(** Stamp the subtree (attributes included) with consecutive document-order
    ordinals; enables O(1) {!compare_order}. *)

val root_of : node -> node
(** Walk parent links to the top of the tree. *)

val compare_order : node -> node -> int
(** Document-order comparison.  Uses ordinal stamps when available, falls
    back to structural path comparison otherwise; 0 only for the same
    physical node. *)

val descendants : node -> node list
(** All descendants (not self), document order, attributes excluded. *)

val deep_copy : node -> node
(** Clone a subtree; the copy is parentless. *)

val deep_equal : node -> node -> bool
(** Structural comparison: kind, name, value, attribute sets, ordered
    children. *)
