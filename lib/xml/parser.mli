(** Hand-written XML 1.0 parser with namespace expansion.

    Supported: prolog, DOCTYPE (skipped), elements, attributes, character
    data, CDATA sections, comments, processing instructions, the five
    predefined entities plus character references, and namespace
    declarations. *)

exception Parse_error of { line : int; col : int; message : string }
(** Raised with a 1-based line/column on malformed input. *)

val parse : string -> Types.node
(** [parse s] parses a complete document and returns its document node.
    The tree is stamped with document-order ordinals.
    @raise Parse_error on malformed input. *)

val parse_fragment : string -> Types.node
(** [parse_fragment s] parses content that may have several top-level
    nodes by wrapping it in a synthetic element; the returned document's
    single child is that wrapper. *)

val document_element : Types.node -> Types.node
(** Root element of a parsed document.
    @raise Invalid_argument if the document has no element child. *)
