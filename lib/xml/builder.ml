(** Convenience construction API for node trees.

    {[
      let tree =
        Builder.(
          elem "dept"
            [ elem "dname" [ text "ACCOUNTING" ];
              elem "loc" [ text "NEW YORK" ] ])
    ]} *)

open Types

(** [elem name ?attrs children] builds an element node. *)
let elem ?(uri = "") ?(prefix = "") ?(attrs = []) name children =
  let e = make (Element { prefix; uri; local = name }) in
  List.iter (fun (an, av) -> add_attribute e (make (Attribute (qname an, av)))) attrs;
  set_children e children;
  e

let text s = make (Text s)
let comment s = make (Comment s)
let pi target data = make (Pi (target, data))
let attr name value = make (Attribute (qname name, value))

(** [document root] wraps [root] in a document node and stamps the tree. *)
let document root =
  let d = make Document in
  append_child d root;
  reindex d;
  d

(** [document_of_nodes nodes] wraps several top-level nodes. *)
let document_of_nodes nodes =
  let d = make Document in
  List.iter (append_child d) nodes;
  reindex d;
  d
