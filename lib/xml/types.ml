(** Core XML node model.

    A single mutable record represents every node kind (document, element,
    attribute, text, comment, processing instruction).  Parent pointers plus
    per-tree ordinal stamps ([order]) give O(1) document-order comparison
    once {!val:reindex} has been run on the root.

    Names are namespace-expanded {!type:qname}s: [prefix] is kept only for
    serialization fidelity; equality and matching use [(uri, local)]. *)

type qname = {
  prefix : string;  (** original prefix, "" if none; serialization only *)
  uri : string;  (** namespace URI, "" if unqualified *)
  local : string;  (** local part *)
}

(** Well-known namespace URIs. *)
let xsl_uri = "http://www.w3.org/1999/XSL/Transform"

let xml_uri = "http://www.w3.org/XML/1998/namespace"
let xmlns_uri = "http://www.w3.org/2000/xmlns/"
let xdb_uri = "http://xmlns.oracle.com/xdb"

(** [qname local] is an unqualified name. *)
let qname ?(prefix = "") ?(uri = "") local = { prefix; uri; local }

(** Name equality: namespace URI + local part (prefix is ignored). *)
let qname_equal a b = String.equal a.uri b.uri && String.equal a.local b.local

(** [string_of_qname n] prints [prefix:local] or [local]. *)
let string_of_qname n =
  if n.prefix = "" then n.local else n.prefix ^ ":" ^ n.local

type node_kind =
  | Document
  | Element of qname
  | Attribute of qname * string
  | Text of string
  | Comment of string
  | Pi of string * string  (** target, data *)

type node = {
  mutable kind : node_kind;
  mutable parent : node option;
  mutable children : node list;  (** child nodes in document order *)
  mutable attributes : node list;  (** attribute nodes (elements only) *)
  mutable order : int;  (** document-order stamp; see {!val:reindex} *)
}

(** [make kind] is a fresh parentless node. *)
let make kind = { kind; parent = None; children = []; attributes = []; order = 0 }

let is_element n = match n.kind with Element _ -> true | _ -> false
let is_text n = match n.kind with Text _ -> true | _ -> false
let is_attribute n = match n.kind with Attribute _ -> true | _ -> false
let is_document n = match n.kind with Document -> true | _ -> false

(** [name n] is the expanded name of an element or attribute node. *)
let name n =
  match n.kind with
  | Element q | Attribute (q, _) -> Some q
  | Document | Text _ | Comment _ | Pi _ -> None

(** [local_name n] is the local part of the node name, "" for unnamed kinds
    (the XPath [local-name()] convention). *)
let local_name n =
  match n.kind with
  | Element q | Attribute (q, _) -> q.local
  | Pi (target, _) -> target
  | Document | Text _ | Comment _ -> ""

(** [string_value n] is the XPath string-value: concatenated descendant text
    for documents and elements; the literal value otherwise. *)
let string_value n =
  match n.kind with
  | Text s | Comment s | Attribute (_, s) | Pi (_, s) -> s
  | Document | Element _ ->
      let buf = Buffer.create 64 in
      let rec go m =
        match m.kind with
        | Text s -> Buffer.add_string buf s
        | Element _ | Document -> List.iter go m.children
        | Attribute _ | Comment _ | Pi _ -> ()
      in
      go n;
      Buffer.contents buf

(** [append_child parent child] attaches [child] as the last child. *)
let append_child parent child =
  child.parent <- Some parent;
  parent.children <- parent.children @ [ child ]

(** [set_children parent kids] replaces all children of [parent]. *)
let set_children parent kids =
  List.iter (fun k -> k.parent <- Some parent) kids;
  parent.children <- kids

(** [add_attribute el attr] attaches attribute node [attr] to element [el],
    replacing any existing attribute with the same expanded name. *)
let add_attribute el attr =
  let aname = match attr.kind with Attribute (q, _) -> q | _ -> invalid_arg "add_attribute" in
  attr.parent <- Some el;
  let others =
    List.filter
      (fun a -> match a.kind with Attribute (q, _) -> not (qname_equal q aname) | _ -> true)
      el.attributes
  in
  el.attributes <- others @ [ attr ]

(** [attribute el name] looks an attribute value up by local name (any
    namespace with matching local part when [uri] is omitted). *)
let attribute ?uri el aname =
  let matches q =
    String.equal q.local aname
    && match uri with None -> true | Some u -> String.equal q.uri u
  in
  let rec find = function
    | [] -> None
    | a :: rest -> (
        match a.kind with
        | Attribute (q, v) when matches q -> Some v
        | _ -> find rest)
  in
  find el.attributes

(** [reindex root] stamps the subtree under [root] (attributes included) with
    consecutive document-order ordinals. *)
let reindex root =
  let counter = ref 0 in
  let next () =
    incr counter;
    !counter
  in
  let rec go n =
    n.order <- next ();
    List.iter (fun a -> a.order <- next ()) n.attributes;
    List.iter go n.children
  in
  go root

(** [root_of n] walks parent links to the top of the tree containing [n]. *)
let rec root_of n = match n.parent with None -> n | Some p -> root_of p

(** Document-order comparison.  Falls back to structural path comparison when
    ordinal stamps are absent or the nodes live in different trees. *)
let compare_order a b =
  if a == b then 0
  else if a.order <> 0 && b.order <> 0 && root_of a == root_of b then
    compare a.order b.order
  else
    (* path-based: position of each ancestor among its siblings *)
    let rec path n acc =
      match n.parent with
      | None -> acc
      | Some p ->
          let rec idx i = function
            | [] ->
                (* attribute nodes: order after the element itself *)
                let rec aidx i = function
                  | [] -> -1
                  | x :: rest -> if x == n then i else aidx (i + 1) rest
                in
                1000000 + aidx 0 p.attributes
            | x :: rest -> if x == n then i else idx (i + 1) rest
          in
          path p (idx 0 p.children :: acc)
    in
    compare (path a []) (path b [])

(** [descendants n] is the list of all descendant nodes (not self),
    in document order, excluding attributes. *)
let descendants n =
  let rec go acc m = List.fold_left (fun acc c -> go (c :: acc) c) acc m.children in
  List.rev (go [] n)

(** [deep_copy n] clones the subtree rooted at [n]; the copy is parentless. *)
let rec deep_copy n =
  let copy = make n.kind in
  copy.attributes <-
    List.map
      (fun a ->
        let a' = make a.kind in
        a'.parent <- Some copy;
        a')
      n.attributes;
  copy.children <-
    List.map
      (fun c ->
        let c' = deep_copy c in
        c'.parent <- Some copy;
        c')
      n.children;
  copy

(** [deep_equal a b] compares two subtrees structurally (kind, name, value,
    attributes as sets by name, children in order). *)
let rec deep_equal a b =
  let attr_list n =
    List.filter_map
      (fun x -> match x.kind with Attribute (q, v) -> Some ((q.uri, q.local), v) | _ -> None)
      n.attributes
    |> List.sort compare
  in
  let kind_eq =
    match (a.kind, b.kind) with
    | Document, Document -> true
    | Element qa, Element qb -> qname_equal qa qb
    | Attribute (qa, va), Attribute (qb, vb) -> qname_equal qa qb && String.equal va vb
    | Text sa, Text sb | Comment sa, Comment sb -> String.equal sa sb
    | Pi (ta, da), Pi (tb, db) -> String.equal ta tb && String.equal da db
    | _ -> false
  in
  kind_eq
  && attr_list a = attr_list b
  && List.length a.children = List.length b.children
  && List.for_all2 deep_equal a.children b.children
