(** Serialization of node trees: XML, HTML and text output methods
    (mirroring the XSLT 1.0 [xsl:output method] values).

    A thin adapter over {!Events}: trees replay as output events into the
    shared serializing sink, so DOM serialization and the streaming
    output path produce byte-identical markup.  Ill-formed content
    (comments containing ["--"], PI data containing ["?>"]) raises
    {!Events.Serialize_error} instead of emitting markup that cannot
    re-parse. *)

type output_method = Events.output_method =
  | Xml  (** escaped markup, self-closing empty elements *)
  | Html  (** void elements without [/>], otherwise like XML *)
  | Text_output  (** text nodes only, unescaped *)

val escape_text : Buffer.t -> string -> unit
(** Escape [<], [>] and [&] for element content. *)

val escape_attr : Buffer.t -> string -> unit
(** Escape angle brackets, ampersands, double quotes and newlines for
    attribute values. *)

val to_string : ?meth:output_method -> ?indent:bool -> Types.node -> string
(** [to_string n] serializes the subtree at [n]. [indent] pretty-prints
    element-only content (text-bearing content is never re-indented).
    @raise Events.Serialize_error for ill-formed comment/PI content. *)

val node_list_to_string :
  ?meth:output_method -> ?indent:bool -> Types.node list -> string
(** Serialize a flat sequence of nodes (e.g. a result fragment's children).
    @raise Events.Serialize_error for ill-formed comment/PI content. *)
