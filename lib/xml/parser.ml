(** Hand-written XML 1.0 parser with namespace expansion.

    Supported: prolog ([<?xml …?>]), DOCTYPE (skipped), elements, attributes,
    character data, CDATA sections, comments, processing instructions, the
    five predefined entities plus decimal/hexadecimal character references,
    and [xmlns]/[xmlns:p] namespace declarations.

    Errors raise {!exception:Parse_error} with a 1-based line/column. *)

open Types

exception Parse_error of { line : int; col : int; message : string }

let () =
  Printexc.register_printer (function
    | Parse_error { line; col; message } ->
        Some (Printf.sprintf "XML parse error at %d:%d: %s" line col message)
    | _ -> None)

type state = {
  input : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
  mutable ns_stack : (string * string) list list;
      (** in-scope prefix→uri bindings, innermost frame first *)
}

let error st message = raise (Parse_error { line = st.line; col = st.col; message })

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st =
  (if st.pos < String.length st.input then
     match st.input.[st.pos] with
     | '\n' ->
         st.line <- st.line + 1;
         st.col <- 1
     | _ -> st.col <- st.col + 1);
  st.pos <- st.pos + 1

let next st =
  match peek st with
  | None -> error st "unexpected end of input"
  | Some c ->
      advance st;
      c

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.input && String.sub st.input st.pos n = s

let expect st s =
  if looking_at st s then String.iter (fun _ -> advance st) s
  else error st (Printf.sprintf "expected %S" s)

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_space st =
  let rec go () =
    match peek st with
    | Some c when is_space c ->
        advance st;
        go ()
    | _ -> ()
  in
  go ()

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
  | c -> Char.code c >= 0x80

let is_name_char c =
  is_name_start c || match c with '0' .. '9' | '-' | '.' -> true | _ -> false

let read_name st =
  let start = st.pos in
  (match peek st with
  | Some c when is_name_start c -> advance st
  | _ -> error st "expected a name");
  let rec go () =
    match peek st with
    | Some c when is_name_char c ->
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  String.sub st.input start (st.pos - start)

(** Split [p:l] into (prefix, local). *)
let split_colon name =
  match String.index_opt name ':' with
  | None -> ("", name)
  | Some i -> (String.sub name 0 i, String.sub name (i + 1) (String.length name - i - 1))

let resolve_prefix st prefix =
  if prefix = "xml" then Some xml_uri
  else if prefix = "xmlns" then Some xmlns_uri
  else
    let rec scan = function
      | [] -> if prefix = "" then Some "" else None
      | frame :: rest -> ( match List.assoc_opt prefix frame with Some u -> Some u | None -> scan rest)
    in
    scan st.ns_stack

let decode_entity st name =
  match name with
  | "lt" -> "<"
  | "gt" -> ">"
  | "amp" -> "&"
  | "apos" -> "'"
  | "quot" -> "\""
  | _ ->
      if String.length name > 1 && name.[0] = '#' then (
        let code =
          try
            if name.[1] = 'x' || name.[1] = 'X' then
              int_of_string ("0x" ^ String.sub name 2 (String.length name - 2))
            else int_of_string (String.sub name 1 (String.length name - 1))
          with _ -> error st (Printf.sprintf "bad character reference &%s;" name)
        in
        (* UTF-8 encode *)
        let b = Buffer.create 4 in
        if code < 0x80 then Buffer.add_char b (Char.chr code)
        else if code < 0x800 then (
          Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F))))
        else if code < 0x10000 then (
          Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F))))
        else (
          Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
          Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
          Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F))));
        Buffer.contents b)
      else error st (Printf.sprintf "unknown entity &%s;" name)

let read_entity st =
  expect st "&";
  let start = st.pos in
  let rec go () =
    match peek st with
    | Some ';' -> ()
    | Some _ ->
        advance st;
        go ()
    | None -> error st "unterminated entity reference"
  in
  go ();
  let name = String.sub st.input start (st.pos - start) in
  expect st ";";
  decode_entity st name

(** Attribute value: quoted string with entity expansion and value
    normalization (XML §3.3.3): literal tab/newline/CR become spaces,
    while the same characters written as character references survive. *)
let read_attr_value st =
  let quote = next st in
  if quote <> '"' && quote <> '\'' then error st "expected quoted attribute value";
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated attribute value"
    | Some c when c = quote -> advance st
    | Some '&' ->
        Buffer.add_string buf (read_entity st);
        go ()
    | Some '<' -> error st "'<' not allowed in attribute value"
    | Some ('\t' | '\n' | '\r') ->
        advance st;
        Buffer.add_char buf ' ';
        go ()
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let read_comment st =
  expect st "<!--";
  let start = st.pos in
  let rec go () =
    if looking_at st "-->" then (
      let s = String.sub st.input start (st.pos - start) in
      expect st "-->";
      s)
    else if peek st = None then error st "unterminated comment"
    else (
      advance st;
      go ())
  in
  go ()

let read_cdata st =
  expect st "<![CDATA[";
  let start = st.pos in
  let rec go () =
    if looking_at st "]]>" then (
      let s = String.sub st.input start (st.pos - start) in
      expect st "]]>";
      s)
    else if peek st = None then error st "unterminated CDATA section"
    else (
      advance st;
      go ())
  in
  go ()

let read_pi st =
  expect st "<?";
  let target = read_name st in
  skip_space st;
  let start = st.pos in
  let rec go () =
    if looking_at st "?>" then (
      let s = String.sub st.input start (st.pos - start) in
      expect st "?>";
      s)
    else if peek st = None then error st "unterminated processing instruction"
    else (
      advance st;
      go ())
  in
  let data = go () in
  (target, data)

let skip_doctype st =
  expect st "<!DOCTYPE";
  (* skip until the matching '>' allowing one level of [...] *)
  let rec go depth =
    match next st with
    | '[' -> go (depth + 1)
    | ']' -> go (depth - 1)
    | '>' when depth = 0 -> ()
    | _ -> go depth
  in
  go 0

(** Raw attribute list: [(name, value)] pairs, pre namespace expansion. *)
let read_raw_attributes st =
  let rec go acc =
    skip_space st;
    match peek st with
    | Some c when is_name_start c ->
        let aname = read_name st in
        skip_space st;
        expect st "=";
        skip_space st;
        let v = read_attr_value st in
        go ((aname, v) :: acc)
    | _ -> List.rev acc
  in
  go []

let rec read_element st =
  expect st "<";
  let raw_name = read_name st in
  let raw_attrs = read_raw_attributes st in
  (* collect namespace declarations into a new scope frame *)
  let decls =
    List.filter_map
      (fun (n, v) ->
        if n = "xmlns" then Some ("", v)
        else
          let p, l = split_colon n in
          if p = "xmlns" then Some (l, v) else None)
      raw_attrs
  in
  st.ns_stack <- decls :: st.ns_stack;
  let prefix, local = split_colon raw_name in
  let uri =
    match resolve_prefix st prefix with
    | Some u -> u
    | None -> error st (Printf.sprintf "undeclared namespace prefix %S" prefix)
  in
  let el = make (Element { prefix; uri; local }) in
  List.iter
    (fun (n, v) ->
      let p, l = split_colon n in
      if n = "xmlns" || p = "xmlns" then
        (* keep declarations as attributes for round-tripping *)
        add_attribute el (make (Attribute ({ prefix = p; uri = xmlns_uri; local = l }, v)))
      else
        let auri =
          if p = "" then "" (* default ns does not apply to attributes *)
          else
            match resolve_prefix st p with
            | Some u -> u
            | None -> error st (Printf.sprintf "undeclared namespace prefix %S" p)
        in
        add_attribute el (make (Attribute ({ prefix = p; uri = auri; local = l }, v))))
    raw_attrs;
  skip_space st;
  (if looking_at st "/>" then expect st "/>"
   else (
     expect st ">";
     read_content st el;
     expect st "</";
     let close = read_name st in
     if close <> raw_name then
       error st (Printf.sprintf "mismatched closing tag </%s>, expected </%s>" close raw_name);
     skip_space st;
     expect st ">"));
  st.ns_stack <- (match st.ns_stack with _ :: rest -> rest | [] -> []);
  el

and read_content st parent =
  (* children accumulate in reverse and are attached once: keeps document
     loading linear in size *)
  let buf = Buffer.create 32 in
  let acc = ref [] in
  let flush_text () =
    if Buffer.length buf > 0 then (
      acc := make (Text (Buffer.contents buf)) :: !acc;
      Buffer.clear buf)
  in
  let rec go () =
    match peek st with
    | None -> error st "unexpected end of input inside element"
    | Some '<' ->
        if looking_at st "</" then flush_text ()
        else if looking_at st "<!--" then (
          flush_text ();
          let c = read_comment st in
          acc := make (Comment c) :: !acc;
          go ())
        else if looking_at st "<![CDATA[" then (
          Buffer.add_string buf (read_cdata st);
          go ())
        else if looking_at st "<?" then (
          flush_text ();
          let t, d = read_pi st in
          acc := make (Pi (t, d)) :: !acc;
          go ())
        else (
          flush_text ();
          let child = read_element st in
          acc := child :: !acc;
          go ())
    | Some '&' ->
        Buffer.add_string buf (read_entity st);
        go ()
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  set_children parent (List.rev !acc)

(** [parse s] parses a complete document and returns its document node.
    Whitespace-only text between the prolog and the root is dropped. *)
let parse s =
  let st = { input = s; pos = 0; line = 1; col = 1; ns_stack = [] } in
  let doc = make Document in
  skip_space st;
  if looking_at st "<?xml" then ignore (read_pi st);
  let rec prolog () =
    skip_space st;
    if looking_at st "<!--" then (
      append_child doc (make (Comment (read_comment st)));
      prolog ())
    else if looking_at st "<!DOCTYPE" then (
      skip_doctype st;
      prolog ())
    else if looking_at st "<?" then (
      let t, d = read_pi st in
      append_child doc (make (Pi (t, d)));
      prolog ())
  in
  prolog ();
  skip_space st;
  if not (looking_at st "<") then error st "expected root element";
  let root = read_element st in
  append_child doc root;
  skip_space st;
  (* trailing comments / PIs *)
  let rec epilogue () =
    skip_space st;
    if looking_at st "<!--" then (
      append_child doc (make (Comment (read_comment st)));
      epilogue ())
    else if looking_at st "<?" then (
      let t, d = read_pi st in
      append_child doc (make (Pi (t, d)));
      epilogue ())
  in
  epilogue ();
  skip_space st;
  if st.pos <> String.length st.input then error st "trailing content after document element";
  reindex doc;
  doc

(** [parse_fragment s] parses content that may have several top-level nodes
    (wraps it in a synthetic document node). *)
let parse_fragment s = parse ("<xdb-fragment-wrapper>" ^ s ^ "</xdb-fragment-wrapper>")

(** Root element of a parsed document. *)
let document_element doc =
  match List.find_opt is_element doc.children with
  | Some e -> e
  | None -> invalid_arg "document_element: no element child"
