(** Convenience construction API for node trees. *)

val elem :
  ?uri:string ->
  ?prefix:string ->
  ?attrs:(string * string) list ->
  string ->
  Types.node list ->
  Types.node
(** [elem name children] builds an element node with the given attributes
    and children (parent links are set). *)

val text : string -> Types.node
val comment : string -> Types.node
val pi : string -> string -> Types.node

val attr : string -> string -> Types.node
(** [attr name value] builds a detached attribute node. *)

val document : Types.node -> Types.node
(** [document root] wraps [root] in a document node and stamps the tree
    with document-order ordinals. *)

val document_of_nodes : Types.node list -> Types.node
(** Wrap several top-level nodes in one document node. *)
