(** Streaming output events: SAX-style result construction.

    Producers push {!event}s into a {!sink}; the {b serializing sink}
    writes markup straight into a [Buffer.t] (run-based escaping, indent
    and XML/HTML/text output-method rules, byte-identical to serializing
    the equivalent DOM), while the {b tree builder} turns the same events
    into {!Types.node} trees.  Every result-construction path in the
    system routes through this module, so output exists as a stream or as
    a DOM behind one interface. *)

exception Serialize_error of string
(** Raised for events that cannot form well-formed output: comment
    content containing ["--"] or ending with ["-"], processing-instruction
    data containing ["?>"] (XML 1.0 §2.5/§2.6), attributes arriving after
    element content, and unbalanced [End_element]s. *)

type output_method =
  | Xml  (** escaped markup, self-closing empty elements *)
  | Html  (** void elements without [/>], otherwise like XML *)
  | Text_output  (** text runs only, unescaped; markup events are ignored *)

type event =
  | Start_element of Types.qname
  | Attr of Types.qname * string
      (** must directly follow [Start_element] (before any content), or
          appear at top level where it renders as a standalone attribute *)
  | Text of string
  | Comment of string
  | Pi of string * string  (** target, data *)
  | End_element

type sink = {
  emit : event -> unit;
  finish : unit -> unit;
      (** call exactly once after the last event; validates balance and,
          for the indented serializing sink, performs the deferred render *)
}

val escape_text : Buffer.t -> string -> unit
(** Escape [<], [>] and [&] for element content. *)

val escape_attr : Buffer.t -> string -> unit
(** Escape angle brackets, ampersands, double quotes and whitespace
    (as character references) for attribute values. *)

val html_void : string list
(** HTML void elements: rendered without closing tag or [/>]. *)

val is_html_void : string -> bool

val serializing_sink : ?meth:output_method -> ?indent:bool -> Buffer.t -> sink
(** A sink serializing events into [buf].  With [indent:false] (the
    default) events stream straight to the buffer; with [indent:true]
    events buffer internally and render on [finish] (indentation needs
    child lookahead).  Defaults: [meth = Xml].
    @raise Serialize_error for ill-formed event streams (see above). *)

val to_string : ?meth:output_method -> ?indent:bool -> (sink -> unit) -> string
(** [to_string produce] — run [produce] against a fresh serializing sink
    and return the buffer contents ([finish] included). *)

(** {1 Tree building} *)

type builder
(** Event consumer building {!Types.node} trees — the single construction
    path shared by the XSLTVM, the XQuery evaluator and the SQL/XML
    constructors' DOM mode. *)

val tree_builder : ?merge_text:bool -> ?drop_top_attrs:bool -> unit -> builder
(** [merge_text] (default false) merges adjacent text events and drops
    empty ones — the XSLTVM's result-tree semantics; constructors keep it
    off to preserve node shapes.  [drop_top_attrs] (default false) drops
    attribute events at top level (XSLT's error recovery) instead of
    keeping them as standalone attribute nodes. *)

val builder_sink : builder -> sink
(** The builder as a {!sink} ([finish] is a no-op). *)

val builder_emit : builder -> event -> unit
(** Direct event push (avoids going through the closure record).
    @raise Serialize_error for attributes after element content or
    unbalanced [End_element]. *)

val builder_add_node : builder -> Types.node -> unit
(** Adopt an existing node (no copy) as content at the current position;
    attribute nodes follow the same placement rules as [Attr] events.
    The caller is responsible for copying shared nodes first. *)

val builder_result : builder -> Types.node list
(** The completed top-level forest, in order.
    @raise Serialize_error if elements remain open. *)

(** {1 DOM → events} *)

val emit_tree : sink -> Types.node -> unit
(** Replay a subtree as events (document nodes flatten to their
    children).  Into a tree builder this is a deep copy; into a
    serializing sink it is exactly the DOM serializer. *)

val emit_forest : sink -> Types.node list -> unit
