(** Recursive-descent parser for XPath 1.0 expressions (W3C grammar;
    precedence from loosest to tightest: or, and, equality, relational,
    additive, multiplicative, unary minus, union, path). *)

exception Parse_error of string

val axis_of_name : string -> Ast.axis option
(** Axis by its XPath name ("child", "ancestor-or-self", …). *)

val parse : string -> Ast.expr
(** Parse a complete expression.
    @raise Parse_error (or {!Lexer.Lex_error}) on malformed input. *)
