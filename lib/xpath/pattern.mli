(** XSLT 1.0 match patterns (XSLT 1.0 §5.2) over the XPath AST: a union of
    location-path patterns restricted to the [child]/[attribute] axes plus
    the [//] abbreviation, matched right-to-left.  Default priorities
    follow XSLT 1.0 §5.5. *)

exception Invalid_pattern of string

type step_link = Direct_child | Any_ancestor

type pattern_path = {
  from_root : bool;  (** pattern anchored at the document node *)
  rev_steps : (Ast.step * step_link) list;
      (** steps right-to-left; each link joins a step to the one on its
          left *)
}

type t = { source : string; alternatives : pattern_path list }

val parse : string -> t
(** Parse and validate pattern syntax. @raise Invalid_pattern when the
    expression is not a legal match pattern. *)

(** Node operations the right-to-left matcher needs; abstracting over the
    node representation lets the DOM interpreter and the shredded row
    store ([Xdb_rel.Shred]) run the same matching algorithm. *)
type 'a node_ops = {
  no_parent : 'a -> 'a option;
  no_is_document : 'a -> bool;
  no_test : Ast.axis -> Ast.node_test -> 'a -> bool;
  no_predicates_hold : Ast.step -> 'a -> bool;
      (** do the step's predicates hold for the node, evaluated among the
          candidate siblings reachable from its parent by the step's axis
          and test (positional rules included)? *)
}

val matches_gen : 'a node_ops -> t -> 'a -> bool
(** The representation-generic matcher: does the node match the pattern? *)

val matches : Eval.context -> t -> Xdb_xml.Types.node -> bool
(** Does the node match the pattern? The context supplies variable
    bindings for pattern predicates.  ({!matches_gen} over DOM nodes.) *)

val split : t -> (t * float) list
(** Split a union pattern into single-alternative patterns, each with its
    default priority (XSLT treats a union template as separate rules). *)

val dispatch_key :
  t -> [ `Name of string | `Any_element | `Text | `Comment | `Pi | `Root ] option
(** Hash bucket the pattern's last step can match, for template dispatch
    tables; [None] = could match any node kind. *)

val to_string : t -> string
