(** XSLT 1.0 match patterns (XSLT 1.0 §5.2) over the XPath AST: a union of
    location-path patterns restricted to the [child]/[attribute] axes plus
    the [//] abbreviation, matched right-to-left.  Default priorities
    follow XSLT 1.0 §5.5. *)

exception Invalid_pattern of string

type step_link = Direct_child | Any_ancestor

type pattern_path = {
  from_root : bool;  (** pattern anchored at the document node *)
  rev_steps : (Ast.step * step_link) list;
      (** steps right-to-left; each link joins a step to the one on its
          left *)
}

type t = { source : string; alternatives : pattern_path list }

val parse : string -> t
(** Parse and validate pattern syntax. @raise Invalid_pattern when the
    expression is not a legal match pattern. *)

val matches : Eval.context -> t -> Xdb_xml.Types.node -> bool
(** Does the node match the pattern? The context supplies variable
    bindings for pattern predicates. *)

val split : t -> (t * float) list
(** Split a union pattern into single-alternative patterns, each with its
    default priority (XSLT treats a union template as separate rules). *)

val dispatch_key :
  t -> [ `Name of string | `Any_element | `Text | `Comment | `Pi | `Root ] option
(** Hash bucket the pattern's last step can match, for template dispatch
    tables; [None] = could match any node kind. *)

val to_string : t -> string
