(** XPath 1.0 value model and type conversions (XPath 1.0 §3.2, §4). *)

type t =
  | Nodes of Xdb_xml.Types.node list
      (** node-set in document order, duplicates removed *)
  | Bool of bool
  | Num of float
  | Str of string

val type_name : t -> string

val sort_nodes : Xdb_xml.Types.node list -> Xdb_xml.Types.node list
(** Document-order sort + physical deduplication. *)

val nodes : Xdb_xml.Types.node list -> t
(** Node-set constructor ({!sort_nodes} applied). *)

val string_of_number : float -> string
(** XPath number→string: integers bare, NaN/Infinity spelled out. *)

val number_of_string : string -> float
(** XPath string→number: trimmed; NaN on failure. *)

val round_number : float -> float
(** XPath 1.0 §4.4 [round()]: half rounds up, except that arguments in
    [[-0.5, 0)] return negative zero; NaN, ±∞ and ±0 pass through. *)

val string_value : t -> string
(** The [string()] conversion (first node's string-value for node-sets). *)

val number_value : t -> float
(** The [number()] conversion. *)

val boolean_value : t -> bool
(** The [boolean()] conversion. *)

val node_set : t -> Xdb_xml.Types.node list
(** @raise Invalid_argument when the value is not a node-set. *)

val compare_values : [ `Eq | `Neq | `Lt | `Leq | `Gt | `Geq ] -> t -> t -> bool
(** XPath 1.0 §3.4 comparison semantics, existential over node-sets. *)
