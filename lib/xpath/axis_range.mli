(** Compilation of XPath location steps to pre/post interval conditions.

    With interval ("pre/post") numbering of a document — [pre] assigned on
    node entry, [post] on exit, from one shared counter — every axis is a
    conjunction of comparisons between a candidate node's columns and the
    context node's values: child is [parent = ctx.pre], descendant is
    [pre ∈ (ctx.pre, ctx.post)], ancestor is the inverse containment.
    This module is the pure translation (axis, node test) → condition
    list; the relational layer maps conditions onto B-tree-indexed
    columns (see [Xdb_rel.Shred]).  Consumers read a compiled {!spec}
    two ways: [Shred]'s per-context plans bind the conditions as
    correlated sargable conjuncts (one plan open per context node),
    while its set-at-a-time batch evaluator uses the same spec as the
    row filter of one merged pass over a whole sorted context
    (staircase interval sweeps, merged parent probes). *)

(** Candidate-row column a condition constrains. *)
type col = Pre | Post | Parent

(** Context-node value the column is compared against. *)
type anchor = Ctx_pre | Ctx_post | Ctx_parent

type op = Eq | Lt | Leq | Gt | Geq

type cond = { col : col; op : op; anchor : anchor }

(** Node-kind restriction implied by the axis's principal node kind and
    the node test.  [K_non_attr] is [node()] on a principal-element axis:
    any kind except attributes. *)
type kind_filter = K_elem | K_attr | K_text | K_comment | K_pi | K_non_attr

type spec = {
  conds : cond list;  (** conjunctive; all within the context document *)
  kinds : kind_filter;
  name : string option;
      (** required element/attribute local name, or PI target *)
  reverse : bool;
      (** reverse axis: candidates (which arrive in document order from an
          ascending range scan) must be reversed for proximity order *)
  attr_ok : bool;
      (** whether the conditions are also correct from an attribute
          context node (sibling/following/preceding are not: attributes
          take pre values inside their owner's interval, so the interval
          arithmetic would disagree with the sibling-less DOM semantics) *)
}

val compile : Ast.axis -> Ast.node_test -> spec option
(** [None] when the step is statically empty (the namespace axis, or a
    node test the axis's principal kind can never satisfy). *)

val cond_to_string : cond -> string
(** Debug rendering, e.g. ["pre > ctx.pre"]. *)
