(** XPath 1.0 evaluator: all thirteen axes, predicates with proximity
    position, the core function library, and extension-function hooks used
    by the XSLT layer ([current()], [key()], [generate-id()], …). *)

module T = Xdb_xml.Types
open Ast

exception Eval_error of string

let err fmt = Printf.ksprintf (fun m -> raise (Eval_error m)) fmt

module Smap = Map.Make (String)

type context = {
  node : T.node;
  position : int;  (** 1-based proximity position *)
  size : int;
  vars : Value.t Smap.t;
  extensions : (string * extension) list;
      (** extra functions, looked up after the core library *)
  current : T.node option;  (** XSLT current() node *)
  assume_predicates : bool;
      (** partial-evaluation mode (paper §4.1): value predicates are
          conservatively assumed true *)
}

and extension = context -> Value.t list -> Value.t

let make_context ?(vars = Smap.empty) ?(extensions = []) ?(assume_predicates = false) ?current
    node =
  { node; position = 1; size = 1; vars; extensions; current; assume_predicates }

let bind_var ctx name v = { ctx with vars = Smap.add name v ctx.vars }

(* ------------------------------------------------------------------ *)
(* Axes                                                               *)
(* ------------------------------------------------------------------ *)

(* nearest-first (reverse document order): parent, grandparent, …, root *)
let rec ancestors n acc =
  match n.T.parent with None -> List.rev acc | Some p -> ancestors p (p :: acc)

(* nodes yielded in axis order (reverse axes yield reverse document order,
   i.e. proximity order, which is what positional predicates count in;
   [eval_step] re-sorts final node-sets to document order afterwards) *)
let axis_nodes axis n =
  match axis with
  | Self -> [ n ]
  | Child -> n.T.children
  | Parent -> ( match n.T.parent with None -> [] | Some p -> [ p ])
  | Attribute -> n.T.attributes
  | Namespace -> []
  | Descendant -> T.descendants n
  | Descendant_or_self -> n :: T.descendants n
  | Ancestor -> ancestors n []
  | Ancestor_or_self -> n :: ancestors n []
  | Following_sibling -> (
      match n.T.parent with
      | None -> []
      | Some p ->
          let rec after = function
            | [] -> []
            | x :: rest -> if x == n then rest else after rest
          in
          after p.T.children)
  | Preceding_sibling -> (
      match n.T.parent with
      | None -> []
      | Some p ->
          let rec before acc = function
            | [] -> acc
            | x :: rest -> if x == n then acc else before (x :: acc) rest
          in
          before [] p.T.children)
  | Following ->
      (* all nodes after n in document order, excluding descendants *)
      let rec collect m acc =
        match m.T.parent with
        | None -> acc
        | Some p ->
            let rec after = function
              | [] -> []
              | x :: rest -> if x == m then rest else after rest
            in
            let sibs = after p.T.children in
            let here =
              List.concat_map (fun s -> s :: T.descendants s) sibs
            in
            collect p (acc @ here)
      in
      collect n []
  | Preceding ->
      let ancs = ancestors n [] in
      let rec collect m acc =
        match m.T.parent with
        | None -> acc
        | Some p ->
            let rec before bcc = function
              | [] -> bcc
              | x :: rest -> if x == m then bcc else before (x :: bcc) rest
            in
            let sibs = before [] p.T.children (* reverse doc order *) in
            let here =
              List.concat_map (fun s -> List.rev (s :: T.descendants s)) sibs
            in
            collect p (acc @ here)
      in
      List.filter (fun x -> not (List.memq x ancs)) (collect n [])

let principal_is_element = function Attribute | Namespace -> false | _ -> true

let test_matches axis test (n : T.node) =
  match test with
  | Star -> (
      match n.T.kind with
      | T.Element _ -> principal_is_element axis
      | T.Attribute _ -> not (principal_is_element axis)
      | _ -> false)
  | Prefix_star _ -> (
      (* without a prefix environment we match any namespace *)
      match n.T.kind with
      | T.Element _ -> principal_is_element axis
      | T.Attribute _ -> not (principal_is_element axis)
      | _ -> false)
  | Name_test (_, local) -> (
      match n.T.kind with
      | T.Element q -> principal_is_element axis && String.equal q.local local
      | T.Attribute (q, _) -> (not (principal_is_element axis)) && String.equal q.local local
      | _ -> false)
  | Node_type_test Any_node -> true
  | Node_type_test Text_node -> T.is_text n
  | Node_type_test Comment_node -> ( match n.T.kind with T.Comment _ -> true | _ -> false)
  | Node_type_test (Pi_node target) -> (
      match n.T.kind with
      | T.Pi (t, _) -> ( match target with None -> true | Some tg -> String.equal t tg)
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Core function library                                              *)
(* ------------------------------------------------------------------ *)

let fn_arity name n_expected n_given =
  if n_expected <> n_given then
    err "function %s expects %d argument(s), got %d" name n_expected n_given

let substring_xpath s start len_opt =
  (* XPath substring(): 1-based, rounding, NaN handling *)
  let n = String.length s in
  let round f = Float.round f in
  let start = round start in
  if Float.is_nan start then ""
  else
    let finish =
      match len_opt with
      | None -> Float.of_int (n + 1)
      | Some l -> if Float.is_nan l then Float.nan else start +. round l
    in
    if Float.is_nan finish then ""
    else
      let lo = int_of_float (Float.max start 1.0) in
      let hi =
        if finish = Float.infinity then n + 1
        else int_of_float (Float.min finish (Float.of_int (n + 1)))
      in
      if hi <= lo then "" else String.sub s (lo - 1) (hi - lo)

let translate_xpath s from_s to_s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match String.index_opt from_s c with
      | None -> Buffer.add_char buf c
      | Some i -> if i < String.length to_s then Buffer.add_char buf to_s.[i])
    s;
  Buffer.contents buf

let normalize_space s =
  let words =
    String.split_on_char ' ' (String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s)
  in
  String.concat " " (List.filter (fun w -> w <> "") words)

(** XSLT 1.0 format-number() picture handling (§12.3): [0] and [#] digit
    slots, [.] decimal point, [,] grouping separators, [%] percent, and a
    [;]-separated negative subpattern. *)
let format_number (value : float) (picture : string) : string =
  if Float.is_nan value then "NaN"
  else if value = Float.infinity then "Infinity"
  else if value = Float.neg_infinity then "-Infinity"
  else
    let positive, negative =
      match String.index_opt picture ';' with
      | Some i ->
          ( String.sub picture 0 i,
            Some (String.sub picture (i + 1) (String.length picture - i - 1)) )
      | None -> (picture, None)
    in
    let render sub v =
      let percent = String.contains sub '%' in
      let v = if percent then v *. 100.0 else v in
      (* literal prefix/suffix around the digit grammar *)
      let is_digit_char c = c = '0' || c = '#' || c = '.' || c = ',' in
      let len = String.length sub in
      let first =
        let rec go i = if i >= len then len else if is_digit_char sub.[i] then i else go (i + 1) in
        go 0
      in
      let last =
        let rec go i = if i < 0 then -1 else if is_digit_char sub.[i] then i else go (i - 1) in
        go (len - 1)
      in
      let prefix = if first > 0 then String.sub sub 0 first else "" in
      let suffix = if last >= 0 && last < len - 1 then String.sub sub (last + 1) (len - 1 - last) else "" in
      let prefix = String.concat "" (List.filter (fun c -> c <> "%") (List.init (String.length prefix) (fun i -> String.make 1 prefix.[i]))) in
      let core = if last >= first then String.sub sub first (last - first + 1) else "0" in
      let sub = core in
      (* split the subpicture at the decimal point *)
      let int_pic, frac_pic =
        match String.index_opt sub '.' with
        | Some i -> (String.sub sub 0 i, String.sub sub (i + 1) (String.length sub - i - 1))
        | None -> (sub, "")
      in
      let count c s = String.fold_left (fun n x -> if x = c then n + 1 else n) 0 s in
      let min_int = count '0' int_pic in
      let min_frac = count '0' frac_pic in
      let max_frac = min_frac + count '#' frac_pic in
      (* grouping size: digits between the last ',' and the decimal point *)
      let group_size =
        match String.rindex_opt int_pic ',' with
        | Some i ->
            let tail = String.sub int_pic (i + 1) (String.length int_pic - i - 1) in
            let n = count '0' tail + count '#' tail in
            if n > 0 then Some n else None
        | None -> None
      in
      let scaled = Float.abs v in
      let rounded =
        let m = Float.of_int (int_of_float (10.0 ** Float.of_int max_frac)) in
        if max_frac = 0 then Float.round scaled else Float.round (scaled *. m) /. m
      in
      let int_part = Float.to_int rounded in
      let frac_value = rounded -. Float.of_int int_part in
      let int_str =
        let raw = string_of_int int_part in
        let raw = if String.length raw < min_int then String.make (min_int - String.length raw) '0' ^ raw else raw in
        match group_size with
        | None -> raw
        | Some g ->
            let buf = Buffer.create 16 in
            let len = String.length raw in
            String.iteri
              (fun i c ->
                if i > 0 && (len - i) mod g = 0 then Buffer.add_char buf ',';
                Buffer.add_char buf c)
              raw;
            Buffer.contents buf
      in
      let frac_str =
        if max_frac = 0 then ""
        else
          let digits =
            Printf.sprintf "%.*f" max_frac frac_value
            |> fun s -> String.sub s 2 (String.length s - 2)
          in
          (* trim optional (#) trailing zeros down to min_frac *)
          let rec trim s =
            if String.length s > min_frac && s.[String.length s - 1] = '0' then
              trim (String.sub s 0 (String.length s - 1))
            else s
          in
          trim digits
      in
      let body = if frac_str = "" then int_str else int_str ^ "." ^ frac_str in
      prefix ^ body ^ suffix
    in
    if value < 0.0 then
      match negative with
      | Some sub -> render sub value
      | None -> "-" ^ render positive value
    else render positive value

let generate_id n =
  (* stable within a tree thanks to ordinal stamps; fall back to address *)
  if n.T.order <> 0 then Printf.sprintf "id%d" n.T.order
  else Printf.sprintf "idx%d" (Hashtbl.hash (Obj.repr n))

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                              *)
(* ------------------------------------------------------------------ *)

let rec eval ctx expr : Value.t =
  match expr with
  | Literal s -> Value.Str s
  | Number f -> Value.Num f
  | Var v -> (
      match Smap.find_opt v ctx.vars with
      | Some value -> value
      | None -> err "unbound variable $%s" v)
  | Neg e -> Value.Num (-.Value.number_value (eval ctx e))
  | Binop (Or, a, b) ->
      Value.Bool (Value.boolean_value (eval ctx a) || Value.boolean_value (eval ctx b))
  | Binop (And, a, b) ->
      Value.Bool (Value.boolean_value (eval ctx a) && Value.boolean_value (eval ctx b))
  | Binop (Eq, a, b) -> Value.Bool (Value.compare_values `Eq (eval ctx a) (eval ctx b))
  | Binop (Neq, a, b) -> Value.Bool (Value.compare_values `Neq (eval ctx a) (eval ctx b))
  | Binop (Lt, a, b) -> Value.Bool (Value.compare_values `Lt (eval ctx a) (eval ctx b))
  | Binop (Leq, a, b) -> Value.Bool (Value.compare_values `Leq (eval ctx a) (eval ctx b))
  | Binop (Gt, a, b) -> Value.Bool (Value.compare_values `Gt (eval ctx a) (eval ctx b))
  | Binop (Geq, a, b) -> Value.Bool (Value.compare_values `Geq (eval ctx a) (eval ctx b))
  | Binop (Plus, a, b) ->
      Value.Num (Value.number_value (eval ctx a) +. Value.number_value (eval ctx b))
  | Binop (Minus, a, b) ->
      Value.Num (Value.number_value (eval ctx a) -. Value.number_value (eval ctx b))
  | Binop (Mul, a, b) ->
      Value.Num (Value.number_value (eval ctx a) *. Value.number_value (eval ctx b))
  | Binop (Div, a, b) ->
      Value.Num (Value.number_value (eval ctx a) /. Value.number_value (eval ctx b))
  | Binop (Mod, a, b) ->
      Value.Num (Float.rem (Value.number_value (eval ctx a)) (Value.number_value (eval ctx b)))
  | Binop (Union, a, b) ->
      let na = Value.node_set (eval ctx a) and nb = Value.node_set (eval ctx b) in
      Value.nodes (na @ nb)
  | Call (name, args) -> eval_call ctx name args
  | Path p -> Value.Nodes (eval_path ctx p)
  | Filter (primary, preds, steps) -> (
      let v = eval ctx primary in
      match (preds, steps) with
      | [], [] -> v
      | _ ->
          let ns = Value.node_set v in
          let ns = List.fold_left (fun ns p -> filter_predicate ctx ns p) ns preds in
          Value.Nodes (eval_steps ctx ns steps))

and eval_path ctx p =
  let start = if p.absolute then [ T.root_of ctx.node ] else [ ctx.node ] in
  eval_steps ctx start p.steps

and eval_steps ctx start steps =
  List.fold_left (fun nodes step -> eval_step ctx nodes step) start steps

and eval_step ctx nodes step =
  let result =
    List.concat_map
      (fun n ->
        let candidates = axis_nodes step.axis n in
        let matching = List.filter (test_matches step.axis step.test) candidates in
        List.fold_left (fun ns pred -> filter_predicate ctx ns pred) matching step.predicates)
      nodes
  in
  Value.sort_nodes result

and filter_predicate ctx nodes pred =
  (* [nodes] must arrive in axis (proximity) order: document order for
     forward axes, reverse document order for reverse axes — which is what
     {!axis_nodes} yields — so the proximity position is just [i + 1] *)
  if ctx.assume_predicates then nodes
  else
    let size = List.length nodes in
    List.filteri
      (fun i n ->
        let ctx' = { ctx with node = n; position = i + 1; size } in
        match eval ctx' pred with
        | Value.Num f -> Float.of_int (i + 1) = f
        | v -> Value.boolean_value v)
      nodes

and eval_call ctx name args =
  let v i = eval ctx (List.nth args i) in
  let nargs = List.length args in
  let str_arg i = Value.string_value (v i) in
  let num_arg i = Value.number_value (v i) in
  match name with
  | "last" ->
      fn_arity name 0 nargs;
      Value.Num (Float.of_int ctx.size)
  | "position" ->
      fn_arity name 0 nargs;
      Value.Num (Float.of_int ctx.position)
  | "count" ->
      fn_arity name 1 nargs;
      Value.Num (Float.of_int (List.length (Value.node_set (v 0))))
  | "id" ->
      fn_arity name 1 nargs;
      (* minimal: match elements whose 'id' attribute equals a token *)
      let tokens =
        match v 0 with
        | Value.Nodes ns -> List.concat_map (fun n -> String.split_on_char ' ' (T.string_value n)) ns
        | other -> String.split_on_char ' ' (Value.string_value other)
      in
      let root = T.root_of ctx.node in
      let all = root :: T.descendants root in
      Value.nodes
        (List.filter
           (fun n ->
             match T.attribute n "id" with Some x -> List.mem x tokens | None -> false)
           (List.filter T.is_element all))
  | "local-name" | "name" ->
      if nargs > 1 then err "function %s expects at most 1 argument" name;
      let target =
        if nargs = 0 then Some ctx.node
        else match Value.node_set (v 0) with [] -> None | n :: _ -> Some n
      in
      Value.Str
        (match target with
        | None -> ""
        | Some n -> (
            match (name, n.T.kind) with
            | "name", (T.Element q | T.Attribute (q, _)) -> T.string_of_qname q
            | _ -> T.local_name n))
  | "namespace-uri" ->
      let target =
        if nargs = 0 then Some ctx.node
        else match Value.node_set (v 0) with [] -> None | n :: _ -> Some n
      in
      Value.Str
        (match target with
        | Some { T.kind = T.Element q | T.Attribute (q, _); _ } -> q.uri
        | _ -> "")
  | "string" ->
      if nargs = 0 then Value.Str (T.string_value ctx.node) else Value.Str (str_arg 0)
  | "concat" ->
      if nargs < 2 then err "concat expects at least 2 arguments";
      Value.Str (String.concat "" (List.map (fun e -> Value.string_value (eval ctx e)) args))
  | "starts-with" ->
      fn_arity name 2 nargs;
      let s = str_arg 0 and p = str_arg 1 in
      Value.Bool (String.length s >= String.length p && String.sub s 0 (String.length p) = p)
  | "contains" ->
      fn_arity name 2 nargs;
      let s = str_arg 0 and sub = str_arg 1 in
      let found =
        if sub = "" then true
        else
          let ls = String.length s and lb = String.length sub in
          let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
          go 0
      in
      Value.Bool found
  | "substring-before" ->
      fn_arity name 2 nargs;
      let s = str_arg 0 and sub = str_arg 1 in
      let ls = String.length s and lb = String.length sub in
      let rec go i = if i + lb > ls then None else if String.sub s i lb = sub then Some i else go (i + 1) in
      Value.Str (match if lb = 0 then Some 0 else go 0 with Some i -> String.sub s 0 i | None -> "")
  | "substring-after" ->
      fn_arity name 2 nargs;
      let s = str_arg 0 and sub = str_arg 1 in
      let ls = String.length s and lb = String.length sub in
      let rec go i = if i + lb > ls then None else if String.sub s i lb = sub then Some i else go (i + 1) in
      Value.Str
        (match if lb = 0 then Some 0 else go 0 with
        | Some i -> String.sub s (i + lb) (ls - i - lb)
        | None -> "")
  | "substring" ->
      if nargs <> 2 && nargs <> 3 then err "substring expects 2 or 3 arguments";
      Value.Str
        (substring_xpath (str_arg 0) (num_arg 1) (if nargs = 3 then Some (num_arg 2) else None))
  | "string-length" ->
      if nargs > 1 then err "string-length expects at most 1 argument";
      let s = if nargs = 0 then T.string_value ctx.node else str_arg 0 in
      Value.Num (Float.of_int (String.length s))
  | "normalize-space" ->
      if nargs > 1 then err "normalize-space expects at most 1 argument";
      let s = if nargs = 0 then T.string_value ctx.node else str_arg 0 in
      Value.Str (normalize_space s)
  | "translate" ->
      fn_arity name 3 nargs;
      Value.Str (translate_xpath (str_arg 0) (str_arg 1) (str_arg 2))
  | "boolean" ->
      fn_arity name 1 nargs;
      Value.Bool (Value.boolean_value (v 0))
  | "not" ->
      fn_arity name 1 nargs;
      Value.Bool (not (Value.boolean_value (v 0)))
  | "true" ->
      fn_arity name 0 nargs;
      Value.Bool true
  | "false" ->
      fn_arity name 0 nargs;
      Value.Bool false
  | "lang" ->
      fn_arity name 1 nargs;
      let wanted = String.lowercase_ascii (str_arg 0) in
      let rec find n =
        match T.attribute ~uri:T.xml_uri n "lang" with
        | Some l ->
            let l = String.lowercase_ascii l in
            Some (l = wanted || (String.length l > String.length wanted
                                 && String.sub l 0 (String.length wanted) = wanted
                                 && l.[String.length wanted] = '-'))
        | None -> ( match n.T.parent with None -> None | Some p -> find p)
      in
      Value.Bool (match find ctx.node with Some b -> b | None -> false)
  | "number" ->
      if nargs > 1 then err "number expects at most 1 argument";
      if nargs = 0 then Value.Num (Value.number_of_string (T.string_value ctx.node))
      else Value.Num (num_arg 0)
  | "sum" ->
      fn_arity name 1 nargs;
      let ns = Value.node_set (v 0) in
      Value.Num
        (List.fold_left (fun acc n -> acc +. Value.number_of_string (T.string_value n)) 0.0 ns)
  | "floor" ->
      fn_arity name 1 nargs;
      Value.Num (Float.floor (num_arg 0))
  | "ceiling" ->
      fn_arity name 1 nargs;
      Value.Num (Float.ceil (num_arg 0))
  | "round" ->
      fn_arity name 1 nargs;
      Value.Num (Value.round_number (num_arg 0))
  | "format-number" ->
      fn_arity name 2 nargs;
      Value.Str (format_number (num_arg 0) (str_arg 1))
  | "current" ->
      fn_arity name 0 nargs;
      Value.Nodes (match ctx.current with Some n -> [ n ] | None -> [ ctx.node ])
  | "generate-id" ->
      if nargs > 1 then err "generate-id expects at most 1 argument";
      let target =
        if nargs = 0 then Some ctx.node
        else match Value.node_set (v 0) with [] -> None | n :: _ -> Some n
      in
      Value.Str (match target with Some n -> generate_id n | None -> "")
  | _ -> (
      match List.assoc_opt name ctx.extensions with
      | Some f -> f ctx (List.map (eval ctx) args)
      | None -> err "unknown function %s()" name)

(** [eval_string ctx s] parses and evaluates the XPath expression [s]. *)
let eval_string ctx s = eval ctx (Parser.parse s)

(** Convenience: select nodes with an expression string. *)
let select ctx s = Value.node_set (eval_string ctx s)
