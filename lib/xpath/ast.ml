(** XPath 1.0 abstract syntax. *)

type axis =
  | Child
  | Descendant
  | Parent
  | Ancestor
  | Following_sibling
  | Preceding_sibling
  | Following
  | Preceding
  | Attribute
  | Namespace
  | Self
  | Descendant_or_self
  | Ancestor_or_self

let axis_name = function
  | Child -> "child"
  | Descendant -> "descendant"
  | Parent -> "parent"
  | Ancestor -> "ancestor"
  | Following_sibling -> "following-sibling"
  | Preceding_sibling -> "preceding-sibling"
  | Following -> "following"
  | Preceding -> "preceding"
  | Attribute -> "attribute"
  | Namespace -> "namespace"
  | Self -> "self"
  | Descendant_or_self -> "descendant-or-self"
  | Ancestor_or_self -> "ancestor-or-self"

(** Whether an axis yields nodes in reverse document order (affects the
    meaning of positional predicates). *)
let is_reverse_axis = function
  | Parent | Ancestor | Ancestor_or_self | Preceding | Preceding_sibling -> true
  | Child | Descendant | Following_sibling | Following | Attribute | Namespace | Self
  | Descendant_or_self ->
      false

type node_test =
  | Name_test of string option * string  (** optional prefix, local part *)
  | Star  (** [*] — any element (or attribute on the attribute axis) *)
  | Prefix_star of string  (** [p:*] *)
  | Node_type_test of node_type

and node_type = Any_node | Text_node | Comment_node | Pi_node of string option

type binop =
  | Or
  | And
  | Eq
  | Neq
  | Lt
  | Leq
  | Gt
  | Geq
  | Plus
  | Minus
  | Mul
  | Div
  | Mod
  | Union

let binop_name = function
  | Or -> "or"
  | And -> "and"
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Leq -> "<="
  | Gt -> ">"
  | Geq -> ">="
  | Plus -> "+"
  | Minus -> "-"
  | Mul -> "*"
  | Div -> "div"
  | Mod -> "mod"
  | Union -> "|"

type expr =
  | Binop of binop * expr * expr
  | Neg of expr
  | Literal of string
  | Number of float
  | Var of string
  | Call of string * expr list
  | Path of path
  | Filter of expr * expr list * step list
      (** primary expression, predicates, trailing path steps *)

and path = { absolute : bool; steps : step list }

and step = { axis : axis; test : node_test; predicates : expr list }

(** Pretty-print an expression back to (canonical) XPath syntax. *)
let rec to_string = function
  | Binop (Union, a, b) -> to_string a ^ " | " ^ to_string b
  | Binop (((Or | And) as op), a, b) ->
      Printf.sprintf "(%s %s %s)" (to_string a) (binop_name op) (to_string b)
  | Binop (op, a, b) -> Printf.sprintf "%s %s %s" (to_string a) (binop_name op) (to_string b)
  | Neg e -> "-" ^ to_string e
  | Literal s -> "\"" ^ s ^ "\""
  | Number f -> if Float.is_integer f then string_of_int (int_of_float f) else string_of_float f
  | Var v -> "$" ^ v
  | Call (f, args) -> f ^ "(" ^ String.concat ", " (List.map to_string args) ^ ")"
  | Path p -> path_to_string p
  | Filter (e, preds, steps) ->
      let base = "(" ^ to_string e ^ ")" ^ String.concat "" (List.map pred_to_string preds) in
      if steps = [] then base
      else base ^ "/" ^ String.concat "/" (List.map step_to_string steps)

and pred_to_string e = "[" ^ to_string e ^ "]"

and step_to_string s =
  let test =
    match s.test with
    | Name_test (None, l) -> l
    | Name_test (Some p, l) -> p ^ ":" ^ l
    | Star -> "*"
    | Prefix_star p -> p ^ ":*"
    | Node_type_test Any_node -> "node()"
    | Node_type_test Text_node -> "text()"
    | Node_type_test Comment_node -> "comment()"
    | Node_type_test (Pi_node None) -> "processing-instruction()"
    | Node_type_test (Pi_node (Some t)) -> Printf.sprintf "processing-instruction(\"%s\")" t
  in
  let prefix =
    match s.axis with
    | Child -> ""
    | Attribute -> "@"
    | ax -> axis_name ax ^ "::"
  in
  prefix ^ test ^ String.concat "" (List.map pred_to_string s.predicates)

and path_to_string p =
  let body = String.concat "/" (List.map step_to_string p.steps) in
  if p.absolute then if body = "" then "/" else "/" ^ body else body

(** Simple constructors used by the rewriters. *)
let child_step ?(predicates = []) name =
  { axis = Child; test = Name_test (None, name); predicates }

let rel_path steps = Path { absolute = false; steps }
