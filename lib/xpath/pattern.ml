(** XSLT 1.0 match patterns (XSLT 1.0 §5.2) over the XPath AST.

    A pattern is a union of location-path patterns restricted to the
    [child] and [attribute] axes plus the [//] abbreviation.  Matching is
    implemented right-to-left: the last step must match the candidate node
    and earlier steps must match its (an)cestors.

    Default priorities follow XSLT 1.0 §5.5. *)

module T = Xdb_xml.Types
open Ast

exception Invalid_pattern of string

type step_link = Direct_child | Any_ancestor

type pattern_path = {
  from_root : bool;  (** pattern anchored at the document node ("/...") *)
  rev_steps : (step * step_link) list;
      (** steps right-to-left; the link describes how a step connects to the
          one on its left *)
}

type t = { source : string; alternatives : pattern_path list }

let rec compile_steps ~absolute steps =
  (* walk left-to-right, collapsing descendant-or-self::node() into links *)
  let rec go link acc = function
    | [] -> acc
    | { axis = Descendant_or_self; test = Node_type_test Any_node; predicates = [] } :: rest ->
        go Any_ancestor acc rest
    | ({ axis = Child; _ } as s) :: rest | ({ axis = Attribute; _ } as s) :: rest ->
        go Direct_child ((s, link) :: acc) rest
    | s :: _ ->
        raise
          (Invalid_pattern
             (Printf.sprintf "axis %s not allowed in a match pattern" (axis_name s.axis)))
  in
  let first_link = if absolute then Direct_child else Any_ancestor in
  { from_root = absolute; rev_steps = go first_link [] steps }

and compile_expr = function
  | Path p when p.steps = [] && p.absolute ->
      (* pattern "/" matches the document node *)
      [ { from_root = true; rev_steps = [] } ]
  | Path p -> [ compile_steps ~absolute:p.absolute p.steps ]
  | Binop (Union, a, b) -> compile_expr a @ compile_expr b
  | _ -> raise (Invalid_pattern "a match pattern must be a union of location paths")

(** [parse s] parses and validates pattern syntax. *)
let parse s =
  let e = Parser.parse s in
  { source = s; alternatives = compile_expr e }

(** Node operations the right-to-left matcher needs — abstracting over the
    node representation lets the DOM interpreter and the shredded row
    store ([Xdb_rel.Shred]) share one matching algorithm. *)
type 'a node_ops = {
  no_parent : 'a -> 'a option;
  no_is_document : 'a -> bool;
  no_test : Ast.axis -> Ast.node_test -> 'a -> bool;
  no_predicates_hold : step -> 'a -> bool;
      (** do [step]'s predicates hold for the node, evaluated among the
          candidate siblings reachable from its parent by the step's axis
          and test (positional rules included)? *)
}

let rec match_rev_gen ops rev_steps from_root node =
  match rev_steps with
  | [] ->
      if from_root then ops.no_is_document node
      else true
  | (step, link) :: rest -> (
      ops.no_test step.axis step.test node
      && ops.no_predicates_hold step node
      &&
      match ops.no_parent node with
      | None -> rest = [] && ((not from_root) || ops.no_is_document node)
      | Some parent -> (
          match link with
          | Direct_child -> match_rev_gen ops rest from_root parent
          | Any_ancestor ->
              let rec try_anc p =
                match_rev_gen ops rest from_root p
                || match ops.no_parent p with None -> false | Some gp -> try_anc gp
              in
              if rest = [] && not from_root then true else try_anc parent))

(** [matches_gen ops pat node] — the representation-generic matcher. *)
let matches_gen ops pat node =
  List.exists
    (fun alt ->
      match alt.rev_steps with
      | [] -> alt.from_root && ops.no_is_document node
      | _ -> match_rev_gen ops alt.rev_steps alt.from_root node)
    pat.alternatives

(* Does [node] pass the predicates of [step], evaluated among the candidate
   siblings reachable from its parent by the step's axis and test? *)
let predicates_hold ctx step node =
  match step.predicates with
  | [] -> true
  | preds -> (
      match node.T.parent with
      | None -> List.for_all (fun p -> Value.boolean_value (Eval.eval { ctx with Eval.node } p)) preds
      | Some parent ->
          let candidates = Eval.axis_nodes step.axis parent in
          let matching = List.filter (Eval.test_matches step.axis step.test) candidates in
          let survivors =
            List.fold_left (fun ns p -> Eval.filter_predicate ctx ns p) matching preds
          in
          List.memq node survivors)

let dom_ops ctx =
  {
    no_parent = (fun n -> n.T.parent);
    no_is_document = T.is_document;
    no_test = Eval.test_matches;
    no_predicates_hold = (fun step node -> predicates_hold ctx step node);
  }

(** [matches ctx pat node] — does [node] match the pattern? *)
let matches ctx pat node = matches_gen (dom_ops ctx) pat node

(** Default priority of a single-alternative pattern (XSLT 1.0 §5.5). *)
let alternative_priority alt =
  match alt.rev_steps with
  | [ (step, link) ] when link = Any_ancestor && not alt.from_root -> (
      if step.predicates <> [] then 0.5
      else
        match step.test with
        | Name_test _ -> 0.0
        | Node_type_test (Pi_node (Some _)) -> 0.0
        | Prefix_star _ -> -0.25
        | Star | Node_type_test _ -> -0.5)
  | _ -> 0.5

(** Split a pattern into its alternatives so each can carry its own default
    priority (XSLT 1.0 treats a union template as separate rules). *)
let split pat =
  List.map (fun alt -> ({ source = pat.source; alternatives = [ alt ] }, alternative_priority alt))
    pat.alternatives

(** Local names an alternative can possibly match at its last step, used for
    hash-table template dispatch in the VM.  [None] = could match anything. *)
let dispatch_key pat =
  match pat.alternatives with
  | [ { rev_steps = (step, _) :: _; _ } ] -> (
      match step.test with
      | Name_test (_, local) -> Some (`Name local)
      | Node_type_test Text_node -> Some `Text
      | Node_type_test Comment_node -> Some `Comment
      | Node_type_test (Pi_node _) -> Some `Pi
      | Star | Prefix_star _ -> Some `Any_element
      | Node_type_test Any_node -> None)
  | [ { rev_steps = []; from_root = true; _ } ] -> Some `Root
  | _ -> None

let to_string pat = pat.source
