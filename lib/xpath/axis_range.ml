(** Location steps as interval conditions over pre/post numbering.  The
    encoding invariants this table relies on (single shared counter,
    leaves take [post = pre], attributes numbered inside their owner's
    interval) are established by [Xdb_rel.Shred]. *)

type col = Pre | Post | Parent
type anchor = Ctx_pre | Ctx_post | Ctx_parent
type op = Eq | Lt | Leq | Gt | Geq

type cond = { col : col; op : op; anchor : anchor }
type kind_filter = K_elem | K_attr | K_text | K_comment | K_pi | K_non_attr

type spec = {
  conds : cond list;
  kinds : kind_filter;
  name : string option;
  reverse : bool;
  attr_ok : bool;
}

let c col op anchor = { col; op; anchor }

(* (conditions, reverse axis?, correct from an attribute context?).
   Descendant needs only the pre range: intervals nest, so a node
   starting inside [ctx.pre, ctx.post] also ends inside it.  The
   [Leq Ctx_post] of descendant-or-self is exact because a counter value
   is never shared across nodes (a leaf's [post = pre] reuses its own). *)
let axis_conds : Ast.axis -> (cond list * bool * bool) option = function
  | Ast.Self -> Some ([ c Pre Eq Ctx_pre ], false, true)
  | Ast.Child | Ast.Attribute -> Some ([ c Parent Eq Ctx_pre ], false, true)
  | Ast.Parent -> Some ([ c Pre Eq Ctx_parent ], false, true)
  | Ast.Descendant -> Some ([ c Pre Gt Ctx_pre; c Pre Lt Ctx_post ], false, true)
  | Ast.Descendant_or_self -> Some ([ c Pre Geq Ctx_pre; c Pre Leq Ctx_post ], false, true)
  | Ast.Ancestor -> Some ([ c Pre Lt Ctx_pre; c Post Gt Ctx_post ], true, true)
  | Ast.Ancestor_or_self -> Some ([ c Pre Leq Ctx_pre; c Post Geq Ctx_post ], true, true)
  | Ast.Following -> Some ([ c Pre Gt Ctx_post ], false, false)
  | Ast.Preceding -> Some ([ c Pre Lt Ctx_pre; c Post Lt Ctx_pre ], true, false)
  | Ast.Following_sibling -> Some ([ c Parent Eq Ctx_parent; c Pre Gt Ctx_pre ], false, false)
  | Ast.Preceding_sibling -> Some ([ c Parent Eq Ctx_parent; c Pre Lt Ctx_pre ], true, false)
  | Ast.Namespace -> None

let compile axis test =
  match axis_conds axis with
  | None -> None
  | Some (conds, reverse, attr_ok) ->
      let attr_axis = axis = Ast.Attribute in
      let spec kinds name = Some { conds; kinds; name; reverse; attr_ok } in
      (* mirrors [Eval.test_matches]: prefixes are ignored (no prefix
         environment), names match on the local part *)
      (match test with
      | Ast.Star | Ast.Prefix_star _ ->
          if attr_axis then spec K_attr None else spec K_elem None
      | Ast.Name_test (_, local) ->
          if attr_axis then spec K_attr (Some local) else spec K_elem (Some local)
      | Ast.Node_type_test Ast.Any_node ->
          if attr_axis then spec K_attr None else spec K_non_attr None
      | Ast.Node_type_test Ast.Text_node -> if attr_axis then None else spec K_text None
      | Ast.Node_type_test Ast.Comment_node ->
          if attr_axis then None else spec K_comment None
      | Ast.Node_type_test (Ast.Pi_node target) ->
          if attr_axis then None else spec K_pi target)

let cond_to_string { col; op; anchor } =
  let col_s = match col with Pre -> "pre" | Post -> "post" | Parent -> "parent" in
  let op_s =
    match op with Eq -> "=" | Lt -> "<" | Leq -> "<=" | Gt -> ">" | Geq -> ">="
  in
  let anchor_s =
    match anchor with
    | Ctx_pre -> "ctx.pre"
    | Ctx_post -> "ctx.post"
    | Ctx_parent -> "ctx.parent"
  in
  Printf.sprintf "%s %s %s" col_s op_s anchor_s
