(** XPath 1.0 lexer.

    Implements the disambiguation rules of XPath 1.0 §3.7: [*] is the
    multiply operator when preceded by an operand token; a name followed by
    [(] is a function name (or node-type test); a name followed by [::] is an
    axis name; keyword operators ([and], [or], [div], [mod]) are recognised
    only in operator position. *)

exception Lex_error of string

type token =
  | Tname of string  (** NCName or QName, colon included *)
  | Tnumber of float
  | Tliteral of string
  | Tvar of string
  | Tlparen
  | Trparen
  | Tlbracket
  | Trbracket
  | Tdot
  | Tdotdot
  | Tat
  | Tcomma
  | Tcoloncolon
  | Tslash
  | Tslashslash
  | Tpipe
  | Tplus
  | Tminus
  | Teq
  | Tneq
  | Tlt
  | Tleq
  | Tgt
  | Tgeq
  | Tstar
  | Tand
  | Tor
  | Tdiv
  | Tmod
  | Teof

let token_name = function
  | Tname s -> Printf.sprintf "name %S" s
  | Tnumber f -> Printf.sprintf "number %g" f
  | Tliteral s -> Printf.sprintf "literal %S" s
  | Tvar v -> Printf.sprintf "variable $%s" v
  | Tlparen -> "'('"
  | Trparen -> "')'"
  | Tlbracket -> "'['"
  | Trbracket -> "']'"
  | Tdot -> "'.'"
  | Tdotdot -> "'..'"
  | Tat -> "'@'"
  | Tcomma -> "','"
  | Tcoloncolon -> "'::'"
  | Tslash -> "'/'"
  | Tslashslash -> "'//'"
  | Tpipe -> "'|'"
  | Tplus -> "'+'"
  | Tminus -> "'-'"
  | Teq -> "'='"
  | Tneq -> "'!='"
  | Tlt -> "'<'"
  | Tleq -> "'<='"
  | Tgt -> "'>'"
  | Tgeq -> "'>='"
  | Tstar -> "'*'"
  | Tand -> "'and'"
  | Tor -> "'or'"
  | Tdiv -> "'div'"
  | Tmod -> "'mod'"
  | Teof -> "end of input"

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' -> true
  | c -> Char.code c >= 0x80

let is_name_char c =
  is_name_start c || match c with '0' .. '9' | '-' | '.' -> true | _ -> false

let is_digit = function '0' .. '9' -> true | _ -> false

(** A token after which [*] and the keyword operators are *operators*
    (XPath 1.0 §3.7: any token that can end an operand). *)
let ends_operand = function
  | Tname _ | Tnumber _ | Tliteral _ | Tvar _ | Trparen | Trbracket | Tdot | Tdotdot | Tstar ->
      true
  | _ -> false

let tokenize input =
  let n = String.length input in
  let pos = ref 0 in
  let toks = ref [] in
  let prev () = match !toks with [] -> None | t :: _ -> Some t in
  let push t = toks := t :: !toks in
  while !pos < n do
    let c = input.[!pos] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr pos
    else if is_digit c || (c = '.' && !pos + 1 < n && is_digit input.[!pos + 1]) then (
      (* Number ::= Digits ('.' Digits?)? | '.' Digits — at most one dot *)
      let start = !pos in
      let seen_dot = ref false in
      while
        !pos < n
        && (is_digit input.[!pos] || (input.[!pos] = '.' && not !seen_dot))
      do
        if input.[!pos] = '.' then seen_dot := true;
        incr pos
      done;
      let text = String.sub input start (!pos - start) in
      match float_of_string_opt text with
      | Some f -> push (Tnumber f)
      | None -> raise (Lex_error (Printf.sprintf "malformed number %S" text)))
    else if c = '"' || c = '\'' then (
      let quote = c in
      incr pos;
      let start = !pos in
      while !pos < n && input.[!pos] <> quote do
        incr pos
      done;
      if !pos >= n then raise (Lex_error "unterminated string literal");
      push (Tliteral (String.sub input start (!pos - start)));
      incr pos)
    else if c = '$' then (
      incr pos;
      let start = !pos in
      while !pos < n && (is_name_char input.[!pos] || input.[!pos] = ':') do
        incr pos
      done;
      if !pos = start then raise (Lex_error "expected variable name after '$'");
      push (Tvar (String.sub input start (!pos - start))))
    else if is_name_start c then (
      let start = !pos in
      while !pos < n && is_name_char input.[!pos] do
        incr pos
      done;
      (* QName: allow one ':' not followed by ':' *)
      if !pos < n && input.[!pos] = ':' && !pos + 1 < n && input.[!pos + 1] <> ':'
         && is_name_start input.[!pos + 1] then (
        incr pos;
        while !pos < n && is_name_char input.[!pos] do
          incr pos
        done)
      else if !pos + 1 < n && input.[!pos] = ':' && input.[!pos + 1] = '*' then
        (* prefix wildcard: p:* *)
        pos := !pos + 2;
      let word = String.sub input start (!pos - start) in
      let tok =
        if match prev () with Some t -> ends_operand t | None -> false then
          match word with
          | "and" -> Tand
          | "or" -> Tor
          | "div" -> Tdiv
          | "mod" -> Tmod
          | _ -> Tname word
        else Tname word
      in
      push tok)
    else (
      let two = if !pos + 1 < n then String.sub input !pos 2 else "" in
      match two with
      | "//" ->
          push Tslashslash;
          pos := !pos + 2
      | "::" ->
          push Tcoloncolon;
          pos := !pos + 2
      | "!=" ->
          push Tneq;
          pos := !pos + 2
      | "<=" ->
          push Tleq;
          pos := !pos + 2
      | ">=" ->
          push Tgeq;
          pos := !pos + 2
      | ".." ->
          push Tdotdot;
          pos := !pos + 2
      | _ -> (
          incr pos;
          match c with
          | '(' -> push Tlparen
          | ')' -> push Trparen
          | '[' -> push Tlbracket
          | ']' -> push Trbracket
          | '.' -> push Tdot
          | '@' -> push Tat
          | ',' -> push Tcomma
          | '/' -> push Tslash
          | '|' -> push Tpipe
          | '+' -> push Tplus
          | '-' -> push Tminus
          | '=' -> push Teq
          | '<' -> push Tlt
          | '>' -> push Tgt
          | '*' ->
              (* operator vs name-test star, §3.7 *)
              push (if match prev () with Some t -> ends_operand t | None -> false then Tstar
                    else Tname "*")
          | c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c))))
  done;
  List.rev (Teof :: !toks)
