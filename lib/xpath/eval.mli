(** XPath 1.0 evaluator: all thirteen axes, predicates with proximity
    position, the core function library, and extension-function hooks used
    by the XSLT layer. *)

exception Eval_error of string

module Smap : Map.S with type key = string

type context = {
  node : Xdb_xml.Types.node;
  position : int;  (** 1-based proximity position *)
  size : int;
  vars : Value.t Smap.t;
  extensions : (string * extension) list;
      (** extra functions, looked up after the core library *)
  current : Xdb_xml.Types.node option;  (** XSLT [current()] node *)
  assume_predicates : bool;
      (** partial-evaluation mode (paper §4.1): every predicate is
          conservatively assumed to hold *)
}

and extension = context -> Value.t list -> Value.t

val make_context :
  ?vars:Value.t Smap.t ->
  ?extensions:(string * extension) list ->
  ?assume_predicates:bool ->
  ?current:Xdb_xml.Types.node ->
  Xdb_xml.Types.node ->
  context
(** Context with position 1 of 1 on the given node. *)

val bind_var : context -> string -> Value.t -> context

val axis_nodes : Ast.axis -> Xdb_xml.Types.node -> Xdb_xml.Types.node list
(** Nodes of an axis from a context node, in axis (proximity) order:
    document order for forward axes, reverse document order for reverse
    axes. *)

val test_matches : Ast.axis -> Ast.node_test -> Xdb_xml.Types.node -> bool
(** Does a node satisfy a node test with respect to an axis's principal
    node kind? *)

val filter_predicate :
  context -> Xdb_xml.Types.node list -> Ast.expr -> Xdb_xml.Types.node list
(** Apply one predicate to a candidate list given in axis order.  A
    number-valued predicate selects by proximity position. *)

val eval : context -> Ast.expr -> Value.t
(** Evaluate an expression. @raise Eval_error on unbound variables or
    unknown functions. *)

val eval_steps :
  context -> Xdb_xml.Types.node list -> Ast.step list -> Xdb_xml.Types.node list
(** Apply a step chain to a start node list; result in document order. *)

val eval_string : context -> string -> Value.t
(** Parse and evaluate. *)

val select : context -> string -> Xdb_xml.Types.node list
(** [select ctx s] — node-set result of expression [s].
    @raise Invalid_argument if the result is not a node-set. *)

(** Helpers shared with the XQuery function library: *)

val substring_xpath : string -> float -> float option -> string

val format_number : float -> string -> string
(** XSLT 1.0 [format-number()] picture formatting (§12.3 subset: [0]/[#]
    digit slots, decimal point, grouping commas, [%], negative
    subpattern). *)

val translate_xpath : string -> string -> string -> string
val normalize_space : string -> string
val generate_id : Xdb_xml.Types.node -> string
